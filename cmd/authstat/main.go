// Command authstat mines campaign telemetry: the JSONL run ledgers streamed
// by authbench/authfuzz/authverify (-telemetry) and the checked-in BENCH_*
// records. It answers the questions the raw artifacts bury: where did the
// host time go, which cells are slowest, and has the fast path regressed
// against the recorded baseline.
//
// Usage:
//
//	authstat summary <ledger.jsonl>              # per-policy host-cost breakdown
//	authstat validate <ledger.jsonl>             # schema + invariant check (CI)
//	authstat diff <BENCH_fastpath.json> -against <ledger.jsonl> [-threshold 3]
//
// diff compares a fresh bench ledger against the recorded fast-path cost
// per (workload, policy) cell and fails when any cell slowed by more than
// the threshold ratio — the CI regression gate over host cost. Ratios are
// compared, not absolute ns/cycle: absolute cost is hardware-dependent, but
// a cell that got 3x slower relative to its recorded cost on any host is a
// regression signal worth a look.
//
// The exit status is 0 when clean, 1 on validation failure or a diff over
// threshold, and 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"authpoint/internal/telemetry"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authstat: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: authstat <summary|validate|diff> ...")
	}
	switch os.Args[1] {
	case "summary":
		cmdSummary(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		fatalf("unknown command %q (want summary, validate, or diff)", os.Args[1])
	}
}

// ---------------------------------------------------------------- summary --

// hostBuckets are the per-cell host-cost histogram bounds (upper edges).
var hostBuckets = []time.Duration{
	time.Millisecond, 3 * time.Millisecond, 10 * time.Millisecond,
	30 * time.Millisecond, 100 * time.Millisecond, 300 * time.Millisecond,
	time.Second, 3 * time.Second, 10 * time.Second,
}

// polStats aggregates one (kind, policy) group of ledger records.
type polStats struct {
	kind, policy string
	cells        int
	cached       int
	skipped      int
	errs         int
	simCycles    uint64
	hostNs       int64
	hist         []int // len(hostBuckets)+1, last bucket = overflow
}

// siteStats aggregates tampering cells by tamper site: which verdicts each
// site produced and what it cost to check.
type siteStats struct {
	site      string
	cells     int
	verdicts  map[string]int
	simCycles uint64
	hostNs    int64
}

func bucketOf(ns int64) int {
	for i, b := range hostBuckets {
		if time.Duration(ns) <= b {
			return i
		}
	}
	return len(hostBuckets)
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	topN := fs.Int("top", 10, "how many slowest cells to list")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: authstat summary [-top N] <ledger.jsonl>")
	}
	lf, err := telemetry.ReadFile(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	lf.SortBySeq()

	groups := map[[2]string]*polStats{}
	var totalNs int64
	var totalCycles uint64
	var totalCached, totalSkipped, totalRun int
	for _, r := range lf.Records {
		key := [2]string{r.Kind, r.Policy}
		g := groups[key]
		if g == nil {
			g = &polStats{kind: r.Kind, policy: r.Policy, hist: make([]int, len(hostBuckets)+1)}
			groups[key] = g
		}
		g.cells++
		// Skipped cells did no work (budget expired before they ran): they
		// count toward the group's cell total but stay out of the cost
		// histograms and error counts.
		if r.Verdict == telemetry.VerdictSkipped {
			g.skipped++
			totalSkipped++
			continue
		}
		totalRun++
		if r.Cached {
			g.cached++
			totalCached++
		}
		if r.Err != "" {
			g.errs++
		}
		if !r.Cached {
			g.simCycles += r.SimCycles
			g.hostNs += r.HostNs
			g.hist[bucketOf(r.HostNs)]++
			totalNs += r.HostNs
			totalCycles += r.SimCycles
		}
	}
	keys := make([][2]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	fmt.Printf("ledger: campaign %q on %s/%s (%d cpu, %s), %d records\n",
		lf.Header.Campaign, lf.Header.GOOS, lf.Header.GOARCH,
		lf.Header.NumCPU, lf.Header.GoVersion, len(lf.Records))
	fmt.Printf("\n%-8s %-38s %6s %6s %6s %5s %14s %10s %9s\n",
		"kind", "policy", "cells", "cached", "skip", "errs", "sim-cycles", "host", "ns/cycle")
	for _, k := range keys {
		g := groups[k]
		nsPerCycle := 0.0
		if g.simCycles > 0 {
			nsPerCycle = float64(g.hostNs) / float64(g.simCycles)
		}
		fmt.Printf("%-8s %-38s %6d %6d %6d %5d %14d %10v %9.1f\n",
			g.kind, g.policy, g.cells, g.cached, g.skipped, g.errs, g.simCycles,
			time.Duration(g.hostNs).Round(time.Millisecond), nsPerCycle)
		fmt.Printf("%-8s   host-cost histogram:", "")
		for i, n := range g.hist {
			if n == 0 {
				continue
			}
			if i < len(hostBuckets) {
				fmt.Printf(" <=%v:%d", hostBuckets[i], n)
			} else {
				fmt.Printf(" >%v:%d", hostBuckets[len(hostBuckets)-1], n)
			}
		}
		fmt.Println()
	}
	// Per-tamper-site breakdown: tampering campaigns record the site on each
	// cell, so verdicts and host cost can be attributed per site (entry,
	// data, mac, ctr, tree).
	sites := map[string]*siteStats{}
	for _, r := range lf.Records {
		if r.Site == "" || r.Verdict == telemetry.VerdictSkipped {
			continue
		}
		s := sites[r.Site]
		if s == nil {
			s = &siteStats{site: r.Site, verdicts: make(map[string]int)}
			sites[r.Site] = s
		}
		s.cells++
		if r.Verdict != "" {
			s.verdicts[r.Verdict]++
		}
		if !r.Cached {
			s.simCycles += r.SimCycles
			s.hostNs += r.HostNs
		}
	}
	if len(sites) > 0 {
		siteKeys := make([]string, 0, len(sites))
		for k := range sites {
			siteKeys = append(siteKeys, k)
		}
		sort.Strings(siteKeys)
		fmt.Printf("\n%-8s %6s %14s %10s  %s\n", "site", "cells", "sim-cycles", "host", "verdicts")
		for _, k := range siteKeys {
			s := sites[k]
			vs := make([]string, 0, len(s.verdicts))
			for v := range s.verdicts {
				vs = append(vs, v)
			}
			sort.Strings(vs)
			fmt.Printf("%-8s %6d %14d %10v ", s.site, s.cells, s.simCycles,
				time.Duration(s.hostNs).Round(time.Millisecond))
			for _, v := range vs {
				fmt.Printf(" %s=%d", v, s.verdicts[v])
			}
			fmt.Println()
		}
	}

	nsPerCycle := 0.0
	if totalCycles > 0 {
		nsPerCycle = float64(totalNs) / float64(totalCycles)
	}
	fmt.Printf("\ntotal (fresh cells): %d sim-cycles in %v host (%.1f ns/cycle)\n",
		totalCycles, time.Duration(totalNs).Round(time.Millisecond), nsPerCycle)
	if totalRun > 0 {
		fmt.Printf("cache: %d/%d run cells served from cache (%.1f%% hit rate), %d skipped by budget\n",
			totalCached, totalRun, 100*float64(totalCached)/float64(totalRun), totalSkipped)
	}

	slow := make([]telemetry.Record, 0, len(lf.Records))
	for _, r := range lf.Records {
		if !r.Cached && r.Verdict != telemetry.VerdictSkipped {
			slow = append(slow, r)
		}
	}
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].HostNs > slow[j].HostNs })
	if len(slow) > *topN {
		slow = slow[:*topN]
	}
	fmt.Printf("\nslowest %d cells:\n", len(slow))
	for _, r := range slow {
		id := r.Workload
		if id == "" {
			id = fmt.Sprintf("seed %d", r.Seed)
		}
		fmt.Printf("  %10v  %-8s %-20s %-38s %12d cycles\n",
			time.Duration(r.HostNs).Round(time.Millisecond), r.Kind, id, r.Policy, r.SimCycles)
	}
}

// --------------------------------------------------------------- validate --

func cmdValidate(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("usage: authstat validate <ledger.jsonl>")
	}
	lf, err := telemetry.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "authstat: %v\n", err)
		os.Exit(1)
	}
	if err := lf.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "authstat: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid %s ledger, campaign %q, %d records\n",
		fs.Arg(0), lf.Header.Schema, lf.Header.Campaign, len(lf.Records))
}

// ------------------------------------------------------------------- diff --

// fastpathRecord mirrors the slice of BENCH_fastpath.json the diff needs.
type fastpathRecord struct {
	Schema      string `json:"schema"`
	Experiments []struct {
		Name  string `json:"name"`
		Cells []struct {
			Workload string  `json:"workload"`
			Scheme   string  `json:"scheme"`
			Before   float64 `json:"host_ns_per_sim_cycle_before"`
			After    float64 `json:"host_ns_per_sim_cycle_after"`
		} `json:"cells"`
	} `json:"experiments"`
}

// cellCost accumulates cycle-weighted ns/cycle for one (workload, policy).
type cellCost struct {
	weightedNs float64 // sum of ns/cycle * cycles
	cycles     float64
}

func (c *cellCost) add(nsPerCycle float64, cycles uint64) {
	c.weightedNs += nsPerCycle * float64(cycles)
	c.cycles += float64(cycles)
}

func (c *cellCost) perCycle() float64 {
	if c.cycles == 0 {
		return 0
	}
	return c.weightedNs / c.cycles
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	against := fs.String("against", "", "fresh ledger (JSONL) to compare against the record")
	threshold := fs.Float64("threshold", 3.0, "fail when any cell's fresh/recorded host-cost ratio exceeds this")
	// Accept the natural `diff <record> -against <ledger>` order: peel the
	// leading positional off before flag parsing (which stops at it).
	record := ""
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		record, args = args[0], args[1:]
	}
	fs.Parse(args)
	if record == "" && fs.NArg() == 1 {
		record = fs.Arg(0)
	} else if fs.NArg() != 0 {
		record = ""
	}
	if record == "" || *against == "" {
		fatalf("usage: authstat diff <BENCH_fastpath.json> -against <ledger.jsonl> [-threshold N]")
	}

	data, err := os.ReadFile(record)
	if err != nil {
		fatalf("%v", err)
	}
	var rec fastpathRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		fatalf("%s: %v", record, err)
	}
	if rec.Schema != "authbench/fastpath/v1" {
		fatalf("%s: schema %q, want authbench/fastpath/v1", record, rec.Schema)
	}
	recorded := map[[2]string]*cellCost{}
	before := map[[2]string]*cellCost{}
	for _, e := range rec.Experiments {
		for _, c := range e.Cells {
			key := [2]string{c.Workload, c.Scheme}
			// The record does not carry per-cell cycles; weight equally.
			if recorded[key] == nil {
				recorded[key], before[key] = &cellCost{}, &cellCost{}
			}
			recorded[key].add(c.After, 1)
			before[key].add(c.Before, 1)
		}
	}

	lf, err := telemetry.ReadFile(*against)
	if err != nil {
		fatalf("%v", err)
	}
	fresh := map[[2]string]*cellCost{}
	for _, r := range lf.Records {
		if r.Kind != "bench" || r.Cached || r.Err != "" || r.SimCycles == 0 {
			continue
		}
		key := [2]string{r.Workload, r.Policy}
		if fresh[key] == nil {
			fresh[key] = &cellCost{}
		}
		fresh[key].add(float64(r.HostNs)/float64(r.SimCycles), r.SimCycles)
	}
	if len(fresh) == 0 {
		fatalf("%s: no fresh bench records (run authbench -experiment bench -telemetry ...)", *against)
	}

	keys := make([][2]string, 0, len(recorded))
	for k := range recorded {
		if fresh[k] != nil {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		fatalf("no (workload, policy) cells in common between record and ledger")
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	fmt.Printf("%-10s %-38s %9s %9s %7s %9s\n",
		"workload", "policy", "recorded", "fresh", "ratio", "speedup")
	worst := 0.0
	worstKey := [2]string{}
	var sumSpeedup float64
	for _, k := range keys {
		rc, fc, bc := recorded[k].perCycle(), fresh[k].perCycle(), before[k].perCycle()
		ratio := 0.0
		if rc > 0 {
			ratio = fc / rc
		}
		// The fresh speedup the fast path still delivers over the recorded
		// per-cycle reference core — the record's headline, recomputed.
		speedup := 0.0
		if fc > 0 {
			speedup = bc / fc
		}
		sumSpeedup += speedup
		mark := ""
		if ratio > *threshold {
			mark = "  <-- over threshold"
		}
		if ratio > worst {
			worst, worstKey = ratio, k
		}
		fmt.Printf("%-10s %-38s %9.1f %9.1f %7.2f %8.2fx%s\n",
			k[0], k[1], rc, fc, ratio, speedup, mark)
	}
	fmt.Printf("\n%d cells compared; worst fresh/recorded ratio %.2f (%s under %s); mean fresh speedup over reference core %.2fx\n",
		len(keys), worst, worstKey[0], worstKey[1], sumSpeedup/float64(len(keys)))
	if worst > *threshold {
		fmt.Fprintf(os.Stderr, "authstat: REGRESSION: host cost ratio %.2f exceeds threshold %.2f\n", worst, *threshold)
		os.Exit(1)
	}
	fmt.Printf("ok: all ratios within threshold %.2f\n", *threshold)
}
