// Command authlint statically checks assembled programs against the
// memory-fetch leakage contract: it reports every instruction whose
// observable fetch address, control flow, or I/O operand depends on secret
// or not-yet-authenticated data — the sites an authentication control point
// must gate (see docs/ARCHITECTURE.md, "Static leakage analysis").
//
// Usage:
//
//	authlint [flags] [file.s ...]
//	authlint -workloads            # lint the built-in 18-workload catalog
//	authlint -kernels              # lint the attack suite's effective programs
//
// With -json the report is a versioned envelope (schema "authlint/report/v1")
// carrying the per-program analysis reports plus roll-up totals (programs,
// clean count, findings per kind) — stable input for CI gates and dashboards.
//
// The exit status contract, which -json consumers can rely on, is:
//
//	0  every linted program is clean
//	1  at least one finding was reported
//	2  usage, file, or assembly error (no report is emitted)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/attack"
	"authpoint/internal/policy"
	"authpoint/internal/workload"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authlint: "+format+"\n", args...)
	os.Exit(2)
}

type target struct {
	name string
	prog *asm.Program
}

type result struct {
	Name   string           `json:"name"`
	Report *analysis.Report `json:"report"`
}

func main() {
	var (
		workloads  = flag.Bool("workloads", false, "lint the built-in workload catalog")
		kernels    = flag.Bool("kernels", false, "lint the attack suite's effective post-tamper programs")
		jsonOut    = flag.Bool("json", false, "emit findings as JSON")
		trustLoads = flag.Bool("trust-loads", false, "model authen-then-issue: loaded values are verified before use")
		state      = flag.Bool("state", false, "also report stores of tainted values (state-taint)")
		secrets    = flag.String("secrets", "", "comma-separated data symbols to treat as secret")
		noAuto     = flag.Bool("no-auto-secret", false, "do not treat symbols named *secret* as secret storage")
		polName    = flag.String("policy", "", "report findings under this control point's contract (any registered or composed policy name, e.g. authen-then-issue+obfuscation)")
	)
	flag.Parse()

	opts := analysis.Options{
		TrustLoads:   *trustLoads,
		NoAutoSecret: *noAuto,
		StateChecks:  *state,
	}
	var pol policy.ControlPoint
	usePolicy := *polName != ""
	if usePolicy {
		var err error
		if pol, err = policy.Parse(*polName); err != nil {
			fatalf("%v", err)
		}
	}
	if *secrets != "" {
		for _, s := range strings.Split(*secrets, ",") {
			if s = strings.TrimSpace(s); s != "" {
				opts.SecretSymbols = append(opts.SecretSymbols, s)
			}
		}
	}

	var targets []target
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		p, err := asm.Assemble(string(src))
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		targets = append(targets, target{name: filepath.Base(path), prog: p})
	}
	if *workloads {
		for _, w := range workload.All() {
			p, err := asm.Assemble(w.Source)
			if err != nil {
				fatalf("workload %s: %v", w.Name, err)
			}
			targets = append(targets, target{name: "workload/" + w.Name, prog: p})
		}
	}
	if *kernels {
		ks, err := attack.Kernels()
		if err != nil {
			fatalf("%v", err)
		}
		for _, k := range ks {
			targets = append(targets, target{name: "kernel/" + k.Name, prog: k.Prog})
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "authlint: nothing to lint (give .s files, -workloads, or -kernels)")
		flag.Usage()
		os.Exit(2)
	}

	results, dirty, err := lintTargets(targets, opts, usePolicy, pol)
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonOut {
		contractName := ""
		if usePolicy {
			contractName = pol.String()
		}
		b, err := buildReport(results, contractName).encode()
		if err != nil {
			fatalf("%v", err)
		}
		os.Stdout.Write(b)
	} else {
		if usePolicy {
			fmt.Printf("contract: %s\n", pol)
		}
		for _, r := range results {
			if r.Report.Clean() {
				fmt.Printf("%s: clean (%d/%d blocks reachable)\n",
					r.Name, r.Report.ReachableBlocks, r.Report.Blocks)
				continue
			}
			counts := r.Report.Counts()
			var parts []string
			for _, k := range []analysis.Kind{analysis.KindAddr, analysis.KindCtrl, analysis.KindIO, analysis.KindState} {
				if n := counts[k]; n > 0 {
					parts = append(parts, fmt.Sprintf("%d %s", n, k))
				}
			}
			noun := "findings"
			if len(r.Report.Findings) == 1 {
				noun = "finding"
			}
			fmt.Printf("%s: %d %s (%s)\n", r.Name, len(r.Report.Findings), noun, strings.Join(parts, ", "))
			for _, f := range r.Report.Findings {
				fmt.Printf("  %s\n", f)
			}
		}
	}
	if dirty {
		os.Exit(1)
	}
}
