package main

import (
	"reflect"
	"testing"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/attack"
	"authpoint/internal/policy"
)

// kernelTargets builds the attack-kernel lint targets the CLI's -kernels
// flag produces.
func kernelTargets(t *testing.T) []target {
	t.Helper()
	ks, err := attack.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	var targets []target
	for _, k := range ks {
		targets = append(targets, target{name: "kernel/" + k.Name, prog: k.Prog})
	}
	return targets
}

// TestReportRoundTrip pins the -json envelope: schema-tagged, totals
// consistent with the per-program reports, and decode(encode(x)) stable.
func TestReportRoundTrip(t *testing.T) {
	results, dirty, err := lintTargets(kernelTargets(t), analysis.Options{}, false, policy.ControlPoint{})
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("kernel catalog linted clean; the envelope test exercises nothing")
	}

	rep := buildReport(results, "authen-then-commit")
	if rep.Schema != reportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, reportSchema)
	}
	if rep.Totals.Programs != len(results) {
		t.Fatalf("totals.programs = %d, want %d", rep.Totals.Programs, len(results))
	}
	wantFindings, wantClean := 0, 0
	for _, r := range results {
		if r.Report.Clean() {
			wantClean++
		} else {
			wantFindings += len(r.Report.Findings)
		}
	}
	if rep.Totals.Findings != wantFindings || rep.Totals.Clean != wantClean {
		t.Fatalf("totals findings=%d clean=%d, want %d/%d",
			rep.Totals.Findings, rep.Totals.Clean, wantFindings, wantClean)
	}
	byKindSum := 0
	for _, n := range rep.Totals.ByKind {
		byKindSum += n
	}
	if byKindSum != wantFindings {
		t.Fatalf("by_kind sums to %d, want %d", byKindSum, wantFindings)
	}

	b, err := rep.encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Policy != "authen-then-commit" || !reflect.DeepEqual(dec.Totals, rep.Totals) || len(dec.Programs) != len(rep.Programs) {
		t.Fatalf("round trip changed the envelope: %+v vs %+v", dec.Totals, rep.Totals)
	}
	b2, err := dec.encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("encode(decode(x)) is not byte-identical")
	}

	if _, err := decodeReport([]byte(`{"schema":"authlint/report/v0"}`)); err == nil {
		t.Fatal("wrong schema decoded without error")
	}
	if _, err := decodeReport([]byte(`not json`)); err == nil {
		t.Fatal("malformed report decoded without error")
	}
}

// TestLintTargetsPolicyFilter pins that the policy filter reaches the
// envelope pipeline: an obfuscating contract drops addr-leak findings from
// the report (AnalyzeForPolicy lint semantics).
func TestLintTargetsPolicyFilter(t *testing.T) {
	src := `
_start:
	la   r1, secret
	ld   r2, 0(r1)
	ld   r3, 0(r2)
	halt
.data
secret: .word 4096
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	targets := []target{{name: "probe.s", prog: p}}

	raw, dirty, err := lintTargets(targets, analysis.Options{}, false, policy.ControlPoint{})
	if err != nil {
		t.Fatal(err)
	}
	if !dirty || buildReport(raw, "").Totals.ByKind[string(analysis.KindAddr)] == 0 {
		t.Fatal("raw analysis reports no addr-leak for a secret-dependent load")
	}

	obf, err := policy.Parse("authen-then-commit+obfuscation")
	if err != nil {
		t.Fatal(err)
	}
	filtered, _, err := lintTargets(targets, analysis.Options{}, true, obf)
	if err != nil {
		t.Fatal(err)
	}
	if n := buildReport(filtered, obf.String()).Totals.ByKind[string(analysis.KindAddr)]; n != 0 {
		t.Fatalf("obfuscating contract still reports %d addr-leak findings", n)
	}
}
