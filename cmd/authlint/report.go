package main

import (
	"encoding/json"
	"fmt"

	"authpoint/internal/analysis"
	"authpoint/internal/policy"
)

// reportSchema identifies the machine-readable lint report format. Consumers
// (CI annotations, dashboards) must check it before trusting field layout.
const reportSchema = "authlint/report/v1"

// jsonReport is the -json envelope: schema tag, the contract policy if one
// was applied, per-program reports, and roll-up totals so consumers can gate
// on counts without walking every finding.
type jsonReport struct {
	Schema string `json:"schema"`
	// Policy is the control-point contract findings were filtered under
	// (empty = raw analysis, no policy filter).
	Policy   string   `json:"policy,omitempty"`
	Programs []result `json:"programs"`
	Totals   totals   `json:"totals"`
}

// totals aggregates the sweep: program and finding counts, findings per
// kind, and how many programs came back clean.
type totals struct {
	Programs int            `json:"programs"`
	Clean    int            `json:"clean"`
	Findings int            `json:"findings"`
	ByKind   map[string]int `json:"by_kind,omitempty"`
}

// buildReport assembles the envelope from per-program results.
func buildReport(results []result, policyName string) *jsonReport {
	rep := &jsonReport{
		Schema:   reportSchema,
		Policy:   policyName,
		Programs: results,
	}
	rep.Totals.Programs = len(results)
	for _, r := range results {
		if r.Report.Clean() {
			rep.Totals.Clean++
			continue
		}
		rep.Totals.Findings += len(r.Report.Findings)
		for k, n := range r.Report.Counts() {
			if n == 0 {
				continue
			}
			if rep.Totals.ByKind == nil {
				rep.Totals.ByKind = map[string]int{}
			}
			rep.Totals.ByKind[string(k)] += n
		}
	}
	return rep
}

// encode renders the envelope as indented JSON with a trailing newline.
func (r *jsonReport) encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// decodeReport parses and schema-checks an envelope, for consumers and the
// round-trip test.
func decodeReport(data []byte) (*jsonReport, error) {
	var r jsonReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("authlint: report does not decode: %w", err)
	}
	if r.Schema != reportSchema {
		return nil, fmt.Errorf("authlint: report schema %q, want %q", r.Schema, reportSchema)
	}
	return &r, nil
}

// lintTargets runs the analysis over every target and returns the
// per-program results plus whether any program had findings. Split from main
// so the JSON pipeline is testable without a process boundary.
func lintTargets(targets []target, opts analysis.Options, usePolicy bool, pol policy.ControlPoint) ([]result, bool, error) {
	var results []result
	dirty := false
	for _, tg := range targets {
		var rep *analysis.Report
		var err error
		if usePolicy {
			rep, err = analysis.AnalyzeForPolicy(tg.prog, pol, opts)
		} else {
			rep, err = analysis.Analyze(tg.prog, opts)
		}
		if err != nil {
			return nil, false, fmt.Errorf("%s: %v", tg.name, err)
		}
		if !rep.Clean() {
			dirty = true
		}
		results = append(results, result{Name: tg.name, Report: rep})
	}
	return results, dirty, nil
}
