package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"authpoint/internal/experiments"
	"authpoint/internal/harness"
	"authpoint/internal/policy"
)

// latticeCell is one (workload, policy) measurement in the lattice record.
type latticeCell struct {
	Policy     string  `json:"policy"`
	IPC        float64 `json:"ipc"`
	Normalized float64 `json:"normalized_ipc"`
}

// latticeRow is one workload's trip across the lattice.
type latticeRow struct {
	Workload    string        `json:"workload"`
	BaselineIPC float64       `json:"baseline_ipc"`
	Cells       []latticeCell `json:"cells"`
}

// latticeRecord is the machine-readable output of the lattice experiment.
type latticeRecord struct {
	Schema       string             `json:"schema"`
	WarmupInsts  uint64             `json:"warmup_insts"`
	MeasureInsts uint64             `json:"measure_insts"`
	Policies     []string           `json:"policies"`
	Workloads    []string           `json:"workloads"`
	Rows         []latticeRow       `json:"rows"`
	MeanIPC      map[string]float64 `json:"mean_normalized_ipc"`
	// BaselineSims counts baseline simulations actually executed: with the
	// memo working it equals len(Workloads), i.e. a k-policy sweep costs
	// k+1 simulations per workload, not 2k.
	BaselineSims int64 `json:"baseline_sims"`
}

// runLatticeExperiment sweeps every single- and two-gate composition of the
// control-point lattice (policy.Lattice, 15 points — the canonical schemes
// plus compositions no legacy enum value names) and writes the normalized-IPC
// record to path. A fresh runner isolates the baseline-memo evidence from the
// process-wide memo.
func runLatticeExperiment(w io.Writer, p experiments.Params, path string) error {
	points := policy.Lattice()
	r := &harness.Runner{Parallelism: parallelism}
	if benchRec != nil {
		r.OnProgress = benchRec.observe
	}
	p.Runner = r

	sw, err := experiments.RunSweep("lattice sweep: all 1- and 2-gate compositions", p, points, nil)
	if err != nil {
		return err
	}
	sw.Render(w)

	rec := latticeRecord{
		Schema:       "authbench/lattice/v1",
		WarmupInsts:  p.Warmup,
		MeasureInsts: p.Measure,
		MeanIPC:      map[string]float64{},
		BaselineSims: r.BaselineSims(),
	}
	for _, pt := range points {
		rec.Policies = append(rec.Policies, pt.String())
		rec.MeanIPC[pt.String()] = sw.MeanNormalized(pt)
	}
	for _, row := range sw.Rows {
		lr := latticeRow{Workload: row.Workload, BaselineIPC: row.BaselineIPC}
		for _, pt := range points {
			lr.Cells = append(lr.Cells, latticeCell{
				Policy:     pt.String(),
				IPC:        row.IPC[pt],
				Normalized: row.Normalized(pt),
			})
		}
		rec.Rows = append(rec.Rows, lr)
		rec.Workloads = append(rec.Workloads, row.Workload)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nlattice: %d policies x %d workloads, %d baseline sims (memoized k+1), record: %s\n",
		len(points), len(p.Workloads), rec.BaselineSims, path)
	return nil
}
