package main

import (
	"fmt"
	"os"

	"authpoint/internal/asm"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// runTracedSmoke runs one short gated simulation with the full observability
// hub attached and writes a Chrome/Perfetto trace-event JSON file. It is the
// CI smoke path: generate a trace, re-read it, and fail unless it validates.
func runTracedSmoke(path, schemeName, workloadName string, maxInsts uint64) error {
	pt, err := policy.Parse(schemeName)
	if err != nil {
		return err
	}
	w, ok := workload.ByName(workloadName)
	if !ok {
		return fmt.Errorf("unknown workload %q", workloadName)
	}
	prog, err := asm.Assemble(w.Source)
	if err != nil {
		return err
	}

	cfg := sim.DefaultConfig()
	cfg.Policy = pt
	cfg.MaxInsts = w.InitInsts + maxInsts
	m, err := sim.NewMachine(cfg, prog)
	if err != nil {
		return err
	}
	tr := obs.NewTracer(0)
	hub := obs.NewHub(tr, true)
	m.SetObserver(hub)
	res, err := m.Run()
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Re-read and validate what actually landed on disk, so the smoke run
	// fails loudly if the export ever regresses.
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := obs.ValidateTraceJSON(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "authbench: trace ring dropped %d oldest events\n", d)
	}
	fmt.Printf("traced smoke: %s on %s, %d cycles, %d insts (IPC %.4f)\n",
		schemeName, workloadName, res.Cycles, res.Insts, res.IPC)
	fmt.Printf("trace: %d events -> %s (validated; load in ui.perfetto.dev)\n",
		tr.Total()-tr.Dropped(), path)
	return nil
}
