// Command authbench regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows/series the paper reports.
// Sweep cells fan out over a worker pool (one goroutine per cell, pool sized
// by -parallel); output is byte-identical to a serial run.
//
// Usage:
//
//	authbench -experiment all                  # everything (several minutes)
//	authbench -experiment fig7a                # one artifact
//	authbench -experiment table2 -quick        # fast smoke versions
//	authbench -experiment fig7a -parallel 8    # pin the worker pool
//	authbench -experiment bench -json BENCH_sweep.json   # serial-vs-parallel record
//	authbench -experiment fig8 -cpuprofile cpu.pprof     # profile the hot path
//	authbench -experiment table2 -metrics                # per-policy stall/gap summaries
//	authbench -experiment lattice                        # full composable-policy sweep -> BENCH_lattice.json
//	authbench -trace smoke.json -trace-scheme commit+fetch   # traced smoke run, then exit
//
// Experiments: table1 table2 table3 fig6 fig7a fig7b fig7c fig7d fig8 fig9
// fig10 fig11 fig12 fig13 ablations lattice bench all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"authpoint/internal/experiments"
	"authpoint/internal/harness"
	"authpoint/internal/policy"
	"authpoint/internal/prof"
	"authpoint/internal/report"
	"authpoint/internal/sim"
	"authpoint/internal/telemetry"
	"authpoint/internal/workload"
)

func main() {
	var (
		exp        = flag.String("experiment", "all", "which artifact to regenerate (see doc)")
		quick      = flag.Bool("quick", false, "small workload subset and short windows")
		warmup     = flag.Uint64("warmup", 0, "override warmup instructions")
		measure    = flag.Uint64("measure", 0, "override measured instructions")
		loadList   = flag.String("workloads", "", "comma-separated workload subset (default: all 18)")
		bars       = flag.Bool("bars", false, "render normalized-IPC sweeps as bar groups (figure-style)")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "sweep worker pool size (1 = serial)")
		jsonOut    = flag.String("json", "", "write a machine-readable bench record to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path")
		metrics    = flag.Bool("metrics", false, "collect per-cell metrics; print a per-scheme stall/gap summary after each experiment (and embed snapshots in -json cells)")
		traceOut   = flag.String("trace", "", "run one short traced sim, write Chrome/Perfetto trace-event JSON here, and exit (skips experiments)")
		traceSch   = flag.String("trace-scheme", "commit+fetch", "control point for the -trace run (any policy name)")
		latticeOut = flag.String("lattice-out", "BENCH_lattice.json", "output path for the lattice experiment record")
		traceLoad  = flag.String("trace-workload", "mcfx", "workload for the -trace run")
		traceInsts = flag.Uint64("trace-insts", 60_000, "instruction budget for the -trace run (after workload init)")
		teleOut    = flag.String("telemetry", "", "stream a JSONL run ledger (one record per sweep cell) to this path")
		progress   = flag.Bool("progress", false, "print live progress/ETA heartbeats to stderr")
	)
	flag.Parse()

	if *traceOut != "" {
		if err := runTracedSmoke(*traceOut, *traceSch, *traceLoad, *traceInsts); err != nil {
			fatalf("trace: %v", err)
		}
		return
	}

	p := experiments.DefaultParams()
	if *quick {
		p = experiments.QuickParams()
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}
	if *measure > 0 {
		p.Measure = *measure
	}
	if *loadList != "" {
		var ws []workload.Workload
		for _, name := range strings.Split(*loadList, ",") {
			w, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fatalf("unknown workload %q", name)
			}
			ws = append(ws, w)
		}
		p.Workloads = ws
	}

	stopProf, err := prof.Start(*cpuprofile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	if *jsonOut != "" {
		benchRec = newBenchRecorder(*parallel)
	}
	if *teleOut != "" {
		l, err := telemetry.Create(*teleOut, telemetry.NewHeader("authbench:"+*exp, *parallel))
		if err != nil {
			fatalf("%v", err)
		}
		runLedger = l
		defer func() {
			if err := l.Close(); err != nil {
				fatalf("telemetry: %v", err)
			}
		}()
	}
	if *progress {
		runMeter = telemetry.NewMeter(os.Stderr, "authbench", 0)
		defer runMeter.Finish()
	}
	sweepRunner = &harness.Runner{Parallelism: *parallel, CollectMetrics: *metrics,
		Ledger: runLedger, Meter: runMeter}
	collectMetrics = *metrics
	if benchRec != nil || collectMetrics {
		sweepRunner.OnProgress = observeProgress
	}
	p.Runner = sweepRunner
	parallelism = *parallel

	latticePath = *latticeOut
	renderBars = *bars
	start := time.Now()
	for _, e := range strings.Split(*exp, ",") {
		if err := run(strings.TrimSpace(e), p); err != nil {
			fatalf("%s: %v", e, err)
		}
	}
	fmt.Printf("\n(total wall time %v, %d workers)\n", time.Since(start).Round(time.Second), *parallel)

	if err := prof.WriteHeap(*memprofile); err != nil {
		fatalf("%v", err)
	}
	if benchRec != nil {
		if err := benchRec.write(*jsonOut); err != nil {
			fatalf("json: %v", err)
		}
		fmt.Printf("(bench record written to %s)\n", *jsonOut)
	}
}

// Shared state the experiment dispatcher reads (set once in main before any
// experiment runs).
var (
	// sweepRunner executes every sweep's cells; its baseline memo spans all
	// experiments in the invocation.
	sweepRunner *harness.Runner
	// benchRec is non-nil when -json is set.
	benchRec *benchRecorder
	// collectMetrics mirrors the -metrics flag.
	collectMetrics bool
	// metricsAgg is non-nil while a -metrics leaf experiment runs; run()
	// swaps in a fresh aggregator per experiment and renders it after.
	metricsAgg *report.Aggregator
	// parallelism mirrors the -parallel flag for the bench experiment.
	parallelism int
	// runLedger and runMeter are the -telemetry ledger and -progress meter;
	// nil when the flags are off. The bench experiment's fresh per-leg
	// runners attach them too, so every cell of every leg lands in one
	// ledger with campaign-unique sequence numbers.
	runLedger *telemetry.Ledger
	runMeter  *telemetry.Meter
)

// observeProgress fans the shared Runner's progress stream out to the bench
// recorder and the metrics aggregator (either may be nil). It reads the
// globals at call time so run() can swap in a fresh aggregator per leaf
// experiment. Memoized baseline cells share a single snapshot, so the
// aggregator skips Cached outcomes to avoid counting it once per scheme row.
func observeProgress(p harness.Progress) {
	if benchRec != nil {
		benchRec.observe(p)
	}
	o := p.Outcome
	if metricsAgg != nil && o.Err == nil && !o.Cached {
		// Bounds always match across cells (fixed bucket sets), so the only
		// merge error is a programming bug; surface it loudly.
		if err := metricsAgg.Add(o.Spec.Config.ControlPoint(), o.Measurement.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "authbench: metrics: %v\n", err)
		}
	}
}

// renderBars switches sweep output to figure-style bar groups.
var renderBars bool

// latticePath is the -lattice-out flag.
var latticePath string

func renderSweep(w *os.File, sw *experiments.Sweep) {
	if renderBars {
		sw.RenderBars(w)
		return
	}
	sw.Render(w)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authbench: "+format+"\n", args...)
	os.Exit(1)
}

// run dispatches one experiment name, recording a bench section around each
// leaf experiment when -json is active and a per-scheme metrics summary when
// -metrics is active.
func run(name string, p experiments.Params) error {
	switch name {
	case "all", "bench":
		return runLeaf(name, p)
	}
	if benchRec != nil {
		benchRec.begin(name)
		defer benchRec.end(sweepRunner)
	}
	if collectMetrics {
		metricsAgg = report.NewAggregator()
	}
	if err := runLeaf(name, p); err != nil {
		return err
	}
	if metricsAgg != nil {
		fmt.Println()
		report.WriteSchemeSummaries(os.Stdout, metricsAgg.Summaries())
		metricsAgg = nil
	}
	return nil
}

func runLeaf(name string, p experiments.Params) error {
	w := os.Stdout
	section := func(s string) { fmt.Fprintf(w, "\n==== %s ====\n", s) }
	switch name {
	case "all":
		// fig10 renders fig11 and fig12 renders fig13 (they derive from the
		// same sweeps), so each pair runs once.
		for _, e := range []string{
			"table1", "table2", "table3", "fig6",
			"fig7a", "fig7b", "fig7c", "fig7d",
			"fig8", "fig9", "fig10", "fig12",
		} {
			if err := run(e, p); err != nil {
				return err
			}
		}
		return nil

	case "bench":
		section("Sweep bench: serial vs parallel wall time, byte-identical output")
		return runBenchExperiment(benchRec, parallelism)

	case "lattice":
		section("Lattice: normalized IPC across the composable control-point space")
		return runLatticeExperiment(w, p, latticePath)

	case "table1":
		section("Table 1")
		rows, err := experiments.Table1(sim.DefaultConfig())
		if err != nil {
			return err
		}
		experiments.RenderTable1(w, rows)

	case "table2":
		section("Table 2")
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		experiments.RenderTable2(w, rows)

	case "table3":
		section("Table 3")
		experiments.RenderTable3(w, sim.DefaultConfig())

	case "fig6":
		section("Figure 6")
		rows, err := experiments.Fig6()
		if err != nil {
			return err
		}
		experiments.RenderFig6(w, rows)

	case "fig7a", "fig7b", "fig7c", "fig7d":
		fp := name == "fig7b" || name == "fig7d"
		l2 := 256 << 10
		lat := 4
		if name == "fig7c" || name == "fig7d" {
			l2 = 1 << 20
			lat = 8
		}
		section("Figure 7" + name[4:])
		sw, err := experiments.Fig7(p, fp, l2, lat)
		if err != nil {
			return err
		}
		renderSweep(w, sw)

	case "fig8":
		// Figure 8 derives from the 256KB Figure 7 data: IPC speedup of the
		// relaxed schemes over authen-then-issue.
		section("Figure 8")
		sw, err := experiments.RunSweep("fig8 base data (256KB L2)", p,
			[]policy.ControlPoint{policy.ThenIssue, policy.ThenWrite, policy.ThenCommit, policy.CommitPlusFetch}, nil)
		if err != nil {
			return err
		}
		experiments.RenderSpeedups(w, "Figure 8: IPC speedup over authen-then-issue, 256KB L2",
			sw.Speedups([]policy.ControlPoint{policy.ThenCommit, policy.ThenWrite, policy.CommitPlusFetch}),
			[]policy.ControlPoint{policy.ThenCommit, policy.ThenWrite, policy.CommitPlusFetch})

	case "fig9":
		section("Figure 9")
		pts, err := experiments.Fig9(p, []int{64 << 10, 256 << 10, 1 << 20})
		if err != nil {
			return err
		}
		experiments.RenderFig9(w, pts)

	case "fig10", "fig11":
		section("Figures 10/11 (64-entry RUU)")
		sw, err := experiments.Fig10(p)
		if err != nil {
			return err
		}
		renderSweep(w, sw)
		experiments.RenderSpeedups(w, "Figure 11: speedup over authen-then-issue, 64-entry RUU",
			sw.Speedups([]policy.ControlPoint{policy.ThenCommit, policy.CommitPlusFetch}),
			[]policy.ControlPoint{policy.ThenCommit, policy.CommitPlusFetch})

	case "fig12", "fig13":
		section("Figures 12/13 (MAC-tree authentication)")
		sw, err := experiments.Fig12(p)
		if err != nil {
			return err
		}
		renderSweep(w, sw)
		experiments.RenderSpeedups(w, "Figure 13: speedup over authen-then-issue, MAC tree",
			sw.Speedups([]policy.ControlPoint{policy.ThenCommit, policy.CommitPlusFetch}),
			[]policy.ControlPoint{policy.ThenCommit, policy.CommitPlusFetch})

	case "ablations":
		section("Ablations (design-choice sensitivity, beyond the paper's figures)")
		abls, err := experiments.AllAblations(p)
		if err != nil {
			return err
		}
		for _, a := range abls {
			a.Render(w)
		}

	default:
		return fmt.Errorf("unknown experiment (want table1..3, fig6..fig13, ablations, lattice, bench, or all)")
	}
	return nil
}
