package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"authpoint/internal/experiments"
	"authpoint/internal/harness"
	"authpoint/internal/obs"
)

// benchCell is one sweep cell's cost in the -json record.
type benchCell struct {
	Workload string `json:"workload"`
	// Scheme is the cell's canonical control-point (policy) name; the JSON
	// key stays "scheme" for record compatibility.
	Scheme    string `json:"scheme"`
	SimCycles uint64 `json:"sim_cycles"` // total simulated cycles (warmup + measure)
	WallNs    int64  `json:"wall_ns"`
	// HostNsPerSimCycle is the practical simulator cost: host nanoseconds
	// spent per simulated core cycle (at the model's 1 GHz clock, host
	// cycles per simulated cycle up to the host's clock ratio).
	HostNsPerSimCycle float64 `json:"host_ns_per_sim_cycle"`
	// Cached marks baseline cells served from the memo without simulating.
	Cached bool `json:"cached,omitempty"`
	// Metrics is the cell's observability snapshot (present with -metrics;
	// memoized baseline cells repeat the shared snapshot).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// benchExperiment is one experiment's record.
type benchExperiment struct {
	Name         string      `json:"name"`
	WallNs       int64       `json:"wall_ns"`
	Cells        []benchCell `json:"cells,omitempty"`
	BaselineSims int64       `json:"baseline_sims,omitempty"`
}

// benchSweepComparison is the serial-vs-parallel headline of the `bench`
// experiment.
type benchSweepComparison struct {
	Workloads       []string `json:"workloads"`
	Schemes         int      `json:"schemes"`
	Cells           int      `json:"cells"`
	Parallelism     int      `json:"parallelism"`
	SerialWallNs    int64    `json:"serial_wall_ns"`
	ParallelWallNs  int64    `json:"parallel_wall_ns"`
	Speedup         float64  `json:"speedup"`
	OutputIdentical bool     `json:"output_identical"`
}

// benchRecord is the machine-readable output of -json.
type benchRecord struct {
	Schema      string                `json:"schema"`
	GOOS        string                `json:"goos"`
	GOARCH      string                `json:"goarch"`
	NumCPU      int                   `json:"num_cpu"`
	GoVersion   string                `json:"go_version"`
	Parallelism int                   `json:"parallelism"`
	Experiments []benchExperiment     `json:"experiments"`
	Sweep       *benchSweepComparison `json:"sweep,omitempty"`
}

// benchRecorder accumulates per-cell stats through a Runner's progress
// callback and per-experiment wall times around each run.
type benchRecorder struct {
	record  benchRecord
	current *benchExperiment
	started time.Time
}

func newBenchRecorder(parallelism int) *benchRecorder {
	return &benchRecorder{record: benchRecord{
		Schema:      "authbench/sweep-bench/v1",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		Parallelism: parallelism,
	}}
}

// observe is installed as the shared Runner's OnProgress callback. It runs
// under the runner lock: append only.
func (b *benchRecorder) observe(p harness.Progress) {
	if b.current == nil {
		return
	}
	o := p.Outcome
	if o.Err != nil {
		return
	}
	cell := benchCell{
		Workload:  o.Spec.Workload.Name,
		Scheme:    o.Spec.Config.ControlPoint().String(),
		SimCycles: o.Measurement.Result.Cycles,
		WallNs:    o.Wall.Nanoseconds(),
		Cached:    o.Cached,
		Metrics:   o.Measurement.Metrics,
	}
	if cell.SimCycles > 0 {
		cell.HostNsPerSimCycle = float64(cell.WallNs) / float64(cell.SimCycles)
	}
	b.current.Cells = append(b.current.Cells, cell)
}

// begin opens an experiment section; end closes it and stamps wall time.
func (b *benchRecorder) begin(name string) {
	b.record.Experiments = append(b.record.Experiments, benchExperiment{Name: name})
	b.current = &b.record.Experiments[len(b.record.Experiments)-1]
	b.started = time.Now()
}

func (b *benchRecorder) end(r *harness.Runner) {
	if b.current == nil {
		return
	}
	b.current.WallNs = time.Since(b.started).Nanoseconds()
	if r != nil {
		b.current.BaselineSims = r.BaselineSims()
	}
	b.current = nil
}

func (b *benchRecorder) write(path string) error {
	data, err := json.MarshalIndent(b.record, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runBenchExperiment runs the quick sweep once on one worker and once on
// the full pool — fresh runners each, so the baseline memo cannot leak work
// between the legs — verifies the rendered output is byte-identical, and
// records the wall-clock speedup. This is the record committed as
// BENCH_sweep.json to start the perf trajectory.
func runBenchExperiment(rec *benchRecorder, parallelism int) error {
	p := experiments.QuickParams()
	var names []string
	for _, w := range p.Workloads {
		names = append(names, w.Name)
	}
	leg := func(name string, workers int) (time.Duration, string, error) {
		r := &harness.Runner{Parallelism: workers, Ledger: runLedger, Meter: runMeter}
		if rec != nil {
			r.OnProgress = rec.observe
			rec.begin(name)
			defer rec.end(r)
		}
		pp := p
		pp.Runner = r
		start := time.Now()
		// Both legs share one title: Render prints it, and the byte
		// comparison below must see identical tables.
		sw, err := experiments.RunSweep("bench sweep (quick subset)", pp, experiments.PerfPolicies, nil)
		if err != nil {
			return 0, "", err
		}
		var buf bytes.Buffer
		sw.Render(&buf)
		return time.Since(start), buf.String(), nil
	}

	serialWall, serialOut, err := leg("bench-sweep-serial", 1)
	if err != nil {
		return err
	}
	parallelWall, parallelOut, err := leg("bench-sweep-parallel", parallelism)
	if err != nil {
		return err
	}

	// The table is printed once — both legs rendered the same bytes, and
	// the comparison below enforces it.
	identical := serialOut == parallelOut
	fmt.Print(serialOut)
	speedup := 0.0
	if parallelWall > 0 {
		speedup = float64(serialWall) / float64(parallelWall)
	}
	cells := len(p.Workloads) * (len(experiments.PerfPolicies) + 1)
	fmt.Printf("\nsweep bench: %d cells, serial %v, parallel(%d workers) %v, speedup %.2fx, output identical: %v\n",
		cells, serialWall.Round(time.Millisecond), parallelism, parallelWall.Round(time.Millisecond), speedup, identical)
	if rec != nil {
		rec.record.Sweep = &benchSweepComparison{
			Workloads:       names,
			Schemes:         len(experiments.PerfPolicies),
			Cells:           cells,
			Parallelism:     parallelism,
			SerialWallNs:    serialWall.Nanoseconds(),
			ParallelWallNs:  parallelWall.Nanoseconds(),
			Speedup:         speedup,
			OutputIdentical: identical,
		}
	}
	if !identical {
		return fmt.Errorf("parallel sweep output differs from serial")
	}
	return nil
}
