// Command authasm assembles authpoint assembly and prints the binary image:
// encoded text words with disassembly, the data section, and the symbol
// table. With -run it also executes the program on the default machine.
//
// Usage:
//
//	authasm prog.s
//	authasm -run -scheme authen-then-commit prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

func main() {
	var (
		run        = flag.Bool("run", false, "execute after assembling")
		schemeName = flag.String("scheme", "baseline", "control-point name when running (any registered or composed policy)")
		maxInsts   = flag.Uint64("maxinsts", 1_000_000, "instruction budget when running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: authasm [-run] file.s")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("text @ %#x (%d instructions), data @ %#x (%d bytes), entry %#x\n\n",
		p.TextBase, len(p.Text), p.DataBase, len(p.Data), p.Entry)
	for i, w := range p.Text {
		addr := p.TextBase + uint64(i*isa.InstBytes)
		if lbl := labelAt(p, addr); lbl != "" {
			fmt.Printf("%s:\n", lbl)
		}
		fmt.Printf("  %#08x: %08x  %v\n", addr, w, isa.Decode(w))
	}
	if len(p.Data) > 0 {
		fmt.Printf("\ndata (first %d bytes):\n", min(64, len(p.Data)))
		for i := 0; i < min(64, len(p.Data)); i += 16 {
			end := min(i+16, len(p.Data))
			fmt.Printf("  %#08x: % x\n", p.DataBase+uint64(i), p.Data[i:end])
		}
	}
	fmt.Println("\nsymbols:")
	type symb struct {
		name string
		addr uint64
	}
	var syms []symb
	for n, a := range p.Symbols {
		syms = append(syms, symb{n, a})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	for _, s := range syms {
		fmt.Printf("  %#08x %s\n", s.addr, s.name)
	}

	if *run {
		pt, err := policy.Parse(*schemeName)
		if err != nil {
			fatalf("%v", err)
		}
		cfg := sim.DefaultConfig()
		cfg.Policy = pt
		cfg.MaxInsts = *maxInsts
		m, err := sim.NewMachine(cfg, p)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := m.Run()
		if err != nil {
			fatalf("run: %v", err)
		}
		fmt.Printf("\nrun: %v after %d cycles, %d instructions (IPC %.3f)\n",
			res.Reason, res.Cycles, res.Insts, res.IPC)
		for _, e := range m.Core.OutLog() {
			fmt.Printf("  out port %#x <- %#x @ cycle %d\n", e.Port, e.Val, e.Cycle)
		}
	}
}

func labelAt(p *asm.Program, addr uint64) string {
	for n, a := range p.Symbols {
		if a == addr {
			return n
		}
	}
	return ""
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authasm: "+format+"\n", args...)
	os.Exit(1)
}
