// Command authsim runs one program or workload on the secure processor
// model and reports timing, cache, and authentication statistics.
//
// Usage:
//
//	authsim -workload mcfx -scheme authen-then-commit -maxinsts 200000
//	authsim -file prog.s -scheme authen-then-issue
//	authsim -workload swimx -scheme all            # compare all registered policies
//	authsim -workload mcfx -scheme authen-then-write+fetch   # any lattice point
package main

import (
	"flag"
	"fmt"
	"os"

	"authpoint/internal/asm"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/report"
	"authpoint/internal/secmem"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

func main() {
	var (
		file     = flag.String("file", "", "assembly source file to run")
		load     = flag.String("workload", "", "built-in workload name (e.g. mcfx)")
		scheme   = flag.String("scheme", "baseline", "control-point name (any registered or composed policy, e.g. authen-then-write+fetch) or 'all'")
		maxInsts = flag.Uint64("maxinsts", 0, "stop after N committed instructions (0 = run to halt)")
		l2KB     = flag.Int("l2kb", 256, "L2 size in KB")
		ruu      = flag.Int("ruu", 128, "RUU entries")
		tree     = flag.Bool("tree", false, "MAC-tree authentication")
		drain    = flag.Bool("drain", false, "then-fetch: drain-the-queue variant")
		prefetch = flag.Bool("prefetch", false, "enable next-line L2 prefetching")
		macUnits = flag.Int("macunits", 1, "parallel verification engines")
		cbc      = flag.Bool("cbc", false, "CBC-mode encryption timing (Table 1 comparison)")
		mshrs    = flag.Int("mshrs", 0, "bound outstanding misses (0 = unbounded)")
		verbose  = flag.Bool("v", false, "print cache/DRAM/auth statistics")
		trace    = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON file (single scheme only)")
		traceCap = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default)")
		metrics  = flag.Bool("metrics", false, "print auth-latency/gap/occupancy histograms and event counters")
	)
	flag.Parse()
	if *trace != "" && *scheme == "all" {
		fatalf("-trace needs a single -scheme, not 'all'")
	}

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatalf("%v", err)
		}
		src = string(b)
	case *load != "":
		w, ok := workload.ByName(*load)
		if !ok {
			fatalf("unknown workload %q; try one of %v", *load, names())
		}
		src = w.Source
		if *maxInsts == 0 {
			*maxInsts = w.InitInsts + 150_000
		}
	default:
		fatalf("need -file or -workload")
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		fatalf("assemble: %v", err)
	}

	var policies []policy.ControlPoint
	if *scheme == "all" {
		for _, e := range policy.Registered() {
			policies = append(policies, e.Point)
		}
	} else {
		pt, err := policy.Parse(*scheme)
		if err != nil {
			fatalf("%v", err)
		}
		policies = append(policies, pt)
	}

	fmt.Printf("%-32s %10s %12s %8s %12s\n", "policy", "IPC", "cycles", "insts", "stop")
	for _, s := range policies {
		cfg := sim.DefaultConfig()
		cfg.Policy = s
		cfg.MaxInsts = *maxInsts
		cfg.Mem.L2B = *l2KB << 10
		if *l2KB >= 1024 {
			cfg.Mem.L2Lat = 8
		}
		cfg.Pipeline.RUUSize = *ruu
		cfg.Pipeline.LSQSize = *ruu / 2
		cfg.Sec.UseTree = *tree
		cfg.Mem.FetchDrain = *drain
		cfg.Mem.NextLinePrefetch = *prefetch
		cfg.Sec.MacUnits = *macUnits
		cfg.Mem.MSHRs = *mshrs
		if *cbc {
			cfg.Sec.Mode = secmem.ModeCBC
		}
		m, err := sim.NewMachine(cfg, prog)
		if err != nil {
			fatalf("%v", err)
		}
		var hub *obs.Hub
		if *trace != "" || *metrics {
			var tr *obs.Tracer
			if *trace != "" {
				tr = obs.NewTracer(*traceCap)
			}
			hub = obs.NewHub(tr, *metrics)
			m.SetObserver(hub)
			if *metrics {
				m.EnablePerf()
			}
		}
		res, err := m.Run()
		if err != nil {
			fatalf("%v: %v", s, err)
		}
		fmt.Printf("%-32s %10.4f %12d %8d %12v\n", s, res.IPC, res.Cycles, res.Insts, res.Reason)
		if *verbose {
			report.Write(os.Stdout, m, res)
		}
		if *metrics {
			snap := hub.Snapshot()
			m.Perf().AddTo(snap)
			report.WriteMetrics(os.Stdout, snap)
		}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatalf("%v", err)
			}
			if err := hub.Tracer().WriteJSON(f); err != nil {
				fatalf("trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("trace: %v", err)
			}
			if d := hub.Tracer().Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "authsim: trace ring dropped %d oldest events (raise -trace-cap)\n", d)
			}
			fmt.Printf("trace: %d events -> %s (load in ui.perfetto.dev)\n",
				hub.Tracer().Total()-hub.Tracer().Dropped(), *trace)
		}
	}
}

func names() []string {
	var out []string
	for _, w := range workload.All() {
		out = append(out, w.Name)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authsim: "+format+"\n", args...)
	os.Exit(1)
}
