// Command authverify machine-checks leakage contracts by two-run secret
// non-interference: for every (seed, policy) cell it derives the static
// contract of the generated program, runs the program twice on data images
// that differ only in the secret bytes, and requires the bus-adversary views
// to differ only where the contract licenses it. It also sweeps the attack
// kernel catalog the same way, asserting every known bus-observed exploit
// leak is licensed by its contract.
//
// Verdicts per cell:
//
//	clean      views identical, contract empty (nothing claimed, nothing seen)
//	imprecise  views identical, contract non-empty (licensed leak never realized)
//	licensed   views differ only on licensed channels (the sound case)
//	unsound    views differ on an unlicensed channel — a FINDING: a dynamic
//	           leak the static analysis missed
//	error      the check could not run
//
// Usage:
//
//	authverify [flags]                 # seed sweep + kernel catalog
//	authverify -replay file.leak ...   # deterministic replay
//
// Examples:
//
//	authverify -seeds 1:200 -policies full -out findings/
//	authverify -seeds 1:50 -policies ci -mode cross -budget 2m
//	authverify -kernels=false -seeds 1:1000 -parallel 4
//
// The exit status is 0 when every cell is clean/imprecise/licensed (every
// replay matches), 1 when any unsound verdict, kernel pin violation, or
// replay mismatch is found, and 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"authpoint/internal/campaign"
	"authpoint/internal/contract"
	"authpoint/internal/diffcheck"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/prof"
	"authpoint/internal/report"
	"authpoint/internal/telemetry"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authverify: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		seedsFlag = flag.String("seeds", "1:100", "inclusive seed range lo:hi")
		polFlag   = flag.String("policies", "full", "policy set: full (95-point lattice), lattice, ci, pac, or comma-separated names")
		mode      = flag.String("mode", "pair", "pair (seed i under policies[i mod n]) or cross (every seed under every policy)")
		kernels   = flag.Bool("kernels", true, "also check the attack-kernel catalog across the lattice")
		minimize  = flag.Bool("minimize", true, "shrink unsound programs to minimal reproducers before recording")
		outDir    = flag.String("out", "", "directory to write .leak files for findings (none if empty)")
		replay    = flag.Bool("replay", false, "replay .leak files given as arguments instead of sweeping")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = NumCPU)")
		budget    = flag.Duration("budget", 0, "wall-clock bound for the seed sweep (0 = none); cells not reached are skipped, not failed")
		verbose   = flag.Bool("v", false, "print one line per cell")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file before exit")
		metrics   = flag.Bool("metrics", false, "attach an observability hub to every timed run; print the merged campaign metrics (and write metrics.json under -out)")
		teleOut   = flag.String("telemetry", "", "stream a JSONL run ledger (one record per cell) to this path")
		progress  = flag.Bool("progress", false, "print live progress/ETA heartbeats to stderr")
		cacheDir  = flag.String("cache", "", "content-addressed result cache directory: checks hit the cache instead of simulating when the (program, policy, options) cell was already checked")
		resumeAt  = flag.String("resume", "", "resume from a prior run's telemetry ledger: cells it records as done are not re-run (prior findings are regenerated through the cache)")
	)
	flag.Parse()

	if *replay {
		os.Exit(replayFiles(flag.Args(), *verbose))
	}
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %q (use -replay to replay files)", flag.Args())
	}

	seeds, err := diffcheck.ParseSeedRange(*seedsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	pols, err := policy.ParseSet(*polFlag)
	if err != nil {
		fatalf("%v", err)
	}

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	var store *campaign.Store
	if *cacheDir != "" {
		if store, err = campaign.Open(*cacheDir); err != nil {
			fatalf("%v", err)
		}
	}
	var done map[campaign.CellID]string
	if *resumeAt != "" {
		if done, err = campaign.LoadCompleted(*resumeAt); err != nil {
			fatalf("resume: %v", err)
		}
	}

	stopProf, err := prof.Start(*cpuprof)
	if err != nil {
		fatalf("%v", err)
	}

	var so *diffcheck.SweepObs
	if *metrics || *teleOut != "" || *progress {
		so = &diffcheck.SweepObs{CollectMetrics: *metrics}
		if *teleOut != "" {
			l, err := telemetry.Create(*teleOut, telemetry.NewHeader("authverify", *parallel))
			if err != nil {
				fatalf("%v", err)
			}
			so.Ledger = l
		}
		if *progress {
			so.Meter = telemetry.NewMeter(os.Stderr, "authverify", 0)
		}
	}

	bad := runSweep(ctx, seeds, pols, *mode, *minimize, *outDir, *parallel, *verbose, so, store, done)
	if *kernels {
		bad = runKernels(*verbose) || bad
	}
	if so != nil {
		if so.Meter != nil {
			so.Meter.Finish()
		}
		if so.Ledger != nil {
			if err := so.Ledger.Close(); err != nil {
				fatalf("telemetry: %v", err)
			}
		}
		if snap := so.Metrics(); snap != nil {
			fmt.Println()
			report.WriteMetrics(os.Stdout, snap)
			if *outDir != "" {
				if err := writeMetricsJSON(*outDir, snap); err != nil {
					fatalf("%v", err)
				}
			}
		}
	}

	// main exits through os.Exit, so the profiles must be flushed here
	// rather than in deferred calls.
	stopProf()
	if err := prof.WriteHeap(*memprof); err != nil {
		fatalf("%v", err)
	}
	if bad {
		os.Exit(1)
	}
}

// writeMetricsJSON records the merged campaign snapshot next to the .leak
// findings, so a verification campaign's observability outlives the terminal.
func writeMetricsJSON(outDir string, snap *obs.Snapshot) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "metrics.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("authverify: wrote %s\n", path)
	return nil
}

func runSweep(ctx context.Context, seeds []int64, pols []policy.ControlPoint, mode string, minimize bool, outDir string, parallel int, verbose bool, so *diffcheck.SweepObs, store *campaign.Store, done map[campaign.CellID]string) bool {
	var cells []contract.Cell
	switch mode {
	case "pair":
		cells = contract.PairCells(seeds, pols)
	case "cross":
		cells = contract.CrossCells(seeds, pols)
	default:
		fatalf("mode %q: want pair or cross", mode)
	}
	total := len(cells)

	// Resume: cells the prior ledger records as done are not swept again (the
	// union of both ledgers then covers every cell exactly once). Prior
	// finding cells are re-checked outside the ledger to regenerate the
	// finding's program text — free when the cache holds the result.
	opt := contract.Options{Cache: store}
	var redo []contract.Cell
	if done != nil {
		pending := make([]contract.Cell, 0, len(cells))
		for _, c := range cells {
			v, ok := done[campaign.CellID{Kind: "verify", Policy: c.Policy.String(), Seed: c.Seed}]
			if !ok {
				pending = append(pending, c)
				continue
			}
			if contract.IsFinding(contract.Verdict(v)) {
				redo = append(redo, c)
			}
		}
		fmt.Printf("authverify: resume: %d/%d cells already done (%d prior findings)\n",
			total-len(pending), total, len(redo))
		cells = pending
	}

	start := time.Now()
	results, findings, err := contract.SweepObserved(ctx, cells, opt, parallel, so)
	elapsed := time.Since(start).Round(time.Millisecond)

	// Regenerate prior findings so a resumed campaign reports the same
	// finding set as an uninterrupted one.
	for _, c := range redo {
		o := opt
		o.Policy = c.Policy
		res, src := contract.CheckSeed(c.Seed, o)
		if contract.IsFinding(res.Verdict) {
			findings = append(findings, contract.Finding{Result: res, Source: src})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Result, findings[j].Result
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Policy.String() < b.Policy.String()
	})

	counts := map[contract.Verdict]int{}
	skipped, cached := 0, 0
	for _, r := range results {
		if r.Verdict == "" {
			skipped++
			continue
		}
		counts[r.Verdict]++
		if r.Cached {
			cached++
		}
		if verbose {
			fmt.Printf("seed %-6d %-45v %s\n", r.Seed, r.Policy, r.Verdict)
		}
	}
	fmt.Printf("authverify: %d cells (%d seeds x %d policies, mode %s) in %v\n",
		total, len(seeds), len(pols), mode, elapsed)
	fmt.Printf("authverify: verdicts:")
	for _, v := range []contract.Verdict{contract.VerdictClean, contract.VerdictImprecise,
		contract.VerdictLicensed, contract.VerdictUnsound, contract.VerdictError} {
		if counts[v] > 0 {
			fmt.Printf(" %s=%d", v, counts[v])
		}
	}
	if cached > 0 {
		fmt.Printf(" cached=%d", cached)
	}
	if skipped > 0 {
		fmt.Printf(" skipped=%d (budget)", skipped)
	}
	fmt.Println()
	if store != nil {
		fmt.Printf("authverify: cache: %d hits, %d misses, %d stored (%s)\n",
			store.Hits(), store.Misses(), store.Puts(), store.Dir())
		if cerr := store.Err(); cerr != nil {
			fmt.Fprintf(os.Stderr, "authverify: cache: %v\n", cerr)
		}
	}
	if err != nil && err != context.DeadlineExceeded {
		fmt.Fprintf(os.Stderr, "authverify: sweep: %v\n", err)
	}

	for _, f := range findings {
		reportFinding(f, minimize, outDir)
	}
	return len(findings) > 0
}

// reportFinding prints one unsound/error cell, optionally shrinks unsound
// programs, and records a replayable .leak under outDir.
func reportFinding(f contract.Finding, minimize bool, outDir string) {
	res := f.Result
	fmt.Printf("authverify: FINDING seed %d under %v: %s: %s\n", res.Seed, res.Policy, res.Verdict, res.Diff)

	src := f.Source
	if minimize && res.Verdict == contract.VerdictUnsound {
		src = contract.MinimizeUnsound(src, res)
	}
	if outDir == "" {
		return
	}
	// Re-check the (possibly shrunk) source with the recorded images so the
	// .leak file replays byte-identically.
	final := contract.CheckProgram(src, contract.Options{
		Policy: res.Policy, Seed: res.Seed, SecretA: res.SecretA, SecretB: res.SecretB,
	})
	l := contract.NewLeak(final, src, "authverify finding: "+res.Diff)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fatalf("%v", err)
	}
	path := filepath.Join(outDir, fmt.Sprintf("seed%d-%s.leak", res.Seed, res.Policy))
	if err := l.WriteFile(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("authverify: wrote %s\n", path)
}

// runKernels checks the attack-kernel catalog across the full lattice: every
// bus-observed exploit leak must be licensed under non-obfuscating policies,
// never unsound anywhere, and address-free under obfuscation. This is the
// CLI edition of the catalog pin the contract package tests enforce.
func runKernels(verbose bool) bool {
	cases, err := contract.Catalog()
	if err != nil {
		fatalf("%v", err)
	}
	bad := false
	checked := 0
	start := time.Now()
	for _, kc := range cases {
		for _, pt := range kernelPolicies(kc) {
			res, err := contract.CheckKernel(kc, contract.Options{Policy: pt})
			if err != nil {
				bad = true
				fmt.Printf("authverify: KERNEL %s under %v: %v\n", kc.Name, pt, err)
				continue
			}
			checked++
			if verbose {
				fmt.Printf("kernel %-22s %-45v %s\n", kc.Name, pt, res.Verdict)
			}
			switch {
			case res.Verdict == contract.VerdictUnsound || res.Verdict == contract.VerdictError:
				bad = true
			case !kc.BusLeak && kc.BusLeakUnder == nil && res.Verdict != contract.VerdictClean:
				bad = true
			case kc.BusLeakUnder != nil && !kc.LeaksUnder(pt) && res.Verdict != contract.VerdictImprecise:
				// Policy closes the bus channel but the contract still
				// licenses it (taint flows through auth in every mode).
				bad = true
			case kc.LeaksUnder(pt) && !pt.Obfuscate && res.Verdict != contract.VerdictLicensed:
				bad = true
			default:
				continue
			}
			fmt.Printf("authverify: KERNEL PIN VIOLATION %s under %v: %s (bus-leak=%v): %s\n",
				kc.Name, pt, res.Verdict, kc.LeaksUnder(pt), res.Diff)
		}
	}
	fmt.Printf("authverify: kernel catalog: %d kernels, %d checks in %v\n",
		len(cases), checked, time.Since(start).Round(time.Millisecond))
	return bad
}

// kernelPolicies bounds the lattice slice per kernel: the non-halting victim
// kernels and the cache-washing state kernel run hundreds of thousands of
// cycles per check, so they get a representative slice instead of all 95
// points.
func kernelPolicies(kc contract.KernelCase) []policy.ControlPoint {
	if kc.ObserveWatchdog || !kc.BusLeak {
		return []policy.ControlPoint{
			policy.Baseline, policy.AuthOnly, policy.ThenCommit,
			policy.CommitPlusFetch, policy.CommitPlusObfuscation,
		}
	}
	return policy.FullLattice()
}

// replayFiles replays each .leak byte-identically; any mismatch is a finding
// (the model drifted from the recording, or the recording is stale).
func replayFiles(files []string, verbose bool) int {
	if len(files) == 0 {
		fatalf("-replay needs at least one file")
	}
	code := 0
	for _, path := range files {
		l, err := contract.LoadLeak(path)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := l.Replay()
		if err != nil {
			code = 1
			fmt.Printf("authverify: REPLAY MISMATCH %s: %v\n", path, err)
			continue
		}
		if verbose {
			fmt.Printf("%s: %s (%d/%d cycles) replayed byte-identically\n", path, res.Verdict, res.CyclesA, res.CyclesB)
		} else {
			fmt.Printf("%s: ok\n", path)
		}
	}
	return code
}
