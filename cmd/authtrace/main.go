// Command authtrace runs a program and prints its commit-order instruction
// trace with cycle timestamps — the classic pipeline-debugging view. With
// -gap it instead prints the distribution of commit-to-commit gaps, which
// makes authentication stalls directly visible (e.g. under
// authen-then-commit, memory-bound code commits in bursts separated by
// verification waits).
//
// Usage:
//
//	authtrace -file prog.s -scheme authen-then-commit -n 100
//	authtrace -workload swimx -scheme authen-then-issue -gap
//	authtrace -validate trace.json    # check a -trace export is well-formed
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

func main() {
	var (
		file       = flag.String("file", "", "assembly source file")
		load       = flag.String("workload", "", "built-in workload name")
		schemeName = flag.String("scheme", "authen-then-commit", "control point (any policy name, e.g. authen-then-issue+obfuscation)")
		n          = flag.Int("n", 200, "trace length (committed instructions)")
		skip       = flag.Uint64("skip", 0, "skip this many commits before tracing")
		gap        = flag.Bool("gap", false, "print commit-gap histogram instead of a trace")
		maxInsts   = flag.Uint64("maxinsts", 500_000, "instruction budget")
		validate   = flag.String("validate", "", "validate a trace-event JSON file (from authsim/authbench -trace) and exit")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatalf("%v", err)
		}
		if err := obs.ValidateTraceJSON(data); err != nil {
			fatalf("%s: %v", *validate, err)
		}
		fmt.Printf("%s: well-formed trace-event JSON\n", *validate)
		return
	}

	var src string
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatalf("%v", err)
		}
		src = string(b)
	case *load != "":
		w, ok := workload.ByName(*load)
		if !ok {
			fatalf("unknown workload %q", *load)
		}
		src = w.Source
	default:
		fatalf("need -file or -workload")
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		fatalf("assemble: %v", err)
	}

	pt, err := policy.Parse(*schemeName)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := sim.DefaultConfig()
	cfg.Policy = pt
	cfg.MaxInsts = *maxInsts
	m, err := sim.NewMachine(cfg, prog)
	if err != nil {
		fatalf("%v", err)
	}

	var (
		committed uint64
		lastCycle uint64
		traced    int
		gaps      = map[uint64]uint64{}
	)
	m.Core.CommitHook = func(pc uint64, inst isa.Inst, result uint64) {
		committed++
		now := m.Core.Now()
		defer func() { lastCycle = now }()
		if committed <= *skip {
			return
		}
		if *gap {
			gaps[now-lastCycle]++
			return
		}
		if traced < *n {
			marker := ""
			if now-lastCycle > 50 {
				marker = fmt.Sprintf("   <-- %d-cycle gap", now-lastCycle)
			}
			fmt.Printf("%10d  %#08x  %-28v res=%#x%s\n", now, pc, inst, result, marker)
			traced++
		}
	}
	res, _ := m.Run()
	fmt.Printf("\nstopped: %v after %d cycles, %d instructions (IPC %.4f)\n",
		res.Reason, res.Cycles, res.Insts, res.IPC)

	if *gap {
		fmt.Println("\ncommit-gap histogram (cycles-between-commits : count):")
		var keys []uint64
		for k := range gaps {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			if gaps[k] < res.Insts/1000 && k > 2 {
				continue // drop noise buckets below 0.1%
			}
			fmt.Printf("  %6d : %d\n", k, gaps[k])
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authtrace: "+format+"\n", args...)
	os.Exit(1)
}
