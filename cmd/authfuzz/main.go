// Command authfuzz hunts correctness bugs in the timed simulator by
// differential fuzzing: seed-deterministic random programs run on the
// out-of-order machine and on the in-order oracle, across the
// authentication control-point lattice, and every piece of architectural
// state is diffed. Tamper mode flips a bit in the encrypted image and
// asserts the containment invariants of gated policies; monotone mode
// asserts the metamorphic timing invariant (removing stall gates never
// costs cycles). Divergences are shrunk to minimal programs and written as
// deterministic .repro files that replay byte-identically.
//
// Usage:
//
//	authfuzz [flags]                  # fuzz sweep
//	authfuzz -repro file.repro ...    # deterministic replay
//
// Examples:
//
//	authfuzz -seeds 1:500 -policies ci -tamper -out findings/
//	authfuzz -seeds 1:50 -policies full -mode cross -monotone
//	authfuzz -repro internal/diffcheck/testdata/s2l-forwarding.repro
//
// The exit status is 0 when every check is clean (every replay matches), 1
// when any divergence, invariant violation, or replay mismatch is found,
// and 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"authpoint/internal/campaign"
	"authpoint/internal/diffcheck"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/prof"
	"authpoint/internal/report"
	"authpoint/internal/telemetry"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "authfuzz: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		seedsFlag = flag.String("seeds", "1:100", "inclusive seed range lo:hi")
		polFlag   = flag.String("policies", "ci", "policy set: full (31-point lattice), lattice, ci (CI smoke set), or comma-separated names (e.g. baseline,authen-then-commit+fetch)")
		mode      = flag.String("mode", "pair", "pair (seed i under policies[i mod n]) or cross (every seed under every policy)")
		tamper    = flag.Bool("tamper", false, "also run every cell with a tampered line and check containment invariants")
		tamperAt  = flag.String("tamper-site", "entry", "tamper site: entry (first instruction line), data (first data-segment line), mac (stored line MAC), ctr (write counter), or tree (integrity-tree leaf)")
		monotone  = flag.Bool("monotone", false, "per seed, check cycle monotonicity across the policy set (runs every policy per seed)")
		minimize  = flag.Bool("minimize", true, "shrink divergent programs to minimal repros before recording")
		outDir    = flag.String("out", "", "directory to write .repro files for findings (none if empty)")
		repro     = flag.Bool("repro", false, "replay .repro files given as arguments instead of fuzzing")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = NumCPU)")
		budget    = flag.Duration("budget", 0, "wall-clock bound for the sweep (0 = none); cells not reached are skipped, not failed")
		verbose   = flag.Bool("v", false, "print one line per cell")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file before exit")
		metrics   = flag.Bool("metrics", false, "attach an observability hub to every timed run; print the merged campaign metrics (and write metrics.json under -out)")
		teleOut   = flag.String("telemetry", "", "stream a JSONL run ledger (one record per cell) to this path")
		progress  = flag.Bool("progress", false, "print live progress/ETA heartbeats to stderr")
		cacheDir  = flag.String("cache", "", "content-addressed result cache directory: checks hit the cache instead of simulating when the (program, policy, options) cell was already checked")
		resumeAt  = flag.String("resume", "", "resume from a prior run's telemetry ledger: cells it records as done are not re-run (prior findings are regenerated through the cache)")
	)
	flag.Parse()

	if *repro {
		os.Exit(replayFiles(flag.Args(), *verbose))
	}
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %q (use -repro to replay files)", flag.Args())
	}

	seeds, err := diffcheck.ParseSeedRange(*seedsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	pols, err := policy.ParseSet(*polFlag)
	if err != nil {
		fatalf("%v", err)
	}

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	site := diffcheck.TamperSite(*tamperAt)
	valid := false
	for _, s := range diffcheck.Sites() {
		if site == s {
			valid = true
			break
		}
	}
	if !valid {
		fatalf("tamper-site %q: want one of %v", *tamperAt, diffcheck.Sites())
	}

	var store *campaign.Store
	if *cacheDir != "" {
		if store, err = campaign.Open(*cacheDir); err != nil {
			fatalf("%v", err)
		}
	}
	var done map[campaign.CellID]string
	if *resumeAt != "" {
		if done, err = campaign.LoadCompleted(*resumeAt); err != nil {
			fatalf("resume: %v", err)
		}
	}

	stopProf, err := prof.Start(*cpuprof)
	if err != nil {
		fatalf("%v", err)
	}

	var so *diffcheck.SweepObs
	if *metrics || *teleOut != "" || *progress {
		so = &diffcheck.SweepObs{CollectMetrics: *metrics}
		if *teleOut != "" {
			l, err := telemetry.Create(*teleOut, telemetry.NewHeader("authfuzz", *parallel))
			if err != nil {
				fatalf("%v", err)
			}
			so.Ledger = l
		}
		if *progress {
			so.Meter = telemetry.NewMeter(os.Stderr, "authfuzz", 0)
		}
	}

	bad := runSweep(ctx, seeds, pols, *mode, *tamper, site, *minimize, *outDir, *parallel, *verbose, so, store, done)
	if so != nil {
		if so.Meter != nil {
			so.Meter.Finish()
		}
		if so.Ledger != nil {
			if err := so.Ledger.Close(); err != nil {
				fatalf("telemetry: %v", err)
			}
		}
		if snap := so.Metrics(); snap != nil {
			fmt.Println()
			report.WriteMetrics(os.Stdout, snap)
			if *outDir != "" {
				if err := writeMetricsJSON(*outDir, snap); err != nil {
					fatalf("%v", err)
				}
			}
		}
	}
	if *monotone {
		bad = runMonotone(seeds, pols, *verbose) || bad
	}

	// main exits through os.Exit, so the profiles must be flushed here
	// rather than in deferred calls.
	stopProf()
	if err := prof.WriteHeap(*memprof); err != nil {
		fatalf("%v", err)
	}
	if bad {
		os.Exit(1)
	}
}

// writeMetricsJSON records the merged campaign snapshot next to the .repro
// findings, so a fuzz campaign's observability outlives the terminal.
func writeMetricsJSON(outDir string, snap *obs.Snapshot) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "metrics.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("authfuzz: wrote %s\n", path)
	return nil
}

func runSweep(ctx context.Context, seeds []int64, pols []policy.ControlPoint, mode string, tamper bool, site diffcheck.TamperSite, minimize bool, outDir string, parallel int, verbose bool, so *diffcheck.SweepObs, store *campaign.Store, done map[campaign.CellID]string) bool {
	var cells []diffcheck.Cell
	switch mode {
	case "pair":
		cells = diffcheck.PairCells(seeds, pols, false)
		if tamper {
			cells = append(cells, diffcheck.WithSite(diffcheck.PairCells(seeds, pols, true), site)...)
		}
	case "cross":
		cells = diffcheck.CrossCells(seeds, pols, false)
		if tamper {
			cells = append(cells, diffcheck.WithSite(diffcheck.CrossCells(seeds, pols, true), site)...)
		}
	default:
		fatalf("mode %q: want pair or cross", mode)
	}
	total := len(cells)

	// Resume: cells the prior ledger records as done are not swept again (the
	// union of both ledgers then covers every cell exactly once). Prior
	// finding cells are re-checked outside the ledger to regenerate the
	// finding's program text — free when the cache holds the result.
	opt := diffcheck.Options{Cache: store}
	var redo []diffcheck.Cell
	if done != nil {
		pending := make([]diffcheck.Cell, 0, len(cells))
		for _, c := range cells {
			v, ok := done[campaign.CellID{
				Kind: "fuzz", Policy: c.Policy.String(), Seed: c.Seed,
				Tamper: c.Tamper, Site: string(c.EffectiveSite()),
			}]
			if !ok {
				pending = append(pending, c)
				continue
			}
			if diffcheck.IsFinding(diffcheck.Verdict(v)) {
				redo = append(redo, c)
			}
		}
		fmt.Printf("authfuzz: resume: %d/%d cells already done (%d prior findings)\n",
			total-len(pending), total, len(redo))
		cells = pending
	}

	start := time.Now()
	results, findings, err := diffcheck.SweepObserved(ctx, cells, opt, parallel, so)
	elapsed := time.Since(start).Round(time.Millisecond)

	// Regenerate prior findings so a resumed campaign reports the same
	// finding set as an uninterrupted one.
	for _, c := range redo {
		o := opt
		o.Policy = c.Policy
		o.Tamper = c.Tamper
		o.TamperSite = c.Site
		res, src := diffcheck.CheckSeed(c.Seed, o)
		if diffcheck.IsFinding(res.Verdict) {
			findings = append(findings, diffcheck.Finding{Result: res, Source: src})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Result, findings[j].Result
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Policy.String() < b.Policy.String()
	})

	counts := map[diffcheck.Verdict]int{}
	skipped, cached := 0, 0
	for _, r := range results {
		if r.Verdict == "" {
			skipped++
			continue
		}
		counts[r.Verdict]++
		if r.Cached {
			cached++
		}
		if verbose {
			fmt.Printf("seed %-6d %-45v tamper=%-5v %s\n", r.Seed, r.Policy, r.Tamper, r.Verdict)
		}
	}
	fmt.Printf("authfuzz: %d cells (%d seeds x %d policies, mode %s, tamper %v) in %v\n",
		total, len(seeds), len(pols), mode, tamper, elapsed)
	fmt.Printf("authfuzz: verdicts:")
	for _, v := range []diffcheck.Verdict{diffcheck.VerdictOK, diffcheck.VerdictContained,
		diffcheck.VerdictDetected, diffcheck.VerdictUndetected, diffcheck.VerdictDivergence, diffcheck.VerdictError} {
		if counts[v] > 0 {
			fmt.Printf(" %s=%d", v, counts[v])
		}
	}
	if cached > 0 {
		fmt.Printf(" cached=%d", cached)
	}
	if skipped > 0 {
		fmt.Printf(" skipped=%d (budget)", skipped)
	}
	fmt.Println()
	if store != nil {
		fmt.Printf("authfuzz: cache: %d hits, %d misses, %d stored (%s)\n",
			store.Hits(), store.Misses(), store.Puts(), store.Dir())
		if cerr := store.Err(); cerr != nil {
			fmt.Fprintf(os.Stderr, "authfuzz: cache: %v\n", cerr)
		}
	}
	if err != nil && err != context.DeadlineExceeded {
		fmt.Fprintf(os.Stderr, "authfuzz: sweep: %v\n", err)
	}

	for _, f := range findings {
		reportFinding(f, minimize, outDir)
	}
	return len(findings) > 0
}

// reportFinding prints one divergence, optionally shrinks it, and records a
// replayable .repro under outDir.
func reportFinding(f diffcheck.Finding, minimize bool, outDir string) {
	res := f.Result
	tag := fmt.Sprint(res.Tamper)
	if res.Tamper && res.Site != "" {
		tag = string(res.Site)
	}
	fmt.Printf("authfuzz: FINDING seed %d under %v tamper=%s: %s: %s\n",
		res.Seed, res.Policy, tag, res.Verdict, res.Divergence)

	src := f.Source
	if minimize && res.Verdict == diffcheck.VerdictDivergence {
		opt := diffcheck.Options{Policy: res.Policy, Tamper: res.Tamper, TamperSite: res.Site, WatchdogCycles: 500_000}
		src = diffcheck.Minimize(src, func(s string) bool {
			return diffcheck.Check(s, opt).Verdict == diffcheck.VerdictDivergence
		})
	}
	if outDir == "" {
		return
	}
	// Re-check with default options so the recording replays with defaults.
	final := diffcheck.Check(src, diffcheck.Options{Policy: res.Policy, Tamper: res.Tamper, TamperSite: res.Site})
	final.Seed = res.Seed
	r := diffcheck.NewRepro(final, src, "authfuzz finding: "+res.Divergence)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fatalf("%v", err)
	}
	name := fmt.Sprintf("seed%d-%s", res.Seed, res.Policy)
	if res.Tamper {
		name += "-tamper"
		if res.Site == diffcheck.SiteData {
			name += "-data"
		}
	}
	path := filepath.Join(outDir, name+".repro")
	if err := r.WriteFile(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("authfuzz: wrote %s\n", path)
}

func runMonotone(seeds []int64, pols []policy.ControlPoint, verbose bool) bool {
	bad := false
	for _, seed := range seeds {
		src := diffcheck.GenProgram(seed)
		results, viols := diffcheck.CheckMonotone(src, pols, diffcheck.Options{})
		for _, r := range results {
			if r.Verdict == diffcheck.VerdictDivergence || r.Verdict == diffcheck.VerdictError {
				bad = true
				fmt.Printf("authfuzz: FINDING seed %d under %v: %s: %s\n", seed, r.Policy, r.Verdict, r.Divergence)
			}
		}
		for _, v := range viols {
			bad = true
			fmt.Printf("authfuzz: MONOTONE seed %d: %s\n", seed, v)
		}
		if verbose {
			fmt.Printf("seed %-6d monotone over %d policies: %d violations\n", seed, len(pols), len(viols))
		}
	}
	return bad
}

// replayFiles replays each .repro byte-identically; any mismatch is a
// finding (the model drifted from the recording, or the recording is stale).
func replayFiles(files []string, verbose bool) int {
	if len(files) == 0 {
		fatalf("-repro needs at least one file")
	}
	code := 0
	for _, path := range files {
		r, err := diffcheck.LoadRepro(path)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := r.Replay()
		if err != nil {
			code = 1
			fmt.Printf("authfuzz: REPLAY MISMATCH %s: %v\n", path, err)
			continue
		}
		if verbose {
			fmt.Printf("%s: %s (%d cycles, %d insts) replayed byte-identically\n",
				path, res.Verdict, res.Cycles, res.Insts)
		} else {
			fmt.Printf("%s: ok\n", path)
		}
	}
	return code
}
