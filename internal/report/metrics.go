// Metrics rendering: the human-readable face of an obs.Snapshot — per-run
// counter/histogram dumps and the per-scheme stall/gap summary table the
// sweep tools print.

package report

import (
	"fmt"
	"io"
	"strings"

	"authpoint/internal/obs"
	"authpoint/internal/policy"
)

// WriteMetrics renders a metrics snapshot: histograms with distribution
// summaries first, then every counter, lexically ordered.
func WriteMetrics(w io.Writer, s *obs.Snapshot) {
	if s == nil {
		return
	}
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	if len(s.Histograms) > 0 {
		p("histograms:")
		p("  %-24s %10s %10s %8s %8s %8s", "name", "count", "mean", "p50", "p90", "max")
		for _, name := range s.SortedHistogramNames() {
			h := s.Histograms[name]
			p("  %-24s %10d %10.1f %8d %8d %8d",
				name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Max)
		}
	}
	if len(s.Counters) > 0 {
		p("counters:")
		for _, name := range s.SortedCounterNames() {
			p("  %-32s %12d", name, s.Counters[name])
		}
	}
}

// SchemeSummary is the per-control-point aggregate of every measured cell's
// metrics snapshot.
type SchemeSummary struct {
	Policy policy.ControlPoint
	Cells  int
	Snap   *obs.Snapshot
}

// Aggregator folds per-cell snapshots into per-control-point summaries,
// preserving first-seen policy order.
type Aggregator struct {
	order []policy.ControlPoint
	by    map[policy.ControlPoint]*SchemeSummary
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{by: map[policy.ControlPoint]*SchemeSummary{}}
}

// Add merges one cell's snapshot into its control point's summary (nil
// snapshots are counted but contribute nothing).
func (a *Aggregator) Add(pt policy.ControlPoint, snap *obs.Snapshot) error {
	s, ok := a.by[pt]
	if !ok {
		s = &SchemeSummary{Policy: pt, Snap: &obs.Snapshot{}}
		a.by[pt] = s
		a.order = append(a.order, pt)
	}
	s.Cells++
	return s.Snap.Merge(snap)
}

// Summaries returns the per-control-point summaries in first-seen order.
func (a *Aggregator) Summaries() []SchemeSummary {
	out := make([]SchemeSummary, 0, len(a.order))
	for _, sc := range a.order {
		out = append(out, *a.by[sc])
	}
	return out
}

// WriteSchemeSummaries renders the per-scheme stall/gap summary table: the
// auth-latency and decrypt→auth gap distributions plus the per-control-point
// stall-cycle breakdown, one row per scheme.
func WriteSchemeSummaries(w io.Writer, sums []SchemeSummary) {
	if len(sums) == 0 {
		return
	}
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	p("per-policy observability summary:")
	p("  %-30s %5s | %21s | %21s | %30s", "", "", "auth latency (cyc)", "decrypt→auth gap", "stall cycles")
	p("  %-30s %5s | %6s %6s %7s | %6s %6s %7s | %9s %9s %9s",
		"policy", "cells", "mean", "p90", "max", "mean", "p90", "max",
		"commit", "issue", "sb-full")
	p("  %s", strings.Repeat("-", 122))
	for _, s := range sums {
		lat := s.Snap.Histograms[obs.MetricAuthLatency]
		gap := s.Snap.Histograms[obs.MetricAuthGap]
		p("  %-30s %5d | %6.1f %6d %7d | %6.1f %6d %7d | %9d %9d %9d",
			s.Policy, s.Cells,
			lat.Mean(), lat.Quantile(0.9), lat.Max,
			gap.Mean(), gap.Quantile(0.9), gap.Max,
			s.Snap.Counters["stall.commit-auth.cycles"],
			s.Snap.Counters["stall.issue-auth.cycles"],
			s.Snap.Counters["stall.sb-full.cycles"])
	}
}
