// Package report renders a full post-run machine report: pipeline,
// caches, TLBs, DRAM, bus, and secure-memory statistics with derived rates.
// It is the human-readable face of a simulation result, shared by authsim
// and the examples.
package report

import (
	"fmt"
	"io"

	"authpoint/internal/cache"
	"authpoint/internal/sim"
)

// Write renders the report for a finished machine run.
func Write(w io.Writer, m *sim.Machine, res sim.Result) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	rate := func(n, d uint64) float64 {
		if d == 0 {
			return 0
		}
		return float64(n) / float64(d)
	}

	p("run: %v after %d cycles, %d instructions (IPC %.4f)", res.Reason, res.Cycles, res.Insts, res.IPC)
	if res.SecurityFault != nil {
		p("  security exception: request #%d, line %#x, flagged at cycle %d",
			res.SecurityFault.Idx, res.SecurityFault.Addr, res.SecurityFault.Cycle)
	}
	if res.ArchFault != 0 {
		p("  architectural fault: %v at %#x", res.ArchFault, res.ArchFaultAddr)
	}

	c := res.Core
	p("pipeline:")
	p("  fetched %d  dispatched %d  issued %d  committed %d", c.Fetched, c.Dispatched, c.Issued, c.Committed)
	p("  mispredicts %d (cond accuracy %.3f)  squashed %d  store-forwards %d",
		c.Mispredicts, m.Core.Predictor().CondAccuracy(), c.Squashed, c.Forwards)
	p("  stalls: commit-on-auth %d  issue-on-auth %d  store-buffer-full %d",
		c.CommitAuthStall, c.IssueAuthStall, c.SBFullStall)

	l1i, l1d, l2 := m.MS.Caches()
	for _, e := range []struct {
		name string
		s    cache.Stats
	}{
		{"L1I", l1i.Stats()},
		{"L1D", l1d.Stats()},
		{"L2 ", l2.Stats()},
	} {
		p("cache %s: accesses %d  miss-rate %.4f  evictions %d  writebacks %d",
			e.name, e.s.Hits+e.s.Misses, rate(e.s.Misses, e.s.Hits+e.s.Misses), e.s.Evictions, e.s.Writebacks)
	}

	itlb, dtlb := m.MS.TLBs()
	ih, im := itlb.Stats()
	dh, dm := dtlb.Stats()
	p("tlb: I %.5f miss  D %.5f miss", rate(im, ih+im), rate(dm, dh+dm))

	d := m.DRAM.Stats()
	p("dram: row-hits %d  row-empty %d  row-conflicts %d  bank-queueing %d cycles",
		d.Hits, d.Empties, d.Conflicts, d.BusyCycles)
	p("bus: busy %d cycles (%.1f%% of run)", m.Bus.BusyCycles(),
		100*rate(m.Bus.BusyCycles(), res.Cycles))

	s := res.Sec
	p("secure memory:")
	p("  fetches %d  writebacks %d  auth-requests %d  auth-failures %d",
		s.Fetches, s.Writebacks, s.AuthRequests, s.AuthFailures)
	if m.MS.Prefetches > 0 {
		p("  next-line prefetches: %d", m.MS.Prefetches)
	}
	if m.MS.FetchGateWait > 0 {
		p("  then-fetch bus-grant wait: %d cycles total", m.MS.FetchGateWait)
	}
	p("  counter cache: %.4f miss  (prediction %v)",
		rate(s.CtrMisses, s.CtrHits+s.CtrMisses), m.Ctrl.Config().CtrPredict)
	if s.AuthRequests > 0 {
		p("  mean decrypt->verify gap: %.1f cycles", rate(s.AuthWaitCycles, s.AuthRequests))
	}
	if s.Fetches > 0 {
		// Per-fetch rather than per-request: the realized gap cost spread
		// over every external fetch, including unauthenticated ones.
		p("  realized gap per fetch: %.1f cycles", rate(s.AuthWaitCycles, s.Fetches))
	}
	if m.Ctrl.Config().UseTree {
		p("  tree: node fetches %d  node-cache hits %d", s.TreeNodeFetch, s.TreeCacheHits)
	}
	if m.Ctrl.Config().Remap {
		p("  remap cache: %.4f miss", rate(s.RemapMisses, s.RemapHits+s.RemapMisses))
	}
}
