package report

import (
	"bytes"
	"strings"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/sim"
)

func runReport(t *testing.T, mutate func(*sim.Config)) string {
	t.Helper()
	p := asm.MustAssemble(`
		_start:
			la  r1, buf
			li  r2, 512
		loop:
			ld  r3, 0(r1)
			add r4, r4, r3
			addi r1, r1, 64
			addi r2, r2, -1
			bne r2, r0, loop
			halt
		.data
		buf: .space 32768
	`)
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeThenCommit
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := sim.NewMachine(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Write(&buf, m, res)
	return buf.String()
}

func TestReportSections(t *testing.T) {
	out := runReport(t, nil)
	for _, want := range []string{
		"run: halt", "pipeline:", "cache L1I", "cache L1D", "cache L2",
		"tlb:", "dram:", "bus:", "secure memory:", "auth-requests",
		"decrypt->verify gap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "tree:") || strings.Contains(out, "remap cache:") {
		t.Error("tree/remap sections should be absent in the default config")
	}
}

func TestReportOptionalSections(t *testing.T) {
	out := runReport(t, func(c *sim.Config) {
		c.Sec.UseTree = true
	})
	if !strings.Contains(out, "tree: node fetches") {
		t.Errorf("tree section missing:\n%s", out)
	}
	out = runReport(t, func(c *sim.Config) {
		c.Scheme = sim.SchemeCommitPlusObfuscation
	})
	if !strings.Contains(out, "remap cache:") {
		t.Errorf("remap section missing:\n%s", out)
	}
}

func TestReportSecurityFault(t *testing.T) {
	p := asm.MustAssemble("_start:\n la r1, x\n ld r2, 0(r1)\n halt\n.data\nx: .word 1")
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeThenCommit
	m, err := sim.NewMachine(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	m.Memory.XorRange(m.Prog.Symbols["x"], []byte{1})
	res, _ := m.Run()
	var buf bytes.Buffer
	Write(&buf, m, res)
	if !strings.Contains(buf.String(), "security exception") {
		t.Errorf("missing security exception line:\n%s", buf.String())
	}
}
