// Package interp is a functional instruction-set simulator for the
// authpoint ISA: no pipeline, no caches, no crypto — just architectural
// semantics, executed in program order.
//
// It serves two purposes:
//
//   - an *oracle* for the out-of-order core: differential tests run random
//     programs on both and require identical architectural outcomes
//     (registers, memory, I/O log, fault behaviour);
//   - a fast functional mode for workload development (millions of
//     instructions per second, versus the timing simulator's hundreds of
//     thousands of cycles).
package interp

import (
	"fmt"

	"authpoint/internal/asm"
	"authpoint/internal/cryptoengine/pacmac"
	"authpoint/internal/isa"
	"authpoint/internal/mem"
)

// StopReason says why execution ended.
type StopReason int

// Stop reasons.
const (
	StopHalt StopReason = iota
	StopMaxInsts
	StopFault
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopMaxInsts:
		return "max-insts"
	case StopFault:
		return "fault"
	}
	return "?"
}

// OutEvent is one OUT instruction's effect.
type OutEvent struct {
	Port uint32
	Val  uint64
}

// Machine is the functional machine state.
type Machine struct {
	PC    uint64
	Regs  [isa.NumIntRegs]uint64
	FRegs [isa.NumFPRegs]uint64 // float64 bit patterns

	Mem   *mem.Memory
	Space *mem.AddressSpace

	Outs  []OutEvent
	Insts uint64

	// PACMode selects the auth-failure behaviour of the pointer-
	// authentication instructions; the zero value (off) matches the
	// unprotected machine. Sign/strip are mode-independent.
	PACMode pacmac.Mode

	pacs      pacmac.Suite
	halted    bool
	faultKind string
	faultAddr uint64
}

// New builds a functional machine from an assembled program, mapping text,
// data, and a stack exactly like the timing simulator's loader.
func New(p *asm.Program) *Machine {
	m := &Machine{Mem: mem.New(), Space: mem.NewAddressSpace(), PC: p.Entry, pacs: pacmac.DefaultSuite()}
	text := p.TextBytes()
	m.Mem.Write(p.TextBase, text)
	m.Mem.Write(p.DataBase, p.Data)
	m.Space.MapRange(p.TextBase, uint64(len(text))+64)
	m.Space.MapRange(p.DataBase, uint64(len(p.Data))+64)
	const stackBase, stackSize = 0x700000, 64 << 10
	m.Space.MapRange(stackBase, stackSize)
	m.Regs[isa.RegSP] = stackBase + stackSize - 64
	return m
}

// MapExtra marks an additional range valid (mirrors sim.Region).
func (m *Machine) MapExtra(start, size uint64) { m.Space.MapRange(start, size) }

// Halted reports whether HALT executed.
func (m *Machine) Halted() bool { return m.halted }

// Fault returns the fault description, if any.
func (m *Machine) Fault() (kind string, addr uint64, ok bool) {
	return m.faultKind, m.faultAddr, m.faultKind != ""
}

// Run executes up to maxInsts instructions (0 = unbounded) and reports why
// it stopped.
func (m *Machine) Run(maxInsts uint64) StopReason {
	for {
		if m.halted {
			return StopHalt
		}
		if m.faultKind != "" {
			return StopFault
		}
		if maxInsts > 0 && m.Insts >= maxInsts {
			return StopMaxInsts
		}
		m.Step()
	}
}

func (m *Machine) setFault(kind string, addr uint64) {
	m.faultKind = kind
	m.faultAddr = addr
}

// Step executes one instruction.
func (m *Machine) Step() {
	if m.halted || m.faultKind != "" {
		return
	}
	if !m.Space.Valid(m.PC) {
		m.setFault("ifetch", m.PC)
		return
	}
	word := uint32(m.Mem.ReadUint(m.PC, 4))
	inst := isa.Decode(word)
	if !inst.Op.Valid() {
		m.setFault("illegal", m.PC)
		return
	}
	m.Insts++
	npc := m.PC + isa.InstBytes

	writeInt := func(r uint8, v uint64) {
		if r != isa.RegZero {
			m.Regs[r] = v
		}
	}

	switch inst.Op.Class() {
	case isa.ClassNop:
	case isa.ClassHalt:
		m.halted = true
	case isa.ClassALU:
		b := m.Regs[inst.Rs2]
		if inst.Op.HasImm() {
			b = isa.ImmOperand(inst.Imm)
		}
		writeInt(inst.Rd, isa.EvalALU(inst.Op, m.Regs[inst.Rs1], b))
	case isa.ClassMul:
		writeInt(inst.Rd, isa.EvalALU(inst.Op, m.Regs[inst.Rs1], m.Regs[inst.Rs2]))
	case isa.ClassLoad:
		addr := m.Regs[inst.Rs1] + uint64(int64(inst.Imm))
		raw, ok := m.load(addr, inst.MemBytes())
		if !ok {
			return
		}
		if inst.Op != isa.OpPREF {
			writeInt(inst.Rd, isa.SignExtendLoad(inst.Op, raw))
		}
	case isa.ClassFPLoad:
		addr := m.Regs[inst.Rs1] + uint64(int64(inst.Imm))
		raw, ok := m.load(addr, 8)
		if !ok {
			return
		}
		m.FRegs[inst.Rd] = raw
	case isa.ClassStore:
		addr := m.Regs[inst.Rs1] + uint64(int64(inst.Imm))
		if !m.store(addr, m.Regs[inst.Rs2], inst.MemBytes()) {
			return
		}
	case isa.ClassFPStore:
		addr := m.Regs[inst.Rs1] + uint64(int64(inst.Imm))
		if !m.store(addr, m.FRegs[inst.Rs2], 8) {
			return
		}
	case isa.ClassBranch:
		var taken bool
		if inst.Op == isa.OpFBLT || inst.Op == isa.OpFBGE {
			taken = isa.EvalFPBranch(inst.Op, f64(m.FRegs[inst.Rs1]), f64(m.FRegs[inst.Rs2]))
		} else {
			taken = isa.EvalBranch(inst.Op, m.Regs[inst.Rs1], m.Regs[inst.Rs2])
		}
		if taken {
			npc = isa.BranchTarget(m.PC, inst.Imm)
		}
	case isa.ClassJump:
		link := m.PC + isa.InstBytes
		if inst.Op == isa.OpJAL {
			npc = isa.BranchTarget(m.PC, inst.Imm)
		} else {
			npc = (m.Regs[inst.Rs1] + uint64(int64(inst.Imm))) &^ 3
		}
		writeInt(inst.Rd, link)
	case isa.ClassFPU:
		switch inst.Op {
		case isa.OpFCVTIF:
			m.FRegs[inst.Rd] = bits(isa.CvtIntToFP(m.Regs[inst.Rs1]))
		case isa.OpFCVTFI:
			writeInt(inst.Rd, isa.CvtFPToInt(f64(m.FRegs[inst.Rs1])))
		default:
			m.FRegs[inst.Rd] = bits(isa.EvalFPU(inst.Op, f64(m.FRegs[inst.Rs1]), f64(m.FRegs[inst.Rs2])))
		}
	case isa.ClassOut:
		m.Outs = append(m.Outs, OutEvent{Port: uint32(inst.Imm), Val: m.Regs[inst.Rs2]})
	case isa.ClassPAC:
		switch {
		case inst.Op == isa.OpSTRIP:
			writeInt(inst.Rd, pacmac.Strip(m.Regs[inst.Rs1]))
		case inst.Op.IsPACSign():
			writeInt(inst.Rd, m.pacs.Sign(m.Regs[inst.Rs1], m.Regs[inst.Rs2], inst.Op.PACUsesKeyB()))
		default: // auth
			v, ok := m.pacs.Auth(m.Regs[inst.Rs1], m.Regs[inst.Rs2], inst.Op.PACUsesKeyB(), m.PACMode)
			if !ok {
				m.setFault("pac-auth", m.PC)
				return
			}
			writeInt(inst.Rd, v)
		}
	default:
		m.setFault("illegal", m.PC)
		return
	}
	if m.halted || m.faultKind != "" {
		return
	}
	m.PC = npc
}

func (m *Machine) load(addr uint64, size int) (uint64, bool) {
	if addr%uint64(size) != 0 {
		m.setFault("misaligned", addr)
		return 0, false
	}
	if !m.Space.Valid(addr) {
		m.setFault("load", addr)
		m.Space.Fault(addr)
		return 0, false
	}
	return m.Mem.ReadUint(addr, size), true
}

func (m *Machine) store(addr uint64, v uint64, size int) bool {
	if addr%uint64(size) != 0 {
		m.setFault("misaligned", addr)
		return false
	}
	if !m.Space.Valid(addr) {
		m.setFault("store", addr)
		m.Space.Fault(addr)
		return false
	}
	m.Mem.WriteUint(addr, v, size)
	return true
}

// String summarizes machine state (debugging aid).
func (m *Machine) String() string {
	return fmt.Sprintf("interp{pc=%#x insts=%d halted=%v fault=%q}", m.PC, m.Insts, m.halted, m.faultKind)
}
