package interp

import (
	"crypto/sha256"
	"encoding/binary"
)

// MemRange is one address window included in an architectural-state digest.
type MemRange struct {
	Start uint64
	Len   uint64
}

// MemReader is the read access a digest needs; *mem.Memory satisfies it.
type MemReader interface {
	Read(addr uint64, n int) []byte
}

// digestVersion pins the digest encoding. Bump it if the layout below ever
// changes: recorded repro files compare digests byte-for-byte.
const digestVersion = "authfuzz/state/v1"

// DigestArchState hashes one architectural outcome — the integer and FP
// register files, the OUT log (port/value pairs, not cycles), and the given
// memory windows — into a stable 256-bit digest. The in-order oracle and the
// timed simulator hash with this same encoding, so equal digests mean equal
// architectural state; recorded digests in .repro files stay comparable
// across runs and machines.
func DigestArchState(regs, fregs []uint64, outs []OutEvent, mem MemReader, ranges []MemRange) [32]byte {
	h := sha256.New()
	var buf [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(digestVersion))
	wr(uint64(len(regs)))
	for _, v := range regs {
		wr(v)
	}
	wr(uint64(len(fregs)))
	for _, v := range fregs {
		wr(v)
	}
	wr(uint64(len(outs)))
	for _, o := range outs {
		wr(uint64(o.Port))
		wr(o.Val)
	}
	wr(uint64(len(ranges)))
	for _, r := range ranges {
		wr(r.Start)
		wr(r.Len)
		h.Write(mem.Read(r.Start, int(r.Len)))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// StateDigest returns the canonical digest of this machine's architectural
// state over the given memory windows (see DigestArchState).
func (m *Machine) StateDigest(ranges ...MemRange) [32]byte {
	return DigestArchState(m.Regs[:], m.FRegs[:], m.Outs, m.Mem, ranges)
}
