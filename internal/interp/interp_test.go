package interp

import (
	"testing"

	"authpoint/internal/asm"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if r := m.Run(1_000_000); r != StopHalt {
		t.Fatalf("stopped with %v (%v)", r, m)
	}
	return m
}

func TestArithmeticAndLoops(t *testing.T) {
	m := run(t, `
		_start:
			addi r1, r0, 0
			addi r2, r0, 100
		loop:
			add  r1, r1, r2
			addi r2, r2, -1
			bne  r2, r0, loop
			halt
	`)
	if m.Regs[1] != 5050 {
		t.Errorf("sum %d", m.Regs[1])
	}
	if m.Insts == 0 {
		t.Error("no instructions counted")
	}
}

func TestMemoryAndCalls(t *testing.T) {
	m := run(t, `
		_start:
			la   r1, buf
			addi r2, r0, 77
			sd   r2, 8(r1)
			call f
			halt
		f:
			ld   r3, 8(r1)
			addi r3, r3, 1
			ret
		.data
		buf: .space 64
	`)
	if m.Regs[3] != 78 {
		t.Errorf("r3 = %d", m.Regs[3])
	}
}

func TestFPAndOut(t *testing.T) {
	m := run(t, `
		_start:
			la    r1, v
			fld   f1, 0(r1)
			fld   f2, 8(r1)
			fmul  f3, f1, f2
			fcvtfi r2, f3
			out   r2, 5
			halt
		.data
		v: .float 2.5, 4.0
	`)
	if len(m.Outs) != 1 || m.Outs[0].Val != 10 || m.Outs[0].Port != 5 {
		t.Errorf("outs %+v", m.Outs)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		src  string
		kind string
	}{
		{"_start:\n li r1, 0x30000000\n ld r2, 0(r1)\n halt", "load"},
		{"_start:\n li r1, 0x30000000\n sd r2, 0(r1)\n halt", "store"},
		{"_start:\n la r1, buf\n ld r2, 1(r1)\n halt\n.data\nbuf: .space 16", "misaligned"},
		{"_start:\n li r1, 0x30000000\n jalr r0, r1, 0\n halt", "ifetch"},
	}
	for _, c := range cases {
		p, err := asm.Assemble(c.src)
		if err != nil {
			t.Fatal(err)
		}
		m := New(p)
		if r := m.Run(1000); r != StopFault {
			t.Errorf("%q: stopped with %v", c.kind, r)
			continue
		}
		kind, _, ok := m.Fault()
		if !ok || kind != c.kind {
			t.Errorf("fault kind %q want %q", kind, c.kind)
		}
	}
}

func TestIllegalInstruction(t *testing.T) {
	p := asm.MustAssemble("_start: halt")
	p.Text[0] = 0xfe // invalid opcode
	m := New(p)
	m.Mem.WriteUint(p.TextBase, uint64(p.Text[0]), 4)
	if r := m.Run(10); r != StopFault {
		t.Fatalf("stopped with %v", r)
	}
	if kind, _, _ := m.Fault(); kind != "illegal" {
		t.Errorf("kind %q", kind)
	}
}

func TestMaxInsts(t *testing.T) {
	p := asm.MustAssemble("_start: b _start")
	m := New(p)
	if r := m.Run(500); r != StopMaxInsts {
		t.Fatalf("stopped with %v", r)
	}
	if m.Insts != 500 {
		t.Errorf("insts %d", m.Insts)
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	m := run(t, `
		_start:
			addi r0, r0, 99
			add  r1, r0, r0
			halt
	`)
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Errorf("r0=%d r1=%d", m.Regs[0], m.Regs[1])
	}
}

func TestFaultLogRecordsAddress(t *testing.T) {
	p := asm.MustAssemble("_start:\n li r1, 0x30000440\n ld r2, 0(r1)\n halt")
	m := New(p)
	m.Run(100)
	log := m.Space.FaultLog()
	if len(log) != 1 || log[0] != 0x30000440 {
		t.Errorf("fault log %#x", log)
	}
}

func TestMapExtra(t *testing.T) {
	p := asm.MustAssemble("_start:\n li r1, 0x20000000\n ld r2, 0(r1)\n halt")
	m := New(p)
	m.MapExtra(0x20000000, 4096)
	if r := m.Run(100); r != StopHalt {
		t.Fatalf("stopped with %v (%v)", r, m)
	}
}

// Throughput sanity: the functional interpreter should be at least an order
// of magnitude faster than the timing simulator.
func BenchmarkInterp(b *testing.B) {
	p := asm.MustAssemble(`
		_start:
			addi r1, r0, 0
			li   r2, 1000000000
		loop:
			addi r1, r1, 1
			bne  r1, r2, loop
			halt
	`)
	m := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}
