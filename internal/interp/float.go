package interp

import "math"

func f64(b uint64) float64  { return math.Float64frombits(b) }
func bits(f float64) uint64 { return math.Float64bits(f) }
