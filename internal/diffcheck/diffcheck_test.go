package diffcheck

import (
	"context"
	"strings"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

func TestGenDeterministic(t *testing.T) {
	if GenProgram(7) != GenProgram(7) {
		t.Fatal("same seed produced different programs")
	}
	if GenProgram(7) == GenProgram(8) {
		t.Fatal("different seeds produced the same program")
	}
	if _, err := asm.Assemble(GenProgram(7)); err != nil {
		t.Fatalf("generated program does not assemble: %v", err)
	}
}

// TestEquivalenceAcrossLattice pair-sweeps seeds over the 15-point lattice:
// every policy is exercised, every seed checked once.
func TestEquivalenceAcrossLattice(t *testing.T) {
	pols := policy.Lattice()
	seeds := make([]int64, len(pols))
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	results, findings, err := Sweep(context.Background(), PairCells(seeds, pols, false), Options{}, 0)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, f := range findings {
		t.Errorf("seed %d under %v: %s: %s", f.Result.Seed, f.Result.Policy, f.Result.Verdict, f.Result.Divergence)
	}
	for _, r := range results {
		if r.Verdict != VerdictOK {
			t.Errorf("seed %d under %v: verdict %s, want ok", r.Seed, r.Policy, r.Verdict)
		}
		if r.OracleDigest != r.SimDigest {
			t.Errorf("seed %d under %v: verdict ok but digests differ", r.Seed, r.Policy)
		}
	}
}

func TestTamperVerdicts(t *testing.T) {
	cases := []struct {
		pol  policy.ControlPoint
		want []Verdict // acceptable verdicts
	}{
		{policy.Baseline, []Verdict{VerdictUndetected}},
		{policy.ThenIssue, []Verdict{VerdictContained}},
		{policy.ThenCommit, []Verdict{VerdictContained}},
		{policy.Compose(policy.ThenIssue, policy.ThenCommit), []Verdict{VerdictContained}},
		// Weak points guarantee detection, not containment.
		{policy.ThenFetch, []Verdict{VerdictDetected, VerdictContained}},
		{policy.ThenWrite, []Verdict{VerdictDetected, VerdictContained}},
	}
	for _, c := range cases {
		res, _ := CheckSeed(3, Options{Policy: c.pol, Tamper: true})
		ok := false
		for _, w := range c.want {
			ok = ok || res.Verdict == w
		}
		if !ok {
			t.Errorf("tamper under %v: verdict %s (%s), want one of %v", c.pol, res.Verdict, res.Divergence, c.want)
		}
		if res.Verdict == VerdictContained && res.Insts != 0 {
			t.Errorf("tamper under %v: contained but %d insts committed", c.pol, res.Insts)
		}
	}
}

func TestMonotoneComparable(t *testing.T) {
	issueFetch := policy.Compose(policy.ThenIssue, policy.ThenFetch)
	cases := []struct {
		less, more policy.ControlPoint
		want       bool
	}{
		{policy.Baseline, policy.ThenIssue, true},
		{policy.Baseline, policy.ThenFetch, true},
		{policy.ThenIssue, issueFetch, true},
		{policy.ThenFetch, issueFetch, true},
		// Drain gates reorder store/commit traffic: not cycle-comparable.
		{policy.Baseline, policy.ThenWrite, false},
		{policy.Baseline, policy.ThenCommit, false},
		{policy.ThenWrite, policy.Compose(policy.ThenWrite, policy.ThenIssue), true},
		// Not a subset at all.
		{policy.ThenIssue, policy.ThenFetch, false},
	}
	for _, c := range cases {
		if got := MonotoneComparable(c.less, c.more); got != c.want {
			t.Errorf("MonotoneComparable(%v, %v) = %v, want %v", c.less, c.more, got, c.want)
		}
	}
}

func TestMonotoneHolds(t *testing.T) {
	for _, seed := range []int64{14, 38, 56} { // seeds that break the naive full-pairwise check
		results, viols := CheckMonotone(GenProgram(seed), policy.FullLattice(), Options{})
		for _, v := range viols {
			t.Errorf("seed %d: %s", seed, v)
		}
		for _, r := range results {
			if r.Verdict != VerdictOK {
				t.Errorf("seed %d under %v: verdict %s: %s", seed, r.Policy, r.Verdict, r.Divergence)
			}
		}
	}
}

// TestMinimizeShrinksFault injects an architectural fault into a generated
// program and shrinks it: the minimizer must keep the fault reproducing
// while stripping the generated bulk down to a handful of instructions.
func TestMinimizeShrinksFault(t *testing.T) {
	src := GenProgram(5)
	// A misaligned load: both machines fault on it, deterministically.
	src = strings.Replace(src, "\thalt", "\tlw r1, 3(r0)\n\thalt", 1)

	keep := func(s string) bool {
		r := Check(s, Options{WatchdogCycles: 50_000})
		return r.Verdict == VerdictOK && r.Reason == sim.StopArchFault.String()
	}
	if !keep(src) {
		t.Fatal("injected fault does not reproduce before minimization")
	}
	min := Minimize(src, keep)
	if !keep(min) {
		t.Fatal("minimized program no longer reproduces the fault")
	}
	before, after := countInsts(t, src), countInsts(t, min)
	if after > 2 { // the faulting lw and the protected halt
		t.Errorf("minimized program still has %d instructions:\n%s", after, min)
	}
	if after >= before {
		t.Errorf("minimizer removed nothing (%d -> %d instructions)", before, after)
	}
}

func countInsts(t *testing.T, src string) int {
	t.Helper()
	n := 0
	for _, ln := range strings.Split(src, "\n") {
		if asm.ClassifyLine(ln) == asm.LineInst {
			n++
		}
	}
	return n
}

func TestReproRoundTrip(t *testing.T) {
	res, src := CheckSeed(11, Options{Policy: policy.ThenCommit})
	if res.Verdict != VerdictOK {
		t.Fatalf("seed 11 under then-commit: %s: %s", res.Verdict, res.Divergence)
	}
	r := NewRepro(res, src, "round-trip test")

	dec, err := DecodeRepro(r.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if *dec != *r {
		t.Fatal("decode(encode) is not the identity")
	}

	path := t.TempDir() + "/t.repro"
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := LoadRepro(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := loaded.Replay(); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestReproReplayCatchesDrift(t *testing.T) {
	res, src := CheckSeed(11, Options{Policy: policy.ThenFetch})
	r := NewRepro(res, src, "")
	r.Cycles++ // simulate a recording that no longer matches the model
	if _, err := r.Replay(); err == nil {
		t.Fatal("replay accepted a repro with a wrong cycle count")
	} else if !strings.Contains(err.Error(), "cycles") {
		t.Fatalf("replay error does not name the drifted field: %v", err)
	}
}

func TestDecodeReproRejects(t *testing.T) {
	if _, err := DecodeRepro([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := DecodeRepro([]byte(`{"schema":"other/v9","source":"halt"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := DecodeRepro([]byte(`{"schema":"` + ReproSchema + `"}`)); err == nil {
		t.Error("empty source accepted")
	}
}

func TestSweepBudgetExpiry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // budget already spent: every cell must be skipped, not run
	cells := PairCells([]int64{1, 2, 3}, policy.Lattice(), false)
	results, findings, err := Sweep(ctx, cells, Options{}, 2)
	if err == nil {
		t.Fatal("expired context did not surface")
	}
	if len(findings) != 0 {
		t.Fatalf("skipped cells produced %d findings", len(findings))
	}
	for i, r := range results {
		if r.Verdict != "" {
			t.Fatalf("cell %d ran despite expired budget: %v", i, r.Verdict)
		}
	}
}
