package diffcheck

import (
	"strings"

	"authpoint/internal/asm"
)

// Minimize shrinks src to a locally minimal program for which keep still
// reports true (keep is typically "Check still reports this divergence").
// Only instruction lines are removal candidates — labels stay so branch
// targets survive, directives stay so the data image survives, and HALT
// lines stay so shrink candidates keep terminating. Removal is
// delta-debugging style: exponentially shrinking chunks first, then a
// single-line pass to a fixpoint. The result is deterministic for a
// deterministic keep.
func Minimize(src string, keep func(string) bool) string {
	if !keep(src) {
		return src
	}
	lines := strings.Split(src, "\n")
	for chunk := len(lines) / 2; chunk >= 1; chunk /= 2 {
		for {
			next, shrunk := removePass(lines, chunk, keep)
			if !shrunk {
				break
			}
			lines = next
		}
	}
	return strings.Join(lines, "\n")
}

// removePass tries removing each aligned chunk of candidate lines once,
// left to right, keeping the first removal that still reproduces. It
// reports whether anything was removed.
func removePass(lines []string, chunk int, keep func(string) bool) ([]string, bool) {
	cand := candidates(lines)
	for start := 0; start < len(cand); start += chunk {
		end := start + chunk
		if end > len(cand) {
			end = len(cand)
		}
		drop := map[int]bool{}
		for _, li := range cand[start:end] {
			drop[li] = true
		}
		trial := make([]string, 0, len(lines)-len(drop))
		for i, ln := range lines {
			if !drop[i] {
				trial = append(trial, ln)
			}
		}
		if keep(strings.Join(trial, "\n")) {
			return trial, true
		}
	}
	return lines, false
}

// candidates returns the indexes of removable lines: instructions other
// than HALT.
func candidates(lines []string) []int {
	var out []int
	for i, ln := range lines {
		if asm.ClassifyLine(ln) != asm.LineInst {
			continue
		}
		f := strings.Fields(ln)
		if len(f) > 0 && strings.EqualFold(f[len(f)-1], "halt") {
			continue
		}
		out = append(out, i)
	}
	return out
}
