// Package diffcheck cross-validates the timed out-of-order simulator
// against the in-order functional oracle (internal/interp) on randomized
// programs, across the full authentication control-point lattice.
//
// The package grew out of the private generator in internal/sim's
// differential tests (which caught a real store-to-load forwarding bug
// during development, see DESIGN.md §3) and promotes it into the standing
// bug-finder of the repository:
//
//   - Gen emits seed-deterministic random programs over the whole ISA;
//   - Check runs one program on both machines and diffs architectural
//     state, final memory image, and fault/exception behaviour, under any
//     policy.ControlPoint;
//   - tamper mode flips a bit in the encrypted image and asserts the
//     containment invariants of gated policies;
//   - CheckMonotone asserts the metamorphic timing invariant: cycles are
//     monotone non-increasing as gates are removed;
//   - Minimize shrinks a failing program to a minimal repro;
//   - Repro records a deterministic replay file (seed, source, policy,
//     expected digests) that `authfuzz -repro` replays byte-identically.
package diffcheck

import (
	"fmt"
	"math/rand"
	"strings"

	"authpoint/internal/isa"
)

// ScratchBytes is the size of the generated programs' data scratch window.
// All generated loads and stores land inside it (offsets are masked), so
// diffing this window plus the register files covers every architectural
// effect a generated program can have.
const ScratchBytes = 2048

// Gen emits random-but-terminating programs that exercise the whole ISA:
// ALU chains, multiplies/divides, aligned loads/stores through a scratch
// window, sub-word memory round trips, bounded loops, forward branches, FP
// arithmetic, and OUT. Generation is seed-deterministic: the same seed
// yields the same source, byte for byte.
//
// Register conventions keep generation simple: r12 = scratch base,
// r13 = offset mask, r9 = loop counter; r1..r8, r10, r11 are fair game.
type Gen struct {
	rng    *rand.Rand
	b      strings.Builder
	labelN int
}

// NewGen builds a generator for one seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// GenProgram is the one-shot form: the program for one seed.
func GenProgram(seed int64) string { return NewGen(seed).Generate() }

// Mnemonic pools drawn from the ISA tables, so new ops join the generator
// the moment they are defined. Order is opcode order: deterministic.
var (
	aluRegOps = opNames(isa.ClassALU, false) // add, sub, and, or, xor, shifts, slt, sltu
	mulOps    = opNames(isa.ClassMul, false) // mul, div, rem
)

func opNames(c isa.Class, imm bool) []string {
	var out []string
	for _, op := range isa.OpsOfClass(c) {
		if op.HasImm() == imm {
			out = append(out, op.String())
		}
	}
	return out
}

func (g *Gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *Gen) reg() int { return []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 11}[g.rng.Intn(10)] }

func (g *Gen) freg() int { return g.rng.Intn(6) + 1 }

// randomOp emits one instruction (or a short fixed idiom).
func (g *Gen) randomOp() {
	switch g.rng.Intn(12) {
	case 0:
		g.emit("	addi r%d, r%d, %d", g.reg(), g.reg(), g.rng.Intn(2000)-1000)
	case 1, 2:
		g.emit("	%s r%d, r%d, r%d", aluRegOps[g.rng.Intn(len(aluRegOps))], g.reg(), g.reg(), g.reg())
	case 3:
		ops := []string{"slli", "srli", "srai"}
		g.emit("	%s r%d, r%d, %d", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.rng.Intn(63))
	case 4:
		g.emit("	%s r%d, r%d, r%d", mulOps[g.rng.Intn(len(mulOps))], g.reg(), g.reg(), g.reg())
	case 5: // aligned load through the scratch window
		a, d := g.reg(), g.reg()
		g.emit("	and  r%d, r%d, r13", a, g.reg())
		g.emit("	add  r%d, r%d, r12", a, a)
		g.emit("	ld   r%d, 0(r%d)", d, a)
	case 6: // aligned store
		a := g.reg()
		g.emit("	and  r%d, r%d, r13", a, g.reg())
		g.emit("	add  r%d, r%d, r12", a, a)
		g.emit("	sd   r%d, 0(r%d)", g.reg(), a)
	case 7: // sub-word memory round trip
		a := g.reg()
		d := g.reg()
		for d == a { // the loads must not clobber their own address register
			d = g.reg()
		}
		g.emit("	and  r%d, r%d, r13", a, g.reg())
		g.emit("	add  r%d, r%d, r12", a, a)
		g.emit("	sw   r%d, 0(r%d)", g.reg(), a)
		g.emit("	lw   r%d, 0(r%d)", d, a)
		g.emit("	lbu  r%d, 0(r%d)", d, a)
	case 8: // FP block (values flow int -> fp -> int, bit-exact both sides)
		f1, f2 := g.freg(), g.freg()
		g.emit("	fcvtif f%d, r%d", f1, g.reg())
		ops := []string{"fadd", "fsub", "fmul", "fdiv"}
		g.emit("	%s f%d, f%d, f%d", ops[g.rng.Intn(len(ops))], f2, f1, f2)
		g.emit("	fcvtfi r%d, f%d", g.reg(), f2)
	case 9:
		g.emit("	out r%d, %d", g.reg(), g.rng.Intn(256))
	case 10: // forward branch over a couple of ops
		l := g.label()
		ops := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
		g.emit("	%s r%d, r%d, %s", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), l)
		g.emit("	addi r%d, r%d, 1", g.reg(), g.reg())
		g.emit("	xor  r%d, r%d, r%d", g.reg(), g.reg(), g.reg())
		g.emit("%s:", l)
	case 11: // call/ret later; keep a LUI constant build here
		g.emit("	lui  r%d, %d", g.reg(), g.rng.Intn(1<<16))
	}
}

func (g *Gen) label() string {
	g.labelN++
	return fmt.Sprintf("l%d", g.labelN)
}

// Generate builds one full program. GenerateSecret (gen_secret.go) is the
// same body over a scratch window whose head is secret storage.
func (g *Gen) Generate() string { return g.generate(false) }
