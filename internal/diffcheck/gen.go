// Package diffcheck cross-validates the timed out-of-order simulator
// against the in-order functional oracle (internal/interp) on randomized
// programs, across the full authentication control-point lattice.
//
// The package grew out of the private generator in internal/sim's
// differential tests (which caught a real store-to-load forwarding bug
// during development, see DESIGN.md §3) and promotes it into the standing
// bug-finder of the repository:
//
//   - Gen emits seed-deterministic random programs over the whole ISA;
//   - Check runs one program on both machines and diffs architectural
//     state, final memory image, and fault/exception behaviour, under any
//     policy.ControlPoint;
//   - tamper mode flips a bit in the encrypted image and asserts the
//     containment invariants of gated policies;
//   - CheckMonotone asserts the metamorphic timing invariant: cycles are
//     monotone non-increasing as gates are removed;
//   - Minimize shrinks a failing program to a minimal repro;
//   - Repro records a deterministic replay file (seed, source, policy,
//     expected digests) that `authfuzz -repro` replays byte-identically.
package diffcheck

import (
	"fmt"
	"math/rand"
	"strings"

	"authpoint/internal/isa"
)

// ScratchBytes is the size of the generated programs' data scratch window.
// All generated loads and stores land inside it (offsets are masked), so
// diffing this window plus the register files covers every architectural
// effect a generated program can have.
const ScratchBytes = 2048

// Gen emits random-but-terminating programs that exercise the whole ISA:
// ALU chains, multiplies/divides, aligned loads/stores through a scratch
// window, sub-word memory round trips, bounded loops, forward branches, FP
// arithmetic, and OUT. Generation is seed-deterministic: the same seed
// yields the same source, byte for byte.
//
// Register conventions keep generation simple: r12 = scratch base,
// r13 = offset mask, r9 = loop counter; r1..r8, r10, r11 are fair game.
type Gen struct {
	rng    *rand.Rand
	b      strings.Builder
	labelN int
}

// NewGen builds a generator for one seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// GenProgram is the one-shot form: the program for one seed.
func GenProgram(seed int64) string { return NewGen(seed).Generate() }

// Mnemonic pools drawn from the ISA tables via OpsOfClass, so new ops join
// the generator the moment they are defined. Pool membership is decided by
// behavioral predicates (immediate form, FP operand classes, PAC role) —
// never by hand-maintained mnemonic lists — and TestEveryClassGeneratable
// pins that no opcode class can silently fall out of coverage. Order is
// opcode order: deterministic.
var (
	aluRegOps = opNames(isa.ClassALU, false) // add, sub, and, or, xor, shifts, slt, sltu
	aluImmOps = aluImmPool()                 // addi, logic-imm, shift-imm, slti (rd, rs1, imm shape)
	mulOps    = opNames(isa.ClassMul, false) // mul, div, rem

	intBranchOps, fpBranchOps = branchPools()

	fpArithOps = fpArithPool() // 3-operand FP arithmetic

	pacAuthOps = pacAuths() // auth ops; the matching sign op comes from isa.PACSignFor
)

func opNames(c isa.Class, imm bool) []string {
	var out []string
	for _, op := range isa.OpsOfClass(c) {
		if op.HasImm() == imm {
			out = append(out, op.String())
		}
	}
	return out
}

// aluImmPool collects the immediate-form ALU ops with the uniform
// "op rd, rs1, imm" assembly shape. The constant builders (lui/luih) take
// "rd, imm" and are exercised through their own idiom and the la/li
// pseudo-expansions instead.
func aluImmPool() []string {
	var out []string
	for _, op := range isa.OpsOfClass(isa.ClassALU) {
		if !op.HasImm() || op == isa.OpLUI || op == isa.OpLUIH {
			continue
		}
		out = append(out, op.String())
	}
	return out
}

// branchPools splits conditional branches by operand file, detected from the
// ops' architectural use sets.
func branchPools() (intOps, fpOps []string) {
	for _, op := range isa.OpsOfClass(isa.ClassBranch) {
		if (isa.Inst{Op: op, Rs1: 1, Rs2: 1}).Uses().HasFP(1) {
			fpOps = append(fpOps, op.String())
		} else {
			intOps = append(intOps, op.String())
		}
	}
	return
}

// fpArithPool collects the FPU ops that read two FP sources (fadd and
// friends); converts and fneg have their own operand shapes and idioms.
func fpArithPool() []string {
	var out []string
	for _, op := range isa.OpsOfClass(isa.ClassFPU) {
		u := (isa.Inst{Op: op, Rs1: 1, Rs2: 2}).Uses()
		if u == isa.FPReg(1).Union(isa.FPReg(2)) {
			out = append(out, op.String())
		}
	}
	return out
}

// pacAuths collects the auth-side PAC ops; each generated auth is paired
// with its same-key sign so the check always succeeds and the program stays
// digest-identical across every auth-failure mode.
func pacAuths() []isa.Op {
	var out []isa.Op
	for _, op := range isa.OpsOfClass(isa.ClassPAC) {
		if op.IsPACAuth() {
			out = append(out, op)
		}
	}
	return out
}

func (g *Gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *Gen) reg() int { return []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 11}[g.rng.Intn(10)] }

func (g *Gen) freg() int { return g.rng.Intn(6) + 1 }

// scratchPtr emits the two-instruction idiom that turns a register's current
// value into an aligned pointer inside the scratch window, returning the
// pointer register.
func (g *Gen) scratchPtr() int {
	a := g.reg()
	g.emit("	and  r%d, r%d, r13", a, g.reg())
	g.emit("	add  r%d, r%d, r12", a, a)
	return a
}

// randomOp emits one instruction (or a short fixed idiom).
func (g *Gen) randomOp() {
	switch g.rng.Intn(16) {
	case 0:
		g.emit("	addi r%d, r%d, %d", g.reg(), g.reg(), g.rng.Intn(2000)-1000)
	case 1, 2:
		g.emit("	%s r%d, r%d, r%d", aluRegOps[g.rng.Intn(len(aluRegOps))], g.reg(), g.reg(), g.reg())
	case 3:
		// Immediates in 0..62 are legal for every uniform imm op, shifts
		// included.
		g.emit("	%s r%d, r%d, %d", aluImmOps[g.rng.Intn(len(aluImmOps))], g.reg(), g.reg(), g.rng.Intn(63))
	case 4:
		g.emit("	%s r%d, r%d, r%d", mulOps[g.rng.Intn(len(mulOps))], g.reg(), g.reg(), g.reg())
	case 5: // aligned load through the scratch window
		a := g.scratchPtr()
		g.emit("	ld   r%d, 0(r%d)", g.reg(), a)
	case 6: // aligned store
		a := g.scratchPtr()
		g.emit("	sd   r%d, 0(r%d)", g.reg(), a)
	case 7: // sub-word memory round trip
		a := g.scratchPtr()
		d := g.reg()
		for d == a { // the loads must not clobber their own address register
			d = g.reg()
		}
		g.emit("	sw   r%d, 0(r%d)", g.reg(), a)
		g.emit("	lw   r%d, 0(r%d)", d, a)
		g.emit("	lbu  r%d, 0(r%d)", d, a)
	case 8: // FP block (values flow int -> fp -> int, bit-exact both sides)
		f1, f2 := g.freg(), g.freg()
		g.emit("	fcvtif f%d, r%d", f1, g.reg())
		g.emit("	%s f%d, f%d, f%d", fpArithOps[g.rng.Intn(len(fpArithOps))], f2, f1, f2)
		g.emit("	fcvtfi r%d, f%d", g.reg(), f2)
	case 9:
		g.emit("	out r%d, %d", g.reg(), g.rng.Intn(256))
	case 10: // forward branch over a couple of ops
		l := g.label()
		g.emit("	%s r%d, r%d, %s", intBranchOps[g.rng.Intn(len(intBranchOps))], g.reg(), g.reg(), l)
		g.emit("	addi r%d, r%d, 1", g.reg(), g.reg())
		g.emit("	xor  r%d, r%d, r%d", g.reg(), g.reg(), g.reg())
		g.emit("%s:", l)
	case 11: // LUI constant build
		g.emit("	lui  r%d, %d", g.reg(), g.rng.Intn(1<<16))
	case 12: // unconditional control transfer: direct (jal) or indirect (jalr)
		l := g.label()
		if g.rng.Intn(2) == 0 {
			g.emit("	jal  r%d, %s", g.reg(), l)
		} else {
			t := g.reg()
			g.emit("	la   r%d, %s", t, l)
			g.emit("	jalr r%d, r%d, 0", g.reg(), t)
		}
		g.emit("	addi r%d, r%d, 1", g.reg(), g.reg()) // skipped
		g.emit("%s:", l)
	case 13: // FP memory round trip through the scratch window
		a := g.scratchPtr()
		f1, f2 := g.freg(), g.freg()
		g.emit("	fcvtif f%d, r%d", f1, g.reg())
		g.emit("	fsd  f%d, 0(r%d)", f1, a)
		g.emit("	fld  f%d, 0(r%d)", f2, a)
	case 14: // PAC round trip: sign, auth under the same key+modifier, deref.
		// The modifier register must differ from the pointer register (sign
		// overwrites it), so the auth always succeeds and the program stays
		// digest-identical across every auth-failure mode; failing auths are
		// the attack kernels' job.
		a := g.scratchPtr()
		m := g.reg()
		for m == a {
			m = g.reg()
		}
		auth := pacAuthOps[g.rng.Intn(len(pacAuthOps))]
		g.emit("	%s r%d, r%d, r%d", isa.PACSignFor(auth), a, a, m)
		g.emit("	%s r%d, r%d, r%d", auth, a, a, m)
		g.emit("	ld   r%d, 0(r%d)", g.reg(), a)
	case 15: // PAC strip: sign then strip yields a clean pointer; plus a nop
		a := g.scratchPtr()
		m := g.reg()
		for m == a {
			m = g.reg()
		}
		auth := pacAuthOps[g.rng.Intn(len(pacAuthOps))]
		g.emit("	%s r%d, r%d, r%d", isa.PACSignFor(auth), a, a, m)
		g.emit("	strip r%d, r%d", a, a)
		g.emit("	sd   r%d, 0(r%d)", g.reg(), a)
		g.emit("	nop")
	}
}

func (g *Gen) label() string {
	g.labelN++
	return fmt.Sprintf("l%d", g.labelN)
}

// Generate builds one full program. GenerateSecret (gen_secret.go) is the
// same body over a scratch window whose head is secret storage.
func (g *Gen) Generate() string { return g.generate(false) }
