package diffcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"authpoint/internal/policy"
)

// ReproSchema identifies the deterministic replay file format.
const ReproSchema = "authfuzz/repro/v1"

// Repro is one recorded differential check: everything needed to replay it
// byte-identically — the exact source (not the seed: the generator may
// evolve), the policy, the tamper flag — plus the expected outcome. Corpus
// entries under testdata/ are Repros with an expected verdict of "ok" (or a
// tamper verdict): they pin past bug classes dead. Divergence repros are
// what authfuzz writes when it finds a new bug.
type Repro struct {
	Schema string `json:"schema"`
	// Note says what this repro pins (bug class, origin).
	Note string `json:"note,omitempty"`
	// Seed is the generator seed the source came from (0 = hand-written).
	Seed   int64  `json:"seed"`
	Policy string `json:"policy"`
	Tamper bool   `json:"tamper,omitempty"`
	// TamperSite is the tamper site (one of Sites(): entry, data, mac, ctr,
	// tree). Empty means entry, so pre-existing corpus files decode (and
	// re-encode) unchanged.
	TamperSite string `json:"tamper_site,omitempty"`

	// Expected outcome: replay must reproduce every field exactly.
	Verdict      string `json:"verdict"`
	Divergence   string `json:"divergence,omitempty"`
	Reason       string `json:"reason"`
	Cycles       uint64 `json:"cycles"`
	Insts        uint64 `json:"insts"`
	OracleDigest string `json:"oracle_digest"`
	SimDigest    string `json:"sim_digest"`

	Source string `json:"source"`
}

// NewRepro records a result (produced with default Options — mutations are
// not replayable) and its source as a repro.
func NewRepro(res Result, src, note string) *Repro {
	// Entry is the default site; recording it as "" keeps entry-site repro
	// files (the whole pre-site corpus) byte-identical across replay.
	site := string(res.Site)
	if !res.Tamper || res.Site == SiteEntry {
		site = ""
	}
	return &Repro{
		Schema:       ReproSchema,
		Note:         note,
		Seed:         res.Seed,
		Policy:       res.Policy.String(),
		Tamper:       res.Tamper,
		TamperSite:   site,
		Verdict:      string(res.Verdict),
		Divergence:   res.Divergence,
		Reason:       res.Reason,
		Cycles:       res.Cycles,
		Insts:        res.Insts,
		OracleDigest: res.OracleDigest,
		SimDigest:    res.SimDigest,
		Source:       src,
	}
}

// Encode renders the repro as canonical JSON (fixed field order, two-space
// indent, trailing newline). Replay compares encodings byte-for-byte.
func (r *Repro) Encode() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Only unmarshalable types reach this; the struct has none.
		panic(err)
	}
	return append(b, '\n')
}

// DecodeRepro parses and schema-checks a repro file.
func DecodeRepro(data []byte) (*Repro, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("diffcheck: repro does not decode: %w", err)
	}
	if r.Schema != ReproSchema {
		return nil, fmt.Errorf("diffcheck: repro schema %q, want %q", r.Schema, ReproSchema)
	}
	if r.Source == "" {
		return nil, fmt.Errorf("diffcheck: repro has no source")
	}
	return &r, nil
}

// LoadRepro reads a repro file from disk.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeRepro(data)
}

// WriteFile writes the canonical encoding to path.
func (r *Repro) WriteFile(path string) error {
	return os.WriteFile(path, r.Encode(), 0o644)
}

// Replay re-runs the recorded program under the recorded policy and tamper
// flag and verifies the outcome is byte-identical: re-recording the fresh
// result must reproduce the original file exactly (same verdict, stop
// reason, cycle and instruction counts, and state digests). It returns the
// fresh result and an error describing the first mismatch, if any.
func (r *Repro) Replay() (Result, error) {
	pol, err := policy.Parse(r.Policy)
	if err != nil {
		return Result{}, fmt.Errorf("diffcheck: repro policy: %w", err)
	}
	res := Check(r.Source, Options{Policy: pol, Tamper: r.Tamper, TamperSite: TamperSite(r.TamperSite)})
	res.Seed = r.Seed
	fresh := NewRepro(res, r.Source, r.Note)
	if !bytes.Equal(fresh.Encode(), r.Encode()) {
		return res, fmt.Errorf("diffcheck: replay diverged from recording: %s", reproDiff(r, fresh))
	}
	return res, nil
}

// reproDiff names the first differing field between two repros.
func reproDiff(want, got *Repro) string {
	type f struct{ name, want, got string }
	fields := []f{
		{"verdict", want.Verdict, got.Verdict},
		{"divergence", want.Divergence, got.Divergence},
		{"reason", want.Reason, got.Reason},
		{"cycles", fmt.Sprint(want.Cycles), fmt.Sprint(got.Cycles)},
		{"insts", fmt.Sprint(want.Insts), fmt.Sprint(got.Insts)},
		{"oracle_digest", want.OracleDigest, got.OracleDigest},
		{"sim_digest", want.SimDigest, got.SimDigest},
		{"policy", want.Policy, got.Policy},
		{"tamper_site", want.TamperSite, got.TamperSite},
	}
	for _, x := range fields {
		if x.want != x.got {
			return fmt.Sprintf("%s = %q, recorded %q", x.name, x.got, x.want)
		}
	}
	return "encodings differ (source or metadata)"
}
