package diffcheck

import (
	"fmt"

	"authpoint/internal/policy"
)

// MonotoneViolation is one broken timing invariant: More subsumes Less
// (same program, strictly more gates), yet ran in fewer cycles.
type MonotoneViolation struct {
	Less, More             policy.ControlPoint
	LessCycles, MoreCycles uint64
}

func (v MonotoneViolation) String() string {
	return fmt.Sprintf("%v ran %d cycles but %v (more gates) ran %d",
		v.Less, v.LessCycles, v.More, v.MoreCycles)
}

// MonotoneComparable reports whether cycle counts of two normalized policies
// are ordered by the metamorphic timing invariant: More must subsume Less
// and the two may differ only in the stall gates (issue, fetch). Those gates
// purely add waits on the critical path, so removing them can never cost
// cycles. The other knobs change memory-system behaviour in both directions
// and are excluded from the comparison:
//
//   - obfuscation permutes the address map, so cache and DRAM locality — and
//     with it total cycles — move arbitrarily;
//   - write- and commit-gating reorder store-buffer and ROB drains, which
//     perturbs DRAM row-buffer and bus scheduling. Measured over the full
//     lattice, adding a drain gate speeds up a material fraction of programs
//     (it can even beat the baseline), so drain-gate cycle counts are not
//     pairwise comparable.
func MonotoneComparable(less, more policy.ControlPoint) bool {
	if !more.Subsumes(less) {
		return false
	}
	lk, mk := less.Knobs(), more.Knobs()
	return lk.StoreWaitAuth == mk.StoreWaitAuth &&
		lk.GateCommit == mk.GateCommit &&
		lk.Remap == mk.Remap
}

// CheckMonotone runs one untampered program under every given point plus
// the baseline and asserts the metamorphic timing invariant: removing stall
// gates never costs cycles. For every ordered pair with
// MonotoneComparable(q, p), cycles(p) >= cycles(q) must hold.
//
// Every individual run must also be architecturally equivalent to the
// oracle; such divergences are returned through the Result slice.
func CheckMonotone(src string, points []policy.ControlPoint, opt Options) (results []Result, violations []MonotoneViolation) {
	opt.Tamper = false
	pts := make([]policy.ControlPoint, 0, len(points)+1)
	pts = append(pts, policy.Baseline)
	seen := map[policy.ControlPoint]bool{policy.Baseline: true}
	for _, p := range points {
		p = p.Normalize()
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	cycles := make(map[policy.ControlPoint]uint64, len(pts))
	for _, p := range pts {
		o := opt
		o.Policy = p
		res := Check(src, o)
		results = append(results, res)
		if res.Verdict == VerdictOK {
			cycles[p] = res.Cycles
		}
	}
	for _, more := range pts {
		mc, ok := cycles[more]
		if !ok {
			continue
		}
		for _, less := range pts {
			lc, ok := cycles[less]
			if !ok || less == more {
				continue
			}
			if MonotoneComparable(less, more) && lc > mc {
				violations = append(violations, MonotoneViolation{
					Less: less, More: more, LessCycles: lc, MoreCycles: mc,
				})
			}
		}
	}
	return results, violations
}
