package diffcheck

import (
	"strings"
	"testing"

	"authpoint/internal/policy"
)

func TestTamperSiteDefaultsToEntry(t *testing.T) {
	res, _ := CheckSeed(3, Options{Policy: policy.ThenCommit, Tamper: true})
	if res.Site != SiteEntry {
		t.Fatalf("default tamper site = %q, want %q", res.Site, SiteEntry)
	}
	explicit, _ := CheckSeed(3, Options{Policy: policy.ThenCommit, Tamper: true, TamperSite: SiteEntry})
	if explicit.Verdict != res.Verdict || explicit.Reason != res.Reason || explicit.Cycles != res.Cycles {
		t.Fatalf("explicit entry site diverges from default: %+v vs %+v", explicit, res)
	}
}

// TestTamperSiteDataVerdicts sweeps data-site tamper across seeds and the
// lattice. Unlike the entry line, a data line is not guaranteed to be
// fetched, so the assertions are class-level: a verifying policy must never
// yield divergence (fetched-but-unflagged) or undetected, and the baseline
// is always undetected.
func TestTamperSiteDataVerdicts(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	sawFlagged := false
	for _, seed := range seeds {
		for _, pol := range policy.Lattice() {
			res, _ := CheckSeed(seed, Options{Policy: pol, Tamper: true, TamperSite: SiteData})
			if res.Site != SiteData {
				t.Fatalf("seed %d under %v: site %q, want data", seed, pol, res.Site)
			}
			switch {
			case !pol.Knobs().Authenticate:
				if res.Verdict != VerdictUndetected {
					t.Errorf("seed %d under %v (no auth): verdict %s, want undetected", seed, pol, res.Verdict)
				}
			default:
				switch res.Verdict {
				case VerdictOK: // line never fetched: nothing to assert
				case VerdictContained, VerdictDetected:
					sawFlagged = true
				default:
					t.Errorf("seed %d under %v: verdict %s (%s)", seed, pol, res.Verdict, res.Divergence)
				}
			}
		}
	}
	if !sawFlagged {
		t.Error("no seed ever fetched its tampered data line; test exercises nothing")
	}
}

func TestTamperSiteDataNoDataSegment(t *testing.T) {
	res := Check("_start:\n\thalt\n", Options{Policy: policy.ThenCommit, Tamper: true, TamperSite: SiteData})
	if res.Verdict != VerdictError {
		t.Fatalf("data-site tamper on data-less program: verdict %s, want error", res.Verdict)
	}
	if !strings.Contains(res.Divergence, "no data segment") {
		t.Fatalf("error does not name the cause: %q", res.Divergence)
	}
}

// TestTamperSiteCtrVerdicts: a rolled counter decrypts the entry line to
// garbage, so the invariants match the entry site: baseline undetected,
// issue/commit gates contained with zero commits, weaker gates at least
// detected (the default MacCoversCounter puts the counter under the MAC).
func TestTamperSiteCtrVerdicts(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		for _, pol := range policy.Lattice() {
			res, _ := CheckSeed(seed, Options{Policy: pol, Tamper: true, TamperSite: SiteCtr})
			k := pol.Knobs()
			switch {
			case !k.Authenticate:
				if res.Verdict != VerdictUndetected {
					t.Errorf("seed %d ctr under %v: %s, want undetected", seed, pol, res.Verdict)
				}
			case k.GateIssue || k.GateCommit:
				if res.Verdict != VerdictContained {
					t.Errorf("seed %d ctr under %v: %s (%s), want contained", seed, pol, res.Verdict, res.Divergence)
				}
			default:
				if res.Verdict != VerdictContained && res.Verdict != VerdictDetected {
					t.Errorf("seed %d ctr under %v: %s (%s)", seed, pol, res.Verdict, res.Divergence)
				}
			}
		}
	}
	baseline, _ := CheckSeed(3, Options{Policy: policy.Baseline, Tamper: true, TamperSite: SiteCtr})
	if baseline.Site != SiteCtr {
		t.Errorf("site not recorded: %q", baseline.Site)
	}
}

// TestTamperSiteMetaVerdicts: MAC- and tree-node tamper leave the data
// intact, so the baseline run must be bit-identical to the untampered one
// (checkTamperMeta asserts full oracle equivalence before calling it
// undetected), and every authenticating policy must flag the entry line.
func TestTamperSiteMetaVerdicts(t *testing.T) {
	for _, site := range []TamperSite{SiteMac, SiteTree} {
		for _, seed := range []int64{3, 11} {
			for _, pol := range policy.Lattice() {
				res, _ := CheckSeed(seed, Options{Policy: pol, Tamper: true, TamperSite: site})
				if res.Site != site {
					t.Fatalf("seed %d: site %q, want %q", seed, res.Site, site)
				}
				k := pol.Knobs()
				switch {
				case !k.Authenticate:
					if res.Verdict != VerdictUndetected {
						t.Errorf("seed %d %s under %v: %s (%s), want undetected", seed, site, pol, res.Verdict, res.Divergence)
					}
				case k.GateIssue || k.GateCommit:
					if res.Verdict != VerdictContained {
						t.Errorf("seed %d %s under %v: %s (%s), want contained", seed, site, pol, res.Verdict, res.Divergence)
					}
					if res.Insts != 0 {
						t.Errorf("seed %d %s under %v: contained with %d commits", seed, site, pol, res.Insts)
					}
				default:
					if res.Verdict != VerdictContained && res.Verdict != VerdictDetected {
						t.Errorf("seed %d %s under %v: %s (%s)", seed, site, pol, res.Verdict, res.Divergence)
					}
				}
			}
		}
	}
}

func TestSitesListsAll(t *testing.T) {
	want := map[TamperSite]bool{SiteEntry: true, SiteData: true, SiteMac: true, SiteCtr: true, SiteTree: true}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unknown site %q", s)
		}
	}
}

func TestTamperSiteReproRoundTrip(t *testing.T) {
	// Entry-site recordings must keep encoding the site as "" so the
	// pre-site corpus stays byte-identical under replay.
	entry, src := CheckSeed(11, Options{Policy: policy.ThenCommit, Tamper: true})
	if r := NewRepro(entry, src, ""); r.TamperSite != "" {
		t.Fatalf("entry-site repro records tamper_site %q, want empty", r.TamperSite)
	}

	for _, site := range Sites()[1:] { // every non-default site round-trips
		res, src := CheckSeed(11, Options{Policy: policy.ThenCommit, Tamper: true, TamperSite: site})
		r := NewRepro(res, src, string(site)+"-site round-trip")
		if r.TamperSite != string(site) {
			t.Fatalf("%s-site repro records tamper_site %q", site, r.TamperSite)
		}
		dec, err := DecodeRepro(r.Encode())
		if err != nil {
			t.Fatalf("%s: decode: %v", site, err)
		}
		if _, err := dec.Replay(); err != nil {
			t.Fatalf("%s: replay: %v", site, err)
		}
	}
}
