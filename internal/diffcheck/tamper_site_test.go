package diffcheck

import (
	"strings"
	"testing"

	"authpoint/internal/policy"
)

func TestTamperSiteDefaultsToEntry(t *testing.T) {
	res, _ := CheckSeed(3, Options{Policy: policy.ThenCommit, Tamper: true})
	if res.Site != SiteEntry {
		t.Fatalf("default tamper site = %q, want %q", res.Site, SiteEntry)
	}
	explicit, _ := CheckSeed(3, Options{Policy: policy.ThenCommit, Tamper: true, TamperSite: SiteEntry})
	if explicit.Verdict != res.Verdict || explicit.Reason != res.Reason || explicit.Cycles != res.Cycles {
		t.Fatalf("explicit entry site diverges from default: %+v vs %+v", explicit, res)
	}
}

// TestTamperSiteDataVerdicts sweeps data-site tamper across seeds and the
// lattice. Unlike the entry line, a data line is not guaranteed to be
// fetched, so the assertions are class-level: a verifying policy must never
// yield divergence (fetched-but-unflagged) or undetected, and the baseline
// is always undetected.
func TestTamperSiteDataVerdicts(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	sawFlagged := false
	for _, seed := range seeds {
		for _, pol := range policy.Lattice() {
			res, _ := CheckSeed(seed, Options{Policy: pol, Tamper: true, TamperSite: SiteData})
			if res.Site != SiteData {
				t.Fatalf("seed %d under %v: site %q, want data", seed, pol, res.Site)
			}
			switch {
			case !pol.Knobs().Authenticate:
				if res.Verdict != VerdictUndetected {
					t.Errorf("seed %d under %v (no auth): verdict %s, want undetected", seed, pol, res.Verdict)
				}
			default:
				switch res.Verdict {
				case VerdictOK: // line never fetched: nothing to assert
				case VerdictContained, VerdictDetected:
					sawFlagged = true
				default:
					t.Errorf("seed %d under %v: verdict %s (%s)", seed, pol, res.Verdict, res.Divergence)
				}
			}
		}
	}
	if !sawFlagged {
		t.Error("no seed ever fetched its tampered data line; test exercises nothing")
	}
}

func TestTamperSiteDataNoDataSegment(t *testing.T) {
	res := Check("_start:\n\thalt\n", Options{Policy: policy.ThenCommit, Tamper: true, TamperSite: SiteData})
	if res.Verdict != VerdictError {
		t.Fatalf("data-site tamper on data-less program: verdict %s, want error", res.Verdict)
	}
	if !strings.Contains(res.Divergence, "no data segment") {
		t.Fatalf("error does not name the cause: %q", res.Divergence)
	}
}

func TestTamperSiteReproRoundTrip(t *testing.T) {
	// Entry-site recordings must keep encoding the site as "" so the
	// pre-site corpus stays byte-identical under replay.
	entry, src := CheckSeed(11, Options{Policy: policy.ThenCommit, Tamper: true})
	if r := NewRepro(entry, src, ""); r.TamperSite != "" {
		t.Fatalf("entry-site repro records tamper_site %q, want empty", r.TamperSite)
	}

	res, src := CheckSeed(11, Options{Policy: policy.ThenCommit, Tamper: true, TamperSite: SiteData})
	r := NewRepro(res, src, "data-site round-trip")
	if r.TamperSite != string(SiteData) {
		t.Fatalf("data-site repro records tamper_site %q, want %q", r.TamperSite, SiteData)
	}
	dec, err := DecodeRepro(r.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, err := dec.Replay(); err != nil {
		t.Fatalf("replay: %v", err)
	}
}
