package diffcheck

import (
	"crypto/sha256"
	"sync"

	"authpoint/internal/asm"
	"authpoint/internal/cryptoengine/pacmac"
	"authpoint/internal/interp"
	"authpoint/internal/isa"
)

// oracleState is an immutable snapshot of one in-order oracle run: everything
// the differential comparison reads — stop behaviour, committed count, both
// register files, the OUT log, the fault description, the digest windows'
// final bytes, and the canonical state digest. Snapshots are safe to share
// across workers (unlike *interp.Machine, whose memory reads mutate a
// one-entry page cache), which is what makes the oracle leg memoizable.
type oracleState struct {
	stop      interp.StopReason
	insts     uint64
	regs      [isa.NumIntRegs]uint64
	fregs     [isa.NumFPRegs]uint64
	outs      []interp.OutEvent
	faultKind string
	faultAddr uint64
	ranges    []interp.MemRange
	mem       [][]byte // one snapshot per range, same order
	digest    [32]byte
}

// runOracle executes the in-order oracle on p and snapshots the outcome over
// the given digest windows. maxInsts bounds the run; a StopMaxInsts snapshot
// carries no digest or memory (the check errors out before using them).
func runOracle(p *asm.Program, mode pacmac.Mode, maxInsts uint64, ranges []interp.MemRange) *oracleState {
	o := interp.New(p)
	o.PACMode = mode
	st := &oracleState{stop: o.Run(maxInsts), ranges: ranges}
	st.insts = o.Insts
	st.regs = o.Regs
	st.fregs = o.FRegs
	st.outs = append([]interp.OutEvent(nil), o.Outs...)
	st.faultKind, st.faultAddr, _ = o.Fault()
	if st.stop != interp.StopMaxInsts {
		st.digest = o.StateDigest(ranges...)
		for _, r := range ranges {
			st.mem = append(st.mem, o.Mem.Read(r.Start, int(r.Len)))
		}
	}
	return st
}

// readUint mirrors mem.Memory.ReadUint (n-byte little-endian) over a
// snapshot window, reading zero bytes past the captured range like the
// sparse memory reads zero for untouched pages.
func (st *oracleState) readUint(ri int, off uint64, n int) uint64 {
	var v uint64
	buf := st.mem[ri]
	for i := 0; i < n; i++ {
		idx := off + uint64(i)
		if idx >= uint64(len(buf)) {
			break
		}
		v |= uint64(buf[idx]) << (8 * i)
	}
	return v
}

// oracleKey addresses one memoizable oracle run. The oracle leg is
// policy-independent except for the architectural pointer-authentication
// mode, so a -mode cross campaign pays it once per (seed, pac-mode) instead
// of once per (seed × policy).
type oracleKey struct {
	prog     [32]byte // SHA-256 of the source text
	mode     pacmac.Mode
	maxInsts uint64
}

// oracleEntry is one memo slot; ready closes when st is set (singleflight:
// concurrent workers on the same seed wait instead of re-running).
type oracleEntry struct {
	ready chan struct{}
	st    *oracleState
}

// OracleMemo memoizes in-order oracle runs across differential checks.
// Sweeps share one memo across all cells; entries are evicted
// oldest-inserted-first past the cap, which matches the seed-major cell
// order of cross campaigns (all policies of a seed are adjacent). The memo
// only serves checks with default digest windows (Options.Mutate unset) —
// Check bypasses it otherwise. Safe for concurrent use.
type OracleMemo struct {
	mu     sync.Mutex
	max    int
	m      map[oracleKey]*oracleEntry
	fifo   []oracleKey
	hits   uint64
	misses uint64
}

// DefaultOracleMemoCap bounds the memo: entries hold the data-segment and
// stack snapshots of one run, so ~128 in-flight seeds is a few MB.
const DefaultOracleMemoCap = 128

// NewOracleMemo builds a memo holding at most cap entries (<=0 means
// DefaultOracleMemoCap).
func NewOracleMemo(cap int) *OracleMemo {
	if cap <= 0 {
		cap = DefaultOracleMemoCap
	}
	return &OracleMemo{max: cap, m: make(map[oracleKey]*oracleEntry)}
}

// Hits and Misses report the memo's lifetime lookup counts. A hit is any
// check that avoided an oracle run, including waiters on an in-flight run.
func (om *OracleMemo) Hits() uint64 {
	om.mu.Lock()
	defer om.mu.Unlock()
	return om.hits
}

func (om *OracleMemo) Misses() uint64 {
	om.mu.Lock()
	defer om.mu.Unlock()
	return om.misses
}

// run returns the memoized oracle state for (src, mode, maxInsts), running
// the oracle at most once per key even under concurrent lookups.
func (om *OracleMemo) run(src string, p *asm.Program, mode pacmac.Mode, maxInsts uint64, ranges []interp.MemRange) *oracleState {
	key := oracleKey{prog: sha256.Sum256([]byte(src)), mode: mode, maxInsts: maxInsts}
	om.mu.Lock()
	if e, ok := om.m[key]; ok {
		om.hits++
		om.mu.Unlock()
		<-e.ready
		return e.st
	}
	om.misses++
	e := &oracleEntry{ready: make(chan struct{})}
	om.m[key] = e
	om.fifo = append(om.fifo, key)
	for len(om.fifo) > om.max {
		// Evict the oldest key. In-flight evictees are fine: waiters hold the
		// entry pointer, only the map forgets it.
		delete(om.m, om.fifo[0])
		om.fifo = om.fifo[1:]
	}
	om.mu.Unlock()

	e.st = runOracle(p, mode, maxInsts, ranges)
	close(e.ready)
	return e.st
}
