package diffcheck

import (
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
	"authpoint/internal/policy"
)

// TestEveryClassGeneratable pins that the generator can emit every opcode
// class the ISA defines: across a modest seed sweep, every class with at
// least one valid op must appear in some generated program. A new class
// added to the ISA without a generator idiom fails here, closing the gap
// where jumps, FP memory, and PAC ops were silently never fuzzed.
func TestEveryClassGeneratable(t *testing.T) {
	want := map[isa.Class]bool{}
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		if op.Valid() {
			want[op.Class()] = true
		}
	}
	seen := map[isa.Class]bool{}
	for seed := int64(1); seed <= 64; seed++ {
		p, err := asm.Assemble(GenProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, w := range p.Text {
			seen[isa.Decode(w).Op.Class()] = true
		}
	}
	for c := range want {
		if !seen[c] {
			t.Errorf("opcode class %v has valid ops but is never generated — add an idiom to randomOp", c)
		}
	}
}

// TestPACDifferential drives 50 generated programs (which include sign/auth/
// strip idioms) through every point of the pac policy set on the timed
// out-of-order machine against the in-order oracle. Generated auths always
// succeed, so every run must be fully architecturally equivalent regardless
// of the auth-failure mode.
func TestPACDifferential(t *testing.T) {
	pts, err := policy.ParseSet("pac")
	if err != nil {
		t.Fatal(err)
	}
	seeds := int64(50)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= seeds; seed++ {
		for _, pt := range pts {
			res, _ := CheckSeed(seed, Options{Policy: pt})
			if res.Verdict != VerdictOK {
				t.Errorf("seed %d under %v: %s: %s", seed, pt, res.Verdict, res.Divergence)
			}
			if res.OracleDigest != res.SimDigest {
				t.Errorf("seed %d under %v: digests differ", seed, pt)
			}
		}
	}
}

// TestPACDigestIdenticalAcrossModes pins the orthogonality contract: for a
// program whose auths all succeed, the architectural digest and cycle count
// are bit-identical whether pointer authentication is off, poisoning, or
// faulting — the PAC dimension composes with the gate dimensions without
// perturbing any existing policy point.
func TestPACDigestIdenticalAcrossModes(t *testing.T) {
	for _, seed := range []int64{5, 17, 29} {
		base, _ := CheckSeed(seed, Options{Policy: policy.ThenCommit})
		if base.Verdict != VerdictOK {
			t.Fatalf("seed %d base: %s: %s", seed, base.Verdict, base.Divergence)
		}
		for _, pt := range []policy.ControlPoint{
			policy.Compose(policy.ThenCommit, policy.ThenPAC),
			policy.Compose(policy.ThenCommit, policy.ThenFPAC),
		} {
			res, _ := CheckSeed(seed, Options{Policy: pt})
			if res.Verdict != VerdictOK {
				t.Errorf("seed %d under %v: %s: %s", seed, pt, res.Verdict, res.Divergence)
				continue
			}
			if res.SimDigest != base.SimDigest {
				t.Errorf("seed %d under %v: digest differs from PAC-off", seed, pt)
			}
			if res.Cycles != base.Cycles {
				t.Errorf("seed %d under %v: %d cycles, PAC-off %d — auth-failure mode must not change the cost of succeeding auths", seed, pt, res.Cycles, base.Cycles)
			}
		}
	}
}

// pacFailSrc authenticates a deliberately forged pointer: the signed word is
// XORed with an address bit so the tag can never match, then dereferenced.
// The architectural outcome is the auth-failure mode made visible:
//
//	off:    auth strips; the load from the (valid, in-window) address succeeds
//	poison: the load faults at translation of the poisoned address
//	fpac:   the auth instruction itself faults
const pacFailSrc = `_start:
	la    r2, buf
	li    r3, 7
	signa r4, r2, r3
	xori  r4, r4, 8
	autha r5, r4, r3
	ld    r6, 0(r5)
	out   r6, 1
	halt
.data
buf: .space 64
`

// TestPACFailureModesDifferential pins OoO/oracle equivalence on the
// failure path of each mode, including both fault flavours.
func TestPACFailureModesDifferential(t *testing.T) {
	cases := []struct {
		pt     policy.ControlPoint
		reason string
	}{
		{policy.Baseline, "halt"},
		{policy.ThenPAC, "arch-fault"},  // poisoned pointer faults at use
		{policy.ThenFPAC, "arch-fault"}, // the auth itself faults
		{policy.Compose(policy.CommitPlusFetch, policy.ThenFPAC), "arch-fault"},
	}
	for _, c := range cases {
		res := Check(pacFailSrc, Options{Policy: c.pt})
		if res.Verdict != VerdictOK {
			t.Errorf("under %v: %s: %s", c.pt, res.Verdict, res.Divergence)
			continue
		}
		if res.Reason != c.reason {
			t.Errorf("under %v: stop reason %q, want %q", c.pt, res.Reason, c.reason)
		}
	}
}
