package diffcheck

import (
	"bytes"
	"math/rand"
)

// SecretBytes is the size of the secret region at the head of the scratch
// window in secret-mode generated programs (GenerateSecret). Masked offsets
// cover the whole ScratchBytes window, so roughly SecretBytes/ScratchBytes of
// the generated memory operations touch secret storage — enough that secret
// values routinely flow into addresses, branches, and OUT operands.
const SecretBytes = 256

// secretPairSalt decorrelates the secret-image stream from the program
// stream, so the same seed never yields secrets that mirror the program's
// immediate constants.
const secretPairSalt = 0x5ec2e7_9a17

// GenerateSecret builds one full program like Generate, but with the scratch
// window split into a secret head and a public tail:
//
//	secret: .space SecretBytes      ; two-run checks vary these bytes
//	buf:    .space ScratchBytes-SecretBytes
//
// The scratch base register points at the secret region, so the same masked
// offsets generated for Generate-style programs now read and write secret
// storage part of the time. The symbol name "secret" is what the static
// analysis auto-detects as secret storage, so the contract derived for the
// program and the images the two-run checker varies agree by construction.
// Generation stays seed-deterministic: the same seed yields the same source.
func (g *Gen) GenerateSecret() string { return g.generate(true) }

// Generate builds one full program.
func (g *Gen) generate(secret bool) string {
	base := "buf"
	if secret {
		base = "secret"
	}
	g.emit("_start:")
	g.emit("	la r12, %s", base)
	g.emit("	li r13, %d", ScratchBytes-8) // 8-aligned offsets inside scratch
	// Seed registers deterministically.
	for r := 1; r <= 11; r++ {
		if r == 9 {
			continue
		}
		g.emit("	li r%d, %d", r, g.rng.Int63n(1<<40))
	}
	blocks := g.rng.Intn(6) + 3
	for b := 0; b < blocks; b++ {
		if g.rng.Intn(3) == 0 { // bounded loop
			l := g.label()
			g.emit("	li r9, %d", g.rng.Intn(5)+2)
			g.emit("%s:", l)
			for i := 0; i < g.rng.Intn(6)+2; i++ {
				g.randomOp()
			}
			g.emit("	addi r9, r9, -1")
			g.emit("	bne  r9, r0, %s", l)
		} else {
			for i := 0; i < g.rng.Intn(10)+3; i++ {
				g.randomOp()
			}
		}
	}
	g.emit("	halt")
	g.emit(".data")
	if secret {
		g.emit("secret: .space %d", SecretBytes)
		g.emit("buf: .space %d", ScratchBytes-SecretBytes)
	} else {
		g.emit("buf: .space %d", ScratchBytes)
	}
	return g.b.String()
}

// GenSecretProgram is the one-shot form of GenerateSecret: the secret-mode
// program for one seed.
func GenSecretProgram(seed int64) string { return NewGen(seed).GenerateSecret() }

// SecretPair derives the two secret data images for one seed: n random bytes
// each, deterministic in (seed, n), and guaranteed to differ. The two-run
// checker runs the same program once with each image patched over its secret
// ranges; every other byte of the machines is identical, so any observable
// difference between the runs is caused by the secret.
func SecretPair(seed int64, n int) (a, b []byte) {
	rng := rand.New(rand.NewSource(seed ^ secretPairSalt))
	a = make([]byte, n)
	b = make([]byte, n)
	rng.Read(a)
	rng.Read(b)
	if bytes.Equal(a, b) && n > 0 {
		b[0] ^= 1
	}
	return a, b
}
