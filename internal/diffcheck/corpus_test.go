package diffcheck

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"authpoint/internal/policy"
)

var update = flag.Bool("update", false, "regenerate the checked-in repro corpus under testdata/")

// s2lForwardSrc stresses the store-to-load forwarding and disambiguation
// paths that bit during development (DESIGN.md §3): wide stores read back by
// narrower overlapping loads, a sub-word store punched into a doubleword
// that a wider load then crosses, all close enough together to still be in
// the store buffer when the loads issue.
const s2lForwardSrc = `_start:
	la  r12, buf
	li  r1, 123456789123456
	sd  r1, 0(r12)
	lw  r2, 4(r12)
	lbu r3, 0(r12)
	lb  r4, 7(r12)
	sw  r2, 8(r12)
	lbu r5, 8(r12)
	sb  r5, 17(r12)
	lw  r6, 16(r12)
	ld  r7, 16(r12)
	sb  r1, 24(r12)
	sw  r2, 24(r12)
	ld  r8, 24(r12)
	out r2, 1
	out r4, 2
	out r6, 3
	out r7, 4
	out r8, 5
	halt
.data
buf: .space 64
`

// faultMisalignedSrc pins the fault-equivalence contract: both machines
// stop on the misaligned load with identical pre-fault state.
const faultMisalignedSrc = `_start:
	li r2, 80
	lw r1, 3(r2)
	halt
`

type corpusEntry struct {
	file   string
	note   string
	seed   int64 // 0 = hand-written src
	src    string
	pol    policy.ControlPoint
	tamper bool
	site   TamperSite // empty = entry
}

func (e corpusEntry) source() string {
	if e.seed != 0 {
		return GenProgram(e.seed)
	}
	return e.src
}

// corpusEntries defines the checked-in corpus. Each entry is checked under
// default Options (so it replays with `authfuzz -repro`) and written with
// -update; TestCorpusReplay replays every file on every `go test` run.
var corpusEntries = []corpusEntry{
	{
		file: "s2l-forwarding.repro",
		note: "store-to-load forwarding bug class (DESIGN.md §3): overlapping sub-word stores and wider loads through the store buffer",
		src:  s2lForwardSrc,
		pol:  policy.ThenCommit,
	},
	{
		file: "s2l-forwarding-write-gated.repro",
		note: "same forwarding stress with store drains held for authentication (StoreWaitAuth reorders buffer occupancy)",
		src:  s2lForwardSrc,
		pol:  policy.Compose(policy.ThenWrite, policy.ThenFetch),
	},
	{
		file: "fault-misaligned.repro",
		note: "fault equivalence: misaligned load must stop both machines with identical committed state",
		src:  faultMisalignedSrc,
		pol:  policy.CommitPlusFetch,
	},
	{
		file: "seed7-baseline.repro",
		note: "generated program, decrypt-only baseline",
		seed: 7,
	},
	{
		file: "seed23-then-issue.repro",
		note: "generated program under the strictest single gate",
		seed: 23,
		pol:  policy.ThenIssue,
	},
	{
		file: "seed42-full-gates.repro",
		note: "generated program with every gate and obfuscation enabled",
		seed: 42,
		pol: policy.Compose(policy.CommitPlusObfuscation,
			policy.Compose(policy.ThenIssue, policy.Compose(policy.ThenWrite, policy.ThenFetch))),
	},
	{
		file:   "tamper-contained-then-commit.repro",
		note:   "tampered entry line under then-commit must security-fault with zero commits",
		seed:   3,
		pol:    policy.ThenCommit,
		tamper: true,
	},
	{
		file:   "tamper-detected-then-fetch.repro",
		note:   "tampered entry line under then-fetch is flagged while execution runs ahead",
		seed:   3,
		pol:    policy.ThenFetch,
		tamper: true,
	},
	{
		file: "pac-authfail-baseline.repro",
		note: "forged pointer under the PAC-off baseline: auth strips through and the substituted dereference succeeds — the vulnerability the pac dimension closes",
		src:  pacFailSrc,
	},
	{
		file: "pac-authfail-poison.repro",
		note: "forged pointer under authen-then-pac: the poisoned pointer faults at translation of the dependent load",
		src:  pacFailSrc,
		pol:  policy.ThenPAC,
	},
	{
		file: "pac-authfail-fpac.repro",
		note: "forged pointer under authen-then-fpac: the auth instruction itself faults at commit",
		src:  pacFailSrc,
		pol:  policy.ThenFPAC,
	},
	{
		file: "seed9-pac-full.repro",
		note: "generated program (with sign/auth/strip idioms) under commit+fetch+fpac",
		seed: 9,
		pol:  policy.Compose(policy.CommitPlusFetch, policy.ThenFPAC),
	},
	{
		file:   "tamper-mac-then-issue.repro",
		note:   "tampered stored MAC of the entry line under then-issue: contained with zero commits, data untouched",
		seed:   3,
		pol:    policy.ThenIssue,
		tamper: true,
		site:   SiteMac,
	},
	{
		file:   "tamper-ctr-then-commit.repro",
		note:   "rolled write counter of the entry line under then-commit: garbage decrypt, contained with zero commits",
		seed:   3,
		pol:    policy.ThenCommit,
		tamper: true,
		site:   SiteCtr,
	},
	{
		file:   "tamper-tree-then-fetch.repro",
		note:   "tampered tree leaf digest of the entry line under then-fetch: flagged while execution runs ahead",
		seed:   3,
		pol:    policy.ThenFetch,
		tamper: true,
		site:   SiteTree,
	},
}

func TestCorpusUpToDate(t *testing.T) {
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range corpusEntries {
		src := e.source()
		res := Check(src, Options{Policy: e.pol, Tamper: e.tamper, TamperSite: e.site})
		if res.Verdict == VerdictDivergence || res.Verdict == VerdictError {
			t.Fatalf("%s: %s: %s", e.file, res.Verdict, res.Divergence)
		}
		res.Seed = e.seed
		r := NewRepro(res, src, e.note)
		path := filepath.Join("testdata", e.file)
		if *update {
			if err := r.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing (run `go test -run TestCorpusUpToDate -update ./internal/diffcheck`): %v", path, err)
		}
		if string(want) != string(r.Encode()) {
			t.Errorf("%s is stale: model behaviour drifted from the recording (re-record with -update only if the drift is intended)", path)
		}
	}
}

// TestCorpusReplay replays every checked-in repro byte-identically — the
// same path `authfuzz -repro <file>` takes.
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < len(corpusEntries) {
		t.Fatalf("corpus has %d files, expected at least %d", len(files), len(corpusEntries))
	}
	for _, f := range files {
		r, err := LoadRepro(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if _, err := r.Replay(); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
