package diffcheck

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"authpoint/internal/campaign"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/telemetry"
)

func TestParseSeedRange(t *testing.T) {
	got, err := ParseSeedRange("1:3")
	if err != nil || !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Fatalf("1:3 = (%v, %v)", got, err)
	}
	got, err = ParseSeedRange("42")
	if err != nil || !reflect.DeepEqual(got, []int64{42}) {
		t.Fatalf("bare 42 = (%v, %v), want the single-seed shorthand", got, err)
	}
	got, err = ParseSeedRange(" 5 : 5 ")
	if err != nil || !reflect.DeepEqual(got, []int64{5}) {
		t.Fatalf("padded 5:5 = (%v, %v)", got, err)
	}
	for _, bad := range []string{"", "abc", "3:1", "1:", ":3", "1:2:3"} {
		if _, err := ParseSeedRange(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestParseSeedRangeOverflow pins the satellite fix: the full int64 span used
// to overflow h-l+1 into a negative make cap (a panic); now it is a clean
// range-too-large error, as is anything past MaxSeedRange.
func TestParseSeedRangeOverflow(t *testing.T) {
	wide := []string{
		"-9223372036854775808:9223372036854775807", // full int64 span
		"0:9223372036854775807",
		"-1:16777215", // width 1<<24, one past the cap
	}
	for _, s := range wide {
		got, err := ParseSeedRange(s)
		if err == nil {
			t.Fatalf("%q accepted (%d seeds)", s, len(got))
		}
		if !strings.Contains(err.Error(), "range spans") {
			t.Fatalf("%q: error %v does not name the range cap", s, err)
		}
	}
}

// checkLedger runs one observed sweep writing a checkpoint ledger to path,
// cancelling ctx after the killAfter-th cell when killAfter > 0.
func sweepWithLedger(t *testing.T, path string, cells []Cell, killAfter int) ([]Result, []Finding) {
	t.Helper()
	l, err := telemetry.Create(path, telemetry.NewHeader("test", 1))
	if err != nil {
		t.Fatal(err)
	}
	so := &SweepObs{Ledger: l}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{}
	if killAfter > 0 {
		var n atomic.Int64
		// The metrics sink fires once per timed run — one per non-tamper
		// cell — so it doubles as a mid-campaign kill switch.
		opt.MetricsSink = func(*obs.Snapshot) {
			if n.Add(1) == int64(killAfter) {
				cancel()
			}
		}
	}
	results, findings, _ := SweepObserved(ctx, cells, opt, 1, so)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return results, findings
}

// TestSweepKillResumeUnion is the end-to-end checkpoint/resume invariant: a
// campaign killed mid-flight and resumed from its ledger covers, across the
// union of both ledgers, every cell exactly once — with per-cell records
// identical to an uninterrupted run's.
func TestSweepKillResumeUnion(t *testing.T) {
	pols := []policy.ControlPoint{policy.Baseline, policy.ThenCommit}
	cells := CrossCells([]int64{1, 2, 3, 4, 5}, pols, false)
	dir := t.TempDir()

	// Run 1: killed after 4 cells. The ledger must still record every cell —
	// terminal verdicts for the ones that ran, explicit skips for the rest.
	first := dir + "/first.jsonl"
	results1, findings1 := sweepWithLedger(t, first, cells, 4)
	if len(findings1) != 0 {
		t.Fatalf("unexpected findings in run 1: %d", len(findings1))
	}
	ran := 0
	for _, r := range results1 {
		if r.Verdict != "" {
			ran++
		}
	}
	if ran == 0 || ran == len(cells) {
		t.Fatalf("kill switch did not interrupt the sweep: %d/%d cells ran", ran, len(cells))
	}
	lf1, err := telemetry.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf1.Validate(); err != nil {
		t.Fatalf("interrupted ledger is not a valid checkpoint: %v", err)
	}
	if len(lf1.Records) != len(cells) {
		t.Fatalf("interrupted ledger has %d records, want one per cell (%d)", len(lf1.Records), len(cells))
	}

	// Resume: subtract the checkpoint's completed cells, sweep the rest.
	done, err := campaign.LoadCompleted(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != ran {
		t.Fatalf("checkpoint records %d completed cells, want %d", len(done), ran)
	}
	var pending []Cell
	for _, c := range cells {
		id := campaign.CellID{Kind: "fuzz", Policy: c.Policy.String(), Seed: c.Seed,
			Tamper: c.Tamper, Site: string(c.EffectiveSite())}
		if _, ok := done[id]; !ok {
			pending = append(pending, c)
		}
	}
	if len(pending) != len(cells)-ran {
		t.Fatalf("resume selected %d pending cells, want %d", len(pending), len(cells)-ran)
	}
	second := dir + "/second.jsonl"
	_, findings2 := sweepWithLedger(t, second, pending, 0)
	if len(findings2) != 0 {
		t.Fatalf("unexpected findings in run 2: %d", len(findings2))
	}

	// The union of terminal records across both ledgers covers every cell
	// exactly once.
	lf2, err := telemetry.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	union := map[campaign.CellID]telemetry.Record{}
	for _, lf := range []*telemetry.LedgerFile{lf1, lf2} {
		for _, r := range lf.Records {
			if r.Verdict == "" || r.Verdict == telemetry.VerdictSkipped {
				continue
			}
			id := campaign.CellID{Kind: r.Kind, Policy: r.Policy, Seed: r.Seed, Tamper: r.Tamper, Site: r.Site}
			if _, dup := union[id]; dup {
				t.Fatalf("cell %+v recorded by both runs", id)
			}
			union[id] = r
		}
	}
	if len(union) != len(cells) {
		t.Fatalf("union covers %d cells, want %d", len(union), len(cells))
	}

	// And each union record matches the uninterrupted campaign's, field for
	// field, once host-dependent fields (and the seq renumbering) are shed.
	full := dir + "/full.jsonl"
	sweepWithLedger(t, full, cells, 0)
	lf3, err := telemetry.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range lf3.Records {
		id := campaign.CellID{Kind: r.Kind, Policy: r.Policy, Seed: r.Seed, Tamper: r.Tamper, Site: r.Site}
		got, ok := union[id]
		if !ok {
			t.Fatalf("cell %+v missing from the resumed union", id)
		}
		want := r.Canonical()
		got = got.Canonical()
		want.Seq, got.Seq = 0, 0
		if got != want {
			t.Fatalf("cell %+v: resumed record %+v != uninterrupted %+v", id, got, want)
		}
	}
}

// TestCheckCacheBitIdentity pins the cache determinism contract across the CI
// policy set: a cached result equals the fresh one field for field (modulo
// the Cached marker), and a second sweep over a warm cache simulates nothing.
func TestCheckCacheBitIdentity(t *testing.T) {
	store, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pols, err := policy.ParseSet("ci")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 2, 3}
	for _, seed := range seeds {
		for _, pt := range pols {
			opt := Options{Policy: pt, Cache: store}
			fresh, _ := CheckSeed(seed, opt)
			if fresh.Cached {
				t.Fatalf("seed %d under %v: first check claims cached", seed, pt)
			}
			cached, _ := CheckSeed(seed, opt)
			if !cached.Cached {
				t.Fatalf("seed %d under %v: second check missed the cache", seed, pt)
			}
			cached.Cached = false
			if !reflect.DeepEqual(fresh, cached) {
				t.Fatalf("seed %d under %v: cached result diverged:\nfresh:  %+v\ncached: %+v",
					seed, pt, fresh, cached)
			}
		}
	}
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	want := int64(len(seeds) * len(pols))
	if store.Hits() != want || store.Puts() != want {
		t.Fatalf("cache hits=%d puts=%d, want %d each", store.Hits(), store.Puts(), want)
	}
}

// TestSweepCachedSecondRun is the campaign-level acceptance shape: the same
// cross sweep run twice against one cache directory simulates zero cells the
// second time, and every second-run ledger record is marked cached with a
// verdict identical to the first run's.
func TestSweepCachedSecondRun(t *testing.T) {
	store, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pols := []policy.ControlPoint{policy.Baseline, policy.ThenFetch}
	cells := CrossCells([]int64{10, 11, 12}, pols, false)
	dir := t.TempDir()

	sweepLedger := func(path string) *telemetry.LedgerFile {
		t.Helper()
		l, err := telemetry.Create(path, telemetry.NewHeader("test", 0))
		if err != nil {
			t.Fatal(err)
		}
		so := &SweepObs{Ledger: l}
		if _, _, err := SweepObserved(context.Background(), cells, Options{Cache: store}, 2, so); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		lf, err := telemetry.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lf.SortBySeq()
		return lf
	}
	lf1 := sweepLedger(dir + "/cold.jsonl")
	lf2 := sweepLedger(dir + "/warm.jsonl")

	for i, r := range lf2.Records {
		if !r.Cached {
			t.Fatalf("warm-cache record %d (seed %d, %s) not served from cache", i, r.Seed, r.Policy)
		}
		a, b := lf1.Records[i].Canonical(), r.Canonical()
		b.Cached = false
		a.Cached = false
		if a != b {
			t.Fatalf("record %d drifted across cache: cold %+v, warm %+v", i, a, b)
		}
	}
	if store.Hits() != int64(len(cells)) {
		t.Fatalf("warm sweep hit the cache %d times, want %d", store.Hits(), len(cells))
	}
}

// TestOracleMemo pins the memoization observable: a cross-shaped sweep pays
// the policy-independent oracle leg once per (seed, pac-mode), not once per
// cell.
func TestOracleMemo(t *testing.T) {
	memo := NewOracleMemo(0)
	pols := []policy.ControlPoint{policy.Baseline, policy.ThenCommit, policy.CommitPlusFetch}
	seeds := []int64{20, 21}
	for _, seed := range seeds {
		for _, pt := range pols {
			res, _ := CheckSeed(seed, Options{Policy: pt, Oracle: memo})
			if res.Verdict != VerdictOK {
				t.Fatalf("seed %d under %v: %s (%s)", seed, pt, res.Verdict, res.Divergence)
			}
		}
	}
	// All three policies share pacmac mode off, so each seed runs the oracle
	// exactly once.
	if want := uint64(len(seeds)); memo.Misses() != want {
		t.Fatalf("oracle ran %d times, want once per seed (%d)", memo.Misses(), want)
	}
	if want := uint64(len(seeds) * (len(pols) - 1)); memo.Hits() != want {
		t.Fatalf("memo hits %d, want %d", memo.Hits(), want)
	}
}

// TestOracleMemoModeSplit pins that the memo keys on the architectural PAC
// mode: policies that change the oracle's pointer-authentication behaviour
// must not share entries.
func TestOracleMemoModeSplit(t *testing.T) {
	memo := NewOracleMemo(0)
	src := GenProgram(30)
	if res := Check(src, Options{Policy: policy.Baseline, Oracle: memo}); res.Verdict != VerdictOK {
		t.Fatalf("baseline: %s (%s)", res.Verdict, res.Divergence)
	}
	misses := memo.Misses()
	if res := Check(src, Options{Policy: policy.ThenPAC, Oracle: memo}); res.Verdict != VerdictOK {
		t.Fatalf("pac-poison: %s (%s)", res.Verdict, res.Divergence)
	}
	if memo.Misses() != misses+1 {
		t.Fatalf("a PAC-mode change reused a non-PAC oracle run (misses %d -> %d)", misses, memo.Misses())
	}
}
