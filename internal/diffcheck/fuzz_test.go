package diffcheck

import (
	"testing"

	"authpoint/internal/policy"
)

// FuzzDiffOracle cross-validates generated programs against the in-order
// oracle at the decrypt-only baseline. Any divergence — or a generated
// program that fails to assemble or terminate — is a bug. Run with
// `go test -fuzz FuzzDiffOracle ./internal/diffcheck` to explore seeds
// beyond the corpus.
func FuzzDiffOracle(f *testing.F) {
	for s := int64(1); s <= 20; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		res, src := CheckSeed(seed, Options{})
		if res.Verdict != VerdictOK {
			t.Fatalf("seed %d: %s: %s\n%s", seed, res.Verdict, res.Divergence, src)
		}
	})
}

// FuzzDiffLattice lets the fuzzer pick the seed, the lattice point, and
// whether to tamper, and asserts the policy-dependent invariants:
// architectural equivalence when untampered, containment/detection when
// tampered (Check reports any break as a divergence).
func FuzzDiffLattice(f *testing.F) {
	f.Add(int64(1), uint8(0), false)
	f.Add(int64(2), uint8(7), false)
	f.Add(int64(3), uint8(13), true)
	f.Add(int64(4), uint8(30), true)
	f.Fuzz(func(t *testing.T, seed int64, polIdx uint8, tamper bool) {
		pols := policy.FullLattice()
		pol := pols[int(polIdx)%len(pols)]
		res, src := CheckSeed(seed, Options{Policy: pol, Tamper: tamper})
		if res.Verdict == VerdictDivergence || res.Verdict == VerdictError {
			t.Fatalf("seed %d under %v (tamper=%v): %s: %s\n%s",
				seed, pol, tamper, res.Verdict, res.Divergence, src)
		}
		if tamper && pol.IsBaseline() != (res.Verdict == VerdictUndetected) {
			t.Fatalf("seed %d under %v: tamper verdict %s does not match baseline-ness",
				seed, pol, res.Verdict)
		}
	})
}
