package diffcheck

import (
	"encoding/hex"
	"fmt"

	"authpoint/internal/asm"
	"authpoint/internal/campaign"
	"authpoint/internal/cryptoengine/mactree"
	"authpoint/internal/cryptoengine/pacmac"
	"authpoint/internal/interp"
	"authpoint/internal/isa"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// CheckSchema versions the differential check's semantics for the campaign
// result cache: the verdict set, the state-digest encoding, the default
// bounds, and the containment invariants. Any change that could alter a
// Result for the same (source, policy, tamper, site, options) must bump it,
// invalidating every cached cell at once.
const CheckSchema = "authfuzz/check/v1"

// Verdict classifies one differential check.
type Verdict string

// Verdicts. The set is part of the .repro file contract: replays compare
// verdict strings byte-for-byte.
const (
	// VerdictOK: architectural equivalence held (untampered runs), or an
	// untampered-semantics check had nothing to assert.
	VerdictOK Verdict = "ok"
	// VerdictDivergence: the timed simulator and the oracle disagree, or a
	// tamper-containment invariant broke. This is a bug.
	VerdictDivergence Verdict = "divergence"
	// VerdictContained: a tamper run ended in a security fault before any
	// tainted instruction committed (the strong guarantee of issue/commit
	// gates).
	VerdictContained Verdict = "contained"
	// VerdictDetected: a tamper run flagged the tampered line but execution
	// ran ahead to some other stop (detection without containment —
	// authen-only, write/fetch gates).
	VerdictDetected Verdict = "detected"
	// VerdictUndetected: a baseline tamper run — no verification exists to
	// flag it. Expected, not a bug.
	VerdictUndetected Verdict = "undetected"
	// VerdictError: the check itself could not run (assembly failure,
	// non-terminating oracle, machine construction error). Not a divergence,
	// but fuzz sweeps surface it: generated programs must never trip it.
	VerdictError Verdict = "error"
)

// TamperSite selects which encrypted line tamper mode flips its one bit in.
type TamperSite string

// Tamper sites. The site changes what containment can be asserted: the
// entry line is architecturally fetched and executed by every run, so gated
// policies must contain it completely; a data line is only fetched if some
// (possibly wrong-path, later-squashed) memory access touches it, so the
// invariants are conditional on the line actually reaching the bus.
const (
	// SiteEntry: the text line holding the entry point. The default, and
	// the strongest site: the first instruction fetched is guaranteed
	// tainted, so issue/commit gates must end in a security fault with zero
	// instructions committed.
	SiteEntry TamperSite = "entry"
	// SiteData: the first line of the data segment. The line is tainted at
	// rest but reaches the core only if the program (or its wrong path)
	// loads or stores through it; verification is still required to flag it
	// the moment it is fetched.
	SiteData TamperSite = "data"
	// SiteMac: the stored flat MAC of the entry line, leaving data and
	// counter intact. The plaintext decrypts correctly, so under the baseline
	// the run is architecturally identical to the untampered one — the
	// invariant asserts full oracle equivalence. Any authenticating policy
	// must flag the line (entry is always fetched and verified).
	SiteMac TamperSite = "mac"
	// SiteCtr: the entry line's write counter rolled forward by one
	// (counter-replay adversary). Decryption pads with the wrong counter so
	// the fetched instructions are garbage, like SiteEntry; with the default
	// MacCoversCounter the MAC message changes too, so verification fails.
	SiteCtr TamperSite = "ctr"
	// SiteTree: the entry line's leaf digest in the MAC tree (the check
	// forces the tree integrity scheme on). Data and counter are intact, so
	// the invariants mirror SiteMac; level-0 digests are never implicitly
	// trusted, so a fetched entry line must always be flagged.
	SiteTree TamperSite = "tree"
)

// Sites lists every tamper site, in .repro-schema order.
func Sites() []TamperSite {
	return []TamperSite{SiteEntry, SiteData, SiteMac, SiteCtr, SiteTree}
}

// Options configures one differential check.
type Options struct {
	// Policy is the authentication control point for the timed run. The
	// zero value is the decrypt-only baseline.
	Policy policy.ControlPoint
	// Mutate, if set, adjusts the timed config after the policy is applied
	// (prefetcher on, MSHR bounds, ...). Mutations are not recorded in
	// repro files; corpus entries must not rely on them.
	Mutate func(*sim.Config)
	// Tamper flips one bit in the encrypted image at TamperSite before the
	// run and checks containment invariants instead of equivalence.
	Tamper bool
	// TamperSite selects the tampered line; empty means SiteEntry.
	TamperSite TamperSite
	// MaxOracleInsts bounds the oracle run (0 = DefaultMaxOracleInsts).
	// Programs that exceed it report VerdictError, not a divergence.
	MaxOracleInsts uint64
	// WatchdogCycles overrides the timed machine's watchdog (0 = the
	// simulator default). The minimizer lowers it so non-terminating
	// shrink candidates fail fast.
	WatchdogCycles uint64
	// MetricsSink, if set, receives the timed run's observability snapshot
	// (hub metrics + fast-path perf counters). It must be safe for
	// concurrent use: sweeps call it from every worker. Attaching the
	// observer does not change the Result — the fast path is pinned
	// cycle-identical with a hub attached — so replay files stay valid.
	// Cache hits produce no snapshot: nothing was simulated.
	MetricsSink func(*obs.Snapshot)
	// Cache, if set, is the campaign result cache: Check consults it before
	// simulating and records fresh results into it, keyed on (CheckSchema,
	// source digest, normalized policy, options, tamper+site). Cached and
	// fresh results are bit-identical — the same determinism the .repro
	// replay corpus pins. Checks with Mutate set bypass the cache (a
	// mutation function has no canonical fingerprint).
	Cache *campaign.Store
	// Oracle, if set, memoizes the in-order oracle leg across checks: the
	// oracle run is policy-independent (up to the architectural PAC mode),
	// so a cross campaign pays it once per seed instead of once per
	// (seed x policy). Checks with Mutate set bypass the memo (mutations
	// may move the digest windows).
	Oracle *OracleMemo
}

// DefaultMaxOracleInsts bounds the in-order oracle: generated programs
// terminate within a few thousand instructions, so anything near this bound
// is a runaway shrink candidate, not a real program.
const DefaultMaxOracleInsts = 2_000_000

// tamperMaxInsts bounds tampered timed runs: a tampered instruction stream
// may do anything, including loop forever without faulting, and the bound
// turns that into a deterministic stop instead of a slow watchdog abort.
const tamperMaxInsts = 100_000

// Result is the outcome of one differential check. All fields are
// deterministic functions of (source, policy, tamper): recorded results
// replay byte-identically.
type Result struct {
	Seed   int64 // generator seed, when the source came from Gen (else 0)
	Policy policy.ControlPoint
	Tamper bool
	// Site is the tampered line's site (SiteEntry when Tamper is set and no
	// site was given; empty for untampered checks).
	Site    TamperSite
	Verdict Verdict
	// Divergence describes the first difference found, empty otherwise.
	Divergence string
	// Reason is the timed machine's stop reason string.
	Reason string
	// Cycles and Insts are the timed run's totals.
	Cycles uint64
	Insts  uint64
	// OracleDigest and SimDigest are hex state digests over registers, OUT
	// log, data segment, and stack (see interp.DigestArchState). For
	// untampered runs with VerdictOK they are equal by construction.
	OracleDigest string
	SimDigest    string
	// Cached marks a result served from the campaign cache rather than a
	// fresh simulation. Not part of the result's identity (cached and fresh
	// results are bit-identical otherwise), so it is excluded from the
	// cache payload.
	Cached bool `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.MaxOracleInsts == 0 {
		o.MaxOracleInsts = DefaultMaxOracleInsts
	}
	if o.Tamper && o.TamperSite == "" {
		o.TamperSite = SiteEntry
	}
	return o
}

// digestRanges returns the memory windows covered by state digests and
// memory comparison: the data segment and the stack.
func digestRanges(p *asm.Program, stackB uint64) []interp.MemRange {
	var out []interp.MemRange
	if len(p.Data) > 0 {
		out = append(out, interp.MemRange{Start: p.DataBase, Len: uint64(len(p.Data))})
	}
	out = append(out, interp.MemRange{Start: sim.StackBase, Len: stackB})
	return out
}

// CheckSeed generates the program for seed and checks it; it returns the
// result (with Seed stamped) and the generated source.
func CheckSeed(seed int64, opt Options) (Result, string) {
	src := GenProgram(seed)
	res := Check(src, opt)
	res.Seed = seed
	return res, src
}

// Check runs one program on the timed out-of-order machine and the in-order
// oracle and diffs every piece of architectural state: stop/fault
// behaviour, committed instruction count, both register files, the OUT log,
// and the final memory image of the data segment and stack. Under Tamper it
// instead asserts the policy's containment invariants (see Verdicts).
//
// With Options.Cache set (and no Mutate), Check first consults the campaign
// result cache and returns the recorded Result on a hit, marked Cached;
// fresh results are recorded for the next campaign. Cached results are
// bit-identical to fresh ones by the same determinism the replay corpus
// pins.
func Check(src string, opt Options) Result {
	opt = opt.withDefaults()
	if opt.Cache != nil && opt.Mutate == nil {
		key := cacheKey(src, opt)
		var cached Result
		if ok, err := opt.Cache.Get(key, &cached); err == nil && ok {
			cached.Cached = true
			return cached
		}
		res := check(src, opt)
		if res.Verdict != "" {
			// Write errors are sticky on the store; campaigns surface them
			// once at the end instead of failing cell by cell.
			_ = opt.Cache.Put(key, res)
		}
		return res
	}
	return check(src, opt)
}

// cacheKey derives the content address of one check. opt must already have
// defaults applied, so the key is canonical: an entry-site tamper always
// records "entry", bounds are always explicit.
func cacheKey(src string, opt Options) campaign.Key {
	k := campaign.Key{
		Check:      CheckSchema,
		Kind:       "fuzz",
		ProgDigest: campaign.Digest([]byte(src)),
		Policy:     opt.Policy.Normalize().String(),
		Options:    fmt.Sprintf("max_oracle=%d watchdog=%d", opt.MaxOracleInsts, opt.WatchdogCycles),
	}
	if opt.Tamper {
		k.Tamper = true
		k.Site = string(opt.TamperSite)
	}
	return k
}

// check is the uncached differential check; opt has defaults applied.
func check(src string, opt Options) Result {
	res := Result{Policy: opt.Policy.Normalize(), Tamper: opt.Tamper, Site: opt.TamperSite}

	p, err := asm.Assemble(src)
	if err != nil {
		res.Verdict = VerdictError
		res.Divergence = "assemble: " + err.Error()
		return res
	}
	if opt.Tamper && opt.TamperSite == SiteData && len(p.Data) == 0 {
		res.Verdict = VerdictError
		res.Divergence = "tamper site data: program has no data segment"
		return res
	}

	cfg := sim.DefaultConfig()
	cfg.Policy = opt.Policy
	if opt.WatchdogCycles > 0 {
		cfg.WatchdogCycles = opt.WatchdogCycles
	}
	if opt.Tamper {
		cfg.MaxInsts = tamperMaxInsts
		// The data-site verdict depends on whether the tampered line ever
		// reached the bus; keep the adversary trace for that check.
		if opt.TamperSite == SiteData {
			cfg.TraceBus = true
		}
		// The tree site attacks the tree's node storage, so the tree
		// integrity scheme must be on regardless of the base config.
		if opt.TamperSite == SiteTree {
			cfg.Sec.UseTree = true
		}
	}
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}
	ranges := digestRanges(p, cfg.StackB)

	// Oracle leg. Tamper runs still record the untampered reference digest:
	// it is the state the machine would have to "commit" for a containment
	// break to go unnoticed. The oracle's pointer-authentication mode must
	// match the timed machine's: auth-failure behaviour is architectural.
	// The leg is policy-independent beyond that mode, so a memo shares it
	// across the policies of a cross campaign.
	mode := pacModeFor(res.Policy)
	var oracle *oracleState
	if opt.Oracle != nil && opt.Mutate == nil {
		oracle = opt.Oracle.run(src, p, mode, opt.MaxOracleInsts, ranges)
	} else {
		oracle = runOracle(p, mode, opt.MaxOracleInsts, ranges)
	}
	if oracle.stop == interp.StopMaxInsts {
		res.Verdict = VerdictError
		res.Divergence = fmt.Sprintf("oracle did not terminate within %d instructions", opt.MaxOracleInsts)
		return res
	}
	res.OracleDigest = hex.EncodeToString(oracle.digest[:])

	m, err := sim.NewMachine(cfg, p)
	if err != nil {
		res.Verdict = VerdictError
		res.Divergence = "machine: " + err.Error()
		return res
	}
	if opt.Tamper {
		entryLine := p.Entry &^ 63
		switch opt.TamperSite {
		case SiteData:
			// One bit flipped in the encrypted first data line: tainted at
			// rest, fetched only if the program touches it.
			m.Memory.XorRange(p.DataBase, []byte{0x40})
		case SiteMac:
			// One bit flipped in the stored MAC of the entry line; the data
			// and its counter stay intact.
			macAddr, ok := m.Ctrl.MacAddrOf(entryLine)
			if !ok {
				res.Verdict = VerdictError
				res.Divergence = "tamper site mac: entry line has no flat MAC (tree mode?)"
				return res
			}
			m.Ctrl.Memory().XorRange(macAddr, []byte{0x40})
		case SiteCtr:
			// Counter replay: roll the entry line's write counter forward so
			// decryption uses the wrong pad.
			e := m.Ctrl.Encryptor()
			e.SetCounter(entryLine, e.Counter(entryLine)+1)
		case SiteTree:
			// One bit flipped in the entry line's leaf digest node inside the
			// MAC tree's (untrusted) node storage.
			idx, ok := m.Ctrl.LeafIndex(entryLine)
			if !ok {
				res.Verdict = VerdictError
				res.Divergence = "tamper site tree: entry line is not a protected leaf"
				return res
			}
			m.Ctrl.Tree().TamperNode(mactree.NodeID{Level: 0, Index: idx}, []byte{0x40})
		default:
			// One bit flipped in the encrypted text line holding the entry
			// point: the first instruction fetched is guaranteed tainted.
			m.Memory.XorRange(p.Entry, []byte{0x40})
		}
	}
	var hub *obs.Hub
	if opt.MetricsSink != nil {
		hub = obs.NewHub(nil, true)
		m.SetObserver(hub)
		m.EnablePerf()
	}
	simRes, runErr := m.Run()
	res.Reason = simRes.Reason.String()
	res.Cycles = simRes.Cycles
	res.Insts = simRes.Insts
	sd := m.ArchDigest(ranges...)
	res.SimDigest = hex.EncodeToString(sd[:])
	if hub != nil {
		snap := hub.Snapshot()
		m.Perf().AddTo(snap)
		opt.MetricsSink(snap)
	}

	if opt.Tamper {
		switch opt.TamperSite {
		case SiteData:
			return checkTamperData(res, m, simRes, p.DataBase&^63)
		case SiteMac, SiteTree:
			return checkTamperMeta(res, m, simRes, oracle, ranges)
		default: // entry, ctr: the fetched instruction stream is garbage
			return checkTamper(res, m, simRes)
		}
	}
	if runErr != nil && simRes.Reason == sim.StopModelError {
		res.Verdict = VerdictError
		res.Divergence = "model error: " + runErr.Error()
		return res
	}
	if d := compare(oracle, m, simRes, ranges); d != "" {
		res.Verdict = VerdictDivergence
		res.Divergence = d
		return res
	}
	res.Verdict = VerdictOK
	return res
}

// pacModeFor maps policy knobs to the architectural auth-failure mode, the
// same mapping the simulator's applyPolicy uses.
func pacModeFor(pt policy.ControlPoint) pacmac.Mode {
	k := pt.Knobs()
	switch {
	case k.PACFault:
		return pacmac.ModeFaultAuth
	case k.PAC:
		return pacmac.ModePoison
	default:
		return pacmac.ModeOff
	}
}

// checkTamperMeta asserts the invariants of a run whose integrity metadata
// (stored MAC or tree node) was tampered while the data and counter stayed
// intact. The fetched plaintext is bit-identical to the untampered image, so
// under the baseline the run must be architecturally equivalent to the
// oracle; any authenticating policy must flag the entry line the moment it
// verifies, and issue/commit gates must contain it with zero commits.
func checkTamperMeta(res Result, m *sim.Machine, simRes sim.Result, oracle *oracleState, ranges []interp.MemRange) Result {
	k := res.Policy.Knobs()
	if !k.Authenticate {
		// Baseline: the metadata is never read, so the tamper must be
		// completely invisible — full architectural equivalence.
		if d := compare(oracle, m, simRes, ranges); d != "" {
			res.Verdict = VerdictDivergence
			res.Divergence = "metadata tamper perturbed an unauthenticated run: " + d
			return res
		}
		res.Verdict = VerdictUndetected
		return res
	}
	if m.Ctrl.Fault() == nil {
		res.Verdict = VerdictDivergence
		res.Divergence = "tampered integrity metadata of the entry line was never flagged by verification"
		return res
	}
	if k.GateIssue || k.GateCommit {
		if simRes.Reason != sim.StopSecurityFault {
			res.Verdict = VerdictDivergence
			res.Divergence = fmt.Sprintf("issue/commit-gated policy stopped with %v, want security-fault", simRes.Reason)
			return res
		}
		if simRes.Insts != 0 {
			res.Verdict = VerdictDivergence
			res.Divergence = fmt.Sprintf("issue/commit-gated policy committed %d instructions before the metadata fault", simRes.Insts)
			return res
		}
		res.Verdict = VerdictContained
		return res
	}
	if simRes.Reason == sim.StopSecurityFault {
		res.Verdict = VerdictContained
		return res
	}
	res.Verdict = VerdictDetected
	return res
}

// checkTamper asserts the metamorphic containment invariants of a tampered
// run: gated policies never commit tampered-but-unverified state.
func checkTamper(res Result, m *sim.Machine, simRes sim.Result) Result {
	k := res.Policy.Knobs()
	if !k.Authenticate {
		// Baseline: nothing verifies, so nothing can be asserted beyond
		// determinism. The tamper executing unnoticed is the vulnerability
		// the paper measures, not a bug in the model.
		res.Verdict = VerdictUndetected
		return res
	}
	// Every authenticating policy must at least flag the tampered line: the
	// entry line is always fetched, always enqueued, always verified.
	if m.Ctrl.Fault() == nil {
		res.Verdict = VerdictDivergence
		res.Divergence = "tampered entry line was fetched but never flagged by verification"
		return res
	}
	if k.GateIssue || k.GateCommit {
		// Containment gates: the tainted entry instruction may not issue
		// (then-issue) or retire (then-commit) before its line verifies, and
		// its verification fails — so the run must end in a security fault
		// with zero instructions committed.
		if simRes.Reason != sim.StopSecurityFault {
			res.Verdict = VerdictDivergence
			res.Divergence = fmt.Sprintf("issue/commit-gated policy stopped with %v, want security-fault", simRes.Reason)
			return res
		}
		if simRes.Insts != 0 {
			res.Verdict = VerdictDivergence
			res.Divergence = fmt.Sprintf("issue/commit-gated policy committed %d tainted instructions before the fault", simRes.Insts)
			return res
		}
		res.Verdict = VerdictContained
		return res
	}
	// Weaker points (authen-only, write/fetch gates): detection is
	// guaranteed, containment is not — execution may run ahead and even
	// halt before the exception fires. That gap is the paper's Table 2.
	if simRes.Reason == sim.StopSecurityFault {
		res.Verdict = VerdictContained
		return res
	}
	res.Verdict = VerdictDetected
	return res
}

// checkTamperData asserts the containment invariants of a run whose first
// data line was tampered at rest. Unlike the entry line, a data line is not
// guaranteed to be fetched — the program may never touch it — so the
// invariants are conditional: the controller computes verification eagerly
// at fetch, so a fetched tampered line must always be flagged; gated
// policies contain the failure when it fires before the run ends. The
// strong zero-commits assertion of the entry site does not carry over: the
// line may be fetched late in the run, or only by a squashed wrong-path
// access that no retiring instruction depends on.
func checkTamperData(res Result, m *sim.Machine, simRes sim.Result, lineAddr uint64) Result {
	k := res.Policy.Knobs()
	if !k.Authenticate {
		// Baseline: nothing verifies; whatever garbage the tampered line
		// decrypts to is the vulnerability, not a model bug.
		res.Verdict = VerdictUndetected
		return res
	}
	if m.Ctrl.Fault() == nil {
		// Eager verification means fetched => flagged; an unflagged run is
		// only legitimate if the tampered line never reached the bus.
		for _, a := range m.ReadLineAddrsBefore(sim.StopCycle(simRes)) {
			if a == lineAddr {
				res.Verdict = VerdictDivergence
				res.Divergence = "tampered data line was fetched but never flagged by verification"
				return res
			}
		}
		res.Verdict = VerdictOK // line never fetched: nothing to assert
		return res
	}
	if simRes.Reason == sim.StopSecurityFault {
		res.Verdict = VerdictContained
		return res
	}
	res.Verdict = VerdictDetected
	return res
}

// compare diffs the architectural outcome of the timed run against the
// oracle snapshot and returns a description of the first difference ("" if
// equivalent).
func compare(oracle *oracleState, m *sim.Machine, simRes sim.Result, ranges []interp.MemRange) string {
	switch oracle.stop {
	case interp.StopHalt:
		if simRes.Reason != sim.StopHalt {
			return fmt.Sprintf("core stopped with %v, oracle halted", simRes.Reason)
		}
		if simRes.Insts != oracle.insts {
			return fmt.Sprintf("committed %d insts, oracle executed %d", simRes.Insts, oracle.insts)
		}
	case interp.StopFault:
		// Precise exceptions: the committed state at the fault must match
		// the oracle's state before the faulting instruction. Instruction
		// counts differ by convention (the oracle counts the faulting
		// instruction; the pipeline never commits it), so they are not
		// compared here.
		if simRes.Reason != sim.StopArchFault {
			return fmt.Sprintf("core stopped with %v, oracle faulted (%s at %#x)", simRes.Reason, oracle.faultKind, oracle.faultAddr)
		}
	}
	for r := uint8(0); r < isa.NumIntRegs; r++ {
		if got, want := m.Core.Reg(r), oracle.regs[r]; got != want {
			return fmt.Sprintf("r%d = %#x, oracle %#x", r, got, want)
		}
	}
	for r := uint8(0); r < isa.NumFPRegs; r++ {
		if got, want := m.Core.FReg(r), oracle.fregs[r]; got != want {
			return fmt.Sprintf("f%d = %#x, oracle %#x", r, got, want)
		}
	}
	outs := m.Core.OutLog()
	if len(outs) != len(oracle.outs) {
		return fmt.Sprintf("%d OUTs, oracle %d", len(outs), len(oracle.outs))
	}
	for i := range outs {
		if outs[i].Port != oracle.outs[i].Port || outs[i].Val != oracle.outs[i].Val {
			return fmt.Sprintf("out[%d] = (%#x,%#x), oracle (%#x,%#x)",
				i, outs[i].Port, outs[i].Val, oracle.outs[i].Port, oracle.outs[i].Val)
		}
	}
	for ri, rg := range ranges {
		for off := uint64(0); off < rg.Len; off += 8 {
			n := 8
			if rg.Len-off < 8 {
				n = int(rg.Len - off)
			}
			got := m.Shadow.ReadUint(rg.Start+off, n)
			want := oracle.readUint(ri, off, n)
			if got != want {
				return fmt.Sprintf("mem[%#x] = %#x, oracle %#x", rg.Start+off, got, want)
			}
		}
	}
	return ""
}
