package diffcheck

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"authpoint/internal/harness"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/telemetry"
)

// MaxSeedRange bounds how many seeds one -seeds flag may expand to. The
// explicit list is materialized up front, so an unbounded range would OOM the
// CLI before any work starts; 1<<24 (~16.7M) seeds is comfortably past the
// nightly tens-of-thousands shape while still only ~128MB of list.
const MaxSeedRange = 1 << 24

// ParseSeedRange parses an inclusive "lo:hi" seed-range flag into the
// explicit seed list — the -seeds grammar shared by the fuzzing and
// verification CLIs. A bare "42" is shorthand for "42:42".
func ParseSeedRange(s string) ([]int64, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seeds %q: want lo:hi or a single seed", s)
		}
		return []int64{v}, nil
	}
	l, err1 := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
	h, err2 := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
	if err1 != nil || err2 != nil || h < l {
		return nil, fmt.Errorf("seeds %q: want lo:hi with hi >= lo", s)
	}
	// h-l+1 overflows int64 for wide ranges (e.g. the full int64 span),
	// flipping the make cap negative; compute the width in uint64, where
	// two's-complement subtraction is exact for any l <= h.
	if width := uint64(h) - uint64(l); width >= MaxSeedRange {
		return nil, fmt.Errorf("seeds %q: range spans more than %d seeds", s, MaxSeedRange)
	}
	out := make([]int64, 0, h-l+1)
	for v := l; v <= h; v++ {
		out = append(out, v)
	}
	return out, nil
}

// Cell is one unit of fuzz work: a seed checked under one policy. Site
// selects the tamper site for tamper cells; empty means SiteEntry.
type Cell struct {
	Seed   int64
	Policy policy.ControlPoint
	Tamper bool
	Site   TamperSite
}

// EffectiveSite is the site a check of this cell records: tamper cells
// default to the entry site, untampered cells have none. This is the Site
// value the cell's ledger record carries, so resume joins on it.
func (c Cell) EffectiveSite() TamperSite {
	if !c.Tamper {
		return ""
	}
	if c.Site == "" {
		return SiteEntry
	}
	return c.Site
}

// WithSite returns the cells with every tamper cell retargeted to site.
// Non-tamper cells are unchanged.
func WithSite(cells []Cell, site TamperSite) []Cell {
	out := make([]Cell, len(cells))
	for i, c := range cells {
		if c.Tamper {
			c.Site = site
		}
		out[i] = c
	}
	return out
}

// PairCells spreads seeds round-robin over the policies: seed i runs under
// policies[i mod len]. This is the CI smoke shape — every seed checked
// once, every policy exercised continuously — at 1/len(policies) the cost
// of the full cross product.
func PairCells(seeds []int64, pols []policy.ControlPoint, tamper bool) []Cell {
	out := make([]Cell, len(seeds))
	for i, s := range seeds {
		out[i] = Cell{Seed: s, Policy: pols[i%len(pols)], Tamper: tamper}
	}
	return out
}

// CrossCells is the full cross product: every seed under every policy.
func CrossCells(seeds []int64, pols []policy.ControlPoint, tamper bool) []Cell {
	out := make([]Cell, 0, len(seeds)*len(pols))
	for _, s := range seeds {
		for _, p := range pols {
			out = append(out, Cell{Seed: s, Policy: p, Tamper: tamper})
		}
	}
	return out
}

// Finding is a cell whose check did not come back clean, with the program
// that provoked it.
type Finding struct {
	Result Result
	Source string
}

// IsFinding reports whether a verdict is a finding. Tamper verdicts other
// than divergence are expected outcomes, not findings.
func IsFinding(v Verdict) bool { return v == VerdictDivergence || v == VerdictError }

// bad is the sweep-internal alias for IsFinding.
func bad(v Verdict) bool { return IsFinding(v) }

// SweepObs carries the campaign-level observability hooks of a sweep: the
// telemetry ledger and progress meter, and an optional merged metrics
// snapshot across every cell. All fields are optional; the zero value (or a
// nil *SweepObs) observes nothing.
type SweepObs struct {
	// Ledger receives one record per cell, sequence-numbered in cell order.
	Ledger *telemetry.Ledger
	// Meter is fed one tick per finished cell.
	Meter *telemetry.Meter
	// CollectMetrics attaches an observability hub to every timed run and
	// merges the per-cell snapshots; Metrics returns the merged result.
	CollectMetrics bool

	mu     sync.Mutex
	merged *obs.Snapshot
}

// Sink folds one cell's snapshot into the campaign aggregate. Safe for
// concurrent use (diffcheck.Options.MetricsSink requires it).
func (s *SweepObs) Sink(snap *obs.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.merged == nil {
		s.merged = snap
		return
	}
	// Merge only errors on histogram bucket-bound mismatches, which cannot
	// happen here: every cell uses the Hub's fixed bucket sets.
	_ = s.merged.Merge(snap)
}

// Metrics returns the merged campaign snapshot (nil unless CollectMetrics
// was set and at least one cell ran).
func (s *SweepObs) Metrics() *obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.merged
}

// Sweep checks every cell on the harness worker pool (parallelism <= 0
// means NumCPU) and returns per-cell results in cell order plus the
// findings, sorted by (seed, policy) for determinism. Cells skipped because
// ctx expired have an empty Verdict; the ctx error is returned so callers
// can distinguish "clean" from "clean so far, budget exhausted".
func Sweep(ctx context.Context, cells []Cell, opt Options, parallelism int) ([]Result, []Finding, error) {
	return SweepObserved(ctx, cells, opt, parallelism, nil)
}

// SweepObserved is Sweep with campaign telemetry: per-cell ledger records
// (including explicit "skipped" records for cells the budget never ran, so a
// ledger doubles as a resume checkpoint), live progress, and (optionally)
// merged observability metrics. When the cell list repeats seeds (a cross
// campaign) and the caller supplied no oracle memo, one is attached so the
// policy-independent oracle leg runs once per seed.
func SweepObserved(ctx context.Context, cells []Cell, opt Options, parallelism int, so *SweepObs) ([]Result, []Finding, error) {
	runner := &harness.Runner{Parallelism: parallelism}
	var seqBase uint64
	if so != nil {
		runner.Meter = so.Meter
		if so.Ledger != nil {
			seqBase = so.Ledger.ReserveSeq(len(cells))
		}
		if so.CollectMetrics {
			opt.MetricsSink = so.Sink
		}
	}
	if opt.Oracle == nil && seedsRepeat(cells) {
		opt.Oracle = NewOracleMemo(0)
	}
	results := make([]Result, len(cells))
	var (
		mu       sync.Mutex
		findings []Finding
	)
	err := runner.Do(ctx, len(cells), func(ctx context.Context, i int) error {
		if ctx.Err() != nil {
			return nil // budget expired while queued: leave the cell empty
		}
		c := cells[i]
		o := opt
		o.Policy = c.Policy
		o.Tamper = c.Tamper
		o.TamperSite = c.Site
		start := time.Now()
		res, src := CheckSeed(c.Seed, o)
		results[i] = res
		if so != nil && so.Ledger != nil {
			so.Ledger.Emit(telemetry.Record{
				Seq:       seqBase + uint64(i),
				Kind:      "fuzz",
				Policy:    c.Policy.String(),
				Seed:      c.Seed,
				Tamper:    c.Tamper,
				Site:      string(res.Site),
				Verdict:   string(res.Verdict),
				SimCycles: res.Cycles,
				Insts:     res.Insts,
				HostNs:    time.Since(start).Nanoseconds(),
				Worker:    telemetry.Worker(ctx),
				Cached:    res.Cached,
			})
		}
		if bad(res.Verdict) {
			mu.Lock()
			findings = append(findings, Finding{Result: res, Source: src})
			mu.Unlock()
		}
		return nil
	})
	// Cells the budget (or a fail-fast cancel) never ran get explicit
	// skipped records: without them a budget-expired ledger has silent
	// sequence holes, indistinguishable from a truncated file — and resume
	// could not tell skipped from done.
	if so != nil && so.Ledger != nil {
		for i, r := range results {
			if r.Verdict != "" {
				continue
			}
			c := cells[i]
			so.Ledger.Emit(telemetry.Record{
				Seq:     seqBase + uint64(i),
				Kind:    "fuzz",
				Policy:  c.Policy.String(),
				Seed:    c.Seed,
				Tamper:  c.Tamper,
				Site:    string(c.EffectiveSite()),
				Verdict: telemetry.VerdictSkipped,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Result, findings[j].Result
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Policy.String() < b.Policy.String()
	})
	return results, findings, err
}

// seedsRepeat reports whether any seed appears in more than one cell — the
// shape under which an oracle memo pays for itself.
func seedsRepeat(cells []Cell) bool {
	seen := make(map[int64]bool, len(cells))
	for _, c := range cells {
		if seen[c.Seed] {
			return true
		}
		seen[c.Seed] = true
	}
	return false
}
