// Observer non-perturbation pins: attaching the observability surface — an
// obs.Hub sink plus the fast-path perf-counter block — must not change what
// the machine computes. The fast path stays cycle-identical and
// digest-identical with a hub watching every component, and the counters it
// reports stay mutually consistent with the hub's event-derived metrics.
package sim_test

import (
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/diffcheck"
	"authpoint/internal/interp"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// runObserved executes p under cfg with a metrics hub and perf counters
// attached (slow selects the reference path) and returns the result, digest,
// hub snapshot, and perf block.
func runObserved(t *testing.T, cfg sim.Config, p *asm.Program, slow bool) (sim.Result, [32]byte, *obs.Snapshot, *obs.Perf) {
	t.Helper()
	m, err := sim.NewMachine(cfg, p)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	hub := obs.NewHub(nil, true)
	m.SetObserver(hub)
	perf := m.EnablePerf()
	if slow {
		m.DisableFastPath()
	}
	res, runErr := m.Run()
	if runErr != nil && res.Reason != sim.StopWatchdog {
		t.Fatalf("observed run (slow=%v): %v", slow, runErr)
	}
	dig := m.ArchDigest(interp.MemRange{Start: p.DataBase, Len: uint64(len(p.Data))})
	return res, dig, hub.Snapshot(), perf
}

// TestFastPathObserverNonPerturbing drives the random-program suite through
// every ci-policy point twice on the fast path — bare, and with a hub plus
// perf counters attached — and requires bit-identical results and digests.
// The observability layer is read-only by construction (counters and event
// emission never feed back into timing); this pins it.
func TestFastPathObserverNonPerturbing(t *testing.T) {
	points, err := policy.ParseSet("ci")
	if err != nil {
		t.Fatal(err)
	}
	seeds := int64(50)
	if testing.Short() {
		seeds = 8
	}
	var totalSkip, totalUop uint64
	for seed := int64(1); seed <= seeds; seed++ {
		p, err := asm.Assemble(diffcheck.GenProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		for _, pt := range points {
			cfg := sim.DefaultConfig()
			cfg.Policy = pt
			bare, _, bareDig, _ := runBoth(t, cfg, p)
			obsRes, obsDig, snap, perf := runObserved(t, cfg, p, false)
			if obsRes != bare {
				t.Errorf("seed %d under %v: observed fast path diverges from bare\nbare     %+v\nobserved %+v",
					seed, pt, bare, obsRes)
			}
			if obsDig != bareDig {
				t.Errorf("seed %d under %v: observed arch digest diverges", seed, pt)
			}
			checkPerfConsistent(t, snap, perf)
			totalSkip += perf.SkipCycles
			totalUop += perf.UopHits
		}
	}
	// The suite as a whole must actually exercise the counted machinery.
	if totalSkip == 0 {
		t.Error("no cycles fast-forwarded across the whole suite; skip counters untested")
	}
	if totalUop == 0 {
		t.Error("no µop-cache hits across the whole suite; uop counters untested")
	}
}

// TestSlowPathObserverNonPerturbing covers the reference path: a hub and
// perf block attached to the per-cycle loop must not change its results
// either, and with the µop cache detached every decode counts as nocache.
func TestSlowPathObserverNonPerturbing(t *testing.T) {
	w := workload.All()[0]
	p, err := asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Policy = policy.ThenCommit
	cfg.MaxInsts = 20_000
	_, slowBare, _, slowBareDig := runBoth(t, cfg, p)
	obsRes, obsDig, snap, perf := runObserved(t, cfg, p, true)
	if obsRes != slowBare {
		t.Errorf("observed slow path diverges from bare\nbare     %+v\nobserved %+v", slowBare, obsRes)
	}
	if obsDig != slowBareDig {
		t.Errorf("observed slow-path arch digest diverges")
	}
	checkPerfConsistent(t, snap, perf)
	if perf.UopHits != 0 || perf.UopMisses != 0 {
		t.Errorf("slow path counted µop-cache traffic: hits=%d misses=%d", perf.UopHits, perf.UopMisses)
	}
	if perf.UopNoCache == 0 {
		t.Error("slow path counted no cache-less decodes")
	}
	if perf.SkipCalls != 0 {
		t.Errorf("slow path fast-forwarded %d times", perf.SkipCalls)
	}
}

// checkPerfConsistent cross-checks the inline perf counters against the
// hub's event-derived view of the same machinery: total skipped cycles must
// agree between Core.SkipTo accounting, the per-bound attribution, and the
// EvSkip events the hub folded into its counters.
func checkPerfConsistent(t *testing.T, snap *obs.Snapshot, perf *obs.Perf) {
	t.Helper()
	var boundSum uint64
	for b := obs.SkipBound(0); b < obs.NumSkipBounds; b++ {
		boundSum += perf.SkipBoundCycles[b]
	}
	if boundSum != perf.SkipCycles {
		t.Errorf("skip attribution leak: bounds sum %d, SkipCycles %d", boundSum, perf.SkipCycles)
	}
	if snap == nil {
		t.Fatal("metrics hub returned no snapshot")
	}
	if hubSkip := snap.Counters[obs.MetricSkippedCycles]; hubSkip != perf.SkipCycles {
		t.Errorf("hub saw %d skipped cycles, perf counted %d", hubSkip, perf.SkipCycles)
	}
	if hubSkips := snap.Counters[obs.MetricSkips]; hubSkips != perf.SkipCalls {
		t.Errorf("hub saw %d skips, perf counted %d", hubSkips, perf.SkipCalls)
	}
	if perf.Wakes+perf.StaleWakes != perf.ConsumerVisits {
		t.Errorf("wakeup accounting leak: wakes %d + stale %d != visits %d",
			perf.Wakes, perf.StaleWakes, perf.ConsumerVisits)
	}
}
