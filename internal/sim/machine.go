package sim

import (
	"fmt"

	"authpoint/internal/asm"
	"authpoint/internal/bus"
	"authpoint/internal/cryptoengine/pacmac"
	"authpoint/internal/dram"
	"authpoint/internal/isa"
	"authpoint/internal/mem"
	"authpoint/internal/obs"
	"authpoint/internal/pipeline"
	"authpoint/internal/policy"
	"authpoint/internal/secmem"
)

// Scheme names one of the paper's seven evaluated control points.
//
// Deprecated: Scheme is a closed enum kept as a thin shim over the open
// policy layer; it resolves through the policy registry (see Policy and
// Config.ControlPoint). New code should set Config.Policy with a
// policy.ControlPoint, which also expresses compositions the enum cannot
// (then-write+fetch, then-issue+obfuscation, any 3-way combo).
type Scheme int

// The evaluated design points (Section 4.2 + 4.3 of the paper).
const (
	// SchemeBaseline is decryption only, no integrity verification — the
	// normalization baseline of every figure.
	SchemeBaseline Scheme = iota
	// SchemeThenIssue gates instruction issue and operand use on completed
	// verification (authen-then-issue).
	SchemeThenIssue
	// SchemeThenWrite holds committed stores until their authentication tag
	// clears (authen-then-write).
	SchemeThenWrite
	// SchemeThenCommit gates instruction retirement on verification of the
	// instruction and its operands (authen-then-commit).
	SchemeThenCommit
	// SchemeThenFetch holds new external fetches until the authentication
	// queue has drained the requests outstanding at fetch creation
	// (authen-then-fetch).
	SchemeThenFetch
	// SchemeCommitPlusFetch combines then-commit and then-fetch — the
	// paper's recommended secure-and-fast point.
	SchemeCommitPlusFetch
	// SchemeCommitPlusObfuscation combines then-commit with HIDE-style
	// address obfuscation (re-map cache).
	SchemeCommitPlusObfuscation
)

// Schemes lists every scheme in presentation order.
var Schemes = []Scheme{
	SchemeBaseline, SchemeThenIssue, SchemeThenWrite, SchemeThenCommit,
	SchemeThenFetch, SchemeCommitPlusFetch, SchemeCommitPlusObfuscation,
}

func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeThenIssue:
		return "authen-then-issue"
	case SchemeThenWrite:
		return "authen-then-write"
	case SchemeThenCommit:
		return "authen-then-commit"
	case SchemeThenFetch:
		return "authen-then-fetch"
	case SchemeCommitPlusFetch:
		return "commit+fetch"
	case SchemeCommitPlusObfuscation:
		return "commit+obfuscation"
	}
	return "?"
}

// Policy maps the legacy enum value onto its lattice point.
func (s Scheme) Policy() policy.ControlPoint {
	switch s {
	case SchemeThenIssue:
		return policy.ThenIssue
	case SchemeThenWrite:
		return policy.ThenWrite
	case SchemeThenCommit:
		return policy.ThenCommit
	case SchemeThenFetch:
		return policy.ThenFetch
	case SchemeCommitPlusFetch:
		return policy.CommitPlusFetch
	case SchemeCommitPlusObfuscation:
		return policy.CommitPlusObfuscation
	}
	return policy.Baseline
}

// ParseScheme resolves a scheme name through the policy registry, so the
// `-scheme` flags and `-json` output are guaranteed mutually consistent:
// every Scheme.String() rendering parses back to the same enum value (the
// legacy "commit+fetch" short names included). Names that resolve to a
// lattice point outside the legacy seven are rejected here — use
// policy.Parse and Config.Policy for those.
func ParseScheme(name string) (Scheme, error) {
	p, err := policy.Parse(name)
	if err != nil {
		return 0, err
	}
	if s, ok := SchemeForPolicy(p); ok {
		return s, nil
	}
	return 0, fmt.Errorf("sim: %q is not one of the legacy schemes %v (set Config.Policy for composed control points)", name, Schemes)
}

// SchemeForPolicy maps a lattice point back onto the legacy enum, when the
// point is one of the seven evaluated schemes.
func SchemeForPolicy(p policy.ControlPoint) (Scheme, bool) {
	p = p.Normalize()
	for _, s := range Schemes {
		if s.Policy() == p {
			return s, true
		}
	}
	return 0, false
}

// Config is the full machine configuration.
type Config struct {
	Pipeline pipeline.Config
	Mem      MemConfig
	Sec      secmem.Config
	DRAM     dram.Config
	Bus      bus.Config

	// Policy is the authentication control point: any point of the
	// composable gate lattice (see internal/policy). The zero value is the
	// decrypt-only baseline. The gate knobs on Pipeline, Mem, and Sec are
	// overwritten from this policy when the machine is built — they are set
	// only through the policy layer.
	Policy policy.ControlPoint

	// Scheme is the legacy closed enum of the paper's seven points.
	//
	// Deprecated: kept as a shim; it is consulted only when Policy is the
	// zero value, and resolves through the policy registry. Set Policy.
	Scheme Scheme

	// StackB is the protected stack region size.
	StackB uint64

	// MaxInsts stops the run after this many committed instructions
	// (0 = run to HALT).
	MaxInsts uint64

	// WatchdogCycles aborts if no instruction commits for this long.
	WatchdogCycles uint64

	// TraceBus keeps the full bus trace (attack experiments need it; long
	// performance runs turn it off).
	TraceBus bool
}

// DefaultConfig returns the paper's Table 3 machine, baseline scheme.
func DefaultConfig() Config {
	return Config{
		Pipeline:       pipeline.DefaultConfig(),
		Mem:            DefaultMemConfig(),
		Sec:            secmem.DefaultConfig(),
		DRAM:           dram.Default(),
		Bus:            bus.Default(),
		Scheme:         SchemeBaseline,
		StackB:         64 << 10,
		WatchdogCycles: 2_000_000,
		TraceBus:       false,
	}
}

// ControlPoint resolves the effective policy: Policy when set, otherwise
// the deprecated Scheme shim through the registry. The result is
// normalized (any gate implies Authenticate).
func (c Config) ControlPoint() policy.ControlPoint {
	if c.Policy == (policy.ControlPoint{}) {
		return c.Scheme.Policy()
	}
	return c.Policy.Normalize()
}

// applyPolicy copies the resolved control point's knobs onto the component
// configs, overwriting whatever was there: the gate knobs are owned by the
// policy layer.
func (c *Config) applyPolicy() {
	p := c.ControlPoint()
	c.Policy = p
	k := p.Knobs()
	c.Sec.Authenticate = k.Authenticate
	c.Sec.Remap = k.Remap
	c.Pipeline.GateIssue = k.GateIssue
	c.Pipeline.GateCommit = k.GateCommit
	c.Pipeline.StoreWaitAuth = k.StoreWaitAuth
	c.Mem.GateFetch = k.GateFetch
	c.Mem.UseAtAuth = k.UseAtAuth
	switch {
	case k.PACFault:
		c.Pipeline.PACMode = pacmac.ModeFaultAuth
	case k.PAC:
		c.Pipeline.PACMode = pacmac.ModePoison
	default:
		c.Pipeline.PACMode = pacmac.ModeOff
	}
}

// StopReason says why a run ended.
type StopReason int

// Stop reasons.
const (
	StopHalt StopReason = iota
	StopMaxInsts
	StopSecurityFault // integrity verification failed
	StopArchFault     // precise architectural exception
	StopWatchdog
	StopModelError // internal model inconsistency (e.g. malformed gate dependency)
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopMaxInsts:
		return "max-insts"
	case StopSecurityFault:
		return "security-fault"
	case StopArchFault:
		return "arch-fault"
	case StopWatchdog:
		return "watchdog"
	case StopModelError:
		return "model-error"
	}
	return "?"
}

// Result summarizes a run.
type Result struct {
	Reason StopReason
	Cycles uint64
	Insts  uint64
	IPC    float64

	SecurityFault *secmem.Fault
	ArchFault     pipeline.FaultKind
	ArchFaultAddr uint64

	Core pipeline.Stats
	Sec  secmem.Stats
}

// Machine is a fully assembled secure processor system.
type Machine struct {
	Cfg    Config
	Core   *pipeline.Core
	MS     *MemSystem
	Ctrl   *secmem.Controller
	Bus    *bus.Bus
	DRAM   *dram.DRAM
	Memory *mem.Memory // external (ciphertext) memory
	Shadow *mem.Memory // architectural plaintext
	Space  *mem.AddressSpace

	Prog *asm.Program

	// slowPath forces the reference cycle-by-cycle interpretation (no
	// idle-cycle fast-forward, no µop cache). See DisableFastPath.
	slowPath bool

	// sink is the observer attached via SetObserver, retained so Run can
	// emit machine-level events (EvSkip fast-forward spans).
	sink obs.Sink
	// perf is the fast-path perf-counter block (nil = counting off).
	perf *obs.Perf
}

// Keys used for every machine (the secrecy of the experiment does not
// depend on them; the adversary never needs them).
var (
	encKey = []byte("authpoint-encryption-key-256bit!")
	macKey = []byte("authpoint-integrity--key-256bit!")
)

// NewMachine builds a machine and loads the program.
func NewMachine(cfg Config, p *asm.Program) (*Machine, error) {
	return NewMachineWithRegions(cfg, p, nil)
}

const stackBase = 0x700000

// StackBase is the base address of the protected stack region. The
// functional oracle (internal/interp) maps its stack at the same address,
// so differential state digests can cover the stack window on both sides.
const StackBase = stackBase

func (m *Machine) stackTop() uint64 { return stackBase + m.Cfg.StackB - 64 }

// load protects and installs the program image: text, data, and stack.
func (m *Machine) load(p *asm.Program) error {
	lb := uint64(m.Cfg.Mem.L2LineB)
	alignUp := func(v uint64) uint64 { return (v + lb - 1) &^ (lb - 1) }
	alignDn := func(v uint64) uint64 { return v &^ (lb - 1) }

	text := p.TextBytes()
	regions := []struct {
		start uint64
		size  uint64
	}{
		{alignDn(p.TextBase), alignUp(p.TextBase+uint64(len(text))) - alignDn(p.TextBase)},
		{alignDn(p.DataBase), alignUp(p.DataBase+uint64(max(len(p.Data), 1))) - alignDn(p.DataBase)},
		{stackBase, m.Cfg.StackB},
	}
	for _, r := range regions {
		if r.size == 0 {
			continue
		}
		if err := m.Ctrl.Protect(r.start, r.size); err != nil {
			return err
		}
		m.Space.MapRange(r.start, r.size)
	}
	if err := m.Ctrl.FinishProtection(); err != nil {
		return err
	}
	if err := m.Ctrl.LoadPlain(p.TextBase, text); err != nil {
		return err
	}
	if len(p.Data) > 0 {
		if err := m.Ctrl.LoadPlain(p.DataBase, p.Data); err != nil {
			return err
		}
	}
	m.Shadow.Write(p.TextBase, text)
	m.Shadow.Write(p.DataBase, p.Data)
	return nil
}

// Region is an extra protected+mapped address range.
type Region struct {
	Start uint64
	Size  uint64
}

// NewMachineWithRegions is NewMachine plus extra protected regions (probe
// windows for the attack experiments).
func NewMachineWithRegions(cfg Config, p *asm.Program, extra []Region) (*Machine, error) {
	cfg.applyPolicy()
	physical := mem.New()
	b, err := bus.New(cfg.Bus)
	if err != nil {
		return nil, err
	}
	b.SetTracing(cfg.TraceBus)
	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	cfg.Sec.LineB = cfg.Mem.L2LineB
	ctrl, err := secmem.New(cfg.Sec, physical, b, d, encKey, macKey)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg: cfg, Ctrl: ctrl, Bus: b, DRAM: d,
		Memory: physical, Shadow: mem.New(), Space: mem.NewAddressSpace(), Prog: p,
	}
	// Declare extra regions before FinishProtection inside load: reorder by
	// protecting them first.
	lb := uint64(cfg.Mem.L2LineB)
	for _, r := range extra {
		start := r.Start &^ (lb - 1)
		size := (r.Size + lb - 1) &^ (lb - 1)
		if err := ctrl.Protect(start, size); err != nil {
			return nil, err
		}
		m.Space.MapRange(start, size)
	}
	if err := m.load(p); err != nil {
		return nil, err
	}
	ms, err := NewMemSystem(cfg.Mem, ctrl, m.Shadow, m.Space)
	if err != nil {
		return nil, err
	}
	ms.SetStoreWaitAuth(cfg.Pipeline.StoreWaitAuth)
	m.MS = ms
	core, err := pipeline.New(cfg.Pipeline, ms, p.Entry)
	if err != nil {
		return nil, err
	}
	core.SetReg(isa.RegSP, m.stackTop())
	core.SetUopCache(pipeline.NewUopCache(p.TextBase, p.TextBytes()))
	m.Core = core
	return m, nil
}

// DisableFastPath forces the reference execution path: cycle-by-cycle
// stepping with per-fetch decode (no idle-cycle fast-forward, no µop
// cache). The fast and slow paths are pinned cycle-identical by the
// differential tests in fastpath_test.go and the diffcheck corpus; this
// switch exists for those tests and for debugging suspected fast-path
// divergence.
func (m *Machine) DisableFastPath() {
	m.slowPath = true
	m.Core.SetUopCache(nil)
}

// SetObserver attaches an event sink to every timed component of the
// machine. Call after NewMachine (program-load crypto is untimed and
// unobserved) and before Run. A nil sink detaches nothing — attach once.
func (m *Machine) SetObserver(s obs.Sink) {
	m.sink = s
	m.Core.SetObserver(s)
	m.MS.SetObserver(s, m.Core.Now)
	m.Ctrl.SetObserver(s)
	m.Bus.SetObserver(s)
}

// EnablePerf attaches (and returns) the machine's fast-path perf-counter
// block. Counting observes the fast-path machinery without perturbing
// simulated timing; nothing is counted until this is called. Idempotent —
// repeated calls return the same block.
func (m *Machine) EnablePerf() *obs.Perf {
	if m.perf == nil {
		m.perf = &obs.Perf{}
		m.Core.SetPerf(m.perf)
	}
	return m.perf
}

// Perf returns the perf-counter block, nil unless EnablePerf was called.
func (m *Machine) Perf() *obs.Perf { return m.perf }

// Run executes until HALT, MaxInsts, a security exception, an architectural
// fault, or the watchdog fires.
//
// The loop is event-driven where it can be: per-iteration bookkeeping reads
// the cheap committed-count accessor instead of copying the whole Stats
// struct, and after any cycle in which no pipeline stage or store-buffer
// drain made progress, the clock fast-forwards to the earliest pending
// event (instruction completion, authentication gate expiry, fetch unblock,
// store drain) instead of ticking through provably idle cycles. Skipped
// cycles are credited to the same per-cycle stall counters the stepped path
// maintains, so results — cycle counts, stall stats, digests — are
// bit-identical either way (pinned by fastpath_test.go and the diffcheck
// corpus). DisableFastPath restores the reference cycle-by-cycle loop.
func (m *Machine) Run() (Result, error) {
	lastCommit := uint64(0)
	lastCommitCycle := uint64(0)
	for {
		// A pending security exception fires the moment the verification
		// engine reaches the tampered line — before any further execution.
		if f := m.Ctrl.Fault(); f != nil && m.Core.Now() >= f.Cycle {
			return m.result(StopSecurityFault), nil
		}
		m.Core.Step()
		// A model inconsistency (e.g. a malformed gate dependency handed to
		// the controller) fails this run with an error instead of tearing
		// down the process: one sweep cell dies, the worker pool survives.
		if err := m.Ctrl.Err(); err != nil {
			return m.result(StopModelError), err
		}
		committed := m.Core.Committed()
		if committed != lastCommit {
			lastCommit = committed
			lastCommitCycle = m.Core.Now()
		}
		if m.Core.Halted() {
			return m.result(StopHalt), nil
		}
		if k, _, _ := m.Core.Faulted(); k != pipeline.FaultNone {
			return m.result(StopArchFault), nil
		}
		if m.Cfg.MaxInsts > 0 && committed >= m.Cfg.MaxInsts {
			return m.result(StopMaxInsts), nil
		}
		if m.Core.Now()-lastCommitCycle > m.Cfg.WatchdogCycles {
			return m.result(StopWatchdog), fmt.Errorf("sim: watchdog: no commit for %d cycles (pc=%#x)", m.Cfg.WatchdogCycles, m.Core.PC())
		}
		if m.slowPath || m.Core.Progressed() || m.MS.TickProgressed() {
			continue
		}
		// Quiet cycle: every stage and the store buffer are provably blocked
		// until the earliest pending event. Take the min over all timed
		// components, bounded so the watchdog Step and a pending security
		// fault still land on their exact slow-path cycles, and advance the
		// clock in one jump.
		// The strict < folds mean first-wins on ties, so the bound
		// attribution below is deterministic across runs.
		now := m.Core.Now()
		next := m.Core.NextEventAt()
		bound := obs.BoundCore
		if t := m.MS.NextEventAt(now); t < next {
			next, bound = t, obs.BoundMemsys
		}
		if t := m.Bus.NextEventAt(now); t < next {
			next, bound = t, obs.BoundBus
		}
		if t := m.DRAM.NextEventAt(now); t < next {
			next, bound = t, obs.BoundDram
		}
		if t := m.Ctrl.NextEventAt(now); t < next {
			next, bound = t, obs.BoundSecmem
		}
		if wd := lastCommitCycle + m.Cfg.WatchdogCycles; wd < next {
			next, bound = wd, obs.BoundWatchdog
		}
		if next > now {
			if m.perf != nil {
				m.perf.SkipBoundCycles[bound] += next - now
			}
			if m.sink != nil {
				m.sink.Emit(obs.Event{Cycle: now, Kind: obs.EvSkip,
					Track: obs.TrackFastForward, A: next - now, B: uint64(bound)})
			}
			if n := m.Core.SkipTo(next); n > 0 {
				m.MS.AddSkippedRejects(n)
			}
		}
	}
}

func (m *Machine) result(r StopReason) Result {
	st := m.Core.Stats()
	res := Result{
		Reason: r,
		Cycles: st.Cycles,
		Insts:  st.Committed,
		Core:   st,
		Sec:    m.Ctrl.Stats(),
	}
	if st.Cycles > 0 {
		res.IPC = float64(st.Committed) / float64(st.Cycles)
	}
	if r == StopSecurityFault {
		res.SecurityFault = m.Ctrl.Fault()
	}
	if k, _, addr := m.Core.Faulted(); k != pipeline.FaultNone {
		res.ArchFault = k
		res.ArchFaultAddr = addr
	}
	return res
}
