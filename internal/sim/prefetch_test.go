package sim

import (
	"testing"

	"authpoint/internal/asm"
)

// Prefetching a sequential stream should cut demand-miss latency; the
// prefetches must be real external fetches with auth requests.
func TestNextLinePrefetch(t *testing.T) {
	// The stream is artificially serialized (the next address depends on the
	// current load) so it is latency-bound: exactly where a next-line
	// prefetcher pays off.
	src := `
	_start:
		la   r1, arr
		li   r2, 4096
	loop:
		ld   r3, 0(r1)
		add  r4, r4, r3
		and  r5, r3, r0      ; r5 = 0, but dependent on the load
		add  r1, r1, r5      ; serialize the address chain
		addi r1, r1, 64
		addi r2, r2, -1
		bne  r2, r0, loop
		halt
	.data
	arr: .space 262144
	`
	run := func(pf bool) (Result, uint64) {
		p := asm.MustAssemble(src)
		cfg := DefaultConfig()
		cfg.Scheme = SchemeBaseline
		cfg.Mem.NextLinePrefetch = pf
		m, err := NewMachine(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason != StopHalt {
			t.Fatalf("reason %v", res.Reason)
		}
		if pf && m.MS.Prefetches == 0 {
			t.Fatal("prefetcher never fired")
		}
		_, _, l2 := m.MS.Caches()
		return res, l2.Stats().Misses
	}
	off, offMisses := run(false)
	on, onMisses := run(true)
	if on.Cycles >= off.Cycles {
		t.Errorf("prefetch did not help a serialized stream: %d vs %d cycles", on.Cycles, off.Cycles)
	}
	if onMisses >= offMisses {
		t.Errorf("prefetch did not reduce demand misses: %d vs %d", onMisses, offMisses)
	}
}
