package sim

import (
	"authpoint/internal/interp"
	"authpoint/internal/isa"
)

// IntRegs returns a snapshot of the architectural integer register file.
func (m *Machine) IntRegs() []uint64 {
	out := make([]uint64, isa.NumIntRegs)
	for r := range out {
		out[r] = m.Core.Reg(uint8(r))
	}
	return out
}

// FPRegs returns a snapshot of the architectural FP register file (float64
// bit patterns).
func (m *Machine) FPRegs() []uint64 {
	out := make([]uint64, isa.NumFPRegs)
	for r := range out {
		out[r] = m.Core.FReg(uint8(r))
	}
	return out
}

// ArchDigest hashes the machine's committed architectural state — register
// files, OUT log, and the given memory windows of the plaintext shadow —
// with the same encoding as interp.Machine.StateDigest, so the timed
// simulator and the in-order oracle produce comparable digests. This is the
// compare hook of the differential fuzzer (internal/diffcheck).
func (m *Machine) ArchDigest(ranges ...interp.MemRange) [32]byte {
	log := m.Core.OutLog()
	outs := make([]interp.OutEvent, len(log))
	for i, o := range log {
		outs[i] = interp.OutEvent{Port: o.Port, Val: o.Val}
	}
	return interp.DigestArchState(m.IntRegs(), m.FPRegs(), outs, m.Shadow, ranges)
}
