package sim

import (
	"testing"

	"authpoint/internal/asm"
)

// The drain variant of authen-then-fetch is strictly more conservative than
// the LastRequest-register variant on dependent fetch chains.
func TestFetchDrainVariantSlower(t *testing.T) {
	src := `
	_start:
		la   r1, head
		li   r2, 200
	chase:
		ld   r1, 0(r1)
		addi r2, r2, -1
		bne  r2, r0, chase
		halt
	.data
	head: .word n1
	.space 8184
	n1:   .word n2
	.space 8184
	n2:   .word head
	`
	run := func(drain bool) uint64 {
		p := asm.MustAssemble(src)
		cfg := DefaultConfig()
		cfg.Scheme = SchemeThenFetch
		cfg.Mem.FetchDrain = drain
		m, err := NewMachine(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil || res.Reason != StopHalt {
			t.Fatalf("drain=%v: %v %v", drain, res.Reason, err)
		}
		return res.Cycles
	}
	tag := run(false)
	drain := run(true)
	if drain < tag {
		t.Errorf("drain variant (%d cycles) beat LastRequest variant (%d)", drain, tag)
	}
}

// Under authen-then-write, a committed store must not reach the cache (and
// hence external memory) before its authentication tag clears.
func TestThenWriteHoldsStores(t *testing.T) {
	src := `
	_start:
		la   r1, src
		ld   r2, 0(r1)      ; miss: enqueues a verification request
		la   r3, dst
		sd   r2, 0(r3)      ; store tagged with that request
		halt
	.data
	src: .word 1234
	.space 8184
	dst: .word 0
	`
	p := asm.MustAssemble(src)
	cfg := DefaultConfig()
	cfg.Scheme = SchemeThenWrite
	m, err := NewMachine(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || res.Reason != StopHalt {
		t.Fatalf("%v %v", res.Reason, err)
	}
	// The machine halts as soon as HALT commits; the store buffer may still
	// hold the store (its auth tag clears later). Drain manually.
	for i := 0; i < 10_000 && !m.MS.StoreBufferEmpty(); i++ {
		m.MS.Tick(res.Cycles + uint64(i))
	}
	if !m.MS.StoreBufferEmpty() {
		t.Fatal("store buffer never drained after verification completed")
	}
	if got := m.Shadow.ReadUint(m.Prog.Symbols["dst"], 8); got != 1234 {
		t.Fatalf("dst = %d", got)
	}
}

// The next-line prefetcher must never prefetch outside protected ranges and
// must be invisible to architectural results.
func TestPrefetchAtRegionEdge(t *testing.T) {
	src := `
	_start:
		la  r1, last
		ld  r2, 0(r1)       ; miss on the final line of the data region
		halt
	.data
	.space 8128
	last: .word 42
	`
	p := asm.MustAssemble(src)
	cfg := DefaultConfig()
	cfg.Scheme = SchemeThenCommit
	cfg.Mem.NextLinePrefetch = true
	m, err := NewMachine(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || res.Reason != StopHalt {
		t.Fatalf("%v %v", res.Reason, err)
	}
	if m.Core.Reg(2) != 42 {
		t.Fatalf("r2 = %d", m.Core.Reg(2))
	}
}

// A bounded MSHR file throttles memory-level parallelism: an independent
// miss stream slows down as the bound shrinks, and results stay correct.
func TestMSHRBoundThrottles(t *testing.T) {
	run := func(mshrs int) uint64 {
		p := asm.MustAssemble(`
		_start:
			la   r1, arr
			li   r2, 2048
		loop:
			ld   r3, 0(r1)
			add  r4, r4, r3
			addi r1, r1, 64
			addi r2, r2, -1
			bne  r2, r0, loop
			halt
		.data
		arr: .space 131072
		`)
		cfg := DefaultConfig()
		cfg.Scheme = SchemeBaseline
		cfg.Mem.MSHRs = mshrs
		m, err := NewMachine(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil || res.Reason != StopHalt {
			t.Fatalf("mshrs=%d: %v %v", mshrs, res.Reason, err)
		}
		return res.Cycles
	}
	unbounded := run(0)
	one := run(1)
	if one <= unbounded {
		t.Errorf("1 MSHR (%d cycles) should be slower than unbounded (%d)", one, unbounded)
	}
}
