package sim

import (
	"fmt"
	"testing"

	"authpoint/internal/asm"
)

func mustMachine(t *testing.T, cfg Config, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := NewMachine(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustRun(t *testing.T, m *Machine) Result {
	t.Helper()
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v (reason %v)", err, res.Reason)
	}
	return res
}

func TestFullSystemFactorial(t *testing.T) {
	src := `
		_start:
			addi r1, r0, 7
			addi r2, r0, 1
		loop:
			mul  r2, r2, r1
			addi r1, r1, -1
			bne  r1, r0, loop
			la   r3, result
			sd   r2, 0(r3)
			halt
		.data
		result: .word 0
	`
	for _, scheme := range Schemes {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		m := mustMachine(t, cfg, src)
		res := mustRun(t, m)
		if res.Reason != StopHalt {
			t.Fatalf("%v: stopped with %v", scheme, res.Reason)
		}
		// Wait for the store buffer then check architectural memory.
		got := m.Shadow.ReadUint(m.Prog.Symbols["result"], 8)
		if got != 5040 {
			t.Errorf("%v: 7! = %d want 5040", scheme, got)
		}
		// The value must also round-trip through the protected (encrypted)
		// external memory if the line was written back... (it may still sit
		// dirty in cache; shadow is the architectural truth).
		if res.IPC <= 0 {
			t.Errorf("%v: IPC %v", scheme, res.IPC)
		}
	}
}

func TestMaxInstsStops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	m := mustMachine(t, cfg, "_start: b _start")
	res := mustRun(t, m)
	if res.Reason != StopMaxInsts {
		t.Fatalf("reason %v", res.Reason)
	}
	if res.Insts < 1000 {
		t.Fatalf("insts %d", res.Insts)
	}
}

// memWorkload generates a streaming+reduction loop over a working set well
// beyond the 256KB L2, guaranteeing memory traffic.
func memWorkload(iters int) string {
	return fmt.Sprintf(`
		_start:
			addi r5, r0, %d      ; outer iterations
		outer:
			la   r2, arr
			li   r3, 8192        ; elements per pass (8192*64B stride = 512KB)
			addi r4, r0, 0
		inner:
			ld   r1, 0(r2)
			add  r4, r4, r1
			addi r2, r2, 64      ; stride one L2 line
			addi r3, r3, -1
			bne  r3, r0, inner
			addi r5, r5, -1
			bne  r5, r0, outer
			la   r6, out
			sd   r4, 0(r6)
			halt
		.data
		out: .word 0
		arr: .space 524288
	`, iters)
}

func TestSchemePerformanceRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cycles := map[Scheme]uint64{}
	for _, scheme := range Schemes {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		m := mustMachine(t, cfg, memWorkload(1))
		res := mustRun(t, m)
		if res.Reason != StopHalt {
			t.Fatalf("%v: %v", scheme, res.Reason)
		}
		cycles[scheme] = res.Cycles
	}
	t.Logf("cycles: %v", cycles)
	base := cycles[SchemeBaseline]
	// The paper's ordering (Figure 7): baseline fastest; then-write close
	// behind; then-commit next; then-fetch and commit+fetch slower;
	// then-issue and obfuscation+commit slowest.
	if !(base <= cycles[SchemeThenWrite]) {
		t.Errorf("baseline (%d) should beat then-write (%d)", base, cycles[SchemeThenWrite])
	}
	if !(cycles[SchemeThenWrite] <= cycles[SchemeThenCommit]) {
		t.Errorf("then-write (%d) should beat then-commit (%d)", cycles[SchemeThenWrite], cycles[SchemeThenCommit])
	}
	if !(cycles[SchemeThenCommit] <= cycles[SchemeCommitPlusFetch]) {
		t.Errorf("then-commit (%d) should beat commit+fetch (%d)", cycles[SchemeThenCommit], cycles[SchemeCommitPlusFetch])
	}
	if !(cycles[SchemeThenCommit] <= cycles[SchemeThenIssue]) {
		t.Errorf("then-commit (%d) should beat then-issue (%d)", cycles[SchemeThenCommit], cycles[SchemeThenIssue])
	}
	if !(base < cycles[SchemeThenIssue]) {
		t.Errorf("then-issue (%d) must cost more than baseline (%d)", cycles[SchemeThenIssue], base)
	}
}

// tamperPointer rewrites the encrypted pointer at label `secretp` so it
// decrypts to target — the pointer-conversion primitive (§3.2.1), exploiting
// counter-mode malleability with two known/guessed plaintext bytes.
func tamperPointer(m *Machine, label string, oldVal, newVal uint64) {
	addr := m.Prog.Symbols[label]
	mask := make([]byte, 8)
	for i := 0; i < 8; i++ {
		mask[i] = byte(oldVal>>(8*i)) ^ byte(newVal>>(8*i))
	}
	m.Memory.XorRange(addr, mask)
}

const probeBase = 0x20000000

// sideChannelVictim loads a pointer and dereferences it. The adversary
// tampers the pointer to aim at the probe window; whether the dereference's
// address ever reaches the bus is exactly what separates the schemes
// (Table 2).
const sideChannelVictim = `
	_start:
		la  r2, secretp
		ld  r1, 0(r2)       ; load (tampered) pointer
		ld  r3, 0(r1)       ; dereference: the disclosing fetch
		add r4, r3, r3
		halt
	.data
	secretp: .word 0x1000   ; innocent pointer to text
`

func runSideChannel(t *testing.T, scheme Scheme) (Result, []uint64) {
	t.Helper()
	p, err := asm.Assemble(sideChannelVictim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.TraceBus = true
	m, err := NewMachineWithRegions(cfg, p, []Region{{probeBase, 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	// Adversary: convert the pointer into probeBase+0x4440 (as if the
	// secret were that value).
	tamperPointer(m, "secretp", 0x1000, probeBase+0x4440)
	res, _ := m.Run()
	leaked := []uint64{}
	for _, a := range m.ReadLineAddrsBefore(StopCycle(res)) {
		if a >= probeBase && a < probeBase+(1<<20) {
			leaked = append(leaked, a)
		}
	}
	return res, leaked
}

func TestSideChannelMatrix(t *testing.T) {
	// Table 2, "prevent active fetch address side-channel disclose":
	// then-issue and commit+fetch prevent; then-write and then-commit do not.
	cases := []struct {
		scheme    Scheme
		wantLeak  bool
		wantFault bool
	}{
		{SchemeBaseline, true, false}, // no verification at all
		{SchemeThenWrite, true, true},
		{SchemeThenCommit, true, true},
		{SchemeThenIssue, false, true},
		{SchemeCommitPlusFetch, false, true},
	}
	for _, c := range cases {
		res, leaked := runSideChannel(t, c.scheme)
		if got := len(leaked) > 0; got != c.wantLeak {
			t.Errorf("%v: leak=%v want %v (leaked addrs %x, reason %v)",
				c.scheme, got, c.wantLeak, leaked, res.Reason)
		}
		if got := res.Reason == StopSecurityFault; got != c.wantFault {
			t.Errorf("%v: fault=%v want %v (reason %v)", c.scheme, got, c.wantFault, res.Reason)
		}
		if len(leaked) > 0 {
			// The leak carries the secret: the line address of the probe.
			wantLine := uint64(probeBase+0x4440) &^ 63
			found := false
			for _, a := range leaked {
				if a == wantLine {
					found = true
				}
			}
			if !found && c.scheme != SchemeBaseline {
				t.Errorf("%v: leak did not contain secret-derived line %#x: %x", c.scheme, wantLine, leaked)
			}
		}
	}
}

func TestObfuscationHidesAddresses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeCommitPlusObfuscation
	cfg.TraceBus = true
	m := mustMachine(t, cfg, memWorkload(1))
	res := mustRun(t, m)
	if res.Reason != StopHalt {
		t.Fatalf("reason %v", res.Reason)
	}
	for _, a := range m.ReadLineAddrsBefore(res.Cycles) {
		if a < 0x40000000 {
			t.Fatalf("raw address %#x visible under obfuscation", a)
		}
	}
	if res.Sec.RemapMisses == 0 {
		t.Error("remap cache never missed on a 512KB working set")
	}
}

func TestTamperedCodeFaultsBeforeHalt(t *testing.T) {
	src := `
		_start:
			addi r1, r0, 1
			addi r1, r1, 1
			halt
		.data
		x: .word 0
	`
	cfg := DefaultConfig()
	cfg.Scheme = SchemeThenCommit
	m := mustMachine(t, cfg, src)
	// Flip a bit in the encrypted text.
	m.Memory.XorRange(m.Prog.TextBase, []byte{0x40})
	res, _ := m.Run()
	if res.Reason != StopSecurityFault {
		t.Fatalf("tampered code: reason %v", res.Reason)
	}
	if res.SecurityFault == nil || res.SecurityFault.Addr != m.Prog.TextBase&^63 {
		t.Fatalf("fault %+v", res.SecurityFault)
	}
}

func TestBaselineExecutesTamperedCode(t *testing.T) {
	// Under the baseline the same tamper goes entirely undetected: whatever
	// the flipped instruction decodes to simply executes.
	src := `
		_start:
			addi r1, r0, 1
			halt
	`
	cfg := DefaultConfig()
	cfg.Scheme = SchemeBaseline
	m := mustMachine(t, cfg, src)
	// Flip the immediate of the ADDI from 1 to 3 (bit 17 of the word =
	// byte 2 bit 1 of imm16).
	m.Memory.XorRange(m.Prog.TextBase+2, []byte{0x02})
	res, _ := m.Run()
	if res.Reason != StopHalt {
		t.Fatalf("reason %v", res.Reason)
	}
	if got := m.Core.Reg(1); got != 3 {
		t.Fatalf("tampered immediate: r1 = %d want 3", got)
	}
}

func TestWatchdogFires(t *testing.T) {
	// A program that jumps into unmapped space never commits again.
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 5_000
	m := mustMachine(t, cfg, `
		_start:
			li   r1, 0x30000000
			jalr r0, r1, 0
	`)
	res, err := m.Run()
	if err == nil || res.Reason != StopWatchdog {
		t.Fatalf("reason %v err %v", res.Reason, err)
	}
}

func TestTreeSchemeRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeThenCommit
	cfg.Sec.UseTree = true
	m := mustMachine(t, cfg, memWorkload(1))
	res := mustRun(t, m)
	if res.Reason != StopHalt {
		t.Fatalf("reason %v", res.Reason)
	}
	flat := DefaultConfig()
	flat.Scheme = SchemeThenCommit
	m2 := mustMachine(t, flat, memWorkload(1))
	res2 := mustRun(t, m2)
	if res.Cycles <= res2.Cycles {
		t.Errorf("tree (%d cycles) should cost more than flat MAC (%d)", res.Cycles, res2.Cycles)
	}
}

func TestSmallerRUUSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	big := DefaultConfig()
	big.Scheme = SchemeThenCommit
	mBig := mustMachine(t, big, memWorkload(1))
	resBig := mustRun(t, mBig)

	small := DefaultConfig()
	small.Scheme = SchemeThenCommit
	small.Pipeline.RUUSize = 64
	small.Pipeline.LSQSize = 32
	mSmall := mustMachine(t, small, memWorkload(1))
	resSmall := mustRun(t, mSmall)
	if resSmall.Cycles < resBig.Cycles {
		t.Errorf("64-entry RUU (%d) should not beat 128-entry (%d)", resSmall.Cycles, resBig.Cycles)
	}
}

func TestLargerL2Faster(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	small := DefaultConfig()
	small.Scheme = SchemeThenIssue
	mS := mustMachine(t, small, memWorkload(2))
	resS := mustRun(t, mS)

	big := DefaultConfig()
	big.Scheme = SchemeThenIssue
	big.Mem.L2B = 1 << 20
	big.Mem.L2Lat = 8
	mB := mustMachine(t, big, memWorkload(2))
	resB := mustRun(t, mB)
	// 512KB working set fits in 1MB L2: second pass hits.
	if resB.Cycles >= resS.Cycles {
		t.Errorf("1MB L2 (%d cycles) should beat 256KB (%d)", resB.Cycles, resS.Cycles)
	}
}

func TestBadConfigsRejected(t *testing.T) {
	p, _ := asm.Assemble("_start: halt")
	bad := []func(*Config){
		func(c *Config) { c.Pipeline.RUUSize = 0 },
		func(c *Config) { c.Mem.L1IB = 100 }, // not divisible by line*ways
		func(c *Config) { c.Mem.L2LineB = 48 },
		func(c *Config) { c.Mem.StoreBufSize = 0 },
		func(c *Config) { c.Sec.MacB = 0 },
		func(c *Config) { c.Bus.CorePerBus = 0 },
		func(c *Config) { c.DRAM.Banks = 0 },
		func(c *Config) { c.Mem.ITLBEntries = 10; c.Mem.TLBWays = 4 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := NewMachine(cfg, p); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
