// Differential tests for the timed machine, built on internal/diffcheck —
// the reusable promotion of the generator and comparator that used to live
// here. External test package: diffcheck imports sim, so these tests must
// sit outside the sim package to avoid an import cycle.
package sim_test

import (
	"fmt"
	"testing"

	"authpoint/internal/diffcheck"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

func checkSeed(t *testing.T, seed int64, opt diffcheck.Options) {
	t.Helper()
	res, src := diffcheck.CheckSeed(seed, opt)
	if res.Verdict != diffcheck.VerdictOK {
		t.Errorf("seed %d under %v: %s: %s\nprogram:\n%s",
			seed, res.Policy, res.Verdict, res.Divergence, src)
	}
}

// TestDifferentialVsOracle runs random programs on the full out-of-order
// machine and on the in-order functional oracle: every architectural
// outcome must match exactly. This is the core correctness net for the
// pipeline (renaming, forwarding, disambiguation, squash, FP).
func TestDifferentialVsOracle(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkSeed(t, seed, diffcheck.Options{Policy: policy.ThenCommit})
		})
	}
}

// The same programs must be architecture-identical under every control
// point: authentication gates change timing, never semantics.
func TestDifferentialAcrossSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	points := []policy.ControlPoint{
		policy.Baseline,
		policy.ThenIssue,
		policy.ThenWrite,
		policy.CommitPlusFetch,
		policy.CommitPlusObfuscation,
	}
	for _, pt := range points {
		pt := pt
		t.Run(pt.String(), func(t *testing.T) {
			for seed := int64(100); seed < 105; seed++ {
				checkSeed(t, seed, diffcheck.Options{Policy: pt})
			}
		})
	}
}

// Functional correctness with the next-line prefetcher on: prefetch changes
// miss timing only, never architectural state.
func TestDifferentialWithPrefetch(t *testing.T) {
	for seed := int64(200); seed < 206; seed++ {
		checkSeed(t, seed, diffcheck.Options{
			Mutate: func(c *sim.Config) { c.Mem.NextLinePrefetch = true },
		})
	}
}
