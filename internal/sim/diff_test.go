package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/interp"
	"authpoint/internal/isa"
)

// progGen emits random-but-terminating programs that exercise the whole
// ISA: ALU chains, multiplies/divides, aligned loads/stores through a
// scratch window, bounded loops, forward branches, FP arithmetic, and OUT.
//
// Register conventions keep generation simple: r12 = scratch base,
// r13 = offset mask, r9 = loop counter; r1..r8, r10, r11 are fair game.
type progGen struct {
	rng    *rand.Rand
	b      strings.Builder
	labelN int
}

const scratchBytes = 2048

func (g *progGen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *progGen) reg() int { return []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 11}[g.rng.Intn(10)] }

func (g *progGen) freg() int { return g.rng.Intn(6) + 1 }

// randomOp emits one instruction (or a short fixed idiom).
func (g *progGen) randomOp() {
	switch g.rng.Intn(12) {
	case 0:
		g.emit("	addi r%d, r%d, %d", g.reg(), g.reg(), g.rng.Intn(2000)-1000)
	case 1:
		ops := []string{"add", "sub", "xor", "and", "or", "slt", "sltu"}
		g.emit("	%s r%d, r%d, r%d", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.reg())
	case 2:
		ops := []string{"sll", "srl", "sra"}
		g.emit("	%s r%d, r%d, r%d", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.reg())
	case 3:
		ops := []string{"slli", "srli", "srai"}
		g.emit("	%s r%d, r%d, %d", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.rng.Intn(63))
	case 4:
		ops := []string{"mul", "div", "rem"}
		g.emit("	%s r%d, r%d, r%d", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.reg())
	case 5: // aligned load through the scratch window
		a, d := g.reg(), g.reg()
		g.emit("	and  r%d, r%d, r13", a, g.reg())
		g.emit("	add  r%d, r%d, r12", a, a)
		g.emit("	ld   r%d, 0(r%d)", d, a)
	case 6: // aligned store
		a := g.reg()
		g.emit("	and  r%d, r%d, r13", a, g.reg())
		g.emit("	add  r%d, r%d, r12", a, a)
		g.emit("	sd   r%d, 0(r%d)", g.reg(), a)
	case 7: // sub-word memory round trip
		a := g.reg()
		d := g.reg()
		for d == a { // the loads must not clobber their own address register
			d = g.reg()
		}
		g.emit("	and  r%d, r%d, r13", a, g.reg())
		g.emit("	add  r%d, r%d, r12", a, a)
		g.emit("	sw   r%d, 0(r%d)", g.reg(), a)
		g.emit("	lw   r%d, 0(r%d)", d, a)
		g.emit("	lbu  r%d, 0(r%d)", d, a)
	case 8: // FP block (values flow int -> fp -> int, bit-exact both sides)
		f1, f2 := g.freg(), g.freg()
		g.emit("	fcvtif f%d, r%d", f1, g.reg())
		ops := []string{"fadd", "fsub", "fmul", "fdiv"}
		g.emit("	%s f%d, f%d, f%d", ops[g.rng.Intn(len(ops))], f2, f1, f2)
		g.emit("	fcvtfi r%d, f%d", g.reg(), f2)
	case 9:
		g.emit("	out r%d, %d", g.reg(), g.rng.Intn(256))
	case 10: // forward branch over a couple of ops
		l := g.label()
		ops := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
		g.emit("	%s r%d, r%d, %s", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), l)
		g.emit("	addi r%d, r%d, 1", g.reg(), g.reg())
		g.emit("	xor  r%d, r%d, r%d", g.reg(), g.reg(), g.reg())
		g.emit("%s:", l)
	case 11: // call/ret later; keep a LUI constant build here
		g.emit("	lui  r%d, %d", g.reg(), g.rng.Intn(1<<16))
	}
}

func (g *progGen) label() string {
	g.labelN++
	return fmt.Sprintf("l%d", g.labelN)
}

// generate builds one full program.
func (g *progGen) generate() string {
	g.emit("_start:")
	g.emit("	la r12, buf")
	g.emit("	li r13, %d", scratchBytes-8) // 8-aligned offsets inside scratch
	// Seed registers deterministically.
	for r := 1; r <= 11; r++ {
		if r == 9 {
			continue
		}
		g.emit("	li r%d, %d", r, g.rng.Int63n(1<<40))
	}
	blocks := g.rng.Intn(6) + 3
	for b := 0; b < blocks; b++ {
		if g.rng.Intn(3) == 0 { // bounded loop
			l := g.label()
			g.emit("	li r9, %d", g.rng.Intn(5)+2)
			g.emit("%s:", l)
			for i := 0; i < g.rng.Intn(6)+2; i++ {
				g.randomOp()
			}
			g.emit("	addi r9, r9, -1")
			g.emit("	bne  r9, r0, %s", l)
		} else {
			for i := 0; i < g.rng.Intn(10)+3; i++ {
				g.randomOp()
			}
		}
	}
	g.emit("	halt")
	g.emit(".data")
	g.emit("buf: .space %d", scratchBytes)
	return g.b.String()
}

// newDiffGen builds a generator for one seed.
func newDiffGen(seed int64) *progGen {
	return &progGen{rng: rand.New(rand.NewSource(seed))}
}

// runDiff runs one random program on both machines and compares every piece
// of architectural state.
func runDiff(t *testing.T, seed int64, scheme Scheme) {
	t.Helper()
	g := newDiffGen(seed)
	runDiffSrc(t, seed, g.generate(), func(c *Config) { c.Scheme = scheme })
}

// runDiffSrc is runDiff over explicit source and config mutation.
func runDiffSrc(t *testing.T, seed int64, src string, mutate func(*Config)) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
	}

	oracle := interp.New(p)
	or := oracle.Run(2_000_000)
	if or != interp.StopHalt {
		t.Fatalf("seed %d: oracle stopped with %v (%v)", seed, or, oracle)
	}

	cfg := DefaultConfig()
	cfg.Scheme = SchemeThenCommit
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewMachine(cfg, p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	if res.Reason != StopHalt {
		t.Fatalf("seed %d: core stopped with %v", seed, res.Reason)
	}
	if res.Insts != oracle.Insts {
		t.Errorf("seed %d: committed %d insts, oracle executed %d", seed, res.Insts, oracle.Insts)
	}
	for r := uint8(0); r < isa.NumIntRegs; r++ {
		if m.Core.Reg(r) != oracle.Regs[r] {
			t.Errorf("seed %d: r%d = %#x, oracle %#x", seed, r, m.Core.Reg(r), oracle.Regs[r])
		}
	}
	for r := uint8(0); r < isa.NumFPRegs; r++ {
		if m.Core.FReg(r) != oracle.FRegs[r] {
			t.Errorf("seed %d: f%d = %#x, oracle %#x", seed, r, m.Core.FReg(r), oracle.FRegs[r])
		}
	}
	outs := m.Core.OutLog()
	if len(outs) != len(oracle.Outs) {
		t.Fatalf("seed %d: %d OUTs, oracle %d", seed, len(outs), len(oracle.Outs))
	}
	for i := range outs {
		if outs[i].Port != oracle.Outs[i].Port || outs[i].Val != oracle.Outs[i].Val {
			t.Errorf("seed %d: out[%d] = (%#x,%#x), oracle (%#x,%#x)",
				seed, i, outs[i].Port, outs[i].Val, oracle.Outs[i].Port, oracle.Outs[i].Val)
		}
	}
	base := p.DataBase
	for off := uint64(0); off < scratchBytes; off += 8 {
		got := m.Shadow.ReadUint(base+off, 8)
		want := oracle.Mem.ReadUint(base+off, 8)
		if got != want {
			t.Errorf("seed %d: mem[%#x] = %#x, oracle %#x", seed, base+off, got, want)
		}
	}
	if t.Failed() {
		t.Logf("program:\n%s", src)
	}
}

// TestDifferentialVsOracle runs random programs on the full out-of-order
// machine and on the in-order functional oracle: every architectural
// outcome must match exactly. This is the core correctness net for the
// pipeline (renaming, forwarding, disambiguation, squash, FP).
func TestDifferentialVsOracle(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runDiff(t, seed, SchemeThenCommit)
		})
	}
}

// The same programs must be architecture-identical under every scheme:
// authentication control points change timing, never semantics.
func TestDifferentialAcrossSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, scheme := range []Scheme{SchemeBaseline, SchemeThenIssue, SchemeThenWrite, SchemeCommitPlusFetch, SchemeCommitPlusObfuscation} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for seed := int64(100); seed < 105; seed++ {
				runDiff(t, seed, scheme)
			}
		})
	}
}
