package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/obs"
)

// A full-auth (then-commit + then-fetch) run with an observer attached must
// produce a valid Perfetto trace in which auth-complete lags decrypt-ready,
// and metrics whose derived counts agree with the controller's own stats.
func TestTracedFullAuthRun(t *testing.T) {
	p := asm.MustAssemble(`
	_start:
		la   r1, arr
		li   r2, 256
	loop:
		ld   r3, 0(r1)
		add  r4, r4, r3
		addi r1, r1, 64
		addi r2, r2, -1
		bne  r2, r0, loop
		halt
	.data
	arr: .space 16384
	`)
	cfg := DefaultConfig()
	cfg.Scheme = SchemeCommitPlusFetch
	m, err := NewMachine(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	hub := obs.NewHub(obs.NewTracer(0), true)
	m.SetObserver(hub)
	res, err := m.Run()
	if err != nil || res.Reason != StopHalt {
		t.Fatalf("%v %v", res.Reason, err)
	}

	snap := hub.Snapshot()
	if snap == nil {
		t.Fatal("no metrics snapshot")
	}
	if got := snap.Counters["auth.requests"]; got != res.Sec.AuthRequests {
		t.Errorf("auth.requests = %d, controller counted %d", got, res.Sec.AuthRequests)
	}
	if got := snap.Counters["auth.completes"]; got != res.Sec.AuthRequests {
		t.Errorf("auth.completes = %d, want %d", got, res.Sec.AuthRequests)
	}
	if got := snap.Counters["pipe.commit"]; got != res.Core.Committed {
		t.Errorf("pipe.commit = %d, core committed %d", got, res.Core.Committed)
	}
	if got := snap.Counters["sec.fetches"]; got != res.Sec.Fetches {
		t.Errorf("sec.fetches = %d, controller counted %d", got, res.Sec.Fetches)
	}
	gap := snap.Histograms[obs.MetricAuthGap]
	if gap.Count == 0 || gap.Sum == 0 {
		t.Fatalf("decrypt→auth gap histogram empty: %+v", gap)
	}
	if res.Core.CommitAuthStall > 0 && snap.Counters["stall.commit-auth.cycles"] == 0 {
		t.Errorf("core counted %d commit-auth stall cycles but the hub derived none",
			res.Core.CommitAuthStall)
	}
	lat := snap.Histograms[obs.MetricAuthLatency]
	if lat.Count != res.Sec.AuthRequests {
		t.Errorf("latency samples = %d, want %d", lat.Count, res.Sec.AuthRequests)
	}

	var buf bytes.Buffer
	if err := hub.Tracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	// Auth-complete lagging decrypt-ready shows up as "gap" spans.
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	var gaps, verifies int
	for _, e := range f.TraceEvents {
		switch e.Name {
		case "gap":
			if e.Dur > 0 {
				gaps++
			}
		case "auth-verify":
			verifies++
		}
	}
	if gaps == 0 {
		t.Error("trace shows no auth-complete lagging decrypt-ready")
	}
	if verifies == 0 {
		t.Error("trace has no auth-verify spans")
	}
}

// An observer-free run must be bit-identical in timing to an observed one:
// the sink changes what is recorded, never what is simulated.
func TestObserverDoesNotPerturbTiming(t *testing.T) {
	src := `
	_start:
		la   r1, arr
		li   r2, 64
	loop:
		ld   r3, 0(r1)
		addi r1, r1, 64
		addi r2, r2, -1
		bne  r2, r0, loop
		halt
	.data
	arr: .space 4096
	`
	run := func(observe bool) Result {
		p := asm.MustAssemble(src)
		cfg := DefaultConfig()
		cfg.Scheme = SchemeThenCommit
		m, err := NewMachine(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			m.SetObserver(obs.NewHub(obs.NewTracer(0), true))
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, observed := run(false), run(true)
	if plain.Cycles != observed.Cycles || plain.Insts != observed.Insts {
		t.Fatalf("observer perturbed timing: %d/%d cycles, %d/%d insts",
			plain.Cycles, observed.Cycles, plain.Insts, observed.Insts)
	}
}
