package sim_test

import (
	"runtime"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// benchMachine builds a fresh machine on the first workload kernel with bus
// tracing off (the long-run configuration benchmarks care about).
func benchMachine(tb testing.TB, pt policy.ControlPoint, insts uint64, slow bool) *sim.Machine {
	tb.Helper()
	w := workload.All()[0]
	p, err := asm.Assemble(w.Source)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Policy = pt
	cfg.MaxInsts = insts
	m, err := sim.NewMachine(cfg, p)
	if err != nil {
		tb.Fatal(err)
	}
	m.Bus.SetTracing(false)
	if slow {
		m.DisableFastPath()
	}
	return m
}

func benchRun(b *testing.B, pt policy.ControlPoint, slow bool) {
	const insts = 200_000
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchMachine(b, pt, insts, slow)
		b.StartTimer()
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	if cycles > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "host-ns/sim-cycle")
	}
}

// BenchmarkRunFast measures the fast-path simulator core end to end.
func BenchmarkRunFast(b *testing.B) { benchRun(b, policy.ThenCommit, false) }

// BenchmarkRunSlow measures the per-cycle reference loop on the same cell.
func BenchmarkRunSlow(b *testing.B) { benchRun(b, policy.ThenCommit, true) }

// BenchmarkRunBaselineFast measures the fast path without authentication,
// where idle windows are shortest and the µop cache dominates.
func BenchmarkRunBaselineFast(b *testing.B) { benchRun(b, policy.Baseline, false) }

// TestRunSteadyStateAllocs pins the zero-alloc hot loop: once a machine is
// warm (caches filled, rings and queues at steady occupancy), continuing the
// run must not allocate per cycle or per instruction. The small budget
// tolerates stray lazy growth in the secure-memory metadata maps; per-cycle
// allocation would show up as hundreds of thousands.
func TestRunSteadyStateAllocs(t *testing.T) { steadyStateAllocs(t, false) }

// TestRunSteadyStateAllocsObserved is the same pin with the observability
// surface attached — metrics hub on every component plus the fast-path perf
// counters. Counting is plain field increments and the hub's outstanding-auth
// FIFO reuses its backing array, so observing a warm machine must stay
// allocation-free too.
func TestRunSteadyStateAllocsObserved(t *testing.T) { steadyStateAllocs(t, true) }

func steadyStateAllocs(t *testing.T, observed bool) {
	m := benchMachine(t, policy.ThenCommit, 50_000, false)
	if observed {
		m.SetObserver(obs.NewHub(nil, true))
		m.EnablePerf()
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	m.Cfg.MaxInsts = 250_000
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if res.Reason != sim.StopMaxInsts {
		t.Fatalf("run stopped with %v, want max-insts (res %+v)", res.Reason, res)
	}
	allocs := after.Mallocs - before.Mallocs
	t.Logf("steady-state allocs over 200k insts: %d", allocs)
	if allocs > 1000 {
		t.Errorf("steady-state Run allocated %d times over 200k instructions; hot loop must be allocation-free", allocs)
	}
}
