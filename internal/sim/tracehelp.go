package sim

import "authpoint/internal/bus"

// ReadLineAddrsBefore returns the line-fetch addresses visible on the bus
// strictly before the given cycle — the adversary's view of the memory-fetch
// side channel up to the moment the machine stopped.
//
// The controller computes bus transactions eagerly (event-driven), so a
// fetch that a gate scheduled *after* a security exception appears in the
// raw trace with a future timestamp; it never actually happened. Filtering
// by stop cycle restores the hardware semantics.
func (m *Machine) ReadLineAddrsBefore(cycle uint64) []uint64 {
	var out []uint64
	for _, e := range m.Bus.Trace() {
		if e.Kind == bus.ReadLine && e.Cycle <= cycle {
			out = append(out, e.Addr)
		}
	}
	return out
}

// ReadLineAddrsInBefore filters ReadLineAddrsBefore to the address window
// [lo, hi) — e.g. the adversary's probe region, or one arm of a victim
// branch. The attack suite and the static-analysis differential tests share
// this as their definition of "what leaked".
func (m *Machine) ReadLineAddrsInBefore(lo, hi, cycle uint64) []uint64 {
	var out []uint64
	for _, a := range m.ReadLineAddrsBefore(cycle) {
		if a >= lo && a < hi {
			out = append(out, a)
		}
	}
	return out
}

// StopCycle returns the cycle at which the machine stopped for the given
// result: the security-fault cycle if verification failed, else the final
// core cycle.
func StopCycle(res Result) uint64 {
	if res.SecurityFault != nil {
		return res.SecurityFault.Cycle
	}
	return res.Cycles
}
