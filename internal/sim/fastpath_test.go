// Differential pins for the fast-path simulator core (µop cache +
// idle-cycle fast-forward): the fast path is an optimization of Machine.Run
// and must be cycle-identical to the per-cycle reference loop — same
// Result struct bit for bit, same architectural digest — on every program
// and every policy. External test package: imports diffcheck, which
// imports sim.
package sim_test

import (
	"fmt"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/diffcheck"
	"authpoint/internal/interp"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// runBoth executes p under cfg on the fast path and on the reference path
// (DisableFastPath) and returns both results and digests.
func runBoth(t *testing.T, cfg sim.Config, p *asm.Program) (fast, slow sim.Result, fastDig, slowDig [32]byte) {
	t.Helper()
	run := func(slowPath bool) (sim.Result, [32]byte) {
		m, err := sim.NewMachine(cfg, p)
		if err != nil {
			t.Fatalf("new machine: %v", err)
		}
		if slowPath {
			m.DisableFastPath()
		}
		res, runErr := m.Run()
		if runErr != nil && res.Reason != sim.StopWatchdog {
			t.Fatalf("run (slow=%v): %v", slowPath, runErr)
		}
		return res, m.ArchDigest(interp.MemRange{Start: p.DataBase, Len: uint64(len(p.Data))})
	}
	fast, fastDig = run(false)
	slow, slowDig = run(true)
	return
}

// TestFastSlowRandomPrograms drives generated programs through every
// ci-policy point on both paths: stop reason, cycle count, every stall
// counter, and the architectural digest must match exactly.
func TestFastSlowRandomPrograms(t *testing.T) {
	points, err := policy.ParseSet("ci")
	if err != nil {
		t.Fatal(err)
	}
	seeds := int64(50)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= seeds; seed++ {
		p, err := asm.Assemble(diffcheck.GenProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		for _, pt := range points {
			cfg := sim.DefaultConfig()
			cfg.Policy = pt
			fast, slow, fd, sd := runBoth(t, cfg, p)
			if fast != slow {
				t.Errorf("seed %d under %v: result diverges\nfast %+v\nslow %+v", seed, pt, fast, slow)
			}
			if fd != sd {
				t.Errorf("seed %d under %v: arch digest diverges", seed, pt)
			}
		}
	}
}

// TestFastSlowWorkloads pins cycle identity on the real workload kernels
// across the seven legacy schemes and the full 31-point lattice.
func TestFastSlowWorkloads(t *testing.T) {
	points := policy.FullLattice()
	if testing.Short() {
		points = policy.Lattice()
	}
	for _, w := range workload.All()[:2] {
		p, err := asm.Assemble(w.Source)
		if err != nil {
			t.Fatalf("assemble %s: %v", w.Name, err)
		}
		for _, pt := range points {
			t.Run(fmt.Sprintf("%s/%v", w.Name, pt), func(t *testing.T) {
				cfg := sim.DefaultConfig()
				cfg.Policy = pt
				cfg.MaxInsts = 20_000
				fast, slow, fd, sd := runBoth(t, cfg, p)
				if fast != slow {
					t.Errorf("result diverges\nfast %+v\nslow %+v", fast, slow)
				}
				if fd != sd {
					t.Errorf("arch digest diverges")
				}
			})
		}
	}
}

// TestFastPathWatchdog pins the fast path's watchdog bookkeeping: a machine
// that goes permanently quiet (spin on an unmapped fetch target after the
// frontend faults) must stop with StopWatchdog at exactly the same cycle on
// both paths, exercising the skip cap at lastCommitCycle+WatchdogCycles.
func TestFastPathWatchdog(t *testing.T) {
	src := `
	_start:
		addi r1, r0, 1
		jalr r0, r0, 0   ; jump to unmapped 0: fetch faults, no redirect ever
	`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.WatchdogCycles = 5_000
	run := func(slowPath bool) sim.Result {
		m, err := sim.NewMachine(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if slowPath {
			m.DisableFastPath()
		}
		res, _ := m.Run()
		return res
	}
	fast, slow := run(false), run(true)
	if fast.Reason != sim.StopWatchdog {
		t.Fatalf("fast path: reason %v, want watchdog (res %+v)", fast.Reason, fast)
	}
	if fast != slow {
		t.Errorf("watchdog stop diverges\nfast %+v\nslow %+v", fast, slow)
	}
}
