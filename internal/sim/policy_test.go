package sim

import (
	"reflect"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/policy"
	"authpoint/internal/workload"
)

// legacyApply is the pre-refactor applyScheme switch, kept verbatim as the
// reference: the policy layer must translate every legacy scheme into
// exactly these component knobs.
func legacyApply(c *Config) {
	c.Sec.Authenticate = true
	c.Sec.Remap = false
	c.Pipeline.GateIssue = false
	c.Pipeline.GateCommit = false
	c.Pipeline.StoreWaitAuth = false
	c.Mem.GateFetch = false
	c.Mem.UseAtAuth = false
	switch c.Scheme {
	case SchemeBaseline:
		c.Sec.Authenticate = false
	case SchemeThenIssue:
		c.Pipeline.GateIssue = true
		c.Mem.UseAtAuth = true
	case SchemeThenWrite:
		c.Pipeline.StoreWaitAuth = true
	case SchemeThenCommit:
		c.Pipeline.GateCommit = true
	case SchemeThenFetch:
		c.Mem.GateFetch = true
	case SchemeCommitPlusFetch:
		c.Pipeline.GateCommit = true
		c.Mem.GateFetch = true
	case SchemeCommitPlusObfuscation:
		c.Pipeline.GateCommit = true
		c.Sec.Remap = true
	}
}

// TestPolicyKnobEquivalence pins that applyPolicy reproduces the
// pre-refactor knob settings for all seven legacy schemes, bit for bit —
// the config-level half of the cycle-identical equivalence guarantee.
func TestPolicyKnobEquivalence(t *testing.T) {
	for _, s := range Schemes {
		want := DefaultConfig()
		want.Scheme = s
		legacyApply(&want)

		got := DefaultConfig()
		got.Scheme = s
		got.applyPolicy()
		// applyPolicy additionally records the resolved policy; mirror that
		// on the reference before comparing whole structs.
		want.Policy = s.Policy()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: config diverges from legacy applyScheme:\ngot  %+v\nwant %+v", s, got, want)
		}
	}
}

// TestSchemePolicyCycleIdentical is the equivalence pin: configuring a
// machine through the deprecated Scheme shim and through the policy layer
// directly must be cycle-identical — same IPC, cycles, stop reason, and
// stall counters — for each legacy scheme on the workload smoke set.
func TestSchemePolicyCycleIdentical(t *testing.T) {
	smoke := []string{"mcfx", "swimx"}
	for _, name := range smoke {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		p, err := asm.Assemble(w.Source)
		if err != nil {
			t.Fatalf("assemble %s: %v", name, err)
		}
		for _, s := range Schemes {
			run := func(mutate func(*Config)) Result {
				t.Helper()
				cfg := DefaultConfig()
				cfg.MaxInsts = 20_000
				mutate(&cfg)
				m, err := NewMachine(cfg, p)
				if err != nil {
					t.Fatalf("%s %v: %v", name, s, err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("%s %v: %v", name, s, err)
				}
				return res
			}
			viaScheme := run(func(c *Config) { c.Scheme = s })
			viaPolicy := run(func(c *Config) { c.Policy = s.Policy() })
			if !reflect.DeepEqual(viaScheme, viaPolicy) {
				t.Errorf("%s %v: scheme shim and policy runs diverge:\nscheme %+v\npolicy %+v",
					name, s, viaScheme, viaPolicy)
			}
		}
	}
}

// TestParseSchemeRoundTrip pins Scheme.String/ParseScheme symmetry: every
// -json rendering is a valid -scheme flag resolving to the same value.
func TestParseSchemeRoundTrip(t *testing.T) {
	for _, s := range Schemes {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", s, err)
			continue
		}
		if got != s {
			t.Errorf("ParseScheme(%q) = %v, want %v", s.String(), got, s)
		}
	}
	// Canonical policy spellings resolve to the same enum values too.
	if s, err := ParseScheme("authen-then-commit+fetch"); err != nil || s != SchemeCommitPlusFetch {
		t.Errorf("canonical commit+fetch: %v %v", s, err)
	}
	// Non-legacy lattice points are rejected with a pointer to Policy.
	if _, err := ParseScheme("authen-then-write+fetch"); err == nil {
		t.Error("ParseScheme should reject non-legacy compositions")
	}
	if _, err := ParseScheme("no-such-scheme"); err == nil {
		t.Error("ParseScheme should reject unknown names")
	}
}

// TestConfigControlPointResolution pins the shim precedence: Policy wins
// when non-zero, Scheme is consulted otherwise, zero-zero is the baseline.
func TestConfigControlPointResolution(t *testing.T) {
	var cfg Config
	if got := cfg.ControlPoint(); got != policy.Baseline {
		t.Errorf("zero config resolves to %v", got)
	}
	cfg.Scheme = SchemeThenCommit
	if got := cfg.ControlPoint(); got != policy.ThenCommit {
		t.Errorf("scheme shim resolves to %v", got)
	}
	cfg.Policy = policy.Compose(policy.ThenWrite, policy.ThenFetch)
	if got := cfg.ControlPoint(); got != policy.Compose(policy.ThenWrite, policy.ThenFetch) {
		t.Errorf("policy should win over scheme: %v", got)
	}
	// A denormalized literal (gate without Authenticate) resolves to the
	// normalized point.
	cfg.Policy = policy.ControlPoint{GateCommit: true}
	if got := cfg.ControlPoint(); got != policy.ThenCommit {
		t.Errorf("denormalized literal resolves to %v", got)
	}
}
