package sim_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"authpoint/internal/policy"
)

// TestFastPathBenchRegression is the CI bench-regression gate. It measures
// the fast-path and reference-loop host cost back to back on the same cell
// and fails if the fast path has lost more than 25% of its recorded
// advantage (BENCH_fastpath.json, regression_baseline.max_fast_over_slow).
//
// The gate compares the fast/slow *ratio*, not absolute host-ns/sim-cycle:
// both loops run on the same machine within seconds of each other, so the
// ratio is stable across runner hardware while absolute nanoseconds are
// not. A regression in the fast path specifically (µop cache misses,
// fast-forward stops firing) moves the ratio toward 1; optimizations shared
// by both paths cancel out, which is exactly what "fast path still earns
// its keep" should mean.
//
// The measurement takes ~20s on one core, so the test is opt-in: set
// BENCH_REGRESS=1 (CI does). Skip CI's run with "[bench-skip]" in the
// commit message.
func TestFastPathBenchRegression(t *testing.T) {
	if os.Getenv("BENCH_REGRESS") == "" {
		t.Skip("set BENCH_REGRESS=1 to run the bench-regression gate")
	}

	raw, err := os.ReadFile("../../BENCH_fastpath.json")
	if err != nil {
		t.Fatalf("reading checked-in baseline: %v", err)
	}
	var rec struct {
		RegressionBaseline struct {
			FastOverSlow    float64 `json:"fast_over_slow"`
			MaxFastOverSlow float64 `json:"max_fast_over_slow"`
		} `json:"regression_baseline"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("parsing BENCH_fastpath.json: %v", err)
	}
	max := rec.RegressionBaseline.MaxFastOverSlow
	if max <= 0 || max >= 1 {
		t.Fatalf("baseline max_fast_over_slow = %v, want a ratio in (0, 1)", max)
	}

	// Best of three runs per path damps scheduler noise; interleaving the
	// pairs keeps thermal/frequency drift from biasing one side.
	const insts, runs = 200_000, 3
	measure := func(slow bool) float64 {
		m := benchMachine(t, policy.ThenCommit, insts, slow)
		start := time.Now()
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(res.Cycles)
	}
	fast, slowNs := -1.0, -1.0
	for i := 0; i < runs; i++ {
		if f := measure(false); fast < 0 || f < fast {
			fast = f
		}
		if s := measure(true); slowNs < 0 || s < slowNs {
			slowNs = s
		}
	}

	ratio := fast / slowNs
	t.Logf("fast %.1f ns/cycle, slow %.1f ns/cycle, fast/slow %.3f (baseline %.3f, gate %.3f)",
		fast, slowNs, ratio, rec.RegressionBaseline.FastOverSlow, max)
	if ratio > max {
		t.Errorf("fast-path advantage regressed: fast/slow = %.3f > %.3f allowed "+
			"(baseline %.3f +25%%); profile the fast path or re-record BENCH_fastpath.json deliberately",
			ratio, max, rec.RegressionBaseline.FastOverSlow)
	}
}
