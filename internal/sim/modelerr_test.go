package sim_test

import (
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/sim"
)

// A secmem model inconsistency (an out-of-range gate dependency) must fail
// the run with StopModelError instead of panicking the whole process: in a
// parallel sweep, one malformed cell dies and the rest keep running.
func TestModelErrorFailsRun(t *testing.T) {
	p := asm.MustAssemble("_start:\n\tli r1, 1\n\thalt\n")
	m, err := sim.NewMachine(sim.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Inject the inconsistency a malformed dependency index would cause.
	if _, ok := m.Ctrl.DoneAt(99); ok {
		t.Fatal("out-of-range DoneAt reported done")
	}
	res, err := m.Run()
	if err == nil {
		t.Fatal("model inconsistency did not fail the run")
	}
	if res.Reason != sim.StopModelError {
		t.Fatalf("stop reason %v, want %v", res.Reason, sim.StopModelError)
	}
	if res.Reason.String() != "model-error" {
		t.Fatalf("StopModelError renders as %q", res.Reason.String())
	}
}
