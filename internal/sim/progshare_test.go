package sim

import (
	"maps"
	"slices"
	"sync"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/workload"
)

// progSnapshot deep-copies every field of a Program that a machine could
// conceivably write through.
type progSnapshot struct {
	textBase, dataBase, entry uint64
	text                      []uint32
	data                      []byte
	textLines                 []int
	symbols                   map[string]uint64
}

func snapshotProg(p *asm.Program) progSnapshot {
	return progSnapshot{
		textBase: p.TextBase, dataBase: p.DataBase, entry: p.Entry,
		text:      slices.Clone(p.Text),
		data:      slices.Clone(p.Data),
		textLines: slices.Clone(p.TextLines),
		symbols:   maps.Clone(p.Symbols),
	}
}

func (s progSnapshot) equal(p *asm.Program) bool {
	return s.textBase == p.TextBase && s.dataBase == p.DataBase && s.entry == p.Entry &&
		slices.Equal(s.text, p.Text) &&
		slices.Equal(s.data, p.Data) &&
		slices.Equal(s.textLines, p.TextLines) &&
		maps.Equal(s.symbols, p.Symbols)
}

// TestProgramImmutable pins the contract the parallel sweep engine's
// assembled-image cache depends on: NewMachine copies the program into each
// machine's own memories, and running the machine — including a
// store-heavy workload that dirties its data section — never writes back
// through the shared *asm.Program.
func TestProgramImmutable(t *testing.T) {
	w, ok := workload.ByName("twolfx") // read-modify-write kernel: dirty lines, writebacks
	if !ok {
		t.Fatal("missing workload")
	}
	p, err := asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotProg(p)

	var wg sync.WaitGroup
	for _, scheme := range []Scheme{SchemeBaseline, SchemeThenCommit, SchemeCommitPlusObfuscation} {
		wg.Add(1)
		go func(scheme Scheme) {
			defer wg.Done()
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.MaxInsts = 8_000
			m, err := NewMachine(cfg, p)
			if err != nil {
				t.Errorf("%v: %v", scheme, err)
				return
			}
			res, err := m.Run()
			if err != nil {
				t.Errorf("%v: %v", scheme, err)
				return
			}
			if res.Reason != StopMaxInsts {
				t.Errorf("%v: stopped with %v", scheme, res.Reason)
			}
			if res.Sec.Writebacks == 0 {
				t.Errorf("%v: workload produced no external writebacks; test lost its teeth", scheme)
			}
		}(scheme)
	}
	wg.Wait()

	if !snap.equal(p) {
		t.Fatal("running machines mutated the shared *asm.Program")
	}
}
