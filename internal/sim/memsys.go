// Package sim assembles the full secure processor: the out-of-order core,
// the L1/L2 cache hierarchy with TLBs, the secure memory controller with its
// authentication queue, the DRAM and bus models, and the program loader. It
// exposes the scheme selector that realizes the paper's authentication
// control points (Section 4.2), and the Run loop that detects security
// exceptions raised by failed integrity verification.
package sim

import (
	"fmt"

	"authpoint/internal/cache"
	"authpoint/internal/mem"
	"authpoint/internal/obs"
	"authpoint/internal/pipeline"
	"authpoint/internal/secmem"
)

// MemConfig describes the on-chip memory hierarchy (Table 3).
type MemConfig struct {
	L1IB, L1ILineB, L1IWays int
	L1DB, L1DLineB, L1DWays int
	L1Lat                   int
	L2B, L2LineB, L2Ways    int
	L2Lat                   int

	ITLBEntries, DTLBEntries, TLBWays int
	TLBMissPenalty                    int

	StoreBufSize int
	DrainPerTick int

	// GateFetch implements authen-then-fetch: an external fetch may not be
	// granted bus cycles until the authentication request associated with
	// the triggering instruction has completed (the LastRequest-register
	// variant of Section 4.2.4).
	GateFetch bool

	// FetchDrain selects Section 4.2.4's simpler drain variant instead: a
	// new external fetch waits until the authentication queue has drained
	// every request that had entered it by the time the fetch reached the
	// memory system, regardless of which instruction triggered it. Cheaper
	// to build, strictly more conservative. Only meaningful with GateFetch.
	FetchDrain bool

	// UseAtAuth makes load values usable only after their line verified
	// (the operand half of authen-then-issue).
	UseAtAuth bool

	// NextLinePrefetch adds a tagged next-line prefetcher at the L2: every
	// demand miss also fetches the following line. Prefetches are real
	// external fetches — they occupy the bus, enqueue verification
	// requests, and are subject to the same authentication gates.
	NextLinePrefetch bool

	// MSHRs bounds the number of outstanding external line fetches
	// (0 = unbounded, the default). With a bound, a miss arriving while all
	// miss registers are busy waits for the earliest in-flight fill.
	MSHRs int
}

// DefaultMemConfig returns the paper's Table 3 hierarchy with a 256KB L2.
func DefaultMemConfig() MemConfig {
	return MemConfig{
		L1IB: 16 << 10, L1ILineB: 32, L1IWays: 1,
		L1DB: 16 << 10, L1DLineB: 32, L1DWays: 1,
		L1Lat: 1,
		L2B:   256 << 10, L2LineB: 64, L2Ways: 4,
		L2Lat:       4,
		ITLBEntries: 128, DTLBEntries: 128, TLBWays: 4,
		TLBMissPenalty: 30,
		StoreBufSize:   16,
		DrainPerTick:   2,
	}
}

type lineInfo struct {
	authIdx  uint64
	authDone uint64
	usableAt uint64
}

type sbEntry struct {
	addr    uint64
	val     uint64
	size    int
	authTag uint64
	readyAt uint64 // fill-arrival cycle once the drain access was issued
}

// MemSystem implements pipeline.MemPort over the cache hierarchy and the
// secure memory controller.
type MemSystem struct {
	cfg  MemConfig
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	itlb *mem.TLB
	dtlb *mem.TLB

	ctrl   *secmem.Controller
	shadow *mem.Memory // architectural plaintext view (fills overwrite it)
	space  *mem.AddressSpace

	lines map[uint64]lineInfo // resident L2 lines' authentication state

	inflight []uint64 // usable-at cycles of outstanding fills (MSHR model)

	// wbBuf stages a victim line's plaintext for WriteBack — reused so
	// dirty-eviction churn does not allocate.
	wbBuf []byte

	// sb is a fixed-capacity ring (capacity StoreBufSize): the steady-state
	// commit/drain churn must not reallocate.
	sb            []sbEntry
	sbHead, sbLen int
	waitStoreAuth bool

	// tickProgress records whether the last Tick changed store-buffer or
	// hierarchy state (issued a drain access or retired an entry); false
	// licenses the idle-cycle fast-forward.
	tickProgress bool

	// Stats.
	SBFullRejects uint64
	FetchGateWait uint64 // cycles external fetches waited on then-fetch
	Prefetches    uint64
}

// NewMemSystem wires the hierarchy. shadow must already contain the
// program's plaintext (the loader guarantees fills and shadow agree at
// start).
func NewMemSystem(cfg MemConfig, ctrl *secmem.Controller, shadow *mem.Memory, space *mem.AddressSpace) (*MemSystem, error) {
	if cfg.L2LineB != ctrl.Config().LineB {
		return nil, fmt.Errorf("sim: L2 line %dB != controller line %dB", cfg.L2LineB, ctrl.Config().LineB)
	}
	if cfg.L1ILineB > cfg.L2LineB || cfg.L1DLineB > cfg.L2LineB {
		return nil, fmt.Errorf("sim: L1 lines larger than L2 line")
	}
	if cfg.StoreBufSize <= 0 || cfg.DrainPerTick <= 0 {
		return nil, fmt.Errorf("sim: store buffer config must be positive")
	}
	l1i, err := cache.New(cache.Config{Name: "l1i", SizeB: cfg.L1IB, LineB: cfg.L1ILineB, Ways: cfg.L1IWays})
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cache.Config{Name: "l1d", SizeB: cfg.L1DB, LineB: cfg.L1DLineB, Ways: cfg.L1DWays, WriteBck: true})
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cache.Config{Name: "l2", SizeB: cfg.L2B, LineB: cfg.L2LineB, Ways: cfg.L2Ways, WriteBck: true})
	if err != nil {
		return nil, err
	}
	itlb, err := mem.NewTLB(cfg.ITLBEntries, cfg.TLBWays)
	if err != nil {
		return nil, err
	}
	dtlb, err := mem.NewTLB(cfg.DTLBEntries, cfg.TLBWays)
	if err != nil {
		return nil, err
	}
	return &MemSystem{
		cfg: cfg, l1i: l1i, l1d: l1d, l2: l2, itlb: itlb, dtlb: dtlb,
		ctrl: ctrl, shadow: shadow, space: space,
		wbBuf: make([]byte, cfg.L2LineB),
		lines: map[uint64]lineInfo{},
		sb:    make([]sbEntry, cfg.StoreBufSize),
	}, nil
}

// Caches returns the cache models (stats inspection).
func (ms *MemSystem) Caches() (l1i, l1d, l2 *cache.Cache) { return ms.l1i, ms.l1d, ms.l2 }

// SetObserver attaches an event sink to the three caches; clock supplies the
// core's current cycle (cache lookups carry no cycle of their own).
func (ms *MemSystem) SetObserver(s obs.Sink, clock func() uint64) {
	ms.l1i.SetObserver(s, obs.TrackL1I, clock)
	ms.l1d.SetObserver(s, obs.TrackL1D, clock)
	ms.l2.SetObserver(s, obs.TrackL2, clock)
}

// ResetCacheStats zeroes the hit/miss counters of all three caches (after
// warmup, so measured miss ratios exclude cold-start fills).
func (ms *MemSystem) ResetCacheStats() {
	ms.l1i.ResetStats()
	ms.l1d.ResetStats()
	ms.l2.ResetStats()
}

// TLBs returns the TLB models.
func (ms *MemSystem) TLBs() (itlb, dtlb *mem.TLB) { return ms.itlb, ms.dtlb }

// access runs one timed access through the hierarchy and returns the cycle
// the data is usable plus the authentication info of the backing L2 line.
func (ms *MemSystem) access(now uint64, addr uint64, isWrite, isInst bool, fetchTag uint64) (ready uint64, info lineInfo, err error) {
	l1 := ms.l1d
	tlb := ms.dtlb
	if isInst {
		l1 = ms.l1i
		tlb = ms.itlb
	}
	// The L1 hit latency is part of the pipeline's stage structure (fetch
	// and load-execute stages each embed one L1 access), so an L1 hit is
	// ready at t; only miss latencies add cycles here.
	t := now
	if !tlb.Lookup(addr) {
		t += uint64(ms.cfg.TLBMissPenalty)
	}
	l2Line := ms.l2.LineAddr(addr)

	if l, hit := l1.Access(addr, isWrite); hit {
		ready = t
		if l.Aux > ready {
			ready = l.Aux // fill still in flight
		}
		return ready, ms.lines[l2Line], nil
	}

	// L1 miss -> L2.
	t += uint64(ms.cfg.L2Lat)
	if l, hit := ms.l2.Access(addr, false); hit {
		ready = t
		if l.Aux > ready {
			ready = l.Aux
		}
		ms.fillL1(l1, addr, isWrite, ready)
		if isWrite {
			l.Dirty = true
		}
		return ready, ms.lines[l2Line], nil
	}

	// L2 miss -> external fetch through the secure memory controller.
	if ms.cfg.MSHRs > 0 {
		t = ms.mshrAdmit(t)
	}
	var constraint uint64
	if ms.cfg.GateFetch {
		// Authen-then-fetch. LastRequest-register variant: the bus grant
		// waits for the request tagged at the triggering instruction's
		// issue — in-order completion means all earlier requests are done
		// too, so the program slice reaching this fetch is authenticated.
		// Drain variant: wait for everything in the queue right now.
		tag := fetchTag
		if ms.cfg.FetchDrain {
			tag = ms.ctrl.LastRequestAt(t)
		}
		gate, _ := ms.ctrl.DoneAt(tag)
		if gate > t {
			ms.FetchGateWait += gate - t
		}
		constraint = gate
	}
	res, ferr := ms.ctrl.Fetch(t, l2Line, constraint)
	if ferr != nil {
		return 0, lineInfo{}, ferr
	}
	usable := res.PlainReady
	if ms.cfg.UseAtAuth && ms.ctrl.Config().Authenticate {
		usable = max(usable, res.AuthDone)
	}
	// The fetched (possibly tampered) bytes become what the core sees —
	// except where a committed store still sitting in the store buffer is
	// architecturally newer than the external copy (the write-allocate
	// fill of a fresh store target races its own drain).
	ms.shadow.Write(l2Line, res.Data)
	ms.overlaySB(l2Line)

	l, victim := ms.l2.Fill(addr, false)
	l.Aux = usable
	if isWrite {
		l.Dirty = true
	}
	if victim != nil {
		delete(ms.lines, victim.Addr)
		if victim.Dirty {
			ms.shadow.ReadInto(ms.wbBuf, victim.Addr)
			if _, err := ms.ctrl.WriteBack(now, victim.Addr, ms.wbBuf); err != nil {
				return 0, lineInfo{}, err
			}
		}
	}
	info = lineInfo{authIdx: res.AuthIdx, authDone: res.AuthDone, usableAt: usable}
	ms.lines[l2Line] = info
	ms.fillL1(l1, addr, isWrite, usable)
	if ms.cfg.MSHRs > 0 {
		ms.inflight = append(ms.inflight, res.DataReady)
	}

	if ms.cfg.NextLinePrefetch {
		ms.prefetch(now, l2Line+uint64(ms.cfg.L2LineB), constraint)
	}
	return usable, info, nil
}

// mshrAdmit models a bounded miss-register file: prune fills that complete
// by cycle t; if all registers remain busy, the new miss stalls until the
// earliest one frees. Returns the admitted start cycle.
func (ms *MemSystem) mshrAdmit(t uint64) uint64 {
	live := ms.inflight[:0]
	for _, u := range ms.inflight {
		if u > t {
			live = append(live, u)
		}
	}
	ms.inflight = live
	for len(ms.inflight) >= ms.cfg.MSHRs {
		earliest := 0
		for i := 1; i < len(ms.inflight); i++ {
			if ms.inflight[i] < ms.inflight[earliest] {
				earliest = i
			}
		}
		t = ms.inflight[earliest]
		ms.inflight = append(ms.inflight[:earliest], ms.inflight[earliest+1:]...)
	}
	return t
}

// prefetch fetches one line into the L2 without a waiting consumer. Errors
// (e.g. running off the protected region) silently drop the prefetch, as
// hardware would.
func (ms *MemSystem) prefetch(now uint64, lineAddr uint64, constraint uint64) {
	if !ms.ctrl.IsProtected(lineAddr) {
		return
	}
	if _, hit := ms.l2.Probe(lineAddr); hit {
		return
	}
	res, err := ms.ctrl.Fetch(now, lineAddr, constraint)
	if err != nil {
		return
	}
	usable := res.PlainReady
	if ms.cfg.UseAtAuth && ms.ctrl.Config().Authenticate {
		usable = max(usable, res.AuthDone)
	}
	ms.shadow.Write(lineAddr, res.Data)
	ms.overlaySB(lineAddr)
	l, victim := ms.l2.Fill(lineAddr, false)
	l.Aux = usable
	if victim != nil {
		delete(ms.lines, victim.Addr)
		if victim.Dirty {
			ms.shadow.ReadInto(ms.wbBuf, victim.Addr)
			ms.ctrl.WriteBack(now, victim.Addr, ms.wbBuf)
		}
	}
	ms.lines[lineAddr] = lineInfo{authIdx: res.AuthIdx, authDone: res.AuthDone, usableAt: usable}
	ms.Prefetches++
}

// fillL1 installs an L1 line, pushing dirty victims down into the L2.
func (ms *MemSystem) fillL1(l1 *cache.Cache, addr uint64, isWrite bool, readyAt uint64) {
	l, victim := l1.Fill(addr, isWrite)
	l.Aux = readyAt
	if victim != nil && victim.Dirty {
		// Inclusive hierarchy: the victim's L2 line is normally resident.
		if vl, hit := ms.l2.Access(victim.Addr, true); hit {
			_ = vl
		}
	}
}

// FetchInst implements pipeline.MemPort.
func (ms *MemSystem) FetchInst(now uint64, addr uint64, fetchTag uint64) pipeline.InstFetch {
	if !ms.space.Valid(addr) {
		return pipeline.InstFetch{Fault: true}
	}
	ready, info, err := ms.access(now, addr, false, true, fetchTag)
	if err != nil {
		return pipeline.InstFetch{Fault: true}
	}
	return pipeline.InstFetch{
		Word:     uint32(ms.shadow.ReadUint(addr, 4)),
		Ready:    ready,
		AuthIdx:  info.authIdx,
		AuthDone: info.authDone,
	}
}

// ReadData implements pipeline.MemPort.
func (ms *MemSystem) ReadData(now uint64, addr uint64, size int, fetchTag uint64) pipeline.DataRead {
	if !ms.space.Valid(addr) {
		return pipeline.DataRead{Fault: true}
	}
	ready, info, err := ms.access(now, addr, false, false, fetchTag)
	if err != nil {
		return pipeline.DataRead{Fault: true}
	}
	return pipeline.DataRead{
		Raw:      ms.shadow.ReadUint(addr, size),
		Ready:    ready,
		AuthIdx:  info.authIdx,
		AuthDone: info.authDone,
	}
}

// overlaySB re-applies committed-but-undrained stores that land in a freshly
// filled line: the store buffer is architecturally newer than the external
// copy (the write-allocate fill of a fresh store target races its own drain).
func (ms *MemSystem) overlaySB(lineAddr uint64) {
	lineEnd := lineAddr + uint64(ms.cfg.L2LineB)
	for i := 0; i < ms.sbLen; i++ {
		e := &ms.sb[(ms.sbHead+i)%ms.cfg.StoreBufSize]
		if e.addr >= lineAddr && e.addr < lineEnd {
			ms.shadow.WriteUint(e.addr, e.val, e.size)
		}
	}
}

// CommitStore implements pipeline.MemPort: architectural memory updates
// immediately; the timed cache write drains from the store buffer.
func (ms *MemSystem) CommitStore(now uint64, addr uint64, val uint64, size int, authTag uint64) bool {
	if ms.sbLen >= ms.cfg.StoreBufSize {
		ms.SBFullRejects++
		return false
	}
	ms.shadow.WriteUint(addr, val, size)
	ms.sb[(ms.sbHead+ms.sbLen)%ms.cfg.StoreBufSize] = sbEntry{addr: addr, val: val, size: size, authTag: authTag}
	ms.sbLen++
	return true
}

// Tick drains the store buffer. Under authen-then-write a store may not
// update the cache (and hence never external memory) until the
// authentication request tagged at its issue has verified. A draining store
// occupies its buffer slot until its write-allocate fill arrives, so a
// store-miss stream throttles commit through store-buffer backpressure —
// without this, the core races arbitrarily far ahead of the memory system.
func (ms *MemSystem) Tick(now uint64) {
	ms.tickProgress = false
	drained := 0
	for ms.sbLen > 0 && drained < ms.cfg.DrainPerTick {
		e := &ms.sb[ms.sbHead]
		if ms.waitStoreAuth {
			done, _ := ms.ctrl.DoneAt(e.authTag)
			if now < done {
				return // head-of-line: wait (failure halts the machine anyway)
			}
		}
		if e.readyAt == 0 {
			ready, _, err := ms.access(now, e.addr, true, false, e.authTag)
			if err != nil {
				return
			}
			if ready < now+1 {
				ready = now + 1
			}
			e.readyAt = ready
			ms.tickProgress = true
		}
		if now < e.readyAt {
			return
		}
		ms.sbHead = (ms.sbHead + 1) % ms.cfg.StoreBufSize
		ms.sbLen--
		drained++
		ms.tickProgress = true
	}
}

// TickProgressed reports whether the last Tick changed state. False means
// the store buffer is idle (or blocked) until the cycle NextEventAt names.
func (ms *MemSystem) TickProgressed() bool { return ms.tickProgress }

// NextEventAt returns the earliest cycle >= now at which Tick could act,
// valid only right after a Tick that reported no progress. A value <= now
// vetoes skipping; neverCycle (when the buffer is empty) imposes no bound.
func (ms *MemSystem) NextEventAt(now uint64) uint64 {
	if ms.sbLen == 0 {
		return ^uint64(0)
	}
	e := &ms.sb[ms.sbHead]
	if ms.waitStoreAuth {
		if done, _ := ms.ctrl.DoneAt(e.authTag); now < done {
			return done
		}
	}
	if e.readyAt == 0 || now >= e.readyAt {
		return now // head could act immediately: cannot skip
	}
	return e.readyAt
}

// AddSkippedRejects credits n cycles of head-of-ROB store retries that the
// idle-cycle fast-forward skipped: the slow path would have called
// CommitStore once per cycle against a full buffer.
func (ms *MemSystem) AddSkippedRejects(n uint64) { ms.SBFullRejects += n }

// SetStoreWaitAuth enables authen-then-write gating in the store buffer.
func (ms *MemSystem) SetStoreWaitAuth(on bool) { ms.waitStoreAuth = on }

// StoreBufferEmpty reports whether all committed stores have drained.
func (ms *MemSystem) StoreBufferEmpty() bool { return ms.sbLen == 0 }

// ValidAddr implements pipeline.MemPort.
func (ms *MemSystem) ValidAddr(addr uint64) bool { return ms.space.Valid(addr) }

// LogFault implements pipeline.MemPort.
func (ms *MemSystem) LogFault(addr uint64) { ms.space.Fault(addr) }

// LastAuthRequest implements pipeline.MemPort.
func (ms *MemSystem) LastAuthRequest(now uint64) uint64 { return ms.ctrl.LastRequestAt(now) }
