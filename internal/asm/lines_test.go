package asm

import "testing"

func TestClassifyLine(t *testing.T) {
	cases := []struct {
		line string
		want LineKind
	}{
		{"", LineBlank},
		{"   ", LineBlank},
		{"; just a comment", LineBlank},
		{"  # hash comment", LineBlank},
		{"loop:", LineLabel},
		{"  loop: ", LineLabel},
		{"a: b:", LineLabel}, // multiple labels, nothing else
		{".data", LineDirective},
		{".space 64", LineDirective},
		{"buf: .space 64", LineDirective}, // label then directive: must survive minimization
		{"\tadd r1, r2, r3", LineInst},
		{"halt", LineInst},
		{"loop: addi r1, r1, -1", LineInst}, // label then inst: kept, for the label
		{"\tld   r3, 0(r1)  ; trailing comment", LineInst},
		{"beq r1, r2, done", LineInst}, // the operand colon-less label is not a definition
	}
	for _, c := range cases {
		if got := ClassifyLine(c.line); got != c.want {
			t.Errorf("ClassifyLine(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}
