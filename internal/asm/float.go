package asm

import "math"

// float64bits isolates the math dependency for .float emission.
func float64bits(f float64) uint64 { return math.Float64bits(f) }
