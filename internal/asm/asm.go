// Package asm implements a two-pass assembler for the authpoint ISA.
//
// The assembler consumes a textual program with .text/.data sections, labels,
// data directives, and a small set of pseudo-instructions, and produces a
// relocated binary image. All workloads, examples, and attack kernels in this
// repository are written in this assembly language.
//
// Syntax summary:
//
//	; comment            # comment
//	.text [addr]         switch to text section (optionally at addr)
//	.data [addr]         switch to data section
//	.align n             align to n bytes
//	.word v ...          emit 64-bit little-endian words (data section)
//	.word4 v ...         emit 32-bit words
//	.byte v ...          emit bytes
//	.space n [fill]      emit n bytes of fill (default 0)
//	.float v ...         emit float64 values
//	label:               define label at current location
//	add r1, r2, r3       R-format instruction
//	addi r1, r2, -5      I-format instruction
//	ld r1, 8(r2)         load/store with displacement
//	beq r1, r2, label    branches take label or numeric word offset
//	jal ra, label        jump and link
//	li r1, imm64         pseudo: load up to 48-bit constant (1-3 insts)
//	la r1, label         pseudo: load address of label
//	mov r1, r2           pseudo: addi r1, r2, 0
//	b label              pseudo: beq r0, r0, label
//	ret                  pseudo: jalr r0, ra, 0
//
// Registers: r0..r31 (aliases: zero=r0, sp=r30, ra=r31), f0..f31.
package asm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"authpoint/internal/isa"
)

// Default section base addresses. Text at 4KB, data at 1MB. Both lie in the
// protected (encrypted + authenticated) region of the address space.
const (
	DefaultTextBase = 0x1000
	DefaultDataBase = 0x100000
)

// Program is an assembled binary image.
type Program struct {
	TextBase uint64
	Text     []uint32 // encoded instruction words
	DataBase uint64
	Data     []byte
	Entry    uint64            // address of `_start` label, or TextBase
	Symbols  map[string]uint64 // label -> address

	// TextLines maps each instruction index to the 1-based source line it
	// was assembled from (pseudo-instruction expansions share their source
	// line). Diagnostics tooling (cmd/authlint) uses it to point findings
	// back at the assembly source.
	TextLines []int
}

// LineFor returns the source line of the instruction at text index i, or 0
// if unknown (e.g. a program constructed without the assembler).
func (p *Program) LineFor(i int) int {
	if i < 0 || i >= len(p.TextLines) {
		return 0
	}
	return p.TextLines[i]
}

// SymbolRange is a named region of the image: a label and the half-open
// address range from it to the next label (or section end).
type SymbolRange struct {
	Name       string
	Start, End uint64
}

// SymbolRanges returns every symbol with its extent, sorted by address.
// Extents are derived positionally: a symbol ends where the next symbol in
// the same section starts, or at the section end. Static analysis uses these
// to map annotated regions (e.g. secrets) to address ranges.
func (p *Program) SymbolRanges() []SymbolRange {
	textEnd := p.TextBase + uint64(len(p.Text)*isa.InstBytes)
	dataEnd := p.DataBase + uint64(len(p.Data))
	var out []SymbolRange
	for name, addr := range p.Symbols {
		out = append(out, SymbolRange{Name: name, Start: addr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	sectionEnd := func(addr uint64) uint64 {
		if addr >= p.DataBase && addr <= dataEnd {
			return dataEnd
		}
		return textEnd
	}
	for i := range out {
		end := sectionEnd(out[i].Start)
		for j := i + 1; j < len(out); j++ {
			if out[j].Start > out[i].Start && out[j].Start <= end {
				end = out[j].Start
				break
			}
		}
		out[i].End = end
	}
	return out
}

// NearestSymbol returns the closest label at or before addr in the text
// section, with the byte offset from it; ok is false if none precedes addr.
func (p *Program) NearestSymbol(addr uint64) (name string, off uint64, ok bool) {
	best := uint64(0)
	for n, a := range p.Symbols {
		if a <= addr && (!ok || a > best || (a == best && n < name)) {
			name, best, ok = n, a, true
		}
	}
	return name, addr - best, ok
}

// TextBytes returns the text section as little-endian bytes.
func (p *Program) TextBytes() []byte {
	b := make([]byte, len(p.Text)*isa.InstBytes)
	for i, w := range p.Text {
		b[i*4+0] = byte(w)
		b[i*4+1] = byte(w >> 8)
		b[i*4+2] = byte(w >> 16)
		b[i*4+3] = byte(w >> 24)
	}
	return b
}

// Sentinel error kinds. Every *Error wraps exactly one of these, so callers
// classify assembly failures with errors.Is instead of string matching:
//
//	if errors.Is(err, asm.ErrUndefinedLabel) { ... }
var (
	// ErrSyntax is the catch-all for malformed lines, operands, and values.
	ErrSyntax = errors.New("syntax error")
	// ErrUndefinedLabel marks a reference to a label that is never defined.
	ErrUndefinedLabel = errors.New("undefined label")
	// ErrDuplicateLabel marks a label defined twice.
	ErrDuplicateLabel = errors.New("duplicate label")
	// ErrUnknownMnemonic marks an unrecognized instruction mnemonic.
	ErrUnknownMnemonic = errors.New("unknown mnemonic")
	// ErrUnknownDirective marks an unrecognized dot-directive.
	ErrUnknownDirective = errors.New("unknown directive")
	// ErrRange marks an immediate, offset, or register outside its encodable
	// range (including branch targets that do not fit in imm16).
	ErrRange = errors.New("value out of range")
)

// Error is an assembly error annotated with a source line. It wraps one of
// the package's sentinel kinds (ErrUndefinedLabel, ErrRange, ...), reachable
// via errors.Is / Unwrap.
type Error struct {
	Line int
	Text string
	Msg  string
	Err  error // sentinel kind; ErrSyntax if unset
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s (in %q)", e.Line, e.Msg, e.Text)
}

// Unwrap exposes the sentinel kind for errors.Is matching.
func (e *Error) Unwrap() error {
	if e.Err == nil {
		return ErrSyntax
	}
	return e.Err
}

type section int

const (
	secText section = iota
	secData
)

type fixup struct {
	line    int
	src     string
	textIdx int    // instruction index in Text
	label   string // target label
	kind    fixupKind
}

type fixupKind int

const (
	fixBranch fixupKind = iota // pc-relative word offset into imm16
	fixJAL                     // pc-relative word offset into imm16
	fixLA                      // absolute address into li sequence (3 insts)
)

// dataFixup patches a label's address into the data section.
type dataFixup struct {
	line   int
	src    string
	offset int // byte offset in the data buffer
	size   int // 4 or 8
	label  string
}

type assembler struct {
	prog       Program
	sec        section
	fixups     []fixup
	dataFixups []dataFixup
	line       int
	src        string
	dataBuf    []byte
	textAddr   uint64 // next text address
}

// Assemble assembles source into a Program.
func Assemble(source string) (*Program, error) {
	a := &assembler{
		prog: Program{
			TextBase: DefaultTextBase,
			DataBase: DefaultDataBase,
			Symbols:  map[string]uint64{},
		},
		sec: secText,
	}
	a.textAddr = a.prog.TextBase
	for i, raw := range strings.Split(source, "\n") {
		a.line = i + 1
		a.src = raw
		if err := a.doLine(raw); err != nil {
			return nil, err
		}
	}
	a.prog.Data = a.dataBuf
	if err := a.resolveFixups(); err != nil {
		return nil, err
	}
	if e, ok := a.prog.Symbols["_start"]; ok {
		a.prog.Entry = e
	} else {
		a.prog.Entry = a.prog.TextBase
	}
	return &a.prog, nil
}

// MustAssemble is Assemble but panics on error; for generators and tests.
func MustAssemble(source string) *Program {
	p, err := Assemble(source)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(format string, args ...any) error {
	return a.errw(ErrSyntax, format, args...)
}

// errw builds an *Error wrapping the given sentinel kind.
func (a *assembler) errw(kind error, format string, args ...any) error {
	return &Error{Line: a.line, Text: strings.TrimSpace(a.src), Msg: fmt.Sprintf(format, args...), Err: kind}
}

func (a *assembler) here() uint64 {
	if a.sec == secText {
		return a.textAddr
	}
	return a.prog.DataBase + uint64(len(a.dataBuf))
}

func stripComment(s string) string {
	for _, c := range []string{";", "#", "//"} {
		if i := strings.Index(s, c); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func (a *assembler) doLine(raw string) error {
	s := stripComment(raw)
	if s == "" {
		return nil
	}
	// Labels (possibly several, possibly followed by an instruction).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			return a.errf("invalid label %q", label)
		}
		if _, dup := a.prog.Symbols[label]; dup {
			return a.errw(ErrDuplicateLabel, "duplicate label %q", label)
		}
		a.prog.Symbols[label] = a.here()
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.doDirective(s)
	}
	return a.doInst(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (a *assembler) doDirective(s string) error {
	fields := strings.Fields(s)
	dir := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(s, dir))
	args := splitOperands(rest)
	switch dir {
	case ".text":
		a.sec = secText
		if len(args) == 1 && args[0] != "" {
			v, err := parseInt(args[0])
			if err != nil {
				return a.errf(".text address: %v", err)
			}
			if len(a.prog.Text) > 0 {
				return a.errf(".text base must be set before any instructions")
			}
			a.prog.TextBase = uint64(v)
			a.textAddr = a.prog.TextBase
		}
	case ".data":
		a.sec = secData
		if len(args) == 1 && args[0] != "" {
			v, err := parseInt(args[0])
			if err != nil {
				return a.errf(".data address: %v", err)
			}
			if len(a.dataBuf) > 0 {
				return a.errf(".data base must be set before any data")
			}
			a.prog.DataBase = uint64(v)
		}
	case ".align":
		if a.sec != secData {
			return a.errf(".align only supported in .data")
		}
		if len(args) != 1 {
			return a.errf(".align takes one argument")
		}
		n, err := parseInt(args[0])
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf(".align argument must be a positive power of two")
		}
		for uint64(len(a.dataBuf))%uint64(n) != 0 {
			a.dataBuf = append(a.dataBuf, 0)
		}
	case ".word", ".word4", ".byte":
		if a.sec != secData {
			return a.errf("%s only supported in .data", dir)
		}
		size := map[string]int{".word": 8, ".word4": 4, ".byte": 1}[dir]
		for _, arg := range args {
			v, err := parseInt(arg)
			if err != nil {
				// Labels may be used as data values (building linked
				// structures in the image); forward references are patched
				// after the first pass.
				if addr, ok := a.prog.Symbols[arg]; ok {
					v = int64(addr)
				} else if isIdent(arg) && size >= 4 {
					a.dataFixups = append(a.dataFixups, dataFixup{
						line: a.line, src: a.src, offset: len(a.dataBuf), size: size, label: arg,
					})
					v = 0
				} else {
					return a.errf("%s value %q: %v", dir, arg, err)
				}
			}
			for b := 0; b < size; b++ {
				a.dataBuf = append(a.dataBuf, byte(uint64(v)>>(8*b)))
			}
		}
	case ".float":
		if a.sec != secData {
			return a.errf(".float only supported in .data")
		}
		for _, arg := range args {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return a.errf(".float value %q: %v", arg, err)
			}
			bits := float64bits(f)
			for b := 0; b < 8; b++ {
				a.dataBuf = append(a.dataBuf, byte(bits>>(8*b)))
			}
		}
	case ".space":
		if a.sec != secData {
			return a.errf(".space only supported in .data")
		}
		if len(args) < 1 || len(args) > 2 {
			return a.errf(".space takes 1 or 2 arguments")
		}
		n, err := parseInt(args[0])
		if err != nil || n < 0 {
			return a.errf(".space size must be non-negative")
		}
		fill := byte(0)
		if len(args) == 2 {
			f, err := parseInt(args[1])
			if err != nil {
				return a.errf(".space fill: %v", err)
			}
			fill = byte(f)
		}
		for i := int64(0); i < n; i++ {
			a.dataBuf = append(a.dataBuf, fill)
		}
	default:
		return a.errw(ErrUnknownDirective, "unknown directive %s", dir)
	}
	return nil
}

func parseInt(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case strings.HasPrefix(s, "0b"):
		v, err = strconv.ParseUint(s[2:], 2, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func (a *assembler) emit(inst isa.Inst) error {
	if a.sec != secText {
		return a.errf("instruction outside .text")
	}
	w, err := isa.Encode(inst)
	if err != nil {
		return a.errw(ErrRange, "%v", err)
	}
	a.prog.Text = append(a.prog.Text, w)
	a.prog.TextLines = append(a.prog.TextLines, a.line)
	a.textAddr += isa.InstBytes
	return nil
}

func parseReg(s string, fp bool) (uint8, error) {
	switch s {
	case "zero":
		return 0, nil
	case "sp":
		return isa.RegSP, nil
	case "ra":
		return isa.RegRA, nil
	}
	want := byte('r')
	if fp {
		want = 'f'
	}
	if len(s) < 2 || s[0] != want {
		return 0, fmt.Errorf("expected %c-register, got %q", want, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumIntRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseMem parses "disp(base)" or "(base)".
func parseMem(s string) (int64, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("expected disp(base), got %q", s)
	}
	disp := int64(0)
	if open > 0 {
		v, err := parseInt(strings.TrimSpace(s[:open]))
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement in %q: %v", s, err)
		}
		disp = v
	}
	base, err := parseReg(strings.TrimSpace(s[open+1:len(s)-1]), false)
	if err != nil {
		return 0, 0, err
	}
	return disp, base, nil
}

func (a *assembler) doInst(s string) error {
	fields := strings.SplitN(s, " ", 2)
	mn := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	ops := splitOperands(rest)

	// Pseudo-instructions first.
	switch mn {
	case "li":
		if len(ops) != 2 {
			return a.errf("li takes rd, imm")
		}
		rd, err := parseReg(ops[0], false)
		if err != nil {
			return a.errf("%v", err)
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return a.errf("li immediate: %v", err)
		}
		return a.emitLI(rd, uint64(v))
	case "la":
		if len(ops) != 2 {
			return a.errf("la takes rd, label")
		}
		rd, err := parseReg(ops[0], false)
		if err != nil {
			return a.errf("%v", err)
		}
		if addr, ok := a.prog.Symbols[ops[1]]; ok {
			return a.emitLI(rd, addr)
		}
		// Forward reference: reserve a fixed 3-instruction sequence.
		a.fixups = append(a.fixups, fixup{
			line: a.line, src: a.src, textIdx: len(a.prog.Text), label: ops[1], kind: fixLA,
		})
		for i := 0; i < 3; i++ {
			if err := a.emit(isa.Inst{Op: isa.OpNOP}); err != nil {
				return err
			}
		}
		// Patch rd into the placeholder later; remember it via an ORI trick:
		// the fixup rewrites all three instructions, so stash rd in the first
		// NOP's encoding is not possible — instead record it in the label.
		a.fixups[len(a.fixups)-1].label = ops[1] + "\x00" + strconv.Itoa(int(rd))
		return nil
	case "mov":
		if len(ops) != 2 {
			return a.errf("mov takes rd, rs")
		}
		rd, err1 := parseReg(ops[0], false)
		rs, err2 := parseReg(ops[1], false)
		if err1 != nil || err2 != nil {
			return a.errf("mov registers")
		}
		return a.emit(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rs, Imm: 0})
	case "b", "j":
		if len(ops) != 1 {
			return a.errf("b takes a target")
		}
		return a.emitBranch(isa.OpBEQ, 0, 0, ops[0])
	case "ret":
		return a.emit(isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: isa.RegRA, Imm: 0})
	case "call":
		if len(ops) != 1 {
			return a.errf("call takes a target")
		}
		return a.emitJAL(isa.RegRA, ops[0])
	}

	op, ok := isa.OpByName(mn)
	if !ok {
		return a.errw(ErrUnknownMnemonic, "unknown mnemonic %q", mn)
	}
	return a.emitOp(op, ops)
}

// emitLI emits a minimal 1-3 instruction sequence loading a constant whose
// magnitude fits in 48 bits (covering the whole simulated address space).
func (a *assembler) emitLI(rd uint8, v uint64) error {
	if rd >= 16 {
		return a.errf("li destination must be r0..r15")
	}
	if int64(v) >= -(1<<15) && int64(v) < 1<<15 {
		return a.emit(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: 0, Imm: int32(int64(v))})
	}
	if v>>48 != 0 {
		return a.errw(ErrRange, "li constant %#x exceeds 48 bits", v)
	}
	lo := uint16(v)
	mid := uint16(v >> 16)
	hi := uint16(v >> 32)
	if err := a.emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: int32(mid)}); err != nil {
		return err
	}
	if lo != 0 {
		if err := a.emit(isa.Inst{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: int32(lo)}); err != nil {
			return err
		}
	}
	if hi != 0 {
		if err := a.emit(isa.Inst{Op: isa.OpLUIH, Rd: rd, Rs1: rd, Imm: int32(hi)}); err != nil {
			return err
		}
	}
	return nil
}

// liSequence encodes the fixed-length (3-word) li used for forward la fixups.
func liSequence(rd uint8, v uint64) ([3]uint32, error) {
	var out [3]uint32
	seq := []isa.Inst{
		{Op: isa.OpLUI, Rd: rd, Imm: int32(uint16(v >> 16))},
		{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: int32(uint16(v))},
		{Op: isa.OpLUIH, Rd: rd, Rs1: rd, Imm: int32(uint16(v >> 32))},
	}
	for i, inst := range seq {
		w, err := isa.Encode(inst)
		if err != nil {
			return out, err
		}
		out[i] = w
	}
	return out, nil
}

func (a *assembler) emitBranch(op isa.Op, rs1, rs2 uint8, target string) error {
	if off, err := parseInt(target); err == nil {
		return a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: int32(off)})
	}
	if addr, ok := a.prog.Symbols[target]; ok {
		off := wordOffset(a.here(), addr)
		return a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	}
	a.fixups = append(a.fixups, fixup{
		line: a.line, src: a.src, textIdx: len(a.prog.Text), label: target, kind: fixBranch,
	})
	return a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: 0})
}

func (a *assembler) emitJAL(rd uint8, target string) error {
	if off, err := parseInt(target); err == nil {
		return a.emit(isa.Inst{Op: isa.OpJAL, Rd: rd, Imm: int32(off)})
	}
	if addr, ok := a.prog.Symbols[target]; ok {
		off := wordOffset(a.here(), addr)
		return a.emit(isa.Inst{Op: isa.OpJAL, Rd: rd, Imm: off})
	}
	a.fixups = append(a.fixups, fixup{
		line: a.line, src: a.src, textIdx: len(a.prog.Text), label: target, kind: fixJAL,
	})
	return a.emit(isa.Inst{Op: isa.OpJAL, Rd: rd, Imm: 0})
}

// wordOffset computes the imm16 branch offset from the instruction at pc to
// target (offset counts instruction words from pc+4).
func wordOffset(pc, target uint64) int32 {
	return int32((int64(target) - int64(pc) - isa.InstBytes) / isa.InstBytes)
}

func (a *assembler) emitOp(op isa.Op, ops []string) error {
	fpAB := func(i int) bool { // whether operand i is an FP register for op
		switch op {
		case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFNEG:
			return true
		case isa.OpFCVTIF:
			return i == 0
		case isa.OpFCVTFI:
			return i == 1
		case isa.OpFBLT, isa.OpFBGE:
			return i <= 1
		case isa.OpFLD, isa.OpFSD:
			return i == 0
		}
		return false
	}
	switch op.Class() {
	case isa.ClassNop, isa.ClassHalt:
		if len(ops) != 0 {
			return a.errf("%v takes no operands", op)
		}
		return a.emit(isa.Inst{Op: op})
	case isa.ClassALU, isa.ClassMul:
		switch op {
		case isa.OpLUI, isa.OpLUIH:
			if len(ops) != 2 {
				return a.errf("%v takes rd, imm", op)
			}
			rd, err := parseReg(ops[0], false)
			if err != nil {
				return a.errf("%v", err)
			}
			v, err := parseInt(ops[1])
			if err != nil {
				return a.errf("immediate: %v", err)
			}
			rs1 := uint8(0)
			if op == isa.OpLUIH {
				rs1 = rd
			}
			return a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})
		}
		if len(ops) != 3 {
			return a.errf("%v takes 3 operands", op)
		}
		rd, err := parseReg(ops[0], false)
		if err != nil {
			return a.errf("%v", err)
		}
		rs1, err := parseReg(ops[1], false)
		if err != nil {
			return a.errf("%v", err)
		}
		if op.HasImm() {
			v, err := parseInt(ops[2])
			if err != nil {
				return a.errf("immediate: %v", err)
			}
			return a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})
		}
		rs2, err := parseReg(ops[2], false)
		if err != nil {
			return a.errf("%v", err)
		}
		return a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	case isa.ClassLoad, isa.ClassFPLoad:
		if op == isa.OpPREF {
			if len(ops) != 1 {
				return a.errf("pref takes disp(base)")
			}
			disp, base, err := parseMem(ops[0])
			if err != nil {
				return a.errf("%v", err)
			}
			return a.emit(isa.Inst{Op: op, Rs1: base, Imm: int32(disp)})
		}
		if len(ops) != 2 {
			return a.errf("%v takes rd, disp(base)", op)
		}
		rd, err := parseReg(ops[0], op.Class() == isa.ClassFPLoad)
		if err != nil {
			return a.errf("%v", err)
		}
		disp, base, err := parseMem(ops[1])
		if err != nil {
			return a.errf("%v", err)
		}
		return a.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: int32(disp)})
	case isa.ClassStore, isa.ClassFPStore:
		if len(ops) != 2 {
			return a.errf("%v takes rs, disp(base)", op)
		}
		rs2, err := parseReg(ops[0], op.Class() == isa.ClassFPStore)
		if err != nil {
			return a.errf("%v", err)
		}
		disp, base, err := parseMem(ops[1])
		if err != nil {
			return a.errf("%v", err)
		}
		return a.emit(isa.Inst{Op: op, Rs1: base, Rs2: rs2, Imm: int32(disp)})
	case isa.ClassBranch:
		if len(ops) != 3 {
			return a.errf("%v takes rs1, rs2, target", op)
		}
		fp := fpAB(0)
		rs1, err := parseReg(ops[0], fp)
		if err != nil {
			return a.errf("%v", err)
		}
		rs2, err := parseReg(ops[1], fp)
		if err != nil {
			return a.errf("%v", err)
		}
		return a.emitBranch(op, rs1, rs2, ops[2])
	case isa.ClassJump:
		if op == isa.OpJAL {
			if len(ops) != 2 {
				return a.errf("jal takes rd, target")
			}
			rd, err := parseReg(ops[0], false)
			if err != nil {
				return a.errf("%v", err)
			}
			return a.emitJAL(rd, ops[1])
		}
		if len(ops) != 3 {
			return a.errf("jalr takes rd, rs1, imm")
		}
		rd, err := parseReg(ops[0], false)
		if err != nil {
			return a.errf("%v", err)
		}
		rs1, err := parseReg(ops[1], false)
		if err != nil {
			return a.errf("%v", err)
		}
		v, err := parseInt(ops[2])
		if err != nil {
			return a.errf("immediate: %v", err)
		}
		return a.emit(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: int32(v)})
	case isa.ClassFPU:
		nops := 3
		if op == isa.OpFNEG || op == isa.OpFCVTIF || op == isa.OpFCVTFI {
			nops = 2
		}
		if len(ops) != nops {
			return a.errf("%v takes %d operands", op, nops)
		}
		rd, err := parseReg(ops[0], fpAB(0))
		if err != nil {
			return a.errf("%v", err)
		}
		rs1, err := parseReg(ops[1], fpAB(1))
		if err != nil {
			return a.errf("%v", err)
		}
		inst := isa.Inst{Op: op, Rd: rd, Rs1: rs1}
		if nops == 3 {
			rs2, err := parseReg(ops[2], true)
			if err != nil {
				return a.errf("%v", err)
			}
			inst.Rs2 = rs2
		}
		return a.emit(inst)
	case isa.ClassOut:
		if len(ops) != 2 {
			return a.errf("out takes rs, port")
		}
		rs2, err := parseReg(ops[0], false)
		if err != nil {
			return a.errf("%v", err)
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return a.errf("port: %v", err)
		}
		return a.emit(isa.Inst{Op: isa.OpOUT, Rs2: rs2, Imm: int32(v)})
	case isa.ClassPAC:
		nops := 3 // sign/auth: rd, pointer, modifier
		if op == isa.OpSTRIP {
			nops = 2
		}
		if len(ops) != nops {
			return a.errf("%v takes %d operands", op, nops)
		}
		rd, err := parseReg(ops[0], false)
		if err != nil {
			return a.errf("%v", err)
		}
		rs1, err := parseReg(ops[1], false)
		if err != nil {
			return a.errf("%v", err)
		}
		inst := isa.Inst{Op: op, Rd: rd, Rs1: rs1}
		if nops == 3 {
			rs2, err := parseReg(ops[2], false)
			if err != nil {
				return a.errf("%v", err)
			}
			inst.Rs2 = rs2
		}
		return a.emit(inst)
	}
	return a.errf("unhandled op %v", op)
}

func (a *assembler) resolveFixups() error {
	for _, df := range a.dataFixups {
		addr, ok := a.prog.Symbols[df.label]
		if !ok {
			return &Error{Line: df.line, Text: strings.TrimSpace(df.src), Msg: fmt.Sprintf("undefined label %q", df.label), Err: ErrUndefinedLabel}
		}
		if df.size == 4 && addr >= 1<<32 {
			return &Error{Line: df.line, Text: strings.TrimSpace(df.src), Msg: fmt.Sprintf("label %q does not fit in .word4", df.label), Err: ErrRange}
		}
		for b := 0; b < df.size; b++ {
			a.prog.Data[df.offset+b] = byte(addr >> (8 * b))
		}
	}
	for _, f := range a.fixups {
		label := f.label
		var laReg uint8
		if f.kind == fixLA {
			parts := strings.SplitN(f.label, "\x00", 2)
			label = parts[0]
			n, _ := strconv.Atoi(parts[1])
			laReg = uint8(n)
		}
		addr, ok := a.prog.Symbols[label]
		if !ok {
			return &Error{Line: f.line, Text: strings.TrimSpace(f.src), Msg: fmt.Sprintf("undefined label %q", label), Err: ErrUndefinedLabel}
		}
		pc := a.prog.TextBase + uint64(f.textIdx)*isa.InstBytes
		switch f.kind {
		case fixBranch, fixJAL:
			inst := isa.Decode(a.prog.Text[f.textIdx])
			inst.Imm = wordOffset(pc, addr)
			w, err := isa.Encode(inst)
			if err != nil {
				return &Error{Line: f.line, Text: strings.TrimSpace(f.src), Msg: fmt.Sprintf("branch target out of range: %v", err), Err: ErrRange}
			}
			a.prog.Text[f.textIdx] = w
		case fixLA:
			seq, err := liSequence(laReg, addr)
			if err != nil {
				return &Error{Line: f.line, Text: strings.TrimSpace(f.src), Msg: err.Error()}
			}
			copy(a.prog.Text[f.textIdx:f.textIdx+3], seq[:])
		}
	}
	return nil
}
