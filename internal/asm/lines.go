package asm

import "strings"

// LineKind classifies one source line the way the assembler's own lexer
// would, without assembling it. The differential-fuzzing minimizer uses this
// to decide which lines are safe candidates for removal: instruction lines
// can go, while labels (branch targets) and directives (the data image)
// must survive for the shrunk program to stay well-formed.
type LineKind int

// Line kinds.
const (
	// LineBlank is empty or comment-only.
	LineBlank LineKind = iota
	// LineLabel carries only label definitions ("loop:").
	LineLabel
	// LineDirective is a dot-directive (".data", ".space 64", ...).
	LineDirective
	// LineInst carries an instruction (possibly after labels on the same
	// line — such lines must be kept, for the labels).
	LineInst
)

func (k LineKind) String() string {
	switch k {
	case LineBlank:
		return "blank"
	case LineLabel:
		return "label"
	case LineDirective:
		return "directive"
	case LineInst:
		return "inst"
	}
	return "?"
}

// ClassifyLine reports the kind of one source line, using the same comment
// stripping and label scanning as Assemble.
func ClassifyLine(line string) LineKind {
	s := stripComment(line)
	if s == "" {
		return LineBlank
	}
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		if !isIdent(strings.TrimSpace(s[:i])) {
			break // malformed label; let the assembler report it
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return LineLabel
		}
	}
	if strings.HasPrefix(s, ".") {
		return LineDirective
	}
	return LineInst
}
