package asm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"authpoint/internal/isa"
)

func mustAsm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func decodeAll(p *Program) []isa.Inst {
	out := make([]isa.Inst, len(p.Text))
	for i, w := range p.Text {
		out[i] = isa.Decode(w)
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	p := mustAsm(t, `
		; a trivial program
		_start:
			addi r1, r0, 5
			addi r2, r0, 7
			add  r3, r1, r2
			halt
	`)
	insts := decodeAll(p)
	if len(insts) != 4 {
		t.Fatalf("want 4 insts, got %d", len(insts))
	}
	if insts[0] != (isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 5}) {
		t.Errorf("inst0 = %v", insts[0])
	}
	if insts[2] != (isa.Inst{Op: isa.OpADD, Rd: 3, Rs1: 1, Rs2: 2}) {
		t.Errorf("inst2 = %v", insts[2])
	}
	if insts[3].Op != isa.OpHALT {
		t.Errorf("inst3 = %v", insts[3])
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry %#x want %#x", p.Entry, p.TextBase)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAsm(t, `
		_start:
			addi r1, r0, 10
		loop:
			addi r1, r1, -1
			bne  r1, r0, loop
			halt
	`)
	insts := decodeAll(p)
	// bne is at index 2; loop is at index 1 -> offset = 1 - (2+1) = -2
	if insts[2].Op != isa.OpBNE || insts[2].Imm != -2 {
		t.Errorf("bne = %v, want imm -2", insts[2])
	}
	if got := p.Symbols["loop"]; got != p.TextBase+4 {
		t.Errorf("loop symbol %#x", got)
	}
}

func TestForwardBranch(t *testing.T) {
	p := mustAsm(t, `
		_start:
			beq r0, r0, done
			addi r1, r0, 1
		done:
			halt
	`)
	insts := decodeAll(p)
	if insts[0].Imm != 1 {
		t.Errorf("forward branch imm = %d want 1", insts[0].Imm)
	}
}

func TestJALAndCallRet(t *testing.T) {
	p := mustAsm(t, `
		_start:
			call f
			halt
		f:
			ret
	`)
	insts := decodeAll(p)
	if insts[0].Op != isa.OpJAL || insts[0].Rd != isa.RegRA || insts[0].Imm != 1 {
		t.Errorf("call = %v", insts[0])
	}
	if insts[2].Op != isa.OpJALR || insts[2].Rd != 0 || insts[2].Rs1 != isa.RegRA {
		t.Errorf("ret = %v", insts[2])
	}
}

func TestLoadStoreSyntax(t *testing.T) {
	p := mustAsm(t, `
		_start:
			ld r1, 8(r2)
			sw r3, -4(r4)
			lb r5, (r6)
			fld f1, 16(r2)
			fsd f3, 0(r4)
	`)
	insts := decodeAll(p)
	want := []isa.Inst{
		{Op: isa.OpLD, Rd: 1, Rs1: 2, Imm: 8},
		{Op: isa.OpSW, Rs2: 3, Rs1: 4, Imm: -4},
		{Op: isa.OpLB, Rd: 5, Rs1: 6},
		{Op: isa.OpFLD, Rd: 1, Rs1: 2, Imm: 16},
		{Op: isa.OpFSD, Rs2: 3, Rs1: 4},
	}
	for i, w := range want {
		if insts[i] != w {
			t.Errorf("inst%d = %v want %v", i, insts[i], w)
		}
	}
}

func TestLIExpansion(t *testing.T) {
	cases := []struct {
		v     int64
		insts int
	}{
		{0, 1},
		{100, 1},
		{-5, 1},
		{32767, 1},
		{32768, 2},       // LUI+ORI (lo != 0... 32768 = 0x8000: mid=0, lo=0x8000 -> LUI 0 + ORI)
		{0x10000, 1},     // LUI only
		{0x12345, 2},     // LUI+ORI
		{0x100000000, 2}, // LUI(0)+LUIH
		{0x1234_5678_9abc, 3},
	}
	for _, c := range cases {
		p := mustAsm(t, "_start:\n li r1, "+itoa(c.v)+"\n halt\n")
		if got := len(p.Text) - 1; got != c.insts {
			t.Errorf("li %d expanded to %d insts, want %d", c.v, got, c.insts)
			continue
		}
		if got := evalLI(p.Text[:len(p.Text)-1]); got != uint64(c.v) {
			t.Errorf("li %d evaluates to %#x", c.v, got)
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + utoa(uint64(-v))
	}
	return utoa(uint64(v))
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// evalLI interprets a register-constant-building sequence for r1.
func evalLI(words []uint32) uint64 {
	var r1 uint64
	for _, w := range words {
		inst := isa.Decode(w)
		b := isa.ImmOperand(inst.Imm)
		switch inst.Op {
		case isa.OpADDI:
			r1 = b
		case isa.OpLUI:
			r1 = isa.EvalALU(isa.OpLUI, 0, b)
		case isa.OpORI:
			r1 = isa.EvalALU(isa.OpORI, r1, b)
		case isa.OpLUIH:
			r1 = isa.EvalALU(isa.OpLUIH, r1, b)
		}
	}
	return r1
}

func TestLAForwardReference(t *testing.T) {
	p := mustAsm(t, `
		_start:
			la r2, buf
			ld r1, 0(r2)
			halt
		.data
		buf: .word 42
	`)
	// la forward -> fixed 3-word sequence.
	addr := evalLI(p.Text[:3])
	if addr != p.Symbols["buf"] {
		t.Errorf("la resolved to %#x want %#x", addr, p.Symbols["buf"])
	}
	if p.Symbols["buf"] != p.DataBase {
		t.Errorf("buf at %#x want %#x", p.Symbols["buf"], p.DataBase)
	}
}

func TestLABackwardReference(t *testing.T) {
	p := mustAsm(t, `
		.data
		buf: .word 1, 2, 3
		.text
		_start:
			la r2, buf
			halt
	`)
	n := len(p.Text) - 1 // li sequence length may be 1-3
	if got := evalLI(p.Text[:n]); got != p.Symbols["buf"] {
		t.Errorf("la resolved to %#x want %#x", got, p.Symbols["buf"])
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAsm(t, `
		.data
		a: .word 0x1122334455667788
		b: .word4 0xdeadbeef
		c: .byte 1, 2, 3
		   .align 8
		d: .space 4, 0xff
		e: .float 1.5
	`)
	if p.Symbols["a"] != p.DataBase {
		t.Errorf("a at %#x", p.Symbols["a"])
	}
	if p.Symbols["b"] != p.DataBase+8 {
		t.Errorf("b at %#x", p.Symbols["b"])
	}
	if p.Symbols["c"] != p.DataBase+12 {
		t.Errorf("c at %#x", p.Symbols["c"])
	}
	if p.Symbols["d"] != p.DataBase+16 {
		t.Errorf("d at %#x (align)", p.Symbols["d"])
	}
	if p.Data[0] != 0x88 || p.Data[7] != 0x11 {
		t.Errorf("little-endian .word: % x", p.Data[:8])
	}
	if p.Data[8] != 0xef || p.Data[11] != 0xde {
		t.Errorf(".word4: % x", p.Data[8:12])
	}
	if p.Data[16] != 0xff || p.Data[19] != 0xff {
		t.Errorf(".space fill: % x", p.Data[16:20])
	}
	bits := uint64(0)
	for i := 0; i < 8; i++ {
		bits |= uint64(p.Data[20+i]) << (8 * i)
	}
	if math.Float64frombits(bits) != 1.5 {
		t.Errorf(".float = %v", math.Float64frombits(bits))
	}
}

func TestCustomBases(t *testing.T) {
	p := mustAsm(t, `
		.text 0x2000
		_start: halt
		.data 0x200000
		x: .word 9
	`)
	if p.TextBase != 0x2000 || p.Entry != 0x2000 {
		t.Errorf("text base %#x entry %#x", p.TextBase, p.Entry)
	}
	if p.DataBase != 0x200000 || p.Symbols["x"] != 0x200000 {
		t.Errorf("data base %#x", p.DataBase)
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAsm(t, `
		_start:
			addi sp, sp, -16
			sd ra, 8(sp)
			mov r1, zero
	`)
	insts := decodeAll(p)
	if insts[0].Rd != isa.RegSP {
		t.Errorf("sp alias: %v", insts[0])
	}
	if insts[1].Rs2 != isa.RegRA {
		t.Errorf("ra alias: %v", insts[1])
	}
	if insts[2] != (isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 0}) {
		t.Errorf("mov: %v", insts[2])
	}
}

func TestOutAndPref(t *testing.T) {
	p := mustAsm(t, `
		_start:
			out r3, 0x80
			pref 64(r2)
	`)
	insts := decodeAll(p)
	if insts[0] != (isa.Inst{Op: isa.OpOUT, Rs2: 3, Imm: 0x80}) {
		t.Errorf("out = %v", insts[0])
	}
	if insts[1] != (isa.Inst{Op: isa.OpPREF, Rs1: 2, Imm: 64}) {
		t.Errorf("pref = %v", insts[1])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected substring of the error
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"addi r1, r2", "takes 3 operands"},
		{"addi r99, r2, 0", "bad register"},
		{"ld r1, 8", "expected disp(base)"},
		{"beq r1, r2, nowhere", "undefined label"},
		{"x: halt\nx: halt", "duplicate label"},
		{".word 1", "only supported in .data"},
		{".data\n.align 3", "power of two"},
		{"li r1, 0x1000000000000", "exceeds 48 bits"},
		{"li r16, 5", "li destination"},
		{"1bad: halt", "invalid label"},
		{".bogus", "unknown directive"},
		{"addi r1, r1, 99999", "immediate"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error %q does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("halt\nhalt\nbogus\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	if aerr.Line != 3 {
		t.Errorf("error line %d want 3", aerr.Line)
	}
}

func TestTextBytesLittleEndian(t *testing.T) {
	p := mustAsm(t, "_start: halt")
	b := p.TextBytes()
	if len(b) != 4 {
		t.Fatalf("len %d", len(b))
	}
	w := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if w != p.Text[0] {
		t.Errorf("TextBytes mismatch: %#x vs %#x", w, p.Text[0])
	}
}

func TestBranchNumericOffset(t *testing.T) {
	p := mustAsm(t, "_start:\n beq r1, r2, -1\n")
	insts := decodeAll(p)
	if insts[0].Imm != -1 {
		t.Errorf("numeric branch imm %d", insts[0].Imm)
	}
}

func TestDataForwardLabelReference(t *testing.T) {
	p := mustAsm(t, `
		.data
		head: .word n1      ; forward reference
		n1:   .word n2
		n2:   .word head    ; backward reference closes the cycle
		w4:   .word4 n1
	`)
	rd := func(off, n int) uint64 {
		var v uint64
		for i := 0; i < n; i++ {
			v |= uint64(p.Data[off+i]) << (8 * i)
		}
		return v
	}
	if rd(0, 8) != p.Symbols["n1"] {
		t.Errorf("head -> %#x want %#x", rd(0, 8), p.Symbols["n1"])
	}
	if rd(8, 8) != p.Symbols["n2"] {
		t.Errorf("n1 -> %#x", rd(8, 8))
	}
	if rd(16, 8) != p.Symbols["head"] {
		t.Errorf("n2 -> %#x", rd(16, 8))
	}
	if rd(24, 4) != p.Symbols["n1"] {
		t.Errorf(".word4 label -> %#x", rd(24, 4))
	}
}

func TestDataUndefinedLabelRejected(t *testing.T) {
	if _, err := Assemble(".data\nx: .word nosuch\n"); err == nil {
		t.Error("undefined data label accepted")
	}
	if _, err := Assemble(".data\nx: .byte somelabel\n"); err == nil {
		t.Error(".byte label accepted (labels need >= 4 bytes)")
	}
}

func TestErrorSentinels(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"b nowhere", ErrUndefinedLabel},
		{".data\nx: .word nosuch", ErrUndefinedLabel},
		{"x: nop\nx: nop", ErrDuplicateLabel},
		{"frobnicate r1, r2", ErrUnknownMnemonic},
		{".frob 3", ErrUnknownDirective},
		{"addi r1, r0, 99999", ErrRange},
		{"li r1, 0x1000000000000", ErrRange},
		{"addi r1", ErrSyntax},
		{"add r1, r2", ErrSyntax},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want %v", c.src, c.want)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("Assemble(%q) = %v, not errors.Is %v", c.src, err, c.want)
		}
		var ae *Error
		if !errors.As(err, &ae) || ae.Line == 0 {
			t.Errorf("Assemble(%q): error is not a line-annotated *Error: %v", c.src, err)
		}
	}
	// A successful classification must not also match the other kinds.
	_, err := Assemble("b nowhere")
	if errors.Is(err, ErrRange) || errors.Is(err, ErrSyntax) {
		t.Errorf("undefined-label error matched an unrelated sentinel: %v", err)
	}
}

func TestTextLinesMetadata(t *testing.T) {
	p := mustAsm(t, `; comment line 1
_start:
	addi r1, r0, 5
	la   r2, buf
	halt
.data
buf: .word 1
`)
	if len(p.TextLines) != len(p.Text) {
		t.Fatalf("TextLines len %d != Text len %d", len(p.TextLines), len(p.Text))
	}
	if p.LineFor(0) != 3 {
		t.Errorf("inst 0 line = %d, want 3", p.LineFor(0))
	}
	// la expands to 3 instructions, all attributed to line 4.
	for i := 1; i <= 3; i++ {
		if p.LineFor(i) != 4 {
			t.Errorf("inst %d line = %d, want 4 (la expansion)", i, p.LineFor(i))
		}
	}
	if p.LineFor(4) != 5 {
		t.Errorf("halt line = %d, want 5", p.LineFor(4))
	}
	if p.LineFor(-1) != 0 || p.LineFor(99) != 0 {
		t.Error("out-of-range LineFor must return 0")
	}
}

func TestSymbolRangesAndNearest(t *testing.T) {
	p := mustAsm(t, `
_start:
	nop
f:
	nop
	nop
.data
key:    .word 1
secret: .word 2, 3
tail:   .byte 9
`)
	ranges := map[string]SymbolRange{}
	for _, r := range p.SymbolRanges() {
		ranges[r.Name] = r
	}
	if r := ranges["_start"]; r.End != p.Symbols["f"] {
		t.Errorf("_start range %+v should end at f", r)
	}
	if r := ranges["f"]; r.End != p.TextBase+uint64(len(p.Text)*4) {
		t.Errorf("f range %+v should end at text end", r)
	}
	if r := ranges["secret"]; r.Start != p.Symbols["secret"] || r.End != p.Symbols["tail"] {
		t.Errorf("secret range %+v, want [%#x,%#x)", r, p.Symbols["secret"], p.Symbols["tail"])
	}
	if r := ranges["tail"]; r.End != p.DataBase+uint64(len(p.Data)) {
		t.Errorf("tail range %+v should end at data end", r)
	}
	name, off, ok := p.NearestSymbol(p.Symbols["f"] + 4)
	if !ok || name != "f" || off != 4 {
		t.Errorf("NearestSymbol(f+4) = %q+%d ok=%v", name, off, ok)
	}
}
