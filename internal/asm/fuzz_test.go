package asm

import (
	"fmt"
	"strings"
	"testing"

	"authpoint/internal/isa"
	"authpoint/internal/workload"
)

// FuzzAssemble: the assembler must never panic, and anything it accepts
// must produce decodable text and in-bounds symbols.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"_start: halt",
		"_start:\n addi r1, r0, 5\n halt",
		".data\nx: .word 1, 2, 3\n.text\n_start: la r1, x\n halt",
		"loop: b loop",
		".text 0x2000\n_start: beq r1, r2, _start",
		"li r1, 281474976710655",
		".data\n.align 8\n.float 3.14\n.space 10, 0xff",
		"call f\nf: ret",
		"out r1, 0x80\npref 8(r2)",
		"x: .word4 0xdeadbeef\n.byte 1",
		"_start:\n\tfld f1, 0(r2)\n\tfadd f2, f1, f1\n\tfsd f2, 8(r2)",
		"; comment\n# another\n// third\nnop",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, w := range p.Text {
			_ = isa.Decode(w).String()
		}
		for name, addr := range p.Symbols {
			if name == "" {
				t.Error("empty symbol name accepted")
			}
			textEnd := p.TextBase + uint64(len(p.Text)*isa.InstBytes)
			dataEnd := p.DataBase + uint64(len(p.Data))
			if addr > textEnd && addr > dataEnd && addr != p.TextBase && addr != p.DataBase {
				t.Errorf("symbol %q at %#x outside both sections (text end %#x, data end %#x)",
					name, addr, textEnd, dataEnd)
			}
		}
		if strings.Contains(src, "halt") && p.Entry == 0 {
			t.Error("zero entry point")
		}
	})
}

// FuzzRoundTrip: for any source the assembler accepts, the
// assemble → disassemble → re-assemble cycle must be a fixpoint on the
// encoded text section. Disassembly (isa.Inst.String) is the round-trip
// witness: every mnemonic and operand form it prints must parse back to the
// identical instruction word. The corpus is seeded with the full 18-workload
// catalog, so every idiom the benchmarks use is covered on every `go test`.
func FuzzRoundTrip(f *testing.F) {
	for _, w := range workload.All() {
		f.Add(w.Source)
	}
	// Forms the catalog does not exercise.
	f.Add("out r9, 0x80\npref -8(r2)\njalr r3, r5, 12\n")
	f.Add("add r20, r21, r31\nsltu r1, r2, r3\nrem r4, r5, r6\n")
	f.Add("fcvtif f1, r2\nfcvtfi r3, f4\nfneg f5, f6\nfblt f1, f2, -2\n")
	f.Add("lui r1, 40000\nluih r1, 0xffff\nori r1, r1, 0x8001\nxori r2, r1, 0x8000\n")
	f.Add("lb r1, -1(r2)\nlbu r3, 1(r2)\nlwu r5, 4(r2)\nsb r1, 0(r2)\nsw r1, 0(r2)\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Assemble(src)
		if err != nil || len(p1.Text) == 0 {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, ".text %d\n", p1.TextBase)
		for _, w := range p1.Text {
			fmt.Fprintf(&b, "\t%s\n", isa.Decode(w))
		}
		p2, err := Assemble(b.String())
		if err != nil {
			t.Fatalf("re-assembly of disassembly failed: %v\nlisting:\n%s", err, b.String())
		}
		if len(p2.Text) != len(p1.Text) {
			t.Fatalf("re-assembly changed length: %d -> %d insts", len(p1.Text), len(p2.Text))
		}
		for i := range p1.Text {
			if p1.Text[i] != p2.Text[i] {
				t.Errorf("inst %d not a fixpoint: %08x (%v) -> %08x (%v)",
					i, p1.Text[i], isa.Decode(p1.Text[i]), p2.Text[i], isa.Decode(p2.Text[i]))
			}
		}
	})
}
