package asm

import (
	"strings"
	"testing"

	"authpoint/internal/isa"
)

// FuzzAssemble: the assembler must never panic, and anything it accepts
// must produce decodable text and in-bounds symbols.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"_start: halt",
		"_start:\n addi r1, r0, 5\n halt",
		".data\nx: .word 1, 2, 3\n.text\n_start: la r1, x\n halt",
		"loop: b loop",
		".text 0x2000\n_start: beq r1, r2, _start",
		"li r1, 281474976710655",
		".data\n.align 8\n.float 3.14\n.space 10, 0xff",
		"call f\nf: ret",
		"out r1, 0x80\npref 8(r2)",
		"x: .word4 0xdeadbeef\n.byte 1",
		"_start:\n\tfld f1, 0(r2)\n\tfadd f2, f1, f1\n\tfsd f2, 8(r2)",
		"; comment\n# another\n// third\nnop",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, w := range p.Text {
			_ = isa.Decode(w).String()
		}
		for name, addr := range p.Symbols {
			if name == "" {
				t.Error("empty symbol name accepted")
			}
			textEnd := p.TextBase + uint64(len(p.Text)*isa.InstBytes)
			dataEnd := p.DataBase + uint64(len(p.Data))
			if addr > textEnd && addr > dataEnd && addr != p.TextBase && addr != p.DataBase {
				t.Errorf("symbol %q at %#x outside both sections (text end %#x, data end %#x)",
					name, addr, textEnd, dataEnd)
			}
		}
		if strings.Contains(src, "halt") && p.Entry == 0 {
			t.Error("zero entry point")
		}
	})
}
