package secmem

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"authpoint/internal/cryptoengine/mactree"

	"authpoint/internal/bus"
	"authpoint/internal/dram"
	"authpoint/internal/mem"
)

var (
	encKey = bytes.Repeat([]byte{0x11}, 32)
	macKey = bytes.Repeat([]byte{0x22}, 32)
)

type rig struct {
	m    *mem.Memory
	b    *bus.Bus
	d    *dram.DRAM
	ctrl *Controller
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	m := mem.New()
	b := bus.MustNew(bus.Default())
	d := dram.MustNew(dram.Default())
	ctrl, err := New(cfg, m, b, d, encKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, b: b, d: d, ctrl: ctrl}
}

func protect(t *testing.T, r *rig, start, n uint64) {
	t.Helper()
	if err := r.ctrl.Protect(start, n); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.FinishProtection(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	m, b, d := mem.New(), bus.MustNew(bus.Default()), dram.MustNew(dram.Default())
	bad := []func(*Config){
		func(c *Config) { c.LineB = 0 },
		func(c *Config) { c.LineB = 48 },
		func(c *Config) { c.DecryptLat = -1 },
		func(c *Config) { c.MacB = 0 },
		func(c *Config) { c.MacB = 33 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg, m, b, d, encKey, macKey); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestProtectValidation(t *testing.T) {
	r := newRig(t, nil)
	if err := r.ctrl.Protect(0x1001, 64); err == nil {
		t.Error("unaligned start accepted")
	}
	if err := r.ctrl.Protect(0x1000, 65); err == nil {
		t.Error("unaligned length accepted")
	}
	if err := r.ctrl.Protect(0x1000, 128); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.Protect(0x1000, 64); err == nil {
		t.Error("overlapping protection accepted")
	}
	if !r.ctrl.IsProtected(0x1000) || !r.ctrl.IsProtected(0x107f) {
		t.Error("range not protected")
	}
	if r.ctrl.IsProtected(0x1080) {
		t.Error("address past range protected")
	}
}

func TestLoadPlainRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	msg := []byte("the quick brown fox jumps over the lazy dog -- protected bytes")
	if err := r.ctrl.LoadPlain(0x1234, msg); err != nil { // deliberately unaligned
		t.Fatal(err)
	}
	got, err := r.ctrl.ReadPlain(0x1234, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	// Ciphertext at rest differs from plaintext.
	raw := r.m.Read(0x1234, len(msg))
	if bytes.Equal(raw, msg) {
		t.Fatal("plaintext visible in external memory")
	}
	if err := r.ctrl.LoadPlain(0x9000, []byte("x")); err == nil {
		t.Error("LoadPlain outside protection accepted")
	}
}

func TestFetchReturnsPlaintextAndTiming(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	want := bytes.Repeat([]byte{0xa5}, 64)
	if err := r.ctrl.LoadPlain(0x1000, want); err != nil {
		t.Fatal(err)
	}
	res, err := r.ctrl.Fetch(100, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("fetched plaintext wrong")
	}
	if !res.AuthOK || res.AuthIdx != 1 {
		t.Fatalf("auth: ok=%v idx=%d", res.AuthOK, res.AuthIdx)
	}
	if !(100 < res.AddrVisible && res.AddrVisible < res.DataReady) {
		t.Fatalf("ordering: addr=%d data=%d", res.AddrVisible, res.DataReady)
	}
	if res.PlainReady < res.DataReady {
		t.Fatal("plaintext before data arrived")
	}
	if res.AuthDone <= res.PlainReady {
		t.Fatal("authentication should lag decryption (Table 1 gap)")
	}
	done, ok := r.ctrl.DoneAt(1)
	if done != res.AuthDone || !ok {
		t.Fatal("DoneAt mismatch")
	}
}

func TestAuthQueueInOrderCompletion(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 1<<14)
	var prev uint64
	for i := 0; i < 8; i++ {
		res, err := r.ctrl.Fetch(uint64(i*10), 0x1000+uint64(i*64), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.AuthDone <= prev {
			t.Fatalf("fetch %d: authDone %d not after previous %d", i, res.AuthDone, prev)
		}
		prev = res.AuthDone
		if res.AuthIdx != uint64(i+1) {
			t.Fatalf("fetch %d: idx %d", i, res.AuthIdx)
		}
	}
	if r.ctrl.LastRequest() != 8 {
		t.Fatalf("LastRequest %d", r.ctrl.LastRequest())
	}
}

func TestTamperDetected(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	r.ctrl.LoadPlain(0x1040, bytes.Repeat([]byte{7}, 64))
	// Adversary flips a ciphertext bit.
	r.m.XorRange(0x1040, []byte{0x01})
	res, err := r.ctrl.Fetch(0, 0x1040, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuthOK {
		t.Fatal("tampered line verified")
	}
	// Malleability: the decrypted data has exactly the flipped bit.
	if res.Data[0] != 7^0x01 {
		t.Fatalf("malleability: got %#x", res.Data[0])
	}
	f := r.ctrl.Fault()
	if f == nil || f.Addr != 0x1040 || f.Cycle != res.AuthDone {
		t.Fatalf("fault %+v", f)
	}
	if _, ok := r.ctrl.DoneAt(res.AuthIdx); ok {
		t.Fatal("DoneAt should report failure")
	}
	if r.ctrl.Stats().AuthFailures != 1 {
		t.Fatal("failure not counted")
	}
}

func TestMacTamperDetected(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	// Flip a bit of the stored MAC of leaf 0 instead of the data.
	r.m.XorRange(MacBase, []byte{0x80})
	res, _ := r.ctrl.Fetch(0, 0x1000, 0)
	if res.AuthOK {
		t.Fatal("line with tampered MAC verified")
	}
}

func TestBaselineNoAuthentication(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Authenticate = false })
	protect(t, r, 0x1000, 4096)
	res, err := r.ctrl.Fetch(0, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuthIdx != 0 || res.AuthDone != res.PlainReady {
		t.Fatalf("baseline should not authenticate: %+v", res)
	}
	if r.ctrl.Stats().AuthRequests != 0 {
		t.Fatal("baseline issued auth requests")
	}
	// Even a tampered line sails through (that is the vulnerability).
	r.m.XorRange(0x1040, []byte{0xff})
	res, _ = r.ctrl.Fetch(0, 0x1040, 0)
	if !res.AuthOK {
		t.Fatal("baseline reported failure")
	}
}

func TestCounterCacheMissDelaysPad(t *testing.T) {
	// Tiny counter cache so the first access misses.
	r := newRig(t, func(c *Config) { c.CtrCacheB = 1 << 10 })
	protect(t, r, 0x1000, 1<<13)
	res1, _ := r.ctrl.Fetch(0, 0x1000, 0)
	s := r.ctrl.Stats()
	if s.CtrMisses != 1 {
		t.Fatalf("ctr misses %d", s.CtrMisses)
	}
	// Second fetch of the same line: counter cache hit, pad overlaps fetch.
	res2, _ := r.ctrl.Fetch(res1.AuthDone, 0x1000, 0)
	if r.ctrl.Stats().CtrHits != 1 {
		t.Fatal("no ctr hit on refetch")
	}
	lat1 := res1.PlainReady - 0
	lat2 := res2.PlainReady - res1.AuthDone
	if lat2 >= lat1 {
		t.Fatalf("ctr hit should shorten plaintext latency: %d vs %d", lat2, lat1)
	}
}

func TestEarliestBusStartHonored(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	res, _ := r.ctrl.Fetch(10, 0x1000, 5000)
	if res.AddrVisible < 5000 {
		t.Fatalf("address visible at %d despite then-fetch constraint 5000", res.AddrVisible)
	}
}

func TestWriteBackRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	line := bytes.Repeat([]byte{0x3c}, 64)
	done, err := r.ctrl.WriteBack(50, 0x1080, line)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 50 {
		t.Fatal("writeback took no time")
	}
	res, err := r.ctrl.Fetch(done, 0x1080, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, line) || !res.AuthOK {
		t.Fatal("written line did not verify on refetch")
	}
	if _, err := r.ctrl.WriteBack(0, 0x9000, line); err == nil {
		t.Error("writeback outside protection accepted")
	}
}

// Replay: restore old ciphertext + old MAC after a write. The MAC covers the
// line counter, so the flat scheme already detects this form of replay.
func TestReplayOldLineAndMacDetected(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	r.ctrl.LoadPlain(0x1000, bytes.Repeat([]byte{1}, 64))
	oldCT := r.m.Snapshot(0x1000, 64)
	oldMAC := r.m.Snapshot(MacBase, 8)
	r.ctrl.WriteBack(0, 0x1000, bytes.Repeat([]byte{2}, 64))
	r.m.Write(0x1000, oldCT)
	r.m.Write(MacBase, oldMAC)
	res, _ := r.ctrl.Fetch(1000, 0x1000, 0)
	if res.AuthOK {
		t.Fatal("replayed line+MAC accepted")
	}
}

func TestFetchUnprotectedErrors(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 64)
	if _, err := r.ctrl.Fetch(0, 0x2000, 0); err == nil {
		t.Error("fetch of unprotected line accepted")
	}
}

func TestDoneAtBounds(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 64)
	if cyc, ok := r.ctrl.DoneAt(0); cyc != 0 || !ok {
		t.Error("DoneAt(0)")
	}
	if err := r.ctrl.Err(); err != nil {
		t.Fatalf("fresh controller reports model error: %v", err)
	}
	// Past LastRequest: a model inconsistency, but not a process-killing
	// panic — the call reports not-done and records a sticky error for
	// sim.Machine.Run to surface as a failed run.
	if cyc, ok := r.ctrl.DoneAt(1); cyc != 0 || ok {
		t.Errorf("DoneAt(1) = (%d, %v), want (0, false)", cyc, ok)
	}
	err := r.ctrl.Err()
	if err == nil || !strings.Contains(err.Error(), "DoneAt(1)") {
		t.Fatalf("out-of-range DoneAt not recorded: %v", err)
	}
	// Sticky: the first inconsistency wins.
	r.ctrl.DoneAt(9)
	if got := r.ctrl.Err(); got != err {
		t.Fatalf("later inconsistency overwrote the first: %v", got)
	}
}

func TestTreeModeVerifies(t *testing.T) {
	r := newRig(t, func(c *Config) { c.UseTree = true })
	protect(t, r, 0x1000, 1<<14) // 256 lines
	r.ctrl.LoadPlain(0x1000, bytes.Repeat([]byte{9}, 64))
	res, err := r.ctrl.Fetch(0, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuthOK {
		t.Fatal("tree verification failed on honest line")
	}
	// Tree verification is slower than a flat MAC.
	flat := newRig(t, nil)
	protect(t, flat, 0x1000, 1<<14)
	fres, _ := flat.ctrl.Fetch(0, 0x1000, 0)
	if res.AuthDone-res.DataReady <= fres.AuthDone-fres.DataReady {
		t.Fatal("tree should cost more verification latency than flat MAC")
	}
}

func TestTreeModeTamperAndCacheWarmup(t *testing.T) {
	r := newRig(t, func(c *Config) { c.UseTree = true })
	protect(t, r, 0x1000, 1<<14)
	res1, _ := r.ctrl.Fetch(0, 0x1000, 0)
	if !res1.AuthOK {
		t.Fatal("first fetch failed")
	}
	fetchesAfterFirst := r.ctrl.Stats().TreeNodeFetch
	// Second fetch of a neighbour line: shares the path; cached nodes cut
	// the walk short.
	res2, _ := r.ctrl.Fetch(res1.AuthDone, 0x1040, 0)
	if !res2.AuthOK {
		t.Fatal("second fetch failed")
	}
	if r.ctrl.Stats().TreeNodeFetch-fetchesAfterFirst >= fetchesAfterFirst {
		t.Fatalf("tree cache did not shorten second walk: first=%d second=%d",
			fetchesAfterFirst, r.ctrl.Stats().TreeNodeFetch-fetchesAfterFirst)
	}
	// Tamper is detected in tree mode too.
	r.m.XorRange(0x1080, []byte{1})
	res3, _ := r.ctrl.Fetch(res2.AuthDone, 0x1080, 0)
	if res3.AuthOK {
		t.Fatal("tampered line passed tree verification")
	}
}

func TestTreeWriteBackKeepsTreeConsistent(t *testing.T) {
	r := newRig(t, func(c *Config) { c.UseTree = true })
	protect(t, r, 0x1000, 1<<13)
	line := bytes.Repeat([]byte{0x42}, 64)
	done, err := r.ctrl.WriteBack(0, 0x1040, line)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := r.ctrl.Fetch(done, 0x1040, 0)
	if !res.AuthOK || !bytes.Equal(res.Data, line) {
		t.Fatal("tree inconsistent after writeback")
	}
}

func TestRemapHidesTrueAddresses(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Remap = true })
	protect(t, r, 0x1000, 4096)
	r.ctrl.Fetch(0, 0x1000, 0)
	r.ctrl.Fetch(1000, 0x1040, 0)
	for _, e := range r.b.Trace() {
		if e.Kind == bus.ReadLine && e.Addr < RemapBase {
			t.Fatalf("true address %#x leaked on bus", e.Addr)
		}
	}
	// Re-shuffle on writeback: the same line appears at a new slot.
	var before uint64
	for _, e := range r.b.Trace() {
		if e.Kind == bus.ReadLine {
			before = e.Addr
			break
		}
	}
	r.ctrl.WriteBack(2000, 0x1000, make([]byte, 64))
	r.b.ClearTrace()
	r.ctrl.Fetch(3000, 0x1000, 0)
	var after uint64
	for _, e := range r.b.Trace() {
		if e.Kind == bus.ReadLine {
			after = e.Addr
		}
	}
	if after == before {
		t.Fatal("slot did not change after reshuffle (possible but vanishingly unlikely)")
	}
	s := r.ctrl.Stats()
	if s.RemapHits+s.RemapMisses == 0 {
		t.Fatal("remap cache never consulted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	r.ctrl.Fetch(0, 0x1000, 0)
	r.ctrl.WriteBack(500, 0x1000, make([]byte, 64))
	s := r.ctrl.Stats()
	if s.Fetches != 1 || s.Writebacks != 1 || s.AuthRequests != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.AuthWaitCycles == 0 {
		t.Fatal("auth gap not accounted")
	}
}

func TestCBCModeTiming(t *testing.T) {
	ctr := newRig(t, nil)
	protect(t, ctr, 0x1000, 4096)
	cbc := newRig(t, func(c *Config) { c.Mode = ModeCBC })
	protect(t, cbc, 0x1000, 4096)

	rc, err := ctr.ctrl.Fetch(0, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := cbc.ctrl.Fetch(0, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.AuthOK || string(rb.Data) != string(rc.Data) {
		t.Fatal("mode must not change functional behaviour")
	}
	// Table 1's shape: CBC has slower decryption AND slower verification,
	// but a narrower decrypt->verify gap.
	if rb.PlainReady <= rc.PlainReady {
		t.Errorf("CBC plaintext (%d) should lag CTR (%d)", rb.PlainReady, rc.PlainReady)
	}
	if rb.AuthDone <= rc.AuthDone {
		t.Errorf("CBC verification (%d) should lag CTR (%d)", rb.AuthDone, rc.AuthDone)
	}
	gapCTR := rc.AuthDone - rc.PlainReady
	gapCBC := rb.AuthDone - rb.PlainReady
	if gapCBC >= gapCTR*4 {
		t.Errorf("CBC gap %d should not dwarf CTR gap %d", gapCBC, gapCTR)
	}
}

func TestMacUnitsScaleThroughput(t *testing.T) {
	run := func(units int) uint64 {
		r := newRig(t, func(c *Config) { c.MacUnits = units })
		protect(t, r, 0x1000, 1<<16)
		var last uint64
		// A burst of 16 fetches saturates one engine (74ns each).
		for i := 0; i < 16; i++ {
			res, err := r.ctrl.Fetch(uint64(i), 0x1000+uint64(i*64), 0)
			if err != nil {
				t.Fatal(err)
			}
			last = res.AuthDone
		}
		return last
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Errorf("4 units (%d) should finish the burst before 1 unit (%d)", four, one)
	}
	if _, err := New(Config{LineB: 64, MacB: 8, MacUnits: -1}, mem.New(), bus.MustNew(bus.Default()), dram.MustNew(dram.Default()), encKey, macKey); err == nil {
		t.Error("negative MacUnits accepted")
	}
}

// Property: across random interleavings of fetches and write-backs, the
// controller maintains its core invariants — sequential request indexes,
// monotone in-order completion and arrival, plaintext consistency with a
// shadow model, and causally ordered timing fields.
func TestQuickControllerInvariants(t *testing.T) {
	r := newRig(t, nil)
	protect(t, r, 0x1000, 64*64)
	shadow := map[uint64][]byte{}
	now := uint64(0)
	lastIdx := uint64(0)
	lastDone := uint64(0)
	f := func(lineSel uint8, doWrite bool, fill byte, adv uint16) bool {
		now += uint64(adv)
		line := 0x1000 + uint64(lineSel%64)*64
		if doWrite {
			data := bytes.Repeat([]byte{fill}, 64)
			done, err := r.ctrl.WriteBack(now, line, data)
			if err != nil || done < now {
				return false
			}
			shadow[line] = data
			return true
		}
		res, err := r.ctrl.Fetch(now, line, 0)
		if err != nil || !res.AuthOK {
			return false
		}
		want := shadow[line]
		if want == nil {
			want = make([]byte, 64)
		}
		if !bytes.Equal(res.Data, want) {
			return false
		}
		if res.AuthIdx != lastIdx+1 {
			return false
		}
		lastIdx = res.AuthIdx
		if res.AuthDone < lastDone {
			return false // in-order completion violated
		}
		lastDone = res.AuthDone
		// Causal ordering of the timing fields.
		return res.AddrVisible >= now && res.DataReady > res.AddrVisible &&
			res.PlainReady >= res.DataReady-200 && res.AuthDone >= res.DataReady
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Regression: tree-path updates on write-backs must not serialize onto the
// verification engine — a write-back storm used to push the engine horizon
// unboundedly ahead of the core (watchdog timeouts under tree mode).
func TestTreeWritebackStormDoesNotStallVerification(t *testing.T) {
	r := newRig(t, func(c *Config) { c.UseTree = true })
	protect(t, r, 0x1000, 1<<16)
	line := bytes.Repeat([]byte{1}, 64)
	now := uint64(0)
	for i := 0; i < 200; i++ {
		done, err := r.ctrl.WriteBack(now, 0x1000+uint64(i*64), line)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	res, err := r.ctrl.Fetch(now, 0x1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuthDone > res.DataReady+5000 {
		t.Fatalf("verification drifted %d cycles past data arrival after a write-back storm",
			res.AuthDone-res.DataReady)
	}
	if !res.AuthOK {
		t.Fatal("verification failed")
	}
}

// What the counter binding in the MAC buys — and what it cannot buy.
//
//  1. Counter corruption alone is detected by the reference design and
//     silently accepted (as garbage plaintext!) by the weakened
//     MacCoversCounter=false design.
//  2. A FULL rollback — ciphertext + MAC + counter, all of which live in
//     untrusted memory — defeats ANY flat per-line MAC: the stale triple is
//     self-consistent. This is precisely the replay attack §5.2.3 brings
//     the hash tree in for.
//  3. The MAC tree rejects the same full rollback, even when the adversary
//     also restores the stale leaf digest: the parents chain to the
//     on-chip root.
func TestCounterBindingAndReplay(t *testing.T) {
	// 1. Counter corruption only.
	for _, weakened := range []bool{false, true} {
		r := newRig(t, func(c *Config) { c.MacCoversCounter = !weakened })
		protect(t, r, 0x1000, 4096)
		r.ctrl.LoadPlain(0x1000, bytes.Repeat([]byte{0xAA}, 64))
		r.ctrl.Encryptor().SetCounter(0x1000, 99) // corrupted counter block
		res, err := r.ctrl.Fetch(0, 0x1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		if weakened {
			if !res.AuthOK {
				t.Error("weakened design should not notice counter corruption")
			}
			if res.Data[0] == 0xAA {
				t.Error("corrupted counter should decrypt to garbage")
			}
		} else if res.AuthOK {
			t.Error("reference design must detect counter corruption")
		}
	}

	// 2. Full rollback defeats the flat MAC (reference design included).
	r := newRig(t, nil)
	protect(t, r, 0x1000, 4096)
	r.ctrl.LoadPlain(0x1000, bytes.Repeat([]byte{0xAA}, 64))
	oldCT := r.m.Snapshot(0x1000, 64)
	oldMAC := r.m.Snapshot(MacBase, 8)
	oldCtr := r.ctrl.Encryptor().Counter(0x1000)
	r.ctrl.WriteBack(0, 0x1000, bytes.Repeat([]byte{0xBB}, 64))
	r.m.Write(0x1000, oldCT)
	r.m.Write(MacBase, oldMAC)
	r.ctrl.Encryptor().SetCounter(0x1000, oldCtr)
	res, _ := r.ctrl.Fetch(1000, 0x1000, 0)
	if !res.AuthOK || res.Data[0] != 0xAA {
		t.Fatal("flat MAC is expected to accept a fully consistent rollback (that is the tree's job)")
	}

	// 3. The MAC tree catches the same rollback.
	rt := newRig(t, func(c *Config) { c.UseTree = true })
	protect(t, rt, 0x1000, 4096)
	rt.ctrl.LoadPlain(0x1000, bytes.Repeat([]byte{0xAA}, 64))
	tr := rt.ctrl.Tree()
	oldCT = rt.m.Snapshot(0x1000, 64)
	oldCtr = rt.ctrl.Encryptor().Counter(0x1000)
	oldLeaf := tr.Node(mactree.NodeID{Level: 0, Index: 0})
	rt.ctrl.WriteBack(0, 0x1000, bytes.Repeat([]byte{0xBB}, 64))
	rt.m.Write(0x1000, oldCT)
	rt.ctrl.Encryptor().SetCounter(0x1000, oldCtr)
	cur := tr.Node(mactree.NodeID{Level: 0, Index: 0})
	mask := make([]byte, len(cur))
	for i := range mask {
		mask[i] = cur[i] ^ oldLeaf[i]
	}
	tr.TamperNode(mactree.NodeID{Level: 0, Index: 0}, mask) // restore stale leaf digest
	res, _ = rt.ctrl.Fetch(1000, 0x1000, 0)
	if res.AuthOK {
		t.Fatal("MAC tree accepted a full rollback")
	}
}
