package secmem

import (
	"authpoint/internal/bus"
	"authpoint/internal/cache"
	"authpoint/internal/dram"
	"authpoint/internal/mem"
)

// Remapper implements the revised HIDE-style address obfuscation of Section
// 5.2.4: every protected line lives at a remapped slot; the slot changes on
// every write-back; the current mapping is held in an encrypted re-map table
// in external memory with an on-chip re-map cache in front of it.
//
// Functionally the ciphertext stays indexed by true line address in this
// model — what the obfuscation changes is the address *visible on the bus*
// (the adversary's view) and the timing (re-map cache misses cost an extra
// metadata fetch; reshuffles cost a table write). This captures exactly the
// properties the paper measures: the side channel sees only shuffled slots,
// and IPC pays for re-map cache misses.
type Remapper struct {
	lineB   int
	slots   map[uint64]uint64 // true line addr -> current slot index
	nSlots  uint64
	lcg     uint64 // deterministic shuffle state
	cache   *cache.Cache
	mem     *mem.Memory
	bus     *bus.Bus
	dram    *dram.DRAM
	tblBase uint64

	hits   uint64
	misses uint64
}

// NewRemapper builds the remapper with the configured re-map cache size.
func NewRemapper(cfg Config, m *mem.Memory, b *bus.Bus, d *dram.DRAM) (*Remapper, error) {
	// Each re-map cache line holds lineB/8 packed 8-byte table entries, so
	// the cache geometry mirrors a normal data cache over the table region.
	c, err := cache.New(cache.Config{
		Name:  "remap",
		SizeB: cfg.RemapCacheB,
		LineB: cfg.LineB,
		Ways:  max(1, cfg.RemapCacheWays),
	})
	if err != nil {
		return nil, err
	}
	return &Remapper{
		lineB:   cfg.LineB,
		slots:   map[uint64]uint64{},
		lcg:     0x9e3779b97f4a7c15,
		cache:   c,
		mem:     m,
		bus:     b,
		dram:    d,
		tblBase: RemapBase + 0x1000_0000,
	}, nil
}

// Init assigns every protected line an initial slot via a deterministic
// shuffle (the OS loader's randomized placement).
func (r *Remapper) Init(lineAddrs []uint64) {
	r.nSlots = uint64(len(lineAddrs)) * 2 // head-room so reshuffling has free slots
	if r.nSlots == 0 {
		r.nSlots = 1
	}
	for _, a := range lineAddrs {
		r.slots[a] = r.next()
	}
}

func (r *Remapper) next() uint64 {
	r.lcg = r.lcg*6364136223846793005 + 1442695040888963407
	return (r.lcg >> 17) % r.nSlots
}

// tableEntryAddr is where a line's re-map table entry lives in external
// memory (itself encrypted in a real design; timing-only here).
func (r *Remapper) tableEntryAddr(lineAddr uint64) uint64 {
	return r.tblBase + (lineAddr/uint64(r.lineB))*8
}

// SlotAddr converts a slot index to the bus-visible address.
func (r *Remapper) SlotAddr(slot uint64) uint64 {
	return RemapBase + slot*uint64(r.lineB)
}

// Lookup resolves the current bus address for a line fetch starting at
// cycle now. A re-map cache miss first fetches the table entry from memory.
// It returns the obfuscated address and the cycle the mapping was known.
func (r *Remapper) Lookup(now uint64, lineAddr uint64) (busAddr uint64, ready uint64) {
	ready = now
	entry := r.tableEntryAddr(lineAddr)
	if _, hit := r.cache.Access(entry, false); hit {
		r.hits++
	} else {
		r.misses++
		_, arrive := r.busDramRead(now, entry, r.lineB)
		ready = arrive
		r.cache.Fill(entry, false)
	}
	return r.SlotAddr(r.slots[lineAddr]), ready
}

// Reshuffle assigns a fresh slot on write-back and updates the table. It
// returns the new obfuscated address and the cycle the mapping update is
// consistent (table write issued).
func (r *Remapper) Reshuffle(now uint64, lineAddr uint64) (busAddr uint64, ready uint64) {
	r.slots[lineAddr] = r.next()
	entry := r.tableEntryAddr(lineAddr)
	if _, hit := r.cache.Access(entry, true); hit {
		r.hits++
	} else {
		r.misses++
		r.cache.Fill(entry, true)
	}
	// The table write drains behind the line write-back; the new mapping is
	// known on-chip immediately.
	r.bus.Transact(now, bus.WriteMeta, entry, 8)
	return r.SlotAddr(r.slots[lineAddr]), now
}

func (r *Remapper) busDramRead(start uint64, addr uint64, nbytes int) (uint64, uint64) {
	addrDone, _ := r.bus.Transact(start, bus.ReadMeta, addr, nbytes)
	_, done := r.dram.Access(addrDone, addr, nbytes)
	return addrDone, done
}
