// Package secmem implements the secure memory controller: the component
// that sits between the L2 cache and the front-side bus and performs, for
// every external line transfer, counter-mode decryption and MAC-based
// integrity verification (Figure 5 of the paper).
//
// It is the home of the paper's central mechanism, the authentication queue:
// every fetched line enqueues a verification request; an in-order
// verification engine drains the queue; the LastRequest register names the
// newest request. The five authentication control points (then-issue,
// then-commit, then-write, then-fetch, and combinations) are implemented in
// the pipeline by consuming this package's timing results — the controller
// itself only reports, for every fetch, when plaintext became available and
// when (and whether) verification completed.
//
// Everything is functional as well as timed: ciphertext and MACs really are
// stored in external memory, so the attack package can flip ciphertext bits
// and the verification engine really catches it.
package secmem

import (
	"fmt"

	"authpoint/internal/bus"
	"authpoint/internal/cache"
	"authpoint/internal/cryptoengine/ctr"
	"authpoint/internal/cryptoengine/hmac"
	"authpoint/internal/cryptoengine/mactree"
	"authpoint/internal/dram"
	"authpoint/internal/mem"
	"authpoint/internal/obs"
)

// Mode selects the memory encryption mode.
type Mode int

// Encryption modes.
const (
	// ModeCTR is counter-mode encryption with pad precomputation — the
	// reference design. Decryption overlaps the fetch; the decrypt/verify
	// gap is the full MAC latency (Table 1, row 1).
	ModeCTR Mode = iota
	// ModeCBC is CBC encryption with serial decryption: the critical chunk
	// is available one cipher latency after the data arrives, the full
	// line after N serial cipher operations — and a CBC-MAC costs the same
	// N operations, so the decrypt/verify gap nearly closes while both
	// latencies balloon (Table 1, row 2). Functionally the line is still
	// counter-mode at rest; ModeCBC changes only the timing, which is what
	// the paper's comparison concerns.
	ModeCBC
)

func (m Mode) String() string {
	if m == ModeCBC {
		return "cbc"
	}
	return "ctr"
}

// Config describes the secure memory controller.
type Config struct {
	LineB int // external transfer granularity (the L2 line size)

	// Mode selects the encryption mode's timing behaviour.
	Mode Mode

	// Crypto timing (core cycles at 1 GHz == ns with the paper's clock).
	DecryptLat int // counter-mode pad generation (80ns reference)
	MacLat     int // HMAC verification per line (74ns reference)

	MacB int // truncated MAC size in bytes (8 = 64-bit reference)

	// Authenticate enables integrity verification. Off = the paper's
	// baseline ("decryption only with no authentication"): no MAC
	// bandwidth, no verification engine.
	Authenticate bool

	// UseTree replaces flat per-line MACs with the CHTree-style MAC tree
	// (Section 5.3.3). TreeCacheB is the on-chip cache of verified tree
	// nodes (8KB reference).
	UseTree    bool
	TreeCacheB int

	// Counter cache (for pad precomputation). A hit lets pad generation
	// start when the fetch address is generated; a miss first fetches the
	// counter from memory — unless CtrPredict is set.
	CtrCacheB    int
	CtrCacheWays int

	// MacUnits is the number of parallel verification engines draining the
	// authentication queue (default 1, the paper's design). Results still
	// complete in order; extra units raise throughput when misses arrive
	// faster than one unit's latency — the saturation regime several of the
	// memory-bound kernels reach.
	MacUnits int

	// MacCoversCounter includes the per-line write counter in the MAC
	// message (default true). Disabling it is a deliberately weakened
	// design used to demonstrate why the binding matters: without it, an
	// adversary can replay a stale ciphertext/MAC pair after rolling the
	// stored counter back (§5.2.3's replay discussion; the MAC tree exists
	// for the full-strength version of this attack).
	MacCoversCounter bool

	// CtrPredict models the paper's reference encryption implementation
	// ([19]: counter prediction and precomputation): on a counter-cache
	// miss the engine predicts the counter and starts pad generation
	// immediately, so decryption latency is MAX(fetch, decrypt) as in
	// Table 1. The counter block is still fetched (bandwidth and cache
	// fill); only the pad-start dependence is removed. Disable for the
	// no-prediction ablation.
	CtrPredict bool

	// Remap enables HIDE-style address obfuscation (Section 5.2.4): every
	// external line lives at a remapped location, re-shuffled on each
	// write-back, with an on-chip re-map cache. RemapCacheB sets its size.
	Remap          bool
	RemapCacheB    int
	RemapCacheWays int
}

// DefaultConfig returns the paper's reference configuration.
func DefaultConfig() Config {
	return Config{
		LineB:            64,
		DecryptLat:       80,
		MacLat:           74,
		MacB:             8,
		Authenticate:     true,
		UseTree:          false,
		TreeCacheB:       8 << 10,
		CtrCacheB:        32 << 10,
		CtrCacheWays:     4,
		CtrPredict:       true,
		MacUnits:         1,
		MacCoversCounter: true,
		Remap:            false,
		RemapCacheB:      256 << 10,
		RemapCacheWays:   4,
	}
}

// FetchResult reports the outcome and timing of one external line fetch.
type FetchResult struct {
	Data []byte // decrypted line (possibly attacker-influenced garbage)

	AddrVisible uint64 // cycle the (possibly remapped) address hit the bus
	DataReady   uint64 // cycle the ciphertext finished arriving
	PlainReady  uint64 // cycle the plaintext was available to the pipeline
	AuthDone    uint64 // cycle the verification engine finished this line
	AuthOK      bool   // verification verdict
	AuthIdx     uint64 // authentication-queue request index (1-based)
}

// Stats counts controller events.
type Stats struct {
	Fetches       uint64
	Writebacks    uint64
	CtrHits       uint64
	CtrMisses     uint64
	TreeNodeFetch uint64
	TreeCacheHits uint64
	RemapHits     uint64
	RemapMisses   uint64
	AuthRequests  uint64
	AuthFailures  uint64
	// AuthWaitCycles accumulates authDone - plainReady over all fetches:
	// the raw decrypt/verify gap of Table 1, as realized under load.
	AuthWaitCycles uint64
}

// Fault describes the first failed verification.
type Fault struct {
	Idx   uint64
	Addr  uint64
	Cycle uint64 // when the engine flagged it
}

// Controller is the secure memory controller.
type Controller struct {
	cfg  Config
	mem  *mem.Memory
	bus  *bus.Bus
	dram *dram.DRAM

	enc    *ctr.Engine
	macKey []byte

	protected []addrRange

	// MAC store: macs[lineAddr] would be the natural model, but the MACs
	// live in external memory so they can be tampered with; we place them at
	// MacBase + leafIndex*MacB.
	macBase uint64

	tree      *mactree.Tree
	treeCache *cache.Cache
	leafIdx   map[uint64]int // protected line addr -> tree leaf / MAC index
	leafAddrs []uint64       // leaf index -> line addr

	ctrCache *cache.Cache

	remap *Remapper

	// Authentication queue state. Requests complete strictly in order;
	// doneCycle[i] is when request i+1 (1-based idx) completed, okFlag[i]
	// its verdict, arriveCycle[i] when its data arrived (the cycle the
	// request entered the queue — LastRequest advances then, not at fetch
	// initiation: outstanding fetches never gate a new fetch, §4.2.4).
	doneCycle   []uint64
	okFlag      []bool
	arriveCycle []uint64
	engineFree  []uint64 // per verification unit

	fault *Fault

	// modelErr records the first internal inconsistency (malformed gate
	// dependency); see Err.
	modelErr error

	// updateFree is the tree-update unit's occupancy horizon (write-back
	// path recomputation; does not gate verifications).
	updateFree uint64

	sink   obs.Sink
	obsNow uint64 // cycle of the timed operation in progress (internal clocks)

	// Per-fetch scratch buffers: the controller handles one timed operation
	// at a time, so the ciphertext, plaintext, MAC-message, and stored-MAC
	// staging areas are reused across calls to keep the per-miss path
	// allocation-free. ptBuf backs FetchResult.Data — valid until the next
	// controller operation, by which time the memory system has copied it
	// into its plaintext shadow.
	ctBuf  []byte
	ptBuf  []byte
	msgBuf []byte
	macBuf []byte

	stats Stats
}

// SetObserver attaches an event sink, wiring the controller's internal
// caches and crypto engine through it. Those components carry no cycle of
// their own, so they read obsNow, which Fetch/WriteBack stamp on entry.
func (c *Controller) SetObserver(s obs.Sink) {
	c.sink = s
	clock := func() uint64 { return c.obsNow }
	if c.ctrCache != nil {
		c.ctrCache.SetObserver(s, obs.TrackCtrCache, clock)
	}
	if c.treeCache != nil {
		c.treeCache.SetObserver(s, obs.TrackTreeCache, clock)
	}
	c.enc.SetObserver(s, clock)
}

type addrRange struct{ start, end uint64 }

// MacBase is where the MAC store begins in physical memory (outside any
// program-visible range).
const MacBase = 0x8000_0000

// RemapBase is where remapped (obfuscated) line slots live.
const RemapBase = 0x4000_0000

// New builds a controller over the given memory, bus, and DRAM models.
func New(cfg Config, m *mem.Memory, b *bus.Bus, d *dram.DRAM, encKey, macKey []byte) (*Controller, error) {
	if cfg.LineB <= 0 || cfg.LineB&(cfg.LineB-1) != 0 {
		return nil, fmt.Errorf("secmem: line size %d not a power of two", cfg.LineB)
	}
	if cfg.DecryptLat < 0 || cfg.MacLat < 0 {
		return nil, fmt.Errorf("secmem: negative crypto latency")
	}
	if cfg.MacB <= 0 || cfg.MacB > 32 {
		return nil, fmt.Errorf("secmem: bad MAC size %d", cfg.MacB)
	}
	if cfg.MacUnits == 0 {
		cfg.MacUnits = 1
	}
	if cfg.MacUnits < 0 {
		return nil, fmt.Errorf("secmem: negative MacUnits")
	}
	enc, err := ctr.NewEngine(encKey, cfg.LineB)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		mem:     m,
		bus:     b,
		dram:    d,
		enc:     enc,
		macKey:  append([]byte(nil), macKey...),
		macBase: MacBase,
		leafIdx: map[uint64]int{},
		ctBuf:   make([]byte, cfg.LineB),
		ptBuf:   make([]byte, cfg.LineB),
		msgBuf:  make([]byte, 16+cfg.LineB),
		macBuf:  make([]byte, cfg.MacB),
	}
	c.engineFree = make([]uint64, cfg.MacUnits)
	if cfg.CtrCacheB > 0 {
		cc, err := cache.New(cache.Config{
			Name: "ctr", SizeB: cfg.CtrCacheB, LineB: cfg.LineB, Ways: max(1, cfg.CtrCacheWays),
		})
		if err != nil {
			return nil, err
		}
		c.ctrCache = cc
	}
	if cfg.Remap {
		r, err := NewRemapper(cfg, m, b, d)
		if err != nil {
			return nil, err
		}
		c.remap = r
	}
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Memory returns the external memory (for the attack package).
func (c *Controller) Memory() *mem.Memory { return c.mem }

// Encryptor exposes the counter-mode engine (for attack-scenario plumbing
// such as counter rollback in replay experiments).
func (c *Controller) Encryptor() *ctr.Engine { return c.enc }

// Tree exposes the MAC tree when UseTree is enabled (attack experiments
// tamper its node storage, which models untrusted external memory).
func (c *Controller) Tree() *mactree.Tree { return c.tree }

// LeafIndex returns the MAC-store / tree-leaf index of a protected line, for
// adversaries that tamper the integrity metadata rather than the data.
func (c *Controller) LeafIndex(lineAddr uint64) (int, bool) {
	idx, ok := c.leafIdx[lineAddr]
	return idx, ok
}

// MacAddrOf returns the external-memory address of a protected line's stored
// flat MAC. It reports false in tree mode (per-line MACs live in the tree)
// or for unprotected lines.
func (c *Controller) MacAddrOf(lineAddr uint64) (uint64, bool) {
	idx, ok := c.leafIdx[lineAddr]
	if !ok || c.cfg.UseTree {
		return 0, false
	}
	return c.macAddr(idx), true
}

// Protect marks [start, start+n) as a protected (encrypted+authenticated)
// region and initializes its lines from plaintext zeroes. Must be called
// before LoadPlain into that range. Ranges must be line-aligned.
func (c *Controller) Protect(start, n uint64) error {
	lb := uint64(c.cfg.LineB)
	if start%lb != 0 || n%lb != 0 {
		return fmt.Errorf("secmem: unaligned protected range [%#x,+%#x)", start, n)
	}
	c.protected = append(c.protected, addrRange{start, start + n})
	for a := start; a < start+n; a += lb {
		if _, dup := c.leafIdx[a]; dup {
			return fmt.Errorf("secmem: line %#x protected twice", a)
		}
		c.leafIdx[a] = len(c.leafAddrs)
		c.leafAddrs = append(c.leafAddrs, a)
	}
	return nil
}

// FinishProtection seals the protected layout: it encrypts every protected
// line (as all-zero plaintext), writes MACs, and builds the MAC tree if
// enabled. Call after all Protect calls and before LoadPlain/Fetch.
func (c *Controller) FinishProtection() error {
	if c.cfg.UseTree {
		tr, err := mactree.New(c.macKey, max(1, len(c.leafAddrs)), c.cfg.LineB/c.cfg.MacB, c.cfg.MacB)
		if err != nil {
			return err
		}
		c.tree = tr
		// The node cache holds 64-byte sibling groups (eight digests), the
		// granularity the verification actually consumes: computing a
		// parent requires the whole group, and neighbouring leaves share
		// their upper-level groups.
		tc, err := cache.New(cache.Config{
			Name: "treecache", SizeB: c.cfg.TreeCacheB, LineB: 64, Ways: 4,
		})
		if err != nil {
			return err
		}
		c.treeCache = tc
		if c.sink != nil {
			tc.SetObserver(c.sink, obs.TrackTreeCache, func() uint64 { return c.obsNow })
		}
	}
	zero := make([]byte, c.cfg.LineB)
	for _, a := range c.leafAddrs {
		if err := c.storeLine(a, zero); err != nil {
			return err
		}
	}
	if c.remap != nil {
		c.remap.Init(c.leafAddrs)
	}
	return nil
}

// IsProtected reports whether addr lies in a protected range.
func (c *Controller) IsProtected(addr uint64) bool {
	for _, r := range c.protected {
		if addr >= r.start && addr < r.end {
			return true
		}
	}
	return false
}

// LoadPlain installs plaintext into a protected region at program-load time
// (encrypting and MACing each touched line). Not a timed operation.
func (c *Controller) LoadPlain(addr uint64, data []byte) error {
	lb := uint64(c.cfg.LineB)
	for len(data) > 0 {
		la := addr &^ (lb - 1)
		if _, ok := c.leafIdx[la]; !ok {
			return fmt.Errorf("secmem: LoadPlain outside protected region at %#x", addr)
		}
		line, err := c.loadLinePlain(la)
		if err != nil {
			return err
		}
		off := int(addr - la)
		n := copy(line[off:], data)
		if err := c.storeLine(la, line); err != nil {
			return err
		}
		addr += uint64(n)
		data = data[n:]
	}
	return nil
}

// ReadPlain reads plaintext back from a protected region (untimed; for
// loaders, debuggers, and result checking).
func (c *Controller) ReadPlain(addr uint64, n int) ([]byte, error) {
	lb := uint64(c.cfg.LineB)
	out := make([]byte, 0, n)
	for n > 0 {
		la := addr &^ (lb - 1)
		line, err := c.loadLinePlain(la)
		if err != nil {
			return nil, err
		}
		off := int(addr - la)
		take := c.cfg.LineB - off
		if take > n {
			take = n
		}
		out = append(out, line[off:off+take]...)
		addr += uint64(take)
		n -= take
	}
	return out, nil
}

// loadLinePlain decrypts the stored ciphertext of a protected line
// (functional only, no timing, no verification).
func (c *Controller) loadLinePlain(lineAddr uint64) ([]byte, error) {
	ct := c.mem.Read(lineAddr, c.cfg.LineB)
	return c.enc.DecryptLine(lineAddr, ct)
}

// storeLine encrypts and stores a protected line, refreshing MAC/tree
// (functional only).
func (c *Controller) storeLine(lineAddr uint64, plaintext []byte) error {
	ct := c.ctBuf
	if err := c.enc.EncryptLineInto(ct, lineAddr, plaintext); err != nil {
		return err
	}
	c.mem.Write(lineAddr, ct)
	idx, ok := c.leafIdx[lineAddr]
	if !ok {
		return fmt.Errorf("secmem: store to unprotected line %#x", lineAddr)
	}
	if c.tree != nil {
		_, err := c.tree.SetLeaf(idx, c.authMessage(lineAddr, ct))
		return err
	}
	mac := hmac.Mac(c.macKey, c.authMessage(lineAddr, ct))
	c.mem.Write(c.macAddr(idx), mac[:c.cfg.MacB])
	return nil
}

// authMessage is the byte string the MAC covers: line address, current
// counter (unless the weakened MacCoversCounter=false configuration is
// selected), and ciphertext. Covering the counter defeats counter-rollback
// replay; covering the address defeats line relocation. The returned slice
// is the controller's reusable scratch: valid until the next authMessage
// call, never retained (tree leaves hash it immediately).
func (c *Controller) authMessage(lineAddr uint64, ct []byte) []byte {
	msg := c.msgBuf[:16+len(ct)]
	ctr := c.enc.Counter(lineAddr)
	for i := 0; i < 8; i++ {
		msg[i] = byte(lineAddr >> (8 * i))
		msg[8+i] = 0
		if c.cfg.MacCoversCounter {
			msg[8+i] = byte(ctr >> (8 * i))
		}
	}
	copy(msg[16:], ct)
	return msg
}

func (c *Controller) macAddr(leafIdx int) uint64 {
	return c.macBase + uint64(leafIdx)*uint64(c.cfg.MacB)
}

// verifyLine checks the stored MAC (or tree path) for a line's current
// ciphertext. Returns the verdict plus the extra engine work performed
// beyond the flat per-line MAC (tree levels climbed, uncached node fetches).
func (c *Controller) verifyLine(lineAddr uint64, ct []byte) (ok bool, treeLevels, nodeFetches int) {
	idx := c.leafIdx[lineAddr]
	msg := c.authMessage(lineAddr, ct)
	if c.tree == nil {
		stored := c.macBuf
		c.mem.ReadInto(stored, c.macAddr(idx))
		return hmac.Verify(c.macKey, msg, stored), 0, 0
	}
	trusted := func(id mactree.NodeID) bool {
		if id.Level == 0 {
			return false // leaf digests are never implicitly trusted
		}
		_, hit := c.treeCache.Access(c.treeNodeAddr(id), false)
		if hit {
			c.stats.TreeCacheHits++
		}
		return hit
	}
	okv, visited := c.tree.VerifyLeaf(idx, msg, trusted)
	// Cache the verified path nodes (only on success: unverified nodes must
	// never become trusted).
	fetches := 0
	for _, id := range visited {
		if id.Level == 0 {
			continue
		}
		fetches++
		if okv {
			c.treeCache.Fill(c.treeNodeAddr(id), false)
		}
	}
	return okv, len(visited), fetches
}

// treeNodeAddr assigns each tree node a synthetic external-memory address
// for the node cache and node-fetch bus transactions.
func (c *Controller) treeNodeAddr(id mactree.NodeID) uint64 {
	// Levels are laid out consecutively above the MAC store.
	base := c.macBase + 0x1000_0000
	var off uint64
	for l := 0; l < id.Level; l++ {
		off += uint64(c.tree.NodeCount(l))
	}
	return base + (off+uint64(id.Index))*uint64(c.cfg.MacB)
}

// Fetch performs a timed external fetch of the protected line at lineAddr.
// now is the cycle the L2 miss reached the controller; earliestBusStart is a
// policy-imposed lower bound on when the fetch address may be driven onto
// the bus (authen-then-fetch passes the completion cycle of the relevant
// authentication request; everyone else passes 0).
func (c *Controller) Fetch(now uint64, lineAddr uint64, earliestBusStart uint64) (FetchResult, error) {
	if _, ok := c.leafIdx[lineAddr]; !ok {
		return FetchResult{}, fmt.Errorf("secmem: fetch of unprotected line %#x", lineAddr)
	}
	c.stats.Fetches++
	c.obsNow = now
	start := max(now, earliestBusStart)
	if c.sink != nil {
		c.sink.Emit(obs.Event{Cycle: start, Kind: obs.EvSecFetch, Track: obs.TrackSecmem, Addr: lineAddr})
		if start > now {
			// The fetch waited on an authen-then-fetch gate (or remap).
			c.sink.Emit(obs.Event{Cycle: now, Kind: obs.EvFetchGateWait, Track: obs.TrackSecmem,
				Addr: lineAddr, A: start - now})
		}
	}

	// The line fetch goes onto the bus first — it is the critical transfer
	// (and the address phase is the disclosure); the counter-block fetch,
	// if needed, queues behind it.
	burst := c.cfg.LineB
	if c.cfg.Authenticate && !c.cfg.UseTree {
		burst += c.cfg.MacB // flat MAC travels with the line
	}
	busAddr := lineAddr
	busStart := start
	if c.remap != nil {
		var remapReady uint64
		busAddr, remapReady = c.remap.Lookup(start, lineAddr)
		busStart = max(busStart, remapReady)
	}
	addrDone, dataArrive := c.busDramRead(busStart, busAddr, burst, bus.ReadLine)

	// Counter availability gates pad precomputation. Counters are cached in
	// 64-byte blocks of eight 8-byte entries, so one counter fetch covers
	// eight neighbouring lines (the standard counter-cache organization of
	// the counter-mode designs the paper builds on).
	padStart := start
	if c.ctrCache != nil {
		key := c.ctrKey(lineAddr)
		if _, hit := c.ctrCache.Access(key, false); hit {
			c.stats.CtrHits++
		} else {
			c.stats.CtrMisses++
			// Fetch the counter block; without prediction, pads wait for
			// it. With [19]-style prediction the pad starts immediately
			// from the predicted counter and the fetched block only
			// confirms it.
			_, ctrArrive := c.busDramRead(start, c.counterAddr(lineAddr), 64, bus.ReadMeta)
			if !c.cfg.CtrPredict {
				padStart = ctrArrive
			}
			c.ctrCache.Fill(key, false)
		}
	}

	var plainReady uint64
	if c.cfg.Mode == ModeCBC {
		// Serial CBC decryption: the critical chunk needs one cipher
		// latency after arrival (chunk n would need n+1; the pipeline
		// consumes the critical word first).
		plainReady = dataArrive + uint64(c.cfg.DecryptLat)
	} else {
		padReady := padStart + uint64(c.cfg.DecryptLat)
		plainReady = max(dataArrive, padReady)
	}

	ct := c.ctBuf
	c.mem.ReadInto(ct, lineAddr)
	if err := c.enc.DecryptLineInto(c.ptBuf, lineAddr, ct); err != nil {
		return FetchResult{}, err
	}

	res := FetchResult{
		Data:        c.ptBuf,
		AddrVisible: addrDone,
		DataReady:   dataArrive,
		PlainReady:  plainReady,
		AuthOK:      true,
	}
	if c.sink != nil {
		c.sink.Emit(obs.Event{Cycle: plainReady, Kind: obs.EvDecryptReady, Track: obs.TrackSecmem, Addr: lineAddr})
	}

	if !c.cfg.Authenticate {
		res.AuthDone = plainReady
		return res, nil
	}

	// Enqueue on the authentication queue: the in-order engine starts this
	// request when the data has arrived and every earlier request is done.
	ok, treeLevels, nodeFetches := c.verifyLine(lineAddr, ct)
	var authDone uint64
	switch {
	case c.cfg.Mode == ModeCBC && c.tree == nil:
		// CBC-MAC: N serial cipher operations over the line.
		authDone = c.engineRun(dataArrive, uint64(c.cfg.DecryptLat)*uint64(c.cfg.LineB/16))
	case c.tree == nil:
		authDone = c.engineRun(dataArrive, uint64(c.cfg.MacLat))
	default:
		// CHTree-style concurrent verification (the paper's implementation
		// "performs the verification of the internal hash tree nodes
		// concurrently when it is allowed"): the uncached nodes of the walk
		// are fetched in one metadata burst that overlaps the engine's
		// previous hashing, and the per-level checks are independent given
		// the fetched nodes, so they pipeline through the hash unit — full
		// latency for the first level, one initiation interval for each
		// further level.
		c.stats.TreeNodeFetch += uint64(nodeFetches)
		nodesReady := dataArrive
		if nodeFetches > 0 {
			_, arr := c.busDramRead(dataArrive, c.macBase+0x1000_0000, nodeFetches*c.cfg.LineB, bus.ReadMeta)
			nodesReady = max(nodesReady, arr)
		}
		if treeLevels < 1 {
			treeLevels = 1
		}
		hashTime := uint64(c.cfg.MacLat) + uint64((treeLevels-1)*c.cfg.MacLat/4)
		authDone = c.engineRun(nodesReady, hashTime)
	}
	// The queue completes strictly in order.
	if n := len(c.doneCycle); n > 0 && c.doneCycle[n-1] > authDone {
		authDone = c.doneCycle[n-1]
	}

	c.stats.AuthRequests++
	arrive := dataArrive
	if n := len(c.arriveCycle); n > 0 && c.arriveCycle[n-1] > arrive {
		arrive = c.arriveCycle[n-1] // keep the arrival sequence monotone
	}
	c.arriveCycle = append(c.arriveCycle, arrive)
	c.doneCycle = append(c.doneCycle, authDone)
	c.okFlag = append(c.okFlag, ok)
	res.AuthIdx = uint64(len(c.doneCycle))
	res.AuthDone = authDone
	res.AuthOK = ok
	c.stats.AuthWaitCycles += authDone - plainReady
	if c.sink != nil {
		c.sink.Emit(obs.Event{Cycle: arrive, Kind: obs.EvAuthRequest, Track: obs.TrackAuthQueue,
			Addr: lineAddr, A: res.AuthIdx, B: authDone})
		c.sink.Emit(obs.Event{Cycle: authDone, Kind: obs.EvAuthComplete, Track: obs.TrackAuthQueue,
			Addr: lineAddr, A: arrive, B: plainReady})
		if !ok {
			c.sink.Emit(obs.Event{Cycle: authDone, Kind: obs.EvAuthFail, Track: obs.TrackAuthQueue,
				Addr: lineAddr, A: res.AuthIdx})
		}
	}
	if !ok {
		c.stats.AuthFailures++
		if c.fault == nil {
			c.fault = &Fault{Idx: res.AuthIdx, Addr: lineAddr, Cycle: authDone}
		}
	}
	return res, nil
}

// ctrKey maps a line address to its counter-block cache key: eight
// consecutive lines share one 64-byte counter block.
func (c *Controller) ctrKey(lineAddr uint64) uint64 {
	return lineAddr / uint64(c.cfg.LineB) * 8
}

func (c *Controller) counterAddr(lineAddr uint64) uint64 {
	return c.macBase + 0x2000_0000 + uint64(c.leafIdx[lineAddr])*8
}

// busDramRead performs one address+data transaction: bus command, DRAM
// access, data return. Returns (address-visible cycle, data-arrival cycle).
func (c *Controller) busDramRead(start uint64, addr uint64, nbytes int, kind bus.Kind) (uint64, uint64) {
	addrDone, _ := c.bus.Transact(start, kind, addr, nbytes)
	_, done := c.dram.Access(addrDone, addr, nbytes)
	return addrDone, done
}

// WriteBack performs a timed external write-back of a dirty protected line.
// It returns the cycle the write completes on the bus. Under
// authen-then-write the *pipeline* delays calling this until the store's
// authentication tag clears; the controller itself writes unconditionally.
func (c *Controller) WriteBack(now uint64, lineAddr uint64, plaintext []byte) (uint64, error) {
	if _, ok := c.leafIdx[lineAddr]; !ok {
		return 0, fmt.Errorf("secmem: writeback of unprotected line %#x", lineAddr)
	}
	c.stats.Writebacks++
	c.obsNow = now
	if c.sink != nil {
		c.sink.Emit(obs.Event{Cycle: now, Kind: obs.EvWriteBack, Track: obs.TrackSecmem, Addr: lineAddr})
	}
	if err := c.storeLine(lineAddr, plaintext); err != nil {
		return 0, err
	}
	if c.ctrCache != nil {
		c.ctrCache.Fill(c.ctrKey(lineAddr), true)
	}
	burst := c.cfg.LineB + 8 // line + fresh counter
	if c.cfg.Authenticate && !c.cfg.UseTree {
		burst += c.cfg.MacB
	}
	busAddr := lineAddr
	busStart := now
	if c.remap != nil {
		var ready uint64
		busAddr, ready = c.remap.Reshuffle(now, lineAddr)
		busStart = max(busStart, ready)
	}
	_, done := c.bus.Transact(busStart, bus.WriteLine, busAddr, burst)
	if c.cfg.Authenticate && c.cfg.UseTree {
		// Tree path update: recompute/stash the path nodes. This work is
		// off the verification critical path in a real design (a separate
		// update unit, or idle engine slots); charging it to the in-order
		// verification engine couples write-back storms to every pending
		// verification and lets the engine drift unboundedly ahead of the
		// core. A dedicated update-unit accumulator tracks its occupancy.
		c.updateFree = max(c.updateFree, now) + uint64(c.tree.Levels()*c.cfg.MacLat)
	}
	return done, nil
}

// engineRun schedules one verification of the given duration, whose inputs
// are ready at `ready`, onto the earliest-free verification unit. It returns
// the completion cycle.
func (c *Controller) engineRun(ready uint64, dur uint64) uint64 {
	best := 0
	for i := 1; i < len(c.engineFree); i++ {
		if c.engineFree[i] < c.engineFree[best] {
			best = i
		}
	}
	start := max(ready, c.engineFree[best])
	c.engineFree[best] = start + dur
	return start + dur
}

// LastRequest returns the index of the newest authentication request (the
// LastRequest register of Figure 5). Zero means no requests yet.
func (c *Controller) LastRequest() uint64 { return uint64(len(c.doneCycle)) }

// LastRequestAt returns the value the LastRequest register held at the
// given cycle: the newest request whose data had arrived (entered the
// authentication queue) by then. Fetches still outstanding at that cycle
// are not counted — they must not gate a new fetch (§4.2.4).
func (c *Controller) LastRequestAt(now uint64) uint64 {
	// Binary search the monotone arrival sequence.
	lo, hi := 0, len(c.arriveCycle)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.arriveCycle[mid] <= now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// DoneAt returns the completion cycle and verdict of request idx (1-based).
// idx 0 (no dependency) reports done at cycle 0.
//
// An out-of-range idx is a model inconsistency (a gate dependency on a
// request that was never enqueued). It does not panic: the first occurrence
// is recorded as a sticky error — surfaced by sim.Machine.Run as a failed
// run — and the call reports done-at-0 so the caller's gating logic does not
// deadlock while the error propagates.
func (c *Controller) DoneAt(idx uint64) (cycle uint64, ok bool) {
	if idx == 0 {
		return 0, true
	}
	if idx > uint64(len(c.doneCycle)) {
		if c.modelErr == nil {
			c.modelErr = fmt.Errorf("secmem: DoneAt(%d) beyond LastRequest %d", idx, len(c.doneCycle))
		}
		return 0, false
	}
	return c.doneCycle[idx-1], c.okFlag[idx-1]
}

// Err returns the first internal model inconsistency this controller
// observed (nil if none). Sticky: later inconsistencies do not overwrite it.
func (c *Controller) Err() error { return c.modelErr }

// Fault returns the first verification failure, if any.
func (c *Controller) Fault() *Fault { return c.fault }

// NextEventAt supports the idle-cycle fast-forward. The controller and its
// crypto engines are lazily timed — every request's verification completion
// is scheduled at request time and read back through DoneAt, so those
// horizons are already folded into the consumers' gate timestamps. The one
// autonomous event is a pending security fault firing when the engine
// reaches the tampered line; the run loop must not skip past it.
func (c *Controller) NextEventAt(now uint64) uint64 {
	if c.fault != nil && c.fault.Cycle > now {
		return c.fault.Cycle
	}
	if c.fault != nil {
		return now // fault already due: stop skipping, let the loop observe it
	}
	return ^uint64(0)
}

// Stats returns a copy of the counters (remap stats folded in).
func (c *Controller) Stats() Stats {
	s := c.stats
	if c.remap != nil {
		s.RemapHits = c.remap.hits
		s.RemapMisses = c.remap.misses
	}
	return s
}
