package contract

import (
	"encoding/binary"
	"fmt"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/attack"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// KernelCase is one attack kernel prepared for two-run contract checking:
// the effective post-tamper program plus the secret-variation recipe (which
// bytes to flip, how) and the expected observability class.
type KernelCase struct {
	// Name and Channel come from the attack catalog ("addr", "ctrl", "io",
	// "state").
	Name    string
	Channel string
	// Prog is the effective post-tamper program.
	Prog *asm.Program
	// Analysis is the base analysis configuration (explicit secret symbols
	// for kernels whose secret-carrying symbol has an innocent name).
	Analysis analysis.Options
	// Regions are the extra mapped windows the run needs (the probe window).
	Regions []sim.Region
	// Mask is XORed into the secret word to form the second image. Masks are
	// chosen so both images stay within the addresses the kernel's fetches
	// can legally touch (probe window, search range).
	Mask uint64
	// BusLeak is the catalog's ground truth: whether varying the secret is
	// observable on the bus at all. io-port and state-contamination kernels
	// leak through channels the bus adversary cannot see — their two-run
	// verdicts must be clean/imprecise, never licensed-by-observation.
	BusLeak bool
	// BusLeakUnder, when non-nil, refines BusLeak per policy point: the PAC
	// kernels leak on the bus under some auth-failure modes and are contained
	// under others. BusLeak stays the Baseline ground truth. When the
	// effective leak is closed by policy the static contract still licenses
	// the channel (taint flows through auth regardless of mode), so the
	// expected verdict is imprecise, never clean.
	BusLeakUnder func(policy.ControlPoint) bool
	// ObserveWatchdog marks kernels built on the non-halting victim: the
	// adversary view is the bus activity inside a bounded watchdog window,
	// matching how the attack experiments observe them.
	ObserveWatchdog bool
}

// LeaksUnder reports whether varying the kernel's secret is bus-observable
// under the given policy point: the per-policy refinement when the kernel has
// one, the constant ground truth otherwise.
func (kc KernelCase) LeaksUnder(pt policy.ControlPoint) bool {
	if kc.BusLeakUnder != nil {
		return kc.BusLeakUnder(pt)
	}
	return kc.BusLeak
}

// observeCycles is the bounded observation window for non-halting victim
// kernels, matching the attack experiments' watchdog.
const observeCycles = 200_000

// Catalog prepares every attack kernel for contract checking.
func Catalog() ([]KernelCase, error) {
	kernels, err := attack.Kernels()
	if err != nil {
		return nil, err
	}
	probe := []sim.Region{{Start: attack.ProbeBase, Size: attack.ProbeSize}}
	// Per-kernel secret-variation recipe. Masks keep the varied value inside
	// the kernel's legal fetch targets: pointer-valued secrets stay in the
	// probe window (flip an offset bit, not a base bit), the binary-search
	// secret flips a bit the guess discriminates, the disclosing kernel
	// flips low bits so a different 64-line window is probed.
	recipes := map[string]struct {
		mask      uint64
		symbols   []string
		busLeak   bool
		watchdog  bool
		leakUnder func(policy.ControlPoint) bool
	}{
		"pointer-conversion":   {mask: 0x1000, busLeak: true},
		"binary-search":        {mask: 0x10000, busLeak: true},
		"disclosing-kernel":    {mask: 0x15, busLeak: true, watchdog: true},
		"io-port-disclosure":   {mask: 0xFF, busLeak: false, watchdog: true},
		"brute-force-page":     {mask: 0x1000, symbols: []string{"ptr"}, busLeak: true},
		"memory-taint":         {mask: 0xFF, symbols: []string{"input"}, busLeak: false},
		"passive-control-flow": {mask: 0xFF, busLeak: true},
		// The PAC kernels' bus visibility depends on the pac/fpac dimension
		// and — for fault-at-auth — on where the memory-authentication gate
		// sits, because the gate decides how long the failing auth is held
		// before its fault retires. The closures record the machine's
		// deterministic behavior, pinned across the full lattice by
		// TestKernelLeaksLicensed (obfuscation is factored out separately,
		// as for the constant-BusLeak kernels).
		//
		// Substitution: poisoning always contains it (the poisoned address is
		// rejected before the bus). Fault-at-auth contains it too — unless the
		// commit gate holds the pointer's own line-MAC verify at retirement,
		// stalling the fault long enough for the dependent load to reach the
		// bus; the issue gate closes that window again by blocking the
		// dependent chain until the line is verified.
		"pac-pointer-substitution": {mask: 0x1000, symbols: []string{"sptr"}, busLeak: true,
			leakUnder: func(pt policy.ControlPoint) bool {
				k := pt.Knobs()
				return !k.PAC || (k.PACFault && k.GateCommit && !k.GateIssue)
			}},
		// Race: the kernel carries its own commit-blockers (a divide chain
		// anchored to the loaded pointer), so fault-at-auth loses the race at
		// nearly every gate position; only the fetch gate alone re-times the
		// dependent chain enough that the fault retires first. Poisoning wins
		// unconditionally.
		"pac-auth-use-race": {mask: 0x1000, symbols: []string{"sptr"}, busLeak: true,
			leakUnder: func(pt policy.ControlPoint) bool {
				k := pt.Knobs()
				if !k.PAC {
					return true
				}
				if !k.PACFault {
					return false
				}
				return !k.GateFetch || k.GateIssue || k.GateCommit
			}},
		// Gadget: re-signing through the victim's own sign instruction
		// defeats every auth-failure mode; the constant BusLeak applies.
		"pac-signing-gadget": {mask: 0x1000, symbols: []string{"sptr"}, busLeak: true},
	}
	var out []KernelCase
	for _, k := range kernels {
		r, ok := recipes[k.Name]
		if !ok {
			return nil, fmt.Errorf("contract: kernel %s has no secret-variation recipe", k.Name)
		}
		kc := KernelCase{
			Name:            k.Name,
			Channel:         k.Channel,
			Prog:            k.Prog,
			Analysis:        analysis.Options{SecretSymbols: r.symbols},
			Mask:            r.mask,
			BusLeak:         r.busLeak,
			BusLeakUnder:    r.leakUnder,
			ObserveWatchdog: r.watchdog,
		}
		if k.NeedsProbe {
			kc.Regions = probe
		}
		out = append(out, kc)
	}
	return out, nil
}

// CheckKernel runs the two-run contract check on one kernel case: image A is
// the kernel's own secret word, image B is that word with the case's mask
// XORed in.
func CheckKernel(kc KernelCase, opt Options) (Result, error) {
	c, err := Derive(kc.Prog, opt.Policy, kc.Analysis)
	if err != nil {
		return Result{}, err
	}
	target, ok := patchableRange(kc.Prog, c.SecretRanges)
	if !ok {
		return Result{}, fmt.Errorf("contract: kernel %s has no secret range in its data segment", kc.Name)
	}
	n := target.End - target.Start
	if n > 8 {
		n = 8
	}
	a := make([]byte, n)
	copy(a, kc.Prog.Data[target.Start-kc.Prog.DataBase:])
	var word [8]byte
	copy(word[:], a)
	v := binary.LittleEndian.Uint64(word[:]) ^ kc.Mask
	binary.LittleEndian.PutUint64(word[:], v)
	b := append([]byte(nil), word[:n]...)

	opt.Analysis = kc.Analysis
	opt.Regions = kc.Regions
	opt.SecretA, opt.SecretB = a, b
	if kc.ObserveWatchdog {
		opt.ObserveWatchdog = true
		if opt.WatchdogCycles == 0 {
			opt.WatchdogCycles = observeCycles
		}
	}
	return Check(kc.Prog, opt), nil
}
