package contract

import (
	"encoding/binary"
	"fmt"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/attack"
	"authpoint/internal/sim"
)

// KernelCase is one attack kernel prepared for two-run contract checking:
// the effective post-tamper program plus the secret-variation recipe (which
// bytes to flip, how) and the expected observability class.
type KernelCase struct {
	// Name and Channel come from the attack catalog ("addr", "ctrl", "io",
	// "state").
	Name    string
	Channel string
	// Prog is the effective post-tamper program.
	Prog *asm.Program
	// Analysis is the base analysis configuration (explicit secret symbols
	// for kernels whose secret-carrying symbol has an innocent name).
	Analysis analysis.Options
	// Regions are the extra mapped windows the run needs (the probe window).
	Regions []sim.Region
	// Mask is XORed into the secret word to form the second image. Masks are
	// chosen so both images stay within the addresses the kernel's fetches
	// can legally touch (probe window, search range).
	Mask uint64
	// BusLeak is the catalog's ground truth: whether varying the secret is
	// observable on the bus at all. io-port and state-contamination kernels
	// leak through channels the bus adversary cannot see — their two-run
	// verdicts must be clean/imprecise, never licensed-by-observation.
	BusLeak bool
	// ObserveWatchdog marks kernels built on the non-halting victim: the
	// adversary view is the bus activity inside a bounded watchdog window,
	// matching how the attack experiments observe them.
	ObserveWatchdog bool
}

// observeCycles is the bounded observation window for non-halting victim
// kernels, matching the attack experiments' watchdog.
const observeCycles = 200_000

// Catalog prepares every attack kernel for contract checking.
func Catalog() ([]KernelCase, error) {
	kernels, err := attack.Kernels()
	if err != nil {
		return nil, err
	}
	probe := []sim.Region{{Start: attack.ProbeBase, Size: attack.ProbeSize}}
	// Per-kernel secret-variation recipe. Masks keep the varied value inside
	// the kernel's legal fetch targets: pointer-valued secrets stay in the
	// probe window (flip an offset bit, not a base bit), the binary-search
	// secret flips a bit the guess discriminates, the disclosing kernel
	// flips low bits so a different 64-line window is probed.
	recipes := map[string]struct {
		mask     uint64
		symbols  []string
		busLeak  bool
		watchdog bool
	}{
		"pointer-conversion":   {mask: 0x1000, busLeak: true},
		"binary-search":        {mask: 0x10000, busLeak: true},
		"disclosing-kernel":    {mask: 0x15, busLeak: true, watchdog: true},
		"io-port-disclosure":   {mask: 0xFF, busLeak: false, watchdog: true},
		"brute-force-page":     {mask: 0x1000, symbols: []string{"ptr"}, busLeak: true},
		"memory-taint":         {mask: 0xFF, symbols: []string{"input"}, busLeak: false},
		"passive-control-flow": {mask: 0xFF, busLeak: true},
	}
	var out []KernelCase
	for _, k := range kernels {
		r, ok := recipes[k.Name]
		if !ok {
			return nil, fmt.Errorf("contract: kernel %s has no secret-variation recipe", k.Name)
		}
		kc := KernelCase{
			Name:            k.Name,
			Channel:         k.Channel,
			Prog:            k.Prog,
			Analysis:        analysis.Options{SecretSymbols: r.symbols},
			Mask:            r.mask,
			BusLeak:         r.busLeak,
			ObserveWatchdog: r.watchdog,
		}
		if k.NeedsProbe {
			kc.Regions = probe
		}
		out = append(out, kc)
	}
	return out, nil
}

// CheckKernel runs the two-run contract check on one kernel case: image A is
// the kernel's own secret word, image B is that word with the case's mask
// XORed in.
func CheckKernel(kc KernelCase, opt Options) (Result, error) {
	c, err := Derive(kc.Prog, opt.Policy, kc.Analysis)
	if err != nil {
		return Result{}, err
	}
	target, ok := patchableRange(kc.Prog, c.SecretRanges)
	if !ok {
		return Result{}, fmt.Errorf("contract: kernel %s has no secret range in its data segment", kc.Name)
	}
	n := target.End - target.Start
	if n > 8 {
		n = 8
	}
	a := make([]byte, n)
	copy(a, kc.Prog.Data[target.Start-kc.Prog.DataBase:])
	var word [8]byte
	copy(word[:], a)
	v := binary.LittleEndian.Uint64(word[:]) ^ kc.Mask
	binary.LittleEndian.PutUint64(word[:], v)
	b := append([]byte(nil), word[:n]...)

	opt.Analysis = kc.Analysis
	opt.Regions = kc.Regions
	opt.SecretA, opt.SecretB = a, b
	if kc.ObserveWatchdog {
		opt.ObserveWatchdog = true
		if opt.WatchdogCycles == 0 {
			opt.WatchdogCycles = observeCycles
		}
	}
	return Check(kc.Prog, opt), nil
}
