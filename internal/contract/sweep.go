package contract

import (
	"context"
	"sort"
	"sync"
	"time"

	"authpoint/internal/diffcheck"
	"authpoint/internal/harness"
	"authpoint/internal/policy"
	"authpoint/internal/telemetry"
)

// Cell is one unit of verification work: a generated seed checked under one
// policy.
type Cell struct {
	Seed   int64
	Policy policy.ControlPoint
}

// PairCells spreads seeds round-robin over the policies: seed i runs under
// policies[i mod len]. This is the CI smoke shape — every seed checked once,
// every policy exercised continuously — at 1/len(policies) the cost of the
// full cross product.
func PairCells(seeds []int64, pols []policy.ControlPoint) []Cell {
	out := make([]Cell, len(seeds))
	for i, s := range seeds {
		out[i] = Cell{Seed: s, Policy: pols[i%len(pols)]}
	}
	return out
}

// CrossCells is the full cross product: every seed under every policy.
func CrossCells(seeds []int64, pols []policy.ControlPoint) []Cell {
	out := make([]Cell, 0, len(seeds)*len(pols))
	for _, s := range seeds {
		for _, p := range pols {
			out = append(out, Cell{Seed: s, Policy: p})
		}
	}
	return out
}

// Finding is a cell whose verdict is a problem — unsound (the analysis
// missed a dynamic leak) or error — with the program that provoked it.
type Finding struct {
	Result Result
	Source string
}

// IsFinding reports whether a verdict is a finding. Licensed and imprecise
// are expected outcomes of a conservative analysis, not findings.
func IsFinding(v Verdict) bool { return v == VerdictUnsound || v == VerdictError }

// bad is the sweep-internal alias for IsFinding.
func bad(v Verdict) bool { return IsFinding(v) }

// Sweep checks every cell on the harness worker pool (parallelism <= 0 means
// NumCPU) and returns per-cell results in cell order plus the findings,
// sorted by (seed, policy) for determinism. Cells skipped because ctx
// expired have an empty Verdict; the ctx error is returned so callers can
// distinguish "clean" from "clean so far, budget exhausted".
func Sweep(ctx context.Context, cells []Cell, opt Options, parallelism int) ([]Result, []Finding, error) {
	return SweepObserved(ctx, cells, opt, parallelism, nil)
}

// SweepObserved is Sweep with campaign telemetry (the observability hooks
// are shared with the differential fuzzer: one ledger schema, one meter).
func SweepObserved(ctx context.Context, cells []Cell, opt Options, parallelism int, so *diffcheck.SweepObs) ([]Result, []Finding, error) {
	runner := &harness.Runner{Parallelism: parallelism}
	var seqBase uint64
	if so != nil {
		runner.Meter = so.Meter
		if so.Ledger != nil {
			seqBase = so.Ledger.ReserveSeq(len(cells))
		}
		if so.CollectMetrics {
			opt.MetricsSink = so.Sink
		}
	}
	results := make([]Result, len(cells))
	var (
		mu       sync.Mutex
		findings []Finding
	)
	err := runner.Do(ctx, len(cells), func(ctx context.Context, i int) error {
		if ctx.Err() != nil {
			return nil // budget expired while queued: leave the cell empty
		}
		c := cells[i]
		o := opt
		o.Policy = c.Policy
		start := time.Now()
		res, src := CheckSeed(c.Seed, o)
		results[i] = res
		if so != nil && so.Ledger != nil {
			so.Ledger.Emit(telemetry.Record{
				Seq:     seqBase + uint64(i),
				Kind:    "verify",
				Policy:  c.Policy.String(),
				Seed:    c.Seed,
				Verdict: string(res.Verdict),
				// Both runs' cycles: the cell's total simulated work.
				SimCycles: res.CyclesA + res.CyclesB,
				HostNs:    time.Since(start).Nanoseconds(),
				Worker:    telemetry.Worker(ctx),
				Cached:    res.Cached,
			})
		}
		if bad(res.Verdict) {
			mu.Lock()
			findings = append(findings, Finding{Result: res, Source: src})
			mu.Unlock()
		}
		return nil
	})
	// Cells the budget (or a fail-fast cancel) never ran get explicit skipped
	// records, mirroring the fuzz sweep: no silent sequence holes, and a
	// resumed campaign can tell skipped from done.
	if so != nil && so.Ledger != nil {
		for i, r := range results {
			if r.Verdict != "" {
				continue
			}
			c := cells[i]
			so.Ledger.Emit(telemetry.Record{
				Seq:     seqBase + uint64(i),
				Kind:    "verify",
				Policy:  c.Policy.String(),
				Seed:    c.Seed,
				Verdict: telemetry.VerdictSkipped,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Result, findings[j].Result
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Policy.String() < b.Policy.String()
	})
	return results, findings, err
}
