package contract

import (
	"reflect"
	"testing"

	"authpoint/internal/campaign"
	"authpoint/internal/policy"
)

// TestCheckCacheBitIdentity pins the cache determinism contract for the
// two-run checker: a cached result equals the fresh one field for field
// (modulo the Cached marker), including the nested contract and the recorded
// secret images.
func TestCheckCacheBitIdentity(t *testing.T) {
	store, err := campaign.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pols := []policy.ControlPoint{policy.Baseline, policy.ThenCommit, policy.CommitPlusObfuscation}
	seeds := []int64{1, 2, 3}
	for _, seed := range seeds {
		for _, pt := range pols {
			opt := Options{Policy: pt, Cache: store}
			fresh, _ := CheckSeed(seed, opt)
			if fresh.Cached {
				t.Fatalf("seed %d under %v: first check claims cached", seed, pt)
			}
			cached, _ := CheckSeed(seed, opt)
			if !cached.Cached {
				t.Fatalf("seed %d under %v: second check missed the cache", seed, pt)
			}
			cached.Cached = false
			if !reflect.DeepEqual(fresh, cached) {
				t.Fatalf("seed %d under %v: cached result diverged:\nfresh:  %+v\ncached: %+v",
					seed, pt, fresh, cached)
			}
		}
	}
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	want := int64(len(seeds) * len(pols))
	if store.Hits() != want || store.Puts() != want {
		t.Fatalf("cache hits=%d puts=%d, want %d each", store.Hits(), store.Puts(), want)
	}
}

// TestCacheKeySeparatesOptions pins that result-relevant options split cache
// entries: the same (program, policy) under a different seed or explicit
// secret pair must not alias.
func TestCacheKeySeparatesOptions(t *testing.T) {
	src := "halt"
	base := Options{Policy: policy.Baseline, Seed: 1}
	k1, ok1 := cacheKey(src, base)
	alt := base
	alt.Seed = 2
	k2, ok2 := cacheKey(src, alt)
	if !ok1 || !ok2 {
		t.Fatal("cacheKey failed to serialize plain options")
	}
	if k1.ID() == k2.ID() {
		t.Fatal("seed change did not change the cache address")
	}
	withSecrets := base
	withSecrets.SecretA, withSecrets.SecretB = []byte{1}, []byte{2}
	k3, _ := cacheKey(src, withSecrets)
	if k3.ID() == k1.ID() {
		t.Fatal("explicit secret images did not change the cache address")
	}
	diffPolicy := base
	diffPolicy.Policy = policy.ThenCommit
	k4, _ := cacheKey(src, diffPolicy)
	if k4.ID() == k1.ID() {
		t.Fatal("policy change did not change the cache address")
	}
}
