package contract

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"authpoint/internal/attack"
	"authpoint/internal/policy"
)

var update = flag.Bool("update", false, "regenerate the checked-in leak corpus under testdata/")

// leakEntry pins one attack-kernel verdict as a .leak recording: the kernel's
// exact source, the policy point, both secret images, and the full outcome.
type leakEntry struct {
	file   string
	note   string
	kernel string
	pol    policy.ControlPoint
	// verdict is the expected outcome, double-checked at record time so a
	// drifted machine cannot silently re-record a different story.
	verdict Verdict
}

// leakEntries pins the PAC kernels at the lattice points where their story
// turns: detection working, detection defeated, and the auth-then-use race
// the fault-at-auth mode loses.
var leakEntries = []leakEntry{
	{
		file:    "pac-substitution-baseline.leak",
		note:    "forged cross-context pointer with PAC off: auth strips through and the substituted dereference is bus-visible — the leak the pac dimension closes",
		kernel:  "pac-pointer-substitution",
		pol:     policy.Baseline,
		verdict: VerdictLicensed,
	},
	{
		file:    "pac-substitution-then-pac.leak",
		note:    "same substitution under authen-then-pac: the poisoned pointer never reaches the bus; the contract still licenses the channel, so the verdict is imprecise, not clean",
		kernel:  "pac-pointer-substitution",
		pol:     policy.ThenPAC,
		verdict: VerdictImprecise,
	},
	{
		file:    "pac-substitution-commit-fpac.leak",
		note:    "substitution under commit+fpac: the commit gate stalls the failing auth behind the line-MAC verify, and the dependent load wins the race to the bus — fault-at-auth composed with a commit-site gate reopens the leak",
		kernel:  "pac-pointer-substitution",
		pol:     policy.Compose(policy.ThenCommit, policy.ThenFPAC),
		verdict: VerdictLicensed,
	},
	{
		file:    "pac-race-fpac.leak",
		note:    "auth-then-use race under authen-then-fpac: older divide chain holds the failing auth at the ROB head while its stripped result feeds a speculative load that reaches the bus — the unsound-by-design window of fault-at-auth",
		kernel:  "pac-auth-use-race",
		pol:     policy.ThenFPAC,
		verdict: VerdictLicensed,
	},
	{
		file:    "pac-race-then-pac.leak",
		note:    "same race under authen-then-pac: the poisoned result is rejected at translation, before any bus traffic — poisoning wins the race fault-at-auth loses",
		kernel:  "pac-auth-use-race",
		pol:     policy.ThenPAC,
		verdict: VerdictImprecise,
	},
	{
		file:    "pac-signing-gadget-fpac.leak",
		note:    "signing-gadget reuse under authen-then-fpac: the victim's own sign instruction legitimizes the forged pointer, so every auth-failure mode is defeated",
		kernel:  "pac-signing-gadget",
		pol:     policy.ThenFPAC,
		verdict: VerdictLicensed,
	},
}

func TestLeakCorpusUpToDate(t *testing.T) {
	cases, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]KernelCase{}
	for _, kc := range cases {
		byName[kc.Name] = kc
	}
	sources := attack.PACKernelSources()

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range leakEntries {
		kc, ok := byName[e.kernel]
		if !ok {
			t.Fatalf("%s: kernel %q not in catalog", e.file, e.kernel)
		}
		src, ok := sources[e.kernel]
		if !ok {
			t.Fatalf("%s: kernel %q has no exported source", e.file, e.kernel)
		}
		res, err := CheckKernel(kc, Options{Policy: e.pol})
		if err != nil {
			t.Fatalf("%s: %v", e.file, err)
		}
		if res.Verdict != e.verdict {
			t.Fatalf("%s: verdict %s, expected %s — machine drifted; review before re-recording", e.file, res.Verdict, e.verdict)
		}
		l := NewLeak(res, src, e.note)
		l.Probe = true
		l.SecretSymbols = kc.Analysis.SecretSymbols
		path := filepath.Join("testdata", e.file)
		if *update {
			if err := l.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing (run `go test -run TestLeakCorpusUpToDate -update ./internal/contract`): %v", path, err)
		}
		if string(want) != string(l.Encode()) {
			t.Errorf("%s is stale: model behaviour drifted from the recording (re-record with -update only if the drift is intended)", path)
		}
	}
}

// TestLeakCorpusReplay replays every checked-in leak recording byte-
// identically — the same path `authverify -replay <file>` takes.
func TestLeakCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.leak"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < len(leakEntries) {
		t.Fatalf("corpus has %d files, expected at least %d", len(files), len(leakEntries))
	}
	for _, f := range files {
		l, err := LoadLeak(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if _, err := l.Replay(); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
