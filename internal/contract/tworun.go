package contract

import (
	"bytes"
	"encoding/json"
	"fmt"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/bus"
	"authpoint/internal/campaign"
	"authpoint/internal/diffcheck"
	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// CheckSchema versions the two-run check's semantics for the campaign result
// cache: the verdict set, the adversary-view encoding, the secret-pair
// derivation, and the contract derivation. Any change that could alter a
// Result for the same (source, policy, options) must bump it.
const CheckSchema = "authverify/check/v1"

// Verdict classifies one two-run contract check.
type Verdict string

// Verdicts. The set is part of the .leak file contract: replays compare
// verdict strings byte-for-byte.
const (
	// VerdictClean: the contract is empty and the two runs were observably
	// identical — the analysis claimed nothing leaks, and nothing did.
	VerdictClean Verdict = "clean"
	// VerdictLicensed: the runs differed, and every differing channel is
	// licensed by a static finding. The leak is real and the analysis saw it
	// coming — the sound case the attack-kernel catalog pins.
	VerdictLicensed Verdict = "licensed"
	// VerdictImprecise: the contract licenses differences that never
	// materialized. Contract slack, not a bug: the analysis is conservative
	// by design (secret-dependent addresses that stay within one cache line,
	// branches whose arms are observably identical).
	VerdictImprecise Verdict = "imprecise"
	// VerdictUnsound: the runs differed on a channel no static finding
	// licenses — a dynamic leak the analysis missed. Either an analysis bug
	// or a real design leak; both are findings, ddmin-minimized and recorded.
	VerdictUnsound Verdict = "unsound"
	// VerdictError: the check itself could not run (assembly failure, no
	// patchable secret range, watchdog, model error).
	VerdictError Verdict = "error"
)

// Options configures one two-run check.
type Options struct {
	// Policy is the authentication control point both runs execute under.
	Policy policy.ControlPoint
	// Analysis is the base static-analysis configuration (extra secret
	// symbols or ranges); the policy's contract knobs are layered on top.
	Analysis analysis.Options
	// Seed derives the secret image pair when SecretA/SecretB are nil, and
	// is stamped into the result.
	Seed int64
	// SecretA and SecretB, when set, are the two images patched over the
	// program's first in-data secret range (truncated to the range). When
	// nil, diffcheck.SecretPair(Seed, rangeLen) supplies them.
	SecretA, SecretB []byte
	// Regions are extra protected+mapped address ranges (the attack
	// kernels' probe window).
	Regions []sim.Region
	// WatchdogCycles overrides the timed machines' watchdog (0 = simulator
	// default). The minimizer lowers it so non-terminating shrink candidates
	// fail fast.
	WatchdogCycles uint64
	// ObserveWatchdog treats a watchdog stop as the end of a bounded
	// observation window instead of a check error. Victim kernels never
	// halt: the adversary watches the bus for WatchdogCycles and the view is
	// whatever crossed it by then. The window end is a cycle count, so it
	// cuts both runs at the same horizon.
	ObserveWatchdog bool
	// MetricsSink, if set, receives each timed run's observability snapshot
	// (two per check — run A and run B). It must be safe for concurrent
	// use: sweeps call it from every worker. The hub shares the bus
	// observer slot with the adversary collector through a tee, so the
	// recorded view is unchanged. Cache hits produce no snapshot: nothing
	// was simulated.
	MetricsSink func(*obs.Snapshot)
	// Cache, if set, is the campaign result cache: CheckProgram consults it
	// before simulating and records fresh results into it, keyed on
	// (CheckSchema, source digest, normalized policy, and every
	// result-relevant option including the secret images). Cached and fresh
	// results are bit-identical — the same determinism the .leak replay
	// corpus pins.
	Cache *campaign.Store
}

// ViewEvent is one bus transaction as the adversary records it: start cycle,
// address (zero under obfuscation — the re-mapped address carries no
// information), transaction kind, and data-done cycle.
type ViewEvent struct {
	Cycle uint64
	Addr  uint64
	Kind  bus.Kind
	Done  uint64
}

// View is the full adversary observation of one run: the bus transaction
// sequence plus the run's length and stop reason (power-off timing is
// observable too).
type View struct {
	Cycles uint64
	Reason string
	Events []ViewEvent
}

// Result is the outcome of one two-run check. All fields are deterministic
// functions of (source, policy, images): recorded results replay
// byte-identically.
type Result struct {
	Seed    int64
	Policy  policy.ControlPoint
	Verdict Verdict
	// Channels are the channels on which the two views differed, in
	// canonical order (addr, timing). Empty when the views matched.
	Channels []Channel
	// Diff describes the first difference found per channel ("" if none);
	// for unsound verdicts it names the unlicensed channel.
	Diff string
	// Contract is the static contract the dynamic observation was checked
	// against.
	Contract *Contract
	// CyclesA and CyclesB are the two runs' lengths.
	CyclesA, CyclesB uint64
	// SecretA and SecretB are the images the runs used (recorded for
	// deterministic replay).
	SecretA, SecretB []byte
	// Cached marks a result served from the campaign cache rather than a
	// fresh pair of simulations. Not part of the result's identity, so it
	// is excluded from the cache payload.
	Cached bool `json:"-"`
}

// busCollector records the adversary view: bus transactions only.
type busCollector struct {
	events []obs.Event
}

func (c *busCollector) Emit(e obs.Event) {
	if e.Kind == obs.EvBusTxn {
		c.events = append(c.events, e)
	}
}

// teeSink fans one component's events to two sinks, so the adversary's bus
// collector and a metrics hub can share the single bus observer slot.
type teeSink struct{ a, b obs.Sink }

func (t teeSink) Emit(e obs.Event) {
	t.a.Emit(e)
	t.b.Emit(e)
}

// CheckSeed generates the secret-mode program for seed and checks it; it
// returns the result (with Seed stamped) and the generated source.
func CheckSeed(seed int64, opt Options) (Result, string) {
	src := diffcheck.GenSecretProgram(seed)
	opt.Seed = seed
	return CheckProgram(src, opt), src
}

// CheckProgram assembles src and runs the two-run contract check on it,
// consulting the campaign cache (Options.Cache) first when one is attached.
func CheckProgram(src string, opt Options) Result {
	key, keyed := campaign.Key{}, false
	if opt.Cache != nil {
		key, keyed = cacheKey(src, opt)
	}
	if keyed {
		var cached Result
		if ok, _ := opt.Cache.Get(key, &cached); ok {
			cached.Cached = true
			return cached
		}
	}
	res := checkProgram(src, opt)
	if keyed && res.Verdict != "" {
		_ = opt.Cache.Put(key, res) // sticky error surfaced via Store.Err
	}
	return res
}

// cacheKey addresses one two-run check in the campaign cache. Every
// result-relevant option is folded into the key — including the seed (it
// derives the secret pair) and any explicit secret images — so a hit is
// bit-identical to the fresh check by construction. ok is false only if the
// options fail to serialize, in which case the check runs uncached.
func cacheKey(src string, opt Options) (campaign.Key, bool) {
	fp, err := json.Marshal(struct {
		Analysis         analysis.Options
		Seed             int64
		SecretA, SecretB []byte
		Regions          []sim.Region
		Watchdog         uint64
		ObserveWatchdog  bool
	}{opt.Analysis, opt.Seed, opt.SecretA, opt.SecretB, opt.Regions, opt.WatchdogCycles, opt.ObserveWatchdog})
	if err != nil {
		return campaign.Key{}, false
	}
	return campaign.Key{
		Check:      CheckSchema,
		Kind:       "verify",
		ProgDigest: campaign.Digest([]byte(src)),
		Policy:     opt.Policy.Normalize().String(),
		Options:    string(fp),
	}, true
}

// checkProgram is the uncached check body.
func checkProgram(src string, opt Options) Result {
	p, err := asm.Assemble(src)
	if err != nil {
		return Result{
			Seed: opt.Seed, Policy: opt.Policy.Normalize(),
			Verdict: VerdictError, Diff: "assemble: " + err.Error(),
		}
	}
	return Check(p, opt)
}

// Check derives the static contract of prog under the policy, executes prog
// twice on secret-differing data images, and classifies the observable
// difference against the contract (see Verdicts).
func Check(prog *asm.Program, opt Options) Result {
	res := Result{Seed: opt.Seed, Policy: opt.Policy.Normalize()}

	c, err := Derive(prog, opt.Policy, opt.Analysis)
	if err != nil {
		res.Verdict = VerdictError
		res.Diff = "derive: " + err.Error()
		return res
	}
	res.Contract = c

	// The varied bytes must live inside the loaded data image, or the two
	// machines would not actually differ.
	target, ok := patchableRange(prog, c.SecretRanges)
	if !ok {
		res.Verdict = VerdictError
		res.Diff = "no secret range inside the data segment to vary"
		return res
	}
	n := int(target.End - target.Start)
	a, b := opt.SecretA, opt.SecretB
	if a == nil && b == nil {
		a, b = diffcheck.SecretPair(opt.Seed, n)
	}
	if len(a) > n {
		a = a[:n]
	}
	if len(b) > n {
		b = b[:n]
	}
	if bytes.Equal(a, b) {
		res.Verdict = VerdictError
		res.Diff = "secret images are identical; two-run check is vacuous"
		return res
	}
	res.SecretA = append([]byte(nil), a...)
	res.SecretB = append([]byte(nil), b...)

	cfg := sim.DefaultConfig()
	cfg.Policy = opt.Policy
	if opt.WatchdogCycles > 0 {
		cfg.WatchdogCycles = opt.WatchdogCycles
	}
	obfuscated := res.Policy.Obfuscate

	viewA, err := runView(patched(prog, target, a), cfg, opt.Regions, obfuscated, opt.ObserveWatchdog, opt.MetricsSink)
	if err != nil {
		res.Verdict = VerdictError
		res.Diff = "run A: " + err.Error()
		return res
	}
	viewB, err := runView(patched(prog, target, b), cfg, opt.Regions, obfuscated, opt.ObserveWatchdog, opt.MetricsSink)
	if err != nil {
		res.Verdict = VerdictError
		res.Diff = "run B: " + err.Error()
		return res
	}
	res.CyclesA, res.CyclesB = viewA.Cycles, viewB.Cycles

	res.Channels, res.Diff = DiffViews(viewA, viewB)
	if len(res.Channels) == 0 {
		if c.Empty() {
			res.Verdict = VerdictClean
		} else {
			res.Verdict = VerdictImprecise
		}
		return res
	}
	for _, ch := range res.Channels {
		if !c.Licenses(ch) {
			res.Verdict = VerdictUnsound
			res.Diff = fmt.Sprintf("unlicensed %s difference: %s", ch, res.Diff)
			return res
		}
	}
	res.Verdict = VerdictLicensed
	return res
}

// patchableRange returns the first secret range that lies fully inside the
// program's data segment.
func patchableRange(p *asm.Program, ranges []analysis.Range) (analysis.Range, bool) {
	dataEnd := p.DataBase + uint64(len(p.Data))
	for _, r := range ranges {
		if r.Start >= p.DataBase && r.End <= dataEnd && r.End > r.Start {
			return r, true
		}
	}
	return analysis.Range{}, false
}

// patched returns a copy of p whose data image carries img at the start of
// range r. Only the Data slice is copied; all other program state is shared
// read-only.
func patched(p *asm.Program, r analysis.Range, img []byte) *asm.Program {
	q := *p
	q.Data = append([]byte(nil), p.Data...)
	copy(q.Data[r.Start-p.DataBase:], img)
	return &q
}

// runView executes the program once and returns the adversary's view of the
// run. Watchdog and model-error stops are check failures, not observations —
// unless observeWatchdog turns the watchdog into the observation horizon.
func runView(p *asm.Program, cfg sim.Config, regions []sim.Region, obfuscated, observeWatchdog bool, metricsSink func(*obs.Snapshot)) (View, error) {
	m, err := sim.NewMachineWithRegions(cfg, p, regions)
	if err != nil {
		return View{}, err
	}
	col := &busCollector{}
	var hub *obs.Hub
	if metricsSink != nil {
		hub = obs.NewHub(nil, true)
		m.SetObserver(hub)
		m.EnablePerf()
		// The bus observer slot is single; tee it so the hub still sees bus
		// events while the adversary view records exactly what it always did.
		m.Bus.SetObserver(teeSink{a: col, b: hub})
	} else {
		m.Bus.SetObserver(col)
	}
	simRes, runErr := m.Run()
	if hub != nil {
		snap := hub.Snapshot()
		m.Perf().AddTo(snap)
		metricsSink(snap)
	}
	if runErr != nil && !(observeWatchdog && simRes.Reason == sim.StopWatchdog) {
		return View{}, runErr
	}
	v := View{Cycles: simRes.Cycles, Reason: simRes.Reason.String()}
	stop := sim.StopCycle(simRes)
	for _, e := range col.events {
		if e.Cycle > stop {
			continue // scheduled past the stop: never actually happened
		}
		ev := ViewEvent{Cycle: e.Cycle, Addr: e.Addr, Kind: bus.Kind(e.A), Done: e.B}
		if obfuscated {
			ev.Addr = 0 // re-mapped addresses carry no information
		}
		v.Events = append(v.Events, ev)
	}
	return v, nil
}

// DiffViews compares two adversary views and returns the channels on which
// they differ (canonical order) plus a description of the first difference
// found. Address differences at the same trace position are the addr
// channel; every structural difference — transaction count, per-transaction
// cycles or kind, total run length, stop reason — is the timing channel.
func DiffViews(a, b View) ([]Channel, string) {
	var addrDiff, timingDiff string
	if a.Cycles != b.Cycles {
		timingDiff = fmt.Sprintf("total cycles %d vs %d", a.Cycles, b.Cycles)
	}
	if timingDiff == "" && a.Reason != b.Reason {
		timingDiff = fmt.Sprintf("stop reason %s vs %s", a.Reason, b.Reason)
	}
	if timingDiff == "" && len(a.Events) != len(b.Events) {
		timingDiff = fmt.Sprintf("%d bus transactions vs %d", len(a.Events), len(b.Events))
	}
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		ea, eb := a.Events[i], b.Events[i]
		if addrDiff == "" && ea.Addr != eb.Addr {
			addrDiff = fmt.Sprintf("bus txn %d address %#x vs %#x", i, ea.Addr, eb.Addr)
		}
		if timingDiff == "" && (ea.Cycle != eb.Cycle || ea.Done != eb.Done || ea.Kind != eb.Kind) {
			timingDiff = fmt.Sprintf("bus txn %d shape (cycle %d kind %v) vs (cycle %d kind %v)",
				i, ea.Cycle, ea.Kind, eb.Cycle, eb.Kind)
		}
		if addrDiff != "" && timingDiff != "" {
			break
		}
	}
	var chans []Channel
	desc := ""
	if addrDiff != "" {
		chans = append(chans, ChannelAddr)
		desc = addrDiff
	}
	if timingDiff != "" {
		chans = append(chans, ChannelTiming)
		if desc == "" {
			desc = timingDiff
		}
	}
	return chans, desc
}
