package contract

import (
	"fmt"
	"testing"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/diffcheck"
	"authpoint/internal/policy"
	"authpoint/internal/workload"
)

// TestSubsumesImpliesContainment pins the lattice theorem: for every pair of
// control points with p.Subsumes(q), the contract under p is contained in
// the contract under q — strengthening the policy never licenses new
// observables. Checked across the full 95-point lattice on generated
// programs and on every attack kernel.
func TestSubsumesImpliesContainment(t *testing.T) {
	full := policy.FullLattice()

	type prog struct {
		name string
		p    *asm.Program
		base analysis.Options
	}
	var progs []prog
	for seed := int64(1); seed <= 5; seed++ {
		p, err := asm.Assemble(diffcheck.GenSecretProgram(seed))
		if err != nil {
			t.Fatalf("seed %d does not assemble: %v", seed, err)
		}
		progs = append(progs, prog{name: fmt.Sprintf("seed-%d", seed), p: p})
	}
	cases, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, kc := range cases {
		progs = append(progs, prog{name: kc.Name, p: kc.Prog, base: kc.Analysis})
	}

	for _, pr := range progs {
		contracts := make([]*Contract, len(full))
		for i, pt := range full {
			c, err := Derive(pr.p, pt, pr.base)
			if err != nil {
				t.Fatalf("%s under %v: %v", pr.name, pt, err)
			}
			contracts[i] = c
		}
		for i, p := range full {
			for j, q := range full {
				if !p.Subsumes(q) {
					continue
				}
				if !contracts[i].SubsetOf(contracts[j]) {
					t.Errorf("%s: %v subsumes %v but contract [%s addr=%v] is not contained in [%s addr=%v]",
						pr.name, p, q,
						contracts[i].KindsSummary(), contracts[i].AddrVisible,
						contracts[j].KindsSummary(), contracts[j].AddrVisible)
				}
			}
		}
		// The entry set is policy-independent (gates change when leaks are
		// reachable, not which instructions touch secrets); only obfuscation
		// changes the licensed channels.
		for i, pt := range full {
			if got, want := contracts[i].KindsSummary(), contracts[0].KindsSummary(); got != want {
				t.Errorf("%s: entries under %v = [%s], want [%s] (policy-independent)", pr.name, pt, got, want)
			}
			if contracts[i].AddrVisible != !pt.Obfuscate {
				t.Errorf("%s: AddrVisible under %v = %v", pr.name, pt, contracts[i].AddrVisible)
			}
		}
	}
}

// TestObfuscationShrinksContract pins the tentpole claim that obfuscating
// policies shrink the contract: for every kernel with a bus-visible address
// leak, the obfuscated contract licenses strictly fewer channels.
func TestObfuscationShrinksContract(t *testing.T) {
	cases, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, kc := range cases {
		plain, err := Derive(kc.Prog, policy.ThenCommit, kc.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		obf, err := Derive(kc.Prog, policy.CommitPlusObfuscation, kc.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		if obf.AddrVisible {
			t.Errorf("%s: obfuscated contract still has AddrVisible", kc.Name)
		}
		if obf.Licenses(ChannelAddr) {
			t.Errorf("%s: obfuscated contract licenses the address channel", kc.Name)
		}
		if plain.Empty() {
			continue
		}
		if !plain.Licenses(ChannelAddr) || !plain.Licenses(ChannelTiming) {
			t.Errorf("%s: non-obfuscated contract licenses %v, want both channels", kc.Name, plain.Channels())
		}
		if !obf.Licenses(ChannelTiming) {
			t.Errorf("%s: obfuscation dropped the timing channel; gates do not make latencies data-independent", kc.Name)
		}
	}
}

// TestGoldenKernelContracts pins the exact contract of every attack kernel.
// A change here means the static analysis sees the exploits differently —
// intentional or a regression, either way it must be reviewed.
func TestGoldenKernelContracts(t *testing.T) {
	want := map[string]string{
		"pointer-conversion":   "addr-leak=1 ctrl-leak=1",
		"binary-search":        "ctrl-leak=1",
		"disclosing-kernel":    "addr-leak=1",
		"io-port-disclosure":   "empty",
		"brute-force-page":     "addr-leak=1",
		"memory-taint":         "empty",
		"passive-control-flow": "ctrl-leak=8",
		// The PAC kernels: taint flows through auth regardless of mode, so
		// the forged-pointer dereference is an address leak under every
		// policy — only the dynamic observability varies (BusLeakUnder).
		"pac-pointer-substitution": "addr-leak=1",
		"pac-auth-use-race":        "addr-leak=1",
		"pac-signing-gadget":       "addr-leak=1",
	}
	cases, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != len(want) {
		t.Fatalf("catalog has %d kernels, goldens cover %d", len(cases), len(want))
	}
	for _, kc := range cases {
		c, err := Derive(kc.Prog, policy.Baseline, kc.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.KindsSummary(); got != want[kc.Name] {
			t.Errorf("%s: contract [%s], want [%s]", kc.Name, got, want[kc.Name])
		}
		if kc.BusLeak == c.Empty() {
			t.Errorf("%s: BusLeak=%v but contract empty=%v — catalog ground truth and analysis disagree",
				kc.Name, kc.BusLeak, c.Empty())
		}
	}
}

// TestGoldenWorkloadContracts pins the benchmark catalog as contract-clean:
// no workload declares secrets, so every contract is empty under every
// policy — the baseline against which the attack kernels' non-empty
// contracts are meaningful.
func TestGoldenWorkloadContracts(t *testing.T) {
	for _, w := range workload.All() {
		p, err := asm.Assemble(w.Source)
		if err != nil {
			t.Fatalf("%s does not assemble: %v", w.Name, err)
		}
		for _, pt := range []policy.ControlPoint{policy.Baseline, policy.CommitPlusObfuscation} {
			c, err := Derive(p, pt, analysis.Options{})
			if err != nil {
				t.Fatalf("%s under %v: %v", w.Name, pt, err)
			}
			if !c.Empty() {
				t.Errorf("%s under %v: contract [%s], want empty", w.Name, pt, c.KindsSummary())
			}
		}
	}
}
