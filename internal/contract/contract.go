// Package contract promotes the static analysis' findings into machine-checked
// leakage contracts, following the leakage-contracts methodology: the static
// half derives, per (program, policy), the set of observable differences the
// analysis *licenses* an adversary on the bus to see; the dynamic half runs the
// same program twice on secret-differing data images and requires that the
// adversary-observable traces differ only where the contract licenses it.
//
// The adversary model is the paper's: probes on the memory bus see every
// transaction's address, kind, and cycle timing, but never plaintext data.
// Address obfuscation (policy.ControlPoint.Obfuscate) removes the address from
// that view — the adversary still sees that transactions happen and when, so
// the timing channel survives obfuscation while the address channel does not.
//
// Soundness of the two-run check rests on the machine being deterministic
// (same program + same data image => bit-identical run — pinned by the repro
// corpus), on all execution latencies being data-independent configuration
// constants, and on the data images differing only inside the program's
// declared secret ranges. Under those premises any observable difference
// between the two runs is caused by the secret, so a difference outside the
// contract is either an unsoundness in the static analysis or a real leak the
// design was claimed to close — verdict "unsound" either way.
package contract

import (
	"sort"
	"strconv"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/policy"
)

// Channel names one adversary-observable difference class.
type Channel string

// Channels of the bus adversary.
const (
	// ChannelAddr: the address field of a bus transaction differs — the
	// memory-fetch side channel of the paper. Closed by address obfuscation.
	ChannelAddr Channel = "bus-addr"
	// ChannelTiming: the shape of the trace differs — transaction count,
	// per-transaction cycles, or total run length. Not closed by any control
	// point in the lattice: gates move *when* verification stalls, they do
	// not make latencies data-independent.
	ChannelTiming Channel = "timing"
)

// Entry is one licensed leak source: a secret-tainted instruction whose
// observable (effective address or control flow) the static analysis reports.
type Entry struct {
	PC   uint64        `json:"pc"`
	Kind analysis.Kind `json:"kind"`
	Sym  string        `json:"sym,omitempty"`
	Line int           `json:"line,omitempty"`
}

// Contract is the per-(program, policy) leakage contract: what the static
// analysis licenses the bus adversary to observe when the secret varies.
//
// Entries hold the secret-tainted addr-leak and ctrl-leak findings — the two
// kinds whose observables reach the bus as fetch addresses. io-leak findings
// are excluded (OUT ports are not bus-visible in the adversary model) and
// state-taint findings are excluded (memory *contents* cross the bus only as
// ciphertext). Each entry licenses the timing channel unconditionally, and
// the address channel iff the policy leaves addresses visible (no
// obfuscation): obfuscation re-maps the lines an access touches but cannot
// hide that the access happened, nor when.
type Contract struct {
	// Policy is the canonical control-point name the contract was derived for.
	Policy string `json:"policy"`
	// AddrVisible is false under obfuscating policies: bus addresses carry no
	// information, so no entry licenses ChannelAddr.
	AddrVisible bool `json:"addr_visible"`
	// Entries are the licensed leak sources, in program order.
	Entries []Entry `json:"entries"`
	// SecretRanges are the resolved secret intervals the derivation used —
	// the two-run checker varies exactly these bytes.
	SecretRanges []analysis.Range `json:"secret_ranges,omitempty"`
}

// Derive computes the leakage contract of prog under the control point, on
// top of a base analysis configuration (extra secret symbols or ranges).
//
// Derivation runs the taint analysis under OptionsForPolicy — the policy's
// static contract knobs — but keeps addr/ctrl findings under obfuscating
// policies (unlike AnalyzeForPolicy, which drops them from lint reports):
// those findings still license the timing channel, and dropping them would
// turn every secret-dependent cycle-count difference under obfuscation into a
// false "unsound" verdict.
func Derive(prog *asm.Program, pt policy.ControlPoint, base analysis.Options) (*Contract, error) {
	pt = pt.Normalize()
	rep, err := analysis.Analyze(prog, analysis.OptionsForPolicy(pt, base))
	if err != nil {
		return nil, err
	}
	c := &Contract{
		Policy:       pt.String(),
		AddrVisible:  !pt.Obfuscate,
		SecretRanges: rep.SecretRanges,
	}
	for _, f := range rep.Findings {
		if !f.Taint.Secret() {
			continue
		}
		if f.Kind != analysis.KindAddr && f.Kind != analysis.KindCtrl {
			continue
		}
		c.Entries = append(c.Entries, Entry{PC: f.PC, Kind: f.Kind, Sym: f.Sym, Line: f.Line})
	}
	return c, nil
}

// Licenses reports whether the contract licenses any difference on ch. An
// empty contract licenses nothing: the program's observables are claimed
// secret-independent.
func (c *Contract) Licenses(ch Channel) bool {
	if len(c.Entries) == 0 {
		return false
	}
	switch ch {
	case ChannelAddr:
		return c.AddrVisible
	case ChannelTiming:
		return true
	}
	return false
}

// Channels returns the licensed channels in canonical order.
func (c *Contract) Channels() []Channel {
	var out []Channel
	for _, ch := range []Channel{ChannelAddr, ChannelTiming} {
		if c.Licenses(ch) {
			out = append(out, ch)
		}
	}
	return out
}

// Empty reports a contract that licenses no observable difference.
func (c *Contract) Empty() bool { return len(c.Entries) == 0 }

// SubsetOf reports contract containment: every (entry, channel) pair c
// licenses is also licensed by o. The lattice theorem the property tests pin
// is that p.Subsumes(q) implies contract(p) ⊆ contract(q) for the same
// program — adding gates never licenses *new* observables, and adding
// obfuscation strictly removes the address channel.
func (c *Contract) SubsetOf(o *Contract) bool {
	if len(c.Entries) > 0 && c.AddrVisible && !o.AddrVisible {
		return false
	}
	type key struct {
		pc   uint64
		kind analysis.Kind
	}
	have := make(map[key]bool, len(o.Entries))
	for _, e := range o.Entries {
		have[key{e.PC, e.Kind}] = true
	}
	for _, e := range c.Entries {
		if !have[key{e.PC, e.Kind}] {
			return false
		}
	}
	return true
}

// Counts returns the number of entries per finding kind, for golden tests
// and reports.
func (c *Contract) Counts() map[analysis.Kind]int {
	m := map[analysis.Kind]int{}
	for _, e := range c.Entries {
		m[e.Kind]++
	}
	return m
}

// KindsSummary renders the counts compactly ("addr-leak=3 ctrl-leak=1").
func (c *Contract) KindsSummary() string {
	counts := c.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	out := ""
	for _, k := range kinds {
		if out != "" {
			out += " "
		}
		out += k + "=" + strconv.Itoa(counts[analysis.Kind(k)])
	}
	if out == "" {
		return "empty"
	}
	return out
}
