package contract

import (
	"context"
	"path/filepath"
	"testing"

	"authpoint/internal/diffcheck"
	"authpoint/internal/policy"
)

// kernelPolicies picks the policy set a kernel is swept over: the full
// 95-point lattice for fast kernels, a representative slice for the ones
// that run hundreds of thousands of cycles per check.
func kernelPolicies(kc KernelCase) []policy.ControlPoint {
	if kc.ObserveWatchdog || kc.Name == "memory-taint" {
		return []policy.ControlPoint{
			policy.Baseline, policy.AuthOnly, policy.ThenCommit,
			policy.CommitPlusFetch, policy.CommitPlusObfuscation,
		}
	}
	return policy.FullLattice()
}

// TestKernelLeaksLicensed is the tentpole pin: every attack kernel with a
// bus-observed leak gets verdict "licensed" under every non-obfuscating
// policy — the leak is real, and the static contract saw it coming. Under
// obfuscating policies the verdict must never be unsound (timing stays
// licensed), and the address channel must be gone from both the contract and
// the observation. Kernels whose leak channel the bus adversary cannot see
// (I/O ports, state contamination) must come back clean everywhere. Kernels
// whose bus leak is policy-dependent (the PAC kernels) must be exactly
// imprecise where the policy closes the channel: the static contract still
// licenses the address channel (taint flows through auth in every mode), but
// the machine shows no difference.
func TestKernelLeaksLicensed(t *testing.T) {
	cases, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, kc := range cases {
		for _, pt := range kernelPolicies(kc) {
			res, err := CheckKernel(kc, Options{Policy: pt})
			if err != nil {
				t.Errorf("%s under %v: %v", kc.Name, pt, err)
				continue
			}
			if res.Verdict == VerdictUnsound || res.Verdict == VerdictError {
				t.Errorf("%s under %v: verdict %s (%s)", kc.Name, pt, res.Verdict, res.Diff)
				continue
			}
			switch {
			case !kc.BusLeak && kc.BusLeakUnder == nil:
				if res.Verdict != VerdictClean {
					t.Errorf("%s under %v: verdict %s, want clean (leak channel %q is not bus-visible)",
						kc.Name, pt, res.Verdict, kc.Channel)
				}
			case !kc.LeaksUnder(pt):
				if res.Verdict != VerdictImprecise {
					t.Errorf("%s under %v: verdict %s, want imprecise (policy closes the bus channel, contract still licenses it)",
						kc.Name, pt, res.Verdict)
				}
			case !pt.Obfuscate:
				if res.Verdict != VerdictLicensed {
					t.Errorf("%s under %v: verdict %s, want licensed (%s)", kc.Name, pt, res.Verdict, res.Diff)
				}
			default:
				// Obfuscation may close the leak entirely (imprecise) or
				// leave a licensed timing residue; it must not add an
				// address observation.
				for _, ch := range res.Channels {
					if ch == ChannelAddr {
						t.Errorf("%s under %v: address difference observed under obfuscation: %s",
							kc.Name, pt, res.Diff)
					}
				}
				if res.Contract.Licenses(ChannelAddr) {
					t.Errorf("%s under %v: obfuscated contract licenses the address channel", kc.Name, pt)
				}
			}
		}
	}
}

// TestSweepNoUnsound is the non-interference sweep in miniature: generated
// programs across the full lattice must never produce an unsound verdict —
// the conservative static analysis licenses every observable difference the
// machine actually exhibits. CI runs the full-size version via authverify.
func TestSweepNoUnsound(t *testing.T) {
	seeds := make([]int64, 62)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	cells := PairCells(seeds, policy.FullLattice())
	results, findings, err := Sweep(context.Background(), cells, Options{}, 0)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, f := range findings {
		t.Errorf("seed %d under %v: %s: %s", f.Result.Seed, f.Result.Policy, f.Result.Verdict, f.Result.Diff)
	}
	counts := map[Verdict]int{}
	for _, r := range results {
		counts[r.Verdict]++
	}
	if counts[VerdictLicensed] == 0 {
		t.Error("no seed produced a licensed verdict; the sweep exercises no real leaks")
	}
	if counts[VerdictClean]+counts[VerdictImprecise] == 0 {
		t.Error("no seed produced a clean/imprecise verdict; the sweep exercises no tight contracts")
	}
}

// TestCrossSweepDeterministic pins that the same cell checked twice yields
// identical results — the soundness argument rests on run determinism.
func TestCrossSweepDeterministic(t *testing.T) {
	cells := CrossCells([]int64{3, 7}, []policy.ControlPoint{policy.Baseline, policy.CommitPlusObfuscation})
	r1, _, err1 := Sweep(context.Background(), cells, Options{}, 2)
	r2, _, err2 := Sweep(context.Background(), cells, Options{}, 1)
	if err1 != nil || err2 != nil {
		t.Fatalf("sweep: %v / %v", err1, err2)
	}
	for i := range r1 {
		a, b := r1[i], r2[i]
		if a.Verdict != b.Verdict || a.CyclesA != b.CyclesA || a.CyclesB != b.CyclesB || a.Diff != b.Diff {
			t.Errorf("cell %d not deterministic: %+v vs %+v", i, a, b)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	res := CheckProgram("_start:\n\thalt\n", Options{Policy: policy.ThenCommit})
	if res.Verdict != VerdictError {
		t.Errorf("program without secrets: verdict %s, want error", res.Verdict)
	}

	src := diffcheck.GenSecretProgram(1)
	res = CheckProgram(src, Options{Policy: policy.ThenCommit, SecretA: []byte{1, 2}, SecretB: []byte{1, 2}})
	if res.Verdict != VerdictError {
		t.Errorf("identical images: verdict %s, want error", res.Verdict)
	}

	res = CheckProgram("not a program @@", Options{Policy: policy.ThenCommit})
	if res.Verdict != VerdictError {
		t.Errorf("unassemblable source: verdict %s, want error", res.Verdict)
	}
}

func TestLeakRoundTrip(t *testing.T) {
	// Seed 9 is a licensed leak under baseline (secret-dependent scratch
	// address) — a stable recording target.
	res, src := CheckSeed(9, Options{Policy: policy.Baseline})
	if res.Verdict != VerdictLicensed {
		t.Fatalf("seed 9 under baseline: verdict %s, want licensed", res.Verdict)
	}
	l := NewLeak(res, src, "round-trip test")
	dec, err := DecodeLeak(l.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, err := dec.Replay(); err != nil {
		t.Fatalf("replay: %v", err)
	}

	path := filepath.Join(t.TempDir(), "seed9.leak")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLeak(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Replay(); err != nil {
		t.Fatalf("replay from disk: %v", err)
	}

	// A stale recording must be rejected, and the mismatch named.
	loaded.Verdict = string(VerdictUnsound)
	if _, err := loaded.Replay(); err == nil {
		t.Fatal("tampered recording replayed clean")
	}

	if _, err := DecodeLeak([]byte(`{"schema":"bogus/v9","source":"x"}`)); err == nil {
		t.Fatal("wrong schema decoded")
	}
}

// TestDiffViews exercises the channel classifier directly.
func TestDiffViews(t *testing.T) {
	base := View{Cycles: 100, Reason: "halt", Events: []ViewEvent{{Cycle: 1, Addr: 0x40, Done: 5}}}
	if chans, _ := DiffViews(base, base); len(chans) != 0 {
		t.Fatalf("identical views diff on %v", chans)
	}

	addr := base
	addr.Events = []ViewEvent{{Cycle: 1, Addr: 0x80, Done: 5}}
	chans, _ := DiffViews(base, addr)
	if len(chans) != 1 || chans[0] != ChannelAddr {
		t.Fatalf("address-only diff classified as %v", chans)
	}

	timing := base
	timing.Cycles = 101
	chans, _ = DiffViews(base, timing)
	if len(chans) != 1 || chans[0] != ChannelTiming {
		t.Fatalf("cycle-count diff classified as %v", chans)
	}

	both := View{Cycles: 90, Reason: "halt", Events: []ViewEvent{{Cycle: 2, Addr: 0x80, Done: 6}}}
	chans, _ = DiffViews(base, both)
	if len(chans) != 2 || chans[0] != ChannelAddr || chans[1] != ChannelTiming {
		t.Fatalf("combined diff classified as %v", chans)
	}
}
