package contract

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"authpoint/internal/analysis"
	"authpoint/internal/attack"
	"authpoint/internal/diffcheck"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// LeakSchema identifies the recorded two-run finding format.
const LeakSchema = "authverify/leak/v1"

// Leak is one recorded two-run contract check: everything needed to replay it
// byte-identically — the exact source, policy, and both secret images — plus
// the expected outcome. Unsound findings are recorded as Leaks by authverify;
// corpus entries pin expected verdicts (including "licensed") against model
// drift.
type Leak struct {
	Schema string `json:"schema"`
	// Note says what this leak records (origin, minimization status).
	Note string `json:"note,omitempty"`
	// Seed is the generator seed the source came from (0 = hand-written).
	Seed   int64  `json:"seed"`
	Policy string `json:"policy"`

	// Expected outcome: replay must reproduce every field exactly.
	Verdict  string   `json:"verdict"`
	Channels []string `json:"channels,omitempty"`
	Diff     string   `json:"diff,omitempty"`
	// ContractEntries and AddrVisible summarize the static contract the
	// dynamic observation was judged against.
	ContractEntries int    `json:"contract_entries"`
	AddrVisible     bool   `json:"addr_visible"`
	CyclesA         uint64 `json:"cycles_a"`
	CyclesB         uint64 `json:"cycles_b"`

	// SecretA and SecretB are the hex-encoded data images the two runs used.
	SecretA string `json:"secret_a"`
	SecretB string `json:"secret_b"`

	// Probe marks recordings that need the adversary's probe window mapped
	// (the attack-kernel corpus entries); SecretSymbols carries the explicit
	// secret symbols their analysis uses. Both are empty for generated
	// programs, so pre-existing recordings encode unchanged.
	Probe         bool     `json:"probe,omitempty"`
	SecretSymbols []string `json:"secret_symbols,omitempty"`

	Source string `json:"source"`
}

// NewLeak records a result (produced with default Options beyond policy and
// images) and its source.
func NewLeak(res Result, src, note string) *Leak {
	chans := make([]string, 0, len(res.Channels))
	for _, ch := range res.Channels {
		chans = append(chans, string(ch))
	}
	if len(chans) == 0 {
		chans = nil
	}
	entries, addrVis := 0, false
	if res.Contract != nil {
		entries = len(res.Contract.Entries)
		addrVis = res.Contract.AddrVisible
	}
	return &Leak{
		Schema:          LeakSchema,
		Note:            note,
		Seed:            res.Seed,
		Policy:          res.Policy.String(),
		Verdict:         string(res.Verdict),
		Channels:        chans,
		Diff:            res.Diff,
		ContractEntries: entries,
		AddrVisible:     addrVis,
		CyclesA:         res.CyclesA,
		CyclesB:         res.CyclesB,
		SecretA:         hex.EncodeToString(res.SecretA),
		SecretB:         hex.EncodeToString(res.SecretB),
		Source:          src,
	}
}

// Encode renders the leak as canonical JSON (fixed field order, two-space
// indent, trailing newline). Replay compares encodings byte-for-byte.
func (l *Leak) Encode() []byte {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		// Only unmarshalable types reach this; the struct has none.
		panic(err)
	}
	return append(b, '\n')
}

// DecodeLeak parses and schema-checks a leak file.
func DecodeLeak(data []byte) (*Leak, error) {
	var l Leak
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("contract: leak does not decode: %w", err)
	}
	if l.Schema != LeakSchema {
		return nil, fmt.Errorf("contract: leak schema %q, want %q", l.Schema, LeakSchema)
	}
	if l.Source == "" {
		return nil, fmt.Errorf("contract: leak has no source")
	}
	return &l, nil
}

// LoadLeak reads a leak file from disk.
func LoadLeak(path string) (*Leak, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeLeak(data)
}

// WriteFile writes the canonical encoding to path.
func (l *Leak) WriteFile(path string) error {
	return os.WriteFile(path, l.Encode(), 0o644)
}

// Replay re-runs the recorded two-run check with the recorded images and
// verifies the outcome is byte-identical: re-recording the fresh result must
// reproduce the original file exactly. It returns the fresh result and an
// error describing the mismatch, if any.
func (l *Leak) Replay() (Result, error) {
	pol, err := policy.Parse(l.Policy)
	if err != nil {
		return Result{}, fmt.Errorf("contract: leak policy: %w", err)
	}
	a, err1 := hex.DecodeString(l.SecretA)
	b, err2 := hex.DecodeString(l.SecretB)
	if err1 != nil || err2 != nil {
		return Result{}, fmt.Errorf("contract: leak secret images do not decode")
	}
	opt := Options{
		Policy: pol, Seed: l.Seed, SecretA: a, SecretB: b,
		Analysis: analysis.Options{SecretSymbols: l.SecretSymbols},
	}
	if l.Probe {
		opt.Regions = []sim.Region{{Start: attack.ProbeBase, Size: attack.ProbeSize}}
	}
	res := CheckProgram(l.Source, opt)
	fresh := NewLeak(res, l.Source, l.Note)
	fresh.Probe = l.Probe
	fresh.SecretSymbols = l.SecretSymbols
	if !bytes.Equal(fresh.Encode(), l.Encode()) {
		return res, fmt.Errorf("contract: replay diverged from recording: %s", leakDiff(l, fresh))
	}
	return res, nil
}

// leakDiff names the first differing field between two leaks.
func leakDiff(want, got *Leak) string {
	type f struct{ name, want, got string }
	fields := []f{
		{"verdict", want.Verdict, got.Verdict},
		{"diff", want.Diff, got.Diff},
		{"channels", fmt.Sprint(want.Channels), fmt.Sprint(got.Channels)},
		{"contract_entries", fmt.Sprint(want.ContractEntries), fmt.Sprint(got.ContractEntries)},
		{"addr_visible", fmt.Sprint(want.AddrVisible), fmt.Sprint(got.AddrVisible)},
		{"cycles_a", fmt.Sprint(want.CyclesA), fmt.Sprint(got.CyclesA)},
		{"cycles_b", fmt.Sprint(want.CyclesB), fmt.Sprint(got.CyclesB)},
		{"policy", want.Policy, got.Policy},
	}
	for _, x := range fields {
		if x.want != x.got {
			return fmt.Sprintf("%s = %q, recorded %q", x.name, x.got, x.want)
		}
	}
	return "encodings differ (source or metadata)"
}

// MinimizeUnsound shrinks the source of an unsound finding to a minimal
// program that still yields an unsound verdict under the same policy and
// secret images. The watchdog is lowered so shrink candidates that spin
// forever fail fast instead of stalling the minimizer.
func MinimizeUnsound(src string, res Result) string {
	opt := Options{
		Policy:         res.Policy,
		Seed:           res.Seed,
		SecretA:        res.SecretA,
		SecretB:        res.SecretB,
		WatchdogCycles: 500_000,
	}
	return diffcheck.Minimize(src, func(s string) bool {
		return CheckProgram(s, opt).Verdict == VerdictUnsound
	})
}
