// Package hmac implements HMAC-SHA256 (RFC 2104 / FIPS 198) over the
// from-scratch SHA-256 in this repository, plus the truncated-MAC helper the
// secure processor uses: the paper's reference design stores a 64-bit
// truncated HMAC alongside every protected cache line (Section 5.2.3).
package hmac

import (
	"crypto/subtle"

	"authpoint/internal/cryptoengine/sha256"
)

// Size is the full MAC size in bytes before truncation.
const Size = sha256.Size

// Mac computes HMAC-SHA256(key, msg). It does not allocate: the simulated
// authentication engine MACs every external line fetch, so this sits on the
// simulator's hot path.
func Mac(key, msg []byte) [Size]byte {
	var k [sha256.BlockSize]byte
	if len(key) > sha256.BlockSize {
		sum := sha256.Sum256(key)
		copy(k[:], sum[:])
	} else {
		copy(k[:], key)
	}
	var ipad, opad [sha256.BlockSize]byte
	for i := range k {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5c
	}
	var d sha256.Digest
	d.Reset()
	d.Write(ipad[:])
	d.Write(msg)
	var innerSum [sha256.Size]byte
	d.SumInto(&innerSum)
	d.Reset()
	d.Write(opad[:])
	d.Write(innerSum[:])
	var out [Size]byte
	d.SumInto(&out)
	return out
}

// Truncated computes the first n bytes of HMAC-SHA256(key, msg). The secure
// processor default is n=8 (a 64-bit MAC).
func Truncated(key, msg []byte, n int) []byte {
	if n <= 0 || n > Size {
		panic("hmac: invalid truncation length")
	}
	m := Mac(key, msg)
	out := make([]byte, n)
	copy(out, m[:n])
	return out
}

// Verify reports whether mac equals the truncated HMAC of msg under key,
// in constant time. Like Mac, it does not allocate.
func Verify(key, msg, mac []byte) bool {
	if len(mac) == 0 || len(mac) > Size {
		return false
	}
	want := Mac(key, msg)
	return subtle.ConstantTimeCompare(want[:len(mac)], mac) == 1
}

// PaddedBlocks reports how many hash-unit invocations authenticating an
// n-byte message costs. HMAC needs two passes (inner and outer), but in the
// hardware reference the outer pass over the fixed-size inner digest is
// pipelined; the dominant term — and the one the paper's 74ns figure charges
// — is the inner hash over the padded message. The timing model therefore
// charges PaddedBlocks(n) hash latencies per MAC.
func PaddedBlocks(n int) int { return sha256.PaddedBlocks(n) }
