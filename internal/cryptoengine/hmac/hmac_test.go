package hmac

import (
	"bytes"
	stdhmac "crypto/hmac"
	stdsha "crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// RFC 4231 test vectors for HMAC-SHA256.
func TestRFC4231(t *testing.T) {
	cases := []struct{ key, data, want string }{
		{
			"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
			"4869205468657265", // "Hi There"
			"b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
		},
		{
			"4a656665", // "Jefe"
			"7768617420646f2079612077616e7420666f72206e6f7468696e673f",
			"5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
		},
		{
			"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
			"dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd" + "dddd",
			"773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
		},
	}
	for i, c := range cases {
		key, _ := hex.DecodeString(c.key)
		data, _ := hex.DecodeString(c.data)
		got := Mac(key, data)
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("case %d: %x want %s", i, got, c.want)
		}
	}
}

func TestLongKeyIsHashed(t *testing.T) {
	key := bytes.Repeat([]byte{0xaa}, 131) // RFC 4231 case 6-style key > blocksize
	data := []byte("Test Using Larger Than Block-Size Key - Hash Key First")
	got := Mac(key, data)
	std := stdhmac.New(stdsha.New, key)
	std.Write(data)
	if !bytes.Equal(got[:], std.Sum(nil)) {
		t.Errorf("long-key mismatch with stdlib")
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		key := make([]byte, rng.Intn(100))
		msg := make([]byte, rng.Intn(200))
		rng.Read(key)
		rng.Read(msg)
		got := Mac(key, msg)
		std := stdhmac.New(stdsha.New, key)
		std.Write(msg)
		if !bytes.Equal(got[:], std.Sum(nil)) {
			t.Fatalf("mismatch keylen=%d msglen=%d", len(key), len(msg))
		}
	}
}

func TestTruncatedVerify(t *testing.T) {
	key := []byte("processor-integrity-key")
	msg := []byte("a 64-byte cache line of protected data.........................")
	mac := Truncated(key, msg, 8)
	if len(mac) != 8 {
		t.Fatalf("mac length %d", len(mac))
	}
	if !Verify(key, msg, mac) {
		t.Fatal("valid MAC rejected")
	}
	// Any single-bit tamper in the message must be detected.
	for bit := 0; bit < len(msg)*8; bit += 37 {
		tampered := append([]byte(nil), msg...)
		tampered[bit/8] ^= 1 << (bit % 8)
		if Verify(key, tampered, mac) {
			t.Fatalf("tampered bit %d accepted", bit)
		}
	}
	// Tampered MAC must be rejected.
	badMac := append([]byte(nil), mac...)
	badMac[0] ^= 1
	if Verify(key, msg, badMac) {
		t.Fatal("tampered MAC accepted")
	}
}

func TestVerifyEdgeCases(t *testing.T) {
	if Verify([]byte("k"), []byte("m"), nil) {
		t.Error("empty MAC accepted")
	}
	if Verify([]byte("k"), []byte("m"), make([]byte, 33)) {
		t.Error("oversize MAC accepted")
	}
}

func TestTruncatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Truncated([]byte("k"), []byte("m"), 0)
}

// Property: verification succeeds iff the message is untampered.
func TestQuickTamperDetection(t *testing.T) {
	key := []byte("quick-key")
	f := func(msg []byte, flipByte uint16, flipBit uint8) bool {
		if len(msg) == 0 {
			return true
		}
		mac := Truncated(key, msg, 8)
		if !Verify(key, msg, mac) {
			return false
		}
		tampered := append([]byte(nil), msg...)
		tampered[int(flipByte)%len(msg)] ^= 1 << (flipBit % 8)
		return !Verify(key, tampered, mac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPaddedBlocksMatchesLineCost(t *testing.T) {
	// A 64-byte cache line costs 2 hash blocks (64+9 > 64); with the
	// paper's 74ns hash-unit this is the per-line verification work.
	if PaddedBlocks(64) != 2 {
		t.Errorf("PaddedBlocks(64) = %d", PaddedBlocks(64))
	}
	if PaddedBlocks(32) != 1 {
		t.Errorf("PaddedBlocks(32) = %d", PaddedBlocks(32))
	}
}
