// Package pacmac is the keyed MAC unit behind the pointer-authentication
// instructions (sign/auth/strip): an HMAC-SHA256 pointer-authentication code
// truncated into the upper 32 bits of the 64-bit pointer word, discriminated
// by a 64-bit modifier and one of two independent keys (FEAT_PAuth's A/B key
// split, scaled to this machine's 32-bit address space).
//
// Signing and stripping are policy-independent: a signed pointer always
// carries its tag, and strip always removes it. Only the *failure* behaviour
// of auth is a policy decision (Mode):
//
//   - ModeOff:       auth behaves as strip — the forged pointer flows on and
//     the dereference proceeds. This is the unprotected baseline the
//     substitution attack exploits.
//   - ModePoison:    the failed pointer is poisoned to a non-canonical,
//     never-mapped address, so the fault surfaces at translation of the next
//     use. The poisoned value carries no address bits an adversary can steer,
//     and the machine's address check precedes any bus traffic — even a
//     speculative dereference of a poisoned pointer stays off the bus.
//   - ModeFaultAuth: FPAC-style — the auth instruction itself raises an
//     architectural fault. Precise at the auth point, but the checked (and
//     stripped) pointer is still forwarded to dependents in an out-of-order
//     core, so a dependent load can touch the bus speculatively before the
//     fault commits: the auth-then-use race.
package pacmac

import (
	"encoding/binary"

	"authpoint/internal/cryptoengine/hmac"
)

// Mode selects the auth-failure behaviour. The zero value is ModeOff so an
// unconfigured machine matches the pre-PAC model exactly.
type Mode uint8

const (
	// ModeOff: auth never fails; it strips like an unchecked cast.
	ModeOff Mode = iota
	// ModePoison: a failed auth yields a poisoned pointer; the fault
	// surfaces at the next translation (fault-at-use).
	ModePoison
	// ModeFaultAuth: a failed auth faults architecturally at the auth
	// instruction (FPAC).
	ModeFaultAuth
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModePoison:
		return "poison"
	case ModeFaultAuth:
		return "fault-auth"
	}
	return "mode?"
}

// Pointer-word layout: the low 32 bits are the address, the high 32 bits the
// tag. A clean (strippable) pointer has a zero tag field.
const (
	// AddrMask selects the address bits of a pointer word.
	AddrMask uint64 = 0xFFFF_FFFF
	// TagShift positions the truncated MAC in the pointer word.
	TagShift = 32
	// poisonBit marks a poisoned pointer. The machine's address space is
	// below 4 GiB, so any nonzero upper word (tag or poison alike) is
	// non-canonical and address translation rejects the value before any bus
	// access; the poison pattern (exactly the top bit set, tag field
	// otherwise zero) distinguishes a deliberately killed pointer from a
	// merely signed one.
	poisonBit uint64 = 1 << 63
)

// Suite holds the two pointer keys. Keys are fixed per machine instance —
// the model has no key-management ISA; what is under study is where the
// check sits, not key distribution.
type Suite struct {
	keyA, keyB []byte
}

// NewSuite builds a suite from explicit key material.
func NewSuite(keyA, keyB []byte) Suite {
	return Suite{keyA: append([]byte(nil), keyA...), keyB: append([]byte(nil), keyB...)}
}

// DefaultSuite returns the well-known per-machine keys, mirroring the fixed
// encryption/integrity keys of the secure memory controller.
func DefaultSuite() Suite {
	return Suite{
		keyA: []byte("authpoint-pointer-keyA-256bit!!!"),
		keyB: []byte("authpoint-pointer-keyB-256bit!!!"),
	}
}

func (s Suite) key(b bool) []byte {
	if b {
		return s.keyB
	}
	return s.keyA
}

// Tag computes the truncated pointer-authentication code for (address,
// modifier) under the chosen key. Only the address bits of ptr participate:
// signing an already-signed pointer re-tags the same address.
func (s Suite) Tag(ptr, mod uint64, keyB bool) uint32 {
	var msg [12]byte
	binary.LittleEndian.PutUint32(msg[0:4], uint32(ptr&AddrMask))
	binary.LittleEndian.PutUint64(msg[4:12], mod)
	sum := hmac.Mac(s.key(keyB), msg[:])
	return binary.LittleEndian.Uint32(sum[:4])
}

// Sign returns ptr with its PAC inserted in the upper 32 bits.
func (s Suite) Sign(ptr, mod uint64, keyB bool) uint64 {
	return ptr&AddrMask | uint64(s.Tag(ptr, mod, keyB))<<TagShift
}

// Auth checks ptr's tag against (address, modifier, key). On success it
// returns the clean address and true. On failure the result depends on mode:
// ModeOff strips (ok=true), ModePoison returns the poisoned word (ok=true —
// no architectural event at the auth itself), ModeFaultAuth returns the
// stripped address with ok=false, directing the caller to fault. The
// stripped value is still returned in that case because an OoO core
// broadcasts it to dependents before the fault commits.
func (s Suite) Auth(ptr, mod uint64, keyB bool, mode Mode) (uint64, bool) {
	addr := ptr & AddrMask
	if mode == ModeOff || uint32(ptr>>TagShift) == s.Tag(ptr, mod, keyB) {
		return addr, true
	}
	if mode == ModePoison {
		return Poison(ptr), true
	}
	return addr, false
}

// Strip removes the tag without any check.
func Strip(ptr uint64) uint64 { return ptr & AddrMask }

// Poison returns the poisoned form of ptr: address bits preserved for
// debugging, top bit set so no translation can ever map it.
func Poison(ptr uint64) uint64 { return poisonBit | ptr&AddrMask }

// Poisoned reports whether ptr carries the exact poison pattern. A signed
// pointer whose tag happens to equal the pattern is indistinguishable (a
// 2^-32 coincidence); the model accepts that, as real PAC implementations do.
func Poisoned(ptr uint64) bool { return ptr&^AddrMask == poisonBit }
