package pacmac

import "testing"

func TestSignAuthRoundTrip(t *testing.T) {
	s := DefaultSuite()
	for _, mode := range []Mode{ModeOff, ModePoison, ModeFaultAuth} {
		for _, keyB := range []bool{false, true} {
			ptr, mod := uint64(0x1_0040), uint64(0xDEAD_BEEF)
			signed := s.Sign(ptr, mod, keyB)
			if signed&AddrMask != ptr {
				t.Fatalf("sign clobbered address bits: %#x", signed)
			}
			if signed>>TagShift == 0 {
				t.Fatalf("sign produced a zero tag for %#x (vanishingly unlikely; layout bug)", ptr)
			}
			got, ok := s.Auth(signed, mod, keyB, mode)
			if !ok || got != ptr {
				t.Errorf("mode %v keyB=%v: auth(sign(p)) = %#x ok=%v, want %#x", mode, keyB, got, ok, ptr)
			}
		}
	}
}

func TestAuthFailureByMode(t *testing.T) {
	s := DefaultSuite()
	forged := s.Sign(0x1_0040, 7, false) ^ 0x1000 // flip an address bit under the tag

	got, ok := s.Auth(forged, 7, false, ModeOff)
	if !ok || got != forged&AddrMask {
		t.Errorf("off: auth = %#x ok=%v, want strip-through", got, ok)
	}

	got, ok = s.Auth(forged, 7, false, ModePoison)
	if !ok || !Poisoned(got) {
		t.Errorf("poison: auth = %#x ok=%v, want poisoned", got, ok)
	}
	if got&AddrMask != forged&AddrMask {
		t.Errorf("poison should preserve address bits: %#x", got)
	}

	got, ok = s.Auth(forged, 7, false, ModeFaultAuth)
	if ok || got != forged&AddrMask {
		t.Errorf("fault-auth: auth = %#x ok=%v, want stripped + !ok", got, ok)
	}
}

func TestDiscrimination(t *testing.T) {
	s := DefaultSuite()
	signed := s.Sign(0x1_0040, 7, false)
	if _, ok := s.Auth(signed, 8, false, ModeFaultAuth); ok {
		t.Error("wrong modifier authenticated")
	}
	if _, ok := s.Auth(signed, 7, true, ModeFaultAuth); ok {
		t.Error("wrong key authenticated")
	}
	other := NewSuite([]byte("k1"), []byte("k2"))
	if _, ok := other.Auth(signed, 7, false, ModeFaultAuth); ok {
		t.Error("foreign suite authenticated")
	}
	if s.Tag(0x1_0040, 7, false) == s.Tag(0x1_0044, 7, false) {
		t.Error("adjacent addresses share a tag")
	}
}

func TestStripAndPoisonLayout(t *testing.T) {
	s := DefaultSuite()
	signed := s.Sign(0x2_0000, 1, true)
	if Strip(signed) != 0x2_0000 {
		t.Errorf("strip(%#x) = %#x", signed, Strip(signed))
	}
	if Strip(Strip(signed)) != Strip(signed) {
		t.Error("strip not idempotent")
	}
	p := Poison(signed)
	if !Poisoned(p) || Poisoned(signed) || Poisoned(Strip(signed)) {
		t.Error("Poisoned misclassifies")
	}
}
