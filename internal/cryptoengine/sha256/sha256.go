// Package sha256 implements the SHA-256 hash function (FIPS 180-2) from
// scratch. It is the hash underlying the secure processor's HMAC integrity
// verification (the paper's reference implementation: a synthesized SHA-256
// core with 74ns latency per 512-bit padded block).
//
// Correctness is established in tests against FIPS vectors and against
// crypto/sha256 from the Go standard library.
package sha256

import "math/bits"

// Size is the digest size in bytes.
const Size = 32

// BlockSize is the compression-function input size in bytes (512 bits).
// The simulator's authentication timing charges one hash-unit latency per
// BlockSize of padded input.
const BlockSize = 64

var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// Digest is a streaming SHA-256 computation. The zero value is not usable;
// call New.
type Digest struct {
	h      [8]uint32
	buf    [BlockSize]byte
	nbuf   int
	length uint64 // total message bytes
}

// New returns a fresh SHA-256 computation.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset restores the initial hash state.
func (d *Digest) Reset() {
	d.h = [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	}
	d.nbuf = 0
	d.length = 0
}

// Write absorbs message bytes. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.length += uint64(n)
	if d.nbuf > 0 {
		c := copy(d.buf[d.nbuf:], p)
		d.nbuf += c
		p = p[c:]
		if d.nbuf == BlockSize {
			d.block(d.buf[:])
			d.nbuf = 0
		}
	}
	for len(p) >= BlockSize {
		d.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nbuf = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to b and returns the
// result. The computation can continue afterwards (Sum does not mutate d).
func (d *Digest) Sum(b []byte) []byte {
	var out [Size]byte
	d.SumInto(&out)
	return append(b, out[:]...)
}

// SumInto writes the digest of everything written so far into out without
// allocating. The computation can continue afterwards (it does not mutate
// d). This is the hot path of the per-line MAC in the simulated
// authentication engine, which must not allocate per memory fetch.
func (d *Digest) SumInto(out *[Size]byte) {
	dd := *d // copy so padding does not disturb the stream
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	msgBits := dd.length * 8
	padLen := BlockSize - (int(dd.length)+9)%BlockSize
	if padLen == BlockSize {
		padLen = 0
	}
	tail := pad[:1+padLen+8]
	for i := 0; i < 8; i++ {
		tail[len(tail)-1-i] = byte(msgBits >> (8 * i))
	}
	dd.Write(tail)
	for i, v := range dd.h {
		out[4*i] = byte(v >> 24)
		out[4*i+1] = byte(v >> 16)
		out[4*i+2] = byte(v >> 8)
		out[4*i+3] = byte(v)
	}
}

func rotr(x uint32, n uint) uint32 { return bits.RotateLeft32(x, -int(n)) }

func (d *Digest) block(p []byte) {
	var w [64]uint32
	for i := 0; i < 16; i++ {
		w[i] = uint32(p[4*i])<<24 | uint32(p[4*i+1])<<16 | uint32(p[4*i+2])<<8 | uint32(p[4*i+3])
	}
	for i := 16; i < 64; i++ {
		s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ w[i-15]>>3
		s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ w[i-2]>>10
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}
	a, b, c, dd, e, f, g, h := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4], d.h[5], d.h[6], d.h[7]
	for i := 0; i < 64; i++ {
		s1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := (e & f) ^ (^e & g)
		t1 := h + s1 + ch + k[i] + w[i]
		s0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := s0 + maj
		h, g, f, e, dd, c, b, a = g, f, e, dd+t1, c, b, a, t1+t2
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
	d.h[5] += f
	d.h[6] += g
	d.h[7] += h
}

// Sum256 returns the SHA-256 digest of data.
func Sum256(data []byte) [Size]byte {
	var d Digest
	d.Reset()
	d.Write(data)
	var out [Size]byte
	d.SumInto(&out)
	return out
}

// PaddedBlocks returns the number of 512-bit compression-function invocations
// needed for a message of n bytes — the quantity the timing model multiplies
// by the hash-unit latency.
func PaddedBlocks(n int) int {
	return (n + 9 + BlockSize - 1) / BlockSize
}
