package sha256

import (
	"bytes"
	stdsha "crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// FIPS 180-2 test vectors.
func TestVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	}
	for _, c := range cases {
		got := Sum256([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Sum256(%q) = %x want %s", c.in, got, c.want)
		}
	}
}

func TestMillionA(t *testing.T) {
	d := New()
	chunk := bytes.Repeat([]byte{'a'}, 1000)
	for i := 0; i < 1000; i++ {
		d.Write(chunk)
	}
	want := "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
	if got := hex.EncodeToString(d.Sum(nil)); got != want {
		t.Errorf("million a = %s want %s", got, want)
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(300)
		msg := make([]byte, n)
		rng.Read(msg)
		got := Sum256(msg)
		want := stdsha.Sum256(msg)
		if got != want {
			t.Fatalf("len %d: %x vs %x", n, got, want)
		}
	}
}

// Property: chunked writes produce the same digest as one write.
func TestQuickChunking(t *testing.T) {
	f := func(msg []byte, splits []uint8) bool {
		d := New()
		rest := msg
		for _, s := range splits {
			if len(rest) == 0 {
				break
			}
			n := int(s) % (len(rest) + 1)
			d.Write(rest[:n])
			rest = rest[n:]
		}
		d.Write(rest)
		return bytes.Equal(d.Sum(nil), func() []byte { s := Sum256(msg); return s[:] }())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSumDoesNotDisturbStream(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("repeated Sum differs")
	}
	d.Write([]byte("c"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("write after Sum corrupted state")
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("reset did not restore initial state")
	}
}

func TestPaddedBlocks(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1},
		{1, 1},
		{55, 1}, // 55+9 = 64: exactly one block
		{56, 2}, // spills
		{64, 2},
		{119, 2}, // 119+9 = 128
		{120, 3},
		{512 / 8, 2},
	}
	for _, c := range cases {
		if got := PaddedBlocks(c.n); got != c.want {
			t.Errorf("PaddedBlocks(%d) = %d want %d", c.n, got, c.want)
		}
	}
}

func BenchmarkSum256_64B(b *testing.B) {
	msg := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum256(msg)
	}
}
