// Package ctr implements counter-mode memory encryption for the secure
// processor, following the style of the counter-mode secure processor designs
// the paper cites ([19, 23, 27]): each protected cache line is encrypted by
// XOR with a one-time pad derived from AES over (line address, per-line
// counter, chunk index).
//
// The essential property for the paper is that counter mode is *malleable*:
// flipping bit i of the ciphertext flips exactly bit i of the decrypted
// plaintext. The attack package exploits this for pointer conversion, binary
// search, and disclosing-kernel injection; the authentication architecture
// exists to catch it.
//
// The second essential property is timing: the pad depends only on
// (address, counter), so when the counter is available on-chip (counter-cache
// hit) pad generation proceeds *in parallel* with the memory fetch, making
// effective decryption latency max(fetch, decrypt) — Table 1 of the paper.
package ctr

import (
	"fmt"

	"authpoint/internal/cryptoengine/aes"
	"authpoint/internal/obs"
)

// Engine encrypts and decrypts fixed-size memory lines in counter mode.
// It also maintains the per-line counter table (the authoritative copy that a
// real system would keep encrypted in memory with an on-chip counter cache).
type Engine struct {
	cipher   *aes.Cipher
	lineSize int
	counters map[uint64]uint64 // line address -> write counter

	sink  obs.Sink
	clock func() uint64
}

// SetObserver attaches an event sink. The engine is functional (untimed), so
// the owner supplies a clock closure reading the cycle its current timed
// operation is charged to.
func (e *Engine) SetObserver(s obs.Sink, clock func() uint64) {
	e.sink = s
	e.clock = clock
}

func (e *Engine) emit(addr uint64, decrypt uint64) {
	if e.sink == nil {
		return
	}
	e.sink.Emit(obs.Event{Cycle: e.clock(), Kind: obs.EvCryptOp, Track: obs.TrackCrypto,
		Addr: addr, A: decrypt, B: uint64(e.PadChunks())})
}

// NewEngine creates a counter-mode engine. lineSize must be a positive
// multiple of the AES block size.
func NewEngine(key []byte, lineSize int) (*Engine, error) {
	if lineSize <= 0 || lineSize%aes.BlockSize != 0 {
		return nil, fmt.Errorf("ctr: line size %d is not a positive multiple of %d", lineSize, aes.BlockSize)
	}
	c, err := aes.New(key)
	if err != nil {
		return nil, err
	}
	return &Engine{cipher: c, lineSize: lineSize, counters: map[uint64]uint64{}}, nil
}

// LineSize returns the engine's line size in bytes.
func (e *Engine) LineSize() int { return e.lineSize }

// PadChunks returns the number of AES invocations needed to produce the pad
// for one line. A pipelined hardware unit produces them in parallel, so the
// timing model charges one decryption latency regardless; the count is used
// by throughput-limited configurations.
func (e *Engine) PadChunks() int { return e.lineSize / aes.BlockSize }

// Counter returns the current write counter for the line at addr.
func (e *Engine) Counter(addr uint64) uint64 { return e.counters[addr] }

// SetCounter overrides a line counter (used by replay-attack tests that roll
// a counter back).
func (e *Engine) SetCounter(addr, ctr uint64) { e.counters[addr] = ctr }

// Pad computes the one-time pad for the line at addr under counter ctr.
func (e *Engine) Pad(addr, ctr uint64) []byte {
	pad := make([]byte, e.lineSize)
	e.padInto(pad, addr, ctr)
	return pad
}

// padInto writes the one-time pad for (addr, ctr) into dst, which must be
// lineSize bytes. Allocation-free: every external line fetch goes through
// here.
func (e *Engine) padInto(dst []byte, addr, ctr uint64) {
	var block [aes.BlockSize]byte
	for chunk := 0; chunk < e.PadChunks(); chunk++ {
		// Seed block: address, counter, chunk index. Unique per
		// (line, version, chunk) triple, which is what counter-mode security
		// requires.
		putUint64(block[0:8], addr)
		putUint64(block[8:16], ctr+uint64(chunk)<<48)
		e.cipher.Encrypt(dst[chunk*aes.BlockSize:], block[:])
	}
}

// EncryptLine encrypts plaintext for the line at addr, bumping its counter.
// The returned ciphertext has the same length as the engine line size.
func (e *Engine) EncryptLine(addr uint64, plaintext []byte) ([]byte, error) {
	out := make([]byte, e.lineSize)
	if err := e.EncryptLineInto(out, addr, plaintext); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptLineInto is EncryptLine writing the ciphertext into dst (lineSize
// bytes) without allocating. dst must not alias plaintext.
func (e *Engine) EncryptLineInto(dst []byte, addr uint64, plaintext []byte) error {
	if len(plaintext) != e.lineSize {
		return fmt.Errorf("ctr: plaintext length %d != line size %d", len(plaintext), e.lineSize)
	}
	e.counters[addr]++
	e.emit(addr, 0)
	e.padInto(dst, addr, e.counters[addr])
	xorInto(dst, plaintext)
	return nil
}

// DecryptLine decrypts ciphertext for the line at addr using its current
// counter.
func (e *Engine) DecryptLine(addr uint64, ciphertext []byte) ([]byte, error) {
	out := make([]byte, e.lineSize)
	if err := e.DecryptLineInto(out, addr, ciphertext); err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptLineInto is DecryptLine writing the plaintext into dst (lineSize
// bytes) without allocating. dst must not alias ciphertext.
func (e *Engine) DecryptLineInto(dst []byte, addr uint64, ciphertext []byte) error {
	if len(ciphertext) != e.lineSize {
		return fmt.Errorf("ctr: ciphertext length %d != line size %d", len(ciphertext), e.lineSize)
	}
	e.emit(addr, 1)
	e.padInto(dst, addr, e.counters[addr])
	xorInto(dst, ciphertext)
	return nil
}

// DecryptLineWithCounter decrypts with an explicit counter value. A replayed
// (stale) ciphertext decrypts correctly only with its stale counter; with the
// current counter it produces garbage — the property that makes counters plus
// a tree necessary for replay protection.
func (e *Engine) DecryptLineWithCounter(addr, ctr uint64, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != e.lineSize {
		return nil, fmt.Errorf("ctr: ciphertext length %d != line size %d", len(ciphertext), e.lineSize)
	}
	out := make([]byte, e.lineSize)
	e.padInto(out, addr, ctr)
	xorInto(out, ciphertext)
	return out, nil
}

// xorInto XORs b into dst element-wise.
func xorInto(dst, b []byte) {
	for i := range dst {
		dst[i] ^= b[i]
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
