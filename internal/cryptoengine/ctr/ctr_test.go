package ctr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newEngine(t *testing.T, lineSize int) *Engine {
	t.Helper()
	e, err := NewEngine(make([]byte, 32), lineSize)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRoundTrip(t *testing.T) {
	e := newEngine(t, 64)
	pt := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(pt)
	ct, err := e.EncryptLine(0x1000, pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back, err := e.DecryptLine(0x1000, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
}

func TestInvalidSizes(t *testing.T) {
	if _, err := NewEngine(make([]byte, 32), 15); err == nil {
		t.Error("line size 15 accepted")
	}
	if _, err := NewEngine(make([]byte, 32), 0); err == nil {
		t.Error("line size 0 accepted")
	}
	if _, err := NewEngine(make([]byte, 5), 64); err == nil {
		t.Error("bad key accepted")
	}
	e := newEngine(t, 64)
	if _, err := e.EncryptLine(0, make([]byte, 32)); err == nil {
		t.Error("short plaintext accepted")
	}
	if _, err := e.DecryptLine(0, make([]byte, 32)); err == nil {
		t.Error("short ciphertext accepted")
	}
	if _, err := e.DecryptLineWithCounter(0, 1, make([]byte, 32)); err == nil {
		t.Error("short ciphertext accepted (explicit counter)")
	}
}

// The decisive property for the paper: counter mode is bit-malleable.
// Flipping ciphertext bit i flips exactly plaintext bit i.
func TestMalleability(t *testing.T) {
	e := newEngine(t, 64)
	pt := make([]byte, 64)
	for i := range pt {
		pt[i] = byte(i)
	}
	ct, _ := e.EncryptLine(0x2000, pt)
	for _, bit := range []int{0, 7, 63, 100, 511} {
		tampered := append([]byte(nil), ct...)
		tampered[bit/8] ^= 1 << (bit % 8)
		dec, _ := e.DecryptLine(0x2000, tampered)
		wanted := append([]byte(nil), pt...)
		wanted[bit/8] ^= 1 << (bit % 8)
		if !bytes.Equal(dec, wanted) {
			t.Fatalf("bit %d: malleability violated", bit)
		}
	}
}

// Pointer-conversion building block: XORing the ciphertext with
// (oldValue XOR newValue) rewrites the plaintext to newValue exactly.
func TestChosenPlaintextRewrite(t *testing.T) {
	e := newEngine(t, 64)
	pt := make([]byte, 64) // a NULL pointer lives at offset 16
	ct, _ := e.EncryptLine(0x3000, pt)
	target := uint64(0xdeadbeef)
	tampered := append([]byte(nil), ct...)
	for i := 0; i < 8; i++ {
		tampered[16+i] ^= 0 ^ byte(target>>(8*i)) // old value is zero
	}
	dec, _ := e.DecryptLine(0x3000, tampered)
	got := uint64(0)
	for i := 0; i < 8; i++ {
		got |= uint64(dec[16+i]) << (8 * i)
	}
	if got != target {
		t.Fatalf("rewrite produced %#x want %#x", got, target)
	}
}

func TestCounterAdvancesPerWrite(t *testing.T) {
	e := newEngine(t, 32)
	pt := make([]byte, 32)
	if e.Counter(0x40) != 0 {
		t.Fatal("fresh counter nonzero")
	}
	ct1, _ := e.EncryptLine(0x40, pt)
	ct2, _ := e.EncryptLine(0x40, pt)
	if e.Counter(0x40) != 2 {
		t.Fatalf("counter = %d want 2", e.Counter(0x40))
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("same pad reused across writes")
	}
}

// Replay: old ciphertext under the current counter decrypts to garbage, but
// decrypts correctly under its stale counter — the reason counter integrity
// (tree protection) matters.
func TestReplayNeedsStaleCounter(t *testing.T) {
	e := newEngine(t, 32)
	old := []byte("the old secret value 32 bytes!!!")
	ct1, _ := e.EncryptLine(0x80, old)
	ct2, _ := e.EncryptLine(0x80, make([]byte, 32)) // overwrite
	_ = ct2
	dec, _ := e.DecryptLine(0x80, ct1) // replay old ciphertext
	if bytes.Equal(dec, old) {
		t.Fatal("replayed ciphertext decrypted under new counter")
	}
	dec, _ = e.DecryptLineWithCounter(0x80, 1, ct1)
	if !bytes.Equal(dec, old) {
		t.Fatal("stale counter should decrypt replayed ciphertext")
	}
}

func TestPadsUniqueAcrossAddressesAndCounters(t *testing.T) {
	e := newEngine(t, 32)
	seen := map[string]bool{}
	for addr := uint64(0); addr < 8; addr++ {
		for ctr := uint64(0); ctr < 8; ctr++ {
			p := string(e.Pad(addr*32, ctr))
			if seen[p] {
				t.Fatalf("pad reuse at addr=%d ctr=%d", addr, ctr)
			}
			seen[p] = true
		}
	}
}

func TestPadChunks(t *testing.T) {
	if newEngine(t, 64).PadChunks() != 4 {
		t.Error("64B line should use 4 AES blocks")
	}
	if newEngine(t, 32).PadChunks() != 2 {
		t.Error("32B line should use 2 AES blocks")
	}
}

// Property: decrypt(encrypt(pt)) == pt for arbitrary lines and addresses.
func TestQuickRoundTrip(t *testing.T) {
	e := newEngine(t, 32)
	f := func(addr uint64, data [32]byte) bool {
		ct, err := e.EncryptLine(addr, data[:])
		if err != nil {
			return false
		}
		dec, err := e.DecryptLine(addr, ct)
		return err == nil && bytes.Equal(dec, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetCounter(t *testing.T) {
	e := newEngine(t, 32)
	e.SetCounter(0x100, 41)
	pt := make([]byte, 32)
	e.EncryptLine(0x100, pt)
	if e.Counter(0x100) != 42 {
		t.Fatalf("counter %d want 42", e.Counter(0x100))
	}
}
