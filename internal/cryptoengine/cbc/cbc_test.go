package cbc

import (
	"bytes"
	stdaes "crypto/aes"
	stdcipher "crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"
)

func newEngine(t *testing.T, lineSize int) *Engine {
	t.Helper()
	encKey := bytes.Repeat([]byte{1}, 32)
	macKey := bytes.Repeat([]byte{2}, 32)
	e, err := NewEngine(encKey, macKey, lineSize)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRoundTrip(t *testing.T) {
	e := newEngine(t, 64)
	pt := make([]byte, 64)
	rand.New(rand.NewSource(9)).Read(pt)
	ct, err := e.EncryptLine(0xabc0, pt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.DecryptLine(0xabc0, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
}

// Cross-check the CBC chaining against the standard library's CBC mode with
// the same derived IV.
func TestAgainstStdlibCBC(t *testing.T) {
	e := newEngine(t, 64)
	pt := make([]byte, 64)
	rand.New(rand.NewSource(2)).Read(pt)
	addr := uint64(0x1000)
	ct, _ := e.EncryptLine(addr, pt)

	iv := e.iv(addr)
	block, err := stdaes.NewCipher(bytes.Repeat([]byte{1}, 32))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64)
	stdcipher.NewCBCEncrypter(block, iv[:]).CryptBlocks(want, pt)
	if !bytes.Equal(ct, want) {
		t.Fatalf("CBC mismatch with stdlib:\n got %x\nwant %x", ct, want)
	}
}

// CBC malleability differs from CTR: flipping ciphertext bit i of chunk c
// garbles chunk c entirely and flips exactly bit i of chunk c+1. The paper
// notes CBC is still malleable — the flip lands "at certain offset".
func TestCBCMalleabilityShape(t *testing.T) {
	e := newEngine(t, 64)
	pt := make([]byte, 64)
	ct, _ := e.EncryptLine(0x5000, pt)
	tampered := append([]byte(nil), ct...)
	tampered[0] ^= 0x01 // chunk 0, bit 0
	dec, _ := e.DecryptLine(0x5000, tampered)
	// Chunk 0 is garbled (with overwhelming probability not equal to pt).
	if bytes.Equal(dec[:16], pt[:16]) {
		t.Error("chunk 0 should be garbled")
	}
	// Chunk 1 has exactly bit 0 flipped.
	want := append([]byte(nil), pt[16:32]...)
	want[0] ^= 0x01
	if !bytes.Equal(dec[16:32], want) {
		t.Errorf("chunk 1: got %x want %x", dec[16:32], want)
	}
	// Chunks 2,3 untouched.
	if !bytes.Equal(dec[32:], pt[32:]) {
		t.Error("later chunks should be untouched")
	}
}

func TestMacDetectsTampering(t *testing.T) {
	e := newEngine(t, 64)
	pt := make([]byte, 64)
	for i := range pt {
		pt[i] = byte(i * 3)
	}
	mac, err := e.MacLine(0x100, pt)
	if err != nil {
		t.Fatal(err)
	}
	if !e.VerifyLine(0x100, pt, mac[:]) {
		t.Fatal("valid MAC rejected")
	}
	bad := append([]byte(nil), pt...)
	bad[5] ^= 0x80
	if e.VerifyLine(0x100, bad, mac[:]) {
		t.Fatal("tampered line accepted")
	}
	// MAC is address-bound: same data at a different address fails.
	if e.VerifyLine(0x140, pt, mac[:]) {
		t.Fatal("address substitution accepted")
	}
	if e.VerifyLine(0x100, pt, mac[:8]) {
		t.Fatal("short MAC accepted")
	}
}

func TestIVDependsOnAddress(t *testing.T) {
	e := newEngine(t, 32)
	pt := make([]byte, 32)
	ct1, _ := e.EncryptLine(0x0, pt)
	ct2, _ := e.EncryptLine(0x20, pt)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("same plaintext at different addresses produced same ciphertext")
	}
}

func TestChunks(t *testing.T) {
	if newEngine(t, 64).Chunks() != 4 {
		t.Error("chunks(64)")
	}
	if newEngine(t, 32).Chunks() != 2 {
		t.Error("chunks(32)")
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := NewEngine(make([]byte, 32), make([]byte, 32), 24); err == nil {
		t.Error("line size 24 accepted")
	}
	if _, err := NewEngine(make([]byte, 3), make([]byte, 32), 32); err == nil {
		t.Error("bad enc key accepted")
	}
	if _, err := NewEngine(make([]byte, 32), make([]byte, 3), 32); err == nil {
		t.Error("bad mac key accepted")
	}
	e := newEngine(t, 32)
	if _, err := e.EncryptLine(0, make([]byte, 16)); err == nil {
		t.Error("short encrypt accepted")
	}
	if _, err := e.DecryptLine(0, make([]byte, 16)); err == nil {
		t.Error("short decrypt accepted")
	}
	if _, err := e.MacLine(0, make([]byte, 16)); err == nil {
		t.Error("short mac accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	e := newEngine(t, 32)
	f := func(addr uint64, data [32]byte) bool {
		ct, err := e.EncryptLine(addr, data[:])
		if err != nil {
			return false
		}
		dec, err := e.DecryptLine(addr, ct)
		return err == nil && bytes.Equal(dec, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
