// Package cbc implements CBC-mode memory encryption and CBC-MAC integrity
// for one protected line. The paper uses [CBC + CBC-MAC] as the comparison
// point in Table 1: both its decryption and its authentication are *serial*
// in the number of 128-bit chunks, so neither overlaps the memory fetch the
// way counter-mode pad precomputation does.
package cbc

import (
	"fmt"

	"authpoint/internal/cryptoengine/aes"
)

// Engine encrypts/decrypts lines in CBC mode and MACs them with CBC-MAC.
// Encryption and MAC use independent keys (using one key for both is the
// classic CBC-MAC pitfall).
type Engine struct {
	enc      *aes.Cipher
	mac      *aes.Cipher
	lineSize int
}

// NewEngine creates a CBC engine with distinct encryption and MAC keys.
func NewEngine(encKey, macKey []byte, lineSize int) (*Engine, error) {
	if lineSize <= 0 || lineSize%aes.BlockSize != 0 {
		return nil, fmt.Errorf("cbc: line size %d is not a positive multiple of %d", lineSize, aes.BlockSize)
	}
	e, err := aes.New(encKey)
	if err != nil {
		return nil, err
	}
	m, err := aes.New(macKey)
	if err != nil {
		return nil, err
	}
	return &Engine{enc: e, mac: m, lineSize: lineSize}, nil
}

// LineSize returns the line size in bytes.
func (e *Engine) LineSize() int { return e.lineSize }

// Chunks returns N, the number of 128-bit chunks per line. Table 1 expresses
// both CBC latencies in terms of N: decrypting chunk n costs (n+1) serial
// cipher operations after the fetch; the MAC costs N serial operations.
func (e *Engine) Chunks() int { return e.lineSize / aes.BlockSize }

// iv derives a per-line IV from the line address. CBC with a fixed IV leaks
// equality of line prefixes; an address-derived IV is the standard fix and
// matches deployed secure-processor CBC designs.
func (e *Engine) iv(addr uint64) [aes.BlockSize]byte {
	var iv [aes.BlockSize]byte
	for i := 0; i < 8; i++ {
		iv[i] = byte(addr >> (8 * i))
	}
	e.enc.Encrypt(iv[:], iv[:])
	return iv
}

// EncryptLine CBC-encrypts one line.
func (e *Engine) EncryptLine(addr uint64, plaintext []byte) ([]byte, error) {
	if len(plaintext) != e.lineSize {
		return nil, fmt.Errorf("cbc: plaintext length %d != line size %d", len(plaintext), e.lineSize)
	}
	out := make([]byte, e.lineSize)
	prev := e.iv(addr)
	for c := 0; c < e.Chunks(); c++ {
		var blk [aes.BlockSize]byte
		for i := 0; i < aes.BlockSize; i++ {
			blk[i] = plaintext[c*aes.BlockSize+i] ^ prev[i]
		}
		e.enc.Encrypt(out[c*aes.BlockSize:], blk[:])
		copy(prev[:], out[c*aes.BlockSize:(c+1)*aes.BlockSize])
	}
	return out, nil
}

// DecryptLine CBC-decrypts one line.
func (e *Engine) DecryptLine(addr uint64, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != e.lineSize {
		return nil, fmt.Errorf("cbc: ciphertext length %d != line size %d", len(ciphertext), e.lineSize)
	}
	out := make([]byte, e.lineSize)
	prev := e.iv(addr)
	for c := 0; c < e.Chunks(); c++ {
		var blk [aes.BlockSize]byte
		e.enc.Decrypt(blk[:], ciphertext[c*aes.BlockSize:])
		for i := 0; i < aes.BlockSize; i++ {
			out[c*aes.BlockSize+i] = blk[i] ^ prev[i]
		}
		copy(prev[:], ciphertext[c*aes.BlockSize:(c+1)*aes.BlockSize])
	}
	return out, nil
}

// MacLine computes the CBC-MAC of one line (over the plaintext, bound to the
// line address via the first block).
func (e *Engine) MacLine(addr uint64, plaintext []byte) ([aes.BlockSize]byte, error) {
	var mac [aes.BlockSize]byte
	if len(plaintext) != e.lineSize {
		return mac, fmt.Errorf("cbc: plaintext length %d != line size %d", len(plaintext), e.lineSize)
	}
	for i := 0; i < 8; i++ {
		mac[i] = byte(addr >> (8 * i))
	}
	e.mac.Encrypt(mac[:], mac[:])
	for c := 0; c < e.Chunks(); c++ {
		for i := 0; i < aes.BlockSize; i++ {
			mac[i] ^= plaintext[c*aes.BlockSize+i]
		}
		e.mac.Encrypt(mac[:], mac[:])
	}
	return mac, nil
}

// VerifyLine reports whether mac is the CBC-MAC of plaintext for addr.
func (e *Engine) VerifyLine(addr uint64, plaintext, mac []byte) bool {
	want, err := e.MacLine(addr, plaintext)
	if err != nil || len(mac) != aes.BlockSize {
		return false
	}
	var diff byte
	for i := range want {
		diff |= want[i] ^ mac[i]
	}
	return diff == 0
}
