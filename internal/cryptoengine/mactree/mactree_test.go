package mactree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var key = []byte("tree-key")

func newTree(t *testing.T, leaves, arity int) *Tree {
	t.Helper()
	tr, err := New(key, leaves, arity, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func leafData(i int) []byte {
	d := make([]byte, 64)
	rand.New(rand.NewSource(int64(i))).Read(d)
	return d
}

func fill(t *testing.T, tr *Tree, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := tr.SetLeaf(i, leafData(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLevelsShape(t *testing.T) {
	cases := []struct{ leaves, arity, levels int }{
		{1, 8, 1},
		{8, 8, 2},
		{9, 8, 3},  // 9 -> 2 -> 1
		{64, 8, 3}, // 64 -> 8 -> 1
		{65, 8, 4}, // 65 -> 9 -> 2 -> 1
		{100, 4, 5},
	}
	for _, c := range cases {
		tr := newTree(t, c.leaves, c.arity)
		if tr.Levels() != c.levels {
			t.Errorf("leaves=%d arity=%d: levels=%d want %d", c.leaves, c.arity, tr.Levels(), c.levels)
		}
		if tr.NodeCount(tr.Levels()-1) != 1 {
			t.Errorf("leaves=%d: top level has %d nodes", c.leaves, tr.NodeCount(tr.Levels()-1))
		}
	}
}

func TestVerifyAfterSet(t *testing.T) {
	tr := newTree(t, 64, 8)
	fill(t, tr, 64)
	for i := 0; i < 64; i++ {
		ok, visited := tr.VerifyLeaf(i, leafData(i), nil)
		if !ok {
			t.Fatalf("leaf %d failed verification", i)
		}
		if len(visited) != tr.Levels() {
			t.Fatalf("leaf %d: visited %d nodes, want full path %d", i, len(visited), tr.Levels())
		}
	}
}

func TestDetectsWrongLeafData(t *testing.T) {
	tr := newTree(t, 16, 4)
	fill(t, tr, 16)
	bad := append([]byte(nil), leafData(3)...)
	bad[10] ^= 1
	if ok, _ := tr.VerifyLeaf(3, bad, nil); ok {
		t.Fatal("tampered leaf data accepted")
	}
}

// Substitution attack: move leaf 5's (valid) data to leaf 3. Leaf digests are
// index-bound, so this must fail.
func TestDetectsLeafSubstitution(t *testing.T) {
	tr := newTree(t, 16, 4)
	fill(t, tr, 16)
	if ok, _ := tr.VerifyLeaf(3, leafData(5), nil); ok {
		t.Fatal("leaf substitution accepted")
	}
}

// Replay attack with a consistently tampered subtree: rewrite the stored
// leaf digest to match stale data. Verification must fail at a higher level
// because the parent no longer matches.
func TestDetectsConsistentSubtreeTamper(t *testing.T) {
	tr := newTree(t, 64, 8)
	fill(t, tr, 64)
	// Adversary records leaf 7's digest, then the system updates leaf 7.
	oldData := leafData(7)
	oldDigest := tr.Node(NodeID{0, 7})
	newData := append([]byte(nil), oldData...)
	newData[0] ^= 0xff
	tr.SetLeaf(7, newData)
	// Replay: restore the stored leaf digest to the stale one.
	cur := tr.Node(NodeID{0, 7})
	mask := make([]byte, len(cur))
	for i := range mask {
		mask[i] = cur[i] ^ oldDigest[i]
	}
	tr.TamperNode(NodeID{0, 7}, mask)
	ok, visited := tr.VerifyLeaf(7, oldData, nil)
	if ok {
		t.Fatal("replayed subtree accepted")
	}
	if len(visited) < 2 {
		t.Fatalf("verification should have climbed past the forged leaf, visited=%d", len(visited))
	}
}

func TestTamperedInternalNodeDetected(t *testing.T) {
	tr := newTree(t, 64, 8)
	fill(t, tr, 64)
	tr.TamperNode(NodeID{1, 0}, []byte{0x55})
	if ok, _ := tr.VerifyLeaf(0, leafData(0), nil); ok {
		t.Fatal("tampered internal node accepted")
	}
	// Every full walk recomputes the tampered node's parent from all its
	// siblings, so even "unrelated" leaves fail: the whole tree is poisoned
	// until the tamper is repaired. That is the desired tamper-evidence.
	if ok, _ := tr.VerifyLeaf(63, leafData(63), nil); ok {
		t.Fatal("full walk should detect tamper from any leaf")
	}
	// With the untampered sibling group's parent cached as trusted, leaf 63
	// still verifies without touching the poisoned upper levels.
	trusted := func(id NodeID) bool { return id == NodeID{1, 7} }
	if ok, _ := tr.VerifyLeaf(63, leafData(63), trusted); !ok {
		t.Fatal("leaf under a trusted uncle should verify")
	}
}

// The trusted-node short circuit: with the leaf's parent trusted, the walk
// stops after two nodes.
func TestTrustedNodeStopsWalk(t *testing.T) {
	tr := newTree(t, 64, 8)
	fill(t, tr, 64)
	trusted := func(id NodeID) bool { return id.Level == 1 }
	ok, visited := tr.VerifyLeaf(9, leafData(9), trusted)
	if !ok {
		t.Fatal("verification failed")
	}
	if len(visited) != 2 {
		t.Fatalf("visited %d nodes, want 2 (leaf + trusted parent)", len(visited))
	}
}

// CRITICAL security property of caching: a trusted node must actually have
// been verified. If the walk stops at a trusted node, tampering *above* it is
// invisible — which is exactly why only verified nodes may enter the cache.
// This test documents the contract rather than a bug.
func TestTrustedNodeMasksUpperTamper(t *testing.T) {
	tr := newTree(t, 64, 8)
	fill(t, tr, 64)
	tr.TamperNode(NodeID{1, 1}, []byte{0xff})                // parent group of leaves 8..15 is fine; tamper elsewhere
	trusted := func(id NodeID) bool { return id.Level == 0 } // trust every leaf digest
	ok, _ := tr.VerifyLeaf(0, leafData(0), trusted)
	if !ok {
		t.Fatal("walk should stop at trusted leaf digest and accept")
	}
	// Without the cache the tamper is caught (level-1 node 1 poisons the root).
	ok, _ = tr.VerifyLeaf(8, leafData(8), nil)
	if ok {
		t.Fatal("full walk should detect the tampered internal node")
	}
}

func TestSetLeafReturnsPath(t *testing.T) {
	tr := newTree(t, 64, 8)
	path, err := tr.SetLeaf(42, leafData(42))
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{{0, 42}, {1, 5}, {2, 0}}
	if len(path) != len(want) {
		t.Fatalf("path %v want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v want %v", path, want)
		}
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr := newTree(t, 16, 4)
	r0 := tr.Root()
	tr.SetLeaf(0, leafData(0))
	r1 := tr.Root()
	if bytes.Equal(r0, r1) {
		t.Fatal("root unchanged after leaf update")
	}
}

func TestBoundsAndErrors(t *testing.T) {
	tr := newTree(t, 8, 8)
	if _, err := tr.SetLeaf(-1, nil); err == nil {
		t.Error("negative leaf accepted")
	}
	if _, err := tr.SetLeaf(8, nil); err == nil {
		t.Error("out-of-range leaf accepted")
	}
	if ok, _ := tr.VerifyLeaf(99, nil, nil); ok {
		t.Error("out-of-range verify accepted")
	}
	if _, err := New(key, 0, 8, 8); err == nil {
		t.Error("zero leaves accepted")
	}
	if _, err := New(key, 8, 1, 8); err == nil {
		t.Error("arity 1 accepted")
	}
	if _, err := New(key, 8, 8, 0); err == nil {
		t.Error("macSize 0 accepted")
	}
	if _, err := New(key, 8, 8, 64); err == nil {
		t.Error("macSize 64 accepted")
	}
}

// Property: after arbitrary update sequences, every leaf verifies with its
// latest data and fails with any other leaf's data.
func TestQuickUpdateConsistency(t *testing.T) {
	tr := newTree(t, 32, 8)
	latest := map[int][]byte{}
	f := func(leaf uint8, data [16]byte) bool {
		i := int(leaf) % 32
		d := append([]byte(nil), data[:]...)
		if _, err := tr.SetLeaf(i, d); err != nil {
			return false
		}
		latest[i] = d
		for j, want := range latest {
			ok, _ := tr.VerifyLeaf(j, want, nil)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNonPowerArityShapes(t *testing.T) {
	// 10 leaves, arity 3: 10 -> 4 -> 2 -> 1.
	tr := newTree(t, 10, 3)
	if tr.Levels() != 4 {
		t.Fatalf("levels %d want 4", tr.Levels())
	}
	fill(t, tr, 10)
	for i := 0; i < 10; i++ {
		if ok, _ := tr.VerifyLeaf(i, leafData(i), nil); !ok {
			t.Fatalf("leaf %d failed", i)
		}
	}
}
