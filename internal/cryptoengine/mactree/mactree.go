// Package mactree implements an m-ary MAC tree over a protected memory
// region, in the style of the CHTree/AEGIS scheme the paper evaluates in
// Section 5.3.3. Leaves are per-line MACs; each internal node is a truncated
// HMAC over the concatenation of its children; the root lives on-chip and is
// unconditionally trusted.
//
// The tree gives replay protection: a stale-but-correctly-MACed line cannot
// be substituted because its leaf digest no longer matches the path to the
// trusted root.
//
// Verification cost is what matters to the simulator: verifying a line walks
// from its leaf toward the root, and may stop early at any node the caller
// vouches for (modeling the on-chip hash-tree cache of verified nodes). The
// walk reports exactly which nodes it visited so the memory-system model can
// charge node fetches and hash latencies.
package mactree

import (
	"fmt"

	"authpoint/internal/cryptoengine/hmac"
)

// NodeID names a tree node. Level 0 holds the per-line leaf digests; the
// level Levels()-1 holds the children of the trusted root.
type NodeID struct {
	Level int
	Index int
}

// Tree is an m-ary MAC tree. Node storage models the untrusted external
// memory (it can be tampered with); only the root digest is trusted.
type Tree struct {
	key       []byte
	arity     int
	macSize   int
	numLeaves int
	// levels[l] stores the concatenated node digests of level l.
	// levels[0] has numLeaves digests; each higher level has
	// ceil(prev/arity) digests.
	levels [][]byte
	root   []byte
}

// New builds an empty tree (all-zero leaves) for numLeaves lines.
func New(key []byte, numLeaves, arity, macSize int) (*Tree, error) {
	if numLeaves <= 0 {
		return nil, fmt.Errorf("mactree: numLeaves must be positive, got %d", numLeaves)
	}
	if arity < 2 {
		return nil, fmt.Errorf("mactree: arity must be >= 2, got %d", arity)
	}
	if macSize <= 0 || macSize > hmac.Size {
		return nil, fmt.Errorf("mactree: macSize must be in 1..%d, got %d", hmac.Size, macSize)
	}
	t := &Tree{key: append([]byte(nil), key...), arity: arity, macSize: macSize, numLeaves: numLeaves}
	n := numLeaves
	for {
		t.levels = append(t.levels, make([]byte, n*macSize))
		if n == 1 {
			break
		}
		n = (n + arity - 1) / arity
	}
	// Initialize all levels bottom-up from the zero leaves.
	for l := 1; l < len(t.levels); l++ {
		for i := 0; i < t.nodeCount(l); i++ {
			t.recomputeNode(l, i)
		}
	}
	t.root = t.macOfChildren(len(t.levels)-1, 0, 1)
	return t, nil
}

// Levels returns the number of stored levels (leaf level included, trusted
// root excluded).
func (t *Tree) Levels() int { return len(t.levels) }

// NodeCount returns the number of nodes at a level.
func (t *Tree) NodeCount(level int) int { return t.nodeCount(level) }

func (t *Tree) nodeCount(level int) int { return len(t.levels[level]) / t.macSize }

// Arity returns the tree fan-out.
func (t *Tree) Arity() int { return t.arity }

// MacSize returns the digest size per node in bytes.
func (t *Tree) MacSize() int { return t.macSize }

// node returns the stored digest of a node.
func (t *Tree) node(level, index int) []byte {
	return t.levels[level][index*t.macSize : (index+1)*t.macSize]
}

// Node returns a copy of the stored digest of id (for inspection in tests).
func (t *Tree) Node(id NodeID) []byte {
	return append([]byte(nil), t.node(id.Level, id.Index)...)
}

// leafDigest computes the digest of raw leaf data for leaf i. The leaf index
// is mixed in so identical lines at different addresses have distinct leaves.
func (t *Tree) leafDigest(i int, leafData []byte) []byte {
	msg := make([]byte, 8+len(leafData))
	for b := 0; b < 8; b++ {
		msg[b] = byte(uint64(i) >> (8 * b))
	}
	copy(msg[8:], leafData)
	return hmac.Truncated(t.key, msg, t.macSize)
}

// macOfChildren computes the digest of the node at (level,index) from its
// children stored at level-1 (or, for level == Levels(), from the top stored
// level — that is the root computation).
func (t *Tree) macOfChildren(childLevel, firstChild, nChildren int) []byte {
	msg := make([]byte, 0, nChildren*t.macSize+8)
	var hdr [8]byte
	v := uint64(childLevel)<<32 | uint64(firstChild)
	for b := 0; b < 8; b++ {
		hdr[b] = byte(v >> (8 * b))
	}
	msg = append(msg, hdr[:]...)
	for c := firstChild; c < firstChild+nChildren; c++ {
		msg = append(msg, t.node(childLevel, c)...)
	}
	return hmac.Truncated(t.key, msg, t.macSize)
}

func (t *Tree) recomputeNode(level, index int) {
	first := index * t.arity
	n := t.arity
	if first+n > t.nodeCount(level-1) {
		n = t.nodeCount(level-1) - first
	}
	copy(t.node(level, index), t.macOfChildren(level-1, first, n))
}

// SetLeaf installs new leaf data for line i and updates the path to the
// root. It returns the node IDs rewritten (leaf upward), which the memory
// model charges as tree-update work on write-back.
func (t *Tree) SetLeaf(i int, leafData []byte) ([]NodeID, error) {
	if i < 0 || i >= t.numLeaves {
		return nil, fmt.Errorf("mactree: leaf %d out of range [0,%d)", i, t.numLeaves)
	}
	copy(t.node(0, i), t.leafDigest(i, leafData))
	path := []NodeID{{0, i}}
	idx := i
	for l := 1; l < len(t.levels); l++ {
		idx /= t.arity
		t.recomputeNode(l, idx)
		path = append(path, NodeID{l, idx})
	}
	t.root = t.macOfChildren(len(t.levels)-1, 0, 1)
	return path, nil
}

// VerifyLeaf checks leaf data for line i against the tree, walking upward
// and stopping at the first node for which trusted returns true (the on-chip
// node cache), or at the on-chip root. It returns whether verification
// succeeded and the nodes whose stored digests were consulted (the memory
// model charges a fetch per consulted node group and a hash latency per
// level climbed).
//
// trusted may be nil, meaning only the root is trusted (worst case: the walk
// always reaches the root).
func (t *Tree) VerifyLeaf(i int, leafData []byte, trusted func(NodeID) bool) (bool, []NodeID) {
	if i < 0 || i >= t.numLeaves {
		return false, nil
	}
	var visited []NodeID
	computed := t.leafDigest(i, leafData)
	id := NodeID{0, i}
	for {
		visited = append(visited, id)
		stored := t.node(id.Level, id.Index)
		if !equal(computed, stored) {
			return false, visited
		}
		if trusted != nil && trusted(id) {
			return true, visited
		}
		// Climb: the parent digest must match the MAC over this node's
		// sibling group.
		if id.Level == len(t.levels)-1 {
			// Parent is the trusted on-chip root.
			return equal(t.macOfChildren(id.Level, 0, t.nodeCount(id.Level)), t.root), visited
		}
		parent := NodeID{id.Level + 1, id.Index / t.arity}
		first := parent.Index * t.arity
		n := t.arity
		if first+n > t.nodeCount(id.Level) {
			n = t.nodeCount(id.Level) - first
		}
		computed = t.macOfChildren(id.Level, first, n)
		id = parent
	}
}

// TamperNode XORs mask into a stored node digest, modeling an adversary
// rewriting tree nodes in external memory.
func (t *Tree) TamperNode(id NodeID, mask []byte) {
	n := t.node(id.Level, id.Index)
	for i := range n {
		n[i] ^= mask[i%len(mask)]
	}
}

// Root returns a copy of the trusted root digest.
func (t *Tree) Root() []byte { return append([]byte(nil), t.root...) }

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var d byte
	for i := range a {
		d |= a[i] ^ b[i]
	}
	return d == 0
}
