// Package aes implements the Rijndael block cipher (AES-128/192/256) from
// scratch. It is the cipher used by the secure processor model for memory
// encryption (counter mode) and for the CBC/CBC-MAC comparison scheme.
//
// The field arithmetic (S-box substitution, ShiftRows, MixColumns over
// GF(2^8), and the key schedule) is realized byte-oriented from FIPS 197 for
// auditability; the block-processing hot path then runs on T-tables derived
// from that arithmetic at init, because the simulator invokes the cipher for
// every external line fetch. The simulator's timing model still charges the
// latency of a pipelined hardware implementation (the paper's reference:
// ~80ns for 256-bit Rijndael), not the latency of this software.
//
// Correctness is established in tests against FIPS-197 vectors and against
// crypto/aes from the Go standard library.
package aes

import "fmt"

// BlockSize is the AES block size in bytes (128 bits, all key lengths).
const BlockSize = 16

// Cipher is an expanded-key AES instance for one key.
type Cipher struct {
	enc    []uint32 // encryption round keys
	dec    []uint32 // decryption round keys
	rounds int
}

// New creates a Cipher. The key must be 16, 24, or 32 bytes
// (AES-128/192/256).
func New(key []byte) (*Cipher, error) {
	switch len(key) {
	case 16, 24, 32:
	default:
		return nil, fmt.Errorf("aes: invalid key size %d", len(key))
	}
	c := &Cipher{rounds: 6 + len(key)/4}
	c.expandKey(key)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(key []byte) *Cipher {
	c, err := New(key)
	if err != nil {
		panic(err)
	}
	return c
}

// sbox and inverse sbox, generated in init from the multiplicative inverse
// in GF(2^8) plus the affine transform (FIPS 197 §5.1.1). Generating them
// rather than embedding literals both shortens the code and self-checks the
// field arithmetic.
var (
	sbox  [256]byte
	isbox [256]byte
	// Multiplication tables for the fixed MixColumns coefficients; computed
	// once from mul so the hot encrypt/decrypt paths are table lookups.
	mul2, mul3, mul9, mul11, mul13, mul14 [256]byte
	// T-tables fusing SubBytes, ShiftRows, and MixColumns into four word
	// lookups per column per round (the standard software realization of
	// FIPS 197 §5.1). te[i][x] holds the MixColumns product column for a row-i
	// byte after substitution; td is the inverse-cipher analogue. Generated in
	// init from sbox/mul, so the byte-oriented reference arithmetic above is
	// still the single source of truth.
	te [4][256]uint32
	td [4][256]uint32
)

// mul multiplies a and b in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
func mul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// inv returns the multiplicative inverse of a in GF(2^8); inv(0)=0.
func inv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^(2^8-2) = a^254 by square-and-multiply.
	result := byte(1)
	base := a
	for e := 254; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = mul(result, base)
		}
		base = mul(base, base)
	}
	return result
}

func init() {
	for i := 0; i < 256; i++ {
		x := inv(byte(i))
		// Affine transform: b ^= rot(b,1)^rot(b,2)^rot(b,3)^rot(b,4) ^ 0x63.
		y := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = y
		isbox[y] = byte(i)
		b := byte(i)
		mul2[i] = mul(b, 2)
		mul3[i] = mul(b, 3)
		mul9[i] = mul(b, 9)
		mul11[i] = mul(b, 11)
		mul13[i] = mul(b, 13)
		mul14[i] = mul(b, 14)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		te[0][i] = uint32(mul2[s])<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(mul3[s])
		te[1][i] = uint32(mul3[s])<<24 | uint32(mul2[s])<<16 | uint32(s)<<8 | uint32(s)
		te[2][i] = uint32(s)<<24 | uint32(mul3[s])<<16 | uint32(mul2[s])<<8 | uint32(s)
		te[3][i] = uint32(s)<<24 | uint32(s)<<16 | uint32(mul3[s])<<8 | uint32(mul2[s])
		is := isbox[i]
		td[0][i] = uint32(mul14[is])<<24 | uint32(mul9[is])<<16 | uint32(mul13[is])<<8 | uint32(mul11[is])
		td[1][i] = uint32(mul11[is])<<24 | uint32(mul14[is])<<16 | uint32(mul9[is])<<8 | uint32(mul13[is])
		td[2][i] = uint32(mul13[is])<<24 | uint32(mul11[is])<<16 | uint32(mul14[is])<<8 | uint32(mul9[is])
		td[3][i] = uint32(mul9[is])<<24 | uint32(mul13[is])<<16 | uint32(mul11[is])<<8 | uint32(mul14[is])
	}
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	w := make([]uint32, n)
	for i := 0; i < nk; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1) << 24
	for i := nk; i < n; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ rcon
			rcon = uint32(mul(byte(rcon>>24), 2)) << 24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c.enc = w

	// Equivalent inverse cipher round keys: InvMixColumns applied to all
	// round keys except the first and last (FIPS 197 §5.3.5).
	c.dec = make([]uint32, n)
	for i := 0; i < n; i += 4 {
		j := n - 4 - i
		for k := 0; k < 4; k++ {
			rk := w[i+k]
			if i > 0 && i < n-4 {
				rk = invMixColumnWord(rk)
			}
			c.dec[j+k] = rk
		}
	}
}

func invMixColumnWord(w uint32) uint32 {
	var col [4]byte
	col[0], col[1], col[2], col[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	var out [4]byte
	out[0] = mul(col[0], 14) ^ mul(col[1], 11) ^ mul(col[2], 13) ^ mul(col[3], 9)
	out[1] = mul(col[0], 9) ^ mul(col[1], 14) ^ mul(col[2], 11) ^ mul(col[3], 13)
	out[2] = mul(col[0], 13) ^ mul(col[1], 9) ^ mul(col[2], 14) ^ mul(col[3], 11)
	out[3] = mul(col[0], 11) ^ mul(col[1], 13) ^ mul(col[2], 9) ^ mul(col[3], 14)
	return uint32(out[0])<<24 | uint32(out[1])<<16 | uint32(out[2])<<8 | uint32(out[3])
}

// state is the 4x4 AES state held column-major in four words.
type state [4]uint32

func loadState(src []byte) state {
	var s state
	for i := 0; i < 4; i++ {
		s[i] = uint32(src[4*i])<<24 | uint32(src[4*i+1])<<16 |
			uint32(src[4*i+2])<<8 | uint32(src[4*i+3])
	}
	return s
}

func (s *state) store(dst []byte) {
	for i := 0; i < 4; i++ {
		dst[4*i] = byte(s[i] >> 24)
		dst[4*i+1] = byte(s[i] >> 16)
		dst[4*i+2] = byte(s[i] >> 8)
		dst[4*i+3] = byte(s[i])
	}
}

func (s *state) addRoundKey(rk []uint32) {
	s[0] ^= rk[0]
	s[1] ^= rk[1]
	s[2] ^= rk[2]
	s[3] ^= rk[3]
}

// Encrypt encrypts one 16-byte block. dst and src may overlap.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.enc[0:4])
	// Each round, column c draws its row-0 byte from column c, row 1 from
	// c+1, row 2 from c+2, row 3 from c+3 (ShiftRows), and the T-tables fold
	// in SubBytes and MixColumns.
	for r := 1; r < c.rounds; r++ {
		rk := c.enc[4*r : 4*r+4]
		s0 := te[0][s[0]>>24] ^ te[1][s[1]>>16&0xff] ^ te[2][s[2]>>8&0xff] ^ te[3][s[3]&0xff] ^ rk[0]
		s1 := te[0][s[1]>>24] ^ te[1][s[2]>>16&0xff] ^ te[2][s[3]>>8&0xff] ^ te[3][s[0]&0xff] ^ rk[1]
		s2 := te[0][s[2]>>24] ^ te[1][s[3]>>16&0xff] ^ te[2][s[0]>>8&0xff] ^ te[3][s[1]&0xff] ^ rk[2]
		s3 := te[0][s[3]>>24] ^ te[1][s[0]>>16&0xff] ^ te[2][s[1]>>8&0xff] ^ te[3][s[2]&0xff] ^ rk[3]
		s[0], s[1], s[2], s[3] = s0, s1, s2, s3
	}
	// Final round: SubBytes + ShiftRows only.
	rk := c.enc[4*c.rounds : 4*c.rounds+4]
	s0 := uint32(sbox[s[0]>>24])<<24 | uint32(sbox[s[1]>>16&0xff])<<16 | uint32(sbox[s[2]>>8&0xff])<<8 | uint32(sbox[s[3]&0xff])
	s1 := uint32(sbox[s[1]>>24])<<24 | uint32(sbox[s[2]>>16&0xff])<<16 | uint32(sbox[s[3]>>8&0xff])<<8 | uint32(sbox[s[0]&0xff])
	s2 := uint32(sbox[s[2]>>24])<<24 | uint32(sbox[s[3]>>16&0xff])<<16 | uint32(sbox[s[0]>>8&0xff])<<8 | uint32(sbox[s[1]&0xff])
	s3 := uint32(sbox[s[3]>>24])<<24 | uint32(sbox[s[0]>>16&0xff])<<16 | uint32(sbox[s[1]>>8&0xff])<<8 | uint32(sbox[s[2]&0xff])
	s[0], s[1], s[2], s[3] = s0^rk[0], s1^rk[1], s2^rk[2], s3^rk[3]
	s.store(dst)
}

// Decrypt decrypts one 16-byte block. dst and src may overlap.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.dec[0:4])
	// Equivalent inverse cipher (pre-transformed round keys): column c draws
	// its row-1 byte from column c-1, row 2 from c-2, row 3 from c-3
	// (InvShiftRows), with InvSubBytes and InvMixColumns folded into td.
	for r := 1; r < c.rounds; r++ {
		rk := c.dec[4*r : 4*r+4]
		s0 := td[0][s[0]>>24] ^ td[1][s[3]>>16&0xff] ^ td[2][s[2]>>8&0xff] ^ td[3][s[1]&0xff] ^ rk[0]
		s1 := td[0][s[1]>>24] ^ td[1][s[0]>>16&0xff] ^ td[2][s[3]>>8&0xff] ^ td[3][s[2]&0xff] ^ rk[1]
		s2 := td[0][s[2]>>24] ^ td[1][s[1]>>16&0xff] ^ td[2][s[0]>>8&0xff] ^ td[3][s[3]&0xff] ^ rk[2]
		s3 := td[0][s[3]>>24] ^ td[1][s[2]>>16&0xff] ^ td[2][s[1]>>8&0xff] ^ td[3][s[0]&0xff] ^ rk[3]
		s[0], s[1], s[2], s[3] = s0, s1, s2, s3
	}
	// Final round: InvSubBytes + InvShiftRows only.
	rk := c.dec[4*c.rounds : 4*c.rounds+4]
	s0 := uint32(isbox[s[0]>>24])<<24 | uint32(isbox[s[3]>>16&0xff])<<16 | uint32(isbox[s[2]>>8&0xff])<<8 | uint32(isbox[s[1]&0xff])
	s1 := uint32(isbox[s[1]>>24])<<24 | uint32(isbox[s[0]>>16&0xff])<<16 | uint32(isbox[s[3]>>8&0xff])<<8 | uint32(isbox[s[2]&0xff])
	s2 := uint32(isbox[s[2]>>24])<<24 | uint32(isbox[s[1]>>16&0xff])<<16 | uint32(isbox[s[0]>>8&0xff])<<8 | uint32(isbox[s[3]&0xff])
	s3 := uint32(isbox[s[3]>>24])<<24 | uint32(isbox[s[2]>>16&0xff])<<16 | uint32(isbox[s[1]>>8&0xff])<<8 | uint32(isbox[s[0]&0xff])
	s[0], s[1], s[2], s[3] = s0^rk[0], s1^rk[1], s2^rk[2], s3^rk[3]
	s.store(dst)
}

// Rounds returns the number of rounds (10, 12, or 14), which the timing
// model uses to scale decryption latency with key size.
func (c *Cipher) Rounds() int { return c.rounds }
