package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FIPS-197 Appendix C example vectors.
func TestFIPS197Vectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{
			"000102030405060708090a0b0c0d0e0f",
			"00112233445566778899aabbccddeeff",
			"69c4e0d86a7b0430d8cdb78070b4c55a",
		},
		{
			"000102030405060708090a0b0c0d0e0f1011121314151617",
			"00112233445566778899aabbccddeeff",
			"dda97ca4864cdfe06eaf70a0ec0d7191",
		},
		{
			"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			"00112233445566778899aabbccddeeff",
			"8ea2b7ca516745bfeafc49904b496089",
		},
	}
	for _, c := range cases {
		key, pt, ct := unhex(t, c.key), unhex(t, c.pt), unhex(t, c.ct)
		ci := MustNew(key)
		got := make([]byte, 16)
		ci.Encrypt(got, pt)
		if !bytes.Equal(got, ct) {
			t.Errorf("key %s: encrypt = %x want %x", c.key, got, ct)
		}
		back := make([]byte, 16)
		ci.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("key %s: decrypt = %x want %x", c.key, back, pt)
		}
	}
}

func TestRounds(t *testing.T) {
	for _, c := range []struct{ keyLen, rounds int }{{16, 10}, {24, 12}, {32, 14}} {
		ci := MustNew(make([]byte, c.keyLen))
		if ci.Rounds() != c.rounds {
			t.Errorf("keylen %d: rounds %d want %d", c.keyLen, ci.Rounds(), c.rounds)
		}
	}
}

func TestInvalidKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 33, 64} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

// Cross-check against the standard library over random keys and blocks.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 200; trial++ {
			key := make([]byte, keyLen)
			rng.Read(key)
			pt := make([]byte, 16)
			rng.Read(pt)

			ours := MustNew(key)
			std, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			a, b := make([]byte, 16), make([]byte, 16)
			ours.Encrypt(a, pt)
			std.Encrypt(b, pt)
			if !bytes.Equal(a, b) {
				t.Fatalf("keylen %d: encrypt mismatch ours=%x std=%x", keyLen, a, b)
			}
			ours.Decrypt(a, b)
			if !bytes.Equal(a, pt) {
				t.Fatalf("keylen %d: decrypt(encrypt) != pt", keyLen)
			}
		}
	}
}

// Property: Decrypt is a left inverse of Encrypt for all keys/blocks.
func TestQuickRoundTrip(t *testing.T) {
	f := func(key [32]byte, pt [16]byte, keySel uint8) bool {
		sizes := []int{16, 24, 32}
		ci := MustNew(key[:sizes[int(keySel)%3]])
		var ct, back [16]byte
		ci.Encrypt(ct[:], pt[:])
		ci.Decrypt(back[:], ct[:])
		return back == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSboxInverse(t *testing.T) {
	for i := 0; i < 256; i++ {
		if isbox[sbox[i]] != byte(i) {
			t.Fatalf("isbox[sbox[%d]] = %d", i, isbox[sbox[i]])
		}
	}
	// Spot-check two published S-box entries.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed {
		t.Errorf("sbox[0]=%#x sbox[0x53]=%#x", sbox[0x00], sbox[0x53])
	}
}

func TestGFMul(t *testing.T) {
	// Known products from FIPS 197 §4.2: {57}x{83} = {c1}.
	if got := mul(0x57, 0x83); got != 0xc1 {
		t.Errorf("mul(57,83) = %#x", got)
	}
	if got := mul(0x57, 0x13); got != 0xfe {
		t.Errorf("mul(57,13) = %#x", got)
	}
	// Every nonzero element has inverse: a * inv(a) == 1.
	for a := 1; a < 256; a++ {
		if mul(byte(a), inv(byte(a))) != 1 {
			t.Fatalf("inv(%d) wrong", a)
		}
	}
}

func TestOverlappingDstSrc(t *testing.T) {
	ci := MustNew(make([]byte, 16))
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = byte(i)
	}
	want := make([]byte, 16)
	ci.Encrypt(want, buf)
	ci.Encrypt(buf, buf) // in-place
	if !bytes.Equal(buf, want) {
		t.Error("in-place encrypt differs")
	}
}

func TestShortBlockPanics(t *testing.T) {
	ci := MustNew(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on short block")
		}
	}()
	ci.Encrypt(make([]byte, 8), make([]byte, 8))
}

func BenchmarkEncrypt256(b *testing.B) {
	ci := MustNew(make([]byte, 32))
	src, dst := make([]byte, 16), make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		ci.Encrypt(dst, src)
	}
}
