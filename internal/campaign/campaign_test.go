package campaign

import (
	"os"
	"testing"

	"authpoint/internal/telemetry"
)

type payload struct {
	Verdict string
	Cycles  uint64
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Check: "c/v1", Kind: "fuzz", ProgDigest: Digest([]byte("prog")),
		Policy: "baseline", Options: "watchdog=1"}

	var got payload
	if ok, err := s.Get(k, &got); err != nil || ok {
		t.Fatalf("empty store Get = (%v, %v), want miss", ok, err)
	}
	want := payload{Verdict: "ok", Cycles: 42}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Get(k, &got); err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v), want hit", ok, err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	if s.Hits() != 1 || s.Misses() != 1 || s.Puts() != 1 {
		t.Fatalf("counters hits=%d misses=%d puts=%d, want 1/1/1", s.Hits(), s.Misses(), s.Puts())
	}
}

// TestKeyIDSensitivity pins that every key field feeds the content address —
// a field change must address a different entry — and that tamper site is
// folded in only for tamper keys.
func TestKeyIDSensitivity(t *testing.T) {
	base := Key{Check: "c/v1", Kind: "fuzz", ProgDigest: "aa", Policy: "p", Options: "o"}
	variants := []Key{
		{Check: "c/v2", Kind: "fuzz", ProgDigest: "aa", Policy: "p", Options: "o"},
		{Check: "c/v1", Kind: "verify", ProgDigest: "aa", Policy: "p", Options: "o"},
		{Check: "c/v1", Kind: "fuzz", ProgDigest: "bb", Policy: "p", Options: "o"},
		{Check: "c/v1", Kind: "fuzz", ProgDigest: "aa", Policy: "q", Options: "o"},
		{Check: "c/v1", Kind: "fuzz", ProgDigest: "aa", Policy: "p", Options: "x"},
		{Check: "c/v1", Kind: "fuzz", ProgDigest: "aa", Policy: "p", Options: "o", Tamper: true, Site: "entry"},
		{Check: "c/v1", Kind: "fuzz", ProgDigest: "aa", Policy: "p", Options: "o", Tamper: true, Site: "data"},
	}
	ids := map[string]Key{base.ID(): base}
	for _, v := range variants {
		id := v.ID()
		if prev, dup := ids[id]; dup {
			t.Fatalf("keys %+v and %+v share ID %s", prev, v, id)
		}
		ids[id] = v
	}
	// Concatenation attacks must not alias: shifting a byte across a field
	// boundary changes the ID because fields are length-prefixed.
	a := Key{Check: "c/v1", Kind: "fuzz", ProgDigest: "ab", Policy: "c", Options: "o"}
	b := Key{Check: "c/v1", Kind: "fuzz", ProgDigest: "a", Policy: "bc", Options: "o"}
	if a.ID() == b.ID() {
		t.Fatal("field-boundary shift aliased two keys")
	}
	// Site without tamper is not part of the address (non-tamper cells have
	// no site); canonical callers leave it empty.
	c := base
	c.Site = "entry"
	if c.ID() != base.ID() {
		t.Fatal("site changed the ID of a non-tamper key")
	}
}

func TestStoreCorruptEntryIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Check: "c/v1", Kind: "fuzz", ProgDigest: "aa", Policy: "p", Options: "o"}
	if err := s.Put(k, payload{Verdict: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k.ID()), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if ok, err := s.Get(k, &got); err != nil || ok {
		t.Fatalf("corrupt entry Get = (%v, %v), want miss", ok, err)
	}
	// A key whose entry was written under different key fields (hash
	// collision, stale derivation) must also miss, not alias.
	k2 := k
	k2.Options = "other"
	if err := os.MkdirAll(s.dir+"/"+k2.ID()[:2], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k2.ID()), mustEntry(t, k, payload{Verdict: "wrong"}), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Get(k2, &got); ok {
		t.Fatal("key-mismatched entry served as a hit")
	}
	// The cell re-simulates and overwrites cleanly.
	if err := s.Put(k, payload{Verdict: "ok"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Get(k, &got); err != nil || !ok || got.Verdict != "ok" {
		t.Fatalf("overwrite after corruption: (%v, %v, %+v)", ok, err, got)
	}
}

func mustEntry(t *testing.T, k Key, v payload) []byte {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, v); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(k.ID()))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCompleted pins the checkpoint semantics: terminal verdicts are done,
// skipped and empty verdicts are not.
func TestCompleted(t *testing.T) {
	lf := &telemetry.LedgerFile{Records: []telemetry.Record{
		{Seq: 0, Kind: "fuzz", Policy: "p", Seed: 1, Verdict: "ok"},
		{Seq: 1, Kind: "fuzz", Policy: "p", Seed: 2, Verdict: telemetry.VerdictSkipped},
		{Seq: 2, Kind: "fuzz", Policy: "p", Seed: 3},
		{Seq: 3, Kind: "fuzz", Policy: "p", Seed: 4, Tamper: true, Site: "entry", Verdict: "contained"},
		{Seq: 4, Kind: "verify", Policy: "p", Seed: 1, Verdict: "clean"},
	}}
	done := Completed(lf)
	if len(done) != 3 {
		t.Fatalf("Completed returned %d cells, want 3: %v", len(done), done)
	}
	if v := done[CellID{Kind: "fuzz", Policy: "p", Seed: 1}]; v != "ok" {
		t.Fatalf("seed 1 verdict %q, want ok", v)
	}
	if v := done[CellID{Kind: "fuzz", Policy: "p", Seed: 4, Tamper: true, Site: "entry"}]; v != "contained" {
		t.Fatalf("tamper cell verdict %q, want contained", v)
	}
	if v := done[CellID{Kind: "verify", Policy: "p", Seed: 1}]; v != "clean" {
		t.Fatalf("verify cell verdict %q, want clean", v)
	}
	if _, ok := done[CellID{Kind: "fuzz", Policy: "p", Seed: 2}]; ok {
		t.Fatal("skipped cell counted as completed")
	}
}

func TestLoadCompleted(t *testing.T) {
	path := t.TempDir() + "/ledger.jsonl"
	l, err := telemetry.Create(path, telemetry.NewHeader("test", 1))
	if err != nil {
		t.Fatal(err)
	}
	l.ReserveSeq(2)
	l.Emit(telemetry.Record{Seq: 0, Kind: "fuzz", Policy: "p", Seed: 7, Verdict: "ok"})
	l.Emit(telemetry.Record{Seq: 1, Kind: "fuzz", Policy: "p", Seed: 8, Verdict: telemetry.VerdictSkipped})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	done, err := LoadCompleted(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[CellID{Kind: "fuzz", Policy: "p", Seed: 7}] != "ok" {
		t.Fatalf("LoadCompleted = %v, want one ok cell", done)
	}
	// A ledger with a sequence hole is a corrupt checkpoint: resume must
	// refuse it rather than silently re-run (or skip) the lost cells.
	hole := t.TempDir() + "/hole.jsonl"
	l2, err := telemetry.Create(hole, telemetry.NewHeader("test", 1))
	if err != nil {
		t.Fatal(err)
	}
	l2.ReserveSeq(3)
	l2.Emit(telemetry.Record{Seq: 0, Kind: "fuzz", Policy: "p", Seed: 1, Verdict: "ok"})
	l2.Emit(telemetry.Record{Seq: 2, Kind: "fuzz", Policy: "p", Seed: 3, Verdict: "ok"})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCompleted(hole); err == nil {
		t.Fatal("ledger with a sequence hole accepted as a checkpoint")
	}
}
