// Package campaign makes sweep and fuzz campaigns resumable: a
// content-addressed result cache plus ledger-as-checkpoint helpers.
//
// The cell list of every campaign — a bench sweep, a differential fuzz run, a
// two-run contract sweep — is embarrassingly parallel and deterministic: the
// result of one cell is a pure function of (program, policy, check options,
// tamper mode and site, check-schema version). That function is exactly a
// cache key, so no cell ever needs to be simulated twice, across runs,
// campaigns, or machines sharing a cache directory. The checkers
// (diffcheck.Check, contract.CheckProgram) consult a Store through their
// Options; a hit returns the recorded result bit-identical to a fresh
// simulation — the same determinism contract the .repro/.leak replay corpus
// pins.
//
// Checkpoint/resume rides on the telemetry ledger: a campaign's JSONL ledger
// records one line per cell, including explicit "skipped" records for cells a
// budget expiry never ran, so a killed campaign's ledger proves exactly which
// cells completed. Completed turns that ledger into a skip set the CLIs
// subtract from the next run's cell list.
package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"authpoint/internal/telemetry"
)

// KeySchema versions the key derivation itself (field set and encoding).
// Bump it if Key gains fields or the ID encoding changes: old entries must
// miss, never alias.
const KeySchema = "authcampaign/key/v1"

// EntrySchema versions the on-disk entry envelope.
const EntrySchema = "authcampaign/entry/v1"

// Key identifies one unit of deterministic campaign work. Two cells with
// equal keys have bit-identical results, so the key is the cache address.
type Key struct {
	// Check is the checker's schema version (e.g. diffcheck.CheckSchema).
	// Any change to check semantics — verdict set, digest encoding, default
	// options — bumps it, invalidating every cached result at once.
	Check string `json:"check"`
	// Kind labels the campaign flavor ("fuzz", "verify"), mirroring the
	// ledger's kind field.
	Kind string `json:"kind"`
	// ProgDigest is the hex SHA-256 of the exact program source text. Keying
	// on content, not the generator seed, means identical programs share an
	// entry and generator evolution invalidates cleanly.
	ProgDigest string `json:"prog"`
	// Policy is the canonical (normalized) control-point name.
	Policy string `json:"policy"`
	// Options is the canonical rendering of every result-relevant check
	// option (bounds, watchdog, secret images, regions). Free-form but
	// canonical: equal option sets must render equal strings.
	Options string `json:"options"`
	// Tamper and Site select the tamper mode, after defaulting (an entry-site
	// tamper records "entry", never "").
	Tamper bool   `json:"tamper,omitempty"`
	Site   string `json:"site,omitempty"`
}

// Digest returns the hex SHA-256 of data — the ProgDigest convention.
func Digest(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// ID returns the content address of the key: the hex SHA-256 of its
// length-prefixed field encoding under KeySchema. Length prefixes keep
// distinct field tuples from colliding by concatenation.
func (k Key) ID() string {
	h := sha256.New()
	var n [8]byte
	wr := func(s string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	wr(KeySchema)
	wr(k.Check)
	wr(k.Kind)
	wr(k.ProgDigest)
	wr(k.Policy)
	wr(k.Options)
	if k.Tamper {
		wr("tamper")
		wr(k.Site)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// entry is the on-disk envelope: the full key (so collisions and stale
// derivations are detectable, not silently aliased) plus the result payload.
type entry struct {
	Schema string          `json:"schema"`
	Key    Key             `json:"key"`
	Result json.RawMessage `json:"result"`
}

// Store is an on-disk content-addressed result cache. Entries live at
// dir/<id[:2]>/<id>.json and are written atomically (temp file + rename), so
// concurrent workers — or concurrent campaigns sharing the directory — never
// observe torn entries. Unreadable, corrupt, or key-mismatched entries read
// as misses, never as wrong results.
type Store struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64

	mu  sync.Mutex
	err error // first write error, surfaced by Err
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id[:2], id+".json")
}

// Get looks k up and, on a hit, decodes the stored result into out (a
// pointer). A missing, corrupt, or key-mismatched entry is a miss.
func (s *Store) Get(k Key, out any) (bool, error) {
	id := k.ID()
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		s.misses.Add(1)
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("campaign: %w", err)
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != EntrySchema || e.Key != k {
		// Torn writes cannot happen (rename is atomic) but truncated disks,
		// schema bumps, and hash collisions all land here: treat as a miss so
		// the cell re-simulates and overwrites the entry.
		s.misses.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(e.Result, out); err != nil {
		s.misses.Add(1)
		return false, nil
	}
	s.hits.Add(1)
	return true, nil
}

// Put records v as the result of k. Writes are atomic and last-writer-wins;
// since results are deterministic functions of the key, concurrent writers
// write identical payloads. The first write error is sticky (see Err) so
// campaigns on a full or read-only disk fail loudly at the end, not silently
// cell by cell.
func (s *Store) Put(k Key, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return s.fail(fmt.Errorf("campaign: encode: %w", err))
	}
	e := entry{Schema: EntrySchema, Key: k, Result: payload}
	data, err := json.Marshal(&e)
	if err != nil {
		return s.fail(fmt.Errorf("campaign: encode: %w", err))
	}
	id := k.ID()
	path := s.path(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return s.fail(fmt.Errorf("campaign: %w", err))
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+id+".tmp*")
	if err != nil {
		return s.fail(fmt.Errorf("campaign: %w", err))
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return s.fail(fmt.Errorf("campaign: %w", werr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return s.fail(fmt.Errorf("campaign: %w", err))
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) fail(err error) error {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	return err
}

// Err returns the first write error seen over the store's lifetime.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Hits, Misses, and Puts report the store's lifetime lookup and write
// counts — the observables campaign summaries and tests pin.
func (s *Store) Hits() int64   { return s.hits.Load() }
func (s *Store) Misses() int64 { return s.misses.Load() }
func (s *Store) Puts() int64   { return s.puts.Load() }

// CellID is the campaign-level identity of one cell as a ledger records it:
// the fields of telemetry.Record that name the work, not its outcome. It is
// the join key between a checkpoint ledger and a fresh cell list.
type CellID struct {
	Kind   string
	Policy string
	Seed   int64
	Tamper bool
	Site   string
}

// Completed returns the cells lf proves finished, mapped to their verdicts.
// A record counts as completed when it carries a terminal verdict — anything
// but empty or "skipped". Budget-skipped records (and the holes pre-skip
// ledgers left) stay incomplete, which is exactly what lets a resumed
// campaign tell skipped from done.
func Completed(lf *telemetry.LedgerFile) map[CellID]string {
	done := make(map[CellID]string, len(lf.Records))
	for _, r := range lf.Records {
		if r.Verdict == "" || r.Verdict == telemetry.VerdictSkipped {
			continue
		}
		done[CellID{Kind: r.Kind, Policy: r.Policy, Seed: r.Seed, Tamper: r.Tamper, Site: r.Site}] = r.Verdict
	}
	return done
}

// LoadCompleted reads the checkpoint ledger at path and returns its
// completed-cell set (see Completed). The ledger is validated first: a
// corrupt checkpoint must fail the resume, not silently re-run everything.
func LoadCompleted(path string) (map[CellID]string, error) {
	lf, err := telemetry.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := lf.Validate(); err != nil {
		return nil, err
	}
	return Completed(lf), nil
}
