package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWriteBasics(t *testing.T) {
	m := New()
	if m.LoadByte(0x1234) != 0 {
		t.Error("fresh memory not zero")
	}
	m.StoreByte(0x1234, 0xab)
	if m.LoadByte(0x1234) != 0xab {
		t.Error("byte write lost")
	}
	data := []byte{1, 2, 3, 4, 5}
	m.Write(0xfff_e, data) // crosses page boundary
	if got := m.Read(0xfff_e, 5); !bytes.Equal(got, data) {
		t.Errorf("cross-page read %v", got)
	}
}

func TestUintAccessors(t *testing.T) {
	m := New()
	m.WriteUint(0x100, 0xdeadbeefcafebabe, 8)
	if got := m.ReadUint(0x100, 8); got != 0xdeadbeefcafebabe {
		t.Errorf("u64 %#x", got)
	}
	if got := m.ReadUint(0x100, 4); got != 0xcafebabe {
		t.Errorf("u32 low half %#x", got)
	}
	m.WriteUint(0x200, 0x11223344, 4)
	if got := m.ReadUint(0x200, 8); got != 0x11223344 {
		t.Errorf("u32 zero-extends: %#x", got)
	}
}

func TestXorRange(t *testing.T) {
	m := New()
	m.Write(0x40, []byte{0xf0, 0x0f})
	m.XorRange(0x40, []byte{0xff, 0xff})
	if got := m.Read(0x40, 2); !bytes.Equal(got, []byte{0x0f, 0xf0}) {
		t.Errorf("xor result %x", got)
	}
}

func TestSnapshotReplay(t *testing.T) {
	m := New()
	m.Write(0x80, []byte("old"))
	snap := m.Snapshot(0x80, 3)
	m.Write(0x80, []byte("new"))
	m.Write(0x80, snap)
	if got := m.Read(0x80, 3); string(got) != "old" {
		t.Errorf("replay got %q", got)
	}
}

func TestQuickMemoryConsistency(t *testing.T) {
	m := New()
	shadow := map[uint64]byte{}
	f := func(addr uint64, v byte) bool {
		addr %= 1 << 30
		m.StoreByte(addr, v)
		shadow[addr] = v
		return m.LoadByte(addr) == shadow[addr]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceValidity(t *testing.T) {
	s := NewAddressSpace()
	if s.Valid(0x1000) {
		t.Error("unmapped address valid")
	}
	s.MapRange(0x1000, 8192)
	for _, a := range []uint64{0x1000, 0x1fff, 0x2000, 0x2fff} {
		if !s.Valid(a) {
			t.Errorf("%#x should be valid", a)
		}
	}
	if s.Valid(0x3000) {
		t.Error("page past range valid")
	}
	if s.MappedPages() != 2 {
		t.Errorf("mapped pages %d", s.MappedPages())
	}
	s.UnmapPage(0x1000)
	if s.Valid(0x1800) {
		t.Error("unmapped page still valid")
	}
	s.MapRange(0x5000, 0) // no-op
	if s.Valid(0x5000) {
		t.Error("zero-length map mapped a page")
	}
}

func TestAddressSpaceDisabled(t *testing.T) {
	s := NewAddressSpace()
	s.Disabled = true
	if !s.Valid(0xdeadbeef) {
		t.Error("disabled translation should accept anything")
	}
}

func TestFaultLog(t *testing.T) {
	s := NewAddressSpace()
	s.Fault(0xdead)
	s.Fault(0xbeef)
	log := s.FaultLog()
	if len(log) != 2 || log[0] != 0xdead || log[1] != 0xbeef {
		t.Errorf("fault log %v", log)
	}
	// The returned slice is a copy.
	log[0] = 0
	if s.FaultLog()[0] != 0xdead {
		t.Error("FaultLog returned live slice")
	}
}

func TestTLBBehaviour(t *testing.T) {
	tlb, err := NewTLB(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Lookup(0x1000) {
		t.Error("cold TLB hit")
	}
	if !tlb.Lookup(0x1234) { // same page
		t.Error("same-page miss")
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats %d/%d", hits, misses)
	}
	tlb.Flush()
	if tlb.Lookup(0x1000) {
		t.Error("hit after flush")
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	tlb, err := NewTLB(8, 4) // 2 sets, 4 ways
	if err != nil {
		t.Fatal(err)
	}
	// Pages mapping to set 0: page numbers 0,2,4,... (pn % 2).
	pages := []uint64{0, 2, 4, 6} // fill set 0
	for _, pn := range pages {
		tlb.Lookup(pn << PageShift)
	}
	tlb.Lookup(0 << PageShift) // touch page 0: MRU
	tlb.Lookup(8 << PageShift) // evicts LRU = page 2
	if !tlb.Lookup(0 << PageShift) {
		t.Error("page 0 should survive")
	}
	if tlb.Lookup(2 << PageShift) {
		t.Error("page 2 should have been evicted")
	}
}

func TestTLBBadShape(t *testing.T) {
	if _, err := NewTLB(0, 4); err == nil {
		t.Error("0 entries accepted")
	}
	if _, err := NewTLB(10, 4); err == nil {
		t.Error("non-divisible shape accepted")
	}
}
