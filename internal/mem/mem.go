// Package mem provides the physical memory backing store and the virtual
// address validity model of the simulated machine.
//
// Physical memory is sparse (page-granular allocation) and byte-addressed.
// It stores whatever the memory controller puts there — for protected
// regions that is ciphertext plus MACs, which is exactly what an adversary
// probing the DIMMs would see. Tampering helpers operate on this store.
package mem

import "fmt"

// PageSize is the virtual/physical page size (4KB, the paper's §3.3 premise:
// the low 12 address bits survive translation untouched).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Memory is a sparse byte-addressable physical memory.
type Memory struct {
	pages map[uint64][]byte
	// One-entry page cache: simulator accesses are heavily page-local, and
	// this keeps the hot path off the map.
	lastPN   uint64
	lastPage []byte
}

// New creates an empty memory.
func New() *Memory {
	return &Memory{pages: map[uint64][]byte{}, lastPN: ^uint64(0)}
}

func (m *Memory) page(addr uint64, create bool) []byte {
	pn := addr >> PageShift
	if pn == m.lastPN {
		return m.lastPage
	}
	p, ok := m.pages[pn]
	if !ok {
		if !create {
			return nil
		}
		p = make([]byte, PageSize)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPage = pn, p
	return p
}

// LoadByte returns the byte at addr (0 if the page was never written).
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(PageSize-1)] = v
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read(addr uint64, n int) []byte {
	out := make([]byte, n)
	m.ReadInto(out, addr)
	return out
}

// ReadInto fills dst with len(dst) bytes starting at addr without
// allocating (the secure-memory controller's per-fetch path).
func (m *Memory) ReadInto(dst []byte, addr uint64) {
	for i := range dst {
		dst[i] = m.LoadByte(addr + uint64(i))
	}
}

// Write stores data starting at addr.
func (m *Memory) Write(addr uint64, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint64(i), b)
	}
}

// ReadUint reads an n-byte little-endian unsigned integer (n <= 8).
func (m *Memory) ReadUint(addr uint64, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// WriteUint stores an n-byte little-endian unsigned integer (n <= 8).
func (m *Memory) WriteUint(addr uint64, v uint64, n int) {
	for i := 0; i < n; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// XorRange XORs mask into memory at addr — the adversary's bit-flipping
// primitive against ciphertext at rest.
func (m *Memory) XorRange(addr uint64, mask []byte) {
	for i, b := range mask {
		a := addr + uint64(i)
		m.StoreByte(a, m.LoadByte(a)^b)
	}
}

// Snapshot copies n bytes for later replay (replay attacks re-Write them).
func (m *Memory) Snapshot(addr uint64, n int) []byte { return m.Read(addr, n) }

// AddressSpace models virtual address validity. The simulated machine uses
// an identity mapping (VA == PA) — sufficient for the paper's experiments —
// but tracks which pages are mapped so that wild fetch addresses fault, and
// keeps the fault log that Section 3.3's "read the displayed fault address"
// attack consumes.
type AddressSpace struct {
	valid map[uint64]bool
	// Disabled turns off translation checking entirely, as on the no-VM
	// embedded processors the paper notes (§3.3): every address is valid.
	Disabled bool
	faultLog []uint64
}

// NewAddressSpace creates an address space with no valid pages.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{valid: map[uint64]bool{}}
}

// MapRange marks [addr, addr+n) valid.
func (s *AddressSpace) MapRange(addr uint64, n uint64) {
	if n == 0 {
		return
	}
	for pn := addr >> PageShift; pn <= (addr+n-1)>>PageShift; pn++ {
		s.valid[pn] = true
	}
}

// UnmapPage invalidates the page containing addr.
func (s *AddressSpace) UnmapPage(addr uint64) { delete(s.valid, addr>>PageShift) }

// Valid reports whether addr is mapped.
func (s *AddressSpace) Valid(addr uint64) bool {
	return s.Disabled || s.valid[addr>>PageShift]
}

// MappedPages returns how many pages are mapped.
func (s *AddressSpace) MappedPages() int { return len(s.valid) }

// Fault records a translation fault for addr. Faulting addresses are logged
// in the clear: the paper observes that real systems display or log faulting
// addresses, so a fault is itself a disclosure channel.
func (s *AddressSpace) Fault(addr uint64) {
	s.faultLog = append(s.faultLog, addr)
}

// FaultLog returns all faulting addresses recorded so far.
func (s *AddressSpace) FaultLog() []uint64 {
	return append([]uint64(nil), s.faultLog...)
}

// TLB is a set-associative translation lookaside buffer timing model. It
// holds page numbers only; translation itself is identity.
type TLB struct {
	sets  int
	ways  int
	tags  [][]uint64 // page numbers; ^0 = invalid
	order [][]int    // LRU order per set: order[s][0] is MRU way
	hits  uint64
	miss  uint64
}

// NewTLB creates a TLB with the given total entries and associativity.
func NewTLB(entries, ways int) (*TLB, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("mem: bad TLB shape entries=%d ways=%d", entries, ways)
	}
	sets := entries / ways
	t := &TLB{sets: sets, ways: ways}
	t.tags = make([][]uint64, sets)
	t.order = make([][]int, sets)
	for s := 0; s < sets; s++ {
		t.tags[s] = make([]uint64, ways)
		t.order[s] = make([]int, ways)
		for w := 0; w < ways; w++ {
			t.tags[s][w] = ^uint64(0)
			t.order[s][w] = w
		}
	}
	return t, nil
}

// Lookup probes the TLB for addr's page, filling on miss, and reports hit.
func (t *TLB) Lookup(addr uint64) bool {
	pn := addr >> PageShift
	set := int(pn % uint64(t.sets))
	for _, w := range t.order[set] {
		if t.tags[set][w] == pn {
			t.touch(set, w)
			t.hits++
			return true
		}
	}
	t.miss++
	victim := t.order[set][t.ways-1]
	t.tags[set][victim] = pn
	t.touch(set, victim)
	return false
}

func (t *TLB) touch(set, way int) {
	ord := t.order[set]
	for i, w := range ord {
		if w == way {
			copy(ord[1:i+1], ord[:i])
			ord[0] = way
			return
		}
	}
}

// Stats returns hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.miss }

// Flush invalidates all entries.
func (t *TLB) Flush() {
	for s := range t.tags {
		for w := range t.tags[s] {
			t.tags[s][w] = ^uint64(0)
		}
	}
}
