// Package workload generates the 18 synthetic benchmark kernels that stand
// in for the paper's SPEC2000 selection (9 INT + 9 FP, chosen for high L2
// miss rates and memory throughput, §5.1).
//
// Each kernel is emitted as assembly for the authpoint ISA and mimics the
// *memory behaviour class* of its namesake — pointer chasing for mcf,
// streaming stencils for swim/mgrid, random table lookups for twolf/vortex,
// sparse gathers for equake, and so on — because the paper's results depend
// on L2 miss rate, memory-level parallelism, and whether the critical path
// consumes loaded values, not on the benchmarks' source semantics. The
// substitution is documented in DESIGN.md.
//
// Kernels run forever (outer loops sized beyond any realistic instruction
// budget); the harness stops them at its committed-instruction budget after
// a warmup window, mirroring the paper's SimPoint fast-forward + 400M-inst
// methodology at simulation-friendly scale.
package workload

import "fmt"

// Workload describes one synthetic benchmark.
type Workload struct {
	Name string
	FP   bool
	// Source is the full assembly text.
	Source string
	// MemBound marks kernels whose IPC is dominated by memory latency
	// (harnesses may budget fewer instructions for them).
	MemBound bool
	// InitInsts approximates the committed-instruction length of the
	// kernel's data-structure build phase. Harnesses add it to their warmup
	// so measurement windows land in steady state.
	InitInsts uint64
}

// All returns the 18 kernels in presentation order (INT then FP).
func All() []Workload {
	return append(INT(), FP()...)
}

// INT returns the 9 integer kernels.
func INT() []Workload {
	return []Workload{
		bzip2x(), gccx(), gapx(), gzipx(), mcfx(), parserx(), twolfx(), vortexx(), vprx(),
	}
}

// FP returns the 9 floating-point kernels.
func FP() []Workload {
	return []Workload{
		ammpx(), applux(), artx(), equakex(), facerecx(), lucasx(), mgridx(), swimx(), wupwisex(),
	}
}

// byName indexes the catalog once at init — ByName sits on sweep-setup hot
// paths (every cell spec names its kernel) and the sources are pure
// functions of constants, so building each lookup from scratch was pure
// waste.
var byName = func() map[string]Workload {
	m := make(map[string]Workload, len(All()))
	for _, w := range All() {
		if _, dup := m[w.Name]; dup {
			panic("workload: duplicate kernel name " + w.Name)
		}
		m[w.Name] = w
	}
	return m
}()

// ByName looks a kernel up.
func ByName(name string) (Workload, bool) {
	w, ok := byName[name]
	return w, ok
}

// Shared constants: the outer-loop count is effectively infinite relative to
// instruction budgets.
const forever = 1 << 30

// lcgStep emits x' = x*a + c (64-bit LCG) into reg using tmp as scratch.
// a is loaded once into areg by the prologue.
func lcgStep(reg, areg string) string {
	return fmt.Sprintf(`	mul  %[1]s, %[1]s, %[2]s
	addi %[1]s, %[1]s, 12345
`, reg, areg)
}

// mcfx mimics mcf: pointer chasing over a 1MB network of 64B nodes with
// four independent chains (mcf's modest memory-level parallelism). Very
// high L2 miss rate, load-dependent critical path.
func mcfx() Workload {
	const (
		nodes  = 16384 // 16384 * 64B = 1MB
		stride = 5651  // co-prime with nodes: a full cycle through the pool
	)
	src := fmt.Sprintf(`
; mcfx: pointer-chasing network simplex analogue
_start:
	la   r1, nodes          ; base
	addi r2, r0, 0          ; i
	li   r3, %d             ; N
build:
	addi r4, r2, %d         ; t = i + stride
	blt  r4, r3, nowrap
	sub  r4, r4, r3
nowrap:
	slli r5, r4, 6          ; t*64
	add  r5, r5, r1         ; next ptr
	slli r6, r2, 6
	add  r6, r6, r1         ; &node[i]
	sd   r5, 0(r6)
	addi r2, r2, 1
	bne  r2, r3, build

	; four chase chains starting at quarter offsets
	mov  r5, r1
	li   r6, %d
	slli r7, r6, 6
	add  r6, r1, r7         ; chain 2 start
	li   r8, %d
	slli r7, r8, 6
	add  r8, r1, r7         ; chain 3 start (reuses r7 scratch)
	li   r9, %d
	slli r7, r9, 6
	add  r9, r1, r7         ; chain 4 start
	li   r10, %d
chase:
	ld   r5, 0(r5)
	ld   r6, 0(r6)
	ld   r8, 0(r8)
	ld   r9, 0(r9)
	addi r10, r10, -1
	bne  r10, r0, chase
	add  r11, r5, r6        ; keep results live
	halt
.data
nodes: .space %d
`, nodes, stride, nodes/4, nodes/2, 3*nodes/4, forever, nodes*64)
	return Workload{Name: "mcfx", Source: src, MemBound: true, InitInsts: 140_000}
}

// twolfx mimics twolf: random reads and read-modify-writes of small
// structures scattered over a 2MB array. High miss rate, little ILP.
func twolfx() Workload {
	src := fmt.Sprintf(`
; twolfx: random cell swaps over a placement array
_start:
	la   r1, cells
	li   r2, 987654321      ; lcg state
	li   r3, 25214903917
	li   r4, %d             ; iterations
	li   r5, 0x1fffc0       ; mask to 2MB, 64B aligned
loop:
%s	and  r6, r2, r5
	add  r6, r6, r1
	ld   r7, 0(r6)          ; read cell
	addi r7, r7, 1
	sd   r7, 0(r6)          ; write back (dirty lines -> writebacks)
%s	and  r8, r2, r5
	add  r8, r8, r1
	ld   r9, 0(r8)
	add  r10, r7, r9
	addi r4, r4, -1
	bne  r4, r0, loop
	halt
.data
cells: .space 2097152
`, forever, lcgStep("r2", "r3"), lcgStep("r2", "r3"))
	return Workload{Name: "twolfx", Source: src, MemBound: true}
}

// vprx mimics vpr: random graph-neighbour lookups (independent random
// loads, good MLP) with an accept/reject branch.
func vprx() Workload {
	src := fmt.Sprintf(`
; vprx: placement cost probes
_start:
	la   r1, grid
	li   r2, 31415926535
	li   r3, 25214903917
	li   r4, %d
	li   r5, 0x3fff8        ; 256K window, 8B aligned
	addi r11, r0, 0         ; cost accumulator
loop:
%s	and  r6, r2, r5
	add  r6, r6, r1
	ld   r7, 0(r6)
%s	and  r8, r2, r5
	add  r8, r8, r1
	ld   r9, 0(r8)
	sub  r10, r7, r9
	bge  r10, r0, accept
	sub  r10, r0, r10       ; |delta|
accept:
	add  r11, r11, r10
	addi r4, r4, -1
	bne  r4, r0, loop
	halt
.data
grid: .space 4194304
`, forever, lcgStep("r2", "r3"), lcgStep("r2", "r3"))
	// Window is 256KB of a 4MB array: high locality pressure right at the
	// L2 capacity boundary... widen with a second window region below.
	return Workload{Name: "vprx", Source: src, MemBound: true}
}

// vortexx mimics vortex: hash-table object store — hashed lookups with
// occasional inserts (stores), moderate-to-high miss rate.
func vortexx() Workload {
	src := fmt.Sprintf(`
; vortexx: OO database hash probes
_start:
	la   r1, table
	li   r2, 2718281828
	li   r3, 25214903917
	li   r4, %d
	li   r5, 0x3fffc0       ; 4MB, 64B-bucket aligned
loop:
%s	and  r6, r2, r5
	add  r6, r6, r1         ; bucket
	ld   r7, 0(r6)          ; key slot
	bne  r7, r0, probe2     ; collision probe
	sd   r2, 0(r6)          ; insert
	b    next
probe2:
	ld   r8, 8(r6)
	ld   r9, 16(r6)
	add  r10, r8, r9
	sd   r10, 24(r6)
next:
	addi r4, r4, -1
	bne  r4, r0, loop
	halt
.data
table: .space 4194304
`, forever, lcgStep("r2", "r3"))
	return Workload{Name: "vortexx", Source: src, MemBound: true}
}

// parserx mimics parser: short linked-list walks with insertions —
// dependent loads over a medium working set plus dictionary lookups.
func parserx() Workload {
	const lists = 4096 // list heads
	src := fmt.Sprintf(`
; parserx: dictionary list walks
_start:
	; build: heads[i] -> chain of 8 nodes laid out with a large stride
	la   r1, heads
	la   r2, pool
	addi r3, r0, 0          ; i
	li   r4, %d             ; lists
build:
	slli r5, r3, 3
	add  r5, r5, r1         ; &heads[i]
	; chain node addresses: pool + ((i*8+k)*521 %% 32768)*64
	addi r6, r0, 0          ; k
	mov  r7, r5             ; prev slot
buildchain:
	slli r8, r3, 3
	add  r8, r8, r6         ; i*8+k
	li   r9, 521
	mul  r8, r8, r9
	andi r9, r8, 0x7fff
	slli r9, r9, 6
	add  r9, r9, r2         ; node addr
	sd   r9, 0(r7)
	mov  r7, r9
	addi r6, r6, 1
	addi r10, r6, -8
	bne  r10, r0, buildchain
	sd   r0, 0(r7)          ; terminate
	addi r3, r3, 1
	bne  r3, r4, build

	; walk phase
	li   r11, %d
	li   r12, 1103515245
	li   r13, 25214903917
walk:
%s	andi r3, r12, 0xfff     ; pick a list
	slli r3, r3, 3
	add  r3, r3, r1
	ld   r5, 0(r3)          ; head
walkchain:
	beq  r5, r0, done
	ld   r5, 0(r5)          ; next (dependent load)
	b    walkchain
done:
	addi r11, r11, -1
	bne  r11, r0, walk
	halt
.data
heads: .space 32768
pool:  .space 2097152
`, lists, forever, lcgStep("r12", "r13"))
	return Workload{Name: "parserx", Source: src, MemBound: true, InitInsts: 380_000}
}

// gccx mimics gcc: branchy traversal of a medium working set with mixed
// ALU work — moderate miss rate, frequent mispredictions.
func gccx() Workload {
	src := fmt.Sprintf(`
; gccx: RTL-walk analogue
_start:
	la   r1, ir
	li   r2, 42424242
	li   r3, 25214903917
	li   r4, %d
	li   r5, 0xffff8        ; 1MB window
	addi r11, r0, 0
loop:
%s	and  r6, r2, r5
	add  r6, r6, r1
	ld   r7, 0(r6)
	andi r8, r7, 3          ; "opcode class"
	beq  r8, r0, c0
	addi r9, r8, -1
	beq  r9, r0, c1
	addi r9, r8, -2
	beq  r9, r0, c2
	xor  r11, r11, r7       ; c3
	b    next
c0:
	add  r11, r11, r7
	b    next
c1:
	sub  r11, r11, r7
	b    next
c2:
	srli r10, r7, 3
	add  r11, r11, r10
next:
	ld   r9, 8(r6)          ; second field
	add  r11, r11, r9
	addi r4, r4, -1
	bne  r4, r0, loop
	halt
.data
ir: .space 1048640
`, forever, lcgStep("r2", "r3"))
	return Workload{Name: "gccx", Source: src, MemBound: true}
}

// bzip2x mimics bzip2: byte-granular scanning with small-table histogram
// updates — streaming reads plus hot-table stores, branchy inner loop.
func bzip2x() Workload {
	src := fmt.Sprintf(`
; bzip2x: byte histogram + run detection
_start:
	la   r1, buf
	la   r2, hist
	li   r4, %d             ; outer
outer:
	mov  r5, r1
	li   r6, 262144         ; bytes per pass
	addi r7, r0, -1         ; prev byte
inner:
	lbu  r8, 0(r5)
	slli r9, r8, 3
	add  r9, r9, r2
	ld   r10, 0(r9)         ; hist[b]
	addi r10, r10, 1
	sd   r10, 0(r9)
	bne  r8, r7, norun
	addi r11, r11, 1        ; run length bonus
norun:
	mov  r7, r8
	addi r5, r5, 1
	addi r6, r6, -1
	bne  r6, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
hist: .space 2048
buf:  .space 262144, 0x41
`, forever)
	return Workload{Name: "bzip2x", Source: src, MemBound: false}
}

// gzipx mimics gzip: LZ77 hash-chain matching — hashed lookups into a
// window plus sequential input scanning.
func gzipx() Workload {
	src := fmt.Sprintf(`
; gzipx: LZ hash-chain analogue
_start:
	la   r1, window
	la   r2, hashtab
	li   r3, %d
	addi r4, r0, 0          ; pos
	li   r5, 0x7fff8        ; window mask (512KB)
	li   r6, 0x1fff8        ; hash mask (128KB table)
loop:
	and  r7, r4, r5
	add  r7, r7, r1
	ld   r8, 0(r7)          ; input word
	mul  r9, r8, r8         ; "hash"
	srli r9, r9, 17
	and  r9, r9, r6
	add  r9, r9, r2
	ld   r10, 0(r9)         ; chain head
	sd   r4, 0(r9)          ; update head
	sub  r11, r4, r10       ; match distance
	addi r4, r4, 8
	addi r3, r3, -1
	bne  r3, r0, loop
	halt
.data
hashtab: .space 131072
window:  .space 524288, 0x55
`, forever)
	return Workload{Name: "gzipx", Source: src, MemBound: true}
}

// gapx mimics gap: word-granular big-integer arithmetic — long sequential
// passes with full ILP, misses only at streaming edges.
func gapx() Workload {
	src := fmt.Sprintf(`
; gapx: multi-word add/scale passes
_start:
	la   r1, a
	la   r2, b
	li   r4, %d
outer:
	mov  r5, r1
	mov  r6, r2
	li   r7, 16384          ; words per pass
	addi r8, r0, 0          ; carry-ish
inner:
	ld   r9, 0(r5)
	ld   r10, 0(r6)
	add  r11, r9, r10
	add  r11, r11, r8
	sltu r8, r11, r9        ; carry out
	sd   r11, 0(r6)
	addi r5, r5, 8
	addi r6, r6, 8
	addi r7, r7, -1
	bne  r7, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
a: .space 131072, 0x77
b: .space 131072, 0x11
`, forever)
	return Workload{Name: "gapx", Source: src, MemBound: false}
}

// swimx mimics swim: pure streaming stencils over grids far beyond the L2 —
// the highest memory throughput of the set.
func swimx() Workload {
	src := fmt.Sprintf(`
; swimx: shallow-water stencil sweep
_start:
	la   r1, u
	la   r2, v
	la   r3, p
	li   r4, %d
outer:
	mov  r5, r1
	mov  r6, r2
	mov  r7, r3
	li   r8, 32768          ; points per sweep (x8B = 256KB per array)
inner:
	fld  f1, 0(r5)
	fld  f2, 0(r6)
	fld  f3, 8(r5)          ; east neighbour
	fadd f4, f1, f2
	fmul f5, f4, f3
	fsd  f5, 0(r7)
	addi r5, r5, 8
	addi r6, r6, 8
	addi r7, r7, 8
	addi r8, r8, -1
	bne  r8, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
u: .space 262208
v: .space 262208
p: .space 262208
`, forever)
	return Workload{Name: "swimx", FP: true, Source: src, MemBound: true}
}

// mgridx mimics mgrid: multigrid relaxation — streaming with a 3-point
// stencil and longer FP dependence chains than swim.
func mgridx() Workload {
	src := fmt.Sprintf(`
; mgridx: 1D multigrid smoother sweeps
_start:
	la   r1, fine
	la   r2, coarse
	li   r4, %d
outer:
	mov  r5, r1
	mov  r6, r2
	li   r8, 49152
inner:
	fld  f1, 0(r5)
	fld  f2, 8(r5)
	fld  f3, 16(r5)
	fadd f4, f1, f3
	fmul f5, f4, f2
	fadd f6, f5, f2
	fsd  f6, 0(r6)
	addi r5, r5, 8
	addi r6, r6, 8
	addi r8, r8, -1
	bne  r8, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
fine:   .space 393280
coarse: .space 393280
`, forever)
	return Workload{Name: "mgridx", FP: true, Source: src, MemBound: true}
}

// applux mimics applu: blocked PDE solve — streaming FP with divides
// (longer FU latencies) and two concurrent arrays.
func applux() Workload {
	src := fmt.Sprintf(`
; applux: SSOR-style sweep with divides
_start:
	la   r1, rhs
	la   r2, lhs
	li   r4, %d
outer:
	mov  r5, r1
	mov  r6, r2
	li   r8, 24576
inner:
	fld  f1, 0(r5)
	fld  f2, 0(r6)
	fdiv f3, f1, f2
	fadd f4, f3, f1
	fsd  f4, 0(r6)
	addi r5, r5, 8
	addi r6, r6, 8
	addi r8, r8, -1
	bne  r8, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
rhs: .space 196608, 0x3f
lhs: .space 196608, 0x3f
`, forever)
	return Workload{Name: "applux", FP: true, Source: src, MemBound: true}
}

// artx mimics art: neural-net F1 layer scan — stream a large weight matrix
// against a resident input vector, multiply-accumulate.
func artx() Workload {
	src := fmt.Sprintf(`
; artx: ART weight-matrix scan
_start:
	la   r1, weights
	la   r2, input
	li   r4, %d
outer:
	mov  r5, r1
	li   r8, 65536          ; weights per pass (512KB)
	addi r9, r0, 0          ; input index
	fadd f6, f7, f7         ; accumulator reset (f7 stays 0)
inner:
	fld  f1, 0(r5)
	andi r10, r9, 0x3f8     ; input vector wraps in 1KB (stays cached)
	add  r11, r10, r2
	fld  f2, 0(r11)
	fmul f3, f1, f2
	fadd f6, f6, f3
	addi r5, r5, 8
	addi r9, r9, 8
	addi r8, r8, -1
	bne  r8, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
input:   .space 1024, 0x3e
weights: .space 524288, 0x3d
`, forever)
	return Workload{Name: "artx", FP: true, Source: src, MemBound: true}
}

// equakex mimics equake: sparse matrix-vector product — indexed gathers
// driven by an index array, FP accumulate.
func equakex() Workload {
	src := fmt.Sprintf(`
; equakex: sparse MxV gather
_start:
	; build index array: idx[i] = (i*2654435761) %% 262144, 8-aligned
	la   r1, idx
	la   r2, vec
	addi r3, r0, 0
	li   r4, 65536          ; nnz
	li   r5, 2654435761
	li   r12, 0x3fff8
build:
	mul  r6, r3, r5
	and  r7, r6, r12
	slli r8, r3, 3
	add  r8, r8, r1
	sd   r7, 0(r8)
	addi r3, r3, 1
	bne  r3, r4, build

	la   r9, mat
	li   r11, %d
outer:
	mov  r3, r1             ; idx cursor
	mov  r10, r9            ; mat cursor
	li   r4, 65536
	fadd f6, f7, f7         ; y = 0
inner:
	ld   r5, 0(r3)          ; column index
	add  r5, r5, r2
	fld  f1, 0(r5)          ; x[col] gather
	fld  f2, 0(r10)         ; A value
	fmul f3, f1, f2
	fadd f6, f6, f3
	addi r3, r3, 8
	addi r10, r10, 8
	addi r4, r4, -1
	bne  r4, r0, inner
	addi r11, r11, -1
	bne  r11, r0, outer
	halt
.data
idx: .space 524288
vec: .space 262144, 0x3c
mat: .space 524288, 0x3b
`, forever)
	return Workload{Name: "equakex", FP: true, Source: src, MemBound: true, InitInsts: 480_000}
}

// facerecx mimics facerec: power-of-two strided passes (transform-like),
// producing cache-set conflicts and row-buffer misses.
func facerecx() Workload {
	src := fmt.Sprintf(`
; facerecx: strided gabor-bank passes
_start:
	la   r1, img
	li   r2, 0x1ffff8       ; offset mask (2MB, 8B aligned)
	li   r4, %d
	addi r12, r0, 0         ; phase
outer:
	andi r13, r12, 7
	slli r13, r13, 9        ; stride in {512..4096} step 512
	addi r13, r13, 512
	addi r5, r0, 0          ; offset
	li   r8, 4096
inner:
	add  r9, r5, r1         ; element address
	fld  f1, 0(r9)
	fld  f2, 8(r9)
	fmul f3, f1, f2
	fadd f4, f3, f1
	fsd  f4, 8(r9)
	add  r5, r5, r13        ; strided walk, wraps in the image
	and  r5, r5, r2
	addi r8, r8, -1
	bne  r8, r0, inner
	addi r12, r12, 1
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
img: .space 2097216, 0x3a
`, forever)
	return Workload{Name: "facerecx", FP: true, Source: src, MemBound: true}
}

// lucasx mimics lucas: FFT-style butterfly passes — paired strided loads
// with FP add/sub and write-back of both halves.
func lucasx() Workload {
	src := fmt.Sprintf(`
; lucasx: butterfly passes
_start:
	la   r1, re
	li   r4, %d
outer:
	mov  r5, r1
	li   r6, 131072         ; half-span in bytes (128KB)
	li   r8, 16384          ; butterflies per pass
inner:
	fld  f1, 0(r5)
	add  r7, r5, r6
	fld  f2, 0(r7)
	fadd f3, f1, f2
	fsub f4, f1, f2
	fsd  f3, 0(r5)
	fsd  f4, 0(r7)
	addi r5, r5, 8
	addi r8, r8, -1
	bne  r8, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
re: .space 262144, 0x39
`, forever)
	return Workload{Name: "lucasx", FP: true, Source: src, MemBound: true}
}

// ammpx mimics ammp: molecular dynamics with neighbour lists — indexed
// gathers of atom records plus FP force computation.
func ammpx() Workload {
	src := fmt.Sprintf(`
; ammpx: neighbour-list force loop
_start:
	; neighbour list: nb[i] = (i*40503) %% 32768 atom index
	la   r1, nb
	la   r2, atoms
	addi r3, r0, 0
	li   r4, 32768
	li   r5, 40503
build:
	mul  r6, r3, r5
	andi r6, r6, 0x7fff
	slli r6, r6, 5          ; *32B atom record
	slli r7, r3, 3
	add  r7, r7, r1
	sd   r6, 0(r7)
	addi r3, r3, 1
	bne  r3, r4, build

	li   r11, %d
outer:
	mov  r3, r1
	li   r4, 32768
	fadd f6, f7, f7
inner:
	ld   r5, 0(r3)
	add  r5, r5, r2
	fld  f1, 0(r5)          ; x
	fld  f2, 8(r5)          ; y
	fmul f3, f1, f1
	fmul f4, f2, f2
	fadd f5, f3, f4         ; r^2
	fadd f6, f6, f5
	addi r3, r3, 8
	addi r4, r4, -1
	bne  r4, r0, inner
	addi r11, r11, -1
	bne  r11, r0, outer
	halt
.data
nb:    .space 262144
atoms: .space 1048576, 0x38
`, forever)
	return Workload{Name: "ammpx", FP: true, Source: src, MemBound: true, InitInsts: 280_000}
}

// wupwisex mimics wupwise: dense blocked matrix kernels — FP compute
// bound, working set near L2 capacity.
func wupwisex() Workload {
	src := fmt.Sprintf(`
; wupwisex: blocked zgemm-like kernel
_start:
	la   r1, a
	la   r2, b
	la   r3, c
	li   r4, %d
outer:
	mov  r5, r1
	mov  r6, r2
	mov  r7, r3
	li   r8, 8192           ; 64KB blocks: mostly L2 resident
inner:
	fld  f1, 0(r5)
	fld  f2, 0(r6)
	fld  f3, 0(r7)
	fmul f4, f1, f2
	fadd f5, f4, f3
	fmul f6, f5, f1
	fadd f7, f6, f2
	fsd  f7, 0(r7)
	addi r5, r5, 8
	addi r6, r6, 8
	addi r7, r7, 8
	addi r8, r8, -1
	bne  r8, r0, inner
	addi r4, r4, -1
	bne  r4, r0, outer
	halt
.data
a: .space 65536, 0x37
b: .space 65536, 0x36
c: .space 65536, 0x35
`, forever)
	return Workload{Name: "wupwisex", FP: true, Source: src, MemBound: false}
}
