package workload

import (
	"strings"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/pipeline"
	"authpoint/internal/sim"
)

func TestCatalogShape(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("%d workloads, want 18", len(all))
	}
	if len(INT()) != 9 || len(FP()) != 9 {
		t.Fatalf("INT %d FP %d", len(INT()), len(FP()))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if !strings.HasSuffix(w.Name, "x") {
			t.Errorf("workload %q should carry the synthetic-analogue suffix", w.Name)
		}
	}
	for _, w := range FP() {
		if !w.FP {
			t.Errorf("%s not marked FP", w.Name)
		}
	}
	if _, ok := ByName("mcfx"); !ok {
		t.Error("ByName(mcfx) failed")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName(nosuch) succeeded")
	}
}

// TestAllNamesUnique pins the invariant the ByName index relies on: every
// catalog entry has a distinct name, and the index agrees with a linear
// scan of All() field for field.
func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		got, ok := ByName(w.Name)
		if !ok {
			t.Fatalf("ByName(%q) missing", w.Name)
		}
		if got != w {
			t.Errorf("ByName(%q) disagrees with All()", w.Name)
		}
	}
}

func TestAllWorkloadsAssemble(t *testing.T) {
	for _, w := range All() {
		if _, err := asm.Assemble(w.Source); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// Every kernel must run fault-free for a short instruction budget on the
// full machine and actually use its FP/memory character.
func TestAllWorkloadsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := asm.Assemble(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.DefaultConfig()
			cfg.Scheme = sim.SchemeThenCommit
			cfg.MaxInsts = 30_000
			m, err := sim.NewMachine(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Reason != sim.StopMaxInsts {
				k, pc, addr := m.Core.Faulted()
				t.Fatalf("stopped with %v (fault %v pc=%#x addr=%#x)", res.Reason, k, pc, addr)
			}
			if res.IPC <= 0 || res.IPC > 8 {
				t.Errorf("IPC %.3f out of range", res.IPC)
			}
			if w.MemBound && res.Sec.Fetches == 0 {
				t.Errorf("mem-bound kernel performed no external fetches")
			}
			_ = pipeline.FaultNone
		})
	}
}

// Memory-bound kernels must actually miss in the L2 during a measured
// window, otherwise the figures would be flat.
func TestMemBoundKernelsMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, w := range All() {
		if !w.MemBound {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := asm.Assemble(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.DefaultConfig()
			cfg.MaxInsts = 60_000
			m, err := sim.NewMachine(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			_, _, l2 := m.MS.Caches()
			s := l2.Stats()
			missRate := float64(s.Misses) / float64(s.Hits+s.Misses)
			if s.Misses < 100 {
				t.Errorf("only %d L2 misses (rate %.3f)", s.Misses, missRate)
			}
		})
	}
}
