// Package policy defines authentication control points as first-class,
// composable values. The paper evaluates seven fixed design points; its
// actual contribution is the *space* those points are drawn from — where in
// the machine completed integrity verification must gate forward progress.
// This package spans that space with orthogonal gate dimensions so any
// lattice point (then-write+fetch, then-issue+obfuscation, every 3-way
// combo) is expressible without touching the simulator:
//
//	GateIssue   — verification gates instruction issue and operand use
//	GateWrite   — committed stores wait for their authentication tag
//	GateCommit  — verification gates instruction retirement
//	GateFetch   — new external fetches wait for the auth queue
//	Obfuscate   — HIDE-style address obfuscation (re-map cache)
//	PAC         — pointer authentication; failed auth poisons the pointer
//	              (fault at next use/translation)
//	PACFault    — FPAC refinement of PAC: failed auth faults at the auth
//	              instruction itself (subsumes PAC)
//
// plus Authenticate=false for the decrypt-only normalization baseline (the
// zero ControlPoint). Canonical points live in a registry keyed by name;
// Parse additionally accepts any composition spelled from the gate grammar
// ("authen-then-commit+fetch", "then-write+fetch", "commit+obfuscation").
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ControlPoint is one point of the authentication control-point lattice:
// a set of orthogonal gate dimensions. The zero value is the decrypt-only
// baseline. ControlPoint is a comparable value type — equal gate sets are
// the same control point, wherever they came from.
type ControlPoint struct {
	// Authenticate enables integrity verification at all. False only for
	// the baseline: every gate implies verification (see Normalize).
	Authenticate bool
	// GateIssue: an instruction may not issue, nor its loaded operands be
	// used, before the lines they came from verified (authen-then-issue).
	GateIssue bool
	// GateWrite: committed stores drain to memory only after their
	// authentication tag clears (authen-then-write).
	GateWrite bool
	// GateCommit: the RUU head may not retire before its instruction and
	// operand lines verified (authen-then-commit).
	GateCommit bool
	// GateFetch: a new external fetch may not be granted before the
	// verification requests outstanding at its creation drained
	// (authen-then-fetch).
	GateFetch bool
	// Obfuscate: HIDE-style address obfuscation via the re-map cache.
	Obfuscate bool
	// PAC enables the pointer-authentication instructions' check: a failed
	// auth yields a poisoned pointer that faults at its next use
	// (fault-at-translation). Orthogonal to the memory-integrity gates —
	// PAC checks provenance of pointer *values*, not of fetched lines.
	PAC bool
	// PACFault is the FPAC refinement: a failed auth faults architecturally
	// at the auth instruction. Implies PAC (see Normalize); the pair
	// "pac+fpac" is not a distinct point.
	PACFault bool
}

// Predefined lattice points: the paper's seven plus detection-only.
var (
	// Baseline is decryption only — the zero ControlPoint.
	Baseline = ControlPoint{}
	// AuthOnly verifies every line but gates nothing: tampering is
	// detected (eventually) while execution runs ahead unchecked.
	AuthOnly = ControlPoint{Authenticate: true}
	// ThenIssue is authen-then-issue.
	ThenIssue = ControlPoint{Authenticate: true, GateIssue: true}
	// ThenWrite is authen-then-write.
	ThenWrite = ControlPoint{Authenticate: true, GateWrite: true}
	// ThenCommit is authen-then-commit.
	ThenCommit = ControlPoint{Authenticate: true, GateCommit: true}
	// ThenFetch is authen-then-fetch.
	ThenFetch = ControlPoint{Authenticate: true, GateFetch: true}
	// CommitPlusFetch is the paper's recommended secure-and-fast point.
	CommitPlusFetch = ControlPoint{Authenticate: true, GateCommit: true, GateFetch: true}
	// CommitPlusObfuscation closes the passive address channel on top of
	// then-commit.
	CommitPlusObfuscation = ControlPoint{Authenticate: true, GateCommit: true, Obfuscate: true}
	// ThenPAC enables pointer authentication in poison mode: a failed auth
	// faults at the pointer's next use.
	ThenPAC = ControlPoint{Authenticate: true, PAC: true}
	// ThenFPAC is FPAC-style pointer authentication: a failed auth faults
	// at the auth instruction itself.
	ThenFPAC = ControlPoint{Authenticate: true, PAC: true, PACFault: true}
)

// Compose returns the join of two lattice points: the union of their gates.
// Composing anything with the baseline returns the other point.
func Compose(a, b ControlPoint) ControlPoint {
	return ControlPoint{
		Authenticate: a.Authenticate || b.Authenticate,
		GateIssue:    a.GateIssue || b.GateIssue,
		GateWrite:    a.GateWrite || b.GateWrite,
		GateCommit:   a.GateCommit || b.GateCommit,
		GateFetch:    a.GateFetch || b.GateFetch,
		Obfuscate:    a.Obfuscate || b.Obfuscate,
		PAC:          a.PAC || b.PAC,
		PACFault:     a.PACFault || b.PACFault,
	}
}

// Normalize returns the point with the Authenticate invariant restored: any
// gate (or obfuscation) implies verification. Hand-built literals that set a
// gate without Authenticate mean the gated point, not a machine that stalls
// on verifications that never run.
func (p ControlPoint) Normalize() ControlPoint {
	if p.PACFault {
		p.PAC = true
	}
	if p.GateIssue || p.GateWrite || p.GateCommit || p.GateFetch || p.Obfuscate || p.PAC {
		p.Authenticate = true
	}
	return p
}

// IsBaseline reports whether the point is the decrypt-only baseline.
func (p ControlPoint) IsBaseline() bool { return p.Normalize() == Baseline }

// Subsumes reports the lattice partial order: p's gate set contains o's, so
// o is reachable from p by removing gates. Every point subsumes the
// baseline, and every point subsumes itself. Differential checks use this to
// state metamorphic timing invariants (a point never runs faster than the
// points it subsumes).
func (p ControlPoint) Subsumes(o ControlPoint) bool {
	p = p.Normalize()
	return Compose(p, o.Normalize()) == p
}

// dimension is one composable axis of the lattice.
type dimension struct {
	name  string
	point ControlPoint
}

// dimensions lists the gate axes in canonical (presentation) order; String
// renders components in this order and Parse accepts them in any order.
var dimensions = []dimension{
	{"issue", ThenIssue},
	{"write", ThenWrite},
	{"commit", ThenCommit},
	{"fetch", ThenFetch},
	{"obfuscation", ControlPoint{Authenticate: true, Obfuscate: true}},
	{"pac", ThenPAC},
	{"fpac", ThenFPAC},
}

// Components returns the point's gate dimensions in canonical order
// ("commit", "fetch", ...). Baseline and AuthOnly have none. The fpac
// dimension subsumes pac, so a PACFault point names only "fpac" — the
// canonical name of any point is duplicate-free.
func (p ControlPoint) Components() []string {
	var out []string
	p = p.Normalize()
	for _, d := range dimensions {
		if d.name == "pac" && p.PACFault {
			continue
		}
		if Compose(p, d.point) == p {
			out = append(out, d.name)
		}
	}
	return out
}

// String renders the canonical name: "baseline", "authen-only", or
// "authen-then-" plus the "+"-joined components in canonical order
// ("authen-then-commit+fetch"). Parse round-trips every rendering.
func (p ControlPoint) String() string {
	p = p.Normalize()
	if !p.Authenticate {
		return "baseline"
	}
	parts := p.Components()
	if len(parts) == 0 {
		return "authen-only"
	}
	return "authen-then-" + strings.Join(parts, "+")
}

// MarshalText implements encoding.TextMarshaler with the canonical name.
func (p ControlPoint) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler via Parse.
func (p *ControlPoint) UnmarshalText(b []byte) error {
	pt, err := Parse(string(b))
	if err != nil {
		return err
	}
	*p = pt
	return nil
}

// Parse resolves a control-point name: a registered canonical name first,
// then the composition grammar — an optional "authen-then-"/"then-" prefix
// followed by "+"-separated gate dimensions (issue, write, commit, fetch,
// obfuscation). The legacy short names ("commit+fetch",
// "commit+obfuscation") parse through the grammar. Unknown names error with
// the registered canonical names.
func Parse(name string) (ControlPoint, error) {
	if p, ok := Lookup(name); ok {
		return p, nil
	}
	body := strings.TrimPrefix(name, "authen-then-")
	body = strings.TrimPrefix(body, "then-")
	p := ControlPoint{Authenticate: true}
	ok := body != ""
	for _, part := range strings.Split(body, "+") {
		found := false
		for _, d := range dimensions {
			if d.name == part {
				next := Compose(p, d.point)
				if next == p {
					ok = false // duplicate component
				}
				p, found = next, true
				break
			}
		}
		if !found {
			ok = false
			break
		}
	}
	if !ok {
		return ControlPoint{}, fmt.Errorf(
			"policy: unknown control point %q (registered: %s; or compose gates like %q from issue, write, commit, fetch, obfuscation, pac, fpac)",
			name, strings.Join(Names(), ", "), "authen-then-commit+fetch")
	}
	return p, nil
}

// --- registry ---------------------------------------------------------------

// Entry is one registered canonical control point.
type Entry struct {
	Name  string
	Point ControlPoint
	// Doc is a one-line description for listings.
	Doc string
}

var (
	regMu   sync.RWMutex
	regList []Entry
	regName map[string]ControlPoint
)

// Register adds a canonical name for a control point. Names must be unique;
// the composition grammar keeps working alongside registered names, so a
// registration only adds an alias and a listing entry, never semantics.
func Register(name string, p ControlPoint, doc string) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regName[name]; dup {
		return fmt.Errorf("policy: %q already registered", name)
	}
	p = p.Normalize()
	regName[name] = p
	regList = append(regList, Entry{Name: name, Point: p, Doc: doc})
	return nil
}

// MustRegister is Register that panics on error (init-time registration).
func MustRegister(name string, p ControlPoint, doc string) {
	if err := Register(name, p, doc); err != nil {
		panic(err)
	}
}

// Lookup resolves a registered canonical name.
func Lookup(name string) (ControlPoint, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := regName[name]
	return p, ok
}

// Registered returns the canonical entries in registration order.
func Registered() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Entry, len(regList))
	copy(out, regList)
	return out
}

// Names returns the registered canonical names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regList))
	for i, e := range regList {
		out[i] = e.Name
	}
	return out
}

func init() {
	regName = map[string]ControlPoint{}
	MustRegister("baseline", Baseline, "decryption only, no integrity verification (normalization baseline)")
	MustRegister("authen-then-issue", ThenIssue, "verification gates instruction issue and operand use")
	MustRegister("authen-then-write", ThenWrite, "committed stores wait for their authentication tag")
	MustRegister("authen-then-commit", ThenCommit, "verification gates instruction retirement")
	MustRegister("authen-then-fetch", ThenFetch, "new external fetches wait for the auth queue to drain")
	MustRegister("authen-then-commit+fetch", CommitPlusFetch, "then-commit plus then-fetch — the paper's recommended point")
	MustRegister("authen-then-commit+obfuscation", CommitPlusObfuscation, "then-commit plus HIDE-style address obfuscation")
	MustRegister("authen-only", AuthOnly, "verify every line but gate nothing (detection without containment)")
	MustRegister("authen-then-pac", ThenPAC, "pointer authentication: failed auth poisons the pointer, faulting at its next use")
	MustRegister("authen-then-fpac", ThenFPAC, "FPAC pointer authentication: failed auth faults at the auth instruction")
}

// --- machine knobs ----------------------------------------------------------

// Knobs is the flat set of component configuration bits a control point
// determines. The simulator copies these onto pipeline.Config,
// sim.MemConfig, and secmem.Config — the knobs stay on the components, but
// only the policy layer sets them.
type Knobs struct {
	// Authenticate -> secmem.Config.Authenticate
	Authenticate bool
	// Remap -> secmem.Config.Remap (address obfuscation)
	Remap bool
	// GateIssue -> pipeline.Config.GateIssue
	GateIssue bool
	// UseAtAuth -> sim.MemConfig.UseAtAuth (loaded values usable only
	// after verification; paired with GateIssue)
	UseAtAuth bool
	// StoreWaitAuth -> pipeline.Config.StoreWaitAuth
	StoreWaitAuth bool
	// GateCommit -> pipeline.Config.GateCommit
	GateCommit bool
	// GateFetch -> sim.MemConfig.GateFetch
	GateFetch bool
	// PAC -> pipeline.Config.PACMode poison (fault at next use)
	PAC bool
	// PACFault -> pipeline.Config.PACMode fault-auth (FPAC; implies PAC)
	PACFault bool
}

// Knobs maps the point onto component configuration bits. Each gate
// dimension owns a fixed knob set, so a composition's knobs are exactly the
// union of its components' (pinned by TestKnobOrthogonality).
func (p ControlPoint) Knobs() Knobs {
	p = p.Normalize()
	return Knobs{
		Authenticate:  p.Authenticate,
		Remap:         p.Obfuscate,
		GateIssue:     p.GateIssue,
		UseAtAuth:     p.GateIssue,
		StoreWaitAuth: p.GateWrite,
		GateCommit:    p.GateCommit,
		GateFetch:     p.GateFetch,
		PAC:           p.PAC,
		PACFault:      p.PACFault,
	}
}

// union is the knob-level join, mirroring Compose.
func (k Knobs) union(o Knobs) Knobs {
	return Knobs{
		Authenticate:  k.Authenticate || o.Authenticate,
		Remap:         k.Remap || o.Remap,
		GateIssue:     k.GateIssue || o.GateIssue,
		UseAtAuth:     k.UseAtAuth || o.UseAtAuth,
		StoreWaitAuth: k.StoreWaitAuth || o.StoreWaitAuth,
		GateCommit:    k.GateCommit || o.GateCommit,
		GateFetch:     k.GateFetch || o.GateFetch,
		PAC:           k.PAC || o.PAC,
		PACFault:      k.PACFault || o.PACFault,
	}
}

// --- lattice enumeration ----------------------------------------------------

// Lattice returns the sweepable composable space: every single gate
// dimension plus every pairwise composition, deterministically ordered
// (singles in canonical dimension order, then pairs) and deduplicated —
// pac∘fpac is the fpac single, not a distinct pair. The baseline is not
// included — sweeps add it as the normalization leg. 27 points.
func Lattice() []ControlPoint {
	var out []ControlPoint
	seen := map[ControlPoint]bool{}
	add := func(p ControlPoint) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, d := range dimensions {
		add(d.point)
	}
	for i := range dimensions {
		for j := i + 1; j < len(dimensions); j++ {
			add(Compose(dimensions[i].point, dimensions[j].point))
		}
	}
	return out
}

// ParseSet resolves a policy-set flag value shared by the fuzzing and
// verification CLIs: "full" is the 95-point FullLattice, "lattice" and "ci"
// are the 27-point Lattice (the CI smoke set — all singles and pairs,
// including the pac/fpac dimensions, cheap enough to sweep hundreds of seeds
// on every push), "pac" is the budgeted pointer-authentication slice (both
// PAC modes alone and composed with representative gates), and anything else
// is a comma-separated list of control-point names fed through Parse.
func ParseSet(s string) ([]ControlPoint, error) {
	switch s {
	case "full":
		return FullLattice(), nil
	case "lattice", "ci":
		return Lattice(), nil
	case "pac":
		return []ControlPoint{
			ThenPAC,
			ThenFPAC,
			Compose(ThenCommit, ThenPAC),
			Compose(ThenFetch, ThenPAC),
			Compose(ThenIssue, ThenFPAC),
			Compose(CommitPlusFetch, ThenFPAC),
			Compose(CommitPlusObfuscation, ThenPAC),
		}, nil
	}
	var out []ControlPoint
	for _, name := range strings.Split(s, ",") {
		p, err := Parse(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// FullLattice returns every non-baseline point of the lattice: all non-empty
// gate subsets, deduplicated (subsets naming both pac and fpac collapse onto
// the fpac point), ordered by gate count then canonical name. 95 points: 31
// gate subsets crossed with {no pac, pac, fpac}, plus the two PAC-only
// points and their composition closure.
func FullLattice() []ControlPoint {
	var out []ControlPoint
	seen := map[ControlPoint]bool{}
	n := len(dimensions)
	for mask := 1; mask < 1<<n; mask++ {
		p := ControlPoint{Authenticate: true}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p = Compose(p, dimensions[i].point)
			}
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := len(out[i].Components()), len(out[j].Components())
		if ci != cj {
			return ci < cj
		}
		return out[i].String() < out[j].String()
	})
	return out
}
