package policy

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCanonicalNames(t *testing.T) {
	want := map[string]ControlPoint{
		"baseline":                       Baseline,
		"authen-only":                    AuthOnly,
		"authen-then-issue":              ThenIssue,
		"authen-then-write":              ThenWrite,
		"authen-then-commit":             ThenCommit,
		"authen-then-fetch":              ThenFetch,
		"authen-then-commit+fetch":       CommitPlusFetch,
		"authen-then-commit+obfuscation": CommitPlusObfuscation,
		"authen-then-pac":                ThenPAC,
		"authen-then-fpac":               ThenFPAC,
	}
	for name, p := range want {
		if got := p.String(); got != name {
			t.Errorf("%v.String() = %q, want %q", p, got, name)
		}
		parsed, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
		} else if parsed != p {
			t.Errorf("Parse(%q) = %+v, want %+v", name, parsed, p)
		}
	}
}

func TestParseLegacyAliases(t *testing.T) {
	for name, want := range map[string]ControlPoint{
		"commit+fetch":       CommitPlusFetch,
		"commit+obfuscation": CommitPlusObfuscation,
		"then-commit":        ThenCommit,
		"then-write+fetch":   Compose(ThenWrite, ThenFetch),
		"fetch+commit":       CommitPlusFetch, // order-insensitive
		"commit+pac":         Compose(ThenCommit, ThenPAC),
		"pac+fpac":           ThenFPAC, // non-canonical spelling; fpac subsumes pac
	} {
		got, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
		} else if got != want {
			t.Errorf("Parse(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseUnknownListsRegistered(t *testing.T) {
	for _, bad := range []string{"", "authen-then-", "nonsense", "commit+nonsense", "commit+commit"} {
		_, err := Parse(bad)
		if err == nil {
			t.Errorf("Parse(%q) should fail", bad)
			continue
		}
		if !strings.Contains(err.Error(), "authen-then-commit") || !strings.Contains(err.Error(), "baseline") {
			t.Errorf("Parse(%q) error should list registered names: %v", bad, err)
		}
	}
}

// TestRoundTripFullLattice pins Parse(String(p)) == p over every point of
// the lattice, including all higher-order compositions and the pac/fpac
// dimensions.
func TestRoundTripFullLattice(t *testing.T) {
	pts := append([]ControlPoint{Baseline, AuthOnly}, FullLattice()...)
	if len(pts) != 97 {
		t.Fatalf("lattice size %d, want 97 (baseline + authen-only + 95 points: 31 gate subsets x {no pac, pac, fpac} + pac-only + fpac-only)", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		s := p.String()
		if seen[s] {
			t.Errorf("duplicate canonical name %q", s)
		}
		seen[s] = true
		got, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(String(%+v)=%q): %v", p, s, err)
		} else if got != p {
			t.Errorf("round trip %q: got %+v want %+v", s, got, p)
		}
	}
}

func TestMarshalTextRoundTrip(t *testing.T) {
	type box struct {
		P ControlPoint `json:"p"`
	}
	in := box{P: Compose(ThenIssue, CommitPlusObfuscation)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"authen-then-issue+commit+obfuscation"`) {
		t.Errorf("marshal: %s", b)
	}
	var out box
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.P != in.P {
		t.Errorf("unmarshal %+v != %+v", out.P, in.P)
	}
}

func TestCompose(t *testing.T) {
	if got := Compose(ThenCommit, ThenFetch); got != CommitPlusFetch {
		t.Errorf("commit∘fetch = %v", got)
	}
	if got := Compose(Baseline, ThenCommit); got != ThenCommit {
		t.Errorf("baseline∘commit = %v", got)
	}
	if got := Compose(ThenCommit, ThenCommit); got != ThenCommit {
		t.Errorf("compose not idempotent: %v", got)
	}
	// Commutative and associative over a 3-way combo.
	abc := Compose(ThenIssue, Compose(ThenWrite, ThenFetch))
	cba := Compose(Compose(ThenFetch, ThenWrite), ThenIssue)
	if abc != cba {
		t.Errorf("compose order-dependent: %v vs %v", abc, cba)
	}
	if abc.String() != "authen-then-issue+write+fetch" {
		t.Errorf("3-way name %q", abc.String())
	}
}

func TestNormalize(t *testing.T) {
	p := ControlPoint{GateCommit: true} // literal without Authenticate
	if !p.Normalize().Authenticate {
		t.Error("gate without Authenticate must normalize to authenticated")
	}
	if p.Normalize() != ThenCommit {
		t.Errorf("normalize: %v", p.Normalize())
	}
	if !Baseline.IsBaseline() || ThenCommit.IsBaseline() {
		t.Error("IsBaseline misclassifies")
	}
}

// TestKnobOrthogonality pins that every registered composition (and every
// lattice point) sets exactly the union of its components' knobs — no
// composition silently drops a knob (e.g. UseAtAuth) the way a hand-written
// switch case could.
func TestKnobOrthogonality(t *testing.T) {
	check := func(name string, p ControlPoint) {
		t.Helper()
		want := Knobs{Authenticate: p.Normalize().Authenticate}
		for _, comp := range p.Components() {
			single, err := Parse(comp)
			if err != nil {
				t.Fatalf("%s: component %q: %v", name, comp, err)
			}
			want = want.union(single.Knobs())
		}
		if got := p.Knobs(); got != want {
			t.Errorf("%s: knobs %+v != union of component knobs %+v", name, got, want)
		}
	}
	for _, e := range Registered() {
		check(e.Name, e.Point)
	}
	for _, p := range FullLattice() {
		check(p.String(), p)
	}
	// The issue gate must carry UseAtAuth through every composition.
	if k := Compose(ThenIssue, ThenFetch).Knobs(); !k.UseAtAuth {
		t.Error("issue+fetch dropped UseAtAuth")
	}
}

func TestLatticeShape(t *testing.T) {
	lat := Lattice()
	if len(lat) != 27 {
		t.Fatalf("lattice points %d, want 27 (7 singles + 21 pairs - pac∘fpac dup)", len(lat))
	}
	seen := map[ControlPoint]bool{}
	for _, p := range lat {
		if seen[p] {
			t.Errorf("duplicate lattice point %v", p)
		}
		seen[p] = true
		if p.IsBaseline() {
			t.Error("lattice must not contain the baseline")
		}
	}
	if !seen[CommitPlusFetch] || !seen[CommitPlusObfuscation] {
		t.Error("lattice missing the paper's combination points")
	}
	if !seen[ThenPAC] || !seen[ThenFPAC] || !seen[Compose(ThenCommit, ThenPAC)] {
		t.Error("lattice missing the pointer-authentication points")
	}
}

func TestPACNormalizeAndSubsume(t *testing.T) {
	if got := (ControlPoint{PACFault: true}).Normalize(); got != ThenFPAC {
		t.Errorf("normalize fpac literal: %+v", got)
	}
	if !ThenFPAC.Subsumes(ThenPAC) || ThenPAC.Subsumes(ThenFPAC) {
		t.Error("fpac must strictly subsume pac")
	}
	if got := Compose(ThenPAC, ThenFPAC); got != ThenFPAC {
		t.Errorf("pac∘fpac = %v, want fpac", got)
	}
	if s := ThenFPAC.String(); s != "authen-then-fpac" {
		t.Errorf("fpac name %q (components must not include pac)", s)
	}
	if s := Compose(CommitPlusFetch, ThenPAC).String(); s != "authen-then-commit+fetch+pac" {
		t.Errorf("composition name %q", s)
	}
	// PAC is orthogonal to every memory-integrity gate: composing it changes
	// no existing knob.
	k, base := Compose(ThenCommit, ThenPAC).Knobs(), ThenCommit.Knobs()
	k.PAC, k.PACFault = false, false
	if k != base {
		t.Errorf("pac composition disturbed gate knobs: %+v vs %+v", k, base)
	}
}

func TestParseSetPAC(t *testing.T) {
	pts, err := ParseSet("pac")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("pac set has %d points", len(pts))
	}
	for _, p := range pts {
		if !p.PAC {
			t.Errorf("pac set contains non-PAC point %v", p)
		}
	}
	ci, err := ParseSet("ci")
	if err != nil {
		t.Fatal(err)
	}
	hasPAC := false
	for _, p := range ci {
		if p.PAC {
			hasPAC = true
		}
	}
	if !hasPAC {
		t.Error("ci set must cover the PAC dimension")
	}
}

func TestRegister(t *testing.T) {
	custom := Compose(ThenWrite, ThenFetch)
	if err := Register("test-write+fetch", custom, "test entry"); err != nil {
		t.Fatal(err)
	}
	got, err := Parse("test-write+fetch")
	if err != nil || got != custom {
		t.Fatalf("registered name: %v %v", got, err)
	}
	if err := Register("test-write+fetch", custom, "dup"); err == nil {
		t.Error("duplicate registration should fail")
	}
	found := false
	for _, n := range Names() {
		if n == "test-write+fetch" {
			found = true
		}
	}
	if !found {
		t.Error("Names() missing registered entry")
	}
}
