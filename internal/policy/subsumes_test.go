package policy

import "testing"

func TestSubsumes(t *testing.T) {
	issueCommit := Compose(ThenIssue, ThenCommit)
	cases := []struct {
		p, o ControlPoint
		want bool
	}{
		{Baseline, Baseline, true}, // reflexive
		{ThenIssue, ThenIssue, true},
		{ThenIssue, Baseline, true}, // baseline is the bottom
		{Baseline, ThenIssue, false},
		{issueCommit, ThenIssue, true},
		{issueCommit, ThenCommit, true},
		{ThenIssue, issueCommit, false}, // strict order, not symmetric
		{ThenIssue, ThenCommit, false},  // incomparable gates
		{CommitPlusFetch, ThenFetch, true},
		{CommitPlusFetch, ThenWrite, false},
		{CommitPlusObfuscation, ThenCommit, true},
		{ThenCommit, CommitPlusObfuscation, false}, // obfuscation is a dimension too
		// Subsumes normalizes: a gate without Authenticate acquires it.
		{ControlPoint{GateIssue: true}, AuthOnly, true},
	}
	for _, c := range cases {
		if got := c.p.Subsumes(c.o); got != c.want {
			t.Errorf("%v.Subsumes(%v) = %v, want %v", c.p, c.o, got, c.want)
		}
	}
	// Subsumption is exactly "Compose adds nothing new" over the lattice.
	for _, p := range FullLattice() {
		for _, o := range FullLattice() {
			want := Compose(p, o) == p.Normalize()
			if got := p.Subsumes(o); got != want {
				t.Errorf("%v.Subsumes(%v) = %v, disagrees with Compose", p, o, got)
			}
		}
	}
}
