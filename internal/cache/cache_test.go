package cache

import (
	"testing"
	"testing/quick"
)

func dmCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{Name: "l1", SizeB: 1024, LineB: 32, Ways: 1, WriteBck: true})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{SizeB: 0, LineB: 32, Ways: 1},
		{SizeB: 1024, LineB: 0, Ways: 1},
		{SizeB: 1024, LineB: 32, Ways: 0},
		{SizeB: 1000, LineB: 32, Ways: 1},    // not divisible
		{SizeB: 1024, LineB: 24, Ways: 1},    // line not pow2
		{SizeB: 96 * 32, LineB: 32, Ways: 1}, // sets not pow2
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(Config{SizeB: 256 << 10, LineB: 64, Ways: 4}); err != nil {
		t.Errorf("paper L2 config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := dmCache(t)
	if _, hit := c.Access(0x100, false); hit {
		t.Fatal("cold hit")
	}
	c.Fill(0x100, false)
	if _, hit := c.Access(0x100, false); !hit {
		t.Fatal("miss after fill")
	}
	if _, hit := c.Access(0x11f, false); !hit {
		t.Fatal("same line different offset missed")
	}
	if _, hit := c.Access(0x120, false); hit {
		t.Fatal("adjacent line hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := dmCache(t) // 32 sets, direct mapped: addresses 1024 apart collide
	c.Fill(0x0, true)
	l, hit := c.Access(0x0, true)
	if !hit || !l.Dirty {
		t.Fatal("write hit should mark dirty")
	}
	_, ev := c.Fill(0x400, false) // same set, evicts 0x0
	if ev == nil || !ev.Dirty || ev.Addr != 0 {
		t.Fatalf("eviction %+v", ev)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Writebacks != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := dmCache(t)
	c.Fill(0x0, false)
	_, ev := c.Fill(0x400, false)
	if ev == nil || ev.Dirty {
		t.Fatalf("eviction %+v", ev)
	}
	if c.Stats().Writebacks != 0 {
		t.Error("clean eviction wrote back")
	}
}

func TestLRUOrder(t *testing.T) {
	c := MustNew(Config{Name: "a2", SizeB: 4 * 32, LineB: 32, Ways: 4, WriteBck: true})
	// One set, 4 ways. Fill 4 lines; touch line 0; fill a 5th: line 1 evicted.
	for i := uint64(0); i < 4; i++ {
		c.Fill(i*32, false)
	}
	c.Access(0, false) // line 0 MRU
	_, ev := c.Fill(4*32, false)
	if ev == nil || ev.Addr != 1*32 {
		t.Fatalf("evicted %+v, want line at 0x20", ev)
	}
	if _, hit := c.Access(0, false); !hit {
		t.Error("MRU line evicted")
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	c := MustNew(Config{Name: "l2", SizeB: 256 << 10, LineB: 64, Ways: 4, WriteBck: true})
	addrs := []uint64{0x0, 0x123440, 0xdeadbc0, 0x7fffffc0}
	for _, a := range addrs {
		la := c.LineAddr(a)
		c.Fill(a, true)
		// Evict by filling Ways more lines in the same set.
		setStride := uint64(c.Config().SizeB / c.Config().Ways)
		var got *Victim
		for i := uint64(1); i <= uint64(c.Config().Ways); i++ {
			_, ev := c.Fill(a+i*setStride, false)
			if ev != nil && ev.Addr == la {
				got = ev
			}
		}
		if got == nil {
			t.Fatalf("line %#x never evicted", a)
		}
		if !got.Dirty {
			t.Fatalf("line %#x lost dirty bit", a)
		}
	}
}

func TestProbeDoesNotTouch(t *testing.T) {
	c := MustNew(Config{Name: "a2", SizeB: 2 * 32, LineB: 32, Ways: 2, WriteBck: false})
	c.Fill(0, false)
	c.Fill(64, false) // same set; LRU = line 0
	c.Probe(0)        // must NOT promote line 0
	_, ev := c.Fill(128, false)
	if ev == nil || ev.Addr != 0 {
		t.Fatalf("probe disturbed LRU: evicted %+v", ev)
	}
	if c.Stats().Hits != 0 || c.Stats().Misses != 0 {
		t.Error("probe updated stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := dmCache(t)
	c.Fill(0x40, true)
	v := c.Invalidate(0x47)
	if v == nil || !v.Dirty || v.Addr != 0x40 {
		t.Fatalf("invalidate %+v", v)
	}
	if _, hit := c.Access(0x40, false); hit {
		t.Error("line survived invalidation")
	}
	if c.Invalidate(0x40) != nil {
		t.Error("double invalidation returned a victim")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := dmCache(t)
	c.Fill(0x0, true)
	c.Fill(0x20, false)
	c.Fill(0x40, true)
	victims := c.InvalidateAll()
	if len(victims) != 2 {
		t.Fatalf("dirty victims %d want 2", len(victims))
	}
	for _, a := range []uint64{0x0, 0x20, 0x40} {
		if _, hit := c.Access(a, false); hit {
			t.Errorf("%#x survived InvalidateAll", a)
		}
	}
}

func TestAuxRoundTrip(t *testing.T) {
	c := dmCache(t)
	l, _ := c.Fill(0x80, false)
	l.Aux = 42
	got, hit := c.Access(0x80, false)
	if !hit || got.Aux != 42 {
		t.Error("Aux lost")
	}
	c.Fill(0x480, false) // evict
	l2, _ := c.Fill(0x80, false)
	if l2.Aux != 0 {
		t.Error("Aux leaked across refill")
	}
}

// Property: the cache never reports a hit for a line it was never told about,
// and always hits a just-filled line.
func TestQuickHitConsistency(t *testing.T) {
	c := MustNew(Config{Name: "q", SizeB: 8 << 10, LineB: 64, Ways: 2, WriteBck: true})
	resident := map[uint64]bool{}
	f := func(addr uint64, doFill bool) bool {
		addr %= 1 << 20
		la := c.LineAddr(addr)
		_, hit := c.Access(addr, false)
		if hit && !resident[la] {
			return false // hit on never-filled line
		}
		if doFill && !hit {
			_, ev := c.Fill(addr, false)
			if ev != nil {
				delete(resident, ev.Addr)
			}
			resident[la] = true
			if _, h := c.Access(addr, false); !h {
				return false // just-filled line must hit
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	c := dmCache(t)
	c.Access(0, false)
	c.ResetStats()
	if s := c.Stats(); s.Misses != 0 {
		t.Error("stats survived reset")
	}
}

// refCache is an executable specification: a map plus explicit LRU lists.
type refCache struct {
	sets  int
	ways  int
	lineB int
	sets_ [][]refLine // per-set MRU-first
}

type refLine struct {
	addr  uint64
	dirty bool
}

func newRefCache(cfg Config) *refCache {
	return &refCache{
		sets:  cfg.SizeB / (cfg.LineB * cfg.Ways),
		ways:  cfg.Ways,
		lineB: cfg.LineB,
		sets_: make([][]refLine, cfg.SizeB/(cfg.LineB*cfg.Ways)),
	}
}

func (r *refCache) setOf(addr uint64) int {
	return int(addr / uint64(r.lineB) % uint64(r.sets))
}

func (r *refCache) access(addr uint64, write bool) bool {
	la := addr &^ uint64(r.lineB-1)
	s := r.setOf(addr)
	for i, l := range r.sets_[s] {
		if l.addr == la {
			l.dirty = l.dirty || write
			r.sets_[s] = append(append([]refLine{l}, r.sets_[s][:i]...), r.sets_[s][i+1:]...)
			return true
		}
	}
	return false
}

func (r *refCache) fill(addr uint64, write bool) (victim *refLine) {
	la := addr &^ uint64(r.lineB-1)
	s := r.setOf(addr)
	if len(r.sets_[s]) == r.ways {
		v := r.sets_[s][r.ways-1]
		victim = &v
		r.sets_[s] = r.sets_[s][:r.ways-1]
	}
	r.sets_[s] = append([]refLine{{addr: la, dirty: write}}, r.sets_[s]...)
	return victim
}

// Property: the cache model agrees with the executable specification on
// every hit/miss outcome and every eviction identity under random access
// streams.
func TestQuickAgainstReferenceModel(t *testing.T) {
	cfg := Config{Name: "ref", SizeB: 4 << 10, LineB: 64, Ways: 4, WriteBck: true}
	c := MustNew(cfg)
	r := newRefCache(cfg)
	f := func(addrRaw uint16, write bool) bool {
		addr := uint64(addrRaw) * 8 // 512KB address space: plenty of conflicts
		_, hit := c.Access(addr, write)
		refHit := r.access(addr, write)
		if hit != refHit {
			t.Logf("addr %#x: hit=%v ref=%v", addr, hit, refHit)
			return false
		}
		if !hit {
			_, ev := c.Fill(addr, write)
			refEv := r.fill(addr, write)
			if (ev == nil) != (refEv == nil) {
				t.Logf("addr %#x: eviction presence mismatch", addr)
				return false
			}
			if ev != nil && (ev.Addr != refEv.addr || ev.Dirty != refEv.dirty) {
				t.Logf("addr %#x: victim (%#x,%v) ref (%#x,%v)", addr, ev.Addr, ev.Dirty, refEv.addr, refEv.dirty)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}
