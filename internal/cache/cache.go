// Package cache implements a generic set-associative, write-back cache
// timing model with LRU replacement. It stores tags and line metadata only —
// the functional data lives in the simulator's memory model — and is reused
// for every cache-shaped structure in the machine: L1 I/D, the unified L2,
// the counter cache of the encryption engine, the hash-tree node cache, and
// the address-obfuscation re-map cache.
package cache

import (
	"fmt"

	"authpoint/internal/obs"
)

// Line is the metadata of one cache line.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// Aux carries model-specific per-line state (e.g. "verified" for L2
	// lines whose authentication completed, or the ready-cycle of an
	// in-flight fill).
	Aux uint64
}

// Config describes a cache shape.
type Config struct {
	Name     string
	SizeB    int // total capacity in bytes
	LineB    int // line size in bytes
	Ways     int // associativity (1 = direct-mapped)
	WriteBck bool
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Cache is a set-associative cache model.
type Cache struct {
	cfg   Config
	sets  int
	lines [][]Line // [set][way]
	order [][]int  // LRU order: order[s][0] = MRU way
	stats Stats

	sink  obs.Sink
	track obs.Track
	clock func() uint64
}

// SetObserver attaches an event sink. Access has no cycle argument, so the
// owner supplies a clock closure reading its current cycle; track names this
// cache's trace lane.
func (c *Cache) SetObserver(s obs.Sink, track obs.Track, clock func() uint64) {
	c.sink = s
	c.track = track
	c.clock = clock
}

// New validates cfg and builds the cache.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeB <= 0 || cfg.LineB <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry %+v", cfg.Name, cfg)
	}
	if cfg.SizeB%(cfg.LineB*cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible by line*ways %d", cfg.Name, cfg.SizeB, cfg.LineB*cfg.Ways)
	}
	if cfg.LineB&(cfg.LineB-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineB)
	}
	sets := cfg.SizeB / (cfg.LineB * cfg.Ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.lines = make([][]Line, sets)
	c.order = make([][]int, sets)
	for s := 0; s < sets; s++ {
		c.lines[s] = make([]Line, cfg.Ways)
		c.order[s] = make([]int, cfg.Ways)
		for w := 0; w < cfg.Ways; w++ {
			c.order[s][w] = w
		}
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineB-1) }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr / uint64(c.cfg.LineB)
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// Probe reports whether addr hits, without updating LRU or stats.
func (c *Cache) Probe(addr uint64) (*Line, bool) {
	set, tag := c.index(addr)
	for w := range c.lines[set] {
		l := &c.lines[set][w]
		if l.Valid && l.Tag == tag {
			return l, true
		}
	}
	return nil, false
}

// Access looks up addr, updating LRU and stats. write marks the line dirty
// on a hit. It reports the hit and, on a hit, the line.
func (c *Cache) Access(addr uint64, write bool) (*Line, bool) {
	set, tag := c.index(addr)
	for _, w := range c.order[set] {
		l := &c.lines[set][w]
		if l.Valid && l.Tag == tag {
			c.touch(set, w)
			if write && c.cfg.WriteBck {
				l.Dirty = true
			}
			c.stats.Hits++
			if c.sink != nil {
				c.sink.Emit(obs.Event{Cycle: c.clock(), Kind: obs.EvCacheHit, Track: c.track, Addr: addr})
			}
			return l, true
		}
	}
	c.stats.Misses++
	if c.sink != nil {
		c.sink.Emit(obs.Event{Cycle: c.clock(), Kind: obs.EvCacheMiss, Track: c.track, Addr: addr})
	}
	return nil, false
}

// Victim describes a line evicted by Fill.
type Victim struct {
	Addr  uint64
	Dirty bool
	Aux   uint64
}

// Fill installs addr's line (after a miss), evicting the LRU way. It returns
// the filled line and, if a valid line was displaced, its identity. write
// marks the new line dirty.
func (c *Cache) Fill(addr uint64, write bool) (*Line, *Victim) {
	set, tag := c.index(addr)
	way := c.order[set][c.cfg.Ways-1]
	l := &c.lines[set][way]
	var ev *Victim
	if l.Valid {
		c.stats.Evictions++
		ev = &Victim{
			Addr:  (l.Tag*uint64(c.sets) + uint64(set)) * uint64(c.cfg.LineB),
			Dirty: l.Dirty,
			Aux:   l.Aux,
		}
		if l.Dirty {
			c.stats.Writebacks++
		}
	}
	*l = Line{Tag: tag, Valid: true, Dirty: write && c.cfg.WriteBck}
	c.touch(set, way)
	return l, ev
}

// Invalidate drops addr's line if present, returning its prior state.
func (c *Cache) Invalidate(addr uint64) *Victim {
	set, tag := c.index(addr)
	for w := range c.lines[set] {
		l := &c.lines[set][w]
		if l.Valid && l.Tag == tag {
			v := &Victim{Addr: c.LineAddr(addr), Dirty: l.Dirty, Aux: l.Aux}
			l.Valid = false
			return v
		}
	}
	return nil
}

// InvalidateAll drops every line, returning the dirty victims (for
// write-back flushing).
func (c *Cache) InvalidateAll() []Victim {
	var out []Victim
	for s := range c.lines {
		for w := range c.lines[s] {
			l := &c.lines[s][w]
			if l.Valid {
				if l.Dirty {
					out = append(out, Victim{
						Addr:  (l.Tag*uint64(c.sets) + uint64(s)) * uint64(c.cfg.LineB),
						Dirty: true,
						Aux:   l.Aux,
					})
				}
				l.Valid = false
			}
		}
	}
	return out
}

func (c *Cache) touch(set, way int) {
	ord := c.order[set]
	for i, w := range ord {
		if w == way {
			copy(ord[1:i+1], ord[:i])
			ord[0] = way
			return
		}
	}
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters (after cache warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }
