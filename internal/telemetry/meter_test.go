package telemetry

import (
	"strings"
	"testing"
	"time"
)

// recordWriter captures each heartbeat line for assertion.
type recordWriter struct{ lines []string }

func (w *recordWriter) Write(p []byte) (int, error) {
	w.lines = append(w.lines, string(p))
	return len(p), nil
}

// TestMeterETAClampedAtZero pins the overrun case: when done exceeds total
// (an undercounted AddTotal, or skipped cells double-ticked), the heartbeat
// must clamp the ETA at zero instead of printing a negative duration.
func TestMeterETAClampedAtZero(t *testing.T) {
	w := &recordWriter{}
	m := NewMeter(w, "test", 0)
	m.interval = 0 // print on every tick
	m.AddTotal(1)
	time.Sleep(time.Millisecond) // ensure elapsed > 0 so a rate is computed
	m.Tick(3)                    // done=3 > total=1
	if len(w.lines) == 0 {
		t.Fatal("no heartbeat printed")
	}
	out := w.lines[len(w.lines)-1]
	if strings.Contains(out, "eta -") {
		t.Fatalf("heartbeat printed a negative ETA: %q", out)
	}
	if !strings.Contains(out, "eta 0s") {
		t.Fatalf("heartbeat did not clamp ETA at zero: %q", out)
	}
}

// TestMeterUnderTotal sanity-checks the normal case still renders an ETA.
func TestMeterUnderTotal(t *testing.T) {
	w := &recordWriter{}
	m := NewMeter(w, "test", 10)
	m.interval = 0
	time.Sleep(time.Millisecond)
	m.Tick(2)
	out := w.lines[len(w.lines)-1]
	if !strings.Contains(out, "2/10") || !strings.Contains(out, "eta ") {
		t.Fatalf("heartbeat missing progress/ETA: %q", out)
	}
}
