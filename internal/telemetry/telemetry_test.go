package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	if err := l.WriteHeader(NewHeader("unit", 4)); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Seq: 0, Kind: "bench", Workload: "mcfx", Policy: "authen-then-commit",
			SimCycles: 1234, Insts: 500, HostNs: 99, Worker: 2},
		{Seq: 1, Kind: "fuzz", Policy: "authen-then-issue", Seed: -7, Tamper: true,
			Site: "dram", Verdict: "detected", SimCycles: 42},
		{Seq: 2, Kind: "verify", Policy: "baseline", Cached: true, Err: "boom"},
	}
	for _, r := range recs {
		l.Emit(r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	lf, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Header.Campaign != "unit" || lf.Header.Schema != LedgerSchema || lf.Header.Parallelism != 4 {
		t.Fatalf("header %+v", lf.Header)
	}
	if len(lf.Records) != len(recs) {
		t.Fatalf("read %d records, want %d", len(lf.Records), len(recs))
	}
	for i, r := range lf.Records {
		if r != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, r, recs[i])
		}
	}
	if err := lf.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerReserveSeqConcurrent(t *testing.T) {
	l := NewLedger(&bytes.Buffer{})
	const goroutines, batch = 8, 100
	var wg sync.WaitGroup
	starts := make(chan uint64, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			starts <- l.ReserveSeq(batch)
		}()
	}
	wg.Wait()
	close(starts)
	seen := map[uint64]bool{}
	for s := range starts {
		if s%batch != 0 || seen[s] {
			t.Fatalf("batch start %d misaligned or duplicated", s)
		}
		seen[s] = true
	}
	if next := l.ReserveSeq(1); next != goroutines*batch {
		t.Fatalf("next seq %d, want %d", next, goroutines*batch)
	}
}

func TestLedgerEmitAdvancesSeq(t *testing.T) {
	l := NewLedger(&bytes.Buffer{})
	l.Emit(Record{Seq: 41, Kind: "bench"})
	if next := l.ReserveSeq(1); next != 42 {
		t.Fatalf("seq after explicit Emit(41) = %d, want 42", next)
	}
}

func TestRecordCanonical(t *testing.T) {
	r := Record{Seq: 9, Kind: "bench", Workload: "artx", HostNs: 123456, Worker: 3, SimCycles: 10}
	c := r.Canonical()
	if c.HostNs != 0 || c.Worker != 0 {
		t.Fatalf("canonical kept host fields: %+v", c)
	}
	if c.Seq != 9 || c.Kind != "bench" || c.Workload != "artx" || c.SimCycles != 10 {
		t.Fatalf("canonical mutated payload fields: %+v", c)
	}
}

func TestReadRejectsBadLedgers(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "not json\n",
		"bad schema": `{"schema":"other/v9"}` + "\n",
		"bad record": `{"schema":"` + LedgerSchema + `"}` + "\n" + "garbage\n",
	}
	for name, data := range cases {
		if _, err := Read(strings.NewReader(data)); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	empty := &LedgerFile{}
	if err := empty.Validate(); err == nil {
		t.Error("empty ledger validated")
	}
	noKind := &LedgerFile{Records: []Record{{Seq: 0}}}
	if err := noKind.Validate(); err == nil {
		t.Error("kindless record validated")
	}
	dup := &LedgerFile{Records: []Record{{Seq: 3, Kind: "bench"}, {Seq: 3, Kind: "bench"}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate seq validated")
	}
}

func TestSortBySeq(t *testing.T) {
	lf := &LedgerFile{Records: []Record{{Seq: 2, Kind: "a"}, {Seq: 0, Kind: "b"}, {Seq: 1, Kind: "c"}}}
	lf.SortBySeq()
	for i, r := range lf.Records {
		if r.Seq != uint64(i) {
			t.Fatalf("position %d holds seq %d", i, r.Seq)
		}
	}
}

func TestWorkerContext(t *testing.T) {
	ctx := t.Context()
	if w := Worker(ctx); w != 0 {
		t.Fatalf("untagged ctx worker = %d", w)
	}
	if w := Worker(WithWorker(ctx, 5)); w != 5 {
		t.Fatalf("tagged ctx worker = %d", w)
	}
}

func TestMeterFinishes(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf, "unit", 0)
	m.AddTotal(3)
	m.Tick(1)
	m.Tick(2)
	m.Finish()
	out := buf.String()
	if !strings.Contains(out, "unit") || !strings.Contains(out, "3 done") {
		t.Fatalf("meter output %q lacks label or final count", out)
	}
	// A nil meter must be a no-op everywhere (callers pass it unconditionally).
	var nilM *Meter
	nilM.AddTotal(1)
	nilM.Tick(1)
	nilM.Finish()
}
