package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Meter prints live campaign progress (done/total, rate, ETA) to a writer —
// stderr in the CLIs, so heartbeats never corrupt JSON on stdout. Safe for
// concurrent use. Output is throttled to one line per interval; Finish
// always prints a final summary line. A nil *Meter is a no-op, mirroring the
// nil-Sink discipline in internal/obs.
type Meter struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	total    int
	done     int
	start    time.Time
	last     time.Time
	interval time.Duration
}

// NewMeter builds a meter writing to w. total may be 0 (unknown); AddTotal
// can raise it as phases are discovered.
func NewMeter(w io.Writer, label string, total int) *Meter {
	now := time.Now()
	return &Meter{w: w, label: label, total: total, start: now, interval: 2 * time.Second}
}

// AddTotal adds n units of expected work (multi-phase campaigns discover
// their size incrementally).
func (m *Meter) AddTotal(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.total += n
	m.mu.Unlock()
}

// Tick records n completed units and prints a heartbeat if the throttle
// interval has elapsed.
func (m *Meter) Tick(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done += n
	now := time.Now()
	if now.Sub(m.last) < m.interval {
		return
	}
	m.last = now
	m.line(now, false)
}

// Finish prints the final summary line.
func (m *Meter) Finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.line(time.Now(), true)
}

// line prints one progress line; callers hold mu.
func (m *Meter) line(now time.Time, final bool) {
	elapsed := now.Sub(m.start)
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(m.done) / s
	}
	switch {
	case final:
		fmt.Fprintf(m.w, "%s: %d done in %s (%.1f/s)\n",
			m.label, m.done, elapsed.Round(time.Millisecond), rate)
	case m.total > 0 && rate > 0:
		// done can overrun total (AddTotal undercounted, or skipped cells
		// ticked twice); a clamp keeps the heartbeat from printing "eta -2s".
		remaining := float64(m.total-m.done) / rate
		if remaining < 0 {
			remaining = 0
		}
		fmt.Fprintf(m.w, "%s: %d/%d (%.1f/s, eta %s)\n",
			m.label, m.done, m.total, rate,
			(time.Duration(remaining * float64(time.Second))).Round(time.Second))
	default:
		fmt.Fprintf(m.w, "%s: %d done (%.1f/s)\n", m.label, m.done, rate)
	}
}
