// Package telemetry is the campaign-level observability layer: a streaming
// JSONL run ledger (one record per simulated cell, with host cost, simulated
// cycles, and cache/memo outcome) plus a live progress meter. Where
// internal/obs watches one machine from the inside, telemetry watches a
// campaign — a bench sweep, a fuzz run, a contract sweep — from the outside,
// producing the durable artifact authstat mines for regressions.
//
// Determinism contract: records carry a monotonic sequence number assigned
// before the work fans out, so a ledger produced with -parallel 8 re-sorted
// by sequence is byte-identical to a serial one once the host-dependent
// fields (host_ns, worker) are canonicalized away. Tests pin this.
package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
)

// LedgerSchema versions the ledger format; the first line of every ledger is
// a Header carrying it.
const LedgerSchema = "authtelemetry/ledger/v1"

// VerdictSkipped marks a cell the campaign never ran (budget expiry or
// fail-fast cancellation). Campaigns emit one explicit skipped record per
// unreached cell so a budget-expired ledger is distinguishable from a
// truncated one — and so resume can tell skipped from done.
const VerdictSkipped = "skipped"

// Header is the first JSONL line of a ledger: campaign identity and the host
// environment the numbers were measured on.
type Header struct {
	Schema      string `json:"schema"`
	Campaign    string `json:"campaign"`
	StartUnixNs int64  `json:"start_unix_ns,omitempty"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GoVersion   string `json:"go_version"`
	Parallelism int    `json:"parallelism,omitempty"`
}

// NewHeader fills the host-environment fields for a campaign.
func NewHeader(campaign string, parallelism int) Header {
	return Header{
		Schema:      LedgerSchema,
		Campaign:    campaign,
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		Parallelism: parallelism,
	}
}

// Record is one ledger line: one unit of campaign work (a measured cell, a
// fuzz case, a contract check). Fields not meaningful for a given kind stay
// zero and are omitted.
type Record struct {
	// Seq orders records deterministically regardless of worker
	// interleaving; unique within a ledger.
	Seq uint64 `json:"seq"`
	// Kind labels the campaign flavor: "bench", "fuzz", "verify".
	Kind string `json:"kind"`

	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Tamper   bool   `json:"tamper,omitempty"`
	Site     string `json:"site,omitempty"`
	Verdict  string `json:"verdict,omitempty"`

	SimCycles uint64 `json:"sim_cycles,omitempty"`
	Insts     uint64 `json:"insts,omitempty"`

	// HostNs is the wall-clock cost of the cell on this host; Worker is the
	// worker-goroutine index that ran it. Both are host-dependent and zeroed
	// by Canonical.
	HostNs int64 `json:"host_ns,omitempty"`
	Worker int   `json:"worker,omitempty"`

	// Cached marks a cell served from a memo (baseline reuse) rather than a
	// fresh simulation; its HostNs is not a simulation cost.
	Cached bool `json:"cached,omitempty"`

	Err string `json:"err,omitempty"`
}

// Canonical returns the record with host-dependent fields zeroed, so records
// from different parallelism levels (or hosts) compare byte-identical after
// re-sorting by Seq.
func (r Record) Canonical() Record {
	r.HostNs = 0
	r.Worker = 0
	return r
}

// Ledger streams records to a JSONL file. Safe for concurrent use; records
// are written whole-line under a lock, flushed on Close.
type Ledger struct {
	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer
	enc     *json.Encoder
	nextSeq uint64
	err     error
}

// Create opens path, writes the header line, and returns the ledger.
func Create(path string, h Header) (*Ledger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	l := NewLedger(f)
	l.c = f
	if err := l.writeHeader(h); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// NewLedger wraps an arbitrary writer (no header written; use writeHeader
// via Create for files). Exposed for tests and in-memory use.
func NewLedger(w io.Writer) *Ledger {
	bw := bufio.NewWriter(w)
	return &Ledger{w: bw, enc: json.NewEncoder(bw)}
}

func (l *Ledger) writeHeader(h Header) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if h.Schema == "" {
		h.Schema = LedgerSchema
	}
	if err := l.enc.Encode(h); err != nil {
		return fmt.Errorf("telemetry: header: %w", err)
	}
	return nil
}

// WriteHeader writes the header line (for ledgers built with NewLedger).
func (l *Ledger) WriteHeader(h Header) error { return l.writeHeader(h) }

// ReserveSeq atomically reserves n consecutive sequence numbers, returning
// the first. Campaigns reserve a batch before fanning work out so sequence
// assignment is deterministic (input order), not completion order.
func (l *Ledger) ReserveSeq(n int) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.nextSeq
	l.nextSeq += uint64(n)
	return s
}

// Emit appends one record. Write errors are sticky and surfaced by Close.
func (l *Ledger) Emit(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Seq >= l.nextSeq {
		l.nextSeq = r.Seq + 1
	}
	if err := l.enc.Encode(r); err != nil && l.err == nil {
		l.err = err
	}
}

// Close flushes and closes the underlying file, returning the first error
// seen anywhere in the ledger's lifetime.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.c != nil {
		if err := l.c.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.c = nil
	}
	return l.err
}

// LedgerFile is a fully parsed ledger.
type LedgerFile struct {
	Header  Header
	Records []Record
}

// Read parses a ledger from a reader: header line then records.
func Read(r io.Reader) (*LedgerFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		return nil, fmt.Errorf("telemetry: empty ledger")
	}
	var lf LedgerFile
	if err := json.Unmarshal(sc.Bytes(), &lf.Header); err != nil {
		return nil, fmt.Errorf("telemetry: header: %w", err)
	}
	if lf.Header.Schema != LedgerSchema {
		return nil, fmt.Errorf("telemetry: unknown schema %q (want %q)", lf.Header.Schema, LedgerSchema)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		lf.Records = append(lf.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &lf, nil
}

// ReadFile parses the ledger at path.
func ReadFile(path string) (*LedgerFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Validate checks the parsed ledger's invariants: schema already verified by
// Read; here, records exist, kinds are set, and sequence numbers are unique.
func (lf *LedgerFile) Validate() error {
	if len(lf.Records) == 0 {
		return fmt.Errorf("telemetry: ledger has no records")
	}
	seen := make(map[uint64]int, len(lf.Records))
	var maxSeq uint64
	for i, r := range lf.Records {
		if r.Kind == "" {
			return fmt.Errorf("telemetry: record %d has no kind", i)
		}
		if j, dup := seen[r.Seq]; dup {
			return fmt.Errorf("telemetry: records %d and %d share seq %d", j, i, r.Seq)
		}
		seen[r.Seq] = i
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	// Sequences are reserved 0..N-1 up front and every reserved cell emits a
	// record (budget-expired cells emit explicit "skipped" ones), so a gap
	// means lost records — a truncated or corrupted ledger.
	if uint64(len(lf.Records)) != maxSeq+1 {
		for s := uint64(0); s <= maxSeq; s++ {
			if _, ok := seen[s]; !ok {
				return fmt.Errorf("telemetry: ledger is missing seq %d (%d records, max seq %d): truncated?",
					s, len(lf.Records), maxSeq)
			}
		}
	}
	return nil
}

// SortBySeq orders records by sequence number (the deterministic merge order
// for parallel campaigns).
func (lf *LedgerFile) SortBySeq() {
	sort.Slice(lf.Records, func(i, j int) bool { return lf.Records[i].Seq < lf.Records[j].Seq })
}

// workerKey carries the worker index in a context, so campaign layers
// (diffcheck.Sweep, contract.Sweep) can stamp records without threading an
// index through every call signature.
type workerKey struct{}

// WithWorker tags ctx with a worker index.
func WithWorker(ctx context.Context, w int) context.Context {
	return context.WithValue(ctx, workerKey{}, w)
}

// Worker extracts the worker index from ctx (0 when absent).
func Worker(ctx context.Context) int {
	if v, ok := ctx.Value(workerKey{}).(int); ok {
		return v
	}
	return 0
}
