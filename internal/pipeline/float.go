package pipeline

import "math"

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
