package pipeline

import (
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
)

// testMem is a MemPort with perfect (configurable-latency) memory, used to
// test the core in isolation from the cache/secmem hierarchy.
type testMem struct {
	bytes map[uint64]byte
	valid func(uint64) bool

	instLat   uint64
	dataLat   uint64
	authDelay uint64 // authDone = ready + authDelay; 0 disables auth info

	nextAuthIdx uint64

	reads     []uint64 // addresses of ReadData calls (the side channel)
	stores    []storeRec
	faultLog  []uint64
	sbCap     int
	sbPending int
	sbDrain   uint64 // cycles per store-buffer drain slot; 0 = instant
}

type storeRec struct {
	addr    uint64
	val     uint64
	size    int
	authTag uint64
}

func newTestMem(p *asm.Program) *testMem {
	m := &testMem{bytes: map[uint64]byte{}, sbCap: 1 << 30}
	tb := p.TextBytes()
	for i, b := range tb {
		m.bytes[p.TextBase+uint64(i)] = b
	}
	for i, b := range p.Data {
		m.bytes[p.DataBase+uint64(i)] = b
	}
	textEnd := p.TextBase + uint64(len(tb))
	dataEnd := p.DataBase + uint64(len(p.Data)) + 4096 // slack for .space-less stores
	m.valid = func(a uint64) bool {
		return (a >= p.TextBase && a < textEnd) || (a >= p.DataBase && a < dataEnd) ||
			(a >= 0x7f0000 && a < 0x800000) // stack region
	}
	return m
}

func (m *testMem) read(addr uint64, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(m.bytes[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (m *testMem) write(addr uint64, v uint64, n int) {
	for i := 0; i < n; i++ {
		m.bytes[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

func (m *testMem) FetchInst(now uint64, addr uint64, fetchTag uint64) InstFetch {
	if !m.valid(addr) {
		return InstFetch{Fault: true}
	}
	f := InstFetch{
		Word:  uint32(m.read(addr, 4)),
		Ready: now + m.instLat,
	}
	if m.authDelay > 0 {
		m.nextAuthIdx++
		f.AuthIdx = m.nextAuthIdx
		f.AuthDone = f.Ready + m.authDelay
	}
	return f
}

func (m *testMem) ReadData(now uint64, addr uint64, size int, fetchTag uint64) DataRead {
	m.reads = append(m.reads, addr)
	r := DataRead{Raw: m.read(addr, size), Ready: now + m.dataLat}
	if m.authDelay > 0 {
		m.nextAuthIdx++
		r.AuthIdx = m.nextAuthIdx
		r.AuthDone = r.Ready + m.authDelay
	}
	return r
}

func (m *testMem) CommitStore(now uint64, addr uint64, val uint64, size int, authTag uint64) bool {
	if m.sbPending >= m.sbCap {
		return false
	}
	if m.sbDrain > 0 {
		m.sbPending++
	}
	m.write(addr, val, size)
	m.stores = append(m.stores, storeRec{addr, val, size, authTag})
	return true
}

func (m *testMem) Tick(now uint64) {
	if m.sbDrain > 0 && m.sbPending > 0 && now%m.sbDrain == 0 {
		m.sbPending--
	}
}
func (m *testMem) ValidAddr(addr uint64) bool        { return m.valid(addr) }
func (m *testMem) LogFault(addr uint64)              { m.faultLog = append(m.faultLog, addr) }
func (m *testMem) LastAuthRequest(now uint64) uint64 { return m.nextAuthIdx }

// run assembles src, runs it to HALT (or maxCycles), and returns the core
// and memory for inspection.
func run(t *testing.T, src string, mutate func(*Config, *testMem), maxCycles int) (*Core, *testMem) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := newTestMem(p)
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg, m)
	}
	c, err := New(cfg, m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	c.SetReg(isa.RegSP, 0x7fff00)
	for i := 0; i < maxCycles && !c.Halted(); i++ {
		c.Step()
		if k, pc, addr := c.Faulted(); k != FaultNone {
			t.Fatalf("unexpected fault %v at pc=%#x addr=%#x", k, pc, addr)
		}
	}
	if !c.Halted() {
		t.Fatalf("did not halt in %d cycles (pc=%#x committed=%d)", maxCycles, c.PC(), c.Stats().Committed)
	}
	return c, m
}

func TestStraightLineALU(t *testing.T) {
	c, _ := run(t, `
		_start:
			addi r1, r0, 5
			addi r2, r0, 7
			add  r3, r1, r2
			mul  r4, r3, r3
			sub  r5, r4, r1
			xor  r6, r5, r2
			halt
	`, nil, 1000)
	if c.Reg(3) != 12 || c.Reg(4) != 144 || c.Reg(5) != 139 || c.Reg(6) != 139^7 {
		t.Errorf("regs: r3=%d r4=%d r5=%d r6=%d", c.Reg(3), c.Reg(4), c.Reg(5), c.Reg(6))
	}
	if c.Stats().Committed != 7 {
		t.Errorf("committed %d", c.Stats().Committed)
	}
}

func TestLoopSum(t *testing.T) {
	c, _ := run(t, `
		_start:
			addi r1, r0, 0      ; sum
			addi r2, r0, 10     ; i = 10
		loop:
			add  r1, r1, r2
			addi r2, r2, -1
			bne  r2, r0, loop
			halt
	`, nil, 5000)
	if c.Reg(1) != 55 {
		t.Errorf("sum = %d want 55", c.Reg(1))
	}
}

func TestLoadStoreAndForwarding(t *testing.T) {
	c, m := run(t, `
		_start:
			la   r2, buf
			addi r1, r0, 1234
			sd   r1, 0(r2)
			ld   r3, 0(r2)      ; should forward from the store
			addi r4, r3, 1
			sw   r4, 8(r2)
			lw   r5, 8(r2)
			lb   r6, 0(r2)      ; low byte of 1234 = 210
			halt
		.data
		buf: .space 64
	`, nil, 5000)
	if c.Reg(3) != 1234 || c.Reg(5) != 1235 {
		t.Errorf("r3=%d r5=%d", c.Reg(3), c.Reg(5))
	}
	if c.Reg(6) != uint64(0xffffffffffffffd2) {
		t.Errorf("lb sign extension: %#x", c.Reg(6))
	}
	if c.Stats().Forwards == 0 {
		t.Error("no store-to-load forwarding observed")
	}
	if len(m.stores) != 2 {
		t.Errorf("stores committed: %d", len(m.stores))
	}
}

func TestDataDependentBranches(t *testing.T) {
	// Count set bits of a value: mixes loads, shifts, and unpredictable
	// branches.
	c, _ := run(t, `
		_start:
			la   r2, val
			ld   r1, 0(r2)
			addi r3, r0, 0      ; popcount
			addi r4, r0, 64     ; bits remaining
		loop:
			andi r5, r1, 1
			add  r3, r3, r5
			srli r1, r1, 1
			addi r4, r4, -1
			bne  r4, r0, loop
			halt
		.data
		val: .word 0xdeadbeefcafebabe
	`, nil, 20000)
	want := uint64(0)
	for v := uint64(0xdeadbeefcafebabe); v != 0; v >>= 1 {
		want += v & 1
	}
	if c.Reg(3) != want {
		t.Errorf("popcount %d want %d", c.Reg(3), want)
	}
}

func TestCallReturnRAS(t *testing.T) {
	c, _ := run(t, `
		_start:
			addi r1, r0, 0
			call f
			call f
			call f
			halt
		f:
			addi r1, r1, 7
			ret
	`, nil, 5000)
	if c.Reg(1) != 21 {
		t.Errorf("r1 = %d want 21", c.Reg(1))
	}
}

func TestRecursiveFactorial(t *testing.T) {
	c, _ := run(t, `
		_start:
			addi r1, r0, 6      ; n
			call fact
			halt
		; fact: r2 = r1!
		fact:
			addi r2, r0, 1
			beq  r1, r0, base
			addi sp, sp, -16
			sd   ra, 0(sp)
			sd   r1, 8(sp)
			addi r1, r1, -1
			call fact
			ld   r1, 8(sp)
			ld   ra, 0(sp)
			addi sp, sp, 16
			mul  r2, r2, r1
		base:
			ret
	`, nil, 20000)
	if c.Reg(2) != 720 {
		t.Errorf("6! = %d want 720", c.Reg(2))
	}
}

func TestFPPipeline(t *testing.T) {
	c, _ := run(t, `
		_start:
			la     r2, vals
			fld    f1, 0(r2)
			fld    f2, 8(r2)
			fadd   f3, f1, f2
			fmul   f4, f3, f3
			fdiv   f5, f4, f2
			fneg   f6, f5
			fcvtfi r3, f4
			addi   r4, r0, 3
			fcvtif f7, r4
			fsd    f4, 16(r2)
			fld    f8, 16(r2)
			fblt   f1, f2, less
			addi   r5, r0, 99
		less:
			halt
		.data
		vals: .float 1.5, 2.5
		      .space 16
	`, nil, 5000)
	get := func(r uint8) float64 { return float64frombits(c.FReg(r)) }
	if get(3) != 16 && c.Reg(3) != 16 {
		t.Errorf("fcvtfi: %d", c.Reg(3))
	}
	if get(4) != 16.0 {
		t.Errorf("f4 = %v", get(4))
	}
	if get(5) != 6.4 {
		t.Errorf("f5 = %v", get(5))
	}
	if get(6) != -6.4 {
		t.Errorf("f6 = %v", get(6))
	}
	if get(7) != 3.0 {
		t.Errorf("f7 = %v", get(7))
	}
	if get(8) != 16.0 {
		t.Errorf("fsd/fld round trip: %v", get(8))
	}
	if c.Reg(5) != 0 {
		t.Error("fblt fell through incorrectly")
	}
}

func TestOutInstructionCommitsInOrder(t *testing.T) {
	c, _ := run(t, `
		_start:
			addi r1, r0, 17
			out  r1, 0x80
			addi r1, r0, 18
			out  r1, 0x80
			halt
	`, nil, 1000)
	log := c.OutLog()
	if len(log) != 2 || log[0].Val != 17 || log[1].Val != 18 || log[0].Port != 0x80 {
		t.Errorf("out log %+v", log)
	}
}

func TestFaultOnCommittedBadLoad(t *testing.T) {
	p := asm.MustAssemble(`
		_start:
			li r1, 0x30000000
			ld r2, 0(r1)
			halt
	`)
	m := newTestMem(p)
	c, _ := New(DefaultConfig(), m, p.Entry)
	for i := 0; i < 1000 && !c.Halted(); i++ {
		c.Step()
		if k, _, addr := c.Faulted(); k != FaultNone {
			if k != FaultBadAddr || addr != 0x30000000 {
				t.Fatalf("fault %v addr %#x", k, addr)
			}
			if len(m.faultLog) != 1 || m.faultLog[0] != 0x30000000 {
				t.Fatalf("fault log %v — the disclosure channel of §3.3", m.faultLog)
			}
			return
		}
	}
	t.Fatal("bad load did not fault")
}

func TestMisalignedFault(t *testing.T) {
	p := asm.MustAssemble(`
		_start:
			la r1, buf
			ld r2, 1(r1)
			halt
		.data
		buf: .space 16
	`)
	m := newTestMem(p)
	c, _ := New(DefaultConfig(), m, p.Entry)
	for i := 0; i < 1000 && !c.Halted(); i++ {
		c.Step()
		if k, _, _ := c.Faulted(); k == FaultMisaligned {
			return
		}
	}
	t.Fatal("misaligned load did not fault")
}

func TestIllegalInstructionFault(t *testing.T) {
	p := asm.MustAssemble("_start: halt")
	p.Text[0] = 0xff // overwrite HALT with an invalid opcode
	m := newTestMem(p)
	for i, b := range p.TextBytes() {
		m.bytes[p.TextBase+uint64(i)] = b
	}
	c, _ := New(DefaultConfig(), m, p.Entry)
	for i := 0; i < 1000; i++ {
		c.Step()
		if k, _, _ := c.Faulted(); k == FaultIllegalInst {
			return
		}
	}
	t.Fatal("illegal instruction did not fault")
}

// The decisive microarchitectural behaviour for the paper: a load on the
// WRONG path really reaches the memory system (its address appears in the
// read stream) even though it never commits and the program is
// architecturally unaffected.
func TestWrongPathLoadReachesMemory(t *testing.T) {
	c, m := run(t, `
		_start:
			la   r2, probe
			addi r1, r0, 10
			addi r6, r0, 10
			div  r7, r1, r6       ; slow op: branch resolves late
			; bimodal starts weakly-not-taken, so this taken branch
			; mispredicts: the fall-through (wrong path) runs ahead.
			bne  r7, r0, skip
			ld   r3, 0(r2)        ; WRONG PATH load: must reach memory
			ld   r3, 128(r2)
		skip:
			addi r4, r0, 42
			halt
		.data
		probe: .space 512
	`, nil, 5000)
	if c.Reg(4) != 42 {
		t.Errorf("architectural result wrong: r4=%d", c.Reg(4))
	}
	if c.Reg(3) != 0 {
		t.Errorf("wrong-path load committed: r3=%d", c.Reg(3))
	}
	probeSeen := false
	for _, a := range m.reads {
		if a >= asm.DefaultDataBase && a < asm.DefaultDataBase+512 {
			probeSeen = true
		}
	}
	if !probeSeen {
		t.Fatal("wrong-path load never reached memory — side channel not modeled")
	}
	if c.Stats().Mispredicts == 0 || c.Stats().Squashed == 0 {
		t.Errorf("stats %+v: expected mispredict + squash", c.Stats())
	}
}

// A wrong-path load to an INVALID address must not fault the machine.
func TestWrongPathBadLoadIsSquashed(t *testing.T) {
	c, m := run(t, `
		_start:
			li   r2, 0x30000000
			addi r1, r0, 1
			bne  r1, r0, skip
			ld   r3, 0(r2)        ; wrong path, invalid address
		skip:
			halt
	`, nil, 5000)
	if len(m.faultLog) != 0 {
		t.Fatalf("squashed bad load logged a fault: %v", m.faultLog)
	}
	_ = c
}

func TestGateCommitDelaysRetirement(t *testing.T) {
	src := `
		_start:
			la r2, buf
			ld r1, 0(r2)
			add r3, r1, r1
			halt
		.data
		buf: .word 21
	`
	fast, _ := run(t, src, func(cfg *Config, m *testMem) {
		m.authDelay = 0
	}, 10000)
	slow, _ := run(t, src, func(cfg *Config, m *testMem) {
		cfg.GateCommit = true
		m.authDelay = 500
	}, 10000)
	if slow.Reg(3) != 42 || fast.Reg(3) != 42 {
		t.Fatal("wrong results")
	}
	if slow.Stats().Cycles <= fast.Stats().Cycles+400 {
		t.Errorf("authen-then-commit did not pay auth latency: %d vs %d",
			slow.Stats().Cycles, fast.Stats().Cycles)
	}
	if slow.Stats().CommitAuthStall == 0 {
		t.Error("no commit auth stalls recorded")
	}
}

func TestGateIssueDelaysMore(t *testing.T) {
	src := `
		_start:
			addi r1, r0, 1
			addi r2, r0, 2
			add  r3, r1, r2
			halt
	`
	commit, _ := run(t, src, func(cfg *Config, m *testMem) {
		cfg.GateCommit = true
		m.authDelay = 300
	}, 20000)
	issue, _ := run(t, src, func(cfg *Config, m *testMem) {
		cfg.GateIssue = true
		m.authDelay = 300
	}, 20000)
	if issue.Stats().Cycles <= commit.Stats().Cycles {
		t.Errorf("then-issue (%d cycles) should be slower than then-commit (%d)",
			issue.Stats().Cycles, commit.Stats().Cycles)
	}
	if issue.Stats().IssueAuthStall == 0 {
		t.Error("no issue auth stalls recorded")
	}
}

func TestStoreCarriesAuthTag(t *testing.T) {
	_, m := run(t, `
		_start:
			la  r2, buf
			ld  r1, 0(r2)
			sd  r1, 8(r2)
			halt
		.data
		buf: .word 5, 0
	`, func(cfg *Config, m *testMem) {
		cfg.StoreWaitAuth = true
		m.authDelay = 100
	}, 10000)
	if len(m.stores) != 1 {
		t.Fatalf("stores %d", len(m.stores))
	}
	if m.stores[0].authTag == 0 {
		t.Error("store committed without a LastRequest tag")
	}
}

func TestInfiniteLoopDoesNotHalt(t *testing.T) {
	p := asm.MustAssemble("_start: b _start")
	m := newTestMem(p)
	c, _ := New(DefaultConfig(), m, p.Entry)
	for i := 0; i < 2000; i++ {
		c.Step()
	}
	if c.Halted() {
		t.Fatal("infinite loop halted")
	}
	if c.Stats().Committed == 0 {
		t.Fatal("no instructions committed in loop")
	}
}

func TestIPCSaneOnIndependentOps(t *testing.T) {
	// 64 independent ALU ops: an 8-wide core should sustain IPC > 2.
	src := "_start:\n"
	for i := 0; i < 64; i++ {
		src += "addi r1, r0, 1\n"
	}
	src += "halt\n"
	c, _ := run(t, src, nil, 1000)
	ipc := float64(c.Stats().Committed) / float64(c.Stats().Cycles)
	if ipc < 2 {
		t.Errorf("IPC %.2f too low for independent ops", ipc)
	}
}

func TestConfigValidation(t *testing.T) {
	m := newTestMem(asm.MustAssemble("_start: halt"))
	bad := []func(*Config){
		func(c *Config) { c.RUUSize = 0 },
		func(c *Config) { c.LSQSize = 0 },
		func(c *Config) { c.IFQSize = 0 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.CommitWidth = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg, m, 0); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSmallRUUStillCorrect(t *testing.T) {
	c, _ := run(t, `
		_start:
			addi r1, r0, 0
			addi r2, r0, 100
		loop:
			add  r1, r1, r2
			addi r2, r2, -1
			bne  r2, r0, loop
			halt
	`, func(cfg *Config, m *testMem) {
		cfg.RUUSize = 8
		cfg.LSQSize = 4
	}, 50000)
	if c.Reg(1) != 5050 {
		t.Errorf("sum %d want 5050", c.Reg(1))
	}
}

func TestJALRIndirectTarget(t *testing.T) {
	c, _ := run(t, `
		_start:
			la   r1, target
			jalr r2, r1, 0
			halt              ; skipped
		dead:
			addi r3, r0, 1
			halt
		target:
			addi r3, r0, 7
			halt
	`, nil, 5000)
	if c.Reg(3) != 7 {
		t.Errorf("r3 = %d want 7 (indirect jump)", c.Reg(3))
	}
	if c.Reg(2) == 0 {
		t.Error("jalr link register not written")
	}
}

// Regression: a load must not forward from an older matching store when an
// even-younger older store's address is still unresolved — that store may
// overwrite the match. (Found by the differential oracle tests.)
func TestNoForwardPastUnresolvedStore(t *testing.T) {
	c, _ := run(t, `
		_start:
			la   r2, buf
			addi r1, r0, 111
			sd   r1, 0(r2)      ; store A @X, resolves immediately
			ld   r3, 64(r2)     ; slow load (memory latency)
			and  r4, r3, r0     ; r4 = 0, but dependent on the slow load
			add  r4, r4, r2     ; store B's address resolves late...
			addi r5, r0, 222
			sd   r5, 0(r4)      ; ...and lands on X too
			ld   r6, 0(r2)      ; must see 222, never 111
			halt
		.data
		buf: .space 128
	`, func(cfg *Config, m *testMem) {
		m.dataLat = 60 // make the disambiguating load slow
	}, 10000)
	if got := c.Reg(6); got != 222 {
		t.Fatalf("load forwarded past an unresolved store: r6 = %d want 222", got)
	}
}
