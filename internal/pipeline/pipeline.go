// Package pipeline implements the 8-wide out-of-order core of the simulated
// secure processor: fetch with branch prediction, dispatch into a
// SimpleScalar-style Register Update Unit (RUU), dataflow issue to functional
// units, a load/store queue with store-to-load forwarding, and in-order
// commit.
//
// Two properties matter for the paper and shape the design:
//
//  1. Execution is value-accurate along *both* correct and wrong paths:
//     speculatively fetched instructions — including tampered,
//     not-yet-authenticated ones — really execute with real operand values,
//     and their loads really reach the memory system. That is precisely the
//     behaviour that turns memory fetch into a side channel.
//
//  2. The authentication control points are commit-/issue-/write-time gates
//     driven by the secure memory controller's per-line verification
//     results (Config.GateIssue, GateCommit, StoreWaitAuth; the fetch gate
//     lives in the memory system, which sees every external fetch).
package pipeline

import (
	"fmt"
	"math/bits"

	"authpoint/internal/cryptoengine/pacmac"
	"authpoint/internal/isa"
	"authpoint/internal/obs"
)

// Config parameterizes the core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int
	IFQSize     int

	IntMulLat int
	IntDivLat int
	FPLat     int
	FPDivLat  int

	// GateIssue implements authen-then-issue: an instruction may not issue
	// until the authentication of its own I-line has completed. (Operand
	// gating is realized by the memory system returning load values at
	// their authentication-completion cycle under this policy.)
	GateIssue bool

	// GateCommit implements authen-then-commit: the RUU head may not commit
	// until the authentication requests covering the instruction and its
	// loaded data have completed.
	GateCommit bool

	// StoreWaitAuth implements authen-then-write: committed stores carry
	// the LastRequest tag captured at issue, and the memory system's store
	// buffer refuses to release them externally until that request
	// verifies.
	StoreWaitAuth bool

	// PACMode selects the pointer-authentication auth-failure behaviour
	// (policy dimensions pac/fpac). The zero value (off) makes auth behave
	// as strip — the pre-PAC machine, bit- and cycle-identical.
	PACMode pacmac.Mode

	// PACLat is the keyed MAC unit's latency for sign/auth (strip is a
	// 1-cycle bitmask and does not occupy the unit).
	PACLat int

	Predictor PredictorConfig
}

// DefaultConfig returns the paper's Table 3 core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		RUUSize:     128,
		LSQSize:     64,
		IFQSize:     32,
		IntMulLat:   3,
		IntDivLat:   12,
		FPLat:       4,
		FPDivLat:    12,
		PACLat:      4,
		Predictor:   DefaultPredictorConfig(),
	}
}

// FaultKind classifies architectural faults.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultIllegalInst
	FaultBadAddr
	FaultMisaligned
	FaultPACAuth
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultIllegalInst:
		return "illegal-instruction"
	case FaultBadAddr:
		return "invalid-address"
	case FaultMisaligned:
		return "misaligned-access"
	case FaultPACAuth:
		return "pac-auth-failure"
	}
	return "?"
}

type entryState uint8

const (
	stWaiting entryState = iota
	stIssued
	stDone
)

// entry is one RUU slot.
type entry struct {
	valid bool
	seq   uint64
	pc    uint64
	inst  isa.Inst

	nsrc   int
	srcTag [2]int // producer RUU index, -1 = value captured
	srcVal [2]uint64

	hasDest bool
	destFP  bool
	destReg uint8
	result  uint64

	state     entryState
	doneCycle uint64

	isLoad    bool
	isStore   bool
	addr      uint64
	addrValid bool
	memSize   int

	isCtl     bool
	predNPC   uint64
	actualNPC uint64
	predTaken bool // conditional prediction, for trainer
	isCond    bool
	taken     bool

	instAuthIdx  uint64
	instAuthDone uint64
	dataAuthIdx  uint64
	dataAuthDone uint64
	authTagIssue uint64 // LastRequest at issue (authen-then-write tag)

	fault     FaultKind
	faultAddr uint64

	// consumers lists dependents registered at their dispatch, packed as
	// ruuIndex<<1 | srcSlot. Broadcast walks this list instead of scanning
	// the whole window; records for squashed or reused consumer slots are
	// filtered by the (valid, srcTag == producer) check at wake time. The
	// backing array is preserved across slot reuse so steady-state dispatch
	// does not allocate.
	consumers []int32
}

type fetchedInst struct {
	pc           uint64
	uop          Uop
	predNPC      uint64
	predTaken    bool
	instAuthIdx  uint64
	instAuthDone uint64
}

// Stats counts core events.
type Stats struct {
	Cycles      uint64
	Fetched     uint64
	Dispatched  uint64
	Issued      uint64
	Committed   uint64
	Squashed    uint64
	Mispredicts uint64
	Forwards    uint64

	// Stall accounting (cycles in which the stage was blocked for the
	// given reason while work was available).
	CommitAuthStall uint64 // authen-then-commit head waiting for verification
	IssueAuthStall  uint64 // authen-then-issue entries held back
	SBFullStall     uint64 // store buffer full at commit
}

// Core is the out-of-order processor core.
type Core struct {
	cfg  Config
	mem  MemPort
	bp   *Predictor
	pacs pacmac.Suite // keyed MAC unit behind sign/auth

	pc    uint64
	regs  [isa.NumIntRegs]uint64
	fregs [isa.NumFPRegs]uint64

	renameInt [isa.NumIntRegs]int
	renameFP  [isa.NumFPRegs]int

	ruu   []entry
	head  int
	tail  int
	count int

	lsqCount   int
	storeCount int // stores in the RUU window (skip disambiguation scans when 0)

	// ifq is a fixed-capacity ring (capacity IFQSize): the steady-state
	// fetch/dispatch churn must not reallocate.
	ifq          []fetchedInst
	ifqHead      int
	ifqLen       int
	fetchBlocked uint64 // no fetch before this cycle
	fetchFaulted bool   // fetch ran into an unmapped page; waits for redirect
	fetchTag     uint64 // LastRequest at the control transfer steering fetch

	uops *UopCache // pre-decoded static text (nil = decode per fetch)

	nextSeq uint64
	now     uint64

	waiting      int    // RUU entries in stWaiting (skip issue scan when 0)
	inflight     int    // RUU entries in stIssued
	earliestDone uint64 // lower bound on the next completion cycle

	// Occupancy bitmaps over RUU slots, one bit per slot: which entries are
	// waiting to issue, issued but not complete, and stores (any state).
	// Stage scans iterate set bits in ring age order instead of walking the
	// whole window, so a full 128-entry RUU with three waiting entries costs
	// three visits, not 128.
	waitMask  []uint64
	issueMask []uint64
	storeMask []uint64

	halted   bool
	fault    FaultKind
	faultPC  uint64
	faultVal uint64

	// progress records whether the last Step changed any machine state
	// beyond per-cycle stall accounting. A false value licenses the
	// idle-cycle fast-forward (NextEventAt/SkipTo): every stage's behaviour
	// is then a pure function of (unchanged state, cycle number) until the
	// next pending event.
	progress bool

	outLog []OutEvent

	// CommitHook, when set, observes every committed instruction in program
	// order (pc, instruction, result value). Used by tracing tools and
	// lockstep differential tests.
	CommitHook func(pc uint64, inst isa.Inst, result uint64)

	sink        obs.Sink
	stallActive [obs.NumStallReasons]bool

	// perf is the fast-path perf-counter block (nil = counting off; every
	// increment site is guarded by a nil check, like sink emission).
	perf *obs.Perf

	stats Stats
}

// SetObserver attaches an event sink. A nil sink (the default) keeps every
// emission site on the untaken-branch fast path.
func (c *Core) SetObserver(s obs.Sink) { c.sink = s }

// SetPerf attaches a fast-path perf-counter block. nil (the default) keeps
// every counting site on the untaken-branch fast path. Counting never
// perturbs simulated timing: the counters observe the fast-path machinery,
// they are not part of it.
func (c *Core) SetPerf(p *obs.Perf) { c.perf = p }

// stallBegin opens a stall interval for reason r (idempotent while open).
func (c *Core) stallBegin(r obs.StallReason) {
	if c.sink == nil || c.stallActive[r] {
		return
	}
	c.stallActive[r] = true
	c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvStallBegin, Track: obs.TrackCore, A: uint64(r)})
}

// stallEnd closes the stall interval for reason r if one is open.
func (c *Core) stallEnd(r obs.StallReason) {
	if c.sink == nil || !c.stallActive[r] {
		return
	}
	c.stallActive[r] = false
	c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvStallEnd, Track: obs.TrackCore, A: uint64(r)})
}

// New builds a core with architectural state zeroed and PC at entry.
func New(cfg Config, mem MemPort, entryPC uint64) (*Core, error) {
	if cfg.RUUSize <= 0 || cfg.LSQSize <= 0 || cfg.IFQSize <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive queue sizes %+v", cfg)
	}
	if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.CommitWidth <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive widths %+v", cfg)
	}
	words := (cfg.RUUSize + 63) / 64
	c := &Core{
		cfg:       cfg,
		mem:       mem,
		bp:        NewPredictor(cfg.Predictor),
		pacs:      pacmac.DefaultSuite(),
		pc:        entryPC,
		ruu:       make([]entry, cfg.RUUSize),
		ifq:       make([]fetchedInst, cfg.IFQSize),
		waitMask:  make([]uint64, words),
		issueMask: make([]uint64, words),
		storeMask: make([]uint64, words),
	}
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	return c, nil
}

// SetReg initializes an architectural integer register (loader use).
func (c *Core) SetReg(r uint8, v uint64) { c.regs[r] = v }

// Reg reads an architectural integer register.
func (c *Core) Reg(r uint8) uint64 { return c.regs[r] }

// FReg reads an architectural FP register.
func (c *Core) FReg(r uint8) uint64 { return c.fregs[r] }

// PC returns the architectural (fetch) PC.
func (c *Core) PC() uint64 { return c.pc }

// Halted reports whether a HALT instruction has committed.
func (c *Core) Halted() bool { return c.halted }

// Faulted returns the architectural fault taken at commit, if any.
func (c *Core) Faulted() (FaultKind, uint64, uint64) { return c.fault, c.faultPC, c.faultVal }

// OutLog returns all OUT events retired so far.
func (c *Core) OutLog() []OutEvent { return c.outLog }

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Committed returns the committed-instruction count without copying the
// whole Stats struct (the Run loop reads it every iteration).
func (c *Core) Committed() uint64 { return c.stats.Committed }

// SetUopCache attaches a pre-decoded micro-op cache for the static text.
// nil (the default) decodes every fetched word directly — the reference
// behaviour the cache is pinned against.
func (c *Core) SetUopCache(uc *UopCache) { c.uops = uc }

// Predictor exposes the branch predictor (for stats).
func (c *Core) Predictor() *Predictor { return c.bp }

// ruuOrder iterates RUU indices from oldest to youngest.
func (c *Core) ruuOrder(f func(idx int, e *entry) bool) {
	for i, idx := 0, c.head; i < c.count; i, idx = i+1, (idx+1)%c.cfg.RUUSize {
		if !f(idx, &c.ruu[idx]) {
			return
		}
	}
}

func maskSet(m []uint64, idx int)   { m[idx>>6] |= 1 << (idx & 63) }
func maskClear(m []uint64, idx int) { m[idx>>6] &^= 1 << (idx & 63) }

// maskOrder visits the set bits of m from RUU head to tail — oldest entry
// first, honouring the ring wrap. The mask invariant (bits only within the
// live window [head, head+count)) makes bit order within each segment equal
// age order.
func (c *Core) maskOrder(m []uint64, f func(idx int, e *entry) bool) {
	if c.count == 0 {
		return
	}
	end := c.head + c.count
	if end <= c.cfg.RUUSize {
		c.maskSeg(m, c.head, end, f)
		return
	}
	if c.maskSeg(m, c.head, c.cfg.RUUSize, f) {
		c.maskSeg(m, 0, end-c.cfg.RUUSize, f)
	}
}

// maskSeg visits set bits of m with indices in [lo, hi), ascending. It
// reports whether the caller should continue with the next segment.
func (c *Core) maskSeg(m []uint64, lo, hi int, f func(idx int, e *entry) bool) bool {
	w := lo >> 6
	cur := m[w] &^ (1<<(uint(lo)&63) - 1)
	for {
		base := w << 6
		for cur != 0 {
			idx := base + bits.TrailingZeros64(cur)
			if idx >= hi {
				return true
			}
			if !f(idx, &c.ruu[idx]) {
				return false
			}
			cur &= cur - 1
		}
		w++
		if w<<6 >= hi {
			return true
		}
		cur = m[w]
	}
}

// Step advances the machine one cycle. Stages run in reverse pipeline order
// so same-cycle structural hazards resolve like hardware.
func (c *Core) Step() {
	if c.halted || c.fault != FaultNone {
		return
	}
	c.progress = false
	c.stats.Cycles++
	c.mem.Tick(c.now)
	c.commit()
	if c.halted || c.fault != FaultNone {
		c.progress = true
		c.now++
		return
	}
	c.writeback()
	c.issue()
	c.dispatch()
	c.fetch()
	c.now++
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// Progressed reports whether the last Step changed machine state beyond
// per-cycle stall accounting. Note it covers only the core's own stages;
// the memory system's Tick reports its progress separately.
func (c *Core) Progressed() bool { return c.progress }

// neverCycle is the "no pending event" sentinel for NextEventAt.
const neverCycle = ^uint64(0)

// NextEventAt returns the earliest future cycle at which a pipeline stage
// could act, assuming no external state changes. It is meaningful only
// immediately after a Step that reported no progress: the quiet Step proves
// every stage is blocked, so the blocking conditions' expiry cycles are the
// only times anything can happen. A return value <= Now() means the core
// cannot prove idleness (skip nothing); neverCycle means no event is
// pending (only external bounds — watchdog, security fault — apply).
//
// Comparisons are >= c.now, not > c.now: Step increments the clock after
// running its stages, so NextEventAt sees the cycle the NEXT Step's stages
// will observe. A deadline equal to c.now means that Step acts — returning
// c.now makes the machine take it as a normal step (the skip loop requires
// next > now).
func (c *Core) NextEventAt() uint64 {
	if c.halted || c.fault != FaultNone {
		return c.now
	}
	next := neverCycle
	if c.inflight > 0 {
		// Issued entries complete at earliestDone. A quiet writeback scan
		// always leaves it exact and in the future; 0 means "unknown,
		// recompute next Step" and vetoes skipping.
		if c.earliestDone <= c.now {
			return c.now
		}
		next = c.earliestDone
	}
	if c.count > 0 && c.cfg.GateCommit {
		if e := &c.ruu[c.head]; e.state == stDone {
			if gate := max(e.instAuthDone, e.dataAuthDone); gate >= c.now && gate < next {
				next = gate
			}
		}
	}
	if c.waiting > 0 && c.cfg.GateIssue {
		// Operand-ready entries held by authen-then-issue become eligible
		// when their I-line verification completes.
		c.maskOrder(c.waitMask, func(idx int, e *entry) bool {
			for s := 0; s < e.nsrc; s++ {
				if e.srcTag[s] != -1 {
					return true
				}
			}
			if e.instAuthDone >= c.now && e.instAuthDone < next {
				next = e.instAuthDone
			}
			return true
		})
	}
	if !c.fetchFaulted && c.ifqLen < c.cfg.IFQSize && c.fetchBlocked >= c.now && c.fetchBlocked < next {
		next = c.fetchBlocked
	}
	return next
}

// SkipTo advances the clock to cycle t without stepping, crediting the
// skipped cycles to the per-cycle stall counters exactly as the skipped
// Steps would have. The caller guarantees the window [Now(), t) is quiet:
// the previous Step made no progress and t does not exceed any component's
// NextEventAt, so the blocking conditions observed now hold for the whole
// window. It returns the number of skipped cycles in which the commit head
// was a ready store rejected by a full store buffer (0 or t-Now()), which
// the machine forwards to the store buffer's rejection counter.
func (c *Core) SkipTo(t uint64) (sbFullCycles uint64) {
	if t <= c.now {
		return 0
	}
	delta := t - c.now
	c.stats.Cycles += delta
	if c.perf != nil {
		c.perf.SkipCalls++
		c.perf.SkipCycles += delta
	}
	if c.count > 0 {
		if e := &c.ruu[c.head]; e.state == stDone {
			if c.cfg.GateCommit && max(e.instAuthDone, e.dataAuthDone) > c.now {
				c.stats.CommitAuthStall += delta
			} else if e.fault == FaultNone && e.isStore {
				// Done, past the gate, not faulting, yet it did not commit
				// on the quiet Step: the store buffer refused it.
				c.stats.SBFullStall += delta
				sbFullCycles = delta
			}
		}
	}
	if c.waiting > 0 && c.cfg.GateIssue {
		held := uint64(0)
		c.maskOrder(c.waitMask, func(idx int, e *entry) bool {
			for s := 0; s < e.nsrc; s++ {
				if e.srcTag[s] != -1 {
					return true
				}
			}
			if e.instAuthDone > c.now {
				held++
			}
			return true
		})
		c.stats.IssueAuthStall += held * delta
	}
	c.now = t
	return sbFullCycles
}
