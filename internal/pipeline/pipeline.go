// Package pipeline implements the 8-wide out-of-order core of the simulated
// secure processor: fetch with branch prediction, dispatch into a
// SimpleScalar-style Register Update Unit (RUU), dataflow issue to functional
// units, a load/store queue with store-to-load forwarding, and in-order
// commit.
//
// Two properties matter for the paper and shape the design:
//
//  1. Execution is value-accurate along *both* correct and wrong paths:
//     speculatively fetched instructions — including tampered,
//     not-yet-authenticated ones — really execute with real operand values,
//     and their loads really reach the memory system. That is precisely the
//     behaviour that turns memory fetch into a side channel.
//
//  2. The authentication control points are commit-/issue-/write-time gates
//     driven by the secure memory controller's per-line verification
//     results (Config.GateIssue, GateCommit, StoreWaitAuth; the fetch gate
//     lives in the memory system, which sees every external fetch).
package pipeline

import (
	"fmt"

	"authpoint/internal/isa"
	"authpoint/internal/obs"
)

// Config parameterizes the core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int
	IFQSize     int

	IntMulLat int
	IntDivLat int
	FPLat     int
	FPDivLat  int

	// GateIssue implements authen-then-issue: an instruction may not issue
	// until the authentication of its own I-line has completed. (Operand
	// gating is realized by the memory system returning load values at
	// their authentication-completion cycle under this policy.)
	GateIssue bool

	// GateCommit implements authen-then-commit: the RUU head may not commit
	// until the authentication requests covering the instruction and its
	// loaded data have completed.
	GateCommit bool

	// StoreWaitAuth implements authen-then-write: committed stores carry
	// the LastRequest tag captured at issue, and the memory system's store
	// buffer refuses to release them externally until that request
	// verifies.
	StoreWaitAuth bool

	Predictor PredictorConfig
}

// DefaultConfig returns the paper's Table 3 core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		RUUSize:     128,
		LSQSize:     64,
		IFQSize:     32,
		IntMulLat:   3,
		IntDivLat:   12,
		FPLat:       4,
		FPDivLat:    12,
		Predictor:   DefaultPredictorConfig(),
	}
}

// FaultKind classifies architectural faults.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultIllegalInst
	FaultBadAddr
	FaultMisaligned
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultIllegalInst:
		return "illegal-instruction"
	case FaultBadAddr:
		return "invalid-address"
	case FaultMisaligned:
		return "misaligned-access"
	}
	return "?"
}

type entryState uint8

const (
	stWaiting entryState = iota
	stIssued
	stDone
)

// entry is one RUU slot.
type entry struct {
	valid bool
	seq   uint64
	pc    uint64
	inst  isa.Inst

	nsrc   int
	srcTag [2]int // producer RUU index, -1 = value captured
	srcVal [2]uint64

	hasDest bool
	destFP  bool
	destReg uint8
	result  uint64

	state     entryState
	doneCycle uint64

	isLoad    bool
	isStore   bool
	addr      uint64
	addrValid bool
	memSize   int

	isCtl     bool
	predNPC   uint64
	actualNPC uint64
	predTaken bool // conditional prediction, for trainer
	isCond    bool
	taken     bool

	instAuthIdx  uint64
	instAuthDone uint64
	dataAuthIdx  uint64
	dataAuthDone uint64
	authTagIssue uint64 // LastRequest at issue (authen-then-write tag)

	fault     FaultKind
	faultAddr uint64
}

type fetchedInst struct {
	pc           uint64
	inst         isa.Inst
	predNPC      uint64
	predTaken    bool
	isCond       bool
	instAuthIdx  uint64
	instAuthDone uint64
	illegal      bool
}

// Stats counts core events.
type Stats struct {
	Cycles      uint64
	Fetched     uint64
	Dispatched  uint64
	Issued      uint64
	Committed   uint64
	Squashed    uint64
	Mispredicts uint64
	Forwards    uint64

	// Stall accounting (cycles in which the stage was blocked for the
	// given reason while work was available).
	CommitAuthStall uint64 // authen-then-commit head waiting for verification
	IssueAuthStall  uint64 // authen-then-issue entries held back
	SBFullStall     uint64 // store buffer full at commit
}

// Core is the out-of-order processor core.
type Core struct {
	cfg Config
	mem MemPort
	bp  *Predictor

	pc    uint64
	regs  [isa.NumIntRegs]uint64
	fregs [isa.NumFPRegs]uint64

	renameInt [isa.NumIntRegs]int
	renameFP  [isa.NumFPRegs]int

	ruu   []entry
	head  int
	tail  int
	count int

	lsqCount int

	ifq          []fetchedInst
	fetchBlocked uint64 // no fetch before this cycle
	fetchFaulted bool   // fetch ran into an unmapped page; waits for redirect
	fetchTag     uint64 // LastRequest at the control transfer steering fetch

	nextSeq uint64
	now     uint64

	waiting      int    // RUU entries in stWaiting (skip issue scan when 0)
	inflight     int    // RUU entries in stIssued
	earliestDone uint64 // lower bound on the next completion cycle

	halted   bool
	fault    FaultKind
	faultPC  uint64
	faultVal uint64

	outLog []OutEvent

	// CommitHook, when set, observes every committed instruction in program
	// order (pc, instruction, result value). Used by tracing tools and
	// lockstep differential tests.
	CommitHook func(pc uint64, inst isa.Inst, result uint64)

	sink        obs.Sink
	stallActive [obs.NumStallReasons]bool

	stats Stats
}

// SetObserver attaches an event sink. A nil sink (the default) keeps every
// emission site on the untaken-branch fast path.
func (c *Core) SetObserver(s obs.Sink) { c.sink = s }

// stallBegin opens a stall interval for reason r (idempotent while open).
func (c *Core) stallBegin(r obs.StallReason) {
	if c.sink == nil || c.stallActive[r] {
		return
	}
	c.stallActive[r] = true
	c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvStallBegin, Track: obs.TrackCore, A: uint64(r)})
}

// stallEnd closes the stall interval for reason r if one is open.
func (c *Core) stallEnd(r obs.StallReason) {
	if c.sink == nil || !c.stallActive[r] {
		return
	}
	c.stallActive[r] = false
	c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvStallEnd, Track: obs.TrackCore, A: uint64(r)})
}

// New builds a core with architectural state zeroed and PC at entry.
func New(cfg Config, mem MemPort, entryPC uint64) (*Core, error) {
	if cfg.RUUSize <= 0 || cfg.LSQSize <= 0 || cfg.IFQSize <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive queue sizes %+v", cfg)
	}
	if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.CommitWidth <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive widths %+v", cfg)
	}
	c := &Core{
		cfg: cfg,
		mem: mem,
		bp:  NewPredictor(cfg.Predictor),
		pc:  entryPC,
		ruu: make([]entry, cfg.RUUSize),
	}
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	return c, nil
}

// SetReg initializes an architectural integer register (loader use).
func (c *Core) SetReg(r uint8, v uint64) { c.regs[r] = v }

// Reg reads an architectural integer register.
func (c *Core) Reg(r uint8) uint64 { return c.regs[r] }

// FReg reads an architectural FP register.
func (c *Core) FReg(r uint8) uint64 { return c.fregs[r] }

// PC returns the architectural (fetch) PC.
func (c *Core) PC() uint64 { return c.pc }

// Halted reports whether a HALT instruction has committed.
func (c *Core) Halted() bool { return c.halted }

// Faulted returns the architectural fault taken at commit, if any.
func (c *Core) Faulted() (FaultKind, uint64, uint64) { return c.fault, c.faultPC, c.faultVal }

// OutLog returns all OUT events retired so far.
func (c *Core) OutLog() []OutEvent { return c.outLog }

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Predictor exposes the branch predictor (for stats).
func (c *Core) Predictor() *Predictor { return c.bp }

// ruuOrder iterates RUU indices from oldest to youngest.
func (c *Core) ruuOrder(f func(idx int, e *entry) bool) {
	for i, idx := 0, c.head; i < c.count; i, idx = i+1, (idx+1)%c.cfg.RUUSize {
		if !f(idx, &c.ruu[idx]) {
			return
		}
	}
}

// Step advances the machine one cycle. Stages run in reverse pipeline order
// so same-cycle structural hazards resolve like hardware.
func (c *Core) Step() {
	if c.halted || c.fault != FaultNone {
		return
	}
	c.stats.Cycles++
	c.mem.Tick(c.now)
	c.commit()
	if c.halted || c.fault != FaultNone {
		c.now++
		return
	}
	c.writeback()
	c.issue()
	c.dispatch()
	c.fetch()
	c.now++
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }
