package pipeline

import "testing"

func TestBimodalTrainsBothWays(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	pc := uint64(0x1000)
	if p.PredictCond(pc) {
		t.Fatal("cold prediction should be weakly not-taken")
	}
	// Train taken: two updates flip the 2-bit counter.
	p.UpdateCond(pc, false, true)
	p.UpdateCond(pc, false, true)
	if !p.PredictCond(pc) {
		t.Fatal("should predict taken after training")
	}
	// Saturation: one not-taken does not flip a strong counter.
	p.UpdateCond(pc, true, true) // now strongly taken
	p.UpdateCond(pc, true, false)
	if !p.PredictCond(pc) {
		t.Fatal("strong counter flipped by one opposite outcome")
	}
	p.UpdateCond(pc, true, false)
	p.UpdateCond(pc, true, false)
	if p.PredictCond(pc) {
		t.Fatal("should predict not-taken after retraining")
	}
}

func TestBimodalAccuracyAccounting(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		pred := p.PredictCond(pc)
		p.UpdateCond(pc, pred, true) // always taken
	}
	acc := p.CondAccuracy()
	if acc < 0.7 || acc > 1 {
		t.Fatalf("accuracy %.2f for an always-taken branch", acc)
	}
	if NewPredictor(DefaultPredictorConfig()).CondAccuracy() != 0 {
		t.Fatal("accuracy with no lookups should be 0")
	}
}

func TestBTBInstallAndLookup(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	if _, ok := p.LookupBTB(0x2000); ok {
		t.Fatal("cold BTB hit")
	}
	p.UpdateBTB(0x2000, 0x3000)
	tgt, ok := p.LookupBTB(0x2000)
	if !ok || tgt != 0x3000 {
		t.Fatalf("lookup %v %#x", ok, tgt)
	}
	// Retarget.
	p.UpdateBTB(0x2000, 0x4000)
	if tgt, _ := p.LookupBTB(0x2000); tgt != 0x4000 {
		t.Fatalf("retarget failed: %#x", tgt)
	}
	// Filling a set beyond its ways evicts something but never corrupts.
	cfg := PredictorConfig{BimodalEntries: 16, BTBEntries: 8, BTBWays: 2, RASEntries: 4}
	q := NewPredictor(cfg)
	for i := uint64(0); i < 64; i++ {
		q.UpdateBTB(0x1000+i*16, 0x9000+i)
	}
	hits := 0
	for i := uint64(0); i < 64; i++ {
		if tgt, ok := q.LookupBTB(0x1000 + i*16); ok {
			hits++
			if tgt != 0x9000+i {
				t.Fatalf("corrupted BTB entry for %#x", 0x1000+i*16)
			}
		}
	}
	if hits == 0 || hits > 8 {
		t.Fatalf("hits %d out of bounds for an 8-entry BTB", hits)
	}
}

func TestRASLIFO(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	if _, ok := p.PopRAS(); ok {
		t.Fatal("pop from empty RAS")
	}
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	p.PushRAS(0x300)
	for _, want := range []uint64{0x300, 0x200, 0x100} {
		got, ok := p.PopRAS()
		if !ok || got != want {
			t.Fatalf("pop %#x want %#x", got, want)
		}
	}
	if _, ok := p.PopRAS(); ok {
		t.Fatal("RAS underflow not detected")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	p := NewPredictor(PredictorConfig{BimodalEntries: 16, BTBEntries: 8, BTBWays: 2, RASEntries: 4})
	for i := uint64(1); i <= 6; i++ { // 6 pushes into a 4-deep stack
		p.PushRAS(i * 0x10)
	}
	// The newest four survive, oldest two were overwritten.
	for _, want := range []uint64{0x60, 0x50, 0x40, 0x30} {
		got, ok := p.PopRAS()
		if !ok || got != want {
			t.Fatalf("pop %#x want %#x", got, want)
		}
	}
}

func TestPredictorSizingRoundsUp(t *testing.T) {
	p := NewPredictor(PredictorConfig{BimodalEntries: 100, BTBEntries: 9, BTBWays: 3, RASEntries: 0})
	if len(p.bimodal) != 128 {
		t.Fatalf("bimodal %d want 128", len(p.bimodal))
	}
	if len(p.ras) != 1 {
		t.Fatalf("ras %d want 1", len(p.ras))
	}
	// Must not panic on lookups with odd shapes.
	p.PredictCond(0x123)
	p.UpdateBTB(0x123, 0x456)
	p.LookupBTB(0x123)
}
