// Pipeline stages, in the reverse order Step runs them: commit, writeback,
// issue/execute, dispatch, fetch. Each stage touches only this cycle's
// state; reverse order makes same-cycle structural hazards resolve the way
// hardware does.

package pipeline

import (
	"authpoint/internal/isa"
	"authpoint/internal/obs"
)

// ---------------------------------------------------------------- commit --

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		e := &c.ruu[c.head]
		if e.state != stDone {
			// Head is blocked on execution, not authentication: any open
			// auth/SB stall interval is over.
			c.stallEnd(obs.StallCommitAuth)
			c.stallEnd(obs.StallSBFull)
			return
		}
		if c.cfg.GateCommit {
			gate := max(e.instAuthDone, e.dataAuthDone)
			if c.now < gate {
				c.stats.CommitAuthStall++
				c.stallBegin(obs.StallCommitAuth)
				return
			}
		}
		c.stallEnd(obs.StallCommitAuth)
		if e.fault != FaultNone {
			// Precise exception at commit: the faulting address becomes
			// architecturally visible (logged/displayed by the OS).
			c.fault = e.fault
			c.faultPC = e.pc
			c.faultVal = e.faultAddr
			if e.fault == FaultBadAddr {
				c.mem.LogFault(e.faultAddr)
			}
			return
		}
		switch e.inst.Op.Class() {
		case isa.ClassHalt:
			c.halted = true
		case isa.ClassOut:
			c.outLog = append(c.outLog, OutEvent{Cycle: c.now, Port: uint32(e.inst.Imm), Val: e.srcVal[0]})
		}
		if e.isStore {
			if !c.mem.CommitStore(c.now, e.addr, e.srcVal[1], e.memSize, e.authTagIssue) {
				c.stats.SBFullStall++
				c.stallBegin(obs.StallSBFull)
				return
			}
		}
		c.stallEnd(obs.StallSBFull)
		if e.hasDest {
			if e.destFP {
				c.fregs[e.destReg] = e.result
				if c.renameFP[e.destReg] == c.head {
					c.renameFP[e.destReg] = -1
				}
			} else if e.destReg != isa.RegZero {
				c.regs[e.destReg] = e.result
				if c.renameInt[e.destReg] == c.head {
					c.renameInt[e.destReg] = -1
				}
			}
		}
		if e.isLoad || e.isStore {
			c.lsqCount--
		}
		if c.CommitHook != nil {
			c.CommitHook(e.pc, e.inst, e.result)
		}
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvCommit, Track: obs.TrackCore, Addr: e.pc})
		}
		e.valid = false
		c.head = (c.head + 1) % c.cfg.RUUSize
		c.count--
		c.stats.Committed++
		if c.halted {
			return
		}
	}
}

// ------------------------------------------------------------- writeback --

func (c *Core) writeback() {
	if c.inflight == 0 || c.now < c.earliestDone {
		return
	}
	next := ^uint64(0)
	// Complete in age order so the oldest mispredicted branch wins.
	var redirect *entry
	var redirectIdx int
	c.ruuOrder(func(idx int, e *entry) bool {
		if e.state != stIssued {
			return true
		}
		if e.doneCycle > c.now {
			if e.doneCycle < next {
				next = e.doneCycle
			}
			return true
		}
		e.state = stDone
		c.inflight--
		c.broadcast(idx, e)
		if e.isCond {
			c.bp.UpdateCond(e.pc, e.predTaken, e.taken)
		}
		if e.isCtl && e.inst.Op == isa.OpJALR {
			c.bp.UpdateBTB(e.pc, e.actualNPC)
		}
		if e.isCtl && e.actualNPC != e.predNPC && redirect == nil {
			redirect = e
			redirectIdx = idx
		}
		return true
	})
	c.earliestDone = next
	if redirect != nil {
		c.stats.Mispredicts++
		before := c.stats.Squashed
		c.squashAfter(redirectIdx)
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvSquash, Track: obs.TrackCore,
				Addr: redirect.pc, A: c.stats.Squashed - before})
		}
		c.pc = redirect.actualNPC
		c.fetchBlocked = c.now + 1
		c.fetchFaulted = false
		c.fetchTag = c.mem.LastAuthRequest(c.now)
		c.ifq = c.ifq[:0]
	}
}

// broadcast wakes consumers of entry idx. Consumers are always younger than
// their producer, so the scan starts just past idx.
func (c *Core) broadcast(idx int, e *entry) {
	for p := (idx + 1) % c.cfg.RUUSize; p != c.tail; p = (p + 1) % c.cfg.RUUSize {
		w := &c.ruu[p]
		if !w.valid {
			continue
		}
		for s := 0; s < w.nsrc; s++ {
			if w.srcTag[s] == idx {
				w.srcTag[s] = -1
				w.srcVal[s] = e.result
			}
		}
	}
}

// squashAfter removes every entry younger than RUU index idx and rebuilds
// the rename tables from the survivors.
func (c *Core) squashAfter(idx int) {
	// Count survivors from head through idx.
	keep := 0
	for i, p := 0, c.head; i < c.count; i, p = i+1, (p+1)%c.cfg.RUUSize {
		keep++
		if p == idx {
			break
		}
	}
	for i, p := keep, (idx+1)%c.cfg.RUUSize; i < c.count; i, p = i+1, (p+1)%c.cfg.RUUSize {
		e := &c.ruu[p]
		if e.valid {
			if e.isLoad || e.isStore {
				c.lsqCount--
			}
			switch e.state {
			case stWaiting:
				c.waiting--
			case stIssued:
				c.inflight--
			}
			e.valid = false
			c.stats.Squashed++
		}
	}
	c.earliestDone = 0
	c.count = keep
	c.tail = (idx + 1) % c.cfg.RUUSize
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	c.ruuOrder(func(p int, e *entry) bool {
		if e.hasDest {
			if e.destFP {
				c.renameFP[e.destReg] = p
			} else if e.destReg != isa.RegZero {
				c.renameInt[e.destReg] = p
			}
		}
		return true
	})
}

// ---------------------------------------------------------------- issue --

func (c *Core) issue() {
	if c.waiting == 0 {
		c.stallEnd(obs.StallIssueAuth)
		return
	}
	issued := 0
	authHeld := false
	c.ruuOrder(func(idx int, e *entry) bool {
		if issued >= c.cfg.IssueWidth {
			return false
		}
		if e.state != stWaiting {
			return true
		}
		// Early store-address calculation (does not consume an issue slot):
		// lets younger loads disambiguate sooner.
		if e.isStore && !e.addrValid && e.srcTag[0] == -1 {
			c.computeAddr(e)
		}
		for s := 0; s < e.nsrc; s++ {
			if e.srcTag[s] != -1 {
				return true // operands outstanding
			}
		}
		if c.cfg.GateIssue && c.now < e.instAuthDone {
			c.stats.IssueAuthStall++
			authHeld = true
			return true
		}
		if e.isLoad {
			if !c.issueLoad(idx, e) {
				return true
			}
			issued++
			c.stats.Issued++
			return true
		}
		c.execute(e)
		issued++
		c.stats.Issued++
		return true
	})
	if authHeld {
		c.stallBegin(obs.StallIssueAuth)
	} else {
		c.stallEnd(obs.StallIssueAuth)
	}
}

func (c *Core) computeAddr(e *entry) {
	e.addr = e.srcVal[0] + uint64(int64(e.inst.Imm))
	e.addrValid = true
	e.memSize = e.inst.MemBytes()
}

// issueLoad attempts to issue a load; reports whether it consumed an issue
// slot (false = blocked by disambiguation, retry next cycle).
func (c *Core) issueLoad(idx int, e *entry) bool {
	if !e.addrValid {
		c.computeAddr(e)
	}
	// Memory disambiguation against older stores, scanned oldest to
	// youngest: the youngest older store governs. An older store with an
	// unresolved address hard-blocks the load — and must invalidate any
	// forwarding candidate found so far, because the unresolved store is
	// younger than that candidate and may overwrite it. A younger exact
	// covering match, conversely, supersedes an older partial overlap.
	var forward *entry
	blocked := false
	c.ruuOrder(func(p int, older *entry) bool {
		if p == idx {
			return false
		}
		if !older.isStore {
			return true
		}
		if !older.addrValid {
			forward = nil
			blocked = true // conservative: unknown older store address
			return false
		}
		if rangesOverlap(older.addr, older.memSize, e.addr, e.memSize) {
			if older.addr == e.addr && older.memSize >= e.memSize && older.srcTag[1] == -1 {
				forward = older // youngest older matching store wins
				blocked = false
			} else {
				forward = nil
				blocked = true // partial overlap or data not ready
			}
		}
		return true
	})
	if blocked {
		return false
	}
	c.markIssued(e)
	if forward != nil {
		c.stats.Forwards++
		raw := truncate(forward.srcVal[1], e.memSize)
		c.finishLoad(e, raw, c.now+2)
		return true
	}
	if e.addr%uint64(e.memSize) != 0 {
		e.fault = FaultMisaligned
		e.faultAddr = e.addr
		e.doneCycle = c.now + 2
		return true
	}
	if !c.mem.ValidAddr(e.addr) {
		// Translation fault: no memory access reaches the bus; the fault
		// is taken (and the address disclosed) only if the load commits.
		e.fault = FaultBadAddr
		e.faultAddr = e.addr
		e.doneCycle = c.now + 2
		return true
	}
	if e.inst.Op == isa.OpPREF {
		// Prefetch: touches the hierarchy, produces no value.
		c.mem.ReadData(c.now+1, e.addr, e.memSize, e.authTagIssue)
		e.result = 0
		e.doneCycle = c.now + 2
		return true
	}
	r := c.mem.ReadData(c.now+1, e.addr, e.memSize, e.authTagIssue)
	e.dataAuthIdx = r.AuthIdx
	e.dataAuthDone = r.AuthDone
	c.finishLoad(e, r.Raw, max(r.Ready, c.now+2))
	return true
}

func (c *Core) finishLoad(e *entry, raw uint64, ready uint64) {
	if e.inst.Op == isa.OpFLD {
		e.result = raw
	} else {
		e.result = isa.SignExtendLoad(e.inst.Op, raw)
	}
	e.doneCycle = ready
}

func truncate(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}

func rangesOverlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// markIssued transitions an entry out of stWaiting, capturing the
// LastRequest tag and maintaining the scheduler counts.
func (c *Core) markIssued(e *entry) {
	e.state = stIssued
	e.authTagIssue = c.mem.LastAuthRequest(c.now)
	c.waiting--
	c.inflight++
	c.earliestDone = 0 // recomputed on the next writeback scan
	if c.sink != nil {
		c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvIssue, Track: obs.TrackCore, Addr: e.pc})
	}
}

// execute computes results for non-load instructions at issue and schedules
// completion.
func (c *Core) execute(e *entry) {
	c.markIssued(e)
	lat := 1
	op := e.inst.Op
	switch op.Class() {
	case isa.ClassNop, isa.ClassHalt, isa.ClassOut:
		// OUT's value is srcVal[0]; emitted at commit.
	case isa.ClassALU:
		b := e.srcVal[1]
		if op.HasImm() {
			b = isa.ImmOperand(e.inst.Imm)
		}
		e.result = isa.EvalALU(op, e.srcVal[0], b)
	case isa.ClassMul:
		e.result = isa.EvalALU(op, e.srcVal[0], e.srcVal[1])
		lat = c.cfg.IntMulLat
		if op == isa.OpDIV || op == isa.OpREM {
			lat = c.cfg.IntDivLat
		}
	case isa.ClassStore, isa.ClassFPStore:
		if !e.addrValid {
			c.computeAddr(e)
		}
		switch {
		case e.addr%uint64(e.memSize) != 0:
			e.fault = FaultMisaligned
			e.faultAddr = e.addr
		case !c.mem.ValidAddr(e.addr):
			e.fault = FaultBadAddr
			e.faultAddr = e.addr
		}
	case isa.ClassBranch:
		e.isCond = true
		if op == isa.OpFBLT || op == isa.OpFBGE {
			e.taken = isa.EvalFPBranch(op, f64(e.srcVal[0]), f64(e.srcVal[1]))
		} else {
			e.taken = isa.EvalBranch(op, e.srcVal[0], e.srcVal[1])
		}
		if e.taken {
			e.actualNPC = isa.BranchTarget(e.pc, e.inst.Imm)
		} else {
			e.actualNPC = e.pc + isa.InstBytes
		}
	case isa.ClassJump:
		if op == isa.OpJAL {
			e.actualNPC = isa.BranchTarget(e.pc, e.inst.Imm)
		} else {
			e.actualNPC = (e.srcVal[0] + uint64(int64(e.inst.Imm))) &^ 3
		}
		e.result = e.pc + isa.InstBytes
	case isa.ClassFPU:
		switch op {
		case isa.OpFCVTIF:
			e.result = bits(isa.CvtIntToFP(e.srcVal[0]))
		case isa.OpFCVTFI:
			e.result = isa.CvtFPToInt(f64(e.srcVal[0]))
		default:
			e.result = bits(isa.EvalFPU(op, f64(e.srcVal[0]), f64(e.srcVal[1])))
		}
		lat = c.cfg.FPLat
		if op == isa.OpFDIV {
			lat = c.cfg.FPDivLat
		}
	default:
		e.fault = FaultIllegalInst
		e.faultAddr = e.pc
	}
	e.doneCycle = c.now + uint64(lat)
}

// ------------------------------------------------------------- dispatch --

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.IssueWidth && len(c.ifq) > 0; n++ {
		if c.count >= c.cfg.RUUSize {
			return
		}
		fi := c.ifq[0]
		isMem := fi.inst.IsMem()
		if isMem && c.lsqCount >= c.cfg.LSQSize {
			return
		}
		c.ifq = c.ifq[1:]
		idx := c.tail
		c.tail = (c.tail + 1) % c.cfg.RUUSize
		c.count++
		e := &c.ruu[idx]
		*e = entry{
			valid:        true,
			seq:          c.nextSeq,
			pc:           fi.pc,
			inst:         fi.inst,
			state:        stWaiting,
			predNPC:      fi.predNPC,
			predTaken:    fi.predTaken,
			instAuthIdx:  fi.instAuthIdx,
			instAuthDone: fi.instAuthDone,
		}
		c.nextSeq++
		if fi.illegal {
			e.fault = FaultIllegalInst
			e.faultAddr = fi.pc
			e.state = stIssued
			e.doneCycle = c.now + 1
			c.inflight++
			c.earliestDone = 0
			c.stats.Dispatched++
			if c.sink != nil {
				c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvDispatch, Track: obs.TrackCore, Addr: e.pc})
			}
			continue
		}
		c.wireOperands(idx, e)
		if isMem {
			c.lsqCount++
		}
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvDispatch, Track: obs.TrackCore, Addr: e.pc})
		}
		if e.nsrc == 0 && !e.isLoad && e.inst.Op.Class() == isa.ClassNop {
			e.state = stIssued
			e.doneCycle = c.now + 1
			c.inflight++
			c.earliestDone = 0
		} else {
			c.waiting++
		}
		c.stats.Dispatched++
	}
}

// wireOperands decodes register sources/destination and renames them.
func (c *Core) wireOperands(idx int, e *entry) {
	op := e.inst.Op
	type src struct {
		reg uint8
		fp  bool
	}
	var srcs []src
	switch op.Class() {
	case isa.ClassALU:
		if op.HasImm() {
			srcs = []src{{e.inst.Rs1, false}}
		} else {
			srcs = []src{{e.inst.Rs1, false}, {e.inst.Rs2, false}}
		}
		c.setDest(e, e.inst.Rd, false)
	case isa.ClassMul:
		srcs = []src{{e.inst.Rs1, false}, {e.inst.Rs2, false}}
		c.setDest(e, e.inst.Rd, false)
	case isa.ClassLoad:
		e.isLoad = true
		srcs = []src{{e.inst.Rs1, false}}
		if op != isa.OpPREF {
			c.setDest(e, e.inst.Rd, false)
		}
	case isa.ClassFPLoad:
		e.isLoad = true
		srcs = []src{{e.inst.Rs1, false}}
		c.setDest(e, e.inst.Rd, true)
	case isa.ClassStore:
		e.isStore = true
		srcs = []src{{e.inst.Rs1, false}, {e.inst.Rs2, false}}
	case isa.ClassFPStore:
		e.isStore = true
		srcs = []src{{e.inst.Rs1, false}, {e.inst.Rs2, true}}
	case isa.ClassBranch:
		e.isCtl = true
		fp := op == isa.OpFBLT || op == isa.OpFBGE
		srcs = []src{{e.inst.Rs1, fp}, {e.inst.Rs2, fp}}
	case isa.ClassJump:
		e.isCtl = true
		if op == isa.OpJALR {
			srcs = []src{{e.inst.Rs1, false}}
		}
		c.setDest(e, e.inst.Rd, false)
	case isa.ClassFPU:
		switch op {
		case isa.OpFCVTIF:
			srcs = []src{{e.inst.Rs1, false}}
			c.setDest(e, e.inst.Rd, true)
		case isa.OpFCVTFI:
			srcs = []src{{e.inst.Rs1, true}}
			c.setDest(e, e.inst.Rd, false)
		case isa.OpFNEG:
			srcs = []src{{e.inst.Rs1, true}}
			c.setDest(e, e.inst.Rd, true)
		default:
			srcs = []src{{e.inst.Rs1, true}, {e.inst.Rs2, true}}
			c.setDest(e, e.inst.Rd, true)
		}
	case isa.ClassOut:
		srcs = []src{{e.inst.Rs2, false}}
	}
	e.nsrc = len(srcs)
	for i, s := range srcs {
		tag := -1
		if s.fp {
			tag = c.renameFP[s.reg]
		} else if s.reg != isa.RegZero {
			tag = c.renameInt[s.reg]
		}
		if tag == -1 {
			if s.fp {
				e.srcVal[i] = c.fregs[s.reg]
			} else {
				e.srcVal[i] = c.regs[s.reg]
			}
			e.srcTag[i] = -1
		} else if c.ruu[tag].state == stDone {
			e.srcVal[i] = c.ruu[tag].result
			e.srcTag[i] = -1
		} else {
			e.srcTag[i] = tag
		}
	}
	// Destination renaming happens after source lookup so an instruction
	// reading and writing the same register sees the old producer.
	if e.hasDest {
		if e.destFP {
			c.renameFP[e.destReg] = idx
		} else if e.destReg != isa.RegZero {
			c.renameInt[e.destReg] = idx
		}
	}
}

func (c *Core) setDest(e *entry, reg uint8, fp bool) {
	e.hasDest = true
	e.destReg = reg
	e.destFP = fp
}

// ---------------------------------------------------------------- fetch --

func (c *Core) fetch() {
	if c.now < c.fetchBlocked || c.fetchFaulted {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if len(c.ifq) >= c.cfg.IFQSize {
			return
		}
		f := c.mem.FetchInst(c.now, c.pc, c.fetchTag)
		if f.Fault {
			// Fetch ran off into an unmapped page (wrong path, or a wild
			// indirect target). Stall until a redirect rescues us.
			c.fetchFaulted = true
			return
		}
		if f.Ready > c.now {
			c.fetchBlocked = f.Ready
			return
		}
		inst := isa.Decode(f.Word)
		fi := fetchedInst{
			pc:           c.pc,
			inst:         inst,
			instAuthIdx:  f.AuthIdx,
			instAuthDone: f.AuthDone,
			illegal:      !inst.Op.Valid(),
		}
		npc := c.pc + isa.InstBytes
		stop := false
		switch inst.Op.Class() {
		case isa.ClassBranch:
			fi.isCond = true
			fi.predTaken = c.bp.PredictCond(c.pc)
			if fi.predTaken {
				npc = isa.BranchTarget(c.pc, inst.Imm)
				stop = true
			}
		case isa.ClassJump:
			if inst.Op == isa.OpJAL {
				npc = isa.BranchTarget(c.pc, inst.Imm)
				if inst.Rd == isa.RegRA {
					c.bp.PushRAS(c.pc + isa.InstBytes)
				}
			} else { // JALR
				if inst.Rd == isa.RegZero && inst.Rs1 == isa.RegRA {
					if t, ok := c.bp.PopRAS(); ok {
						npc = t
					} else if t, ok := c.bp.LookupBTB(c.pc); ok {
						npc = t
					}
				} else {
					if t, ok := c.bp.LookupBTB(c.pc); ok {
						npc = t
					}
					if inst.Rd == isa.RegRA {
						c.bp.PushRAS(c.pc + isa.InstBytes)
					}
				}
			}
			stop = true
		}
		fi.predNPC = npc
		c.ifq = append(c.ifq, fi)
		c.stats.Fetched++
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvFetch, Track: obs.TrackCore, Addr: fi.pc})
		}
		c.pc = npc
		if stop {
			// Fetch now follows a (predicted) control transfer; requests
			// issued after this instant must not gate its external fetches.
			c.fetchTag = c.mem.LastAuthRequest(c.now)
			return // taken control flow ends the fetch group
		}
	}
}

func f64(bitsv uint64) float64 { return float64frombits(bitsv) }

func bits(f float64) uint64 { return float64bits(f) }
