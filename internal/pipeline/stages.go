// Pipeline stages, in the reverse order Step runs them: commit, writeback,
// issue/execute, dispatch, fetch. Each stage touches only this cycle's
// state; reverse order makes same-cycle structural hazards resolve the way
// hardware does.

package pipeline

import (
	"authpoint/internal/cryptoengine/pacmac"
	"authpoint/internal/isa"
	"authpoint/internal/obs"
)

// ---------------------------------------------------------------- commit --

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		e := &c.ruu[c.head]
		if e.state != stDone {
			// Head is blocked on execution, not authentication: any open
			// auth/SB stall interval is over.
			c.stallEnd(obs.StallCommitAuth)
			c.stallEnd(obs.StallSBFull)
			return
		}
		if c.cfg.GateCommit {
			gate := max(e.instAuthDone, e.dataAuthDone)
			if c.now < gate {
				c.stats.CommitAuthStall++
				c.stallBegin(obs.StallCommitAuth)
				return
			}
		}
		c.stallEnd(obs.StallCommitAuth)
		if e.fault != FaultNone {
			// Precise exception at commit: the faulting address becomes
			// architecturally visible (logged/displayed by the OS).
			c.fault = e.fault
			c.faultPC = e.pc
			c.faultVal = e.faultAddr
			if e.fault == FaultBadAddr {
				c.mem.LogFault(e.faultAddr)
			}
			return
		}
		switch e.inst.Op.Class() {
		case isa.ClassHalt:
			c.halted = true
		case isa.ClassOut:
			c.outLog = append(c.outLog, OutEvent{Cycle: c.now, Port: uint32(e.inst.Imm), Val: e.srcVal[0]})
		}
		if e.isStore {
			if !c.mem.CommitStore(c.now, e.addr, e.srcVal[1], e.memSize, e.authTagIssue) {
				// A rejected retry is pure stall accounting, not progress:
				// SkipTo batches these cycles when the whole machine idles.
				c.stats.SBFullStall++
				c.stallBegin(obs.StallSBFull)
				return
			}
		}
		c.stallEnd(obs.StallSBFull)
		if e.hasDest {
			if e.destFP {
				c.fregs[e.destReg] = e.result
				if c.renameFP[e.destReg] == c.head {
					c.renameFP[e.destReg] = -1
				}
			} else if e.destReg != isa.RegZero {
				c.regs[e.destReg] = e.result
				if c.renameInt[e.destReg] == c.head {
					c.renameInt[e.destReg] = -1
				}
			}
		}
		if e.isLoad || e.isStore {
			c.lsqCount--
		}
		if e.isStore {
			c.storeCount--
			maskClear(c.storeMask, c.head)
		}
		if c.CommitHook != nil {
			c.CommitHook(e.pc, e.inst, e.result)
		}
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvCommit, Track: obs.TrackCore, Addr: e.pc})
		}
		e.valid = false
		c.head = (c.head + 1) % c.cfg.RUUSize
		c.count--
		c.stats.Committed++
		c.progress = true
		if c.halted {
			return
		}
	}
}

// ------------------------------------------------------------- writeback --

func (c *Core) writeback() {
	if c.inflight == 0 || c.now < c.earliestDone {
		return
	}
	if c.perf != nil {
		c.perf.WritebackScans++
		if c.earliestDone == 0 {
			// 0 = "unknown, recompute": the first scan, or the scan after a
			// squash invalidated the watermark.
			c.perf.WatermarkRescans++
		}
	}
	next := ^uint64(0)
	// Complete in age order so the oldest mispredicted branch wins. The
	// issued bitmap visits exactly the in-flight entries: done entries parked
	// before commit and waiting entries carry no completion events.
	var redirect *entry
	var redirectIdx int
	c.maskOrder(c.issueMask, func(idx int, e *entry) bool {
		if e.doneCycle > c.now {
			if e.doneCycle < next {
				next = e.doneCycle
			}
			return true
		}
		e.state = stDone
		c.inflight--
		maskClear(c.issueMask, idx)
		c.progress = true
		c.broadcast(idx, e)
		if e.isCond {
			c.bp.UpdateCond(e.pc, e.predTaken, e.taken)
		}
		if e.isCtl && e.inst.Op == isa.OpJALR {
			c.bp.UpdateBTB(e.pc, e.actualNPC)
		}
		if e.isCtl && e.actualNPC != e.predNPC && redirect == nil {
			redirect = e
			redirectIdx = idx
		}
		return true
	})
	c.earliestDone = next
	if redirect != nil {
		c.stats.Mispredicts++
		before := c.stats.Squashed
		c.squashAfter(redirectIdx)
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvSquash, Track: obs.TrackCore,
				Addr: redirect.pc, A: c.stats.Squashed - before})
		}
		c.pc = redirect.actualNPC
		c.fetchBlocked = c.now + 1
		c.fetchFaulted = false
		c.fetchTag = c.mem.LastAuthRequest(c.now)
		c.ifqHead, c.ifqLen = 0, 0
	}
}

// broadcast wakes consumers of entry idx by walking the dependency records
// registered at dispatch (entry.consumers) instead of scanning the window.
// A record can be stale — its consumer squashed, or the slot reused by a new
// instruction — so each wake re-checks that the slot is valid and still
// names idx as its producer. A reused slot that passes the check is a
// genuine consumer of this producer (RUU indices are unique while the
// producer is live), so resolving through a stale record is still correct;
// a duplicate record then finds srcTag already -1 and is a no-op.
func (c *Core) broadcast(idx int, e *entry) {
	var woken uint64
	for _, packed := range e.consumers {
		w := &c.ruu[packed>>1]
		s := packed & 1
		if w.valid && w.srcTag[s] == idx {
			w.srcTag[s] = -1
			w.srcVal[s] = e.result
			woken++
		}
	}
	if c.perf != nil {
		c.perf.Broadcasts++
		c.perf.ConsumerVisits += uint64(len(e.consumers))
		c.perf.Wakes += woken
		c.perf.StaleWakes += uint64(len(e.consumers)) - woken
	}
	e.consumers = e.consumers[:0]
}

// squashAfter removes every entry younger than RUU index idx and rebuilds
// the rename tables from the survivors.
func (c *Core) squashAfter(idx int) {
	// Count survivors from head through idx.
	keep := 0
	for i, p := 0, c.head; i < c.count; i, p = i+1, (p+1)%c.cfg.RUUSize {
		keep++
		if p == idx {
			break
		}
	}
	for i, p := keep, (idx+1)%c.cfg.RUUSize; i < c.count; i, p = i+1, (p+1)%c.cfg.RUUSize {
		e := &c.ruu[p]
		if e.valid {
			if e.isLoad || e.isStore {
				c.lsqCount--
			}
			if e.isStore {
				c.storeCount--
			}
			switch e.state {
			case stWaiting:
				c.waiting--
			case stIssued:
				c.inflight--
			}
			maskClear(c.waitMask, p)
			maskClear(c.issueMask, p)
			maskClear(c.storeMask, p)
			e.valid = false
			c.stats.Squashed++
		}
	}
	c.earliestDone = 0
	c.count = keep
	c.tail = (idx + 1) % c.cfg.RUUSize
	for i := range c.renameInt {
		c.renameInt[i] = -1
	}
	for i := range c.renameFP {
		c.renameFP[i] = -1
	}
	c.ruuOrder(func(p int, e *entry) bool {
		if e.hasDest {
			if e.destFP {
				c.renameFP[e.destReg] = p
			} else if e.destReg != isa.RegZero {
				c.renameInt[e.destReg] = p
			}
		}
		return true
	})
}

// ---------------------------------------------------------------- issue --

func (c *Core) issue() {
	if c.waiting == 0 {
		c.stallEnd(obs.StallIssueAuth)
		return
	}
	issued := 0
	authHeld := false
	// The waiting bitmap visits exactly the stWaiting entries in age order.
	c.maskOrder(c.waitMask, func(idx int, e *entry) bool {
		if issued >= c.cfg.IssueWidth {
			return false
		}
		// Early store-address calculation (does not consume an issue slot):
		// lets younger loads disambiguate sooner.
		if e.isStore && !e.addrValid && e.srcTag[0] == -1 {
			c.computeAddr(e)
		}
		for s := 0; s < e.nsrc; s++ {
			if e.srcTag[s] != -1 {
				return true // operands outstanding
			}
		}
		if c.cfg.GateIssue && c.now < e.instAuthDone {
			c.stats.IssueAuthStall++
			authHeld = true
			return true
		}
		if e.isLoad {
			if !c.issueLoad(idx, e) {
				return true
			}
			issued++
			c.stats.Issued++
			return true
		}
		c.execute(idx, e)
		issued++
		c.stats.Issued++
		return true
	})
	if authHeld {
		c.stallBegin(obs.StallIssueAuth)
	} else {
		c.stallEnd(obs.StallIssueAuth)
	}
}

func (c *Core) computeAddr(e *entry) {
	e.addr = e.srcVal[0] + uint64(int64(e.inst.Imm))
	e.addrValid = true
	e.memSize = e.inst.MemBytes()
	c.progress = true // a resolved store address can unblock younger loads
}

// issueLoad attempts to issue a load; reports whether it consumed an issue
// slot (false = blocked by disambiguation, retry next cycle).
func (c *Core) issueLoad(idx int, e *entry) bool {
	if !e.addrValid {
		c.computeAddr(e)
	}
	// Memory disambiguation against older stores, scanned oldest to
	// youngest: the youngest older store governs. An older store with an
	// unresolved address hard-blocks the load — and must invalidate any
	// forwarding candidate found so far, because the unresolved store is
	// younger than that candidate and may overwrite it. A younger exact
	// covering match, conversely, supersedes an older partial overlap.
	var forward *entry
	blocked := false
	if c.storeCount > 0 {
		var visits uint64
		// The store bitmap visits stores oldest to youngest; stores younger
		// than the load (larger sequence number) end the scan.
		c.maskOrder(c.storeMask, func(p int, older *entry) bool {
			visits++
			if older.seq > e.seq {
				return false
			}
			if !older.addrValid {
				forward = nil
				blocked = true // conservative: unknown older store address
				return false
			}
			if rangesOverlap(older.addr, older.memSize, e.addr, e.memSize) {
				if older.addr == e.addr && older.memSize >= e.memSize && older.srcTag[1] == -1 {
					forward = older // youngest older matching store wins
					blocked = false
				} else {
					forward = nil
					blocked = true // partial overlap or data not ready
				}
			}
			return true
		})
		if c.perf != nil {
			c.perf.DisambScans++
			c.perf.DisambVisits += visits
		}
	} else if c.perf != nil {
		c.perf.DisambShortCircuits++
	}
	if blocked {
		return false
	}
	c.markIssued(idx, e)
	if forward != nil {
		c.stats.Forwards++
		raw := truncate(forward.srcVal[1], e.memSize)
		c.finishLoad(e, raw, c.now+2)
		return true
	}
	if e.addr%uint64(e.memSize) != 0 {
		e.fault = FaultMisaligned
		e.faultAddr = e.addr
		e.doneCycle = c.now + 2
		c.noteDone(e.doneCycle)
		return true
	}
	if !c.mem.ValidAddr(e.addr) {
		// Translation fault: no memory access reaches the bus; the fault
		// is taken (and the address disclosed) only if the load commits.
		e.fault = FaultBadAddr
		e.faultAddr = e.addr
		e.doneCycle = c.now + 2
		c.noteDone(e.doneCycle)
		return true
	}
	if e.inst.Op == isa.OpPREF {
		// Prefetch: touches the hierarchy, produces no value.
		c.mem.ReadData(c.now+1, e.addr, e.memSize, e.authTagIssue)
		e.result = 0
		e.doneCycle = c.now + 2
		c.noteDone(e.doneCycle)
		return true
	}
	r := c.mem.ReadData(c.now+1, e.addr, e.memSize, e.authTagIssue)
	e.dataAuthIdx = r.AuthIdx
	e.dataAuthDone = r.AuthDone
	c.finishLoad(e, r.Raw, max(r.Ready, c.now+2))
	return true
}

func (c *Core) finishLoad(e *entry, raw uint64, ready uint64) {
	if e.inst.Op == isa.OpFLD {
		e.result = raw
	} else {
		e.result = isa.SignExtendLoad(e.inst.Op, raw)
	}
	e.doneCycle = ready
	c.noteDone(ready)
}

func truncate(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}

func rangesOverlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// markIssued transitions an entry out of stWaiting, capturing the
// LastRequest tag and maintaining the scheduler counts. Every caller
// schedules the entry's doneCycle afterwards and folds it into
// earliestDone via noteDone, keeping the bound exact without a rescan.
func (c *Core) markIssued(idx int, e *entry) {
	e.state = stIssued
	e.authTagIssue = c.mem.LastAuthRequest(c.now)
	c.waiting--
	c.inflight++
	maskClear(c.waitMask, idx)
	maskSet(c.issueMask, idx)
	c.progress = true
	if c.sink != nil {
		c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvIssue, Track: obs.TrackCore, Addr: e.pc})
	}
}

// noteDone lowers earliestDone to a newly scheduled completion cycle. The
// bound must never exceed the true minimum doneCycle of in-flight entries
// (writeback skips its scan while now < earliestDone); 0 means "unknown —
// rescan", and the next writeback scan restores exactness.
func (c *Core) noteDone(d uint64) {
	if d < c.earliestDone {
		c.earliestDone = d
	}
}

// execute computes results for non-load instructions at issue and schedules
// completion.
func (c *Core) execute(idx int, e *entry) {
	c.markIssued(idx, e)
	lat := 1
	op := e.inst.Op
	switch op.Class() {
	case isa.ClassNop, isa.ClassHalt, isa.ClassOut:
		// OUT's value is srcVal[0]; emitted at commit.
	case isa.ClassALU:
		b := e.srcVal[1]
		if op.HasImm() {
			b = isa.ImmOperand(e.inst.Imm)
		}
		e.result = isa.EvalALU(op, e.srcVal[0], b)
	case isa.ClassMul:
		e.result = isa.EvalALU(op, e.srcVal[0], e.srcVal[1])
		lat = c.cfg.IntMulLat
		if op == isa.OpDIV || op == isa.OpREM {
			lat = c.cfg.IntDivLat
		}
	case isa.ClassStore, isa.ClassFPStore:
		if !e.addrValid {
			c.computeAddr(e)
		}
		switch {
		case e.addr%uint64(e.memSize) != 0:
			e.fault = FaultMisaligned
			e.faultAddr = e.addr
		case !c.mem.ValidAddr(e.addr):
			e.fault = FaultBadAddr
			e.faultAddr = e.addr
		}
	case isa.ClassBranch:
		e.isCond = true
		if op == isa.OpFBLT || op == isa.OpFBGE {
			e.taken = isa.EvalFPBranch(op, f64(e.srcVal[0]), f64(e.srcVal[1]))
		} else {
			e.taken = isa.EvalBranch(op, e.srcVal[0], e.srcVal[1])
		}
		if e.taken {
			e.actualNPC = isa.BranchTarget(e.pc, e.inst.Imm)
		} else {
			e.actualNPC = e.pc + isa.InstBytes
		}
	case isa.ClassJump:
		if op == isa.OpJAL {
			e.actualNPC = isa.BranchTarget(e.pc, e.inst.Imm)
		} else {
			e.actualNPC = (e.srcVal[0] + uint64(int64(e.inst.Imm))) &^ 3
		}
		e.result = e.pc + isa.InstBytes
	case isa.ClassFPU:
		switch op {
		case isa.OpFCVTIF:
			e.result = f64bits(isa.CvtIntToFP(e.srcVal[0]))
		case isa.OpFCVTFI:
			e.result = isa.CvtFPToInt(f64(e.srcVal[0]))
		default:
			e.result = f64bits(isa.EvalFPU(op, f64(e.srcVal[0]), f64(e.srcVal[1])))
		}
		lat = c.cfg.FPLat
		if op == isa.OpFDIV {
			lat = c.cfg.FPDivLat
		}
	case isa.ClassPAC:
		switch {
		case op == isa.OpSTRIP:
			e.result = pacmac.Strip(e.srcVal[0])
		case op.IsPACSign():
			e.result = c.pacs.Sign(e.srcVal[0], e.srcVal[1], op.PACUsesKeyB())
			lat = c.cfg.PACLat
		default: // auth
			v, ok := c.pacs.Auth(e.srcVal[0], e.srcVal[1], op.PACUsesKeyB(), c.cfg.PACMode)
			e.result = v
			if !ok {
				// FPAC: architectural fault at the auth point, taken at
				// commit — but the stripped pointer is still broadcast to
				// dependents, so a younger load can dereference it
				// speculatively before the fault retires (the
				// auth-then-use race).
				e.fault = FaultPACAuth
				e.faultAddr = e.pc
			}
			lat = c.cfg.PACLat
		}
	default:
		e.fault = FaultIllegalInst
		e.faultAddr = e.pc
	}
	e.doneCycle = c.now + uint64(lat)
	c.noteDone(e.doneCycle)
}

// ------------------------------------------------------------- dispatch --

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.IssueWidth && c.ifqLen > 0; n++ {
		if c.count >= c.cfg.RUUSize {
			return
		}
		fi := &c.ifq[c.ifqHead]
		isMem := fi.uop.IsMem
		if isMem && c.lsqCount >= c.cfg.LSQSize {
			return
		}
		idx := c.tail
		c.tail = (c.tail + 1) % c.cfg.RUUSize
		c.count++
		c.progress = true
		e := &c.ruu[idx]
		cons := e.consumers[:0] // keep the backing array: dispatch must not allocate
		*e = entry{
			valid:        true,
			seq:          c.nextSeq,
			pc:           fi.pc,
			inst:         fi.uop.Inst,
			state:        stWaiting,
			predNPC:      fi.predNPC,
			predTaken:    fi.predTaken,
			instAuthIdx:  fi.instAuthIdx,
			instAuthDone: fi.instAuthDone,
			consumers:    cons,
		}
		c.nextSeq++
		if fi.uop.Illegal {
			c.ifqHead = (c.ifqHead + 1) % c.cfg.IFQSize
			c.ifqLen--
			e.fault = FaultIllegalInst
			e.faultAddr = e.pc
			e.state = stIssued
			e.doneCycle = c.now + 1
			c.inflight++
			maskSet(c.issueMask, idx)
			c.noteDone(e.doneCycle)
			c.stats.Dispatched++
			if c.sink != nil {
				c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvDispatch, Track: obs.TrackCore, Addr: e.pc})
			}
			continue
		}
		c.wireOperands(idx, e, &fi.uop)
		c.ifqHead = (c.ifqHead + 1) % c.cfg.IFQSize
		c.ifqLen--
		if isMem {
			c.lsqCount++
		}
		if e.isStore {
			c.storeCount++
			maskSet(c.storeMask, idx)
		}
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvDispatch, Track: obs.TrackCore, Addr: e.pc})
		}
		if e.nsrc == 0 && !e.isLoad && fi.uop.Class == isa.ClassNop {
			e.state = stIssued
			e.doneCycle = c.now + 1
			c.inflight++
			maskSet(c.issueMask, idx)
			c.noteDone(e.doneCycle)
		} else {
			c.waiting++
			maskSet(c.waitMask, idx)
		}
		c.stats.Dispatched++
	}
}

// wireOperands copies the pre-resolved register sources/destination from the
// micro-op and renames them against the RUU.
func (c *Core) wireOperands(idx int, e *entry, u *Uop) {
	e.isLoad = u.IsLoad
	e.isStore = u.IsStore
	e.isCtl = u.IsCtl
	e.nsrc = int(u.NSrc)
	for i := 0; i < e.nsrc; i++ {
		reg, fp := u.SrcReg[i], u.SrcFP[i]
		tag := -1
		if fp {
			tag = c.renameFP[reg]
		} else if reg != isa.RegZero {
			tag = c.renameInt[reg]
		}
		if tag == -1 {
			if fp {
				e.srcVal[i] = c.fregs[reg]
			} else {
				e.srcVal[i] = c.regs[reg]
			}
			e.srcTag[i] = -1
		} else if c.ruu[tag].state == stDone {
			e.srcVal[i] = c.ruu[tag].result
			e.srcTag[i] = -1
		} else {
			e.srcTag[i] = tag
			// Register with the producer so its completion broadcast can wake
			// this entry without scanning the window.
			p := &c.ruu[tag]
			p.consumers = append(p.consumers, int32(idx<<1|i))
		}
	}
	// Destination renaming happens after source lookup so an instruction
	// reading and writing the same register sees the old producer.
	if u.HasDest {
		e.hasDest = true
		e.destReg = u.DestReg
		e.destFP = u.DestFP
		if u.DestFP {
			c.renameFP[u.DestReg] = idx
		} else if u.DestReg != isa.RegZero {
			c.renameInt[u.DestReg] = idx
		}
	}
}

// ---------------------------------------------------------------- fetch --

func (c *Core) fetch() {
	if c.now < c.fetchBlocked || c.fetchFaulted {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.ifqLen >= c.cfg.IFQSize {
			return
		}
		f := c.mem.FetchInst(c.now, c.pc, c.fetchTag)
		// Every FetchInst is a timed access with memory-system side effects
		// (cache fills, auth requests), so any call counts as progress.
		c.progress = true
		if f.Fault {
			// Fetch ran off into an unmapped page (wrong path, or a wild
			// indirect target). Stall until a redirect rescues us.
			c.fetchFaulted = true
			return
		}
		if f.Ready > c.now {
			c.fetchBlocked = f.Ready
			return
		}
		fi := &c.ifq[(c.ifqHead+c.ifqLen)%c.cfg.IFQSize]
		*fi = fetchedInst{
			pc:           c.pc,
			instAuthIdx:  f.AuthIdx,
			instAuthDone: f.AuthDone,
		}
		if cached, ok := c.uops.Lookup(c.pc, f.Word); ok {
			fi.uop = *cached
			if c.perf != nil {
				c.perf.UopHits++
			}
		} else {
			fi.uop = DecodeUop(f.Word)
			if c.perf != nil {
				if c.uops != nil {
					c.perf.UopMisses++
				} else {
					c.perf.UopNoCache++
				}
			}
		}
		inst := fi.uop.Inst
		npc := c.pc + isa.InstBytes
		stop := false
		switch fi.uop.Class {
		case isa.ClassBranch:
			fi.predTaken = c.bp.PredictCond(c.pc)
			if fi.predTaken {
				npc = isa.BranchTarget(c.pc, inst.Imm)
				stop = true
			}
		case isa.ClassJump:
			if inst.Op == isa.OpJAL {
				npc = isa.BranchTarget(c.pc, inst.Imm)
				if inst.Rd == isa.RegRA {
					c.bp.PushRAS(c.pc + isa.InstBytes)
				}
			} else { // JALR
				if inst.Rd == isa.RegZero && inst.Rs1 == isa.RegRA {
					if t, ok := c.bp.PopRAS(); ok {
						npc = t
					} else if t, ok := c.bp.LookupBTB(c.pc); ok {
						npc = t
					}
				} else {
					if t, ok := c.bp.LookupBTB(c.pc); ok {
						npc = t
					}
					if inst.Rd == isa.RegRA {
						c.bp.PushRAS(c.pc + isa.InstBytes)
					}
				}
			}
			stop = true
		}
		fi.predNPC = npc
		c.ifqLen++
		c.stats.Fetched++
		if c.sink != nil {
			c.sink.Emit(obs.Event{Cycle: c.now, Kind: obs.EvFetch, Track: obs.TrackCore, Addr: fi.pc})
		}
		c.pc = npc
		if stop {
			// Fetch now follows a (predicted) control transfer; requests
			// issued after this instant must not gate its external fetches.
			c.fetchTag = c.mem.LastAuthRequest(c.now)
			return // taken control flow ends the fetch group
		}
	}
}

func f64(bitsv uint64) float64 { return float64frombits(bitsv) }

func f64bits(f float64) uint64 { return float64bits(f) }
