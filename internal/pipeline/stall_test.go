package pipeline

import (
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
	"authpoint/internal/obs"
)

// recSink records every emitted event for inspection.
type recSink struct{ events []obs.Event }

func (r *recSink) Emit(e obs.Event) { r.events = append(r.events, e) }

// runObserved is run() with an event sink attached before the first cycle.
func runObserved(t *testing.T, src string, mutate func(*Config, *testMem), maxCycles int) (*Core, *testMem, *recSink) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := newTestMem(p)
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg, m)
	}
	c, err := New(cfg, m, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	sink := &recSink{}
	c.SetObserver(sink)
	c.SetReg(isa.RegSP, 0x7fff00)
	for i := 0; i < maxCycles && !c.Halted(); i++ {
		c.Step()
		if k, pc, addr := c.Faulted(); k != FaultNone {
			t.Fatalf("unexpected fault %v at pc=%#x addr=%#x", k, pc, addr)
		}
	}
	if !c.Halted() {
		t.Fatalf("did not halt in %d cycles (pc=%#x committed=%d)", maxCycles, c.PC(), c.Stats().Committed)
	}
	return c, m, sink
}

const storeBurstSrc = `
	_start:
		la   r2, buf
		addi r1, r0, 7
		sd   r1, 0(r2)
		sd   r1, 8(r2)
		sd   r1, 16(r2)
		sd   r1, 24(r2)
		sd   r1, 32(r2)
		sd   r1, 40(r2)
		sd   r1, 48(r2)
		sd   r1, 56(r2)
		halt
	.data
	buf: .space 128
`

// TestSBFullStallCounted pins the store-buffer-full stall counter: a burst of
// back-to-back stores against a 1-entry buffer that drains every 16 cycles
// must block commit, count SBFullStall cycles, and still land every store.
func TestSBFullStallCounted(t *testing.T) {
	c, m := run(t, storeBurstSrc, func(cfg *Config, m *testMem) {
		m.sbCap = 1
		m.sbDrain = 16
	}, 20000)
	if got := len(m.stores); got != 8 {
		t.Fatalf("stores landed: %d, want 8", got)
	}
	if c.Stats().SBFullStall == 0 {
		t.Error("no store-buffer-full stalls recorded")
	}
	// Control: same program with an unbounded buffer must not stall.
	c2, _ := run(t, storeBurstSrc, nil, 20000)
	if c2.Stats().SBFullStall != 0 {
		t.Errorf("unbounded buffer recorded %d sb-full stalls", c2.Stats().SBFullStall)
	}
	if c.Stats().Cycles <= c2.Stats().Cycles {
		t.Errorf("bounded buffer (%d cycles) should be slower than unbounded (%d)",
			c.Stats().Cycles, c2.Stats().Cycles)
	}
}

// stallIntervals folds a recorded event stream into per-reason interval
// sums, checking begin/end alternation along the way.
func stallIntervals(t *testing.T, events []obs.Event, endCycle uint64) [obs.NumStallReasons]uint64 {
	t.Helper()
	var open [obs.NumStallReasons]*uint64
	var sums [obs.NumStallReasons]uint64
	for _, e := range events {
		switch e.Kind {
		case obs.EvStallBegin:
			r := obs.StallReason(e.A)
			if open[r] != nil {
				t.Fatalf("stall %v begun twice without end (cycles %d, %d)", r, *open[r], e.Cycle)
			}
			cy := e.Cycle
			open[r] = &cy
		case obs.EvStallEnd:
			r := obs.StallReason(e.A)
			if open[r] == nil {
				t.Fatalf("stall %v ended at cycle %d without begin", r, e.Cycle)
			}
			if e.Cycle < *open[r] {
				t.Fatalf("stall %v ends at %d before begin %d", r, e.Cycle, *open[r])
			}
			sums[r] += e.Cycle - *open[r]
			open[r] = nil
		}
	}
	for r, b := range open {
		if b != nil {
			sums[r] += endCycle - *b
		}
	}
	return sums
}

// TestStallEventsMatchCounters pins the stall begin/end protocol against the
// core's own cycle counters for the commit-auth and sb-full reasons: events
// alternate per reason, and interval sums equal the counted stall cycles.
func TestStallEventsMatchCounters(t *testing.T) {
	t.Run("commit-auth", func(t *testing.T) {
		c, _, sink := runObserved(t, `
			_start:
				addi r1, r0, 1
				addi r2, r0, 2
				add  r3, r1, r2
				halt
		`, func(cfg *Config, m *testMem) {
			cfg.GateCommit = true
			m.authDelay = 200
		}, 20000)
		if c.Stats().CommitAuthStall == 0 {
			t.Fatal("no commit-auth stalls recorded")
		}
		sums := stallIntervals(t, sink.events, c.Stats().Cycles)
		if sums[obs.StallCommitAuth] != c.Stats().CommitAuthStall {
			t.Errorf("commit-auth interval sum %d != counter %d",
				sums[obs.StallCommitAuth], c.Stats().CommitAuthStall)
		}
	})
	t.Run("sb-full", func(t *testing.T) {
		c, _, sink := runObserved(t, storeBurstSrc, func(cfg *Config, m *testMem) {
			m.sbCap = 1
			m.sbDrain = 16
		}, 20000)
		if c.Stats().SBFullStall == 0 {
			t.Fatal("no sb-full stalls recorded")
		}
		sums := stallIntervals(t, sink.events, c.Stats().Cycles)
		if sums[obs.StallSBFull] != c.Stats().SBFullStall {
			t.Errorf("sb-full interval sum %d != counter %d",
				sums[obs.StallSBFull], c.Stats().SBFullStall)
		}
	})
}

// TestIssueAuthStallCounted pins the issue-auth stall counter and events:
// slow instruction authentication under authen-then-issue must hold ready
// instructions at the issue stage.
func TestIssueAuthStallCounted(t *testing.T) {
	c, _, sink := runObserved(t, `
		_start:
			addi r1, r0, 1
			addi r2, r0, 2
			add  r3, r1, r2
			halt
	`, func(cfg *Config, m *testMem) {
		cfg.GateIssue = true
		m.authDelay = 300
	}, 20000)
	if c.Stats().IssueAuthStall == 0 {
		t.Fatal("no issue-auth stalls recorded")
	}
	sums := stallIntervals(t, sink.events, c.Stats().Cycles)
	if sums[obs.StallIssueAuth] == 0 {
		t.Error("issue-auth stall events carried no cycles")
	}
	// The counter counts (instruction, cycle) holds; the interval measures
	// wall cycles with at least one held instruction, so it cannot exceed
	// the counter.
	if sums[obs.StallIssueAuth] > c.Stats().IssueAuthStall {
		t.Errorf("issue-auth interval sum %d > per-entry counter %d",
			sums[obs.StallIssueAuth], c.Stats().IssueAuthStall)
	}
}
