package pipeline

// InstFetch is the result of fetching one instruction word.
type InstFetch struct {
	Word     uint32
	Ready    uint64 // cycle the bytes are available to decode
	AuthIdx  uint64 // authentication request covering the I-line (0 = none)
	AuthDone uint64 // cycle that request completes
	Fault    bool   // instruction address not mapped
}

// DataRead is the result of a timed data load.
type DataRead struct {
	Raw      uint64 // raw little-endian loaded bytes (zero-extended)
	Ready    uint64 // cycle the value is usable by dependents
	AuthIdx  uint64 // authentication request covering the D-line (0 = none)
	AuthDone uint64
	Fault    bool // address not mapped
}

// MemPort is the pipeline's window onto the memory system (caches, secure
// memory controller, TLBs, store buffer). The sim package implements it.
type MemPort interface {
	// FetchInst fetches the instruction word at addr starting at cycle now.
	// fetchTag is the LastRequest value associated with the control
	// transfer that steered fetch here; under authen-then-fetch an external
	// fetch may not reach the bus until that authentication request has
	// completed (Section 4.2.4's LastRequest-register variant).
	FetchInst(now uint64, addr uint64, fetchTag uint64) InstFetch

	// ReadData performs a timed load of size bytes at addr. fetchTag is the
	// LastRequest value captured when the load issued; authen-then-fetch
	// holds the external fetch until it completes.
	ReadData(now uint64, addr uint64, size int, fetchTag uint64) DataRead

	// CommitStore retires a store into the post-commit store buffer,
	// updating architectural memory immediately. authTag is the
	// LastRequest value captured when the store issued (authen-then-write
	// holds the external write until that request verifies). It reports
	// false when the store buffer is full (commit must stall).
	CommitStore(now uint64, addr uint64, val uint64, size int, authTag uint64) bool

	// Tick lets the memory system drain its store buffer at cycle now.
	Tick(now uint64)

	// ValidAddr reports whether a data address is mapped (loads to invalid
	// addresses fault instead of reaching the bus).
	ValidAddr(addr uint64) bool

	// LogFault records an architecturally-taken translation fault (the
	// fault-address disclosure channel of Section 3.3).
	LogFault(addr uint64)

	// LastAuthRequest mirrors the controller's LastRequest register as of
	// the given cycle: the newest verification request whose data had
	// arrived by then (outstanding fetches are not counted).
	LastAuthRequest(now uint64) uint64
}

// OutEvent is an OUT instruction retired to an I/O port.
type OutEvent struct {
	Cycle uint64
	Port  uint32
	Val   uint64
}
