package pipeline

// Predictor bundles the front-end control-flow predictors: a bimodal 2-bit
// conditional-branch predictor, a branch target buffer for indirect jumps,
// and a return address stack.
type Predictor struct {
	bimodal []uint8 // 2-bit saturating counters
	btbTags []uint64
	btbTgts []uint64
	btbWays int
	btbSets int
	ras     []uint64
	rasTop  int

	condLookups uint64
	condHits    uint64
}

// PredictorConfig sizes the predictor structures.
type PredictorConfig struct {
	BimodalEntries int
	BTBEntries     int
	BTBWays        int
	RASEntries     int
}

// DefaultPredictorConfig returns a predictor typical of the paper's era.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{BimodalEntries: 2048, BTBEntries: 512, BTBWays: 4, RASEntries: 8}
}

// NewPredictor builds a predictor. Entry counts are rounded up to powers of
// two.
func NewPredictor(cfg PredictorConfig) *Predictor {
	pow2 := func(n int) int {
		p := 1
		for p < n {
			p <<= 1
		}
		return p
	}
	bimodal := pow2(max(cfg.BimodalEntries, 2))
	btb := pow2(max(cfg.BTBEntries, cfg.BTBWays))
	ways := max(cfg.BTBWays, 1)
	p := &Predictor{
		bimodal: make([]uint8, bimodal),
		btbTags: make([]uint64, btb),
		btbTgts: make([]uint64, btb),
		btbWays: ways,
		btbSets: btb / ways,
		ras:     make([]uint64, max(cfg.RASEntries, 1)),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
	}
	for i := range p.btbTags {
		p.btbTags[i] = ^uint64(0)
	}
	return p
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 2) & uint64(len(p.bimodal)-1))
}

// PredictCond predicts a conditional branch at pc.
func (p *Predictor) PredictCond(pc uint64) bool {
	p.condLookups++
	return p.bimodal[p.bimodalIdx(pc)] >= 2
}

// UpdateCond trains the bimodal counter with the resolved outcome and
// records accuracy against the prediction made for this instance.
func (p *Predictor) UpdateCond(pc uint64, predicted, taken bool) {
	if predicted == taken {
		p.condHits++
	}
	i := p.bimodalIdx(pc)
	if taken {
		if p.bimodal[i] < 3 {
			p.bimodal[i]++
		}
	} else if p.bimodal[i] > 0 {
		p.bimodal[i]--
	}
}

// LookupBTB returns the predicted target of an indirect jump at pc.
func (p *Predictor) LookupBTB(pc uint64) (uint64, bool) {
	set := int((pc >> 2) % uint64(p.btbSets))
	for w := 0; w < p.btbWays; w++ {
		i := set*p.btbWays + w
		if p.btbTags[i] == pc {
			return p.btbTgts[i], true
		}
	}
	return 0, false
}

// UpdateBTB installs or refreshes pc -> target (simple round-robin-by-hash
// way choice; BTBs of this era were not LRU-precise).
func (p *Predictor) UpdateBTB(pc, target uint64) {
	set := int((pc >> 2) % uint64(p.btbSets))
	victim := set*p.btbWays + 0
	for w := 0; w < p.btbWays; w++ {
		i := set*p.btbWays + w
		if p.btbTags[i] == pc || p.btbTags[i] == ^uint64(0) {
			victim = i
			break
		}
		if (pc>>4+uint64(w))%uint64(p.btbWays) == 0 {
			victim = i
		}
	}
	p.btbTags[victim] = pc
	p.btbTgts[victim] = target
}

// PushRAS records a return address at a call.
func (p *Predictor) PushRAS(addr uint64) {
	p.ras[p.rasTop%len(p.ras)] = addr
	p.rasTop++
}

// PopRAS predicts a return target.
func (p *Predictor) PopRAS() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// CondAccuracy returns conditional-branch prediction accuracy.
func (p *Predictor) CondAccuracy() float64 {
	if p.condLookups == 0 {
		return 0
	}
	return float64(p.condHits) / float64(p.condLookups)
}
