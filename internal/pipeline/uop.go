// Pre-decoded micro-ops. isa.Decode is a pure function of the 32-bit
// instruction word, and so is the operand wiring that dispatch derives from
// the decoded instruction (which architectural registers are read/written,
// whether the op is a load/store/control transfer). DecodeUop hoists all of
// it into a Uop computed once per static instruction at program load; fetch
// then copies the cached Uop instead of re-deriving it per dynamic instance.
//
// Correctness does not rest on the text staying unmodified: Lookup validates
// the cached encoding against the word the memory system actually returned,
// so tampered or overwritten text (ciphertext bit-flips decrypt to garbage
// words; crypto faults at the fetch gate) simply misses the cache and falls
// back to a fresh DecodeUop of the fetched word — bit-identical behaviour,
// only slower on the lines that changed.

package pipeline

import (
	"encoding/binary"

	"authpoint/internal/isa"
)

// Uop is one pre-decoded micro-op: the decoded instruction plus every
// dispatch-time derivation that depends only on the encoding.
type Uop struct {
	Inst    isa.Inst
	Class   isa.Class
	Illegal bool

	// Operand wiring (the static half of rename): source architectural
	// registers in operand order, and the destination if any. Mirrors
	// exactly what dispatch used to derive per instance.
	NSrc    uint8
	SrcReg  [2]uint8
	SrcFP   [2]bool
	HasDest bool
	DestFP  bool
	DestReg uint8

	IsLoad  bool
	IsStore bool
	IsCtl   bool
	IsCond  bool // conditional branch (fetch steering + predictor training)
	IsMem   bool
}

func (u *Uop) addSrc(reg uint8, fp bool) {
	u.SrcReg[u.NSrc] = reg
	u.SrcFP[u.NSrc] = fp
	u.NSrc++
}

func (u *Uop) setDest(reg uint8, fp bool) {
	u.HasDest = true
	u.DestReg = reg
	u.DestFP = fp
}

// DecodeUop decodes one instruction word and resolves its operand wiring.
// Like isa.Decode it never fails: invalid opcodes yield Illegal, which
// dispatch turns into a precise illegal-instruction fault.
func DecodeUop(w uint32) Uop {
	inst := isa.Decode(w)
	op := inst.Op
	u := Uop{Inst: inst, Class: op.Class(), Illegal: !op.Valid(), IsMem: inst.IsMem()}
	switch u.Class {
	case isa.ClassALU:
		if op.HasImm() {
			u.addSrc(inst.Rs1, false)
		} else {
			u.addSrc(inst.Rs1, false)
			u.addSrc(inst.Rs2, false)
		}
		u.setDest(inst.Rd, false)
	case isa.ClassMul:
		u.addSrc(inst.Rs1, false)
		u.addSrc(inst.Rs2, false)
		u.setDest(inst.Rd, false)
	case isa.ClassLoad:
		u.IsLoad = true
		u.addSrc(inst.Rs1, false)
		if op != isa.OpPREF {
			u.setDest(inst.Rd, false)
		}
	case isa.ClassFPLoad:
		u.IsLoad = true
		u.addSrc(inst.Rs1, false)
		u.setDest(inst.Rd, true)
	case isa.ClassStore:
		u.IsStore = true
		u.addSrc(inst.Rs1, false)
		u.addSrc(inst.Rs2, false)
	case isa.ClassFPStore:
		u.IsStore = true
		u.addSrc(inst.Rs1, false)
		u.addSrc(inst.Rs2, true)
	case isa.ClassBranch:
		u.IsCtl = true
		u.IsCond = true
		fp := op == isa.OpFBLT || op == isa.OpFBGE
		u.addSrc(inst.Rs1, fp)
		u.addSrc(inst.Rs2, fp)
	case isa.ClassJump:
		u.IsCtl = true
		if op == isa.OpJALR {
			u.addSrc(inst.Rs1, false)
		}
		u.setDest(inst.Rd, false)
	case isa.ClassFPU:
		switch op {
		case isa.OpFCVTIF:
			u.addSrc(inst.Rs1, false)
			u.setDest(inst.Rd, true)
		case isa.OpFCVTFI:
			u.addSrc(inst.Rs1, true)
			u.setDest(inst.Rd, false)
		case isa.OpFNEG:
			u.addSrc(inst.Rs1, true)
			u.setDest(inst.Rd, true)
		default:
			u.addSrc(inst.Rs1, true)
			u.addSrc(inst.Rs2, true)
			u.setDest(inst.Rd, true)
		}
	case isa.ClassOut:
		u.addSrc(inst.Rs2, false)
	case isa.ClassPAC:
		u.addSrc(inst.Rs1, false)
		if op != isa.OpSTRIP {
			u.addSrc(inst.Rs2, false) // modifier
		}
		u.setDest(inst.Rd, false)
	}
	return u
}

// UopCache holds the pre-decoded micro-ops of one program's static text,
// indexed by PC. It is immutable after construction and safe to share
// between machines running the same image.
type UopCache struct {
	base  uint64
	words []uint32
	uops  []Uop
}

// NewUopCache decodes every word of a text image (little-endian, as the
// memory system reads it) rooted at base.
func NewUopCache(base uint64, text []byte) *UopCache {
	n := len(text) / 4
	uc := &UopCache{base: base, words: make([]uint32, n), uops: make([]Uop, n)}
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(text[i*4:])
		uc.words[i] = w
		uc.uops[i] = DecodeUop(w)
	}
	return uc
}

// Lookup returns the cached micro-op for pc iff word matches the encoding
// the cache was built from. A mismatch (tampered line, overwritten text,
// wild PC outside the static image) reports false and the caller decodes
// the fetched word directly.
func (uc *UopCache) Lookup(pc uint64, word uint32) (*Uop, bool) {
	if uc == nil {
		return nil, false
	}
	i := (pc - uc.base) >> 2
	if pc < uc.base || i >= uint64(len(uc.uops)) || uc.words[i] != word || pc&3 != 0 {
		return nil, false
	}
	return &uc.uops[i], true
}
