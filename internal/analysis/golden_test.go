package analysis_test

import (
	"testing"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
	"authpoint/internal/attack"
	"authpoint/internal/workload"
)

// kindCounts is a compact golden: findings per kind under the default
// (baseline) contract.
type kindCounts struct {
	addr, ctrl, io int
}

func countsOf(rep *analysis.Report) kindCounts {
	c := rep.Counts()
	return kindCounts{
		addr: c[analysis.KindAddr],
		ctrl: c[analysis.KindCtrl],
		io:   c[analysis.KindIO],
	}
}

// TestWorkloadCatalogGolden pins the baseline-contract findings over the
// full 18-workload catalog. The split is the point: streaming kernels with
// counter-driven access patterns are data-oblivious and must stay clean,
// while pointer-chasing / data-dependent-branching kernels carry unverified
// taint into their observables. A diff here means the analysis (or a
// workload) changed behavior — re-derive deliberately, don't just re-pin.
func TestWorkloadCatalogGolden(t *testing.T) {
	golden := map[string]kindCounts{
		"bzip2x":   {addr: 2, ctrl: 1},
		"gccx":     {ctrl: 3},
		"gapx":     {},
		"gzipx":    {addr: 2},
		"mcfx":     {addr: 4},
		"parserx":  {addr: 1, ctrl: 1},
		"twolfx":   {},
		"vortexx":  {ctrl: 1},
		"vprx":     {ctrl: 1},
		"ammpx":    {addr: 2},
		"applux":   {},
		"artx":     {},
		"equakex":  {addr: 1},
		"facerecx": {},
		"lucasx":   {},
		"mgridx":   {},
		"swimx":    {},
		"wupwisex": {},
	}
	all := workload.All()
	if len(all) != len(golden) {
		t.Fatalf("catalog has %d workloads, golden has %d — update the table", len(all), len(golden))
	}
	clean := 0
	for _, w := range all {
		want, ok := golden[w.Name]
		if !ok {
			t.Errorf("no golden entry for workload %s", w.Name)
			continue
		}
		p, err := asm.Assemble(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		rep, err := analysis.Analyze(p, analysis.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if got := countsOf(rep); got != want {
			t.Errorf("%s: findings %+v, want %+v\n%v", w.Name, got, want, rep.Findings)
		}
		if rep.Clean() {
			clean++
		}
		// No workload annotates secrets, so Secret taint must never appear.
		for _, f := range rep.Findings {
			if f.Taint.Secret() {
				t.Errorf("%s: %v carries Secret taint without any secret annotation", w.Name, f)
			}
		}
	}
	// Precision criterion: a healthy fraction of the catalog is genuinely
	// data-oblivious and must lint clean.
	if clean < 4 {
		t.Errorf("only %d workloads clean; the analysis has lost precision", clean)
	}
}

// TestAttackKernelsGolden pins the findings over every exploit's effective
// program: each kernel must be flagged on exactly its leak channel.
func TestAttackKernelsGolden(t *testing.T) {
	golden := map[string]kindCounts{
		"pointer-conversion":   {addr: 1, ctrl: 1},
		"binary-search":        {ctrl: 1},
		"disclosing-kernel":    {addr: 1},
		"io-port-disclosure":   {io: 1},
		"brute-force-page":     {addr: 1},
		"memory-taint":         {}, // state channel: only visible with StateChecks
		"passive-control-flow": {ctrl: 8},
		// PAC kernels: without the secret annotation the loaded pointer is
		// plain unverified taint, and auth is deliberately not a sanitizer —
		// the dereference stays flagged through the (possibly forged) auth.
		"pac-pointer-substitution": {addr: 1},
		"pac-auth-use-race":        {addr: 1},
		"pac-signing-gadget":       {addr: 1},
	}
	ks, err := attack.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(golden) {
		t.Fatalf("attack exports %d kernels, golden has %d — update the table", len(ks), len(golden))
	}
	for _, k := range ks {
		want, ok := golden[k.Name]
		if !ok {
			t.Errorf("no golden entry for kernel %s", k.Name)
			continue
		}
		rep, err := analysis.Analyze(k.Prog, analysis.Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got := countsOf(rep); got != want {
			t.Errorf("%s: findings %+v, want %+v\n%v", k.Name, got, want, rep.Findings)
		}
	}
}

// TestTrustLoadsMirrorsThenIssue: under the authen-then-issue contract only
// Secret-driven findings survive — the paper's Table 2 row where gating
// issue stops tamper-driven disclosure but no gate stops the passive
// channel.
func TestTrustLoadsMirrorsThenIssue(t *testing.T) {
	ks, err := attack.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		rep, err := analysis.Analyze(k.Prog, analysis.Options{TrustLoads: true})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, f := range rep.Findings {
			if f.Taint.Unverified() {
				t.Errorf("%s: %v still Unverified under TrustLoads", k.Name, f)
			}
			if !f.Taint.Secret() {
				t.Errorf("%s: %v survives TrustLoads without Secret taint", k.Name, f)
			}
		}
		// The untampered passive victim must stay flagged: verification
		// gates cannot close the natural-execution channel.
		if k.Name == "passive-control-flow" && len(rep.ByKind(analysis.KindCtrl)) != 8 {
			t.Errorf("passive victim: %d ctrl findings under TrustLoads, want 8", len(rep.ByKind(analysis.KindCtrl)))
		}
		// brute-force-page has no secret annotation: the unverified pointer
		// chase is its only defect, so then-issue clears it entirely.
		if k.Name == "brute-force-page" && !rep.Clean() {
			t.Errorf("brute-force-page should be clean under TrustLoads, got %v", rep.Findings)
		}
	}
}
