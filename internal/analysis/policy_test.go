package analysis

import (
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/policy"
)

// leakySrc dereferences a secret (addr-leak), branches on it (ctrl-leak),
// and OUTs it (io-leak) — one finding per observable channel.
const leakySrc = `
_start:
	la   r1, secret
	ld   r2, 0(r1)
	ld   r3, 0(r2)       ; addr-leak: secret-derived address
	bne  r2, r0, skip    ; ctrl-leak: secret-steered branch
	nop
skip:
	out  r2, 0x80        ; io-leak: secret to a port
	halt
.data
secret: .word 4096
`

func mustProg(t *testing.T) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(leakySrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptionsForPolicy(t *testing.T) {
	base := Options{}
	if o := OptionsForPolicy(policy.ThenIssue, base); !o.TrustLoads {
		t.Error("then-issue must imply TrustLoads")
	}
	if o := OptionsForPolicy(policy.ThenWrite, base); !o.StateChecks {
		t.Error("then-write must imply StateChecks")
	}
	if o := OptionsForPolicy(policy.ThenCommit, base); o.TrustLoads || o.StateChecks {
		t.Errorf("then-commit must leave the contract unchanged: %+v", o)
	}
	// A base TrustLoads survives weaker policies.
	if o := OptionsForPolicy(policy.ThenCommit, Options{TrustLoads: true}); !o.TrustLoads {
		t.Error("base TrustLoads dropped")
	}
}

func TestAnalyzeForPolicy(t *testing.T) {
	p := mustProg(t)

	// Plain commit gate: same findings as the baseline contract, but the
	// report carries the policy name.
	rep, err := AnalyzeForPolicy(p, policy.ThenCommit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "authen-then-commit" {
		t.Errorf("policy stamp %q", rep.Policy)
	}
	c := rep.Counts()
	if c[KindAddr] == 0 || c[KindCtrl] == 0 || c[KindIO] == 0 {
		t.Fatalf("expected all three channels under then-commit: %v", c)
	}

	// Obfuscation closes the fetch-address channels; the I/O channel stays.
	rep, err = AnalyzeForPolicy(p, policy.CommitPlusObfuscation, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c = rep.Counts()
	if c[KindAddr] != 0 || c[KindCtrl] != 0 {
		t.Errorf("obfuscation should drop addr/ctrl findings: %v", c)
	}
	if c[KindIO] == 0 {
		t.Error("obfuscation must not hide io-leak findings")
	}

	// A composed lattice point works the same way — the registry is not a
	// closed list.
	pt, err := policy.Parse("authen-then-issue+obfuscation")
	if err != nil {
		t.Fatal(err)
	}
	rep, err = AnalyzeForPolicy(p, pt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "authen-then-issue+obfuscation" {
		t.Errorf("policy stamp %q", rep.Policy)
	}
	for _, f := range rep.Findings {
		if f.Taint&TaintUnverified != 0 {
			t.Errorf("then-issue contract leaked Unverified taint: %v", f)
		}
	}
}
