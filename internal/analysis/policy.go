package analysis

import (
	"authpoint/internal/asm"
	"authpoint/internal/policy"
)

// OptionsForPolicy derives the leakage contract implied by an authentication
// control point on top of a base configuration. Only two dimensions change
// what the static contract can assume:
//
//   - GateIssue (authen-then-issue): loaded values are verified before any
//     dependent instruction issues, so the Unverified bit never enters the
//     dataflow (TrustLoads).
//   - GateWrite (authen-then-write): unverified data cannot persist to
//     external memory, so state-taint findings become meaningful to report
//     (StateChecks) — under weaker gates every result store would fire.
//
// The commit/fetch gates bound *when* tampered execution stops, not what the
// address stream reveals, so they leave the contract unchanged; obfuscation
// closes observation channels after the fact and is handled by
// AnalyzeForPolicy.
//
// The pointer-authentication dimensions (pac/fpac) also leave the contract
// unchanged: they constrain which *pointers* dereference successfully, not
// what a successful dereference reveals. The taint transfer for sign/auth/
// strip (see transfer's ClassPAC arm) deliberately propagates rather than
// sanitizes, so a secret-derived pointer that survives authentication still
// produces the addr-leak finding that licenses its bus traffic.
func OptionsForPolicy(pt policy.ControlPoint, base Options) Options {
	pt = pt.Normalize()
	if pt.GateIssue {
		base.TrustLoads = true
	}
	if pt.GateWrite {
		base.StateChecks = true
	}
	return base
}

// AnalyzeForPolicy runs Analyze under the contract implied by a control
// point and stamps the report with the policy's canonical name. Address
// obfuscation remaps every line address leaving the chip, closing the
// fetch-address observation channels: addr-leak and ctrl-leak findings are
// dropped from the report (io-leak and state-taint survive — obfuscation
// hides addresses, not I/O values or memory contents).
func AnalyzeForPolicy(prog *asm.Program, pt policy.ControlPoint, base Options) (*Report, error) {
	pt = pt.Normalize()
	rep, err := Analyze(prog, OptionsForPolicy(pt, base))
	if err != nil {
		return nil, err
	}
	rep.Policy = pt.String()
	if pt.Obfuscate {
		kept := rep.Findings[:0]
		for _, f := range rep.Findings {
			if f.Kind != KindAddr && f.Kind != KindCtrl {
				kept = append(kept, f)
			}
		}
		rep.Findings = kept
	}
	return rep, nil
}
