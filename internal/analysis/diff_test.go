package analysis_test

import (
	"fmt"
	"testing"

	"authpoint/internal/analysis"
	"authpoint/internal/attack"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// This file is the soundness half of the differential contract between the
// static analysis and the cycle-level simulator: every leak an adversary
// actually observes on the bus in a SchemeBaseline run of an exploit's
// effective program must be covered by an authlint finding of the matching
// kind — and, where the victim's symbols let us locate the leak, by a
// finding at the leaking site itself. (The precision half — data-oblivious
// workloads lint clean — lives in the golden test.)

// runBaseline executes a kernel's effective program on an ungated machine
// with the bus trace on, exactly as the dynamic exploits do.
func runBaseline(t *testing.T, k attack.Kernel) (*sim.Machine, sim.Result) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Policy = policy.Baseline
	cfg.TraceBus = true
	cfg.WatchdogCycles = 200_000
	var regions []sim.Region
	if k.NeedsProbe {
		regions = append(regions, sim.Region{Start: attack.ProbeBase, Size: attack.ProbeSize})
	}
	m, err := sim.NewMachineWithRegions(cfg, k.Prog, regions)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	// The run may end in a watchdog or fault (spliced kernels fall off the
	// victim's text); the bus trace up to the stop is still the adversary's
	// observation, exactly as the dynamic exploits treat it.
	res, _ := m.Run()
	return m, res
}

func analyzeKernel(t *testing.T, k attack.Kernel, opts analysis.Options) *analysis.Report {
	t.Helper()
	rep, err := analysis.Analyze(k.Prog, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func kernelByName(t *testing.T, name string) attack.Kernel {
	t.Helper()
	ks, err := attack.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("no kernel %q", name)
	return attack.Kernel{}
}

// findingIn reports whether some finding of the kind lies in [lo, hi).
func findingIn(rep *analysis.Report, kind analysis.Kind, lo, hi uint64) bool {
	for _, f := range rep.ByKind(kind) {
		if f.PC >= lo && f.PC < hi {
			return true
		}
	}
	return false
}

// TestDiffPointerConversion: the converted-pointer dereference puts the
// secret's line on the bus; the static addr-leak must sit on the walk loop's
// load.
func TestDiffPointerConversion(t *testing.T) {
	k := kernelByName(t, "pointer-conversion")
	m, res := runBaseline(t, k)
	leaks := m.ReadLineAddrsInBefore(attack.ProbeBase, attack.ProbeBase+attack.ProbeSize, sim.StopCycle(res))
	if len(leaks) == 0 {
		t.Fatal("baseline run leaked nothing; the effective program is wrong")
	}
	rep := analyzeKernel(t, k, analysis.Options{})
	if !findingIn(rep, analysis.KindAddr, k.Prog.Symbols["walk"], k.Prog.Symbols["done"]) {
		t.Errorf("dynamic leak %#x not covered by an addr-leak in the walk loop: %v", leaks[0], rep.Findings)
	}
}

// TestDiffBinarySearch: the taken arm's I-line appearing on the bus is the
// leak; the covering finding is the ctrl-leak whose branch targets it.
func TestDiffBinarySearch(t *testing.T) {
	k := kernelByName(t, "binary-search")
	m, res := runBaseline(t, k)
	below := k.Prog.Symbols["below"]
	seen := m.ReadLineAddrsInBefore(below&^63, below&^63+64, sim.StopCycle(res))
	if len(seen) == 0 {
		t.Fatal("taken arm never fetched; the tampered constant should make the branch go below")
	}
	rep := analyzeKernel(t, k, analysis.Options{})
	covered := false
	for _, f := range rep.ByKind(analysis.KindCtrl) {
		if f.Target == below {
			covered = true
		}
	}
	if !covered {
		t.Errorf("observed taken-arm fetch %#x has no ctrl-leak targeting below: %v", seen[0], rep.Findings)
	}
}

// TestDiffDisclosingKernel: the probe fetch carrying secret bits must be
// covered by a Secret-tainted addr-leak inside the spliced kernel.
func TestDiffDisclosingKernel(t *testing.T) {
	k := kernelByName(t, "disclosing-kernel")
	m, res := runBaseline(t, k)
	leaks := m.ReadLineAddrsInBefore(attack.ProbeBase, attack.ProbeBase+attack.ProbeSize, sim.StopCycle(res))
	if len(leaks) == 0 {
		t.Fatal("spliced kernel leaked nothing on baseline")
	}
	rep := analyzeKernel(t, k, analysis.Options{})
	f0 := k.Prog.Symbols["f"]
	spliceEnd := f0 + 13*4 // the injected kernel is 13 words
	if !findingIn(rep, analysis.KindAddr, f0, spliceEnd) {
		t.Errorf("dynamic probe leak %#x not covered inside the splice [%#x,%#x): %v",
			leaks[0], f0, spliceEnd, rep.Findings)
	}
	for _, f := range rep.ByKind(analysis.KindAddr) {
		if f.PC >= f0 && f.PC < spliceEnd && !f.Taint.Secret() {
			t.Errorf("probe-load finding %v should carry Secret taint", f)
		}
	}
}

// TestDiffIOPortDisclosure: the OUT of the secret must be covered by an
// io-leak finding.
func TestDiffIOPortDisclosure(t *testing.T) {
	k := kernelByName(t, "io-port-disclosure")
	m, _ := runBaseline(t, k)
	leaked := false
	for _, e := range m.Core.OutLog() {
		if e.Port == 0x80 {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("baseline run never reached the OUT")
	}
	rep := analyzeKernel(t, k, analysis.Options{})
	if len(rep.ByKind(analysis.KindIO)) == 0 {
		t.Errorf("dynamic OUT disclosure has no io-leak finding: %v", rep.Findings)
	}
}

// TestDiffBruteForcePage: the dereference of the repointed pointer is
// observable in the probe window and must be covered by an addr-leak.
func TestDiffBruteForcePage(t *testing.T) {
	k := kernelByName(t, "brute-force-page")
	m, res := runBaseline(t, k)
	leaks := m.ReadLineAddrsInBefore(attack.ProbeBase, attack.ProbeBase+attack.ProbeSize, sim.StopCycle(res))
	if len(leaks) == 0 {
		t.Fatal("repointed dereference left no probe-window trace")
	}
	rep := analyzeKernel(t, k, analysis.Options{})
	if len(rep.ByKind(analysis.KindAddr)) == 0 {
		t.Errorf("dynamic leak %#x has no addr-leak finding: %v", leaks[0], rep.Findings)
	}
}

// TestDiffPassiveControlFlow: every secret bit observed through a taken-arm
// instruction fetch must be covered by a ctrl-leak finding whose branch
// targets that arm — per-address coverage, not just per-kind.
func TestDiffPassiveControlFlow(t *testing.T) {
	k := kernelByName(t, "passive-control-flow")
	m, res := runBaseline(t, k)
	if res.Reason != sim.StopHalt {
		t.Fatalf("passive victim stopped with %v", res.Reason)
	}
	seen := map[uint64]bool{}
	for _, a := range m.ReadLineAddrsBefore(sim.StopCycle(res)) {
		seen[a] = true
	}
	rep := analyzeKernel(t, k, analysis.Options{})
	targets := map[uint64]bool{}
	for _, f := range rep.ByKind(analysis.KindCtrl) {
		targets[f.Target] = true
	}
	observedArms := 0
	for bit := 0; bit < 8; bit++ {
		arm := k.Prog.Symbols[fmt.Sprintf("one_%d", bit)]
		if !seen[arm&^63] {
			continue // bit clear: arm never fetched
		}
		observedArms++
		if !targets[arm] {
			t.Errorf("observed taken arm one_%d (%#x) has no ctrl-leak targeting it", bit, arm)
		}
	}
	// The passive secret 0xA7 has five set bits; the trace must show them.
	if observedArms != 5 {
		t.Errorf("observed %d taken arms, want 5 (secret 0xA7)", observedArms)
	}
}

// TestDiffMemoryTaint: the dynamic attack plants a tampered-derived value in
// external memory on baseline; statically that is the state-taint channel,
// visible only with StateChecks.
func TestDiffMemoryTaint(t *testing.T) {
	out, err := attack.MemoryTaint(policy.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatal("memory-taint attack did not land on baseline")
	}
	k := kernelByName(t, "memory-taint")
	if rep := analyzeKernel(t, k, analysis.Options{}); !rep.Clean() {
		t.Errorf("memory-taint should be clean without StateChecks, got %v", rep.Findings)
	}
	rep := analyzeKernel(t, k, analysis.Options{StateChecks: true})
	st := rep.ByKind(analysis.KindState)
	if len(st) == 0 {
		t.Fatalf("StateChecks found no state-taint store: %v", rep.Findings)
	}
	for _, f := range st {
		if !f.Taint.Unverified() {
			t.Errorf("state-taint %v should be Unverified", f)
		}
	}
}
