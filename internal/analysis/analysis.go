package analysis

import (
	"fmt"
	"strings"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
)

// Options configures the leakage contract being checked.
type Options struct {
	// TrustLoads models the authen-then-issue control point: loaded values
	// are verified before any dependent instruction can issue, so the
	// Unverified bit never enters the dataflow. Findings that remain are
	// purely Secret-driven — the passive channel that only obfuscation
	// closes (paper Table 2).
	TrustLoads bool
	// NoAutoSecret disables marking symbols whose names contain "secret"
	// as secret storage.
	NoAutoSecret bool
	// SecretSymbols names additional data symbols holding secrets; each
	// symbol's positional extent becomes a secret range.
	SecretSymbols []string
	// SecretRanges adds explicit secret address ranges.
	SecretRanges []Range
	// StateChecks additionally reports stores of tainted values
	// (tampering with authenticated memory state). Off by default: on the
	// baseline contract it flags essentially every program that writes
	// results derived from its inputs, which drowns the fetch-address
	// findings the tool exists to surface.
	StateChecks bool
}

// Range is a half-open address interval [Start, End).
type Range struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

func (r Range) contains(a uint64) bool { return a >= r.Start && a < r.End }

// Kind classifies a finding by the observable it taints.
type Kind string

const (
	// KindAddr: a memory operation whose effective address is tainted —
	// the plaintext address escapes on the front-side bus at fetch.
	KindAddr Kind = "addr-leak"
	// KindCtrl: a conditional branch or indirect jump steered by a tainted
	// value — the instruction-fetch address stream becomes an oracle.
	KindCtrl Kind = "ctrl-leak"
	// KindIO: an OUT whose operand is tainted — the paper's disclosing
	// kernel writing secrets to an I/O channel.
	KindIO Kind = "io-leak"
	// KindState: a store of a tainted value into memory (only with
	// Options.StateChecks).
	KindState Kind = "state-taint"
)

// Finding is one instruction that violates the leakage contract.
type Finding struct {
	// Index is the text-section instruction index; PC its address.
	Index int    `json:"index"`
	PC    uint64 `json:"pc"`
	Kind  Kind   `json:"kind"`
	Taint Taint  `json:"taint"`
	// Text is the disassembly of the offending instruction.
	Text string `json:"text"`
	// Line is the 1-based source line, when the program carries line info.
	Line int `json:"line,omitempty"`
	// Sym locates the instruction as "symbol+0xoff" when symbols exist.
	Sym string `json:"sym,omitempty"`
	// Target is the resolved destination of a direct conditional branch
	// finding, 0 otherwise.
	Target uint64 `json:"target,omitempty"`
}

func (f Finding) String() string {
	loc := fmt.Sprintf("%#x", f.PC)
	if f.Sym != "" {
		loc += " <" + f.Sym + ">"
	}
	if f.Line > 0 {
		loc += fmt.Sprintf(" line %d", f.Line)
	}
	return fmt.Sprintf("%s: %s (%s) %s", loc, f.Kind, f.Taint, f.Text)
}

// Report is the result of analyzing one program.
type Report struct {
	// Policy is the canonical control-point name the contract was derived
	// from (set by AnalyzeForPolicy; empty for a plain Analyze run).
	Policy   string    `json:"policy,omitempty"`
	Findings []Finding `json:"findings"`
	// SecretRanges are the resolved secret intervals the run used.
	SecretRanges []Range `json:"secretRanges,omitempty"`
	// Blocks and ReachableBlocks summarize the CFG.
	Blocks          int `json:"blocks"`
	ReachableBlocks int `json:"reachableBlocks"`

	// CFG gives callers access to the underlying graph (not serialized).
	CFG *CFG `json:"-"`
}

// Clean reports a program with no findings.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Counts returns the number of findings per kind.
func (r *Report) Counts() map[Kind]int {
	m := map[Kind]int{}
	for _, f := range r.Findings {
		m[f.Kind]++
	}
	return m
}

// ByKind returns the findings of one kind, in program order.
func (r *Report) ByKind(k Kind) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// analyzer carries the per-run dataflow context: the contract options, the
// resolved secret ranges, and a flow-insensitive model of tainted memory
// (stores of tainted values feed it, loads consult it).
type analyzer struct {
	g    *CFG
	opts Options

	secret []Range
	// mem taints individual 8-byte-aligned words written through known
	// addresses; heap is the taint written through unknown addresses;
	// allMem is the join of everything in mem, consulted by unknown-address
	// loads (which may alias any word).
	mem        map[uint64]Taint
	heap       Taint
	allMem     Taint
	memChanged bool
}

func (a *analyzer) inSecret(addr uint64) bool {
	for _, r := range a.secret {
		if r.contains(addr) {
			return true
		}
	}
	return false
}

// loadTaint is the contract's verdict on a value fetched from abstract
// address addr. Unknown addresses are handled soundly: they may alias secret
// storage (if any exists) or any previously tainted word.
func (a *analyzer) loadTaint(addr val) Taint {
	var t Taint
	if addr.known {
		if a.inSecret(addr.c) {
			t |= TaintSecret
		}
		t |= a.mem[addr.c&^7]
	} else {
		if len(a.secret) > 0 {
			t |= TaintSecret
		}
		t |= a.allMem
	}
	t |= a.heap
	if a.opts.TrustLoads {
		t &^= TaintUnverified
	} else {
		t |= TaintUnverified
	}
	return t
}

// recordStore feeds the memory model. Monotone: taints only accumulate, and
// any growth triggers another dataflow round.
func (a *analyzer) recordStore(addr val, vt Taint) {
	if vt == 0 {
		return
	}
	if addr.known {
		w := addr.c &^ 7
		if a.mem[w]|vt != a.mem[w] {
			a.mem[w] |= vt
			a.allMem |= vt
			a.memChanged = true
		}
	} else if a.heap|vt != a.heap {
		a.heap |= vt
		a.memChanged = true
	}
}

// secretRangesFor resolves the run's secret intervals from options plus the
// program's symbol table. Auto-detection matches the attack suite's idiom of
// labelling secret storage "secret"/"secretp"/....
func secretRangesFor(p *asm.Program, opts Options) ([]Range, error) {
	var out []Range
	byName := map[string]Range{}
	for _, sr := range p.SymbolRanges() {
		byName[sr.Name] = Range{Start: sr.Start, End: sr.End}
		if !opts.NoAutoSecret && strings.Contains(strings.ToLower(sr.Name), "secret") {
			out = append(out, Range{Start: sr.Start, End: sr.End})
		}
	}
	for _, name := range opts.SecretSymbols {
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: secret symbol %q not defined", name)
		}
		out = append(out, r)
	}
	out = append(out, opts.SecretRanges...)
	return out, nil
}

// Analyze builds the CFG, runs the taint dataflow to a fixpoint (an inner
// worklist over blocks, an outer loop until the memory model stops growing),
// and reports every instruction whose observable address, control flow, or
// I/O operand is tainted under the configured contract.
func Analyze(p *asm.Program, opts Options) (*Report, error) {
	g, err := BuildCFG(p)
	if err != nil {
		return nil, err
	}
	secret, err := secretRangesFor(p, opts)
	if err != nil {
		return nil, err
	}
	a := &analyzer{g: g, opts: opts, secret: secret, mem: map[uint64]Taint{}}

	in := make([]state, len(g.Blocks))
	for {
		a.memChanged = false
		for i := range in {
			in[i] = state{}
		}
		in[g.Entry] = state{reached: true}
		work := []int{g.Entry}
		queued := make([]bool, len(g.Blocks))
		queued[g.Entry] = true
		for len(work) > 0 {
			bi := work[0]
			work = work[1:]
			queued[bi] = false
			b := g.Blocks[bi]
			s := in[bi]
			for idx := b.Start; idx < b.End; idx++ {
				a.transfer(&s, idx)
			}
			for _, succ := range b.Succs {
				if in[succ].join(&s) && !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
		if !a.memChanged {
			break
		}
	}

	rep := &Report{CFG: g, SecretRanges: secret, Blocks: len(g.Blocks)}
	for bi, b := range g.Blocks {
		if g.Reachable[bi] {
			rep.ReachableBlocks++
		}
		if !in[bi].reached {
			continue
		}
		s := in[bi]
		for idx := b.Start; idx < b.End; idx++ {
			a.check(rep, &s, idx)
			a.transfer(&s, idx)
		}
	}
	return rep, nil
}

// check inspects the instruction at idx against the state s that reaches it
// and appends findings.
func (a *analyzer) check(rep *Report, s *state, idx int) {
	g := a.g
	inst := g.Insts[idx]
	emit := func(kind Kind, t Taint, target uint64) {
		f := Finding{
			Index:  idx,
			PC:     g.PCFor(idx),
			Kind:   kind,
			Taint:  t,
			Text:   inst.String(),
			Target: target,
		}
		f.Line = g.Prog.LineFor(idx)
		if name, off, ok := g.Prog.NearestSymbol(f.PC); ok {
			if off == 0 {
				f.Sym = name
			} else {
				f.Sym = fmt.Sprintf("%s+%#x", name, off)
			}
		}
		rep.Findings = append(rep.Findings, f)
	}
	switch inst.Op.Class() {
	case isa.ClassLoad, isa.ClassFPLoad:
		if addr := a.effAddr(s, inst); addr.t != 0 {
			emit(KindAddr, addr.t, 0)
		}
	case isa.ClassStore, isa.ClassFPStore:
		if addr := a.effAddr(s, inst); addr.t != 0 {
			emit(KindAddr, addr.t, 0)
		}
		if a.opts.StateChecks {
			var vt Taint
			if inst.Op.Class() == isa.ClassFPStore {
				vt = s.fps[inst.Rs2]
			} else {
				vt = s.reg(inst.Rs2).t
			}
			if vt != 0 {
				emit(KindState, vt, 0)
			}
		}
	case isa.ClassBranch:
		var ct Taint
		if inst.Op == isa.OpFBLT || inst.Op == isa.OpFBGE {
			ct = s.fps[inst.Rs1] | s.fps[inst.Rs2]
		} else {
			ct = s.reg(inst.Rs1).t | s.reg(inst.Rs2).t
		}
		if ct != 0 {
			emit(KindCtrl, ct, isa.BranchTarget(g.PCFor(idx), inst.Imm))
		}
	case isa.ClassJump:
		if inst.Op == isa.OpJALR {
			if t := s.reg(inst.Rs1).t; t != 0 {
				emit(KindCtrl, t, 0)
			}
		}
	case isa.ClassOut:
		if t := s.reg(inst.Rs2).t; t != 0 {
			emit(KindIO, t, 0)
		}
	}
}
