package analysis_test

import (
	"testing"

	"authpoint/internal/analysis"
	"authpoint/internal/asm"
)

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func mustAnalyze(t *testing.T, src string, opts analysis.Options) *analysis.Report {
	t.Helper()
	rep, err := analysis.Analyze(mustAssemble(t, src), opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func TestCFGShape(t *testing.T) {
	src := `
_start:
	addi r1, r0, 4
loop:
	addi r1, r1, -1
	bne r1, r0, loop
	call fn
	halt
fn:
	ret
`
	g, err := analysis.BuildCFG(mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	// Expected blocks: [0,1) entry, [1,3) loop body+branch, [3,4) call,
	// [4,5) halt, [5,6) ret.
	if len(g.Blocks) != 5 {
		t.Fatalf("got %d blocks, want 5: %+v", len(g.Blocks), g.Blocks)
	}
	wantSuccs := [][]int{{1}, {1, 2}, {4}, {}, {3}}
	for i, b := range g.Blocks {
		if len(b.Succs) != len(wantSuccs[i]) {
			t.Errorf("block %d succs = %v, want %v", i, b.Succs, wantSuccs[i])
			continue
		}
		for j := range b.Succs {
			if b.Succs[j] != wantSuccs[i][j] {
				t.Errorf("block %d succs = %v, want %v", i, b.Succs, wantSuccs[i])
				break
			}
		}
		if !g.Reachable[i] {
			t.Errorf("block %d unreachable, want reachable", i)
		}
		if b.Indirect {
			t.Errorf("block %d marked indirect; ret should resolve to return sites", i)
		}
	}
}

func TestCFGIndirectJumpIsConservative(t *testing.T) {
	src := `
_start:
	la r1, tgt
	jalr r2, r1, 0
tgt:
	halt
dead:
	nop
	halt
`
	g, err := analysis.BuildCFG(mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	var indirect *analysis.Block
	for _, b := range g.Blocks {
		if b.Indirect {
			indirect = b
		}
	}
	if indirect == nil {
		t.Fatal("no block marked indirect for jalr")
	}
	if len(indirect.Succs) != len(g.Blocks) {
		t.Errorf("indirect block has %d succs, want all %d blocks", len(indirect.Succs), len(g.Blocks))
	}
	for i := range g.Blocks {
		if !g.Reachable[i] {
			t.Errorf("block %d should be reachable through the indirect edge", i)
		}
	}
}

// TestSecretBranchFlagged: a branch on a value loaded from secret-named
// storage is the passive control-flow channel and must be reported.
func TestSecretBranchFlagged(t *testing.T) {
	src := `
.data
secret: .word 255
.text
_start:
	la r1, secret
	ld r2, 0(r1)
	beq r2, r0, done
	addi r3, r0, 1
done:
	halt
`
	rep := mustAnalyze(t, src, analysis.Options{})
	ctrl := rep.ByKind(analysis.KindCtrl)
	if len(ctrl) != 1 {
		t.Fatalf("ctrl findings = %d (%v), want 1", len(ctrl), rep.Findings)
	}
	f := ctrl[0]
	if !f.Taint.Secret() || !f.Taint.Unverified() {
		t.Errorf("taint = %v, want secret+unverified", f.Taint)
	}
	p := mustAssemble(t, src)
	if f.Target != p.Symbols["done"] {
		t.Errorf("branch target = %#x, want done=%#x", f.Target, p.Symbols["done"])
	}
	if len(rep.ByKind(analysis.KindAddr)) != 0 {
		t.Errorf("constant-address load of the secret itself should not be an addr leak: %v", rep.Findings)
	}

	// authen-then-issue keeps the secret-driven finding (passive channel
	// survives); dropping the secret annotation too makes it clean.
	rep = mustAnalyze(t, src, analysis.Options{TrustLoads: true})
	if n := len(rep.ByKind(analysis.KindCtrl)); n != 1 {
		t.Errorf("TrustLoads: ctrl findings = %d, want 1 (secret survives verification)", n)
	}
	rep = mustAnalyze(t, src, analysis.Options{TrustLoads: true, NoAutoSecret: true})
	if !rep.Clean() {
		t.Errorf("TrustLoads+NoAutoSecret should be clean, got %v", rep.Findings)
	}
}

// TestDataObliviousClean: constant-strided streaming with a counter-driven
// branch has no tainted observables under the default contract.
func TestDataObliviousClean(t *testing.T) {
	src := `
.data
buf: .word 1, 2, 3, 4
dst: .space 32
.text
_start:
	la r1, buf
	la r2, dst
	addi r3, r0, 4
loop:
	ld r4, 0(r1)
	add r4, r4, r4
	sd r4, 0(r2)
	addi r1, r1, 8
	addi r2, r2, 8
	addi r3, r3, -1
	bne r3, r0, loop
	halt
`
	rep := mustAnalyze(t, src, analysis.Options{})
	if !rep.Clean() {
		t.Errorf("data-oblivious kernel should be clean, got %v", rep.Findings)
	}
	// StateChecks surfaces the store of the unverified loaded value.
	rep = mustAnalyze(t, src, analysis.Options{StateChecks: true})
	st := rep.ByKind(analysis.KindState)
	if len(st) != 1 || !st[0].Taint.Unverified() {
		t.Errorf("StateChecks: findings = %v, want one unverified state-taint", rep.Findings)
	}
}

// TestPointerChaseAddrLeak: dereferencing a loaded pointer leaks its value
// as a bus address under the baseline contract; authen-then-issue clears it.
func TestPointerChaseAddrLeak(t *testing.T) {
	src := `
.data
head: .word 0
.text
_start:
	la r1, head
	ld r2, 0(r1)
	ld r3, 0(r2)
	halt
`
	rep := mustAnalyze(t, src, analysis.Options{})
	addr := rep.ByKind(analysis.KindAddr)
	if len(addr) != 1 {
		t.Fatalf("addr findings = %d (%v), want 1", len(addr), rep.Findings)
	}
	if !addr[0].Taint.Unverified() || addr[0].Taint.Secret() {
		t.Errorf("taint = %v, want unverified only", addr[0].Taint)
	}
	if rep2 := mustAnalyze(t, src, analysis.Options{TrustLoads: true}); !rep2.Clean() {
		t.Errorf("TrustLoads should clear the pointer chase, got %v", rep2.Findings)
	}
}

// TestMemoryModelPropagatesSecret: a secret stored to a scratch slot and
// reloaded must keep its taint across the store/load pair.
func TestMemoryModelPropagatesSecret(t *testing.T) {
	src := `
.data
secret_key: .word 5
slot: .word 0
.text
_start:
	la r1, secret_key
	ld r2, 0(r1)
	la r3, slot
	sd r2, 0(r3)
	ld r4, 0(r3)
	beq r4, r0, done
	nop
done:
	halt
`
	rep := mustAnalyze(t, src, analysis.Options{})
	ctrl := rep.ByKind(analysis.KindCtrl)
	if len(ctrl) != 1 {
		t.Fatalf("ctrl findings = %d (%v), want 1", len(ctrl), rep.Findings)
	}
	if !ctrl[0].Taint.Secret() {
		t.Errorf("taint = %v; the secret must survive the store/load round trip", ctrl[0].Taint)
	}
}

// TestIOLeak: OUT of a tainted value is the disclosing-kernel channel.
func TestIOLeak(t *testing.T) {
	src := `
.data
secretp: .word 99
.text
_start:
	la r1, secretp
	ld r2, 0(r1)
	out r2, 128
	halt
`
	rep := mustAnalyze(t, src, analysis.Options{})
	io := rep.ByKind(analysis.KindIO)
	if len(io) != 1 || !io[0].Taint.Secret() {
		t.Fatalf("findings = %v, want one secret io-leak", rep.Findings)
	}
}

func TestUnknownSecretSymbolErrors(t *testing.T) {
	p := mustAssemble(t, "_start: halt")
	if _, err := analysis.Analyze(p, analysis.Options{SecretSymbols: []string{"nope"}}); err == nil {
		t.Fatal("expected error for undefined secret symbol")
	}
}
