package analysis

import (
	"fmt"
	"strings"

	"authpoint/internal/cryptoengine/pacmac"
	"authpoint/internal/isa"
)

// pacAddrMask mirrors the pointer-word layout of the keyed MAC unit: strip
// clears everything above the address bits.
const pacAddrMask = pacmac.AddrMask

// Taint is a bitset of information-flow facts about a value.
type Taint uint8

const (
	// TaintSecret marks a value derived from annotated secret storage — the
	// confidentiality half of the paper's threat model.
	TaintSecret Taint = 1 << iota
	// TaintUnverified marks a value fetched from external memory whose
	// authentication has not yet completed at the point of use — the
	// integrity half. Under the baseline contract every load carries it;
	// the authen-then-issue contract (Options.TrustLoads) clears it.
	TaintUnverified
)

func (t Taint) Secret() bool     { return t&TaintSecret != 0 }
func (t Taint) Unverified() bool { return t&TaintUnverified != 0 }

func (t Taint) String() string {
	if t == 0 {
		return "clean"
	}
	var parts []string
	if t.Secret() {
		parts = append(parts, "secret")
	}
	if t.Unverified() {
		parts = append(parts, "unverified")
	}
	return strings.Join(parts, "+")
}

// MarshalText renders the taint as its String form in JSON output.
func (t Taint) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses the String form back, so emitted reports (authlint
// -json) decode into the same types they were built from.
func (t *Taint) UnmarshalText(b []byte) error {
	s := string(b)
	if s == "" || s == "clean" {
		*t = 0
		return nil
	}
	var out Taint
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "secret":
			out |= TaintSecret
		case "unverified":
			out |= TaintUnverified
		default:
			return fmt.Errorf("analysis: unknown taint %q", part)
		}
	}
	*t = out
	return nil
}

// val is the abstract value of one integer register: a taint plus an
// optional known constant. Constant tracking exists so address material
// built by la/li (LUI/ORI/LUIH chains) and loop arithmetic stays resolvable,
// which is what separates a data-oblivious streaming kernel from a
// pointer-chasing one.
type val struct {
	t     Taint
	known bool
	c     uint64
}

func joinVal(a, b val) val {
	out := val{t: a.t | b.t}
	if a.known && b.known && a.c == b.c {
		out.known, out.c = true, a.c
	}
	return out
}

// state is the dataflow fact at a program point: abstract values for the 32
// integer registers and taints for the 32 FP registers (FP values never form
// addresses, so no constants are tracked for them). reached distinguishes
// "no path here yet" (bottom) from a genuine all-unknown state.
type state struct {
	regs    [32]val
	fps     [32]Taint
	reached bool
}

// reg reads a register honoring the hardwired zero.
func (s *state) reg(r uint8) val {
	if r == isa.RegZero {
		return val{known: true, c: 0}
	}
	return s.regs[r]
}

// setReg writes a register, discarding writes to r0.
func (s *state) setReg(r uint8, v val) {
	if r != isa.RegZero {
		s.regs[r] = v
	}
}

// join merges o into s, reporting whether s changed. Joining into bottom is
// a copy.
func (s *state) join(o *state) bool {
	if !o.reached {
		return false
	}
	if !s.reached {
		*s = *o
		return true
	}
	changed := false
	for i := 1; i < len(s.regs); i++ {
		v := joinVal(s.regs[i], o.regs[i])
		if v != s.regs[i] {
			s.regs[i] = v
			changed = true
		}
	}
	for i := range s.fps {
		v := s.fps[i] | o.fps[i]
		if v != s.fps[i] {
			s.fps[i] = v
			changed = true
		}
	}
	return changed
}

// transfer applies one instruction to s in place. Loads consult the
// analyzer's memory model and contract for the taint of the fetched value;
// stores feed it. Findings are not emitted here — the checker walks the
// converged states separately.
func (a *analyzer) transfer(s *state, idx int) {
	inst := a.g.Insts[idx]
	switch inst.Op.Class() {
	case isa.ClassALU, isa.ClassMul:
		var out val
		switch {
		case inst.Op == isa.OpLUI:
			out = val{known: true, c: isa.EvalALU(inst.Op, 0, isa.ImmOperand(inst.Imm))}
		case inst.Op.HasImm():
			// Sign- vs zero-extension was resolved at decode, so ImmOperand
			// is the architectural operand b for every immediate form.
			rs1 := s.reg(inst.Rs1)
			out = val{t: rs1.t}
			if rs1.known {
				out.known, out.c = true, isa.EvalALU(inst.Op, rs1.c, isa.ImmOperand(inst.Imm))
			}
		default:
			rs1, rs2 := s.reg(inst.Rs1), s.reg(inst.Rs2)
			out = val{t: rs1.t | rs2.t}
			if rs1.known && rs2.known {
				out.known, out.c = true, isa.EvalALU(inst.Op, rs1.c, rs2.c)
			}
		}
		s.setReg(inst.Rd, out)
	case isa.ClassLoad:
		addr := a.effAddr(s, inst)
		t := a.loadTaint(addr)
		if inst.Op == isa.OpPREF {
			return // fetches but writes nothing
		}
		s.setReg(inst.Rd, val{t: t})
	case isa.ClassFPLoad:
		addr := a.effAddr(s, inst)
		s.fps[inst.Rd] = a.loadTaint(addr)
	case isa.ClassStore:
		// Stores carry the value register in the Rs2 slot.
		a.recordStore(a.effAddr(s, inst), s.reg(inst.Rs2).t)
	case isa.ClassFPStore:
		a.recordStore(a.effAddr(s, inst), s.fps[inst.Rs2])
	case isa.ClassJump:
		// The link value is the (known) return address; its exact value is
		// irrelevant to taint, so record it as clean-unknown.
		s.setReg(inst.Rd, val{})
	case isa.ClassFPU:
		switch inst.Op {
		case isa.OpFCVTIF:
			s.fps[inst.Rd] = s.reg(inst.Rs1).t
		case isa.OpFCVTFI:
			s.setReg(inst.Rd, val{t: s.fps[inst.Rs1]})
		case isa.OpFNEG:
			s.fps[inst.Rd] = s.fps[inst.Rs1]
		default:
			s.fps[inst.Rd] = s.fps[inst.Rs1] | s.fps[inst.Rs2]
		}
	case isa.ClassPAC:
		// Pointer authentication transforms the pointer's representation but
		// not its provenance: the result inherits the pointer's taint (and the
		// modifier's, for sign/auth — a secret modifier makes the tag secret-
		// dependent). Auth is deliberately NOT a taint sanitizer: a correctly
		// signed pointer to secret-derived data still leaks its address when
		// dereferenced, so the conservative flow keeps the contract sound
		// under every PAC mode.
		if inst.Op == isa.OpSTRIP {
			rs1 := s.reg(inst.Rs1)
			out := val{t: rs1.t}
			if rs1.known {
				out.known, out.c = true, rs1.c&pacAddrMask
			}
			s.setReg(inst.Rd, out)
		} else {
			// Sign inserts a MAC (value unknowable to the analysis); auth may
			// strip, poison, or fault depending on the machine's mode, so the
			// result value is unknown either way.
			s.setReg(inst.Rd, val{t: s.reg(inst.Rs1).t | s.reg(inst.Rs2).t})
		}
	}
	// Branch/Out/Halt/Nop write no register.
}

// effAddr computes the abstract effective address rs1+imm of a memory op.
func (a *analyzer) effAddr(s *state, inst isa.Inst) val {
	base := s.reg(inst.Rs1)
	out := val{t: base.t}
	if base.known {
		out.known, out.c = true, base.c+uint64(int64(inst.Imm))
	}
	return out
}
