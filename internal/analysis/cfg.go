// Package analysis implements static leakage-contract checking for
// assembled authpoint programs.
//
// The paper's memory-fetch side channel (Section 3) exists because an
// instruction's observable effects — the plaintext fetch addresses it puts
// on the front-side bus, directly (data fetches) or through control flow
// (instruction fetches) — can depend on values that are secret, or that
// arrived from external memory and have not yet been authenticated. The
// dynamic experiments in internal/attack demonstrate the channel; this
// package predicts it: a dataflow pass over the ISA-level program reports
// every instruction whose observable address or control flow is tainted,
// i.e. exactly the sites an authentication control point must gate.
//
// The pipeline is classical: a control-flow graph over the decoded text
// section (cfg.go), a worklist dataflow fixpoint over a taint lattice with
// constant propagation (taint.go), and a checker that turns tainted
// observables into findings (analysis.go). Everything is stdlib-only and
// operates on *asm.Program, so the same pass runs inside tests, the
// cmd/authlint CLI, and differential comparisons against dynamic bus traces.
package analysis

import (
	"fmt"
	"sort"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
)

// Block is a basic block: a maximal straight-line run of instructions with
// control entering only at the top and leaving only at the bottom.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Start and End delimit the block's instructions as half-open text
	// indices [Start, End).
	Start, End int
	// Succs lists successor block indices, deduplicated, ascending.
	Succs []int
	// Indirect marks a block ending in an unresolvable indirect jump (a
	// JALR that is not a conventional return): its successors conservatively
	// include every block.
	Indirect bool
}

// CFG is the control-flow graph of a program's text section.
type CFG struct {
	Prog *asm.Program
	// Insts is the decoded text section.
	Insts []isa.Inst
	// Blocks in ascending Start order.
	Blocks []*Block
	// Entry is the index of the entry block.
	Entry int
	// Reachable[b] reports whether block b is reachable from the entry.
	Reachable []bool

	blockOf []int // instruction index -> block index
}

// PCFor returns the address of the instruction at text index i.
func (g *CFG) PCFor(i int) uint64 {
	return g.Prog.TextBase + uint64(i)*isa.InstBytes
}

// IndexFor returns the text index of address pc, or -1 if pc is outside the
// text section or misaligned.
func (g *CFG) IndexFor(pc uint64) int {
	if pc < g.Prog.TextBase || (pc-g.Prog.TextBase)%isa.InstBytes != 0 {
		return -1
	}
	i := int((pc - g.Prog.TextBase) / isa.InstBytes)
	if i >= len(g.Insts) {
		return -1
	}
	return i
}

// BlockAt returns the block containing text index i, or nil.
func (g *CFG) BlockAt(i int) *Block {
	if i < 0 || i >= len(g.blockOf) {
		return nil
	}
	return g.Blocks[g.blockOf[i]]
}

// branchTargetIndex resolves a pc-relative control transfer at index i to a
// text index, or -1 when the target leaves the text section (it would fault
// at fetch).
func branchTargetIndex(i int, imm int32, n int) int {
	t := i + 1 + int(imm)
	if t < 0 || t >= n {
		return -1
	}
	return t
}

// isReturn reports the conventional return idiom: jalr r0, ra, imm.
func isReturn(inst isa.Inst) bool {
	return inst.Op == isa.OpJALR && inst.Rd == isa.RegZero && inst.Rs1 == isa.RegRA
}

// endsBlock reports whether control cannot fall through past inst:
// taken-or-not branches do fall through; jumps, halt, and invalid opcodes
// (which fault) do not.
func endsBlock(inst isa.Inst) bool {
	switch inst.Op.Class() {
	case isa.ClassJump, isa.ClassHalt:
		return true
	}
	return !inst.Op.Valid()
}

// BuildCFG decodes the program text and constructs its basic-block graph.
//
// Conservatism rules: a JAL is treated as a direct jump to its target; the
// instruction after a linking JAL (rd = ra) is recorded as a return site,
// and every conventional return (jalr r0, ra) gets all return sites as
// successors. Any other JALR is an unresolvable indirect jump whose
// successors are all blocks. Branch or jump targets outside the text
// section, HALT, and invalid opcodes end a path.
func BuildCFG(p *asm.Program) (*CFG, error) {
	n := len(p.Text)
	if n == 0 {
		return nil, fmt.Errorf("analysis: empty text section")
	}
	g := &CFG{Prog: p, Insts: make([]isa.Inst, n), blockOf: make([]int, n)}
	for i, w := range p.Text {
		g.Insts[i] = isa.Decode(w)
	}
	entryIdx := g.IndexFor(p.Entry)
	if entryIdx < 0 {
		return nil, fmt.Errorf("analysis: entry %#x outside text [%#x,%#x)", p.Entry, p.TextBase, p.TextBase+uint64(n*isa.InstBytes))
	}

	// Pass 1: leaders and return sites.
	leader := make([]bool, n)
	leader[0] = true
	leader[entryIdx] = true
	var retSites []int
	for i, inst := range g.Insts {
		switch {
		case inst.Op.Class() == isa.ClassBranch:
			if t := branchTargetIndex(i, inst.Imm, n); t >= 0 {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case inst.Op == isa.OpJAL:
			if t := branchTargetIndex(i, inst.Imm, n); t >= 0 {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
				if inst.Rd == isa.RegRA {
					retSites = append(retSites, i+1)
				}
			}
		case endsBlock(inst):
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	// Pass 2: carve blocks.
	for i := 0; i < n; i++ {
		if !leader[i] {
			continue
		}
		end := i + 1
		for end < n && !leader[end] {
			end++
		}
		b := &Block{Index: len(g.Blocks), Start: i, End: end}
		g.Blocks = append(g.Blocks, b)
		for j := i; j < end; j++ {
			g.blockOf[j] = b.Index
		}
	}
	g.Entry = g.blockOf[entryIdx]

	// Pass 3: successors.
	for _, b := range g.Blocks {
		last := g.Insts[b.End-1]
		succs := map[int]bool{}
		switch {
		case last.Op.Class() == isa.ClassBranch:
			if t := branchTargetIndex(b.End-1, last.Imm, n); t >= 0 {
				succs[g.blockOf[t]] = true
			}
			if b.End < n {
				succs[g.blockOf[b.End]] = true
			}
		case last.Op == isa.OpJAL:
			if t := branchTargetIndex(b.End-1, last.Imm, n); t >= 0 {
				succs[g.blockOf[t]] = true
			}
		case isReturn(last):
			for _, r := range retSites {
				succs[g.blockOf[r]] = true
			}
		case last.Op == isa.OpJALR:
			b.Indirect = true
			for j := range g.Blocks {
				succs[j] = true
			}
		case last.Op.Class() == isa.ClassHalt || !last.Op.Valid():
			// Terminal.
		default:
			if b.End < n {
				succs[g.blockOf[b.End]] = true
			}
		}
		b.Succs = make([]int, 0, len(succs))
		for s := range succs {
			b.Succs = append(b.Succs, s)
		}
		sort.Ints(b.Succs)
	}

	// Pass 4: reachability.
	g.Reachable = make([]bool, len(g.Blocks))
	work := []int{g.Entry}
	g.Reachable[g.Entry] = true
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Blocks[bi].Succs {
			if !g.Reachable[s] {
				g.Reachable[s] = true
				work = append(work, s)
			}
		}
	}
	return g, nil
}
