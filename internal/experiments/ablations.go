package experiments

import (
	"fmt"
	"io"

	"authpoint/internal/policy"
	"authpoint/internal/secmem"
	"authpoint/internal/sim"
)

// AblationPoint is one configuration's result: normalized IPC (against the
// same-variant decrypt-only baseline) and absolute IPC. Both matter: a
// variant that slows the baseline too can show a *higher* ratio while being
// absolutely slower — counter prediction and decrypt latency do exactly
// that.
type AblationPoint struct {
	Label   string
	Mean    float64 // mean normalized IPC
	MeanIPC float64 // mean absolute IPC under the scheme
}

// Ablation is one named sensitivity study.
type Ablation struct {
	Title  string
	Points []AblationPoint
}

// Render prints one study.
func (a *Ablation) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", a.Title)
	for _, pt := range a.Points {
		fmt.Fprintf(w, "  %-28s normalized %6.3f   absolute IPC %7.4f\n", pt.Label, pt.Mean, pt.MeanIPC)
	}
}

// ablate runs one control point under a sequence of config variants and
// collects each variant's mean normalized and absolute IPC.
func ablate(title string, p Params, pol policy.ControlPoint, points []struct {
	label   string
	variant Variant
}) (*Ablation, error) {
	a := &Ablation{Title: title}
	for _, pt := range points {
		sw, err := RunSweep(pt.label, p, []policy.ControlPoint{pol}, pt.variant)
		if err != nil {
			return nil, err
		}
		abs := 0.0
		for _, r := range sw.Rows {
			abs += r.IPC[pol]
		}
		a.Points = append(a.Points, AblationPoint{
			Label:   pt.label,
			Mean:    sw.MeanNormalized(pol),
			MeanIPC: abs / float64(max(len(sw.Rows), 1)),
		})
	}
	return a, nil
}

// AblationFetchVariants compares the two authen-then-fetch implementations
// the paper sketches in §4.2.4: the LastRequest-register (per-instruction
// tag) variant against the simpler drain variant.
func AblationFetchVariants(p Params) (*Ablation, error) {
	return ablate("Ablation: authen-then-fetch implementation variants (§4.2.4)", p, policy.ThenFetch,
		[]struct {
			label   string
			variant Variant
		}{
			{"LastRequest-register tag", nil},
			{"drain the queue", func(c *sim.Config) { c.Mem.FetchDrain = true }},
		})
}

// AblationDecryptLatency sweeps the AES pipeline latency under
// authen-then-commit. Counter-mode pads overlap the fetch, so moderate
// increases should be largely hidden (Table 1's MAX(fetch, decrypt)).
func AblationDecryptLatency(p Params) (*Ablation, error) {
	var pts []struct {
		label   string
		variant Variant
	}
	for _, ns := range []int{40, 80, 160, 320} {
		ns := ns
		pts = append(pts, struct {
			label   string
			variant Variant
		}{fmt.Sprintf("decrypt %dns", ns), func(c *sim.Config) { c.Sec.DecryptLat = ns }})
	}
	return ablate("Ablation: decryption latency sensitivity (authen-then-commit)", p, policy.ThenCommit, pts)
}

// AblationMacLatency sweeps the hash-unit latency under authen-then-issue —
// the scheme most exposed to the verification gap.
func AblationMacLatency(p Params) (*Ablation, error) {
	var pts []struct {
		label   string
		variant Variant
	}
	for _, ns := range []int{37, 74, 148, 296} {
		ns := ns
		pts = append(pts, struct {
			label   string
			variant Variant
		}{fmt.Sprintf("MAC %dns", ns), func(c *sim.Config) { c.Sec.MacLat = ns }})
	}
	return ablate("Ablation: MAC latency sensitivity (authen-then-issue)", p, policy.ThenIssue, pts)
}

// AblationCtrPrediction toggles [19]-style counter prediction: without it a
// counter-cache miss delays pad generation behind a metadata fetch.
func AblationCtrPrediction(p Params) (*Ablation, error) {
	return ablate("Ablation: counter prediction/precomputation ([19], authen-then-commit)", p, policy.ThenCommit,
		[]struct {
			label   string
			variant Variant
		}{
			{"prediction on (reference)", nil},
			{"prediction off", func(c *sim.Config) { c.Sec.CtrPredict = false }},
		})
}

// AblationMacWidth sweeps the truncated MAC width: wider MACs cost only
// bus bandwidth in the flat scheme, so the effect should be small — the
// security/storage trade-off is nearly performance-free.
func AblationMacWidth(p Params) (*Ablation, error) {
	var pts []struct {
		label   string
		variant Variant
	}
	for _, b := range []int{4, 8, 16} {
		b := b
		pts = append(pts, struct {
			label   string
			variant Variant
		}{fmt.Sprintf("%d-bit MAC", b*8), func(c *sim.Config) { c.Sec.MacB = b }})
	}
	return ablate("Ablation: truncated MAC width (authen-then-commit)", p, policy.ThenCommit, pts)
}

// AblationMacUnits scales the number of parallel verification engines under
// authen-then-issue. One unit (the paper's design) saturates on miss-dense
// kernels; extra units recover throughput until the bus becomes the limit.
func AblationMacUnits(p Params) (*Ablation, error) {
	var pts []struct {
		label   string
		variant Variant
	}
	for _, n := range []int{1, 2, 4} {
		n := n
		pts = append(pts, struct {
			label   string
			variant Variant
		}{fmt.Sprintf("%d verification unit(s)", n), func(c *sim.Config) { c.Sec.MacUnits = n }})
	}
	return ablate("Ablation: parallel verification engines (authen-then-issue)", p, policy.ThenIssue, pts)
}

// AblationEncryptionMode reproduces the paper's Section 2 argument for
// counter mode: under CBC both decryption and verification serialize behind
// the fetch, so every scheme slows down — but the decrypt/verify gap nearly
// closes, collapsing the difference between authen-then-issue and
// authen-then-commit.
func AblationEncryptionMode(p Params) (*Ablation, error) {
	a := &Ablation{Title: "Ablation: encryption mode (counter vs CBC, Table 1 / §5.2.2)"}
	for _, cfg := range []struct {
		label  string
		scheme policy.ControlPoint
		mode   secmem.Mode
	}{
		{"ctr, then-commit", policy.ThenCommit, secmem.ModeCTR},
		{"ctr, then-issue", policy.ThenIssue, secmem.ModeCTR},
		{"cbc, then-commit", policy.ThenCommit, secmem.ModeCBC},
		{"cbc, then-issue", policy.ThenIssue, secmem.ModeCBC},
	} {
		cfg := cfg
		sw, err := RunSweep(cfg.label, p, []policy.ControlPoint{cfg.scheme},
			func(c *sim.Config) { c.Sec.Mode = cfg.mode })
		if err != nil {
			return nil, err
		}
		// Normalization is within-mode (CBC rows normalize against a CBC
		// decrypt-only baseline): the ratio shows the scheme cost inside
		// each mode, the absolute column shows the mode cost itself.
		abs := 0.0
		for _, r := range sw.Rows {
			abs += r.IPC[cfg.scheme]
		}
		a.Points = append(a.Points, AblationPoint{
			Label:   cfg.label,
			Mean:    sw.MeanNormalized(cfg.scheme),
			MeanIPC: abs / float64(max(len(sw.Rows), 1)),
		})
	}
	return a, nil
}

// AblationMSHR bounds outstanding misses: the paper-era machines held ~8
// miss registers; the model defaults to unbounded. Memory-level parallelism
// (and with it, the relative cost of every authentication gate) depends on
// this bound.
func AblationMSHR(p Params) (*Ablation, error) {
	var pts []struct {
		label   string
		variant Variant
	}
	for _, n := range []int{0, 16, 8, 4} {
		n := n
		label := fmt.Sprintf("%d MSHRs", n)
		if n == 0 {
			label = "unbounded MSHRs (default)"
		}
		pts = append(pts, struct {
			label   string
			variant Variant
		}{label, func(c *sim.Config) { c.Mem.MSHRs = n }})
	}
	return ablate("Ablation: outstanding-miss bound (authen-then-commit)", p, policy.ThenCommit, pts)
}

// AblationPrefetch toggles the next-line L2 prefetcher under the baseline
// and under authen-then-fetch: prefetches help streaming kernels but also
// consume verification-engine throughput and are themselves gated.
func AblationPrefetch(p Params) (*Ablation, error) {
	a := &Ablation{Title: "Ablation: next-line L2 prefetch"}
	for _, cfg := range []struct {
		label  string
		scheme policy.ControlPoint
		pf     bool
	}{
		{"baseline, no prefetch", policy.Baseline, false},
		{"baseline, prefetch", policy.Baseline, true},
		{"then-fetch, no prefetch", policy.ThenFetch, false},
		{"then-fetch, prefetch", policy.ThenFetch, true},
	} {
		cfg := cfg
		sw, err := RunSweep(cfg.label, p, []policy.ControlPoint{cfg.scheme},
			func(c *sim.Config) { c.Mem.NextLinePrefetch = cfg.pf })
		if err != nil {
			return nil, err
		}
		abs := 0.0
		for _, r := range sw.Rows {
			abs += r.IPC[cfg.scheme]
		}
		a.Points = append(a.Points, AblationPoint{
			Label:   cfg.label,
			Mean:    sw.MeanNormalized(cfg.scheme),
			MeanIPC: abs / float64(max(len(sw.Rows), 1)),
		})
	}
	return a, nil
}

// AllAblations runs every sensitivity study.
func AllAblations(p Params) ([]*Ablation, error) {
	var out []*Ablation
	for _, f := range []func(Params) (*Ablation, error){
		AblationFetchVariants,
		AblationDecryptLatency,
		AblationMacLatency,
		AblationCtrPrediction,
		AblationMacWidth,
		AblationMacUnits,
		AblationMSHR,
		AblationEncryptionMode,
		AblationPrefetch,
	} {
		a, err := f(p)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
