package experiments

import (
	"fmt"
	"io"
	"strings"

	"authpoint/internal/policy"
)

// RenderBars prints a sweep as per-workload bar groups, the visual shape of
// the paper's figures. Bars span [0, 1.05] normalized IPC.
func (s *Sweep) RenderBars(w io.Writer) {
	fmt.Fprintf(w, "%s\n", s.Title)
	const width = 42
	bar := func(v float64) string {
		if v < 0 {
			v = 0
		}
		if v > 1.05 {
			v = 1.05
		}
		n := int(v / 1.05 * width)
		return strings.Repeat("#", n) + strings.Repeat(".", width-n)
	}
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%s (baseline IPC %.3f)\n", r.Workload, r.BaselineIPC)
		for _, sc := range s.Policies {
			v := r.Normalized(sc)
			fmt.Fprintf(w, "  %-24s |%s| %.3f\n", shortPolicy(sc), bar(v), v)
		}
	}
	fmt.Fprintln(w, "MEAN")
	for _, sc := range s.Policies {
		v := s.MeanNormalized(sc)
		fmt.Fprintf(w, "  %-24s |%s| %.3f\n", shortPolicy(sc), bar(v), v)
	}
}

// shortPolicy drops the shared "authen-" prefix so bar labels stay compact
// ("then-issue", "then-commit+fetch") while remaining unambiguous.
func shortPolicy(p policy.ControlPoint) string {
	return strings.TrimPrefix(p.String(), "authen-")
}
