package experiments

import (
	"fmt"
	"io"
	"strings"

	"authpoint/internal/sim"
)

// RenderBars prints a sweep as per-workload bar groups, the visual shape of
// the paper's figures. Bars span [0, 1.05] normalized IPC.
func (s *Sweep) RenderBars(w io.Writer) {
	fmt.Fprintf(w, "%s\n", s.Title)
	const width = 42
	bar := func(v float64) string {
		if v < 0 {
			v = 0
		}
		if v > 1.05 {
			v = 1.05
		}
		n := int(v / 1.05 * width)
		return strings.Repeat("#", n) + strings.Repeat(".", width-n)
	}
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%s (baseline IPC %.3f)\n", r.Workload, r.BaselineIPC)
		for _, sc := range s.Schemes {
			v := r.Normalized(sc)
			fmt.Fprintf(w, "  %-20s |%s| %.3f\n", shortScheme(sc), bar(v), v)
		}
	}
	fmt.Fprintln(w, "MEAN")
	for _, sc := range s.Schemes {
		v := s.MeanNormalized(sc)
		fmt.Fprintf(w, "  %-20s |%s| %.3f\n", shortScheme(sc), bar(v), v)
	}
}

func shortScheme(s sim.Scheme) string {
	switch s {
	case sim.SchemeThenIssue:
		return "then-issue"
	case sim.SchemeThenWrite:
		return "then-write"
	case sim.SchemeThenCommit:
		return "then-commit"
	case sim.SchemeThenFetch:
		return "then-fetch"
	case sim.SchemeCommitPlusFetch:
		return "commit+fetch"
	case sim.SchemeCommitPlusObfuscation:
		return "commit+obfuscation"
	case sim.SchemeBaseline:
		return "baseline"
	}
	return s.String()
}
