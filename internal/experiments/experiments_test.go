package experiments

import (
	"bytes"
	"strings"
	"testing"

	"authpoint/internal/harness"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// TestSweepParallelOutputByteIdentical is the engine's end-to-end
// determinism gate: the same sweep run serially and on an 8-worker pool
// must render byte-identical tables and bar figures.
func TestSweepParallelOutputByteIdentical(t *testing.T) {
	p := Params{Warmup: 4_000, Measure: 12_000}
	for _, n := range []string{"gapx", "swimx"} {
		w, _ := workload.ByName(n)
		p.Workloads = append(p.Workloads, w)
	}
	schemes := []policy.ControlPoint{policy.ThenIssue, policy.ThenCommit}

	render := func(parallelism int) (string, string) {
		t.Helper()
		pp := p
		pp.Runner = &harness.Runner{Parallelism: parallelism}
		sw, err := RunSweep("determinism", pp, schemes, nil)
		if err != nil {
			t.Fatal(err)
		}
		var table, bars bytes.Buffer
		sw.Render(&table)
		sw.RenderBars(&bars)
		return table.String(), bars.String()
	}
	serialTable, serialBars := render(1)
	parTable, parBars := render(8)
	if serialTable != parTable {
		t.Errorf("table output differs:\n--- serial ---\n%s--- parallel ---\n%s", serialTable, parTable)
	}
	if serialBars != parBars {
		t.Errorf("bar output differs:\n--- serial ---\n%s--- parallel ---\n%s", serialBars, parBars)
	}
	if !strings.Contains(serialTable, "gapx") || !strings.Contains(serialTable, "MEAN") {
		t.Errorf("render shape unexpected:\n%s", serialTable)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	ctr := rows[0]
	cbcLast := rows[2]
	if ctr.Gap == 0 {
		t.Error("counter-mode gap should be positive (auth lags decrypt)")
	}
	// Table 1's point: CBC narrows the gap but inflates both latencies.
	if cbcLast.Gap >= ctr.Gap {
		t.Errorf("CBC last-chunk gap %d should be below counter-mode gap %d", cbcLast.Gap, ctr.Gap)
	}
	if cbcLast.DecryptLat <= ctr.DecryptLat {
		t.Error("CBC decryption should be slower than counter mode")
	}
	measured := rows[3]
	if measured.Gap == 0 {
		t.Error("measured gap should be positive")
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "counter mode") {
		t.Error("render output missing rows")
	}
}

func TestTable3Renders(t *testing.T) {
	var buf bytes.Buffer
	RenderTable3(&buf, sim.DefaultConfig())
	for _, want := range []string{"L2 Cache", "256KB", "RUU", "128", "80ns", "74ns"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 3 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestFig6DependentFetch(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	issue, fetch := rows[0], rows[1]
	if issue.Policy != policy.ThenIssue || fetch.Policy != policy.ThenFetch {
		t.Fatalf("unexpected order %v %v", issue.Policy, fetch.Policy)
	}
	if issue.Fetch2Cycle == 0 || fetch.Fetch2Cycle == 0 {
		t.Fatal("dependent fetch missing from a trace")
	}
	// The paper's Figure 6 point: then-fetch issues the dependent fetch
	// earlier than then-issue.
	if fetch.SecondMinus1 >= issue.SecondMinus1 {
		t.Errorf("then-fetch gap %d should beat then-issue gap %d", fetch.SecondMinus1, issue.SecondMinus1)
	}
	var buf bytes.Buffer
	RenderFig6(&buf, rows)
	if !strings.Contains(buf.String(), "then-fetch") {
		t.Error("render output empty")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[policy.ControlPoint]Table2Row{
		policy.ThenIssue:             {PreventsFetchLeak: true, PreciseException: true, AuthenticatedMemory: true, AuthenticatedProcessor: true},
		policy.ThenWrite:             {PreventsFetchLeak: false, PreciseException: false, AuthenticatedMemory: true, AuthenticatedProcessor: false},
		policy.ThenCommit:            {PreventsFetchLeak: false, PreciseException: true, AuthenticatedMemory: true, AuthenticatedProcessor: true},
		policy.CommitPlusFetch:       {PreventsFetchLeak: true, PreciseException: true, AuthenticatedMemory: true, AuthenticatedProcessor: true},
		policy.CommitPlusObfuscation: {PreventsFetchLeak: true, PreciseException: true, AuthenticatedMemory: true, AuthenticatedProcessor: true},
	}
	for _, r := range rows {
		w := want[r.Policy]
		if r.PreventsFetchLeak != w.PreventsFetchLeak ||
			r.PreciseException != w.PreciseException ||
			r.AuthenticatedMemory != w.AuthenticatedMemory ||
			r.AuthenticatedProcessor != w.AuthenticatedProcessor {
			t.Errorf("%v: got %+v want %+v", r.Policy, r, w)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "commit+fetch") {
		t.Error("render output missing rows")
	}
}

// Quick end-to-end sweep: shape assertions on a small workload subset.
func TestQuickSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	if raceEnabled {
		t.Skip("simulation-heavy; race coverage comes from TestSweepParallelOutputByteIdentical and TestTable2MatchesPaper")
	}
	p := QuickParams()
	sw, err := RunSweep("quick", p, PerfPolicies, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Rows) != len(p.Workloads) {
		t.Fatalf("rows %d", len(sw.Rows))
	}
	for _, r := range sw.Rows {
		if r.BaselineIPC <= 0 {
			t.Errorf("%s: baseline IPC %v", r.Workload, r.BaselineIPC)
		}
		for _, sc := range PerfPolicies {
			n := r.Normalized(sc)
			if n <= 0 || n > 1.10 {
				t.Errorf("%s %v: normalized IPC %.3f out of range", r.Workload, sc, n)
			}
		}
	}
	// Paper ranking on means: then-write best, then-commit next, then-issue
	// and obfuscation worst.
	mw := sw.MeanNormalized(policy.ThenWrite)
	mc := sw.MeanNormalized(policy.ThenCommit)
	mi := sw.MeanNormalized(policy.ThenIssue)
	if !(mw >= mc && mc >= mi) {
		t.Errorf("mean ranking violated: write=%.3f commit=%.3f issue=%.3f", mw, mc, mi)
	}
	var buf bytes.Buffer
	sw.Render(&buf)
	if !strings.Contains(buf.String(), "MEAN") {
		t.Error("render missing mean row")
	}
	sp := sw.Speedups([]policy.ControlPoint{policy.ThenCommit, policy.ThenWrite, policy.CommitPlusFetch})
	for _, r := range sp {
		if r.Speedup[policy.ThenCommit] < 1.0-0.05 {
			t.Errorf("%s: then-commit speedup over then-issue %.3f < 1", r.Workload, r.Speedup[policy.ThenCommit])
		}
	}
	RenderSpeedups(&buf, "quick speedups", sp, []policy.ControlPoint{policy.ThenCommit})
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	if raceEnabled {
		t.Skip("simulation-heavy; race coverage comes from TestSweepParallelOutputByteIdentical and TestTable2MatchesPaper")
	}
	p := QuickParams()
	// Use an even smaller subset: ablations multiply run counts.
	p.Workloads = p.Workloads[:2]
	p.Warmup, p.Measure = 8_000, 25_000

	fv, err := AblationFetchVariants(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.Points) != 2 {
		t.Fatalf("points %d", len(fv.Points))
	}
	// The drain variant is strictly more conservative.
	if fv.Points[1].Mean > fv.Points[0].Mean+0.02 {
		t.Errorf("drain (%.3f) should not beat LastRequest tag (%.3f)",
			fv.Points[1].Mean, fv.Points[0].Mean)
	}

	cp, err := AblationCtrPrediction(p)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Points[1].Mean > cp.Points[0].Mean+0.02 {
		t.Errorf("no-prediction (%.3f) should not beat prediction (%.3f)",
			cp.Points[1].Mean, cp.Points[0].Mean)
	}

	var buf bytes.Buffer
	fv.Render(&buf)
	if !strings.Contains(buf.String(), "drain") {
		t.Error("render missing points")
	}
}

func TestRenderBars(t *testing.T) {
	sw := &Sweep{
		Title:    "bars",
		Policies: []policy.ControlPoint{policy.ThenIssue, policy.ThenCommit},
		Rows: []IPCRow{{
			Workload:    "demo",
			BaselineIPC: 1.0,
			IPC: map[policy.ControlPoint]float64{
				policy.ThenIssue:  0.85,
				policy.ThenCommit: 1.5, // clamps at the bar edge
			},
		}},
	}
	var buf bytes.Buffer
	sw.RenderBars(&buf)
	out := buf.String()
	for _, want := range []string{"then-issue", "then-commit", "0.850", "MEAN", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("bars missing %q:\n%s", want, out)
		}
	}
}

// Exercise every figure driver end-to-end on a micro configuration.
func TestFigureDriversQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	if raceEnabled {
		t.Skip("simulation-heavy; race coverage comes from TestSweepParallelOutputByteIdentical and TestTable2MatchesPaper")
	}
	p := Params{Warmup: 5_000, Measure: 15_000}
	for _, n := range []string{"swimx", "gccx"} {
		w, _ := workload.ByName(n)
		p.Workloads = append(p.Workloads, w)
	}

	f7, err := Fig7(p, false, 256<<10, 4) // INT subset: gccx only
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 1 || f7.Rows[0].Workload != "gccx" {
		t.Fatalf("fig7 INT filter: %+v", f7.Rows)
	}

	f9, err := Fig9(p, []int{64 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(f9) != 2 || f9[0].Mean <= 0 {
		t.Fatalf("fig9: %+v", f9)
	}
	if f9[1].Mean+0.05 < f9[0].Mean {
		t.Errorf("larger re-map cache should not be clearly worse: %.3f vs %.3f", f9[1].Mean, f9[0].Mean)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, f9)
	if !strings.Contains(buf.String(), "64KB") {
		t.Error("fig9 render")
	}

	f10, err := Fig10(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Policies) != 4 {
		t.Fatalf("fig10 policies %d", len(f10.Policies))
	}

	f12, err := Fig12(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f12.Rows {
		for _, sc := range Fig12Policies {
			if n := r.Normalized(sc); n <= 0 || n > 1.2 {
				t.Errorf("fig12 %s %v: %.3f", r.Workload, sc, n)
			}
		}
	}
}
