//go:build race

package experiments

// raceEnabled trims the simulation-heavy tests under the race detector,
// whose instrumentation multiplies simulator cost roughly 8x. The package's
// concurrency surface stays covered in race mode by
// TestSweepParallelOutputByteIdentical (worker-pool sweep, serial vs 8
// workers) and TestTable2MatchesPaper (per-scheme goroutine fan-out).
const raceEnabled = true
