package experiments

import (
	"fmt"
	"io"

	"authpoint/internal/asm"
	"authpoint/internal/bus"
	"authpoint/internal/dram"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// Table1Row is one memory-protection scheme's latency decomposition.
type Table1Row struct {
	Scheme     string
	DecryptLat uint64 // cycles from fetch issue to usable plaintext
	AuthLat    uint64 // cycles from fetch issue to verified
	Gap        uint64 // AuthLat - DecryptLat: the disassociation window
}

// Table1 instantiates the paper's Table 1 with the model's concrete timing:
// [counter mode + HMAC] against [CBC + CBC-MAC] for one line fetch with the
// Table 3 memory system. The counter-mode row is additionally *measured* by
// driving a fetch through the secure memory controller; the CBC rows follow
// the paper's closed forms (fetch + (n+1)·decrypt for chunk n, fetch +
// N·decrypt for the MAC).
func Table1(cfg sim.Config) ([]Table1Row, error) {
	// Representative memory fetch latency: row-empty access plus the line
	// burst at the Table 3 timings.
	d := cfg.DRAM
	cpb := uint64(d.CorePerBus)
	beats := uint64((cfg.Mem.L2LineB + cfg.Sec.MacB + d.BusBytes - 1) / d.BusBytes)
	fetch := uint64(d.RCDBus+d.CASBus)*cpb + beats*cpb + uint64(cfg.Bus.AddrBeats)*cpb

	dec := uint64(cfg.Sec.DecryptLat)
	mac := uint64(cfg.Sec.MacLat)
	n := uint64(cfg.Mem.L2LineB / 16) // 128-bit chunks per line

	ctrDecrypt := fetch
	if dec > fetch {
		ctrDecrypt = dec // MAX(memory fetch latency, decryption latency)
	}
	ctrAuth := fetch + mac

	cbcDecryptFirst := fetch + dec // first chunk: fetch + 1 cipher op
	cbcDecryptLast := fetch + dec*n
	cbcAuth := fetch + dec*n

	rows := []Table1Row{
		{"counter mode + HMAC (analytic)", ctrDecrypt, ctrAuth, ctrAuth - ctrDecrypt},
		{"CBC + CBC-MAC, first chunk", cbcDecryptFirst, cbcAuth, cbcAuth - cbcDecryptFirst},
		{fmt.Sprintf("CBC + CBC-MAC, chunk N=%d", n), cbcDecryptLast, cbcAuth, cbcAuth - cbcDecryptLast},
	}

	// Measured counter-mode row: one cold fetch through the controller.
	p, err := asm.Assemble("_start: halt")
	if err != nil {
		return nil, err
	}
	mcfg := cfg
	mcfg.Policy = policy.ThenCommit
	m, err := sim.NewMachine(mcfg, p)
	if err != nil {
		return nil, err
	}
	res, err := m.Ctrl.Fetch(0, p.DataBase&^uint64(cfg.Mem.L2LineB-1), 0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Scheme:     "counter mode + HMAC (measured)",
		DecryptLat: res.PlainReady,
		AuthLat:    res.AuthDone,
		Gap:        res.AuthDone - res.PlainReady,
	})
	return rows, nil
}

// RenderTable1 prints the latency-gap table.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: latency gap between decryption and integrity verification (core cycles @1GHz)")
	fmt.Fprintf(w, "%-34s %10s %10s %8s\n", "scheme", "decrypt", "auth", "gap")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %10d %10d %8d\n", r.Scheme, r.DecryptLat, r.AuthLat, r.Gap)
	}
}

// RenderTable3 prints the processor model parameters in the paper's layout.
func RenderTable3(w io.Writer, cfg sim.Config) {
	p := func(k, v string) { fmt.Fprintf(w, "  %-26s %s\n", k, v) }
	fmt.Fprintln(w, "Table 3: processor model parameters")
	p("Frequency", "1.0 GHz (1 cycle = 1 ns)")
	p("Fetch/Decode width", fmt.Sprint(cfg.Pipeline.FetchWidth))
	p("Issue/Commit width", fmt.Sprintf("%d/%d", cfg.Pipeline.IssueWidth, cfg.Pipeline.CommitWidth))
	p("L1 I-Cache", fmt.Sprintf("%d-way, %dKB, %dB line", cfg.Mem.L1IWays, cfg.Mem.L1IB>>10, cfg.Mem.L1ILineB))
	p("L1 D-Cache", fmt.Sprintf("%d-way, %dKB, %dB line", cfg.Mem.L1DWays, cfg.Mem.L1DB>>10, cfg.Mem.L1DLineB))
	p("L2 Cache", fmt.Sprintf("%d-way, unified, %dB line, write-back, %dKB", cfg.Mem.L2Ways, cfg.Mem.L2LineB, cfg.Mem.L2B>>10))
	p("L1 latency", fmt.Sprintf("%d cycle", cfg.Mem.L1Lat))
	p("L2 latency", fmt.Sprintf("%d cycles", cfg.Mem.L2Lat))
	p("I-TLB / D-TLB", fmt.Sprintf("%d-way, %d/%d entries, %d-cycle miss", cfg.Mem.TLBWays, cfg.Mem.ITLBEntries, cfg.Mem.DTLBEntries, cfg.Mem.TLBMissPenalty))
	p("RUU / LSQ", fmt.Sprintf("%d / %d entries", cfg.Pipeline.RUUSize, cfg.Pipeline.LSQSize))
	p("Memory bus", fmt.Sprintf("%dMHz, %dB wide", 1000/cfg.Bus.CorePerBus, cfg.Bus.BusBytes))
	p("CAS latency", fmt.Sprintf("%d mem bus clocks", cfg.DRAM.CASBus))
	p("Precharge (RP)", fmt.Sprintf("%d mem bus clocks", cfg.DRAM.RPBus))
	p("RAS-to-CAS (RCD)", fmt.Sprintf("%d mem bus clocks", cfg.DRAM.RCDBus))
	p("DRAM banks / row", fmt.Sprintf("%d banks, %dB rows", cfg.DRAM.Banks, cfg.DRAM.RowBytes))
	p("Decryption latency", fmt.Sprintf("%dns (256-bit Rijndael)", cfg.Sec.DecryptLat))
	p("MAC latency", fmt.Sprintf("%dns (SHA-256 HMAC, %d-bit truncated)", cfg.Sec.MacLat, cfg.Sec.MacB*8))
	p("Counter cache", fmt.Sprintf("%dKB, %d-way, prediction=%v", cfg.Sec.CtrCacheB>>10, cfg.Sec.CtrCacheWays, cfg.Sec.CtrPredict))
	p("Hash-tree cache", fmt.Sprintf("%dKB", cfg.Sec.TreeCacheB>>10))
	p("Re-map cache", fmt.Sprintf("%dKB, %d-way", cfg.Sec.RemapCacheB>>10, cfg.Sec.RemapCacheWays))
}

// Fig6Result captures the Figure 6 timeline: two data-dependent external
// fetches under authen-then-issue vs authen-then-fetch.
type Fig6Result struct {
	Policy       policy.ControlPoint
	Fetch1Addr   uint64
	Fetch1Cycle  uint64 // address of the first fetch on the bus
	Fetch2Addr   uint64
	Fetch2Cycle  uint64 // address of the dependent fetch on the bus
	TotalCycles  uint64
	SecondMinus1 uint64
}

// Fig6 reproduces the Figure 6 comparison: a pointer dereference whose
// second fetch depends on the first fetch's data. Under authen-then-issue
// the dependent address generation waits for verification of the first
// line; under authen-then-fetch only the bus grant waits — and only for
// requests already in the queue — so the second fetch issues earlier.
func Fig6() ([]Fig6Result, error) {
	src := `
	_start:
		la  r1, p0
		ld  r2, 0(r1)        ; fetch 1: pointer line
		ld  r3, 0(r2)        ; fetch 2: depends on fetch 1's data
		halt
	.data
	target: .word 42
	.space 8120
	p0:     .word target
	`
	var out []Fig6Result
	for _, pt := range []policy.ControlPoint{policy.ThenIssue, policy.ThenFetch} {
		p, err := asm.Assemble(src)
		if err != nil {
			return nil, err
		}
		cfg := sim.DefaultConfig()
		cfg.Policy = pt
		cfg.TraceBus = true
		m, err := sim.NewMachine(cfg, p)
		if err != nil {
			return nil, err
		}
		res, err := m.Run()
		if err != nil {
			return nil, err
		}
		r := Fig6Result{Policy: pt, TotalCycles: res.Cycles}
		p0Line := m.Prog.Symbols["p0"] &^ 63
		tgtLine := m.Prog.Symbols["target"] &^ 63
		for _, e := range m.Bus.Trace() {
			if e.Kind != bus.ReadLine {
				continue
			}
			switch e.Addr {
			case p0Line:
				r.Fetch1Addr, r.Fetch1Cycle = e.Addr, e.Cycle
			case tgtLine:
				r.Fetch2Addr, r.Fetch2Cycle = e.Addr, e.Cycle
			}
		}
		r.SecondMinus1 = r.Fetch2Cycle - r.Fetch1Cycle
		out = append(out, r)
	}
	return out, nil
}

// RenderFig6 prints the dependent-fetch timeline.
func RenderFig6(w io.Writer, rows []Fig6Result) {
	fmt.Fprintln(w, "Figure 6: dependent external fetches — authen-then-fetch vs authen-then-issue")
	fmt.Fprintf(w, "%-20s %14s %14s %16s %12s\n", "policy", "fetch1@cycle", "fetch2@cycle", "fetch2-fetch1", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %14d %14d %16d %12d\n", r.Policy, r.Fetch1Cycle, r.Fetch2Cycle, r.SecondMinus1, r.TotalCycles)
	}
	fmt.Fprintln(w, "(then-fetch grants the dependent fetch earlier: it stalls only on already-queued")
	fmt.Fprintln(w, " verification requests, not on verification of its own address operand)")
}

// DRAMConfigSanity asserts Table 3's DRAM numbers are the ones instantiated.
func DRAMConfigSanity() dram.Config { return dram.Default() }
