// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the security matrix (Table 2). Each experiment
// returns a structured result and renders the same rows/series the paper
// reports; EXPERIMENTS.md records the comparison against the published
// numbers.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"authpoint/internal/attack"
	"authpoint/internal/harness"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// Params sets the global sweep knobs.
type Params struct {
	Warmup    uint64
	Measure   uint64
	Workloads []workload.Workload
	// Runner executes the sweep cells; nil uses harness.DefaultRunner
	// (worker pool sized to the host, process-wide baseline memo).
	Runner *harness.Runner
}

func (p Params) runner() *harness.Runner {
	if p.Runner != nil {
		return p.Runner
	}
	return harness.DefaultRunner
}

// DefaultParams covers all 18 kernels at the default windows.
func DefaultParams() Params {
	return Params{
		Warmup:    harness.DefaultWarmup,
		Measure:   harness.DefaultMeasure,
		Workloads: workload.All(),
	}
}

// QuickParams is a fast subset for smoke runs.
func QuickParams() Params {
	names := []string{"mcfx", "twolfx", "gccx", "swimx", "artx", "lucasx"}
	var ws []workload.Workload
	for _, n := range names {
		w, ok := workload.ByName(n)
		if !ok {
			panic("unknown quick workload " + n)
		}
		ws = append(ws, w)
	}
	return Params{Warmup: 10_000, Measure: 40_000, Workloads: ws}
}

// PerfPolicies is the order the paper plots (Figure 7): five authentication
// control points plus address obfuscation on top of then-commit.
var PerfPolicies = []policy.ControlPoint{
	policy.ThenIssue,
	policy.ThenWrite,
	policy.ThenCommit,
	policy.ThenFetch,
	policy.CommitPlusFetch,
	policy.CommitPlusObfuscation,
}

// IPCRow is one workload's results across control points.
type IPCRow struct {
	Workload string
	FP       bool
	// BaselineIPC is the decrypt-only IPC everything normalizes against.
	BaselineIPC float64
	// IPC maps control point -> absolute measured IPC.
	IPC map[policy.ControlPoint]float64
}

// Normalized returns IPC(policy)/IPC(baseline).
func (r IPCRow) Normalized(p policy.ControlPoint) float64 {
	if r.BaselineIPC == 0 {
		return 0
	}
	return r.IPC[p] / r.BaselineIPC
}

// Sweep is a full normalized-IPC experiment (the Figure 7/10/12 family).
type Sweep struct {
	Title    string
	Policies []policy.ControlPoint
	Rows     []IPCRow
}

// MeanNormalized returns the arithmetic mean of normalized IPC for a control
// point (the paper's "average IPC" statements).
func (s *Sweep) MeanNormalized(p policy.ControlPoint) float64 {
	if len(s.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range s.Rows {
		sum += r.Normalized(p)
	}
	return sum / float64(len(s.Rows))
}

// Variant mutates the machine configuration for a sweep (L2 size, RUU size,
// tree mode, remap cache size...).
type Variant func(*sim.Config)

// RunSweep measures every workload under the baseline plus each control
// point. The cells fan out over the runner's worker pool; results fold back
// in input order, so the rendered rows/series are identical to a serial run.
// Baseline cells hit the runner's memo when an identical (workload, config,
// windows) baseline was already measured this process.
func RunSweep(title string, p Params, policies []policy.ControlPoint, variant Variant) (*Sweep, error) {
	sw := &Sweep{Title: title, Policies: policies}
	cell := func(w workload.Workload, pt policy.ControlPoint) harness.Spec {
		cfg := sim.DefaultConfig()
		if variant != nil {
			variant(&cfg)
		}
		cfg.Policy = pt
		return harness.Spec{Workload: w, Config: cfg, WarmupInsts: p.Warmup, MeasureInsts: p.Measure}
	}
	var specs []harness.Spec
	for _, w := range p.Workloads {
		specs = append(specs, cell(w, policy.Baseline))
		for _, pt := range policies {
			specs = append(specs, cell(w, pt))
		}
	}
	outs, err := p.runner().RunAll(context.Background(), specs)
	if err != nil {
		for _, o := range outs {
			if o.Err != nil && !errors.Is(o.Err, context.Canceled) {
				return nil, fmt.Errorf("%s %v: %w", o.Spec.Workload.Name, o.Spec.Config.ControlPoint(), o.Err)
			}
		}
		return nil, err
	}
	i := 0
	for _, w := range p.Workloads {
		row := IPCRow{Workload: w.Name, FP: w.FP, IPC: map[policy.ControlPoint]float64{}}
		row.BaselineIPC = outs[i].Measurement.IPC
		i++
		for _, pt := range policies {
			row.IPC[pt] = outs[i].Measurement.IPC
			i++
		}
		sw.Rows = append(sw.Rows, row)
	}
	return sw, nil
}

// colWidth sizes a table column to the longest policy name in the set
// (canonical names run up to 30 characters for the paper's combinations,
// longer for deep lattice points).
func colWidth(policies []policy.ControlPoint) int {
	w := 18
	for _, p := range policies {
		if n := len(p.String()); n > w {
			w = n
		}
	}
	return w
}

// Render prints the sweep as a normalized-IPC table.
func (s *Sweep) Render(w io.Writer) {
	cw := colWidth(s.Policies)
	fmt.Fprintf(w, "%s\n", s.Title)
	fmt.Fprintf(w, "%-10s %9s", "workload", "base-IPC")
	for _, sc := range s.Policies {
		fmt.Fprintf(w, " %*s", cw, sc)
	}
	fmt.Fprintln(w)
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10s %9.3f", r.Workload, r.BaselineIPC)
		for _, sc := range s.Policies {
			fmt.Fprintf(w, " %*.3f", cw, r.Normalized(sc))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s %9s", "MEAN", "")
	for _, sc := range s.Policies {
		fmt.Fprintf(w, " %*.3f", cw, s.MeanNormalized(sc))
	}
	fmt.Fprintln(w)
}

// SpeedupRow is one workload's IPC speedup over authen-then-issue (Figure
// 8/11/13 family).
type SpeedupRow struct {
	Workload string
	Speedup  map[policy.ControlPoint]float64
}

// Speedups derives the Figure 8-style view from a sweep: IPC(policy) /
// IPC(then-issue).
func (s *Sweep) Speedups(policies []policy.ControlPoint) []SpeedupRow {
	var out []SpeedupRow
	for _, r := range s.Rows {
		ref := r.IPC[policy.ThenIssue]
		row := SpeedupRow{Workload: r.Workload, Speedup: map[policy.ControlPoint]float64{}}
		for _, sc := range policies {
			if ref > 0 {
				row.Speedup[sc] = r.IPC[sc] / ref
			}
		}
		out = append(out, row)
	}
	return out
}

// RenderSpeedups prints a Figure 8-style table.
func RenderSpeedups(w io.Writer, title string, rows []SpeedupRow, policies []policy.ControlPoint) {
	cw := colWidth(policies)
	fmt.Fprintf(w, "%s\n%-10s", title, "workload")
	for _, sc := range policies {
		fmt.Fprintf(w, " %*s", cw, sc)
	}
	fmt.Fprintln(w)
	means := map[policy.ControlPoint]float64{}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Workload)
		for _, sc := range policies {
			fmt.Fprintf(w, " %*.3f", cw, r.Speedup[sc])
			means[sc] += r.Speedup[sc]
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "MEAN")
	for _, sc := range policies {
		fmt.Fprintf(w, " %*.3f", cw, means[sc]/float64(len(rows)))
	}
	fmt.Fprintln(w)
}

// --- Figure 7 -------------------------------------------------------------

// Fig7 runs one quadrant of Figure 7: normalized IPC of the six control
// points for INT or FP workloads at the given L2 size.
func Fig7(p Params, fp bool, l2B, l2Lat int) (*Sweep, error) {
	var ws []workload.Workload
	for _, w := range p.Workloads {
		if w.FP == fp {
			ws = append(ws, w)
		}
	}
	p.Workloads = ws
	kind := "INT"
	if fp {
		kind = "FP"
	}
	title := fmt.Sprintf("Figure 7: normalized IPC, %s, %dKB L2 (baseline: decryption only)", kind, l2B>>10)
	return RunSweep(title, p, PerfPolicies, func(c *sim.Config) {
		c.Mem.L2B = l2B
		c.Mem.L2Lat = l2Lat
	})
}

// --- Figure 9 -------------------------------------------------------------

// Fig9Point is one re-map cache size's mean normalized IPC.
type Fig9Point struct {
	RemapCacheB int
	PerRow      []IPCRow
	Mean        float64
}

// Fig9 sweeps the address-obfuscation re-map cache size under then-commit +
// obfuscation (paper: IPC improves with re-map cache size).
func Fig9(p Params, sizes []int) ([]Fig9Point, error) {
	var out []Fig9Point
	for _, size := range sizes {
		size := size
		sw, err := RunSweep(
			fmt.Sprintf("Figure 9: obfuscation re-map cache %dKB", size>>10),
			p, []policy.ControlPoint{policy.CommitPlusObfuscation},
			func(c *sim.Config) { c.Sec.RemapCacheB = size },
		)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig9Point{
			RemapCacheB: size,
			PerRow:      sw.Rows,
			Mean:        sw.MeanNormalized(policy.CommitPlusObfuscation),
		})
	}
	return out, nil
}

// RenderFig9 prints the re-map sweep.
func RenderFig9(w io.Writer, pts []Fig9Point) {
	fmt.Fprintln(w, "Figure 9: normalized IPC vs re-map cache size (obfuscation + then-commit)")
	fmt.Fprintf(w, "%-10s", "workload")
	for _, pt := range pts {
		fmt.Fprintf(w, " %10dKB", pt.RemapCacheB>>10)
	}
	fmt.Fprintln(w)
	if len(pts) == 0 {
		return
	}
	for i := range pts[0].PerRow {
		fmt.Fprintf(w, "%-10s", pts[0].PerRow[i].Workload)
		for _, pt := range pts {
			fmt.Fprintf(w, " %12.3f", pt.PerRow[i].Normalized(policy.CommitPlusObfuscation))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "MEAN")
	for _, pt := range pts {
		fmt.Fprintf(w, " %12.3f", pt.Mean)
	}
	fmt.Fprintln(w)
}

// --- Figures 10-13 ---------------------------------------------------------

// Fig10Policies are the four control points of the RUU study.
var Fig10Policies = []policy.ControlPoint{
	policy.ThenIssue, policy.ThenWrite, policy.ThenCommit, policy.CommitPlusFetch,
}

// Fig10 runs the 64-entry RUU sensitivity study.
func Fig10(p Params) (*Sweep, error) {
	return RunSweep("Figure 10: normalized IPC, 64-entry RUU, 256KB L2", p, Fig10Policies,
		func(c *sim.Config) {
			c.Pipeline.RUUSize = 64
			c.Pipeline.LSQSize = 32
		})
}

// Fig12Policies are the five control points of the MAC-tree study.
var Fig12Policies = []policy.ControlPoint{
	policy.ThenIssue, policy.ThenWrite, policy.ThenCommit,
	policy.ThenFetch, policy.CommitPlusFetch,
}

// Fig12 runs the MAC-tree (CHTree-style) authentication study. The baseline
// stays decryption-only, as in the paper. Tree-mode runs simulate several
// times more cycles per instruction, so the windows are scaled down to keep
// the sweep tractable; normalized IPC is a ratio and stabilizes quickly.
func Fig12(p Params) (*Sweep, error) {
	p.Warmup = p.Warmup/2 + 1
	p.Measure = p.Measure/3 + 1
	return RunSweep("Figure 12: normalized IPC under MAC-tree authentication", p, Fig12Policies,
		func(c *sim.Config) { c.Sec.UseTree = true })
}

// --- Table 2 ----------------------------------------------------------------

// Table2Row is one control point's demonstrated security properties.
type Table2Row struct {
	Policy policy.ControlPoint
	// PreventsFetchLeak: the pointer-conversion exploit failed to disclose
	// the secret through fetch addresses.
	PreventsFetchLeak bool
	// PreciseException: the I/O-port disclosing kernel could not retire its
	// OUT (no unverified instruction changed architectural state).
	PreciseException bool
	// AuthenticatedMemory: tainted data never persisted to external memory.
	AuthenticatedMemory bool
	// AuthenticatedProcessor: same witness as PreciseException (retirement
	// of unverified results).
	AuthenticatedProcessor bool
	// Detected: the tampering raised a security exception at all.
	Detected bool
}

// Table2Policies are the paper's five rows.
var Table2Policies = []policy.ControlPoint{
	policy.ThenIssue,
	policy.ThenWrite,
	policy.ThenCommit,
	policy.CommitPlusFetch,
	policy.CommitPlusObfuscation,
}

// Table2 demonstrates every cell of the characteristics matrix by running
// the exploit suite against each control point. The per-policy exploit runs
// are independent (each builds its own machines), so they fan out across
// goroutines; rows come back in policy order.
func Table2() ([]Table2Row, error) {
	rows := make([]Table2Row, len(Table2Policies))
	errs := make([]error, len(Table2Policies))
	var wg sync.WaitGroup
	for i, pt := range Table2Policies {
		wg.Add(1)
		go func(i int, pt policy.ControlPoint) {
			defer wg.Done()
			pc, err := attack.PointerConversion(pt)
			if err != nil {
				errs[i] = err
				return
			}
			io_, err := attack.IOPortDisclosure(pt)
			if err != nil {
				errs[i] = err
				return
			}
			mt, err := attack.MemoryTaint(pt)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = Table2Row{
				Policy:                 pt,
				PreventsFetchLeak:      !pc.Leaked,
				PreciseException:       !io_.Leaked && io_.Detected,
				AuthenticatedMemory:    !mt.Leaked,
				AuthenticatedProcessor: !io_.Leaked && io_.Detected,
				Detected:               pc.Detected,
			}
		}(i, pt)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderTable2 prints the matrix in the paper's layout.
func RenderTable2(w io.Writer, rows []Table2Row) {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	fmt.Fprintln(w, "Table 2: characteristics comparison (every cell demonstrated by running the exploit suite)")
	fmt.Fprintf(w, "%-30s %12s %10s %10s %10s\n", "", "prevent-leak", "precise-ex", "auth-mem", "auth-proc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %12s %10s %10s %10s\n", r.Policy,
			mark(r.PreventsFetchLeak), mark(r.PreciseException),
			mark(r.AuthenticatedMemory), mark(r.AuthenticatedProcessor))
	}
}
