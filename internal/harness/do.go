package harness

import (
	"context"
	"errors"
	"sync"

	"authpoint/internal/telemetry"
)

// Do runs fn(i) for i in [0, n) on the runner's worker pool, with the same
// fail-fast semantics as RunAll: on the first error the context is
// cancelled, indexes not yet dispatched are skipped, and the returned error
// is deterministically the lowest-index failure (cancellation fallout on
// skipped indexes never wins). With no failures it returns ctx's error, if
// any. The differential fuzzer batches seed checks through this, so a fuzz
// sweep shares the sweep engine's pool sizing and cancellation behaviour.
func (r *Runner) Do(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if r.Meter != nil {
		r.Meter.AddTotal(n)
	}
	workers := r.workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu          sync.Mutex
		firstErr    error
		firstErrIdx = -1
	)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Each worker's context carries its index, so campaign layers can
		// stamp telemetry records with the worker that ran each unit.
		wctx := telemetry.WithWorker(ctx, w)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				err := fn(wctx, idx)
				if r.Meter != nil {
					r.Meter.Tick(1)
				}
				if err == nil {
					continue
				}
				mu.Lock()
				if !errors.Is(err, context.Canceled) && (firstErrIdx < 0 || idx < firstErrIdx) {
					firstErr, firstErrIdx = err, idx
					cancel()
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
