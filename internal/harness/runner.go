package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"authpoint/internal/asm"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/telemetry"
	"authpoint/internal/workload"
)

// Outcome is one cell's result from RunAll.
type Outcome struct {
	Spec        Spec
	Measurement Measurement
	Err         error
	// Wall is the host wall-clock time spent producing this cell. A
	// memoized baseline hit reports only the lookup time.
	Wall time.Duration
	// Index is the cell's position in the RunAll input slice.
	Index int
	// Cached reports that the cell was satisfied from the baseline memo
	// without running a new simulation.
	Cached bool
}

// Progress is delivered to a Runner's OnProgress callback after each cell
// finishes. Callbacks are invoked serially (never concurrently), in
// completion order — which under parallelism is not input order; use
// Outcome.Index to correlate.
type Progress struct {
	Done    int // cells finished so far, including this one
	Total   int
	Outcome Outcome
}

// Runner executes sweep cells on a worker pool. Each cell builds its own
// sim.Machine, so cells are independent; the only state shared between
// workers is the read-only assembled program image (see TestProgramImmutable
// in internal/sim, which pins that NewMachine/Run never mutate it) and the
// Runner's baseline memo.
//
// The zero value is a ready-to-use runner at Parallelism = runtime.NumCPU().
type Runner struct {
	// Parallelism is the worker count; 0 or negative means
	// runtime.NumCPU().
	Parallelism int
	// OnProgress, if set, observes each finished cell. Calls are serial,
	// with Done counts delivered in order. The callback runs under the
	// runner's internal lock: keep it quick and never re-enter the Runner
	// from inside it.
	OnProgress func(Progress)

	// CollectMetrics forces Spec.Metrics on for every cell, so each
	// Outcome's Measurement carries an obs.Snapshot. Memoized baseline
	// cells share one snapshot; use Outcome.Cached to avoid aggregating it
	// twice.
	CollectMetrics bool

	// Ledger, if set, receives one telemetry record per finished RunAll
	// cell. Sequence numbers are reserved in input order before dispatch,
	// so a parallel ledger re-sorted by seq matches a serial one.
	Ledger *telemetry.Ledger
	// Meter, if set, is fed live progress (one tick per finished cell,
	// across both RunAll and Do).
	Meter *telemetry.Meter

	// baselines memoizes decrypt-only baseline measurements keyed on
	// (workload, config with the control point forced to baseline, windows),
	// so a k-policy normalized sweep costs k+1 simulations per workload
	// instead of 2k, and identical configs across experiments share
	// baselines.
	baselines sync.Map // baseKey -> *memoEntry

	baselineSims atomic.Int64
}

// DefaultRunner is the process-wide runner used by the package-level
// helpers; its baseline memo spans every experiment in the process.
var DefaultRunner = &Runner{}

// errNotRun marks cells that were never dispatched; replaced by the context
// error before RunAll returns, so it never escapes.
var errNotRun = errors.New("harness: cell not run")

type baseKey struct {
	w               workload.Workload
	cfg             sim.Config
	warmup, measure uint64
	metrics         bool
}

type memoEntry struct {
	once sync.Once
	m    Measurement
	err  error
}

// workers returns the effective pool size.
func (r *Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.NumCPU()
}

// BaselineSims returns how many baseline simulations this runner has
// actually executed (memo hits excluded) — the observable for the k+1
// measurement guarantee.
func (r *Runner) BaselineSims() int64 { return r.baselineSims.Load() }

// RunAll runs every spec and returns the outcomes in input order, regardless
// of completion order. On the first cell error the context is cancelled:
// cells not yet started are skipped (their Outcome.Err is the context
// error); cells already running finish normally. The returned error is the
// error of the lowest-index failing cell, which is deterministic because
// cells are dispatched in input order. An external ctx cancellation stops
// dispatch the same way.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]Outcome, len(specs))
	for i := range out {
		out[i] = Outcome{Spec: specs[i], Err: errNotRun, Index: i}
	}
	n := r.workers()
	if n > len(specs) {
		n = len(specs)
	}
	if n < 1 {
		n = 1
	}

	// Reserve the whole batch's sequence numbers up front so seq follows
	// input order deterministically, independent of worker interleaving.
	var seqBase uint64
	if r.Ledger != nil {
		seqBase = r.Ledger.ReserveSeq(len(specs))
	}
	if r.Meter != nil {
		r.Meter.AddTotal(len(specs))
	}

	var (
		mu          sync.Mutex
		done        int
		firstErr    error
		firstErrIdx = -1
	)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		worker := i
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				o := r.runOne(ctx, specs[idx])
				o.Index = idx
				if r.Ledger != nil {
					r.Ledger.Emit(benchRecord(seqBase+uint64(idx), worker, o))
				}
				if r.Meter != nil {
					r.Meter.Tick(1)
				}
				mu.Lock()
				out[idx] = o
				done++
				// Cancellation errors on skipped cells are fallout, not the
				// failure itself; only genuine cell errors win fail-fast.
				if o.Err != nil && !errors.Is(o.Err, context.Canceled) &&
					(firstErrIdx < 0 || idx < firstErrIdx) {
					firstErr, firstErrIdx = o.Err, idx
					cancel()
				}
				// Invoked under the runner lock so callbacks are serial and
				// see done counts in order; callbacks must not re-enter the
				// Runner.
				if r.OnProgress != nil {
					r.OnProgress(Progress{Done: done, Total: len(specs), Outcome: o})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for idx := range specs {
		select {
		case idxCh <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	// Cells never dispatched (fail-fast or external cancel) carry the
	// context error so callers can tell them from successes. They still get
	// a ledger record — explicitly marked skipped — so a budget-expired
	// ledger has no silent sequence holes and doubles as a resume checkpoint.
	for i := range out {
		if out[i].Err == errNotRun {
			out[i].Err = ctx.Err()
			if r.Ledger != nil {
				r.Ledger.Emit(benchRecord(seqBase+uint64(i), 0, out[i]))
			}
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}

// benchRecord flattens one RunAll outcome into a ledger record.
func benchRecord(seq uint64, worker int, o Outcome) telemetry.Record {
	rec := telemetry.Record{
		Seq:       seq,
		Kind:      "bench",
		Workload:  o.Spec.Workload.Name,
		Policy:    o.Spec.Config.ControlPoint().String(),
		SimCycles: o.Measurement.Cycles,
		Insts:     o.Measurement.Insts,
		HostNs:    o.Wall.Nanoseconds(),
		Worker:    worker,
		Cached:    o.Cached,
	}
	if o.Err != nil {
		rec.Err = o.Err.Error()
		// A cancellation error means the budget expired before the cell ran —
		// skipped work, not a failing cell.
		if errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded) {
			rec.Verdict = telemetry.VerdictSkipped
		}
	}
	return rec
}

// runOne executes one cell, routing decrypt-only baseline cells through the
// memo.
func (r *Runner) runOne(ctx context.Context, s Spec) Outcome {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Outcome{Spec: s, Err: err}
	}
	if r.CollectMetrics {
		s.Metrics = true
	}
	o := Outcome{Spec: s}
	if s.Config.ControlPoint().IsBaseline() {
		o.Measurement, o.Cached, o.Err = r.baseline(s)
	} else {
		o.Measurement, o.Err = Measure(s)
	}
	o.Wall = time.Since(start)
	return o
}

// baseline returns the memoized decrypt-only measurement for the spec,
// running it at most once per (workload, config, windows) key per Runner.
// The reported cached flag is true when the measurement already existed.
func (r *Runner) baseline(s Spec) (Measurement, bool, error) {
	// Zero both the policy and the deprecated scheme shim so a baseline
	// expressed either way lands on the same memo entry.
	s.Config.Policy = policy.ControlPoint{}
	s.Config.Scheme = sim.SchemeBaseline
	key := baseKey{w: s.Workload, cfg: s.Config, warmup: s.WarmupInsts, measure: s.MeasureInsts,
		metrics: s.Metrics}
	// Normalize defaulted windows so explicit-default and zero specs share
	// an entry (Measure applies the same defaulting).
	if key.warmup == 0 {
		key.warmup = DefaultWarmup
	}
	if key.measure == 0 {
		key.measure = DefaultMeasure
	}
	e, _ := r.baselines.LoadOrStore(key, &memoEntry{})
	ent := e.(*memoEntry)
	ran := false
	ent.once.Do(func() {
		ran = true
		r.baselineSims.Add(1)
		ent.m, ent.err = Measure(s)
	})
	return ent.m, !ran, ent.err
}

// Baseline exposes the memoized decrypt-only measurement for direct callers
// (cmd/, tests) that previously paid a fresh baseline per scheme.
func (r *Runner) Baseline(w workload.Workload, cfg sim.Config, warmup, measure uint64) (Measurement, error) {
	m, _, err := r.baseline(Spec{Workload: w, Config: cfg, WarmupInsts: warmup, MeasureInsts: measure})
	return m, err
}

// NormalizedIPC is the memoized version of the package-level helper: the
// baseline leg comes from the memo, so sweeping k policies over one workload
// costs k+1 measurements, not 2k.
func (r *Runner) NormalizedIPC(w workload.Workload, cfg sim.Config, p policy.ControlPoint, warmup, measure uint64) (float64, error) {
	mb, err := r.Baseline(w, cfg, warmup, measure)
	if err != nil {
		return 0, err
	}
	cfg.Policy = p
	cfg.Scheme = sim.SchemeBaseline
	ms, err := Measure(Spec{Workload: w, Config: cfg, WarmupInsts: warmup, MeasureInsts: measure})
	if err != nil {
		return 0, err
	}
	if mb.IPC == 0 {
		return 0, baselineZeroErr(w.Name)
	}
	return ms.IPC / mb.IPC, nil
}

// --- assembled-image cache -------------------------------------------------

// imageEntry memoizes one source's assembly.
type imageEntry struct {
	once sync.Once
	prog *asm.Program
	err  error
}

// images caches assembled programs by source text, so each of the catalog's
// sources is assembled once per process instead of once per sweep cell. The
// cached *asm.Program is shared read-only across machines — safe because
// sim.NewMachine copies the image into each machine's own memories (pinned
// by TestProgramImmutable in internal/sim).
var images sync.Map // string -> *imageEntry

// assembleCached returns the shared assembled image for src.
func assembleCached(src string) (*asm.Program, error) {
	e, _ := images.LoadOrStore(src, &imageEntry{})
	ent := e.(*imageEntry)
	ent.once.Do(func() { ent.prog, ent.err = asm.Assemble(src) })
	return ent.prog, ent.err
}
