package harness

import (
	"context"
	"testing"

	"authpoint/internal/asm"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// BenchmarkAssemble measures assembling the full 18-kernel catalog from
// source — the cost the per-process image cache pays once instead of once
// per sweep cell.
func BenchmarkAssemble(b *testing.B) {
	all := workload.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range all {
			if _, err := asm.Assemble(w.Source); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(all)), "kernels")
}

// BenchmarkMeasureCell measures one warmup+measure sweep cell end to end
// (assembly amortized through the image cache, as in production sweeps).
func BenchmarkMeasureCell(b *testing.B) {
	w, ok := workload.ByName("swimx")
	if !ok {
		b.Fatal("missing workload")
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeThenCommit
	spec := Spec{Workload: w, Config: cfg, WarmupInsts: 4_000, MeasureInsts: 12_000}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := Measure(spec)
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Result.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// benchSpecs is a 2-workload x (baseline+3 schemes) grid, the shape of one
// figure-sweep slice.
func benchSpecs(b *testing.B) []Spec {
	b.Helper()
	var specs []Spec
	for _, name := range []string{"gapx", "swimx"} {
		w, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("missing workload %s", name)
		}
		for _, scheme := range []sim.Scheme{sim.SchemeBaseline, sim.SchemeThenIssue, sim.SchemeThenCommit, sim.SchemeCommitPlusFetch} {
			cfg := sim.DefaultConfig()
			cfg.Scheme = scheme
			specs = append(specs, Spec{Workload: w, Config: cfg, WarmupInsts: 4_000, MeasureInsts: 12_000})
		}
	}
	return specs
}

func benchSweep(b *testing.B, parallelism int) {
	specs := benchSpecs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh runner each iteration: the baseline memo would otherwise
		// turn iterations 2..N into partial no-ops.
		r := &Runner{Parallelism: parallelism}
		if _, err := r.RunAll(context.Background(), specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs)), "cells")
}

// BenchmarkSweepSerial runs the grid on one worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same grid on a full pool; comparing
// ns/op against BenchmarkSweepSerial gives the host's sweep speedup.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }
