package harness

import (
	"testing"

	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

func TestMeasureBasics(t *testing.T) {
	w, ok := workload.ByName("swimx")
	if !ok {
		t.Fatal("missing workload")
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeThenCommit
	m, err := Measure(Spec{Workload: w, Config: cfg, WarmupInsts: 5_000, MeasureInsts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Insts != 20_000 {
		t.Errorf("measured insts %d want 20000", m.Insts)
	}
	if m.IPC <= 0 || m.IPC > 8 {
		t.Errorf("IPC %v", m.IPC)
	}
	if m.Name != "swimx" || m.Policy != policy.ThenCommit {
		t.Errorf("metadata %q %v", m.Name, m.Policy)
	}
	if m.Cycles == 0 {
		t.Error("no cycles measured")
	}
}

func TestMeasureSkipsInitPhase(t *testing.T) {
	// mcfx declares a build phase; the default warmup must absorb it, so the
	// measured window shows pointer-chase IPC (far below the build phase's).
	w, ok := workload.ByName("mcfx")
	if !ok {
		t.Fatal("missing workload")
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeBaseline
	m, err := Measure(Spec{Workload: w, Config: cfg, WarmupInsts: 5_000, MeasureInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.IPC > 0.5 {
		t.Errorf("mcfx measured IPC %.3f — window landed in the build phase", m.IPC)
	}
}

func TestMeasureDefaults(t *testing.T) {
	w, _ := workload.ByName("gapx")
	cfg := sim.DefaultConfig()
	m, err := Measure(Spec{Workload: w, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if m.Insts != DefaultMeasure {
		t.Errorf("default measure window %d", m.Insts)
	}
}

func TestNormalizedIPC(t *testing.T) {
	w, _ := workload.ByName("lucasx")
	cfg := sim.DefaultConfig()
	n, err := NormalizedIPC(w, cfg, policy.ThenIssue, 5_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n > 1.05 {
		t.Errorf("normalized IPC %.3f out of range", n)
	}
}

func TestMeasureRejectsBrokenWorkload(t *testing.T) {
	w := workload.Workload{Name: "broken", Source: "bogus r1"}
	if _, err := Measure(Spec{Workload: w, Config: sim.DefaultConfig()}); err == nil {
		t.Error("broken workload accepted")
	}
}
