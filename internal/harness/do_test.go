package harness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndex(t *testing.T) {
	r := &Runner{Parallelism: 4}
	var hits [50]int32
	err := r.Do(context.Background(), len(hits), func(ctx context.Context, i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

// The returned error is deterministically the lowest-index failure, no
// matter which worker errors first.
func TestDoLowestErrorWins(t *testing.T) {
	r := &Runner{Parallelism: 4}
	err := r.Do(context.Background(), 32, func(ctx context.Context, i int) error {
		return fmt.Errorf("fail %d", i)
	})
	if err == nil || err.Error() != "fail 0" {
		t.Fatalf("err = %v, want fail 0", err)
	}
}

func TestDoFailFastSkipsRemaining(t *testing.T) {
	r := &Runner{Parallelism: 2}
	var ran int32
	boom := errors.New("boom")
	err := r.Do(context.Background(), 100_000, func(ctx context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 100_000 {
		t.Fatalf("error did not stop the feed: all %d indexes ran", n)
	}
}

func TestDoParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Parallelism: 2}
	err := r.Do(ctx, 10, func(ctx context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
