package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"authpoint/internal/telemetry"
)

// runLedgered sweeps specs on a fresh runner at the given parallelism,
// streaming records into an in-memory ledger, and returns the parsed file.
func runLedgered(t *testing.T, specs []Spec, parallelism int) *telemetry.LedgerFile {
	t.Helper()
	var buf bytes.Buffer
	l := telemetry.NewLedger(&buf)
	if err := l.WriteHeader(telemetry.NewHeader("ledger-test", parallelism)); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Parallelism: parallelism, Ledger: l}
	if _, err := r.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	lf, err := telemetry.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Validate(); err != nil {
		t.Fatal(err)
	}
	return lf
}

// TestLedgerSerialParallelIdentity pins the ledger determinism contract:
// sequence numbers are reserved in input order before dispatch, so a
// parallel campaign's ledger — re-sorted by seq and with the host-dependent
// fields (host_ns, worker) canonicalized away — is byte-identical to a
// serial one.
func TestLedgerSerialParallelIdentity(t *testing.T) {
	specs := smallSpecs(t)
	serial := runLedgered(t, specs, 1)
	parallel := runLedgered(t, specs, 8)

	if len(serial.Records) != len(specs) || len(parallel.Records) != len(specs) {
		t.Fatalf("record counts serial=%d parallel=%d want %d",
			len(serial.Records), len(parallel.Records), len(specs))
	}
	parallel.SortBySeq()
	serial.SortBySeq()

	canon := func(lf *telemetry.LedgerFile) []byte {
		var out bytes.Buffer
		enc := json.NewEncoder(&out)
		for _, r := range lf.Records {
			if err := enc.Encode(r.Canonical()); err != nil {
				t.Fatal(err)
			}
		}
		return out.Bytes()
	}
	sb, pb := canon(serial), canon(parallel)
	if !bytes.Equal(sb, pb) {
		t.Errorf("canonicalized ledgers differ:\nserial:\n%s\nparallel:\n%s", sb, pb)
	}

	// Seq must follow input order, and every record must carry the cell's
	// identity and a real measurement.
	for i, r := range serial.Records {
		if r.Seq != uint64(i) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
		if r.Kind != "bench" || r.Workload != specs[i].Workload.Name {
			t.Errorf("record %d: kind %q workload %q, want bench/%s", i, r.Kind, r.Workload, specs[i].Workload.Name)
		}
		if r.SimCycles == 0 || r.Insts == 0 {
			t.Errorf("record %d carries no measurement: %+v", i, r)
		}
		if r.HostNs <= 0 {
			t.Errorf("record %d has no host cost", i)
		}
	}
}

// TestLedgerRecordsFailures: a failing cell still lands in the ledger with
// its error — the ledger is an account of the campaign, not just its
// successes.
func TestLedgerRecordsFailures(t *testing.T) {
	specs := smallSpecs(t)
	specs[0].Workload.Source = "bogus r1"

	var buf bytes.Buffer
	l := telemetry.NewLedger(&buf)
	if err := l.WriteHeader(telemetry.NewHeader("ledger-fail", 2)); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Parallelism: 2, Ledger: l}
	if _, err := r.RunAll(context.Background(), specs); err == nil {
		t.Fatal("broken cell did not fail the sweep")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	lf, err := telemetry.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lf.SortBySeq()
	if len(lf.Records) == 0 || lf.Records[0].Err == "" {
		t.Fatalf("failing cell's record lost its error: %+v", lf.Records)
	}
}
