package harness

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// smallSpecs builds a baseline+schemes cross product over two kernels with
// short windows — enough cells to exercise the pool without minutes of
// simulation.
func smallSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, name := range []string{"gapx", "lucasx"} {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		for _, scheme := range []sim.Scheme{sim.SchemeBaseline, sim.SchemeThenCommit, sim.SchemeThenIssue} {
			cfg := sim.DefaultConfig()
			cfg.Scheme = scheme
			specs = append(specs, Spec{Workload: w, Config: cfg, WarmupInsts: 4_000, MeasureInsts: 12_000})
		}
	}
	return specs
}

// TestRunAllDeterminism is the golden determinism test: a parallel run must
// produce results identical in every field — cycle counts, stall
// accounting, secure-memory stats — to a serial run. CI executes this under
// -race, which also makes it the concurrent-sweep race test.
func TestRunAllDeterminism(t *testing.T) {
	specs := smallSpecs(t)

	serial := &Runner{Parallelism: 1}
	parallel := &Runner{Parallelism: 8}
	so, err := serial.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	po, err := parallel.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(so) != len(specs) || len(po) != len(specs) {
		t.Fatalf("outcome counts %d/%d want %d", len(so), len(po), len(specs))
	}
	for i := range specs {
		if so[i].Index != i || po[i].Index != i {
			t.Errorf("cell %d: index mismatch serial=%d parallel=%d", i, so[i].Index, po[i].Index)
		}
		if !reflect.DeepEqual(so[i].Measurement, po[i].Measurement) {
			t.Errorf("cell %d (%s/%v): parallel measurement differs from serial:\nserial:   %+v\nparallel: %+v",
				i, specs[i].Workload.Name, specs[i].Config.Scheme,
				so[i].Measurement, po[i].Measurement)
		}
	}
}

// TestRunAllBaselineMemo verifies the k+1 guarantee: one sweep over k
// schemes runs exactly one baseline simulation per workload, and re-running
// the same sweep adds zero.
func TestRunAllBaselineMemo(t *testing.T) {
	specs := smallSpecs(t) // 2 workloads x (baseline + 2 schemes)
	r := &Runner{Parallelism: 4}
	out, err := r.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BaselineSims(); got != 2 {
		t.Errorf("baseline sims after first sweep: %d want 2", got)
	}
	out2, err := r.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BaselineSims(); got != 2 {
		t.Errorf("baseline sims after repeat sweep: %d want 2 (memo missed)", got)
	}
	for i := range specs {
		if specs[i].Config.Scheme != sim.SchemeBaseline {
			continue
		}
		if !out2[i].Cached {
			t.Errorf("cell %d: repeat baseline not served from memo", i)
		}
		if !reflect.DeepEqual(out[i].Measurement, out2[i].Measurement) {
			t.Errorf("cell %d: memoized baseline differs from original", i)
		}
	}
}

// TestNormalizedIPCUsesMemo: after a sweep measured a workload's baseline,
// NormalizedIPC on the same runner must not re-measure it (k+1, not 2k, for
// direct callers too).
func TestNormalizedIPCUsesMemo(t *testing.T) {
	w, _ := workload.ByName("gapx")
	cfg := sim.DefaultConfig()
	r := &Runner{Parallelism: 2}
	if _, err := r.Baseline(w, cfg, 4_000, 12_000); err != nil {
		t.Fatal(err)
	}
	before := r.BaselineSims()
	n1, err := r.NormalizedIPC(w, cfg, policy.ThenCommit, 4_000, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := r.NormalizedIPC(w, cfg, policy.ThenIssue, 4_000, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BaselineSims(); got != before {
		t.Errorf("NormalizedIPC re-ran the baseline: %d sims, want %d", got, before)
	}
	for _, n := range []float64{n1, n2} {
		if n <= 0 || n > 1.05 {
			t.Errorf("normalized IPC %.3f out of range", n)
		}
	}
}

// TestRunAllFailFast: a broken cell cancels the sweep; the returned error is
// the failing cell's, and cells after it are either finished or skipped with
// the context error — never silently zero.
func TestRunAllFailFast(t *testing.T) {
	good, _ := workload.ByName("gapx")
	bad := workload.Workload{Name: "brokenx", Source: "bogus r1"}
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeThenCommit
	var specs []Spec
	specs = append(specs, Spec{Workload: bad, Config: cfg, WarmupInsts: 1_000, MeasureInsts: 1_000})
	for i := 0; i < 6; i++ {
		specs = append(specs, Spec{Workload: good, Config: cfg, WarmupInsts: 4_000, MeasureInsts: 8_000})
	}
	r := &Runner{Parallelism: 2}
	out, err := r.RunAll(context.Background(), specs)
	if err == nil {
		t.Fatal("broken cell did not fail the sweep")
	}
	if out[0].Err == nil {
		t.Error("failing cell lost its error")
	}
	for i := 1; i < len(out); i++ {
		if out[i].Err == nil && out[i].Measurement.Cycles == 0 {
			t.Errorf("cell %d: no error and no measurement", i)
		}
		if out[i].Err != nil && !errors.Is(out[i].Err, context.Canceled) {
			t.Errorf("cell %d: unexpected error %v", i, out[i].Err)
		}
	}
}

// TestRunAllExternalCancel: a pre-cancelled context runs nothing.
func TestRunAllExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Parallelism: 2}
	out, err := r.RunAll(ctx, smallSpecs(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, o := range out {
		if o.Err == nil {
			t.Errorf("cell %d ran despite cancelled context", i)
		}
	}
}

// TestRunAllProgress: the callback sees every cell exactly once, serially,
// with a monotonically increasing done count.
func TestRunAllProgress(t *testing.T) {
	specs := smallSpecs(t)
	var mu sync.Mutex
	seen := map[int]int{}
	lastDone := 0
	r := &Runner{Parallelism: 4, OnProgress: func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		seen[p.Outcome.Index]++
		if p.Done != lastDone+1 {
			t.Errorf("done jumped %d -> %d", lastDone, p.Done)
		}
		lastDone = p.Done
		if p.Total != len(specs) {
			t.Errorf("total %d want %d", p.Total, len(specs))
		}
	}}
	if _, err := r.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if seen[i] != 1 {
			t.Errorf("cell %d observed %d times", i, seen[i])
		}
	}
}

// TestRunAllEmpty: no specs, no outcomes, no error.
func TestRunAllEmpty(t *testing.T) {
	out, err := (&Runner{}).RunAll(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
