// Package harness runs measured simulations: assemble a workload, warm the
// machine up for a committed-instruction window, then measure IPC over a
// second window — the simulation-friendly analogue of the paper's SimPoint
// fast-forward + 400M-instruction methodology.
package harness

import (
	"fmt"

	"authpoint/internal/obs"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
	"authpoint/internal/workload"
)

// Spec describes one measured run.
type Spec struct {
	Workload workload.Workload
	Config   sim.Config
	// WarmupInsts are committed before measurement starts (caches and
	// predictors warm during this window).
	WarmupInsts uint64
	// MeasureInsts is the measured window length.
	MeasureInsts uint64
	// Metrics attaches a metrics hub for the measured window, filling
	// Measurement.Metrics with counters and the auth-latency / decrypt→auth
	// gap / queue-occupancy histograms.
	Metrics bool
}

// DefaultWarmup and DefaultMeasure size the windows so a full figure sweep
// completes in minutes while past the cold-start transient.
const (
	DefaultWarmup  = 30_000
	DefaultMeasure = 120_000
)

// Measurement is the outcome of one run.
type Measurement struct {
	Name string
	// Policy is the resolved control point the cell ran under (the spec's
	// Policy, or its deprecated Scheme translated through the registry).
	Policy policy.ControlPoint
	IPC    float64 // measured-window IPC
	Cycles uint64  // measured-window cycles
	Insts  uint64  // measured-window instructions
	Result sim.Result
	// Metrics is the measured-window observability snapshot (nil unless
	// Spec.Metrics was set).
	Metrics *obs.Snapshot
}

// Measure runs one spec.
func Measure(spec Spec) (Measurement, error) {
	if spec.WarmupInsts == 0 {
		spec.WarmupInsts = DefaultWarmup
	}
	spec.WarmupInsts += spec.Workload.InitInsts
	if spec.MeasureInsts == 0 {
		spec.MeasureInsts = DefaultMeasure
	}
	p, err := assembleCached(spec.Workload.Source)
	if err != nil {
		return Measurement{}, fmt.Errorf("harness: %s: %w", spec.Workload.Name, err)
	}
	cfg := spec.Config
	cfg.MaxInsts = spec.WarmupInsts
	m, err := sim.NewMachine(cfg, p)
	if err != nil {
		return Measurement{}, fmt.Errorf("harness: %s: %w", spec.Workload.Name, err)
	}
	res, err := m.Run()
	if err != nil {
		return Measurement{}, fmt.Errorf("harness: %s warmup: %w", spec.Workload.Name, err)
	}
	if res.Reason != sim.StopMaxInsts {
		return Measurement{}, fmt.Errorf("harness: %s warmup stopped early: %v", spec.Workload.Name, res.Reason)
	}
	warmCycles, warmInsts := res.Cycles, res.Insts

	// The measured window starts with warm caches but cold counters, so
	// reported miss ratios exclude cold-start fills; the metrics hub (when
	// requested) attaches here for the same reason.
	m.MS.ResetCacheStats()
	var hub *obs.Hub
	var perf *obs.Perf
	if spec.Metrics {
		hub = obs.NewHub(nil, true)
		m.SetObserver(hub)
		// Perf counters start here too, so fastpath.* counters cover the
		// measured window only, like every other metric.
		perf = m.EnablePerf()
	}

	m.Cfg.MaxInsts = spec.WarmupInsts + spec.MeasureInsts
	res, err = m.Run()
	if err != nil {
		return Measurement{}, fmt.Errorf("harness: %s measure: %w", spec.Workload.Name, err)
	}
	if res.Reason != sim.StopMaxInsts {
		return Measurement{}, fmt.Errorf("harness: %s measure stopped early: %v", spec.Workload.Name, res.Reason)
	}
	mc := res.Cycles - warmCycles
	mi := res.Insts - warmInsts
	out := Measurement{
		Name:   spec.Workload.Name,
		Policy: spec.Config.ControlPoint(),
		Cycles: mc,
		Insts:  mi,
		Result: res,
	}
	if mc > 0 {
		out.IPC = float64(mi) / float64(mc)
	}
	if hub != nil {
		out.Metrics = hub.Snapshot()
		perf.AddTo(out.Metrics)
	}
	return out, nil
}

// NormalizedIPC runs a workload under a control point and under the baseline
// with the same machine configuration, returning IPC(policy)/IPC(baseline) —
// the paper's normalized-IPC metric (Figure 7 and friends). The baseline leg
// is memoized on DefaultRunner, so calling this for k policies performs k+1
// simulations, not 2k.
func NormalizedIPC(w workload.Workload, cfg sim.Config, p policy.ControlPoint, warmup, measure uint64) (float64, error) {
	return DefaultRunner.NormalizedIPC(w, cfg, p, warmup, measure)
}

func baselineZeroErr(name string) error {
	return fmt.Errorf("harness: %s baseline IPC is zero", name)
}
