package attack

import (
	"testing"

	"authpoint/internal/policy"
)

// §3.1: the natural-execution fetch trace reveals secret-dependent control
// flow under EVERY authentication scheme — only address obfuscation closes
// this channel. (Authentication answers tampering, not observation.)
func TestPassiveControlFlow(t *testing.T) {
	for _, c := range []struct {
		scheme   policy.ControlPoint
		wantLeak bool
	}{
		{policy.Baseline, true},
		{policy.ThenIssue, true},
		{policy.ThenCommit, true},
		{policy.CommitPlusFetch, true},
		{policy.CommitPlusObfuscation, false},
	} {
		out, err := PassiveControlFlow(c.scheme)
		if err != nil {
			t.Fatalf("%v: %v", c.scheme, err)
		}
		if out.Leaked != c.wantLeak {
			t.Errorf("%v: leaked=%v (recovered %#x from %d arm visits) want %v",
				c.scheme, out.Leaked, out.Recovered, len(out.RecoveredBits), c.wantLeak)
		}
	}
}
