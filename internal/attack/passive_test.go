package attack

import (
	"testing"

	"authpoint/internal/sim"
)

// §3.1: the natural-execution fetch trace reveals secret-dependent control
// flow under EVERY authentication scheme — only address obfuscation closes
// this channel. (Authentication answers tampering, not observation.)
func TestPassiveControlFlow(t *testing.T) {
	for _, c := range []struct {
		scheme   sim.Scheme
		wantLeak bool
	}{
		{sim.SchemeBaseline, true},
		{sim.SchemeThenIssue, true},
		{sim.SchemeThenCommit, true},
		{sim.SchemeCommitPlusFetch, true},
		{sim.SchemeCommitPlusObfuscation, false},
	} {
		out, err := PassiveControlFlow(c.scheme)
		if err != nil {
			t.Fatalf("%v: %v", c.scheme, err)
		}
		if out.Leaked != c.wantLeak {
			t.Errorf("%v: leaked=%v (recovered %#x from %d arm visits) want %v",
				c.scheme, out.Leaked, out.Recovered, len(out.RecoveredBits), c.wantLeak)
		}
	}
}
