package attack

import (
	"fmt"
	"strings"

	"authpoint/internal/asm"
	"authpoint/internal/bus"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// PassiveOutcome reports the §3.1 natural-execution attack: no tampering at
// all — the adversary just watches the fetch addresses a normal run emits
// and reconstructs secret-dependent control flow.
type PassiveOutcome struct {
	Policy policy.ControlPoint
	// RecoveredBits are the branch outcomes read off the bus trace, MSB
	// first.
	RecoveredBits []bool
	Recovered     uint64
	Leaked        bool
	Runs          int
}

// passiveVictimBits is the width of the secret the victim processes
// bit-serially.
const passiveVictimBits = 8

// passiveSecret is the secret the passive victim leaks bit by bit.
const passiveSecret = 0xA7

// passiveVictim processes a secret bit-serially with secret-dependent
// control flow — the shape of square-and-multiply exponentiation or
// table-driven cipher rounds. The bit loop is fully unrolled so each bit has
// its own branch (no predictor history to confound the trace) and each
// taken-arm lives in its own instruction line behind a nop moat longer than
// the speculative fetch depth: its line appears on the bus if and only if
// the bit is set.
func passiveVictim(secret uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
_start:
	la   r1, secretp
	ld   r2, 0(r1)       ; the secret (authentic, untampered)
`)
	for k := passiveVictimBits - 1; k >= 0; k-- {
		fmt.Fprintf(&b, `
bit_%d:
	srli r4, r2, %d
	andi r4, r4, 1
	bne  r4, r0, one_%d
	addi r5, r5, 1       ; bit-clear arm (inline fall-through)
	b    next_%d
%s
one_%d:
	addi r6, r6, 1       ; bit-set arm: fetching this line IS the leak
	b    next_%d
%s
next_%d:
	nop
`, k, k, k, k, nops(300), k, k, nops(300), k)
	}
	fmt.Fprintf(&b, "\thalt\n.data\nsecretp: .word %d\n", secret)
	return b.String()
}

// PassiveControlFlow runs the natural-execution side channel of §3.1: the
// victim is NEVER tampered with; the adversary reconstructs its secret from
// which instruction lines appear on the bus. Authentication gates cannot
// help — nothing fails verification; address obfuscation is the defence the
// paper pairs against this channel (§4.3).
func PassiveControlFlow(pt policy.ControlPoint) (PassiveOutcome, error) {
	const secret = passiveSecret
	p, err := asm.Assemble(passiveVictim(secret))
	if err != nil {
		return PassiveOutcome{}, err
	}
	cfg := attackConfig(pt)
	m, err := sim.NewMachine(cfg, p)
	if err != nil {
		return PassiveOutcome{}, err
	}
	res, err := m.Run()
	if err != nil {
		return PassiveOutcome{}, err
	}
	out := PassiveOutcome{Policy: pt, Runs: 1}
	if res.Reason != sim.StopHalt {
		return out, fmt.Errorf("passive victim stopped with %v", res.Reason)
	}

	// The adversary knows the victim binary layout (firmware images are not
	// secret; only the data is): bit k is set iff one_k's line was fetched.
	seen := map[uint64]bool{}
	for _, e := range m.Bus.Trace() {
		if e.Kind == bus.ReadLine {
			seen[e.Addr] = true
		}
	}
	v := uint64(0)
	for k := passiveVictimBits - 1; k >= 0; k-- {
		line := m.Prog.Symbols[fmt.Sprintf("one_%d", k)] &^ 63
		bit := seen[line]
		out.RecoveredBits = append(out.RecoveredBits, bit)
		v <<= 1
		if bit {
			v |= 1
		}
	}
	out.Recovered = v
	out.Leaked = v == secret
	return out, nil
}
