// Package attack implements the paper's memory-fetch side-channel exploits
// (Section 3) against the simulated secure processor, end to end: the
// adversary flips bits in real ciphertext at rest, the machine really
// decrypts and speculatively executes the result, and the exploit succeeds
// or fails depending on the authentication control point — reproducing the
// security half of Table 2.
//
// Implemented exploits:
//
//   - Pointer conversion / linked-list attack (§3.2.1): convert a list's
//     NULL terminator into a pointer at a secret, so the walk dereferences
//     the secret and its value appears as a fetch address.
//   - Binary search (§3.2.2): tamper a known-zero comparison constant into
//     powers of two and observe the control flow via instruction-fetch
//     addresses; log2(bits) trials recover the secret exactly.
//   - Disclosing kernel with shift window (§3.2.3 + §3.3.1): inject a short
//     code sequence over the victim's (predictable) prologue via ciphertext
//     XOR; each run discloses a 6-bit window of the secret through the
//     page-offset bits of a probe fetch (6 bits because the bus reveals
//     64-byte line addresses).
//   - I/O-port disclosing kernel (§3.2.3): the injected kernel OUTs the
//     secret to a port instead; this is stopped by authen-then-commit but
//     not by authen-then-write.
//   - Brute-force page tampering (§3.3.2): randomly retarget a pointer's
//     page bits; mapped guesses leak via the bus, unmapped ones land in the
//     fault log.
package attack

import (
	"fmt"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
	"authpoint/internal/policy"
	"authpoint/internal/sim"
)

// ProbeBase is the attacker-controlled mapped window that secret-derived
// fetches land in (the adversary arranges valid translations per §3.3).
const ProbeBase = 0x2000_0000

// ProbeSize is the probe window size.
const ProbeSize = 1 << 20

// Outcome reports one exploit attempt.
type Outcome struct {
	Policy policy.ControlPoint
	// Leaked reports whether the secret (or part of it) reached the
	// adversary through the targeted channel.
	Leaked bool
	// Recovered is the secret value reconstructed from the channel.
	Recovered uint64
	// RecoveredBits is how many low bits of Recovered are meaningful.
	RecoveredBits int
	// Detected reports whether the machine raised a security exception.
	Detected bool
	// Runs is the number of victim executions the attack used.
	Runs int
}

func (o Outcome) String() string {
	return fmt.Sprintf("%v: leaked=%v recovered=%#x/%dbits detected=%v runs=%d",
		o.Policy, o.Leaked, o.Recovered, o.RecoveredBits, o.Detected, o.Runs)
}

// attackConfig builds the machine configuration used by all exploits.
func attackConfig(pt policy.ControlPoint) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Policy = pt
	cfg.TraceBus = true
	cfg.WatchdogCycles = 200_000
	return cfg
}

// newVictim assembles src and builds a machine with the probe window mapped.
func newVictim(pt policy.ControlPoint, src string) (*sim.Machine, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return sim.NewMachineWithRegions(attackConfig(pt), p, []sim.Region{{Start: ProbeBase, Size: ProbeSize}})
}

// probeLines extracts the probe-window line addresses the adversary saw on
// the bus before the machine stopped.
func probeLines(m *sim.Machine, res sim.Result) []uint64 {
	return m.ReadLineAddrsInBefore(ProbeBase, ProbeBase+ProbeSize, sim.StopCycle(res))
}

// PointerConversion runs the linked-list attack of §3.2.1. The victim walks
// a three-node list; the secret is an address-like value (e.g. a session
// pointer) stored elsewhere in its data. The adversary converts the NULL
// terminator into a pointer at the secret; the walk then dereferences the
// secret, disclosing it as a fetch address (to line granularity).
func PointerConversion(pt policy.ControlPoint) (Outcome, error) {
	const secret = pointerConversionSecret // the value the adversary is after
	m, err := newVictim(pt, pointerConversionSrc())
	if err != nil {
		return Outcome{}, err
	}
	// The adversary knows (or forces, §3.2.1) where the list ends and where
	// the secret lives. Counter-mode malleability: XOR old^new plaintext
	// into the ciphertext.
	nullAddr := m.Prog.Symbols["node2"]
	secretAddr := m.Prog.Symbols["secret"]
	xorU64(m, nullAddr, 0, secretAddr)
	res, _ := m.Run()
	out := Outcome{Policy: pt, Detected: res.Reason == sim.StopSecurityFault, Runs: 1}
	wantLine := uint64(secret) &^ 63
	for _, a := range probeLines(m, res) {
		if a == wantLine {
			out.Leaked = true
			out.Recovered = a
			out.RecoveredBits = 64 - 6 // line granularity
		}
	}
	return out, nil
}

// xorU64 flips the ciphertext at addr from oldVal to newVal.
func xorU64(m *sim.Machine, addr uint64, oldVal, newVal uint64) {
	mask := make([]byte, 8)
	for i := 0; i < 8; i++ {
		mask[i] = byte(oldVal>>(8*i)) ^ byte(newVal>>(8*i))
	}
	m.Memory.XorRange(addr, mask)
}

// BinarySearch runs the §3.2.2 exploit: the victim compares a 16-bit secret
// against a constant whose plaintext the adversary knows (zero — "constant
// zero is frequently used for testing"). Each trial tampers the constant to
// a chosen value and observes the branch direction through the
// instruction-fetch side channel. 16 trials recover the secret exactly.
func BinarySearch(pt policy.ControlPoint) (Outcome, error) {
	const secret = binarySearchSecret
	src := binarySearchSrc()
	recovered := uint64(0)
	runs := 0
	detectedAll := true
	leakedAny := false
	for bit := 15; bit >= 0; bit-- {
		m, err := newVictim(pt, src)
		if err != nil {
			return Outcome{}, err
		}
		guess := recovered | 1<<uint(bit)
		xorU64(m, m.Prog.Symbols["constp"], 0, guess)
		res, _ := m.Run()
		runs++
		if res.Reason != sim.StopSecurityFault {
			detectedAll = false
		}
		belowLine := m.Prog.Symbols["below"] &^ 63
		takenSeen := false
		for _, a := range m.ReadLineAddrsBefore(sim.StopCycle(res)) {
			if a == belowLine {
				takenSeen = true
			}
		}
		if takenSeen {
			leakedAny = true
		}
		// blt secret, guess taken  <=>  secret < guess  <=>  bit not set.
		if !takenSeen {
			recovered |= 1 << uint(bit)
		}
	}
	out := Outcome{Policy: pt, Runs: runs, Detected: detectedAll}
	// The attack "leaks" when the observed control flow actually tracked
	// the comparisons; if nothing ever leaked, recovered degenerates to all
	// ones (every trial looked not-taken).
	out.Leaked = leakedAny && recovered == secret
	if out.Leaked {
		out.Recovered = recovered
		out.RecoveredBits = 16
	}
	return out, nil
}

func nops(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "\tnop\n"
	}
	return s
}

// victimWithPrologue is the injection target: a program whose first 10
// instructions are a predictable function prologue ("compiler always does
// code generation in a predictable way", §3.2.3), with a 64-bit secret at a
// known data offset.
const victimSecret = 0xdeadbeefcafebabe

func victimWithPrologue() string {
	// Entry: touch the secret and spin long enough that its line is cached
	// and verified before f is called (the victim used its secret earlier in
	// its run, as real programs do). The nop pad exceeds the fetch queue so
	// wrong-path fall-through fetch cannot reach f's line before the loop
	// branch redirects; its length also 64-byte-aligns f so the injected
	// kernel occupies exactly one L2 line.
	return fmt.Sprintf(`
	_start:
		la   r1, secret
		ld   r2, 0(r1)       ; victim uses its secret: cached and verified
		li   r3, 1000
	warm:
		addi r3, r3, -1
		bne  r3, r0, warm
		%s
		call f
		halt
		nop
		nop
		nop
		nop
		nop
		nop
		nop
	; f's prologue: a predictable 10-instruction sequence in its own I-line —
	; the injection target.
	f:
		addi sp, sp, -32
		sd   ra, 0(sp)
		sd   r1, 8(sp)
		sd   r2, 16(sp)
		addi r3, r0, 0
		addi r4, r0, 0
		addi r5, r0, 0
		addi r6, r0, 0
		addi r7, r0, 0
		addi r8, r0, 0
		ld   ra, 0(sp)
		addi sp, sp, 32
		ret
	.data
	secret: .word %d
	`, nops(400), uint64(victimSecret))
}

// prologueIndex returns the instruction index of label f in the victim.
func prologueIndex(m *sim.Machine) int {
	return int((m.Prog.Symbols["f"] - m.Prog.TextBase) / isa.InstBytes)
}

// kernelWords assembles a standalone instruction sequence at the victim's
// text base and returns the encoded words.
func kernelWords(src string) ([]uint32, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return p.Text, nil
}

// injectKernel XORs the disclosing kernel over the victim's prologue in
// ciphertext: kernel ^ oldPlaintext applied to the encrypted text — exactly
// the two-XOR construction of §3.2.3.
func injectKernel(m *sim.Machine, at int, kernel []uint32) error {
	old := m.Prog.Text
	if at+len(kernel) > len(old) {
		return fmt.Errorf("attack: kernel (%d words at %d) exceeds victim text (%d)", len(kernel), at, len(old))
	}
	for i, kw := range kernel {
		mask := make([]byte, 4)
		ow := old[at+i]
		for b := 0; b < 4; b++ {
			mask[b] = byte(ow>>(8*b)) ^ byte(kw>>(8*b))
		}
		m.Memory.XorRange(m.Prog.TextBase+uint64(at+i)*isa.InstBytes, mask)
	}
	return nil
}

// DisclosingKernel runs the §3.2.3 code-injection attack with the §3.3.1
// shift window. Each run injects a kernel that loads the secret, shifts it
// by 6*k, and issues one probe load whose line address carries 6 bits of
// the secret. Eleven runs reassemble all 64 bits.
func DisclosingKernel(pt policy.ControlPoint) (Outcome, error) {
	const windowBits = 6 // bus trace is line-granular: 64B => 6 usable bits
	recovered := uint64(0)
	runs := 0
	detectedAll := true
	leakedWindows := 0
	nWindows := (64 + windowBits - 1) / windowBits
	for k := 0; k < nWindows; k++ {
		m, err := newVictim(pt, victimWithPrologue())
		if err != nil {
			return Outcome{}, err
		}
		kernel, err := kernelWords(shiftWindowKernelSrc(m.Prog.DataBase, k*windowBits))
		if err != nil {
			return Outcome{}, err
		}
		if err := injectKernel(m, prologueIndex(m), kernel); err != nil {
			return Outcome{}, err
		}
		res, _ := m.Run()
		runs++
		if res.Reason != sim.StopSecurityFault {
			detectedAll = false
		}
		for _, a := range probeLines(m, res) {
			window := (a - ProbeBase) >> 6 & 0x3f
			recovered |= window << uint(k*windowBits)
			leakedWindows++
			break
		}
	}
	out := Outcome{Policy: pt, Runs: runs, Detected: detectedAll}
	if leakedWindows == nWindows && recovered == victimSecret {
		out.Leaked = true
		out.Recovered = recovered
		out.RecoveredBits = 64
	}
	return out, nil
}

// IOPortDisclosure runs the I/O variant of the disclosing kernel (§3.2.3):
// the injected code OUTs the secret to a port. OUT is architectural state,
// performed only at commit — so authen-then-commit suffices to stop it,
// while authen-then-write does not (the paper's distinction between the two
// exploit sinks).
func IOPortDisclosure(pt policy.ControlPoint) (Outcome, error) {
	m, err := newVictim(pt, victimWithPrologue())
	if err != nil {
		return Outcome{}, err
	}
	kernel, err := kernelWords(ioKernelSrc(asm.DefaultDataBase))
	if err != nil {
		return Outcome{}, err
	}
	if err := injectKernel(m, prologueIndex(m), kernel); err != nil {
		return Outcome{}, err
	}
	res, _ := m.Run()
	out := Outcome{Policy: pt, Runs: 1, Detected: res.Reason == sim.StopSecurityFault}
	for _, e := range m.Core.OutLog() {
		if e.Port == 0x80 && e.Val == victimSecret {
			out.Leaked = true
			out.Recovered = e.Val
			out.RecoveredBits = 64
		}
	}
	return out, nil
}

// BruteForcePage runs §3.3.2: the adversary cannot find a valid page for
// the converted pointer, so it flips page-address bits at random. Mapped
// guesses disclose through the bus; unmapped ones fault (and the faulting
// address lands in the OS log — itself a channel). Returns how many of the
// trials leaked and how many logged faults.
func BruteForcePage(pt policy.ControlPoint, trials int) (leaks, faults int, err error) {
	src := bruteForcePageSrc
	rng := uint64(42)
	for i := 0; i < trials; i++ {
		m, e := newVictim(pt, src)
		if e != nil {
			return 0, 0, e
		}
		rng = rng*6364136223846793005 + 1442695040888963407
		// Random page within a 32MB suspect region around the probe window
		// (the adversary exploits "frequent or predictable values", §3.3.2:
		// candidate pointers cluster near real mappings). Mapped pages are
		// 1MB of 32MB: ~1 leak per 32 trials.
		guess := ProbeBase + (rng>>16)%(1<<25)&^0xfff | 0x440
		xorU64(m, m.Prog.Symbols["ptr"], 0x1000, guess)
		res, _ := m.Run()
		for _, a := range m.ReadLineAddrsBefore(sim.StopCycle(res)) {
			if a == guess&^63 {
				leaks++
				break
			}
		}
		if len(m.Space.FaultLog()) > 0 {
			faults++
		}
	}
	return leaks, faults, nil
}

// MemoryTaint checks Table 2's "authenticated memory state" property: the
// victim loads a (tampered) value, stores a derived result, then streams
// enough data to evict the dirty line to external memory. If the derived
// value can be decrypted out of external memory afterwards, unauthenticated
// data contaminated the persistent memory state.
func MemoryTaint(pt policy.ControlPoint) (Outcome, error) {
	m, err := newVictim(pt, memoryTaintSrc)
	if err != nil {
		return Outcome{}, err
	}
	xorU64(m, m.Prog.Symbols["input"], 7, 0x4141)
	res, _ := m.Run()
	out := Outcome{Policy: pt, Runs: 1, Detected: res.Reason == sim.StopSecurityFault}
	ext, err := m.Ctrl.ReadPlain(m.Prog.Symbols["sink"], 8)
	if err != nil {
		return Outcome{}, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(ext[i]) << (8 * i)
	}
	if v == 0x4142 { // tainted derived value persisted externally
		out.Leaked = true
		out.Recovered = v
		out.RecoveredBits = 64
	}
	return out, nil
}
