package attack

import (
	"testing"

	"authpoint/internal/policy"
)

// The security half of Table 2: which schemes stop the active fetch-address
// side channel.
func TestPointerConversionMatrix(t *testing.T) {
	cases := []struct {
		scheme       policy.ControlPoint
		wantLeak     bool
		wantDetected bool
	}{
		{policy.Baseline, true, false},
		{policy.ThenWrite, true, true},
		{policy.ThenCommit, true, true},
		{policy.ThenIssue, false, true},
		{policy.CommitPlusFetch, false, true},
	}
	for _, c := range cases {
		out, err := PointerConversion(c.scheme)
		if err != nil {
			t.Fatalf("%v: %v", c.scheme, err)
		}
		if out.Leaked != c.wantLeak {
			t.Errorf("pointer conversion %v: leaked=%v want %v", c.scheme, out.Leaked, c.wantLeak)
		}
		if out.Detected != c.wantDetected {
			t.Errorf("pointer conversion %v: detected=%v want %v", c.scheme, out.Detected, c.wantDetected)
		}
		if c.wantLeak && out.RecoveredBits == 0 {
			t.Errorf("%v: leak without recovered bits", c.scheme)
		}
	}
}

func TestBinarySearchRecoversSecret(t *testing.T) {
	out, err := BinarySearch(policy.ThenCommit)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked || out.Recovered != 0xBEE5 {
		t.Fatalf("then-commit: %v", out)
	}
	if out.Runs != 16 {
		t.Errorf("binary search used %d runs, the log2 bound is 16", out.Runs)
	}
	if !out.Detected {
		t.Error("tampering went undetected")
	}
}

func TestBinarySearchBlockedByThenIssue(t *testing.T) {
	for _, scheme := range []policy.ControlPoint{policy.ThenIssue, policy.CommitPlusFetch} {
		out, err := BinarySearch(scheme)
		if err != nil {
			t.Fatal(err)
		}
		if out.Leaked {
			t.Errorf("%v: binary search leaked: %v", scheme, out)
		}
		if !out.Detected {
			t.Errorf("%v: tampering undetected", scheme)
		}
	}
}

func TestDisclosingKernelShiftWindow(t *testing.T) {
	out, err := DisclosingKernel(policy.ThenCommit)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked || out.Recovered != uint64(victimSecret) {
		t.Fatalf("then-commit: %v (want full 64-bit recovery)", out)
	}
	if !out.Detected {
		t.Error("code injection went undetected")
	}
}

func TestDisclosingKernelBlocked(t *testing.T) {
	for _, scheme := range []policy.ControlPoint{policy.ThenIssue, policy.CommitPlusFetch} {
		out, err := DisclosingKernel(scheme)
		if err != nil {
			t.Fatal(err)
		}
		if out.Leaked {
			t.Errorf("%v: disclosing kernel leaked: %v", scheme, out)
		}
	}
}

func TestDisclosingKernelOnBaseline(t *testing.T) {
	out, err := DisclosingKernel(policy.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatalf("baseline should leak everything: %v", out)
	}
	if out.Detected {
		t.Error("baseline has no verification to detect anything")
	}
}

// §3.2.3's closing observation: output to an I/O channel waits for commit,
// so authen-then-commit stops it — while authen-then-write does not. This is
// the witness for Table 2's "precise exception" and "authenticated processor
// state" columns.
func TestIOPortDisclosureMatrix(t *testing.T) {
	cases := []struct {
		scheme   policy.ControlPoint
		wantLeak bool
	}{
		{policy.Baseline, true},
		{policy.ThenWrite, true},
		{policy.ThenCommit, false},
		{policy.ThenIssue, false},
		{policy.CommitPlusFetch, false},
	}
	for _, c := range cases {
		out, err := IOPortDisclosure(c.scheme)
		if err != nil {
			t.Fatalf("%v: %v", c.scheme, err)
		}
		if out.Leaked != c.wantLeak {
			t.Errorf("I/O disclosure %v: leaked=%v want %v", c.scheme, out.Leaked, c.wantLeak)
		}
	}
}

func TestBruteForcePageStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	leaks, faults, err := BruteForcePage(policy.ThenCommit, 80)
	if err != nil {
		t.Fatal(err)
	}
	// 1MB mapped of a 64MB suspect region: expect on the order of 1-2 hits
	// in 80 trials; allow a broad band to keep the test robust.
	if leaks == 0 {
		t.Error("no leaks in 80 trials (expected ~1-2)")
	}
	if leaks > 20 {
		t.Errorf("implausibly many leaks: %d", leaks)
	}
	// Unmapped guesses must never have reached the bus, and under
	// then-commit the precise exception never retires the faulting load,
	// so the OS fault log stays empty.
	if faults != 0 {
		t.Errorf("then-commit logged %d faults before the security exception", faults)
	}
}

func TestBruteForceFaultLogUnderBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	_, faults, err := BruteForcePage(policy.Baseline, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Without verification, wild dereferences retire and fault: the logged
	// (displayed) address is itself the §3.3 disclosure channel.
	if faults == 0 {
		t.Error("baseline never logged a fault address")
	}
}

func TestObfuscationHidesPointerConversion(t *testing.T) {
	out, err := PointerConversion(policy.CommitPlusObfuscation)
	if err != nil {
		t.Fatal(err)
	}
	// The dereference still reaches the bus, but at a remapped slot: the
	// adversary cannot equate the observed address with the secret.
	if out.Leaked {
		t.Errorf("obfuscation: %v", out)
	}
	if !out.Detected {
		t.Error("tampering undetected under obfuscation+commit")
	}
}

// Table 2's "authenticated memory state": every verification scheme keeps
// tainted data out of external memory; the baseline does not.
func TestMemoryTaintMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cases := []struct {
		scheme    policy.ControlPoint
		wantTaint bool
	}{
		{policy.Baseline, true},
		{policy.ThenWrite, false},
		{policy.ThenCommit, false},
		{policy.ThenIssue, false},
		{policy.CommitPlusFetch, false},
	}
	for _, c := range cases {
		out, err := MemoryTaint(c.scheme)
		if err != nil {
			t.Fatalf("%v: %v", c.scheme, err)
		}
		if out.Leaked != c.wantTaint {
			t.Errorf("memory taint %v: tainted=%v want %v", c.scheme, out.Leaked, c.wantTaint)
		}
	}
}
