package attack

import (
	"fmt"

	"authpoint/internal/asm"
	"authpoint/internal/cryptoengine/pacmac"
)

// PAC attack kernels: the three ways an adversary engages the pointer-
// authentication dimension. Like the memory-integrity kernels, each is the
// *effective* program after the adversary's manipulation lands; the secret-
// carrying pointer word sits under the symbol "sptr" so the two-run
// contract checker varies it directly.
//
//   - pac-pointer-substitution: the victim's signed pointer is replaced with
//     one signed under a different context (modifier). Without PAC the auth
//     strips through and the secret-derived dereference reaches the bus;
//     under either failure mode the mismatched tag is caught before the bus.
//   - pac-auth-use-race: the same substitution, but older long-latency ops
//     delay the failing auth's commit, so its (stripped) result is broadcast
//     to a dependent load that can reach the bus speculatively. FPAC-style
//     fault-at-auth loses this race; poisoning wins it, because the poisoned
//     address is rejected before any bus traffic.
//   - pac-signing-gadget: the adversary routes an arbitrary pointer through
//     the victim's own sign instruction, so the later auth succeeds. PAC is
//     defeated under every mode — the leak is licensed everywhere.

// pacVictimModifier is the context modifier the victim authenticates with.
const pacVictimModifier = 13

// pacForeignModifier is the other signing context the substituted pointer
// was legitimately signed under.
const pacForeignModifier = 99

// pacAttackTarget is the secret-derived address the adversary wants on the
// bus; like pointerConversionSecret it lands in the probe window.
const pacAttackTarget = ProbeBase + 0x4440

const pacSubstitutionSrc = `
	_start:
		la    r1, sptr
		ld    r2, 0(r1)      ; substituted pointer (signed for a foreign context)
		li    r3, 13
		autha r4, r2, r3     ; victim authenticates before use
		ld    r5, 0(r4)      ; dereference
		halt
	.data
	sptr:   .word 0          ; filled at build with the cross-context pointer
	`

// pacRaceSrc widens the window between the failing auth's writeback and its
// commit: a chain of four dependent fdivs older than the auth holds the ROB
// head for ~4x FPDivLat cycles, while the auth executes in PACLat cycles and
// broadcasts its stripped result to the dependent load. The load's line fill
// reaches the bus well before the fault can retire.
const pacRaceSrc = `
	_start:
		la     r1, sptr
		ld     r2, 0(r1)     ; substituted pointer (signed for a foreign context)
		li     r3, 13
		fcvtif f1, r2        ; chain anchored to the loaded value so the
		fdiv   f2, f1, f1    ; divides cannot retire during the load's miss:
		fdiv   f2, f2, f1    ; ~4x FPDivLat of older work at the ROB head
		fdiv   f2, f2, f1
		fdiv   f2, f2, f1
		autha  r4, r2, r3    ; fails; result still broadcast out-of-order
		ld     r5, 0(r4)     ; issues speculatively under the pending fault
		halt
	.data
	sptr:   .word 0          ; filled at build with the cross-context pointer
	`

const pacSigningGadgetSrc = `
	_start:
		la    r1, sptr
		ld    r2, 0(r1)      ; attacker-chosen raw pointer
		li    r3, 13
		signa r4, r2, r3     ; the victim's signing gadget, reused
		autha r5, r4, r3     ; passes: the gadget signed the forged pointer
		ld    r6, 0(r5)
		halt
	.data
	sptr:   .word 0          ; filled at build with the raw forged pointer
	`

// PACKernelSources exposes the PAC kernel sources by kernel name, for corpus
// recordings that pin the kernels by exact source text (the sptr word is the
// secret range the contract checker varies, so the build-time patch is
// irrelevant to a recording).
func PACKernelSources() map[string]string {
	return map[string]string{
		"pac-pointer-substitution": pacSubstitutionSrc,
		"pac-auth-use-race":        pacRaceSrc,
		"pac-signing-gadget":       pacSigningGadgetSrc,
	}
}

// buildPACKernel assembles one PAC kernel source and patches sptr with the
// adversary's pointer word.
func buildPACKernel(src string, word uint64) (*asm.Program, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	addr, ok := p.Symbols["sptr"]
	if !ok {
		return nil, fmt.Errorf("attack: pac kernel has no sptr symbol")
	}
	return p, patchDataWord(p, addr, word)
}

// pacKernels returns the three PAC exploit kernels. The substitution and
// race kernels carry a pointer legitimately signed under a foreign modifier
// (the canonical cross-context substitution), so its tag never matches the
// victim's context; the gadget kernel carries a raw pointer that the
// victim's own sign instruction legitimizes.
func pacKernels() ([]Kernel, error) {
	suite := pacmac.DefaultSuite()
	foreign := suite.Sign(pacAttackTarget, pacForeignModifier, false)

	var out []Kernel
	for _, k := range []struct {
		name string
		src  string
		word uint64
	}{
		{"pac-pointer-substitution", pacSubstitutionSrc, foreign},
		{"pac-auth-use-race", pacRaceSrc, foreign},
		{"pac-signing-gadget", pacSigningGadgetSrc, pacAttackTarget},
	} {
		p, err := buildPACKernel(k.src, k.word)
		if err != nil {
			return nil, fmt.Errorf("attack: kernel %s: %w", k.name, err)
		}
		out = append(out, Kernel{Name: k.name, Prog: p, Channel: "addr", NeedsProbe: true})
	}
	return out, nil
}
