package attack

import (
	"fmt"

	"authpoint/internal/asm"
	"authpoint/internal/isa"
)

// This file holds the exploit program sources shared between the dynamic
// attacks and Kernels(), which exports each exploit's *effective* program:
// the plaintext the core actually executes after the ciphertext tampering
// lands. Under counter-mode malleability XORing old^new into the ciphertext
// yields exactly the new plaintext, so patching the assembled image is
// bit-identical to what a tampered SchemeBaseline run decrypts and executes.
// Static analysis (internal/analysis) lints these programs, and the
// differential tests cross-check its findings against the bus traces of real
// runs.

// pointerConversionSecret is the address-like value the §3.2.1 adversary is
// after; it lands in the probe window so its disclosure is observable.
const pointerConversionSecret = ProbeBase + 0x4440

// binarySearchSecret is the 16-bit secret of the §3.2.2 exploit.
const binarySearchSecret = 0xBEE5

func pointerConversionSrc() string {
	return fmt.Sprintf(`
	_start:
		la  r1, head
		ld  r2, 0(r1)        ; first node
	walk:
		beq r2, r0, done
		ld  r2, 0(r2)        ; next pointer (the conversion target)
		b   walk
	done:
		halt
	.data
	node2:  .word 0          ; NULL terminator — the tamper target
	node1:  .word node2
	node0:  .word node1
	head:   .word node0
	secret: .word %d
	`, uint64(pointerConversionSecret))
}

func binarySearchSrc() string {
	// The taken arm lives in its own set of I-lines, so its appearance on
	// the bus reveals the branch direction: wrong-path sequential fetch is
	// bounded by the RUU+IFQ capacity (~160 instructions), so the 400-nop
	// moat guarantees the arm's I-line appears on the bus only if the branch
	// actually (speculatively) redirects there.
	return fmt.Sprintf(`
	_start:
		la   r1, secretp
		ld   r2, 0(r1)       ; secret (authentic)
		la   r3, constp
		ld   r4, 0(r3)       ; comparison constant (tampered per trial)
		blt  r2, r4, below
	atabove:
		addi r5, r0, 1
		halt
		%s
	below:
		addi r5, r0, 2
		halt
	.data
	secretp: .word %d
	constp:  .word 0
	`, nops(400), binarySearchSecret)
}

// shiftWindowKernelSrc is the §3.2.3/§3.3.1 disclosing kernel: load the
// secret, shift the chosen window down, and turn it into a probe fetch whose
// line address carries the window bits. LUI r3 builds the probe base; LUI r2
// the data base (the secret sits at its start).
func shiftWindowKernelSrc(dataBase uint64, shift int) string {
	return fmt.Sprintf(`
		lui  r3, %d
		lui  r2, %d
		ld   r1, 0(r2)
		srli r1, r1, %d
		andi r4, r1, 0x3f
		slli r4, r4, 6
		or   r5, r4, r3
		ld   r6, 0(r5)
		nop
		nop
		nop
		nop
		nop
	`, ProbeBase>>16, dataBase>>16, shift)
}

// ioKernelSrc is the I/O-port disclosing kernel: OUT the secret to port 0x80.
func ioKernelSrc(dataBase uint64) string {
	return fmt.Sprintf(`
		lui  r2, %d
		ld   r1, 0(r2)
		out  r1, 0x80
		nop
		nop
		nop
		nop
		nop
		nop
		nop
		nop
		nop
		nop
	`, dataBase>>16)
}

const bruteForcePageSrc = `
	_start:
		la  r1, ptr
		ld  r2, 0(r1)
		ld  r3, 0(r2)       ; dereference the tampered pointer
		halt
	.data
	ptr: .word 0x1000       ; innocent pointer (known plaintext)
	`

const memoryTaintSrc = `
	_start:
		la   r1, input
		ld   r2, 0(r1)       ; tampered input
		addi r2, r2, 1
		la   r3, sink
		sd   r2, 0(r3)       ; derived value
		; stream 512KB to force the dirty sink line out of the 256KB L2
		la   r4, wash
		li   r5, 8192
	evict:
		ld   r6, 0(r4)
		addi r4, r4, 64
		addi r5, r5, -1
		bne  r5, r0, evict
		halt
	.data
	input: .word 7
	.align 64
	sink:  .word 0
	.align 64
	wash:  .space 524288
	`

// Kernel is one exploit's effective post-tamper program, ready for static
// analysis or direct (plaintext-patched) execution.
type Kernel struct {
	Name string
	Prog *asm.Program
	// Channel names the leak channel the exploit drives: "addr" (data-fetch
	// address on the bus), "ctrl" (instruction-fetch addresses / control
	// flow), "io" (OUT port), "state" (authenticated-memory contamination).
	Channel string
	// NeedsProbe indicates the run requires the adversary's probe window
	// mapped at ProbeBase.
	NeedsProbe bool
}

// patchDataWord overwrites the 8-byte little-endian word at addr in the
// program's data image — the plaintext equivalent of xorU64 on ciphertext.
func patchDataWord(p *asm.Program, addr, v uint64) error {
	off := addr - p.DataBase
	if addr < p.DataBase || off+8 > uint64(len(p.Data)) {
		return fmt.Errorf("attack: patch at %#x outside data section", addr)
	}
	for i := 0; i < 8; i++ {
		p.Data[off+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// spliceText overwrites victim text words starting at instruction index at —
// the plaintext equivalent of injectKernel.
func spliceText(p *asm.Program, at int, words []uint32) error {
	if at < 0 || at+len(words) > len(p.Text) {
		return fmt.Errorf("attack: splice (%d words at %d) exceeds victim text (%d)", len(words), at, len(p.Text))
	}
	copy(p.Text[at:], words)
	return nil
}

// Kernels returns the effective program of every implemented exploit, plus
// the untampered passive victim. Each is what a SchemeBaseline machine
// executes once the corresponding attack's ciphertext manipulation (if any)
// has landed.
func Kernels() ([]Kernel, error) {
	var out []Kernel
	add := func(name, channel string, needsProbe bool, build func() (*asm.Program, error)) error {
		p, err := build()
		if err != nil {
			return fmt.Errorf("attack: kernel %s: %w", name, err)
		}
		out = append(out, Kernel{Name: name, Prog: p, Channel: channel, NeedsProbe: needsProbe})
		return nil
	}

	if err := add("pointer-conversion", "addr", true, func() (*asm.Program, error) {
		p, err := asm.Assemble(pointerConversionSrc())
		if err != nil {
			return nil, err
		}
		// NULL terminator -> pointer at the secret.
		return p, patchDataWord(p, p.Symbols["node2"], p.Symbols["secret"])
	}); err != nil {
		return nil, err
	}

	if err := add("binary-search", "ctrl", false, func() (*asm.Program, error) {
		p, err := asm.Assemble(binarySearchSrc())
		if err != nil {
			return nil, err
		}
		// One representative trial: a guess above the secret, so the taken
		// arm (label below) is dynamically observable.
		return p, patchDataWord(p, p.Symbols["constp"], 0xFFFF)
	}); err != nil {
		return nil, err
	}

	if err := add("disclosing-kernel", "addr", true, func() (*asm.Program, error) {
		p, err := asm.Assemble(victimWithPrologue())
		if err != nil {
			return nil, err
		}
		k, err := asm.Assemble(shiftWindowKernelSrc(p.DataBase, 0))
		if err != nil {
			return nil, err
		}
		at := int((p.Symbols["f"] - p.TextBase) / isa.InstBytes)
		return p, spliceText(p, at, k.Text)
	}); err != nil {
		return nil, err
	}

	if err := add("io-port-disclosure", "io", false, func() (*asm.Program, error) {
		p, err := asm.Assemble(victimWithPrologue())
		if err != nil {
			return nil, err
		}
		k, err := asm.Assemble(ioKernelSrc(p.DataBase))
		if err != nil {
			return nil, err
		}
		at := int((p.Symbols["f"] - p.TextBase) / isa.InstBytes)
		return p, spliceText(p, at, k.Text)
	}); err != nil {
		return nil, err
	}

	if err := add("brute-force-page", "addr", true, func() (*asm.Program, error) {
		p, err := asm.Assemble(bruteForcePageSrc)
		if err != nil {
			return nil, err
		}
		// A mapped guess, as a successful trial would have found.
		return p, patchDataWord(p, p.Symbols["ptr"], ProbeBase|0x440)
	}); err != nil {
		return nil, err
	}

	if err := add("memory-taint", "state", false, func() (*asm.Program, error) {
		p, err := asm.Assemble(memoryTaintSrc)
		if err != nil {
			return nil, err
		}
		return p, patchDataWord(p, p.Symbols["input"], 0x4141)
	}); err != nil {
		return nil, err
	}

	if err := add("passive-control-flow", "ctrl", false, func() (*asm.Program, error) {
		return asm.Assemble(passiveVictim(passiveSecret))
	}); err != nil {
		return nil, err
	}

	pac, err := pacKernels()
	if err != nil {
		return nil, err
	}
	out = append(out, pac...)

	return out, nil
}
