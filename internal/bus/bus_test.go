package bus

import (
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	for _, cfg := range []Config{
		{CorePerBus: 0, BusBytes: 8, AddrBeats: 1},
		{CorePerBus: 5, BusBytes: 0, AddrBeats: 1},
		{CorePerBus: 5, BusBytes: 8, AddrBeats: 0},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestTransactTiming(t *testing.T) {
	b := MustNew(Default()) // 5 core/bus, 8B, 1 addr beat
	addrDone, dataDone := b.Transact(0, ReadLine, 0x1000, 64)
	if addrDone != 5 {
		t.Errorf("addr phase done at %d want 5", addrDone)
	}
	if dataDone != 5+8*5 {
		t.Errorf("data done at %d want 45", dataDone)
	}
}

func TestOccupancySerializes(t *testing.T) {
	b := MustNew(Default())
	_, done1 := b.Transact(0, ReadLine, 0x0, 64)
	addr2, _ := b.Transact(0, ReadLine, 0x40, 64)
	if addr2 < done1 {
		t.Errorf("second transaction overlapped: addr2=%d done1=%d", addr2, done1)
	}
	if b.BusyCycles() == 0 {
		t.Error("busy cycles not counted")
	}
	if b.NextFree() < done1 {
		t.Error("NextFree went backwards")
	}
}

func TestTraceRecordsAddressesAtAddrPhase(t *testing.T) {
	b := MustNew(Default())
	b.Transact(100, ReadLine, 0xdead00, 64)
	b.Transact(200, WriteLine, 0xbeef00, 64)
	b.Transact(300, ReadMeta, 0x777000, 8)
	tr := b.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[0].Addr != 0xdead00 || tr[0].Kind != ReadLine || tr[0].Cycle != 105 {
		t.Errorf("event 0: %+v", tr[0])
	}
	reads := b.ReadAddresses()
	if len(reads) != 1 || reads[0] != 0xdead00 {
		t.Errorf("read addresses %v", reads)
	}
}

func TestTracingToggleAndClear(t *testing.T) {
	b := MustNew(Default())
	b.SetTracing(false)
	b.Transact(0, ReadLine, 0x1, 64)
	if len(b.Trace()) != 0 {
		t.Error("traced while disabled")
	}
	b.SetTracing(true)
	b.Transact(0, ReadLine, 0x2, 64)
	if len(b.Trace()) != 1 {
		t.Error("not traced while enabled")
	}
	b.ClearTrace()
	if len(b.Trace()) != 0 {
		t.Error("clear failed")
	}
}

func TestSmallTransfer(t *testing.T) {
	b := MustNew(Default())
	addrDone, dataDone := b.Transact(0, ReadMeta, 0, 8)
	if dataDone-addrDone != 5 {
		t.Errorf("8-byte transfer beats: %d", dataDone-addrDone)
	}
	_, d2 := b.Transact(1000, ReadMeta, 0, 9)
	if d2 != 1000+5+2*5 {
		t.Errorf("9-byte transfer rounds up: %d", d2)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{ReadLine, WriteLine, ReadMeta, WriteMeta} {
		if k.String() == "?" || k.String() == "" {
			t.Errorf("kind %d has no string", k)
		}
	}
}

// Property: transactions never overlap and time is monotone.
func TestQuickNoOverlap(t *testing.T) {
	b := MustNew(Default())
	var lastDone uint64
	now := uint64(0)
	f := func(adv uint16, nbytes uint8) bool {
		now += uint64(adv)
		n := int(nbytes)%64 + 1
		addrDone, dataDone := b.Transact(now, ReadLine, uint64(now), n)
		ok := addrDone >= now && dataDone > addrDone && addrDone >= lastDone
		lastDone = dataDone
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
