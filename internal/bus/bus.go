// Package bus models the front-side bus between the secure processor and
// the memory device — and, critically for the paper, the *address trace*
// visible on it. Everything that crosses this bus is what an adversary with
// probes on the DIMM interface can see: fetch addresses in plaintext,
// ciphertext data, and MACs. The attack package reads the trace recorded
// here; the authentication-then-fetch policy exists to control what reaches
// it.
package bus

import (
	"fmt"

	"authpoint/internal/obs"
)

// Kind labels a bus transaction.
type Kind int

// Transaction kinds.
const (
	ReadLine  Kind = iota // cache-line fetch (the disclosure channel)
	WriteLine             // write-back
	ReadMeta              // counter / MAC / tree-node fetch
	WriteMeta             // metadata write-back
)

func (k Kind) String() string {
	switch k {
	case ReadLine:
		return "read"
	case WriteLine:
		return "write"
	case ReadMeta:
		return "read-meta"
	case WriteMeta:
		return "write-meta"
	}
	return "?"
}

// Event is one observed bus transaction: the adversary's view.
type Event struct {
	Cycle uint64
	Addr  uint64
	Kind  Kind
	Bytes int
}

// Config describes the bus.
type Config struct {
	CorePerBus int // core cycles per bus clock
	BusBytes   int // bytes transferred per bus clock
	AddrBeats  int // bus clocks consumed by the address/command phase
}

// Default returns the paper's 200MHz, 8-byte bus (1GHz core).
func Default() Config { return Config{CorePerBus: 5, BusBytes: 8, AddrBeats: 1} }

// Bus is the front-side bus model: a single shared resource with an
// occupancy horizon, plus the externally visible transaction trace.
type Bus struct {
	cfg      Config
	nextFree uint64
	trace    []Event
	tracing  bool
	busy     uint64 // total core cycles of occupancy (utilization stat)
	sink     obs.Sink
}

// SetObserver attaches an event sink (independent of the adversary trace,
// which SetTracing controls).
func (b *Bus) SetObserver(s obs.Sink) { b.sink = s }

// New validates cfg and builds the bus.
func New(cfg Config) (*Bus, error) {
	if cfg.CorePerBus <= 0 || cfg.BusBytes <= 0 || cfg.AddrBeats <= 0 {
		return nil, fmt.Errorf("bus: non-positive config %+v", cfg)
	}
	return &Bus{cfg: cfg, tracing: true}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Bus {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// SetTracing enables or disables trace capture (long performance runs turn
// it off to bound memory).
func (b *Bus) SetTracing(on bool) { b.tracing = on }

// Transact issues a transaction at core cycle `now` (or when the bus frees
// up, whichever is later). It returns the cycle the address phase completes
// — the instant the address becomes visible to the adversary — and the cycle
// the data transfer completes.
func (b *Bus) Transact(now uint64, kind Kind, addr uint64, nbytes int) (addrDone, dataDone uint64) {
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	cpb := uint64(b.cfg.CorePerBus)
	addrDone = start + uint64(b.cfg.AddrBeats)*cpb
	beats := (nbytes + b.cfg.BusBytes - 1) / b.cfg.BusBytes
	dataDone = addrDone + uint64(beats)*cpb
	b.busy += dataDone - start
	b.nextFree = dataDone
	if b.tracing {
		b.trace = append(b.trace, Event{Cycle: addrDone, Addr: addr, Kind: kind, Bytes: nbytes})
	}
	if b.sink != nil {
		b.sink.Emit(obs.Event{Cycle: start, Kind: obs.EvBusTxn, Track: obs.TrackBus,
			Addr: addr, A: uint64(kind), B: dataDone})
	}
	return addrDone, dataDone
}

// Trace returns the recorded transactions. The returned slice is the live
// backing array; callers must not mutate it.
func (b *Bus) Trace() []Event { return b.trace }

// ReadAddresses returns the addresses of all ReadLine transactions, in
// order — the paper's memory-fetch side channel distilled to what the
// exploits consume.
func (b *Bus) ReadAddresses() []uint64 {
	var out []uint64
	for _, e := range b.trace {
		if e.Kind == ReadLine {
			out = append(out, e.Addr)
		}
	}
	return out
}

// ClearTrace discards the trace (e.g. after warmup).
func (b *Bus) ClearTrace() { b.trace = nil }

// BusyCycles returns total core cycles of bus occupancy.
func (b *Bus) BusyCycles() uint64 { return b.busy }

// NextFree returns the earliest cycle a new transaction could start.
func (b *Bus) NextFree() uint64 { return b.nextFree }

// NextEventAt supports the idle-cycle fast-forward: the bus is lazily timed
// (transactions are fully scheduled at request time), so its only "event"
// is its occupancy horizon. Completion cycles that matter to the pipeline
// are already folded into the memory system's ready/done timestamps; the
// returned bound is defensive. A horizon at or before now imposes no bound.
func (b *Bus) NextEventAt(now uint64) uint64 {
	if b.nextFree > now {
		return b.nextFree
	}
	return ^uint64(0)
}
