// Package isa defines the instruction set architecture executed by the
// secure processor model: a 64-bit RISC machine with fixed 32-bit
// instruction words, 32 integer registers, and 32 floating-point registers.
//
// The ISA is deliberately Alpha-flavoured (the paper simulates SimpleScalar
// running Alpha binaries): a load/store architecture, register+displacement
// addressing, and compare-and-branch control flow. Encodings are stable so
// that ciphertext tampering on instruction words (Section 3 of the paper)
// has well-defined, reproducible semantics.
package isa

import "fmt"

// Word sizes and layout constants.
const (
	// InstBytes is the size of one encoded instruction word.
	InstBytes = 4
	// NumIntRegs is the number of architectural integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of architectural floating-point registers.
	NumFPRegs = 32
	// RegZero is the hardwired-zero integer register (reads as 0, writes discarded).
	RegZero = 0
	// RegRA is the conventional link (return address) register. It lies in
	// the I-format-addressable range r0..r15 so that calls, returns, and
	// stack spills (all I-format) can name it.
	RegRA = 15
	// RegSP is the conventional stack pointer register (I-format addressable).
	RegSP = 14
)

// Op is an operation code. The encoded opcode field is 8 bits wide.
type Op uint8

// Operation codes. The numeric values are part of the binary encoding and
// must not be reordered.
const (
	OpNOP Op = iota
	OpHALT

	// Integer ALU, register-register.
	OpADD
	OpSUB
	OpMUL
	OpDIV
	OpREM
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT  // rd = (rs1 < rs2) signed
	OpSLTU // rd = (rs1 < rs2) unsigned

	// Integer ALU, register-immediate (16-bit signed immediate unless noted).
	OpADDI
	OpANDI // immediate is zero-extended
	OpORI  // immediate is zero-extended
	OpXORI // immediate is zero-extended
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpLUI  // rd = imm << 16 (bits 16..31); use with OpORI/OpSLLI to build constants
	OpLUIH // rd = rd | imm << 32 (bits 32..47); builds 64-bit constants

	// Loads: rd = MEM[rs1 + imm].
	OpLD // 64-bit
	OpLW // 32-bit, sign-extended
	OpLWU
	OpLB // 8-bit, sign-extended
	OpLBU

	// Stores: MEM[rs1 + imm] = rs2.
	OpSD
	OpSW
	OpSB

	// Control transfer.
	OpBEQ  // branch if rs1 == rs2, pc-relative imm (in instruction words)
	OpBNE  //
	OpBLT  // signed
	OpBGE  // signed
	OpBLTU //
	OpBGEU //
	OpJAL  // rd = pc+4; pc += imm*4 (26-bit-ish range via imm16 words)
	OpJALR // rd = pc+4; pc = rs1 + imm

	// Floating point (operates on the FP register file, float64 values).
	OpFLD  // fd = MEM[rs1 + imm]
	OpFSD  // MEM[rs1 + imm] = fs2
	OpFADD // fd = fs1 + fs2
	OpFSUB
	OpFMUL
	OpFDIV
	OpFNEG   // fd = -fs1
	OpFCVTIF // fd = float64(rs1)  (int source register)
	OpFCVTFI // rd = int64(fs1)    (int destination register)
	OpFBLT   // branch if fs1 < fs2
	OpFBGE   // branch if fs1 >= fs2

	// OpOUT writes rs2 to I/O port imm. The paper's "disclosing kernel to an
	// I/O channel" exploit (Section 3.2.3) targets this instruction; ports are
	// architectural state, so OUT is only performed at commit.
	OpOUT

	// OpPREF is a software prefetch of MEM[rs1+imm]; it issues a bus fetch but
	// writes no register. Used by workloads with software prefetching.
	OpPREF

	// Pointer authentication (FEAT_PAuth-flavoured). Pointers are 32-bit
	// addresses carried in 64-bit registers; sign computes a keyed MAC over
	// (low 32 address bits, 64-bit modifier in rs2) and places the truncated
	// tag in the upper 32 bits. auth recomputes and checks the tag: on
	// success the clean address is produced; on failure the outcome is a
	// policy decision (strip-through, poison for fault-at-use, or an
	// architectural fault at the auth point — see cryptoengine/pacmac).
	// strip removes the tag without any check. A/B name two independent keys.
	OpSIGNA // rd = sign(rs1, modifier rs2) under key A
	OpSIGNB // rd = sign(rs1, modifier rs2) under key B
	OpAUTHA // rd = auth(rs1, modifier rs2) under key A
	OpAUTHB // rd = auth(rs1, modifier rs2) under key B
	OpSTRIP // rd = rs1 with the PAC field cleared

	opMax // sentinel; must remain last
)

// NumOps is the count of defined operations.
const NumOps = int(opMax)

// Class groups operations for issue/functional-unit purposes.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul // long-latency integer (MUL/DIV/REM)
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // JAL/JALR
	ClassFPU
	ClassFPLoad
	ClassFPStore
	ClassOut
	ClassHalt
	ClassPAC // pointer-authentication ops (keyed MAC unit)
)

type opInfo struct {
	name  string
	class Class
	// hasImm reports whether the 16-bit immediate field is meaningful.
	hasImm bool
}

var opTable = [NumOps]opInfo{
	OpNOP:    {"nop", ClassNop, false},
	OpHALT:   {"halt", ClassHalt, false},
	OpADD:    {"add", ClassALU, false},
	OpSUB:    {"sub", ClassALU, false},
	OpMUL:    {"mul", ClassMul, false},
	OpDIV:    {"div", ClassMul, false},
	OpREM:    {"rem", ClassMul, false},
	OpAND:    {"and", ClassALU, false},
	OpOR:     {"or", ClassALU, false},
	OpXOR:    {"xor", ClassALU, false},
	OpSLL:    {"sll", ClassALU, false},
	OpSRL:    {"srl", ClassALU, false},
	OpSRA:    {"sra", ClassALU, false},
	OpSLT:    {"slt", ClassALU, false},
	OpSLTU:   {"sltu", ClassALU, false},
	OpADDI:   {"addi", ClassALU, true},
	OpANDI:   {"andi", ClassALU, true},
	OpORI:    {"ori", ClassALU, true},
	OpXORI:   {"xori", ClassALU, true},
	OpSLLI:   {"slli", ClassALU, true},
	OpSRLI:   {"srli", ClassALU, true},
	OpSRAI:   {"srai", ClassALU, true},
	OpSLTI:   {"slti", ClassALU, true},
	OpLUI:    {"lui", ClassALU, true},
	OpLUIH:   {"luih", ClassALU, true},
	OpLD:     {"ld", ClassLoad, true},
	OpLW:     {"lw", ClassLoad, true},
	OpLWU:    {"lwu", ClassLoad, true},
	OpLB:     {"lb", ClassLoad, true},
	OpLBU:    {"lbu", ClassLoad, true},
	OpSD:     {"sd", ClassStore, true},
	OpSW:     {"sw", ClassStore, true},
	OpSB:     {"sb", ClassStore, true},
	OpBEQ:    {"beq", ClassBranch, true},
	OpBNE:    {"bne", ClassBranch, true},
	OpBLT:    {"blt", ClassBranch, true},
	OpBGE:    {"bge", ClassBranch, true},
	OpBLTU:   {"bltu", ClassBranch, true},
	OpBGEU:   {"bgeu", ClassBranch, true},
	OpJAL:    {"jal", ClassJump, true},
	OpJALR:   {"jalr", ClassJump, true},
	OpFLD:    {"fld", ClassFPLoad, true},
	OpFSD:    {"fsd", ClassFPStore, true},
	OpFADD:   {"fadd", ClassFPU, false},
	OpFSUB:   {"fsub", ClassFPU, false},
	OpFMUL:   {"fmul", ClassFPU, false},
	OpFDIV:   {"fdiv", ClassFPU, false},
	OpFNEG:   {"fneg", ClassFPU, false},
	OpFCVTIF: {"fcvtif", ClassFPU, false},
	OpFCVTFI: {"fcvtfi", ClassFPU, false},
	OpFBLT:   {"fblt", ClassBranch, true},
	OpFBGE:   {"fbge", ClassBranch, true},
	OpOUT:    {"out", ClassOut, true},
	OpPREF:   {"pref", ClassLoad, true},
	OpSIGNA:  {"signa", ClassPAC, false},
	OpSIGNB:  {"signb", ClassPAC, false},
	OpAUTHA:  {"autha", ClassPAC, false},
	OpAUTHB:  {"authb", ClassPAC, false},
	OpSTRIP:  {"strip", ClassPAC, false},
}

// Valid reports whether op is a defined operation.
func (op Op) Valid() bool { return int(op) < NumOps && opTable[op].name != "" }

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class returns the functional class of op.
func (op Op) Class() Class {
	if !op.Valid() {
		return ClassNop
	}
	return opTable[op].class
}

// HasImm reports whether op uses the immediate field.
func (op Op) HasImm() bool { return op.Valid() && opTable[op].hasImm }

// OpByName returns the op with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// OpsOfClass returns the defined ops of the given class in opcode order.
// The slice is freshly allocated; callers may filter or reorder it.
// Program generators draw mnemonic pools from this so new ops are exercised
// the moment they are defined.
func OpsOfClass(c Class) []Op {
	var out []Op
	for op := Op(0); int(op) < NumOps; op++ {
		if op.Valid() && opTable[op].class == c {
			out = append(out, op)
		}
	}
	return out
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); int(op) < NumOps; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// Inst is a decoded instruction.
//
// Register fields are interpreted per class: for FP arithmetic Rd/Rs1/Rs2
// index the FP register file; FLD writes FP Rd from an integer base Rs1;
// FSD stores FP Rs2 with integer base Rs1; FCVTIF reads integer Rs1 and
// writes FP Rd; FCVTFI reads FP Rs1 and writes integer Rd.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign- or zero-extended 16-bit immediate per Op
}

// Encoding layout (little-endian 32-bit word):
//
//	bits  0..7   opcode
//	bits  8..12  rd
//	bits 13..17  rs1
//	bits 18..22  rs2 (rs2-form) — always encoded; ignored by imm-only ops
//	bits 16..31  imm16 for immediate-form ops... —
//
// rs1 (5 bits) and imm16 cannot both start at bit 13 without overlap, so the
// immediate forms use a compact layout:
//
//	bits  0..7   opcode
//	bits  8..12  rd
//	bits 13..17  rs1/rs2 source field (rs1 for loads/ALU-imm; rs2 for stores is
//	             carried in rd's slot — see Encode)
//	bits 18..19  unused
//	... immediate forms instead place imm16 in bits 16..31 and restrict the
//	register fields to bits 8..15.
//
// To keep decoding trivial and lossless we use two fixed formats:
//
//	R-format (no imm):  [op:8][rd:5][rs1:5][rs2:5][pad:9]
//	I-format (imm):     [op:8][rd:4+...]
//
// A 32-bit word cannot hold 8+5+5+16; immediate-form instructions therefore
// encode registers in 4-bit fields ([op:8][rd:4][rs1:4][imm:16]) and may only
// name registers r0..r15 / f0..f15. The assembler enforces this; registers
// r16..r31 are reserved for R-format-only temporaries. Stores and
// register+register branches carry their source register rs2 in the rd field.
const (
	immRegLimit = 16
)

// ErrEncode describes an instruction that cannot be encoded.
type ErrEncode struct {
	Inst   Inst
	Reason string
}

func (e *ErrEncode) Error() string {
	return fmt.Sprintf("cannot encode %v: %s", e.Inst, e.Reason)
}

// usesRs2InRd reports whether the I-format op carries rs2 in the rd field
// (stores and compare-and-branch ops have no destination register).
func usesRs2InRd(op Op) bool {
	switch op.Class() {
	case ClassStore, ClassFPStore, ClassBranch, ClassOut:
		return true
	}
	return false
}

// Encode packs inst into a 32-bit instruction word.
func Encode(inst Inst) (uint32, error) {
	if !inst.Op.Valid() {
		return 0, &ErrEncode{inst, "invalid opcode"}
	}
	if inst.Rd >= NumIntRegs || inst.Rs1 >= NumIntRegs || inst.Rs2 >= NumIntRegs {
		return 0, &ErrEncode{inst, "register out of range"}
	}
	if !inst.Op.HasImm() {
		// R-format.
		w := uint32(inst.Op) |
			uint32(inst.Rd)<<8 |
			uint32(inst.Rs1)<<13 |
			uint32(inst.Rs2)<<18
		return w, nil
	}
	// I-format.
	if inst.Imm < -(1<<15) || inst.Imm >= 1<<16 {
		return 0, &ErrEncode{inst, "immediate out of 16-bit range"}
	}
	if inst.Imm >= 1<<15 {
		// Allow unsigned 16-bit immediates for the zero-extending logical ops.
		switch inst.Op {
		case OpANDI, OpORI, OpXORI, OpLUI, OpLUIH, OpOUT:
		default:
			return 0, &ErrEncode{inst, "immediate out of signed 16-bit range"}
		}
	}
	rdField := inst.Rd
	if usesRs2InRd(inst.Op) {
		rdField = inst.Rs2
	}
	if rdField >= immRegLimit || inst.Rs1 >= immRegLimit {
		return 0, &ErrEncode{inst, "I-format register must be r0..r15/f0..f15"}
	}
	w := uint32(inst.Op) |
		uint32(rdField)<<8 |
		uint32(inst.Rs1)<<12 |
		uint32(uint16(inst.Imm))<<16
	return w, nil
}

// MustEncode is Encode but panics on error; for tests and generators.
func MustEncode(inst Inst) uint32 {
	w, err := Encode(inst)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit instruction word. Decoding never fails: invalid
// opcodes decode to an Inst with an invalid Op, which the pipeline raises as
// an illegal-instruction fault at execute. This mirrors real hardware and is
// essential for the tampering experiments, where ciphertext bit-flips produce
// arbitrary instruction words.
func Decode(w uint32) Inst {
	op := Op(w & 0xff)
	if !op.Valid() {
		return Inst{Op: op}
	}
	if !op.HasImm() {
		return Inst{
			Op:  op,
			Rd:  uint8(w >> 8 & 0x1f),
			Rs1: uint8(w >> 13 & 0x1f),
			Rs2: uint8(w >> 18 & 0x1f),
		}
	}
	rdField := uint8(w >> 8 & 0xf)
	rs1 := uint8(w >> 12 & 0xf)
	imm := int32(int16(uint16(w >> 16)))
	switch op {
	case OpANDI, OpORI, OpXORI, OpLUI, OpLUIH, OpOUT:
		imm = int32(uint16(w >> 16)) // zero-extended
	}
	inst := Inst{Op: op, Rs1: rs1, Imm: imm}
	if usesRs2InRd(op) {
		inst.Rs2 = rdField
	} else {
		inst.Rd = rdField
	}
	return inst
}

// String renders inst in assembler syntax.
func (i Inst) String() string {
	fp := func(r uint8) string { return fmt.Sprintf("f%d", r) }
	ir := func(r uint8) string { return fmt.Sprintf("r%d", r) }
	switch i.Op.Class() {
	case ClassNop, ClassHalt:
		return i.Op.String()
	case ClassALU:
		if i.Op.HasImm() {
			if i.Op == OpLUI || i.Op == OpLUIH {
				return fmt.Sprintf("%s %s, %d", i.Op, ir(i.Rd), i.Imm)
			}
			return fmt.Sprintf("%s %s, %s, %d", i.Op, ir(i.Rd), ir(i.Rs1), i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, ir(i.Rd), ir(i.Rs1), ir(i.Rs2))
	case ClassMul:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, ir(i.Rd), ir(i.Rs1), ir(i.Rs2))
	case ClassLoad:
		if i.Op == OpPREF {
			return fmt.Sprintf("%s %d(%s)", i.Op, i.Imm, ir(i.Rs1))
		}
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, ir(i.Rd), i.Imm, ir(i.Rs1))
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, ir(i.Rs2), i.Imm, ir(i.Rs1))
	case ClassFPLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, fp(i.Rd), i.Imm, ir(i.Rs1))
	case ClassFPStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, fp(i.Rs2), i.Imm, ir(i.Rs1))
	case ClassBranch:
		if i.Op == OpFBLT || i.Op == OpFBGE {
			return fmt.Sprintf("%s %s, %s, %d", i.Op, fp(i.Rs1), fp(i.Rs2), i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %d", i.Op, ir(i.Rs1), ir(i.Rs2), i.Imm)
	case ClassJump:
		if i.Op == OpJAL {
			return fmt.Sprintf("%s %s, %d", i.Op, ir(i.Rd), i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %d", i.Op, ir(i.Rd), ir(i.Rs1), i.Imm)
	case ClassFPU:
		switch i.Op {
		case OpFNEG:
			return fmt.Sprintf("%s %s, %s", i.Op, fp(i.Rd), fp(i.Rs1))
		case OpFCVTIF:
			return fmt.Sprintf("%s %s, %s", i.Op, fp(i.Rd), ir(i.Rs1))
		case OpFCVTFI:
			return fmt.Sprintf("%s %s, %s", i.Op, ir(i.Rd), fp(i.Rs1))
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, fp(i.Rd), fp(i.Rs1), fp(i.Rs2))
	case ClassOut:
		return fmt.Sprintf("%s %s, %d", i.Op, ir(i.Rs2), i.Imm)
	case ClassPAC:
		if i.Op == OpSTRIP {
			return fmt.Sprintf("%s %s, %s", i.Op, ir(i.Rd), ir(i.Rs1))
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, ir(i.Rd), ir(i.Rs1), ir(i.Rs2))
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// IsBranchOrJump reports whether the instruction may redirect control flow.
func (i Inst) IsBranchOrJump() bool {
	c := i.Op.Class()
	return c == ClassBranch || c == ClassJump
}

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool {
	switch i.Op.Class() {
	case ClassLoad, ClassStore, ClassFPLoad, ClassFPStore:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool {
	c := i.Op.Class()
	return c == ClassStore || c == ClassFPStore
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool {
	c := i.Op.Class()
	return c == ClassLoad || c == ClassFPLoad
}

// MemBytes returns the access size in bytes for memory instructions, 0 otherwise.
func (i Inst) MemBytes() int {
	switch i.Op {
	case OpLD, OpSD, OpFLD, OpFSD:
		return 8
	case OpLW, OpLWU, OpSW:
		return 4
	case OpLB, OpLBU, OpSB:
		return 1
	case OpPREF:
		return 8
	}
	return 0
}
