package isa

import "testing"

// TestDefsUsesEveryOpcode pins the architectural def/use sets of every
// defined operation. The table names registers explicitly so a future opcode
// addition without a matching entry fails loudly.
func TestDefsUsesEveryOpcode(t *testing.T) {
	// A representative instruction per op using distinct registers so swapped
	// fields are caught: rd=1, rs1=2, rs2=3 (FP ops use the same indices in
	// the FP file).
	type isaCase struct {
		inst Inst
		defs RegSet
		uses RegSet
	}
	ir := IntReg
	fr := FPReg
	cases := map[Op]isaCase{
		OpNOP:  {Inst{Op: OpNOP}, 0, 0},
		OpHALT: {Inst{Op: OpHALT}, 0, 0},

		OpADD:  {Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSUB:  {Inst{Op: OpSUB, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpMUL:  {Inst{Op: OpMUL, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpDIV:  {Inst{Op: OpDIV, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpREM:  {Inst{Op: OpREM, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpAND:  {Inst{Op: OpAND, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpOR:   {Inst{Op: OpOR, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpXOR:  {Inst{Op: OpXOR, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSLL:  {Inst{Op: OpSLL, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSRL:  {Inst{Op: OpSRL, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSRA:  {Inst{Op: OpSRA, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSLT:  {Inst{Op: OpSLT, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSLTU: {Inst{Op: OpSLTU, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},

		OpADDI: {Inst{Op: OpADDI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpANDI: {Inst{Op: OpANDI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpORI:  {Inst{Op: OpORI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpXORI: {Inst{Op: OpXORI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpSLLI: {Inst{Op: OpSLLI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpSRLI: {Inst{Op: OpSRLI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpSRAI: {Inst{Op: OpSRAI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpSLTI: {Inst{Op: OpSLTI, Rd: 1, Rs1: 2, Imm: 5}, ir(1), ir(2)},
		OpLUI:  {Inst{Op: OpLUI, Rd: 1, Imm: 5}, ir(1), 0},
		OpLUIH: {Inst{Op: OpLUIH, Rd: 1, Rs1: 1, Imm: 5}, ir(1), ir(1)},

		OpLD:  {Inst{Op: OpLD, Rd: 1, Rs1: 2, Imm: 8}, ir(1), ir(2)},
		OpLW:  {Inst{Op: OpLW, Rd: 1, Rs1: 2, Imm: 8}, ir(1), ir(2)},
		OpLWU: {Inst{Op: OpLWU, Rd: 1, Rs1: 2, Imm: 8}, ir(1), ir(2)},
		OpLB:  {Inst{Op: OpLB, Rd: 1, Rs1: 2, Imm: 8}, ir(1), ir(2)},
		OpLBU: {Inst{Op: OpLBU, Rd: 1, Rs1: 2, Imm: 8}, ir(1), ir(2)},

		OpSD: {Inst{Op: OpSD, Rs1: 2, Rs2: 3, Imm: 8}, 0, ir(2) | ir(3)},
		OpSW: {Inst{Op: OpSW, Rs1: 2, Rs2: 3, Imm: 8}, 0, ir(2) | ir(3)},
		OpSB: {Inst{Op: OpSB, Rs1: 2, Rs2: 3, Imm: 8}, 0, ir(2) | ir(3)},

		OpBEQ:  {Inst{Op: OpBEQ, Rs1: 2, Rs2: 3, Imm: 4}, 0, ir(2) | ir(3)},
		OpBNE:  {Inst{Op: OpBNE, Rs1: 2, Rs2: 3, Imm: 4}, 0, ir(2) | ir(3)},
		OpBLT:  {Inst{Op: OpBLT, Rs1: 2, Rs2: 3, Imm: 4}, 0, ir(2) | ir(3)},
		OpBGE:  {Inst{Op: OpBGE, Rs1: 2, Rs2: 3, Imm: 4}, 0, ir(2) | ir(3)},
		OpBLTU: {Inst{Op: OpBLTU, Rs1: 2, Rs2: 3, Imm: 4}, 0, ir(2) | ir(3)},
		OpBGEU: {Inst{Op: OpBGEU, Rs1: 2, Rs2: 3, Imm: 4}, 0, ir(2) | ir(3)},
		OpJAL:  {Inst{Op: OpJAL, Rd: RegRA, Imm: 4}, ir(RegRA), 0},
		OpJALR: {Inst{Op: OpJALR, Rd: 1, Rs1: RegRA}, ir(1), ir(RegRA)},

		OpFLD:    {Inst{Op: OpFLD, Rd: 1, Rs1: 2, Imm: 8}, fr(1), ir(2)},
		OpFSD:    {Inst{Op: OpFSD, Rs1: 2, Rs2: 3, Imm: 8}, 0, ir(2) | fr(3)},
		OpFADD:   {Inst{Op: OpFADD, Rd: 1, Rs1: 2, Rs2: 3}, fr(1), fr(2) | fr(3)},
		OpFSUB:   {Inst{Op: OpFSUB, Rd: 1, Rs1: 2, Rs2: 3}, fr(1), fr(2) | fr(3)},
		OpFMUL:   {Inst{Op: OpFMUL, Rd: 1, Rs1: 2, Rs2: 3}, fr(1), fr(2) | fr(3)},
		OpFDIV:   {Inst{Op: OpFDIV, Rd: 1, Rs1: 2, Rs2: 3}, fr(1), fr(2) | fr(3)},
		OpFNEG:   {Inst{Op: OpFNEG, Rd: 1, Rs1: 2}, fr(1), fr(2)},
		OpFCVTIF: {Inst{Op: OpFCVTIF, Rd: 1, Rs1: 2}, fr(1), ir(2)},
		OpFCVTFI: {Inst{Op: OpFCVTFI, Rd: 1, Rs1: 2}, ir(1), fr(2)},
		OpFBLT:   {Inst{Op: OpFBLT, Rs1: 2, Rs2: 3, Imm: 4}, 0, fr(2) | fr(3)},
		OpFBGE:   {Inst{Op: OpFBGE, Rs1: 2, Rs2: 3, Imm: 4}, 0, fr(2) | fr(3)},

		OpOUT:  {Inst{Op: OpOUT, Rs2: 3, Imm: 0x80}, 0, ir(3)},
		OpPREF: {Inst{Op: OpPREF, Rs1: 2, Imm: 8}, 0, ir(2)},

		OpSIGNA: {Inst{Op: OpSIGNA, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSIGNB: {Inst{Op: OpSIGNB, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpAUTHA: {Inst{Op: OpAUTHA, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpAUTHB: {Inst{Op: OpAUTHB, Rd: 1, Rs1: 2, Rs2: 3}, ir(1), ir(2) | ir(3)},
		OpSTRIP: {Inst{Op: OpSTRIP, Rd: 1, Rs1: 2}, ir(1), ir(2)},
	}
	for op := Op(0); int(op) < NumOps; op++ {
		c, ok := cases[op]
		if !ok {
			t.Errorf("no def/use table entry for op %v — add one", op)
			continue
		}
		if got := c.inst.Defs(); got != c.defs {
			t.Errorf("%v Defs = %v, want %v", c.inst, got, c.defs)
		}
		if got := c.inst.Uses(); got != c.uses {
			t.Errorf("%v Uses = %v, want %v", c.inst, got, c.uses)
		}
	}
}

// TestRegSetZeroRegister: r0 is hardwired zero and must never enter a set.
func TestRegSetZeroRegister(t *testing.T) {
	if !IntReg(0).Empty() {
		t.Error("IntReg(0) should be empty: r0 carries no dependence")
	}
	i := Inst{Op: OpADD, Rd: 0, Rs1: 0, Rs2: 0}
	if !i.Defs().Empty() || !i.Uses().Empty() {
		t.Errorf("add r0, r0, r0: defs=%v uses=%v, want empty", i.Defs(), i.Uses())
	}
	// f0 is an ordinary FP register.
	if FPReg(0).Empty() {
		t.Error("FPReg(0) must be a real register")
	}
	fld := Inst{Op: OpFLD, Rd: 0, Rs1: 2}
	if !fld.Defs().HasFP(0) {
		t.Error("fld f0 must define f0")
	}
}

// TestRegSetOps exercises the set helpers.
func TestRegSetOps(t *testing.T) {
	s := IntReg(1).Union(IntReg(4)).Union(FPReg(2))
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if !s.HasInt(1) || !s.HasInt(4) || !s.HasFP(2) || s.HasInt(2) || s.HasFP(1) {
		t.Errorf("membership wrong for %v", s)
	}
	if got := s.String(); got != "{r1 r4 f2}" {
		t.Errorf("String = %q, want {r1 r4 f2}", got)
	}
	if len(s.Ints()) != 2 || len(s.FPs()) != 1 {
		t.Errorf("Ints/FPs = %v/%v", s.Ints(), s.FPs())
	}
}
