package isa

import (
	"fmt"
	"strings"
)

// RegSet is a small set of architectural registers: bit r holds integer
// register r, bit 32+f holds floating-point register f. The hardwired-zero
// register r0 never appears in a set — writes to it are discarded and reads
// yield the constant zero, so it carries no dataflow dependence. FP f0 is an
// ordinary register and is tracked normally.
//
// Defs and Uses below give the architectural def/use sets of every
// instruction; they are the substrate for register dependence analysis
// (internal/analysis taint tracking, and any scheduler that wants a
// table-free answer).
type RegSet uint64

// IntReg returns the singleton set {r} for an integer register, or the empty
// set for r0 and out-of-range values.
func IntReg(r uint8) RegSet {
	if r == RegZero || r >= NumIntRegs {
		return 0
	}
	return 1 << r
}

// FPReg returns the singleton set {f} for a floating-point register, or the
// empty set for out-of-range values.
func FPReg(r uint8) RegSet {
	if r >= NumFPRegs {
		return 0
	}
	return 1 << (32 + uint(r))
}

// HasInt reports whether integer register r is in the set.
func (s RegSet) HasInt(r uint8) bool { return s&IntReg(r) != 0 }

// HasFP reports whether FP register r is in the set.
func (s RegSet) HasFP(r uint8) bool { return s&FPReg(r) != 0 }

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Empty reports whether the set has no members.
func (s RegSet) Empty() bool { return s == 0 }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for ; s != 0; s &= s - 1 {
		n++
	}
	return n
}

// Ints returns the integer registers in the set, ascending.
func (s RegSet) Ints() []uint8 {
	var out []uint8
	for r := uint8(0); r < NumIntRegs; r++ {
		if s.HasInt(r) {
			out = append(out, r)
		}
	}
	return out
}

// FPs returns the FP registers in the set, ascending.
func (s RegSet) FPs() []uint8 {
	var out []uint8
	for r := uint8(0); r < NumFPRegs; r++ {
		if s.HasFP(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the set as "{r1 r4 f2}".
func (s RegSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for _, r := range s.Ints() {
		if b.Len() > 1 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "r%d", r)
	}
	for _, r := range s.FPs() {
		if b.Len() > 1 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "f%d", r)
	}
	b.WriteByte('}')
	return b.String()
}

// Defs returns the set of architectural registers the instruction writes.
// Invalid opcodes (tampered words) define nothing: the pipeline raises an
// illegal-instruction fault instead of writing state.
func (i Inst) Defs() RegSet {
	switch i.Op.Class() {
	case ClassALU, ClassMul:
		return IntReg(i.Rd)
	case ClassLoad:
		if i.Op == OpPREF {
			return 0 // prefetch writes no register
		}
		return IntReg(i.Rd)
	case ClassFPLoad:
		return FPReg(i.Rd)
	case ClassJump:
		return IntReg(i.Rd) // link register (pc+4)
	case ClassFPU:
		if i.Op == OpFCVTFI {
			return IntReg(i.Rd)
		}
		return FPReg(i.Rd)
	case ClassPAC:
		return IntReg(i.Rd)
	}
	// Nop, Halt, Store, FPStore, Branch, Out — and invalid opcodes.
	return 0
}

// Uses returns the set of architectural registers the instruction reads.
func (i Inst) Uses() RegSet {
	switch i.Op.Class() {
	case ClassALU, ClassMul:
		switch i.Op {
		case OpLUI:
			return 0 // rd = imm << 16: pure constant
		case OpLUIH:
			return IntReg(i.Rs1) // rd = rd | imm<<32 reads the old rd
		}
		if i.Op.HasImm() {
			return IntReg(i.Rs1)
		}
		return IntReg(i.Rs1) | IntReg(i.Rs2)
	case ClassLoad, ClassFPLoad:
		return IntReg(i.Rs1) // address base (covers PREF too)
	case ClassStore:
		return IntReg(i.Rs1) | IntReg(i.Rs2)
	case ClassFPStore:
		return IntReg(i.Rs1) | FPReg(i.Rs2)
	case ClassBranch:
		if i.Op == OpFBLT || i.Op == OpFBGE {
			return FPReg(i.Rs1) | FPReg(i.Rs2)
		}
		return IntReg(i.Rs1) | IntReg(i.Rs2)
	case ClassJump:
		if i.Op == OpJALR {
			return IntReg(i.Rs1)
		}
		return 0 // JAL target is pc-relative constant
	case ClassFPU:
		switch i.Op {
		case OpFNEG:
			return FPReg(i.Rs1)
		case OpFCVTIF:
			return IntReg(i.Rs1)
		case OpFCVTFI:
			return FPReg(i.Rs1)
		}
		return FPReg(i.Rs1) | FPReg(i.Rs2)
	case ClassOut:
		return IntReg(i.Rs2)
	case ClassPAC:
		if i.Op == OpSTRIP {
			return IntReg(i.Rs1)
		}
		return IntReg(i.Rs1) | IntReg(i.Rs2) // pointer + modifier
	}
	return 0
}
