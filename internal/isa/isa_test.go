package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpNamesUniqueAndComplete(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); int(op) < NumOps; op++ {
		name := opTable[op].name
		if name == "" {
			t.Fatalf("op %d has no table entry", op)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("duplicate mnemonic %q for ops %d and %d", name, prev, op)
		}
		seen[name] = op
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Fatalf("OpByName(%q) = %v,%v want %v", name, got, ok, op)
		}
	}
}

func TestInvalidOpHandling(t *testing.T) {
	bad := Op(200)
	if bad.Valid() {
		t.Fatal("op 200 should be invalid")
	}
	if bad.String() == "" {
		t.Fatal("invalid op should still print")
	}
	if _, err := Encode(Inst{Op: bad}); err == nil {
		t.Fatal("encoding invalid op should fail")
	}
	if got := Decode(uint32(bad)); got.Op.Valid() {
		t.Fatalf("decoding invalid opcode gave valid op %v", got.Op)
	}
}

// roundTrippable reports whether inst survives Encode/Decode exactly.
func encodeDecode(t *testing.T, inst Inst) Inst {
	t.Helper()
	w, err := Encode(inst)
	if err != nil {
		t.Fatalf("encode %v: %v", inst, err)
	}
	return Decode(w)
}

func TestEncodeDecodeRFormat(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: OpMUL, Rd: 17, Rs1: 16, Rs2: 31},
		{Op: OpXOR, Rd: 0, Rs1: 0, Rs2: 0},
		{Op: OpFADD, Rd: 5, Rs1: 6, Rs2: 7},
		{Op: OpFCVTIF, Rd: 1, Rs1: 9},
		{Op: OpHALT},
		{Op: OpNOP},
	}
	for _, c := range cases {
		if got := encodeDecode(t, c); got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestEncodeDecodeIFormat(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -32768},
		{Op: OpADDI, Rd: 15, Rs1: 15, Imm: 32767},
		{Op: OpORI, Rd: 3, Rs1: 3, Imm: 0xffff},
		{Op: OpLUI, Rd: 4, Imm: 0xbeef},
		{Op: OpLUIH, Rd: 4, Imm: 0xdead},
		{Op: OpLD, Rd: 7, Rs1: 8, Imm: 1024},
		{Op: OpLB, Rd: 0, Rs1: 15, Imm: -1},
		{Op: OpSD, Rs2: 9, Rs1: 10, Imm: -8},
		{Op: OpSB, Rs2: 15, Rs1: 0, Imm: 255},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -100},
		{Op: OpBGEU, Rs1: 14, Rs2: 13, Imm: 200},
		{Op: OpJAL, Rd: 15, Imm: 5000},
		{Op: OpJALR, Rd: 1, Rs1: 2, Imm: 0},
		{Op: OpFLD, Rd: 3, Rs1: 4, Imm: 16},
		{Op: OpFSD, Rs2: 5, Rs1: 6, Imm: 24},
		{Op: OpFBLT, Rs1: 7, Rs2: 8, Imm: -4},
		{Op: OpOUT, Rs2: 2, Imm: 0x80},
		{Op: OpPREF, Rs1: 3, Imm: 64},
	}
	for _, c := range cases {
		if got := encodeDecode(t, c); got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Rd: 16, Rs1: 1, Imm: 0},     // I-format reg > 15
		{Op: OpADDI, Rd: 1, Rs1: 16, Imm: 0},     // I-format reg > 15
		{Op: OpSD, Rs2: 16, Rs1: 1, Imm: 0},      // store source in rd slot
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: 40000},  // signed imm overflow
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: -40000}, // signed imm underflow
		{Op: OpORI, Rd: 1, Rs1: 1, Imm: 1 << 16}, // unsigned imm overflow
		{Op: OpADD, Rd: 32, Rs1: 1, Rs2: 1},      // reg out of range entirely
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%v) should have failed", c)
		}
	}
}

// Property: every encodable instruction round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(opRaw uint8, rd, rs1, rs2 uint8, imm int16) bool {
		op := Op(opRaw % uint8(NumOps))
		inst := Inst{Op: op, Rd: rd % 16, Rs1: rs1 % 16, Rs2: rs2 % 16, Imm: int32(imm)}
		if !op.HasImm() {
			inst.Imm = 0
			inst.Rd, inst.Rs1, inst.Rs2 = rd%32, rs1%32, rs2%32
		} else {
			switch op {
			case OpANDI, OpORI, OpXORI, OpLUI, OpLUIH, OpOUT:
				inst.Imm = int32(uint16(imm))
			}
			// I-format: rd and rs2 share a slot; only one is meaningful.
			if usesRs2InRd(op) {
				inst.Rd = 0
			} else {
				inst.Rs2 = 0
			}
		}
		w, err := Encode(inst)
		if err != nil {
			return false
		}
		return Decode(w) == inst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary 32-bit words (tampered
// ciphertext decodes to *something*).
func TestQuickDecodeTotal(t *testing.T) {
	f := func(w uint32) bool {
		inst := Decode(w)
		_ = inst.String()
		_ = inst.IsMem()
		_ = inst.IsBranchOrJump()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// negU64 returns the two's-complement bit pattern of -v.
func negU64(v int64) uint64 { return uint64(-v) }

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpADD, 3, 4, 7},
		{OpSUB, 3, 4, ^uint64(0)},
		{OpMUL, 7, 6, 42},
		{OpDIV, 42, 6, 7},
		{OpDIV, uint64(math.MaxUint64), 0, ^uint64(0)}, // div-by-zero convention
		{OpDIV, 42, ^uint64(0) /* -1 */, negU64(42)},
		{OpREM, 43, 6, 1},
		{OpREM, 43, 0, 43},
		{OpAND, 0xf0, 0x3c, 0x30},
		{OpOR, 0xf0, 0x0f, 0xff},
		{OpXOR, 0xff, 0x0f, 0xf0},
		{OpSLL, 1, 63, 1 << 63},
		{OpSLL, 1, 64, 1}, // shift amount masked to 6 bits
		{OpSRL, 1 << 63, 63, 1},
		{OpSRA, negU64(8), 1, negU64(4)},
		{OpSLT, negU64(1), 0, 1},
		{OpSLT, 0, negU64(1), 0},
		{OpSLTU, 0, ^uint64(0), 1},
		{OpSLTU, ^uint64(0), 0, 0},
		{OpLUI, 0, 0xbeef, 0xbeef0000},
		{OpLUIH, 0xbeef0000, 0xdead, 0xdead_beef_0000},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalALU(%v,%#x,%#x) = %#x want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalBranch(t *testing.T) {
	neg1 := negU64(1)
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBEQ, 5, 5, true},
		{OpBEQ, 5, 6, false},
		{OpBNE, 5, 6, true},
		{OpBLT, neg1, 0, true},
		{OpBLT, 0, neg1, false},
		{OpBGE, 0, neg1, true},
		{OpBLTU, 0, neg1, true}, // unsigned: -1 is max
		{OpBGEU, neg1, 0, true},
	}
	for _, c := range cases {
		if got := EvalBranch(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalBranch(%v,%#x,%#x) = %v want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalFPU(t *testing.T) {
	if got := EvalFPU(OpFADD, 1.5, 2.25); got != 3.75 {
		t.Errorf("fadd = %v", got)
	}
	if got := EvalFPU(OpFDIV, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("fdiv by zero = %v, want +Inf", got)
	}
	if got := EvalFPU(OpFNEG, 2.5, 0); got != -2.5 {
		t.Errorf("fneg = %v", got)
	}
	if !EvalFPBranch(OpFBLT, 1, 2) || EvalFPBranch(OpFBLT, 2, 1) {
		t.Error("fblt wrong")
	}
	if !EvalFPBranch(OpFBGE, 2, 2) {
		t.Error("fbge wrong")
	}
}

func TestConversions(t *testing.T) {
	if CvtIntToFP(negU64(3)) != -3.0 {
		t.Error("fcvtif")
	}
	if CvtFPToInt(-3.7) != negU64(3) {
		t.Error("fcvtfi trunc")
	}
	if CvtFPToInt(math.NaN()) != 0 {
		t.Error("fcvtfi NaN")
	}
	if CvtFPToInt(math.Inf(1)) != uint64(math.MaxInt64) {
		t.Error("fcvtfi +Inf saturate")
	}
	if CvtFPToInt(math.Inf(-1)) != uint64(1)<<63 {
		t.Error("fcvtfi -Inf saturate")
	}
}

func TestBranchTarget(t *testing.T) {
	if got := BranchTarget(100, 0); got != 104 {
		t.Errorf("fallthrough target %d", got)
	}
	if got := BranchTarget(100, -1); got != 100 {
		t.Errorf("self loop target %d", got)
	}
	if got := BranchTarget(100, 5); got != 124 {
		t.Errorf("forward target %d", got)
	}
}

func TestSignExtendLoad(t *testing.T) {
	cases := []struct {
		op   Op
		raw  uint64
		want uint64
	}{
		{OpLD, 0xdeadbeefcafebabe, 0xdeadbeefcafebabe},
		{OpLW, 0xffffffff80000000, negU64(2147483648)},
		{OpLWU, 0xffffffff80000000, 0x80000000},
		{OpLB, 0xff, negU64(1)},
		{OpLBU, 0xff, 0xff},
	}
	for _, c := range cases {
		if got := SignExtendLoad(c.op, c.raw); got != c.want {
			t.Errorf("SignExtendLoad(%v,%#x)=%#x want %#x", c.op, c.raw, got, c.want)
		}
	}
}

func TestMemClassification(t *testing.T) {
	ld := Inst{Op: OpLD}
	sd := Inst{Op: OpSD}
	fld := Inst{Op: OpFLD}
	fsd := Inst{Op: OpFSD}
	add := Inst{Op: OpADD}
	if !ld.IsMem() || !ld.IsLoad() || ld.IsStore() {
		t.Error("ld classification")
	}
	if !sd.IsMem() || !sd.IsStore() || sd.IsLoad() {
		t.Error("sd classification")
	}
	if !fld.IsLoad() || !fsd.IsStore() {
		t.Error("fp mem classification")
	}
	if add.IsMem() {
		t.Error("add is not mem")
	}
	if ld.MemBytes() != 8 || sd.MemBytes() != 8 {
		t.Error("64-bit size")
	}
	if (Inst{Op: OpLW}).MemBytes() != 4 || (Inst{Op: OpSB}).MemBytes() != 1 {
		t.Error("sub-word sizes")
	}
}
