package isa

import "testing"

func TestOpsOfClass(t *testing.T) {
	for _, c := range []Class{ClassALU, ClassMul, ClassLoad, ClassStore, ClassBranch} {
		ops := OpsOfClass(c)
		if len(ops) == 0 {
			t.Errorf("class %v has no ops", c)
		}
		for i, op := range ops {
			if !op.Valid() {
				t.Errorf("class %v: invalid op %v", c, op)
			}
			if op.Class() != c {
				t.Errorf("op %v has class %v, listed under %v", op, op.Class(), c)
			}
			if i > 0 && ops[i-1] >= op {
				t.Errorf("class %v not in opcode order: %v before %v", c, ops[i-1], op)
			}
		}
	}
	// Spot-check membership: the generator's ALU pool must contain the
	// basics it was hand-written with before being table-driven.
	names := map[string]bool{}
	for _, op := range OpsOfClass(ClassALU) {
		names[op.String()] = true
	}
	for _, want := range []string{"add", "sub", "xor", "sll", "slt"} {
		if !names[want] {
			t.Errorf("ClassALU missing %q", want)
		}
	}
}
