package isa

// Pointer-authentication classification helpers. The semantic side (tag
// computation, poison patterns, mode handling) lives in
// internal/cryptoengine/pacmac so this package stays dependency-free; both
// the in-order oracle and the OoO pipeline dispatch on the predicates here.

// IsPACSign reports whether op computes a pointer signature.
func (op Op) IsPACSign() bool { return op == OpSIGNA || op == OpSIGNB }

// IsPACAuth reports whether op checks a pointer signature.
func (op Op) IsPACAuth() bool { return op == OpAUTHA || op == OpAUTHB }

// PACUsesKeyB reports whether a sign/auth op uses the B key (false for the A
// key and for STRIP, which is keyless).
func (op Op) PACUsesKeyB() bool { return op == OpSIGNB || op == OpAUTHB }

// PACSignFor returns the sign op that produces pointers the given auth op
// accepts (key-matched pairs: signa/autha, signb/authb).
func PACSignFor(auth Op) Op {
	if auth == OpAUTHB {
		return OpSIGNB
	}
	return OpSIGNA
}
