package isa

import "math"

// EvalALU computes the result of an integer ALU or long-latency integer
// operation given the (already immediate-substituted) operand values.
// For immediate-form ops pass the immediate as b. Division by zero follows
// the usual RISC convention: quotient is all ones, remainder is the dividend.
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case OpADD, OpADDI:
		return a + b
	case OpSUB:
		return a - b
	case OpMUL:
		return a * b
	case OpDIV:
		if b == 0 {
			return ^uint64(0)
		}
		return uint64(int64(a) / int64(b))
	case OpREM:
		if b == 0 {
			return a
		}
		return uint64(int64(a) % int64(b))
	case OpAND, OpANDI:
		return a & b
	case OpOR, OpORI:
		return a | b
	case OpXOR, OpXORI:
		return a ^ b
	case OpSLL, OpSLLI:
		return a << (b & 63)
	case OpSRL, OpSRLI:
		return a >> (b & 63)
	case OpSRA, OpSRAI:
		return uint64(int64(a) >> (b & 63))
	case OpSLT, OpSLTI:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSLTU:
		if a < b {
			return 1
		}
		return 0
	case OpLUI:
		return b << 16
	case OpLUIH:
		return a | b<<32
	}
	return 0
}

// ImmOperand returns the value the immediate contributes as operand b for an
// immediate-form ALU op (sign- vs zero-extension was resolved at decode).
func ImmOperand(imm int32) uint64 {
	return uint64(int64(imm))
}

// EvalBranch evaluates a conditional branch's taken/not-taken outcome for
// integer compare-and-branch ops.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case OpBEQ:
		return a == b
	case OpBNE:
		return a != b
	case OpBLT:
		return int64(a) < int64(b)
	case OpBGE:
		return int64(a) >= int64(b)
	case OpBLTU:
		return a < b
	case OpBGEU:
		return a >= b
	}
	return false
}

// EvalFPBranch evaluates FP compare-and-branch outcome.
func EvalFPBranch(op Op, a, b float64) bool {
	switch op {
	case OpFBLT:
		return a < b
	case OpFBGE:
		return a >= b
	}
	return false
}

// EvalFPU computes the result of an FP arithmetic op on FP operands.
func EvalFPU(op Op, a, b float64) float64 {
	switch op {
	case OpFADD:
		return a + b
	case OpFSUB:
		return a - b
	case OpFMUL:
		return a * b
	case OpFDIV:
		return a / b // IEEE semantics: ±Inf/NaN on zero divisor
	case OpFNEG:
		return -a
	}
	return 0
}

// CvtIntToFP implements FCVTIF.
func CvtIntToFP(a uint64) float64 { return float64(int64(a)) }

// CvtFPToInt implements FCVTFI with saturation on overflow and 0 for NaN.
func CvtFPToInt(a float64) uint64 {
	switch {
	case math.IsNaN(a):
		return 0
	case a >= math.MaxInt64:
		return uint64(math.MaxInt64)
	case a <= math.MinInt64:
		return uint64(1) << 63 // MinInt64 bit pattern
	}
	return uint64(int64(a))
}

// BranchTarget computes the target of a PC-relative control transfer. The
// immediate counts instruction words relative to the *next* instruction.
func BranchTarget(pc uint64, imm int32) uint64 {
	return pc + InstBytes + uint64(int64(imm))*InstBytes
}

// SignExtendLoad sign/zero extends raw little-endian load data per op.
func SignExtendLoad(op Op, raw uint64) uint64 {
	switch op {
	case OpLD, OpFLD, OpPREF:
		return raw
	case OpLW:
		return uint64(int64(int32(uint32(raw))))
	case OpLWU:
		return uint64(uint32(raw))
	case OpLB:
		return uint64(int64(int8(uint8(raw))))
	case OpLBU:
		return uint64(uint8(raw))
	}
	return raw
}
