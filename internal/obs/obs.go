// Package obs is the simulator's observability layer: a cycle-stamped event
// sink wired through every timed component (pipeline, secure memory
// controller, bus, caches, crypto engine), a metrics registry of counters and
// fixed-bucket histograms, and a bounded ring-buffer tracer with
// Chrome/Perfetto trace-event JSON export.
//
// The paper's argument is about *when* authentication completes relative to
// decryption and *where* that gap stalls the pipeline; aggregate counters
// cannot show either. This package captures the timeline (every auth
// request's enqueue→complete span, every decrypt-ready instant, every
// per-reason stall interval) and the distributions (auth-latency,
// decrypt→auth gap, queue occupancy) that make those claims checkable.
//
// Components hold a Sink and guard every emission with a nil check, so a
// machine with no observer attached pays only an untaken branch per event
// site (pinned by BenchmarkSimTraceOff).
package obs

// Kind classifies an event.
type Kind uint8

// Event kinds. The A/B payload fields are kind-specific; the table below is
// the contract between emitters and consumers (Hub, Tracer export).
const (
	// EvFetch..EvSquash are core pipeline events. Addr = PC.
	// EvSquash: A = number of RUU entries squashed.
	EvFetch Kind = iota
	EvDispatch
	EvIssue
	EvCommit
	EvSquash

	// EvStallBegin/EvStallEnd bracket a per-reason pipeline stall interval.
	// A = StallReason.
	EvStallBegin
	EvStallEnd

	// EvAuthRequest: a verification request entered the authentication
	// queue. Cycle = arrival (enqueue) cycle, Addr = line, A = request index
	// (1-based), B = completion cycle (the in-order engine's schedule is
	// known at enqueue in this model).
	EvAuthRequest
	// EvAuthComplete: the verification engine finished a request.
	// Cycle = completion cycle, Addr = line, A = arrival cycle,
	// B = plaintext-ready cycle (so Cycle-A is the queue latency and
	// Cycle-B the realized decrypt→auth gap).
	EvAuthComplete
	// EvAuthFail: verification failed. Cycle = flag cycle, Addr = line,
	// A = request index.
	EvAuthFail

	// EvDecryptReady: plaintext of an external fetch became available.
	// Addr = line.
	EvDecryptReady
	// EvSecFetch: an external line fetch started. Addr = line.
	EvSecFetch
	// EvWriteBack: a dirty line write-back started. Addr = line.
	EvWriteBack
	// EvFetchGateWait: an external fetch waited on an authen-then-fetch bus
	// grant. Cycle = would-be start, A = cycles waited.
	EvFetchGateWait

	// EvBusTxn: one bus transaction. Cycle = start, Addr = bus address,
	// A = bus.Kind, B = data-done cycle.
	EvBusTxn

	// EvCacheHit/EvCacheMiss: one cache lookup; Track names the cache.
	EvCacheHit
	EvCacheMiss

	// EvCryptOp: one crypto-engine line operation. Addr = line,
	// A = 0 encrypt / 1 decrypt, B = AES pad chunks.
	EvCryptOp

	// EvSkip: the fast path fast-forwarded the clock over a provably idle
	// window. Cycle = jump start, A = cycles skipped, B = SkipBound (which
	// component's NextEventAt bounded the jump). Emitted only on the fast
	// path; the reference loop ticks through the same cycles one by one.
	EvSkip

	numKinds
)

func (k Kind) String() string {
	switch k {
	case EvFetch:
		return "fetch"
	case EvDispatch:
		return "dispatch"
	case EvIssue:
		return "issue"
	case EvCommit:
		return "commit"
	case EvSquash:
		return "squash"
	case EvStallBegin:
		return "stall-begin"
	case EvStallEnd:
		return "stall-end"
	case EvAuthRequest:
		return "auth-request"
	case EvAuthComplete:
		return "auth-complete"
	case EvAuthFail:
		return "auth-fail"
	case EvDecryptReady:
		return "decrypt-ready"
	case EvSecFetch:
		return "sec-fetch"
	case EvWriteBack:
		return "writeback"
	case EvFetchGateWait:
		return "fetch-gate-wait"
	case EvBusTxn:
		return "bus-txn"
	case EvCacheHit:
		return "cache-hit"
	case EvCacheMiss:
		return "cache-miss"
	case EvCryptOp:
		return "crypt-op"
	case EvSkip:
		return "fast-forward"
	}
	return "?"
}

// StallReason labels the pipeline's per-reason stall intervals — the paper's
// per-control-point cost, promoted from opaque cycle totals to labeled
// metrics.
type StallReason uint8

// Stall reasons.
const (
	StallCommitAuth StallReason = iota // authen-then-commit head waiting for verification
	StallIssueAuth                     // authen-then-issue entries held back
	StallSBFull                        // store buffer full at commit
	NumStallReasons
)

func (r StallReason) String() string {
	switch r {
	case StallCommitAuth:
		return "commit-auth"
	case StallIssueAuth:
		return "issue-auth"
	case StallSBFull:
		return "sb-full"
	}
	return "?"
}

// Track identifies the emitting component; the trace export maps each track
// to its own timeline lane.
type Track uint8

// Tracks.
const (
	TrackCore Track = iota
	TrackAuthQueue
	TrackGap // derived decrypt→auth gap spans
	TrackSecmem
	TrackBus
	TrackL1I
	TrackL1D
	TrackL2
	TrackCtrCache
	TrackTreeCache
	TrackCrypto
	TrackFastForward // fast-path skip spans and the skipped-cycles counter
	numTracks
)

func (t Track) String() string {
	switch t {
	case TrackCore:
		return "core"
	case TrackAuthQueue:
		return "auth-queue"
	case TrackGap:
		return "decrypt-auth-gap"
	case TrackSecmem:
		return "secmem"
	case TrackBus:
		return "bus"
	case TrackL1I:
		return "l1i"
	case TrackL1D:
		return "l1d"
	case TrackL2:
		return "l2"
	case TrackCtrCache:
		return "ctr-cache"
	case TrackTreeCache:
		return "tree-cache"
	case TrackCrypto:
		return "crypto"
	case TrackFastForward:
		return "fast-forward"
	}
	return "?"
}

// Event is one cycle-stamped microarchitectural event.
type Event struct {
	Cycle uint64
	Kind  Kind
	Track Track
	Addr  uint64
	A, B  uint64 // kind-specific payload (see the Kind constants)
}

// Sink consumes events. Components store a Sink and emit only when it is
// non-nil; implementations need not be safe for concurrent use — one machine
// owns one sink.
type Sink interface {
	Emit(Event)
}
