package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestHistogramObserveMeanQuantile(t *testing.T) {
	h := NewHistogram("t", []uint64{10, 20, 40})
	for _, v := range []uint64{5, 10, 15, 35, 100} {
		h.Observe(v)
	}
	if h.N != 5 || h.Sum != 165 || h.Max != 100 {
		t.Fatalf("n=%d sum=%d max=%d", h.N, h.Sum, h.Max)
	}
	// Buckets: <=10: {5,10}=2, <=20: {15}=1, <=40: {35}=1, overflow: {100}=1.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.Mean(); got != 33 {
		t.Fatalf("mean = %v", got)
	}
	s := HistSnapshot{Bounds: h.Bounds, Counts: h.Counts, Sum: h.Sum, Count: h.N, Max: h.Max}
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %d, want 10 (2/5 cumulative at first bound reaches ceil)", q)
	}
	if q := s.Quantile(1.0); q != 100 {
		t.Fatalf("p100 = %d, want Max 100", q)
	}
}

func TestRegistrySnapshotAndMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc() // same counter
	r.Histogram("h", []uint64{1, 2}).Observe(2)
	s1 := r.Snapshot()
	if s1.Counters["a"] != 4 {
		t.Fatalf("counter a = %d", s1.Counters["a"])
	}

	r2 := NewRegistry()
	r2.Counter("a").Add(6)
	r2.Counter("b").Inc()
	r2.Histogram("h", []uint64{1, 2}).Observe(5)
	s2 := r2.Snapshot()

	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	if s1.Counters["a"] != 10 || s1.Counters["b"] != 1 {
		t.Fatalf("merged counters %v", s1.Counters)
	}
	h := s1.Histograms["h"]
	if h.Count != 2 || h.Sum != 7 || h.Max != 5 {
		t.Fatalf("merged hist %+v", h)
	}
	// Mismatched bounds must refuse.
	bad := &Snapshot{Histograms: map[string]HistSnapshot{"h": {Bounds: []uint64{9}, Counts: []uint64{0, 0}}}}
	if err := s1.Merge(bad); err == nil {
		t.Fatal("merge with mismatched bounds succeeded")
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: EvCommit})
	}
	ev := tr.Events()
	if len(ev) != 4 || tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d", len(ev), tr.Total(), tr.Dropped())
	}
	for i, e := range ev {
		if e.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle %d, want %d (oldest-first order)", i, e.Cycle, 6+i)
		}
	}
}

func TestTraceJSONExportAndValidate(t *testing.T) {
	tr := NewTracer(0)
	// Out-of-order emission (completion stamped ahead of time) must still
	// export with monotonic timestamps.
	tr.Emit(Event{Cycle: 50, Kind: EvAuthRequest, Addr: 0x1000, A: 1, B: 200})
	tr.Emit(Event{Cycle: 200, Kind: EvAuthComplete, Addr: 0x1000, A: 50, B: 120})
	tr.Emit(Event{Cycle: 10, Kind: EvFetch, Track: TrackCore, Addr: 0x400})
	tr.Emit(Event{Cycle: 60, Kind: EvStallBegin, Track: TrackCore, A: uint64(StallCommitAuth)})
	tr.Emit(Event{Cycle: 90, Kind: EvStallEnd, Track: TrackCore, A: uint64(StallCommitAuth)})
	tr.Emit(Event{Cycle: 30, Kind: EvBusTxn, Track: TrackBus, Addr: 0x1000, A: 0, B: 45})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("exported trace does not validate: %v\n%s", err, buf.String())
	}

	// The decrypt→auth gap span must be derived from the complete event.
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	foundGap := false
	for _, e := range f.TraceEvents {
		if e.Name == "gap" && e.Ph == "X" {
			foundGap = true
			if e.Ts != 120 || e.Dur != 80 {
				t.Fatalf("gap span ts=%d dur=%d, want 120/80", e.Ts, e.Dur)
			}
		}
	}
	if !foundGap {
		t.Fatal("no decrypt→auth gap span exported")
	}
}

// Regression: span events whose recorded completion precedes their start
// (auth request whose completion was stamped earlier, bus transaction
// recorded conservatively) must export a zero duration — not wrap the
// uint64 subtraction into an ~1.8e19 "duration" that corrupts the timeline.
func TestTraceSpanUnderflowClamped(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Event{Cycle: 100, Kind: EvAuthRequest, Addr: 0x40, A: 1, B: 60})
	tr.Emit(Event{Cycle: 120, Kind: EvBusTxn, Track: TrackBus, Addr: 0x40, A: 0, B: 90})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("trace with underflowing spans does not validate: %v\n%s", err, buf.String())
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		spans++
		if e.Dur != 0 {
			t.Errorf("%s span exported dur %d, want 0 (end precedes start)", e.Name, e.Dur)
		}
	}
	if spans != 2 {
		t.Fatalf("exported %d spans, want 2", spans)
	}
}

func TestValidateTraceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{",
		"empty":         `{"traceEvents":[]}`,
		"missing name":  `{"traceEvents":[{"ph":"i","ts":1}]}`,
		"non-monotonic": `{"traceEvents":[{"name":"a","ph":"i","ts":5},{"name":"b","ph":"i","ts":4}]}`,
	}
	for name, data := range cases {
		if err := ValidateTraceJSON([]byte(data)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestHubDerivesAuthMetrics(t *testing.T) {
	h := NewHub(nil, true)
	// Two requests: first completes at 100 (arrive 20, plain-ready 40),
	// second overlaps it (arrive 30, done 180, plain-ready 170).
	h.Emit(Event{Cycle: 20, Kind: EvAuthRequest, A: 1, B: 100})
	h.Emit(Event{Cycle: 30, Kind: EvAuthRequest, A: 2, B: 180})
	h.Emit(Event{Cycle: 100, Kind: EvAuthComplete, A: 20, B: 40})
	h.Emit(Event{Cycle: 180, Kind: EvAuthComplete, A: 30, B: 170})
	s := h.Snapshot()
	if s.Counters["auth.requests"] != 2 || s.Counters["auth.completes"] != 2 {
		t.Fatalf("counters %v", s.Counters)
	}
	lat := s.Histograms[MetricAuthLatency]
	if lat.Count != 2 || lat.Sum != (100-20)+(180-30) {
		t.Fatalf("latency hist %+v", lat)
	}
	gap := s.Histograms[MetricAuthGap]
	if gap.Count != 2 || gap.Sum != (100-40)+(180-170) {
		t.Fatalf("gap hist %+v", gap)
	}
	occ := s.Histograms[MetricAuthOccupancy]
	// First enqueue sees depth 1, second (first still outstanding) depth 2.
	if occ.Count != 2 || occ.Sum != 3 {
		t.Fatalf("occupancy hist %+v", occ)
	}
}

func TestHubStallAccounting(t *testing.T) {
	h := NewHub(nil, true)
	h.Emit(Event{Cycle: 10, Kind: EvStallBegin, A: uint64(StallCommitAuth)})
	h.Emit(Event{Cycle: 35, Kind: EvStallEnd, A: uint64(StallCommitAuth)})
	h.Emit(Event{Cycle: 40, Kind: EvStallBegin, A: uint64(StallSBFull)})
	h.Emit(Event{Cycle: 50, Kind: EvCommit}) // advances lastCycle
	s := h.Snapshot()
	if got := s.Counters["stall.commit-auth.cycles"]; got != 25 {
		t.Fatalf("commit-auth stall cycles = %d", got)
	}
	if got := s.Counters["stall.commit-auth.events"]; got != 1 {
		t.Fatalf("commit-auth stall events = %d", got)
	}
	// The open sb-full stall is closed at the newest observed cycle.
	if got := s.Counters["stall.sb-full.cycles"]; got != 10 {
		t.Fatalf("open sb-full stall cycles = %d", got)
	}
	// Snapshot must not have mutated live state: a later end still works.
	h.Emit(Event{Cycle: 60, Kind: EvStallEnd, A: uint64(StallSBFull)})
	if got := h.Snapshot().Counters["stall.sb-full.cycles"]; got != 20 {
		t.Fatalf("closed sb-full stall cycles = %d", got)
	}
}

func TestHubTraceOnly(t *testing.T) {
	h := NewHub(NewTracer(8), false)
	h.Emit(Event{Cycle: 1, Kind: EvCommit})
	if h.Snapshot() != nil {
		t.Fatal("metrics-off hub returned a snapshot")
	}
	if len(h.Tracer().Events()) != 1 {
		t.Fatal("tracer did not record")
	}
}
