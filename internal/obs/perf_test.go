package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPerfAddToNames(t *testing.T) {
	p := &Perf{
		UopHits: 10, UopMisses: 2, UopNoCache: 1,
		SkipCalls: 5, SkipCycles: 500,
		Broadcasts: 7, ConsumerVisits: 20, StaleWakes: 3, Wakes: 17,
		WritebackScans: 9, WatermarkRescans: 4,
		DisambShortCircuits: 6, DisambScans: 2, DisambVisits: 11,
	}
	p.SkipBoundCycles[BoundDram] = 400
	p.SkipBoundCycles[BoundSecmem] = 100

	s := p.Snapshot()
	want := map[string]uint64{
		"fastpath.uop.hits":                 10,
		"fastpath.uop.misses":               2,
		"fastpath.uop.nocache":              1,
		"fastpath.skip.calls":               5,
		"fastpath.skip.cycles":              500,
		"fastpath.wakeup.broadcasts":        7,
		"fastpath.wakeup.visits":            20,
		"fastpath.wakeup.stale":             3,
		"fastpath.wakeup.wakes":             17,
		"fastpath.writeback.scans":          9,
		"fastpath.writeback.rescans":        4,
		"fastpath.disamb.shortcircuit":      6,
		"fastpath.disamb.scans":             2,
		"fastpath.disamb.visits":            11,
		"fastpath.skip.bound.dram.cycles":   400,
		"fastpath.skip.bound.secmem.cycles": 100,
	}
	if !reflect.DeepEqual(s.Counters, want) {
		t.Fatalf("counters:\ngot  %v\nwant %v", s.Counters, want)
	}

	// AddTo folds — a second fold doubles every counter.
	p.AddTo(s)
	for name, w := range want {
		if s.Counters[name] != 2*w {
			t.Errorf("%s after second AddTo = %d, want %d", name, s.Counters[name], 2*w)
		}
	}

	// Nil receiver and nil snapshot are no-ops.
	var nilP *Perf
	nilP.AddTo(s)
	p.AddTo(nil)
}

func TestPerfAddToNilBoundsOmitted(t *testing.T) {
	s := (&Perf{SkipCalls: 1}).Snapshot()
	for name := range s.Counters {
		if len(name) > len("fastpath.skip.bound.") && name[:len("fastpath.skip.bound.")] == "fastpath.skip.bound." {
			t.Errorf("zero-valued bound counter %s recorded", name)
		}
	}
}

// randomSnapshot builds a snapshot with a random subset of counters and
// histograms over a fixed schema (shared bounds, as all sweep snapshots have).
func randomSnapshot(rng *rand.Rand) *Snapshot {
	s := &Snapshot{Counters: map[string]uint64{}, Histograms: map[string]HistSnapshot{}}
	counterNames := []string{"a", "b", "c", "fastpath.skip.cycles"}
	for _, n := range counterNames {
		if rng.Intn(2) == 0 {
			s.Counters[n] = uint64(rng.Intn(1000))
		}
	}
	bounds := []uint64{10, 100}
	for _, n := range []string{"h1", "h2"} {
		if rng.Intn(2) == 0 {
			h := HistSnapshot{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
			for i := range h.Counts {
				h.Counts[i] = uint64(rng.Intn(50))
				h.Count += h.Counts[i]
			}
			h.Sum = uint64(rng.Intn(10000))
			h.Max = uint64(rng.Intn(500))
			s.Histograms[n] = h
		}
	}
	return s
}

// cloneSnapshot deep-copies a snapshot so each merge order starts fresh.
func cloneSnapshot(s *Snapshot) *Snapshot {
	c := &Snapshot{Counters: map[string]uint64{}, Histograms: map[string]HistSnapshot{}}
	for k, v := range s.Counters {
		c.Counters[k] = v
	}
	for k, h := range s.Histograms {
		h.Bounds = append([]uint64(nil), h.Bounds...)
		h.Counts = append([]uint64(nil), h.Counts...)
		c.Histograms[k] = h
	}
	return c
}

// TestSnapshotMergeOrderIndependent is the determinism property behind
// parallel sweeps folding per-cell snapshots in completion order: merging the
// same snapshot multiset in any order must produce the same aggregate.
func TestSnapshotMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		parts := make([]*Snapshot, 2+rng.Intn(5))
		for i := range parts {
			parts[i] = randomSnapshot(rng)
		}

		mergeAll := func(order []int) *Snapshot {
			acc := &Snapshot{Counters: map[string]uint64{}, Histograms: map[string]HistSnapshot{}}
			for _, i := range order {
				if err := acc.Merge(cloneSnapshot(parts[i])); err != nil {
					t.Fatalf("trial %d: merge: %v", trial, err)
				}
			}
			return acc
		}

		forward := make([]int, len(parts))
		for i := range forward {
			forward[i] = i
		}
		ref := mergeAll(forward)
		for perm := 0; perm < 5; perm++ {
			order := append([]int(nil), forward...)
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			got := mergeAll(order)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("trial %d: merge order %v diverged:\ngot  %+v\nwant %+v", trial, order, got, ref)
			}
		}
	}
}
