package obs

// Bucket sets for the standard histograms. Cycle-valued buckets are sized
// around the reference crypto latencies (80-cycle decrypt, 74-cycle MAC) so
// the interesting structure — sub-MAC-latency gaps vs queueing pile-ups —
// lands in distinct buckets.
var (
	// CycleBuckets bound cycle-valued distributions (auth latency,
	// decrypt→auth gap).
	CycleBuckets = []uint64{0, 8, 16, 24, 32, 48, 64, 80, 96, 112, 128, 160,
		192, 256, 384, 512, 768, 1024, 2048, 4096, 8192}
	// OccupancyBuckets bound the auth-queue depth distribution.
	OccupancyBuckets = []uint64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
)

// Metric names produced by the Hub. Exported so renderers and tests don't
// drift from the emitter.
const (
	MetricAuthLatency   = "auth.latency"         // enqueue→complete, cycles
	MetricAuthGap       = "auth.gap"             // decrypt-ready→auth-done, cycles
	MetricAuthOccupancy = "auth.queue_occupancy" // queue depth at each enqueue
	MetricSkipLen       = "fastforward.skip_len" // cycles per fast-forward jump
	MetricSkips         = "fastforward.skips"    // fast-forward jumps taken
	MetricSkippedCycles = "fastforward.skipped_cycles"
)

// Hub is the standard Sink: it fans events into an optional ring Tracer and
// derives the metrics registry (counters per event class, the auth-latency /
// decrypt→auth-gap / queue-occupancy histograms, and per-reason stall cycle
// totals). A Hub observes exactly one machine and is not safe for concurrent
// use.
type Hub struct {
	tracer *Tracer
	reg    *Registry

	authLat *Histogram
	authGap *Histogram
	authOcc *Histogram
	skipLen *Histogram

	// outstanding holds the completion cycles of enqueued-but-unfinished
	// auth requests. The queue completes strictly in order, so a FIFO
	// suffices; outHead indexes the logical front so draining never
	// reslices (the backing array is compacted in place and reused — the
	// steady-state hot loop must not allocate even with a hub attached).
	outstanding []uint64
	outHead     int

	stallBegin  [NumStallReasons]uint64
	stallOpen   [NumStallReasons]bool
	stallCycles [NumStallReasons]*Counter
	stallEvents [NumStallReasons]*Counter

	kindCounters [numKinds]*Counter
	cacheHits    [numTracks]*Counter
	cacheMisses  [numTracks]*Counter

	skippedCycles *Counter
	skipBound     [NumSkipBounds]*Counter

	lastCycle uint64
}

// NewHub builds a hub. tracer may be nil (metrics only); metrics may be
// false (trace only).
func NewHub(tracer *Tracer, metrics bool) *Hub {
	h := &Hub{tracer: tracer}
	if metrics {
		h.reg = NewRegistry()
		h.authLat = h.reg.Histogram(MetricAuthLatency, CycleBuckets)
		h.authGap = h.reg.Histogram(MetricAuthGap, CycleBuckets)
		h.authOcc = h.reg.Histogram(MetricAuthOccupancy, OccupancyBuckets)
		for r := StallReason(0); r < NumStallReasons; r++ {
			h.stallCycles[r] = h.reg.Counter("stall." + r.String() + ".cycles")
			h.stallEvents[r] = h.reg.Counter("stall." + r.String() + ".events")
		}
		for _, k := range []Kind{EvFetch, EvDispatch, EvIssue, EvCommit, EvSquash} {
			h.kindCounters[k] = h.reg.Counter("pipe." + k.String())
		}
		h.kindCounters[EvAuthRequest] = h.reg.Counter("auth.requests")
		h.kindCounters[EvAuthComplete] = h.reg.Counter("auth.completes")
		h.kindCounters[EvAuthFail] = h.reg.Counter("auth.failures")
		h.kindCounters[EvSecFetch] = h.reg.Counter("sec.fetches")
		h.kindCounters[EvWriteBack] = h.reg.Counter("sec.writebacks")
		h.kindCounters[EvBusTxn] = h.reg.Counter("bus.txns")
		h.kindCounters[EvCryptOp] = h.reg.Counter("crypto.ops")
		h.kindCounters[EvSkip] = h.reg.Counter(MetricSkips)
		h.skippedCycles = h.reg.Counter(MetricSkippedCycles)
		h.skipLen = h.reg.Histogram(MetricSkipLen, CycleBuckets)
		for b := SkipBound(0); b < NumSkipBounds; b++ {
			h.skipBound[b] = h.reg.Counter("fastforward.bound." + b.String() + ".cycles")
		}
	}
	return h
}

// Tracer returns the hub's tracer (nil when tracing is off).
func (h *Hub) Tracer() *Tracer { return h.tracer }

// Emit implements Sink.
func (h *Hub) Emit(e Event) {
	if h.tracer != nil {
		h.tracer.Emit(e)
	}
	if e.Cycle > h.lastCycle {
		h.lastCycle = e.Cycle
	}
	if h.reg == nil {
		return
	}
	if c := h.kindCounters[e.Kind]; c != nil {
		if e.Kind == EvSquash {
			c.Add(e.A)
		} else {
			c.Inc()
		}
	}
	switch e.Kind {
	case EvAuthRequest:
		// Occupancy at enqueue: drop the requests already done by now.
		for h.outHead < len(h.outstanding) && h.outstanding[h.outHead] <= e.Cycle {
			h.outHead++
		}
		if h.outHead == len(h.outstanding) {
			h.outstanding = h.outstanding[:0]
			h.outHead = 0
		} else if h.outHead > cap(h.outstanding)/2 {
			// Compact in place so the backing array is reused instead of
			// growing without bound as the head advances.
			n := copy(h.outstanding, h.outstanding[h.outHead:])
			h.outstanding = h.outstanding[:n]
			h.outHead = 0
		}
		h.outstanding = append(h.outstanding, e.B)
		h.authOcc.Observe(uint64(len(h.outstanding) - h.outHead))
	case EvAuthComplete:
		h.authLat.Observe(e.Cycle - e.A)
		gap := uint64(0)
		if e.Cycle > e.B {
			gap = e.Cycle - e.B
		}
		h.authGap.Observe(gap)
	case EvStallBegin:
		r := StallReason(e.A)
		h.stallBegin[r] = e.Cycle
		h.stallOpen[r] = true
		h.stallEvents[r].Inc()
	case EvStallEnd:
		r := StallReason(e.A)
		if h.stallOpen[r] {
			h.stallCycles[r].Add(e.Cycle - h.stallBegin[r])
			h.stallOpen[r] = false
		}
	case EvFetchGateWait:
		h.reg.Counter("sec.fetch_gate_wait_cycles").Add(e.A)
	case EvSkip:
		h.skippedCycles.Add(e.A)
		h.skipLen.Observe(e.A)
		if b := SkipBound(e.B); b < NumSkipBounds {
			h.skipBound[b].Add(e.A)
		}
	case EvCacheHit, EvCacheMiss:
		hits, misses := h.cacheHits[e.Track], h.cacheMisses[e.Track]
		if hits == nil {
			name := "cache." + e.Track.String()
			hits = h.reg.Counter(name + ".hits")
			misses = h.reg.Counter(name + ".misses")
			h.cacheHits[e.Track], h.cacheMisses[e.Track] = hits, misses
		}
		if e.Kind == EvCacheHit {
			hits.Inc()
		} else {
			misses.Inc()
		}
	}
}

// Snapshot freezes the metrics (nil when the hub has metrics disabled).
// Stall intervals still open are closed at the newest cycle the hub has
// seen, so a run that ends mid-stall is charged the observed span.
func (h *Hub) Snapshot() *Snapshot {
	if h.reg == nil {
		return nil
	}
	s := h.reg.Snapshot()
	for r := StallReason(0); r < NumStallReasons; r++ {
		if h.stallOpen[r] && h.lastCycle > h.stallBegin[r] {
			s.Counters["stall."+r.String()+".cycles"] += h.lastCycle - h.stallBegin[r]
		}
	}
	return s
}
