// Fast-path perf counters: the simulator's self-observability surface.
//
// PR 7's fast-path machinery (µop cache, idle-cycle fast-forward, wakeup
// lists, occupancy bitmaps) made the simulator ~6x faster but opaque: nothing
// recorded hit rates, skipped cycles, or which component bounded each jump.
// Perf is the cheap counter block those mechanisms increment. It follows the
// same discipline as Sink: components hold a *Perf and guard every increment
// site with a nil check, so a machine without perf counting attached pays
// only an untaken branch (pinned by BenchmarkRunFast staying within noise of
// the counter-free baseline).
//
// Unlike the event-driven Hub metrics, Perf fields are plain uint64s bumped
// inline — no Event allocation, no interface call — because several sites
// (fetch, broadcast, disambiguation) run once or more per simulated cycle.

package obs

// SkipBound identifies which component's NextEventAt bounded an idle-cycle
// fast-forward jump — the attribution of every SkipTo to the resource the
// machine was actually waiting on.
type SkipBound uint8

// Skip bounds, in the order Machine.Run folds the components' NextEventAt
// values (first-wins on ties, so attribution is deterministic).
const (
	BoundCore SkipBound = iota
	BoundMemsys
	BoundBus
	BoundDram
	BoundSecmem
	BoundWatchdog
	NumSkipBounds
)

func (b SkipBound) String() string {
	switch b {
	case BoundCore:
		return "core"
	case BoundMemsys:
		return "memsys"
	case BoundBus:
		return "bus"
	case BoundDram:
		return "dram"
	case BoundSecmem:
		return "secmem"
	case BoundWatchdog:
		return "watchdog"
	}
	return "?"
}

// Perf is the fast-path perf-counter block. One machine owns one Perf; it is
// not safe for concurrent use. A nil *Perf disables all counting.
type Perf struct {
	// µop cache (pipeline fetch): Lookup hits, Lookup misses with a cache
	// attached (tampered/overwritten text or wild PC), and decodes with no
	// cache at all (DisableFastPath).
	UopHits    uint64
	UopMisses  uint64
	UopNoCache uint64

	// Idle-cycle fast-forward: SkipTo jumps, total cycles skipped, and the
	// skipped cycles attributed to whichever component's NextEventAt bounded
	// each jump.
	SkipCalls       uint64
	SkipCycles      uint64
	SkipBoundCycles [NumSkipBounds]uint64

	// Wakeup lists (writeback broadcast): broadcasts performed, consumer
	// records visited, records found stale (squashed or reused slots), and
	// operands actually woken.
	Broadcasts     uint64
	ConsumerVisits uint64
	StaleWakes     uint64
	Wakes          uint64

	// earliestDone watermark: writeback scans performed, and the subset that
	// were full rescans after a squash invalidated the watermark (squashAfter
	// sets it to 0 = "unknown, recompute").
	WritebackScans   uint64
	WatermarkRescans uint64

	// Store-bitmap memory disambiguation: load issues that short-circuited
	// the older-store scan because the window held no stores, scans actually
	// performed, and store entries visited across them.
	DisambShortCircuits uint64
	DisambScans         uint64
	DisambVisits        uint64
}

// AddTo folds the counters into a snapshot (adding to any values already
// there, so per-cell Perf blocks merge like every other snapshot counter).
// Zero-valued fields are still recorded: the counter set is part of the
// snapshot schema, and "0 misses" is a result, not an absence. The name
// table here is the single naming contract between Perf and every renderer.
func (p *Perf) AddTo(s *Snapshot) {
	if p == nil || s == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	c := s.Counters
	c["fastpath.uop.hits"] += p.UopHits
	c["fastpath.uop.misses"] += p.UopMisses
	c["fastpath.uop.nocache"] += p.UopNoCache
	c["fastpath.skip.calls"] += p.SkipCalls
	c["fastpath.skip.cycles"] += p.SkipCycles
	c["fastpath.wakeup.broadcasts"] += p.Broadcasts
	c["fastpath.wakeup.visits"] += p.ConsumerVisits
	c["fastpath.wakeup.stale"] += p.StaleWakes
	c["fastpath.wakeup.wakes"] += p.Wakes
	c["fastpath.writeback.scans"] += p.WritebackScans
	c["fastpath.writeback.rescans"] += p.WatermarkRescans
	c["fastpath.disamb.shortcircuit"] += p.DisambShortCircuits
	c["fastpath.disamb.scans"] += p.DisambScans
	c["fastpath.disamb.visits"] += p.DisambVisits
	for b := SkipBound(0); b < NumSkipBounds; b++ {
		if p.SkipBoundCycles[b] > 0 {
			c["fastpath.skip.bound."+b.String()+".cycles"] += p.SkipBoundCycles[b]
		}
	}
}

// Snapshot freezes the counters into a standalone snapshot.
func (p *Perf) Snapshot() *Snapshot {
	s := &Snapshot{Counters: map[string]uint64{}}
	p.AddTo(s)
	return s
}
